// Benchmarks regenerating each table of the Ringo paper's evaluation (§3)
// plus ablations for the repository's design choices. One benchmark
// (or group) per table; cmd/ringo-bench prints the same results in the
// paper's row format. Dataset scales are laptop-sized; the notes on each
// cmd/ringo-bench report map the measured shapes to the paper's numbers.
package ringo_test

import (
	"bytes"
	"sync"
	"testing"

	"ringo"
	"ringo/internal/catalog"
	"ringo/internal/core"
	"ringo/internal/graph"
	"ringo/internal/xhash"
)

// Benchmark dataset: the LiveJournal stand-in at 1/500 scale (138K edge
// rows) and the Twitter stand-in at 1/10000 scale (150K edge rows). The
// core.Spec cache means each is generated once per process.
var (
	benchLJ = core.LJSim(0.002)
	benchTW = core.TWSim(0.0001)

	benchOnce   sync.Once
	benchGraphs map[string]*ringo.Graph
	benchUndirs map[string]*ringo.UGraph
)

func setupBench(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		benchGraphs = map[string]*ringo.Graph{}
		benchUndirs = map[string]*ringo.UGraph{}
		for _, s := range []core.Spec{benchLJ, benchTW} {
			g, err := ringo.ToGraph(s.CachedEdgeTable(), "src", "dst")
			if err != nil {
				panic(err)
			}
			benchGraphs[s.Name] = g
			benchUndirs[s.Name] = ringo.AsUndirected(g)
		}
	})
}

// --- Table 1: catalog statistics -----------------------------------------

func BenchmarkTable1Catalog(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bins := catalog.Bins()
		if len(bins) != 6 {
			b.Fatal("wrong bin count")
		}
	}
}

// --- Table 2: in-memory object sizing ------------------------------------

func BenchmarkTable2MemorySizing(b *testing.B) {
	setupBench(b)
	t := benchLJ.CachedEdgeTable()
	g := benchGraphs[benchLJ.Name]
	for i := 0; i < b.N; i++ {
		if t.Bytes() <= 0 || g.Bytes() <= 0 {
			b.Fatal("zero size")
		}
	}
}

// --- Table 3: parallel graph algorithms ----------------------------------

func benchPageRank(b *testing.B, name string) {
	setupBench(b)
	g := benchGraphs[name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.PageRank(g, 0.85, 10)
	}
}

func BenchmarkTable3PageRankLJ(b *testing.B) { benchPageRank(b, "lj-sim") }
func BenchmarkTable3PageRankTW(b *testing.B) { benchPageRank(b, "tw-sim") }

func benchTriangles(b *testing.B, name string) {
	setupBench(b)
	u := benchUndirs[name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.CountTriangles(u)
	}
}

func BenchmarkTable3TrianglesLJ(b *testing.B) { benchTriangles(b, "lj-sim") }
func BenchmarkTable3TrianglesTW(b *testing.B) { benchTriangles(b, "tw-sim") }

// --- Table 4: select and join --------------------------------------------

func BenchmarkTable4Select10K(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	for i := 0; i < b.N; i++ {
		sel, err := t.Select("src", ringo.LT, int64(64)) // small prefix of the skewed space
		if err != nil {
			b.Fatal(err)
		}
		_ = sel
	}
}

func BenchmarkTable4SelectAllBut10K(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	for i := 0; i < b.N; i++ {
		sel, err := t.Select("src", ringo.GE, int64(64))
		if err != nil {
			b.Fatal(err)
		}
		_ = sel
	}
}

func benchJoin(b *testing.B, keys int64) {
	t := benchLJ.CachedEdgeTable()
	keyVals := make([]int64, keys)
	for i := range keyVals {
		keyVals[i] = int64(i)
	}
	right, err := ringo.NewTable(ringo.Schema{{Name: "key", Type: ringo.IntCol}})
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range keyVals {
		if err := right.AppendRow(k); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j, err := ringo.Join(t, right, "src", "key")
		if err != nil {
			b.Fatal(err)
		}
		_ = j
	}
}

func BenchmarkTable4JoinSmallKeySet(b *testing.B) { benchJoin(b, 64) }
func BenchmarkTable4JoinLargeKeySet(b *testing.B) { benchJoin(b, 4096) }

// --- Table 5: conversions -------------------------------------------------

func BenchmarkTable5TableToGraph(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := ringo.ToGraph(t, "src", "dst")
		if err != nil {
			b.Fatal(err)
		}
		_ = g
	}
}

func BenchmarkTable5GraphToTable(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := ringo.ToTable(g, "src", "dst")
		if err != nil {
			b.Fatal(err)
		}
		_ = t
	}
}

// --- Table 6: sequential algorithms --------------------------------------

func BenchmarkTable6ThreeCore(b *testing.B) {
	setupBench(b)
	u := benchUndirs[benchLJ.Name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.GetKCore(u, 3)
	}
}

func BenchmarkTable6SSSP(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.GetSSSP(g, nodes[i%len(nodes)])
	}
}

func BenchmarkTable6SCC(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.GetSCC(g)
	}
}

// --- Ablation: sort-first conversion vs naive per-edge insertion ---------

func BenchmarkAblationConversionSortFirst(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ringo.ToGraph(t, "src", "dst"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationConversionNaive(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ringo.NaiveToGraph(t, "src", "dst"); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation: dynamic hash-graph vs CSR for single-edge deletion --------
// The paper's §2.2 argument: CSR deletion is linear in the total edge
// count; the hash-of-nodes design is linear in node degree.

func BenchmarkAblationDeleteEdgeHashGraph(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name].Clone()
	var edges [][2]int64
	g.ForEdges(func(s, d int64) {
		if len(edges) < 4096 {
			edges = append(edges, [2]int64{s, d})
		}
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := edges[i%len(edges)]
		g.DelEdge(e[0], e[1])
		g.AddEdge(e[0], e[1])
	}
}

func BenchmarkAblationDeleteEdgeCSR(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	var edges [][2]int64
	g.ForEdges(func(s, d int64) {
		if len(edges) < 64 {
			edges = append(edges, [2]int64{s, d})
		}
	})
	// Deletion consumes the snapshot; rebuild once per cycle of sample
	// edges (untimed) rather than per delete, to keep wall-clock sane.
	c := graph.FromDirected(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%len(edges) == 0 && i > 0 {
			b.StopTimer()
			c = graph.FromDirected(g)
			b.StartTimer()
		}
		e := edges[i%len(edges)]
		if !c.DelEdge(e[0], e[1]) {
			b.Fatal("edge missing")
		}
	}
}

// --- Ablation: hash-graph traversal vs CSR traversal ----------------------

func BenchmarkAblationTraverseHashGraph(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for _, id := range nodes {
			for _, nbr := range g.OutNeighbors(id) {
				sum += nbr
			}
		}
		if sum == 0 {
			b.Fatal("no edges traversed")
		}
	}
}

func BenchmarkAblationTraverseCSR(b *testing.B) {
	setupBench(b)
	c := graph.FromDirected(benchGraphs[benchLJ.Name])
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sum int64
		for u := int32(0); u < int32(c.NumNodes()); u++ {
			for _, nbr := range c.OutNeighbors(u) {
				sum += int64(nbr)
			}
		}
		if sum == 0 {
			b.Fatal("no edges traversed")
		}
	}
}

// --- Ablation: parallel vs sequential algorithms -------------------------

func BenchmarkAblationPageRankSeq(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.PageRankSeq(g, 0.85, 10)
	}
}

func BenchmarkAblationTrianglesSeq(b *testing.B) {
	setupBench(b)
	u := benchUndirs[benchLJ.Name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.CountTrianglesSeq(u)
	}
}

// --- Ablation: concurrent open-addressing map vs mutex-guarded Go map ----

func BenchmarkAblationXHashMapPut(b *testing.B) {
	const keys = 1 << 16
	m := xhash.NewMap(keys)
	b.RunParallel(func(pb *testing.PB) {
		k := int64(0)
		for pb.Next() {
			m.Put(k&(keys-1), k)
			k++
		}
	})
}

func BenchmarkAblationMutexMapPut(b *testing.B) {
	const keys = 1 << 16
	m := make(map[int64]int64, keys)
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		k := int64(0)
		for pb.Next() {
			mu.Lock()
			m[k&(keys-1)] = k
			mu.Unlock()
			k++
		}
	})
}

// --- Workspace snapshot encode/restore ------------------------------------

// BenchmarkSnapshotRoundTrip measures the full durability cycle the
// snapshot subsystem exists for: serialize a workspace holding an edge
// table, its graph and a PageRank score map, then restore it into a fresh
// workspace. Per-object encode/decode runs in parallel.
func BenchmarkSnapshotRoundTrip(b *testing.B) {
	setupBench(b)
	ws := ringo.NewWorkspace()
	ws.Set("E", ringo.Object{Table: benchLJ.CachedEdgeTable()})
	ws.Set("G", ringo.Object{Graph: benchGraphs[benchLJ.Name]})
	ws.Set("PR", ringo.Object{Scores: ringo.GetPageRank(benchGraphs[benchLJ.Name])})
	var buf bytes.Buffer
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := ringo.SnapshotWorkspace(ws, &buf); err != nil {
			b.Fatal(err)
		}
		back, err := ringo.RestoreWorkspace(bytes.NewReader(buf.Bytes()))
		if err != nil {
			b.Fatal(err)
		}
		if len(back.Names()) != 3 {
			b.Fatal("restore lost objects")
		}
	}
	b.SetBytes(int64(buf.Len()))
}

// --- Library benchmarks beyond the paper's tables ------------------------

func BenchmarkLibSelectExpr(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	for i := 0; i < b.N; i++ {
		if _, err := t.SelectExpr("src < 1000 and dst >= 16"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLibGroupAggregate(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	for i := 0; i < b.N; i++ {
		if _, err := t.Aggregate([]string{"src"}, ringo.Count, "", "n"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLibNextK(b *testing.B) {
	t := benchLJ.CachedEdgeTable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ringo.NextK(t, "src", "dst", 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLibLouvain(b *testing.B) {
	setupBench(b)
	u := benchUndirs[benchLJ.Name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.Louvain(u, 5)
	}
}

func BenchmarkLibBFSParallel(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	nodes := g.Nodes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.GetBFSParallel(g, nodes[i%len(nodes)], ringo.OutEdges)
	}
}

func BenchmarkLibApproxBetweenness(b *testing.B) {
	setupBench(b)
	g := benchGraphs[benchLJ.Name]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ringo.GetApproxBetweenness(g, 4, 1)
	}
}
