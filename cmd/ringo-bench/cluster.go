package main

// The cluster report publishes the read-fanout curve of the replica tier:
// requests/sec through the coordinator for the same read-only workload as
// the replica count grows from 0 (every read falls through to the primary
// — the single-process baseline) to 3. All nodes run in-process here, so
// the curve shows the coordinator's routing overhead and contention
// behavior honestly but shares one machine's cores across every "node";
// the scaling headroom a real deployment gets from separate machines is
// exactly what this single-host setup cannot show. cmd/ringo-loadtest is
// the process-per-node version of the same measurement.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ringo/internal/cluster"
	"ringo/internal/core"
	"ringo/internal/repl"
	"ringo/internal/server"
)

// ClusterFanout measures coordinator read throughput at replica counts
// 0..3 over an in-process cluster.
func ClusterFanout() (core.Report, error) {
	const (
		workers  = 8
		requests = 2000
	)
	rep := core.Report{
		Title:  "cluster: read-only requests/sec vs replica count (in-process)",
		Header: []string{"replicas", "requests", "elapsed", "req/s", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d concurrent clients, %d requests of a cached read-only query per row", workers, requests),
			"replicas=0 routes every read to the primary: the single-process baseline",
			fmt.Sprintf("all nodes share this host's %d core(s); process-per-node scaling needs cmd/ringo-loadtest -spawn on a multi-core host", runtime.GOMAXPROCS(0)),
		},
	}

	var baseline float64
	for _, n := range []int{0, 1, 2, 3} {
		reqPerSec, err := fanoutRow(n, workers, requests)
		if err != nil {
			return core.Report{}, fmt.Errorf("replicas=%d: %w", n, err)
		}
		if n == 0 {
			baseline = reqPerSec
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%d", requests),
			fmt.Sprintf("%.2fs", float64(requests)/reqPerSec),
			fmt.Sprintf("%.0f", reqPerSec),
			fmt.Sprintf("%.2fx", reqPerSec/baseline),
		})
	}
	return rep, nil
}

// fanoutRow builds a primary + n replicas, ships, and hammers the
// coordinator with the read workload, returning requests/sec.
func fanoutRow(n, workers, requests int) (float64, error) {
	shipDir, err := os.MkdirTemp("", "ringo-cluster-bench")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(shipDir)

	newNode := func() (*server.Server, *httptest.Server) {
		srv := server.New(server.Config{AllowFileIO: true})
		return srv, httptest.NewServer(srv)
	}
	psrv, pts := newNode()
	defer pts.Close()
	defer psrv.Close()
	if _, err := psrv.CreateSession("main"); err != nil {
		return 0, err
	}
	seed, err := repl.ParseScript("gen rmat E 12 20000 7\ntograph G E src dst\npagerank PR G")
	if err != nil {
		return 0, err
	}
	if sr, err := psrv.EvalScript("main", seed); err != nil {
		return 0, err
	} else if err := sr.Err(); err != nil {
		return 0, err
	}

	var replicaURLs []string
	for i := 0; i < n; i++ {
		rsrv, rts := newNode()
		defer rts.Close()
		defer rsrv.Close()
		replicaURLs = append(replicaURLs, rts.URL)
	}

	coord, err := cluster.New(cluster.Config{
		Primary:  pts.URL,
		Replicas: replicaURLs,
		ShipPath: filepath.Join(shipDir, "ship.rngs"),
	})
	if err != nil {
		return 0, err
	}
	defer coord.Close()
	if err := coord.Ship(); err != nil {
		return 0, err
	}
	cts := httptest.NewServer(coord)
	defer cts.Close()

	body, _ := json.Marshal(map[string]string{"cmd": "top PR 5"})
	url := cts.URL + "/sessions/main/query"
	var next, failures atomic.Int64
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for next.Add(1) <= int64(requests) {
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	if f := failures.Load(); f > 0 {
		return 0, fmt.Errorf("%d failed requests", f)
	}
	return float64(requests) / elapsed.Seconds(), nil
}
