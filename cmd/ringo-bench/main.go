// Command ringo-bench regenerates the tables of the Ringo paper's
// evaluation (Perez et al., SIGMOD 2015, §3) on synthetic stand-in
// datasets.
//
// Usage:
//
//	ringo-bench [-table all|1|2|3|4|5|6|footprint|ingest|views|script|obs|extmem|filter|cluster|incr] [-lj 0.02] [-tw 0.002] [-filter-rows 10000000]
//
// -lj and -tw scale the LiveJournal and Twitter2010 stand-ins (1.0 = the
// paper's full sizes of 69M and 1.5B edge rows; defaults are laptop-sized).
// Absolute timings depend on the host; each report's notes record the
// shape comparisons against the paper's numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"ringo/internal/core"
)

func main() {
	tableSel := flag.String("table", "all", "which table to regenerate: all, 1-6, footprint, ingest, views, script, obs, extmem, filter, cluster, incr")
	ljScale := flag.Float64("lj", 0.02, "LiveJournal stand-in scale factor (1.0 = 69M edge rows)")
	twScale := flag.Float64("tw", 0.002, "Twitter2010 stand-in scale factor (1.0 = 1.5B edge rows)")
	filterRows := flag.Int64("filter-rows", 10_000_000, "row count for the table-filter report")
	flag.Parse()

	lj := core.LJSim(*ljScale)
	tw := core.TWSim(*twScale)
	specs := []core.Spec{lj, tw}

	fmt.Printf("ringo-bench: GOMAXPROCS=%d, lj-sim=%d edge rows (2^%d ids), tw-sim=%d edge rows (2^%d ids)\n\n",
		runtime.GOMAXPROCS(0), lj.Edges, lj.RMATScale, tw.Edges, tw.RMATScale)

	run := func(name string, fn func() (core.Report, error)) {
		r, err := fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringo-bench: %s: %v\n", name, err)
			os.Exit(1)
		}
		r.Print(os.Stdout)
	}

	want := func(name string) bool { return *tableSel == "all" || *tableSel == name }

	if want("1") {
		core.Table1().Print(os.Stdout)
	}
	if want("2") {
		run("table 2", func() (core.Report, error) { return core.Table2(specs) })
	}
	if want("3") {
		run("table 3", func() (core.Report, error) { return core.Table3(specs) })
	}
	if want("4") {
		run("table 4", func() (core.Report, error) { return core.Table4(specs) })
	}
	if want("5") {
		run("table 5", func() (core.Report, error) { return core.Table5(specs) })
	}
	if want("6") {
		run("table 6", func() (core.Report, error) { return core.Table6(lj) })
	}
	if want("footprint") {
		run("footprint", func() (core.Report, error) { return core.Footprint(tw) })
	}
	if want("ingest") {
		run("ingest", func() (core.Report, error) { return core.Ingest(specs) })
	}
	if want("views") {
		run("views", func() (core.Report, error) { return core.Views(specs) })
	}
	if want("script") {
		run("script", ScriptBatch)
	}
	if want("obs") {
		run("obs", func() (core.Report, error) { return core.ObsOverhead(lj) })
	}
	if want("extmem") {
		run("extmem", func() (core.Report, error) { return core.ExtMem(lj) })
	}
	if want("filter") {
		run("filter", func() (core.Report, error) { return core.TableFilter(*filterRows) })
	}
	if want("cluster") {
		run("cluster", ClusterFanout)
	}
	if want("incr") {
		run("incr", func() (core.Report, error) { return core.Incr(lj) })
	}
}
