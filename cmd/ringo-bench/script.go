package main

// The script report measures the batching lever the /script endpoint adds:
// an N-step read-only analysis executed as N individual HTTP queries (N
// round trips, N session-lock acquisitions, N JSON envelopes) against the
// same N steps in one script batch (one of each). The steps are cheap
// cached analytics, so the gap is pure per-operation overhead — the cost
// the paper's interactive chaining model says must stay off the analyst's
// critical path. BenchmarkScriptVsPerQuery in internal/server is the
// statistically-sampled twin of this report.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"time"

	"ringo/internal/core"
	"ringo/internal/repl"
	"ringo/internal/server"
)

// ScriptBatch builds an in-process HTTP server with a ranked graph and
// times per-query vs batched execution for growing step counts.
func ScriptBatch() (core.Report, error) {
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	if _, err := srv.CreateSession("bench"); err != nil {
		return core.Report{}, err
	}
	setup, err := repl.ParseScript("gen rmat E 12 20000 7\ntograph G E src dst\npagerank PR G")
	if err != nil {
		return core.Report{}, err
	}
	if sr, err := srv.EvalScript("bench", setup); err != nil {
		return core.Report{}, err
	} else if err := sr.Err(); err != nil {
		return core.Report{}, err
	}

	post := func(path string, body map[string]string) error {
		payload, err := json.Marshal(body)
		if err != nil {
			return err
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("POST %s: status %d", path, resp.StatusCode)
		}
		return nil
	}

	r := core.Report{
		Title:  "Script: N-step batch (POST /script, one lock + round trip) vs N per-query calls",
		Header: []string{"Steps", "Per-query", "Batched", "Speedup", "Per-step overhead saved"},
	}
	for _, n := range []int{10, 50, 200} {
		steps := make([]string, n)
		for i := range steps {
			if i%2 == 0 {
				steps[i] = "algo G wcc"
			} else {
				steps[i] = "top PR 5"
			}
		}
		// Warm both paths once so the result cache and CSR views are
		// resident; the comparison then isolates dispatch overhead.
		for _, cmd := range steps[:2] {
			if err := post("/sessions/bench/query", map[string]string{"cmd": cmd}); err != nil {
				return core.Report{}, err
			}
		}

		// Best-of-reps: one-shot wall times at this scale are dominated by
		// scheduler noise, and the minimum is the run with the least of it.
		const reps = 5
		var perQuery, batch time.Duration
		var measureErr error
		for rep := 0; rep < reps; rep++ {
			d := core.Timed(func() {
				for _, cmd := range steps {
					if err := post("/sessions/bench/query", map[string]string{"cmd": cmd}); err != nil {
						measureErr = err
						return
					}
				}
			})
			if measureErr != nil {
				return core.Report{}, measureErr
			}
			if rep == 0 || d < perQuery {
				perQuery = d
			}
			d = core.Timed(func() {
				measureErr = post("/sessions/bench/script", map[string]string{"script": strings.Join(steps, "\n")})
			})
			if measureErr != nil {
				return core.Report{}, measureErr
			}
			if rep == 0 || d < batch {
				batch = d
			}
		}

		saved := (perQuery - batch) / time.Duration(n)
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", n),
			perQuery.Round(time.Microsecond).String(),
			batch.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", perQuery.Seconds()/batch.Seconds()),
			saved.Round(time.Microsecond).String(),
		})
	}
	r.Notes = append(r.Notes,
		"read-only cached analytics steps over loopback HTTP; the gap is round-trip + lock + envelope overhead, the cost batching amortizes",
		"same comparison, benchmark-sampled: go test -bench ScriptVsPerQuery ./internal/server")
	return r, nil
}
