// Command ringo-coord fronts a primary ringo-server and N read replicas
// as one endpoint: snapshot-replicated serving with fingerprint-verified
// shipping, verb-classified routing and live failover (docs/CLUSTER.md).
//
// Quickstart — three servers, one coordinator, all on one host:
//
//	ringo-server -addr :7475 -allow-file-io &           # primary
//	ringo-server -addr :7476 -allow-file-io &           # replica 1
//	ringo-server -addr :7477 -allow-file-io &           # replica 2
//	curl -s -X POST localhost:7475/sessions -d '{"id":"main"}'
//	curl -s -X POST localhost:7475/sessions/main/query -d '{"cmd":"gen rmat E 16 500000 7"}'
//	ringo-coord -addr :7070 -primary http://localhost:7475 \
//	    -replicas http://localhost:7476,http://localhost:7477 &
//	curl -s -X POST localhost:7070/sessions/main/query -d '{"cmd":"ls"}'   # served by a replica
//	curl -s localhost:7070/cluster                                        # topology + generations
//
// Replicas must share a filesystem with the primary (same host or shared
// mount): snapshots ship as files at -ship-path. The coordinator serves
// the full ringo-server API — requests it does not classify pass through
// to the primary — plus GET /cluster, POST /cluster/ship, and aggregated
// GET /stats and GET /metrics across every node.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"time"

	"ringo/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":7070", "listen address")
	primary := flag.String("primary", "", "base URL of the primary ringo-server (required)")
	replicas := flag.String("replicas", "", "comma-separated base URLs of replica ringo-servers")
	session := flag.String("session", cluster.DefaultSession, "replicated serving session id")
	shipPath := flag.String("ship-path", "", "snapshot ship file path (default ringo-ship-<session>.rngs in the temp dir); must be reachable by every node")
	token := flag.String("token", "", "bearer token sent on every upstream request")
	eventual := flag.Bool("eventual", false, "serve reads from replicas at their last verified snapshot while re-ships are in flight (default: strict read-your-writes)")
	balance := flag.String("balance", "least", "replica selection: least (least-loaded) or rr (round-robin)")
	healthInterval := flag.Duration("health-interval", cluster.DefaultHealthInterval, "health probe period")
	healthTimeout := flag.Duration("health-timeout", cluster.DefaultHealthTimeout, "per-probe timeout")
	failThreshold := flag.Int("fail-threshold", cluster.DefaultFailThreshold, "consecutive probe failures before a target is marked down")
	maxBackoff := flag.Duration("max-backoff", cluster.DefaultMaxBackoff, "probe backoff cap for down targets")
	statsTTL := flag.Duration("stats-ttl", 2*time.Second, "per-target /stats cache for aggregated metrics (0 = fetch fresh)")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	flag.Parse()

	if *primary == "" {
		log.Fatal("ringo-coord: -primary is required")
	}
	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		log.Fatalf("ringo-coord: -log-format must be text or json, got %q", *logFormat)
	}

	var replicaURLs []string
	for _, r := range strings.Split(*replicas, ",") {
		if r = strings.TrimSpace(r); r != "" {
			replicaURLs = append(replicaURLs, r)
		}
	}

	coord, err := cluster.New(cluster.Config{
		Primary:        *primary,
		Replicas:       replicaURLs,
		Session:        *session,
		ShipPath:       *shipPath,
		AuthToken:      *token,
		Eventual:       *eventual,
		Balance:        *balance,
		HealthInterval: *healthInterval,
		HealthTimeout:  *healthTimeout,
		FailThreshold:  *failThreshold,
		MaxBackoff:     *maxBackoff,
		StatsTTL:       *statsTTL,
		Logger:         slog.New(handler),
	})
	if err != nil {
		log.Fatalf("ringo-coord: %v", err)
	}
	defer coord.Close()

	// The bootstrap ship is best-effort: an unreachable replica at boot
	// must not keep the coordinator down — the health loop re-ships it the
	// moment it answers. Only an unreachable primary is fatal (nothing can
	// be served without it).
	if err := coord.Ship(); err != nil {
		if strings.Contains(err.Error(), "snapshot on primary") || strings.Contains(err.Error(), "primary fingerprints") {
			log.Fatalf("ringo-coord: bootstrap ship: %v", err)
		}
		log.Printf("ringo-coord: bootstrap ship incomplete (health loop will retry): %v", err)
	}
	coord.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: coord}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Fprintln(os.Stderr, "ringo-coord: shutting down")
		_ = httpSrv.Close()
	}()

	log.Printf("ringo-coord listening on %s (primary %s, %d replicas, session %q)",
		*addr, *primary, len(replicaURLs), *session)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("ringo-coord: %v", err)
	}
}
