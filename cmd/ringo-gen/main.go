// Command ringo-gen writes synthetic datasets to disk for use with the
// shell and the examples: R-MAT edge lists with the degree skew of the
// paper's benchmark graphs, or StackOverflow-like posts tables for the §4.1
// demo.
//
// Usage:
//
//	ringo-gen -kind rmat  -out edges.tsv -scale 16 -edges 1000000 [-seed 1]
//	ringo-gen -kind posts -out posts.tsv -questions 10000 [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"ringo"
)

func main() {
	kind := flag.String("kind", "rmat", "dataset kind: rmat or posts")
	out := flag.String("out", "", "output TSV path (required)")
	scale := flag.Int("scale", 16, "rmat: log2 of the node id space")
	edges := flag.Int64("edges", 1_000_000, "rmat: number of edge rows")
	questions := flag.Int("questions", 10_000, "posts: number of questions")
	seed := flag.Int64("seed", 1, "generator seed")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "ringo-gen: -out is required")
		os.Exit(2)
	}

	var t *ringo.Table
	var err error
	switch *kind {
	case "rmat":
		t = ringo.GenRMATTable(*scale, *edges, *seed)
	case "posts":
		cfg := ringo.DefaultSOConfig()
		cfg.Questions = *questions
		cfg.Seed = *seed
		t, err = ringo.GenStackOverflowPosts(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ringo-gen: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "ringo-gen: unknown kind %q\n", *kind)
		os.Exit(2)
	}
	if err := t.SaveTSVFile(*out, *kind == "posts"); err != nil {
		fmt.Fprintf(os.Stderr, "ringo-gen: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d rows to %s\n", t.NumRows(), *out)
}
