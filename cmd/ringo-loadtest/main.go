// Command ringo-loadtest publishes the cluster tier's headline number: the
// requests/sec-vs-replica-count curve for read-only traffic through
// ringo-coord (docs/CLUSTER.md).
//
// Two modes:
//
//	# Drive an already-running coordinator:
//	ringo-loadtest -url http://localhost:7070 -workers 16 -duration 10s
//
//	# Self-contained curve: spawn a primary + up to N replica ringo-server
//	# processes (one OS process per node, GOMAXPROCS capped per node so the
//	# nodes share a machine the way a commodity cluster's nodes each own
//	# their cores), coordinate them in-process, and measure each replica
//	# count from 0 to N:
//	go build -o ringo-server ./cmd/ringo-server
//	ringo-loadtest -spawn 3 -server-bin ./ringo-server -duration 5s
//
// The curve's shape depends on the host: with at least one core per node,
// read throughput grows near-linearly with replicas (replicas=0 is the
// single-process baseline — the speedup column reads directly as fan-out
// gain); on fewer cores than nodes the curve flattens, which the report's
// notes call out rather than hide.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ringo/internal/cluster"
	"ringo/internal/core"
	"ringo/internal/obs"
)

func main() {
	coordURL := flag.String("url", "", "drive this running coordinator (mutually exclusive with -spawn)")
	spawn := flag.Int("spawn", 0, "self-contained mode: spawn a primary + up to N replica ringo-server processes and measure replica counts 0..N")
	serverBin := flag.String("server-bin", "", "path to the ringo-server binary (required with -spawn)")
	nodeProcs := flag.Int("node-procs", 1, "GOMAXPROCS per spawned node: each node owns this many cores, like a commodity cluster node")
	session := flag.String("session", cluster.DefaultSession, "replicated serving session")
	cmd := flag.String("cmd", "top PR 5", "read-only command each request sends")
	seed := flag.String("seed", "gen rmat E 14 100000 7;tograph G E src dst;pagerank PR G", "semicolon-separated commands seeding the primary (-spawn mode)")
	workers := flag.Int("workers", 16, "concurrent client connections")
	duration := flag.Duration("duration", 5*time.Second, "measurement window per replica count")
	flag.Parse()

	switch {
	case *coordURL != "" && *spawn > 0:
		log.Fatal("ringo-loadtest: -url and -spawn are mutually exclusive")
	case *coordURL == "" && *spawn == 0:
		log.Fatal("ringo-loadtest: need -url (existing coordinator) or -spawn N (self-contained)")
	case *spawn > 0 && *serverBin == "":
		log.Fatal("ringo-loadtest: -spawn needs -server-bin (go build -o ringo-server ./cmd/ringo-server)")
	}

	if *coordURL != "" {
		row, err := drive(*coordURL, *session, *cmd, *workers, *duration)
		if err != nil {
			log.Fatalf("ringo-loadtest: %v", err)
		}
		rep := core.Report{
			Title:  "cluster load test: " + *coordURL,
			Header: []string{"workers", "requests", "req/s", "p50", "p90", "p99", "errors", "targets"},
			Rows:   [][]string{row.cells(*workers)},
			Notes:  []string{fmt.Sprintf("%s window, command %q on session %q", duration, *cmd, *session)},
		}
		rep.Print(os.Stdout)
		return
	}

	rep, err := curve(*spawn, *serverBin, *nodeProcs, *session, *cmd, *seed, *workers, *duration)
	if err != nil {
		log.Fatalf("ringo-loadtest: %v", err)
	}
	rep.Print(os.Stdout)
}

// result is one measurement window's outcome.
type result struct {
	requests int64
	errors   int64
	reqPerS  float64
	hist     *obs.Histogram
	targets  map[string]int64
}

func (r result) cells(workers int) []string {
	var tparts []string
	for name, n := range r.targets {
		tparts = append(tparts, fmt.Sprintf("%s:%d", name, n))
	}
	return []string{
		fmt.Sprintf("%d", workers),
		fmt.Sprintf("%d", r.requests),
		fmt.Sprintf("%.0f", r.reqPerS),
		r.hist.Quantile(0.50).Round(time.Microsecond).String(),
		r.hist.Quantile(0.90).Round(time.Microsecond).String(),
		r.hist.Quantile(0.99).Round(time.Microsecond).String(),
		fmt.Sprintf("%d", r.errors),
		strings.Join(tparts, " "),
	}
}

// drive hammers one coordinator with the read workload for the window and
// reports throughput, latency percentiles and who served what.
func drive(coordURL, session, cmd string, workers int, window time.Duration) (result, error) {
	body, _ := json.Marshal(map[string]string{"cmd": cmd})
	url := coordURL + "/sessions/" + session + "/query"
	res := result{hist: &obs.Histogram{}, targets: map[string]int64{}}
	var mu sync.Mutex
	var requests, errors atomic.Int64
	deadline := time.Now().Add(window)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := &http.Client{}
			for time.Now().Before(deadline) {
				start := time.Now()
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					errors.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				target := resp.Header.Get("X-Ringo-Target")
				resp.Body.Close()
				res.hist.Observe(time.Since(start))
				requests.Add(1)
				if resp.StatusCode != http.StatusOK {
					errors.Add(1)
					continue
				}
				mu.Lock()
				res.targets[target]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.requests = requests.Load()
	res.errors = errors.Load()
	res.reqPerS = float64(res.requests) / window.Seconds()
	if res.requests == 0 {
		return res, fmt.Errorf("no request completed against %s", coordURL)
	}
	return res, nil
}

// curve spawns node processes and measures every replica count 0..n.
func curve(n int, serverBin string, nodeProcs int, session, cmd, seed string, workers int, window time.Duration) (core.Report, error) {
	rep := core.Report{
		Title:  "cluster load test: requests/sec vs replica count (process per node)",
		Header: []string{"replicas", "requests", "req/s", "p50", "p99", "errors", "speedup"},
		Notes: []string{
			fmt.Sprintf("%d clients, %s window per row, command %q; one OS process per node at GOMAXPROCS=%d", workers, window, cmd, nodeProcs),
			"replicas=0 routes every read to the primary: the single-process baseline",
			fmt.Sprintf("host has %d core(s); the curve needs >= one core per node (%d for the last row) to show fan-out gain", runtime.NumCPU(), n+1),
		},
	}
	var baseline float64
	for replicas := 0; replicas <= n; replicas++ {
		res, err := curveRow(replicas, serverBin, nodeProcs, session, cmd, seed, workers, window)
		if err != nil {
			return core.Report{}, fmt.Errorf("replicas=%d: %w", replicas, err)
		}
		if replicas == 0 {
			baseline = res.reqPerS
		}
		rep.Rows = append(rep.Rows, []string{
			fmt.Sprintf("%d", replicas),
			fmt.Sprintf("%d", res.requests),
			fmt.Sprintf("%.0f", res.reqPerS),
			res.hist.Quantile(0.50).Round(time.Microsecond).String(),
			res.hist.Quantile(0.99).Round(time.Microsecond).String(),
			fmt.Sprintf("%d", res.errors),
			fmt.Sprintf("%.2fx", res.reqPerS/baseline),
		})
	}
	return rep, nil
}

func curveRow(replicas int, serverBin string, nodeProcs int, session, cmd, seed string, workers int, window time.Duration) (result, error) {
	shipDir, err := os.MkdirTemp("", "ringo-loadtest")
	if err != nil {
		return result{}, err
	}
	defer os.RemoveAll(shipDir)

	primaryURL, stopPrimary, err := spawnNode(serverBin, nodeProcs)
	if err != nil {
		return result{}, err
	}
	defer stopPrimary()
	var replicaURLs []string
	for i := 0; i < replicas; i++ {
		u, stop, err := spawnNode(serverBin, nodeProcs)
		if err != nil {
			return result{}, err
		}
		defer stop()
		replicaURLs = append(replicaURLs, u)
	}

	if err := seedPrimary(primaryURL, session, seed); err != nil {
		return result{}, err
	}

	coord, err := cluster.New(cluster.Config{
		Primary:  primaryURL,
		Replicas: replicaURLs,
		Session:  session,
		ShipPath: filepath.Join(shipDir, "ship.rngs"),
	})
	if err != nil {
		return result{}, err
	}
	defer coord.Close()
	if err := coord.Ship(); err != nil {
		return result{}, err
	}
	coord.Start()
	cts := httptest.NewServer(coord)
	defer cts.Close()

	return drive(cts.URL, session, cmd, workers, window)
}

// spawnNode starts one ringo-server process on a fresh localhost port with
// its own GOMAXPROCS budget and waits until it answers.
func spawnNode(serverBin string, nodeProcs int) (string, func(), error) {
	port, err := freePort()
	if err != nil {
		return "", nil, err
	}
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	proc := exec.Command(serverBin, "-addr", addr, "-allow-file-io")
	proc.Env = append(os.Environ(), fmt.Sprintf("GOMAXPROCS=%d", nodeProcs))
	proc.Stderr = io.Discard
	if err := proc.Start(); err != nil {
		return "", nil, fmt.Errorf("spawn %s: %w", serverBin, err)
	}
	stop := func() {
		_ = proc.Process.Kill()
		_, _ = proc.Process.Wait()
	}
	url := "http://" + addr
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/sessions")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return url, stop, nil
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	stop()
	return "", nil, fmt.Errorf("node on %s never became ready", addr)
}

// freePort asks the kernel for an unused localhost port.
func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// seedPrimary creates the serving session and runs the seed commands.
func seedPrimary(baseURL, session, seed string) error {
	post := func(path string, body map[string]string) error {
		payload, _ := json.Marshal(body)
		resp, err := http.Post(baseURL+path, "application/json", bytes.NewReader(payload))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode/100 != 2 {
			return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, strings.TrimSpace(string(data)))
		}
		return nil
	}
	if err := post("/sessions", map[string]string{"id": session}); err != nil {
		return err
	}
	for _, c := range strings.Split(seed, ";") {
		if c = strings.TrimSpace(c); c == "" {
			continue
		}
		if err := post("/sessions/"+session+"/query", map[string]string{"cmd": c}); err != nil {
			return fmt.Errorf("seed %q: %w", c, err)
		}
	}
	return nil
}
