// Command ringo-server runs the Ringo analytics engine as a multi-session
// HTTP service: the big-memory machine stays resident and many analysts
// share it, each in an isolated named session, with cached analytics and
// async jobs for long-running algorithms.
//
// Quickstart:
//
//	ringo-server -addr :7475 &
//	curl -s -X POST localhost:7475/sessions -d '{"id":"demo"}'
//	curl -s -X POST localhost:7475/sessions/demo/query -d '{"cmd":"gen rmat E 12 20000 7"}'
//	curl -s -X POST localhost:7475/sessions/demo/query -d '{"cmd":"tograph G E src dst"}'
//	curl -s -X POST localhost:7475/sessions/demo/jobs  -d '{"cmd":"pagerank PR G"}'
//	curl -s localhost:7475/jobs/j1
//	curl -s -X POST localhost:7475/sessions/demo/query -d '{"cmd":"top PR 5"}'
//
// Whole analyses batch as scripts: POST /sessions/{id}/script runs an
// N-step command file in one round trip under a single session-lock
// acquisition, returning per-step results and timings (docs/SERVER.md has
// the full API reference, docs/COMMANDS.md the script format). Script
// steps that touch host files are refused without -allow-file-io, with the
// offending step named before anything runs.
//
// With -allow-file-io the server can persist and reload whole sessions as
// binary workspace snapshots (POST /sessions/{id}/snapshot and /restore),
// and -restore <file> warm-starts a restarted server from such a snapshot
// before the listener comes up. -restore also accepts an RNGM mapped CSR
// image (written by the savemapped verb): instead of decoding, the graph
// is validated and served in place from mmap as the read-only binding "g",
// turning a restart on a big graph from a decode-bound wait into
// milliseconds (GET /stats reports the file-backed size as mapped_bytes).
//
// Observability (docs/OBSERVABILITY.md): GET /metrics serves the whole
// registry in Prometheus text format; every request logs through log/slog
// (-log-format text|json) with an X-Request-ID correlating response and
// record; -slow-query 250ms adds a structured record for any verb at or
// above the threshold; -debug-addr 127.0.0.1:6060 brings up net/http/pprof
// on a separate listener, never on the API address.
package main

import (
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"

	"ringo/internal/server"
)

func main() {
	addr := flag.String("addr", ":7475", "listen address")
	cacheSize := flag.Int("cache", server.DefaultCacheSize, "result cache entries (negative disables)")
	viewCache := flag.Int("view-cache", 0, "per-session CSR view cache entries (0 = default, negative disables)")
	workers := flag.Int("workers", server.DefaultWorkers, "async job workers")
	maxSessions := flag.Int("max-sessions", 0, "session cap (0 = unlimited)")
	allowFileIO := flag.Bool("allow-file-io", false, "permit load/loadgraph/save/snapshot/restore (host filesystem access) over HTTP")
	token := flag.String("token", "", "require 'Authorization: Bearer <token>' on every request (empty = no auth)")
	restorePath := flag.String("restore", "", "warm start: restore this workspace snapshot into a session before serving")
	restoreSession := flag.String("restore-session", "main", "session id the -restore snapshot is loaded into")
	logFormat := flag.String("log-format", "text", "structured log format: text or json")
	slowQuery := flag.Duration("slow-query", 0, "log any verb or script step at or above this duration (0 disables), e.g. 250ms")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof on this separate address (empty = no profiling listener)")
	flag.Parse()

	var handler slog.Handler
	switch *logFormat {
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	default:
		log.Fatalf("ringo-server: -log-format must be text or json, got %q", *logFormat)
	}
	logger := slog.New(handler)

	srv := server.New(server.Config{
		CacheSize:     *cacheSize,
		ViewCacheSize: *viewCache,
		Workers:       *workers,
		MaxSessions:   *maxSessions,
		AllowFileIO:   *allowFileIO,
		AuthToken:     *token,
		Logger:        logger,
		SlowQuery:     *slowQuery,
	})
	defer srv.Close()

	// Profiling stays off the public listener: pprof exposes heap contents
	// and stack traces, so it only comes up on its own address, which an
	// operator can bind to localhost while the API faces the network.
	if *debugAddr != "" {
		go func() {
			mux := http.NewServeMux()
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
			log.Printf("ringo-server debug listener (pprof) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Printf("ringo-server: debug listener: %v", err)
			}
		}()
	}

	if *restorePath != "" {
		if err := srv.WarmStart(*restoreSession, *restorePath); err != nil {
			log.Fatalf("ringo-server: -restore %s: %v", *restorePath, err)
		}
		log.Printf("ringo-server: restored session %q from %s", *restoreSession, *restorePath)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv}
	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt)
		<-sig
		fmt.Fprintln(os.Stderr, "ringo-server: shutting down")
		_ = httpSrv.Close()
	}()

	log.Printf("ringo-server listening on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("ringo-server: %v", err)
	}
}
