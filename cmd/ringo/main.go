// Command ringo is an interactive shell over the Ringo engine — the
// stand-in for the Python front-end of the paper (§2.5): the user composes
// table manipulation, graph construction and graph analytics verbs over
// named in-memory objects.
//
// Example session (the §4.1 StackOverflow expert demo):
//
//	gen posts P
//	select JP P Tag == Java
//	select Q JP Type == question
//	select A JP Type == answer
//	join QA Q A AcceptedId PostId
//	tograph G QA UserId-1 UserId-2
//	pagerank PR G
//	top PR 10
package main

import (
	"fmt"
	"os"
)

func main() {
	sh := newShell(os.Stdout)
	if err := sh.run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "ringo: %v\n", err)
		os.Exit(1)
	}
}
