// Command ringo is an interactive shell over the Ringo engine — the
// stand-in for the Python front-end of the paper (§2.5): the user composes
// table manipulation, graph construction and graph analytics verbs over
// named in-memory objects.
//
// Example session (the §4.1 StackOverflow expert demo):
//
//	gen posts P
//	select JP P Tag == Java
//	select Q JP Type == question
//	select A JP Type == answer
//	join QA Q A AcceptedId PostId
//	tograph G QA UserId-1 UserId-2
//	pagerank PR G
//	top PR 10
//
// With -script <file> the shell runs a script non-interactively instead:
// the same verbs, one per line, with # comments and @echo/@time/@continue
// directives (see docs/COMMANDS.md). The process exits non-zero if any
// step fails, naming the step, so scripts work in CI and cron:
//
//	ringo -script examples/quickstart/analysis.rng
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	scriptPath := flag.String("script", "",
		"run this script file non-interactively and exit (non-zero if a step fails)")
	flag.Parse()

	sh := newShell(os.Stdout)
	if *scriptPath != "" {
		if err := sh.runScriptFile(*scriptPath); err != nil {
			fmt.Fprintf(os.Stderr, "ringo: script %s: %v\n", *scriptPath, err)
			os.Exit(1)
		}
		return
	}
	if err := sh.run(os.Stdin); err != nil {
		fmt.Fprintf(os.Stderr, "ringo: %v\n", err)
		os.Exit(1)
	}
}
