package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"ringo/internal/repl"
	"ringo/internal/server"
)

// TestShellServerRoundTrip runs the same script through the terminal shell
// and through the HTTP server and checks the two front-ends produce
// identical results — both the structured form and the rendered text.
// Timing and cache provenance are normalized away: they describe how a
// result was obtained, not what it is.
func TestShellServerRoundTrip(t *testing.T) {
	script := []string{
		"gen rmat E 8 250 6",
		"tograph G E src dst",
		"pagerank PR G",
		"top PR 5",
		"algo G wcc",
		"algo G triangles",
		"scores2table S PR Node Score",
		"show S 5",
		"mv S Ranked",
		"rm Ranked",
		"ls",
	}

	// Shell side: the exact evaluate-and-render path exec uses.
	var shellResults []*repl.Result
	sh := newShell(&strings.Builder{})
	for _, line := range script {
		r, err := sh.eng.Eval(line)
		if err != nil {
			t.Fatalf("shell %q: %v", line, err)
		}
		shellResults = append(shellResults, r)
	}

	// Server side: same script over HTTP.
	srv := server.New(server.Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	if _, err := srv.CreateSession("rt"); err != nil {
		t.Fatal(err)
	}
	var serverResults []*repl.Result
	for _, line := range script {
		body, _ := json.Marshal(map[string]string{"cmd": line})
		resp, err := http.Post(ts.URL+"/sessions/rt/query", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("server %q: status %d", line, resp.StatusCode)
		}
		var r repl.Result
		if err := json.NewDecoder(resp.Body).Decode(&r); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		serverResults = append(serverResults, &r)
	}

	for i, line := range script {
		a, b := shellResults[i], serverResults[i]
		a.ElapsedNS, b.ElapsedNS = 0, 0
		a.Cached, b.Cached = false, false
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%q: shell and server results differ:\nshell:  %+v\nserver: %+v", line, a, b)
		}
		var at, bt strings.Builder
		a.Render(&at)
		b.Render(&bt)
		if at.String() != bt.String() {
			t.Errorf("%q: rendered output differs:\nshell:  %q\nserver: %q", line, at.String(), bt.String())
		}
	}
}

// TestShellRmMv covers the new workspace-management verbs through the
// terminal front-end.
func TestShellRmMv(t *testing.T) {
	out := runScript(t,
		"gen rmat E 6 40 1",
		"mv E Edges",
		"ls",
		"rm Edges",
		"ls",
	)
	if !strings.Contains(out, "renamed E to Edges") || !strings.Contains(out, "deleted Edges") {
		t.Fatalf("output: %s", out)
	}
	if !strings.Contains(out, "(workspace empty)") {
		t.Fatalf("rm did not empty the workspace: %s", out)
	}
	if !strings.Contains(out, "from: gen rmat E 6 40 1") {
		t.Fatalf("rename dropped provenance: %s", out)
	}
}
