package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunScriptFileQuickstart runs the shipped example script through the
// exact path `ringo -script examples/quickstart/analysis.rng` uses; a nil
// error is what main turns into exit status 0, so this pins the shipped
// artifact staying runnable.
func TestRunScriptFileQuickstart(t *testing.T) {
	var out strings.Builder
	sh := newShell(&out)
	if err := sh.runScriptFile("../../examples/quickstart/analysis.rng"); err != nil {
		t.Fatalf("quickstart script failed: %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{
		"ringo> gen rmat E 14 200000 42", // @echo
		"E: 200000 rows",
		"nodes scored",
		"# step 1:", // @time
	} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	if names := sh.sortedNames(); len(names) != 4 { // E G PR S
		t.Errorf("workspace after script: %v", names)
	}
}

// TestRunScriptFileFailure pins the CI/cron contract: a failing step makes
// runScriptFile return an error naming the step, which main maps to a
// non-zero exit.
func TestRunScriptFileFailure(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.rng")
	if err := os.WriteFile(path, []byte("gen rmat E 8 100 1\nshow NOPE\nls\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	sh := newShell(&out)
	err := sh.runScriptFile(path)
	if err == nil {
		t.Fatal("failing script returned nil")
	}
	if !strings.Contains(err.Error(), "step 2 (line 2)") {
		t.Errorf("error should name the failed step: %v", err)
	}
	if !strings.Contains(out.String(), "skipped after failure") {
		t.Errorf("rendered output should note skipped steps:\n%s", out.String())
	}
	if err := sh.runScriptFile(filepath.Join(t.TempDir(), "missing.rng")); err == nil {
		t.Error("missing script file returned nil")
	}
}

// TestSourceVerbInShell runs the same shipped script through the
// interactive front-end's source verb.
func TestSourceVerbInShell(t *testing.T) {
	out := runScript(t,
		"source ../../examples/quickstart/analysis.rng",
		"ls",
	)
	if !strings.Contains(out, "steps ok") {
		t.Fatalf("source output:\n%s", out)
	}
	if !strings.Contains(out, "from: tograph G E src dst") {
		t.Fatalf("sourced bindings should carry provenance:\n%s", out)
	}
}
