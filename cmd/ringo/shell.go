package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"ringo/internal/core"
	"ringo/internal/repl"
)

// shell is the interactive terminal front-end: a readline loop over the
// shared repl.Engine (the same evaluator the analytics server exposes over
// HTTP). Each line is one verb over named workspace objects; the engine
// returns a structured result and the shell renders it as text.
type shell struct {
	eng *repl.Engine
	ws  *core.Workspace
	out io.Writer
}

func newShell(out io.Writer) *shell {
	eng := repl.New(nil)
	return &shell{eng: eng, ws: eng.Workspace(), out: out}
}

// run processes commands until EOF or quit.
func (s *shell) run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(s.out, `ringo shell — type "help" for commands`)
	for {
		fmt.Fprint(s.out, "ringo> ")
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.exec(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	}
}

// exec evaluates a single command line and renders its result.
func (s *shell) exec(line string) error {
	r, err := s.eng.Eval(line)
	if err != nil {
		return err
	}
	r.Render(s.out)
	return nil
}

// sortedNames is used by tests to check deterministic listings.
func (s *shell) sortedNames() []string {
	names := s.ws.Names()
	sort.Strings(names)
	return names
}
