package main

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ringo"
	"ringo/internal/core"
)

// shell is the interactive front-end: the stand-in for Ringo's Python
// session. Each line is one verb over named workspace objects.
type shell struct {
	ws  *core.Workspace
	out io.Writer
	// currentLine is the command being executed; bind records it as the
	// provenance of objects the command creates.
	currentLine string
}

// bind stores an object in the workspace with the executing command as its
// provenance.
func (s *shell) bind(name string, o core.Object) {
	s.ws.SetWithProvenance(name, o, s.currentLine)
}

const helpText = `Ringo interactive shell — verbs over named objects.

  gen rmat <name> <scale> <edges> [seed]   generate an R-MAT edge table
  gen posts <name> [questions]             generate a StackOverflow-like posts table
  load <name> <file> <col:type>...         load a TSV into a table
  loadgraph <name> <file>                  load an edge-list file into a graph
  select <out> <tbl> <col> <op> <value>    filter rows (op: == != < <= > >=)
  filter <out> <tbl> <predicate>           filter with an expression, e.g. Tag = Java and Score > 3
  join <out> <left> <right> <lcol> <rcol>  equi-join two tables
  project <out> <tbl> <col>...             keep the named columns
  groupcount <out> <tbl> <col>...          group rows and count per group
  order <tbl> asc|desc <col>...            sort a table in place
  tograph <out> <tbl> <srccol> <dstcol>    table -> directed graph (sort-first)
  totable <out> <graph>                    graph -> edge table
  pagerank <out> <graph>                   10-iteration parallel PageRank
  scores2table <out> <scores> <key> <val>  score map -> sorted table
  algo <graph> triangles|wcc|scc|3core|diam|motifs|bridges|cuts|toposort|clustering
                                           run an analysis and print the result
  top <scores> [k]                         print the k best-scored nodes
  ls                                       list workspace objects
  show <tbl> [rows]                        print the first rows of a table
  save <tbl> <file>                        write a table as TSV
  help                                     this text
  quit                                     exit`

func newShell(out io.Writer) *shell {
	return &shell{ws: core.NewWorkspace(), out: out}
}

// run processes commands until EOF or quit.
func (s *shell) run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(s.out, `ringo shell — type "help" for commands`)
	for {
		fmt.Fprint(s.out, "ringo> ")
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.exec(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	}
}

// exec runs a single command line.
func (s *shell) exec(line string) error {
	s.currentLine = line
	args := strings.Fields(line)
	cmd, args := args[0], args[1:]
	switch cmd {
	case "help":
		fmt.Fprintln(s.out, helpText)
		return nil
	case "ls":
		return s.cmdLs()
	case "gen":
		return s.cmdGen(args)
	case "load":
		return s.cmdLoad(args)
	case "loadgraph":
		return s.cmdLoadGraph(args)
	case "select":
		return s.cmdSelect(args)
	case "filter":
		return s.cmdFilter(args)
	case "join":
		return s.cmdJoin(args)
	case "project":
		return s.cmdProject(args)
	case "groupcount":
		return s.cmdGroupCount(args)
	case "order":
		return s.cmdOrder(args)
	case "tograph":
		return s.cmdToGraph(args)
	case "totable":
		return s.cmdToTable(args)
	case "pagerank":
		return s.cmdPageRank(args)
	case "scores2table":
		return s.cmdScoresToTable(args)
	case "algo":
		return s.cmdAlgo(args)
	case "top":
		return s.cmdTop(args)
	case "show":
		return s.cmdShow(args)
	case "save":
		return s.cmdSave(args)
	default:
		return fmt.Errorf("unknown command %q (try help)", cmd)
	}
}

func need(args []string, n int, usage string) error {
	if len(args) < n {
		return fmt.Errorf("usage: %s", usage)
	}
	return nil
}

func (s *shell) cmdLs() error {
	names := s.ws.Names()
	if len(names) == 0 {
		fmt.Fprintln(s.out, "(workspace empty)")
		return nil
	}
	for _, n := range names {
		o, _ := s.ws.Get(n)
		if prov := s.ws.Provenance(n); prov != "" {
			fmt.Fprintf(s.out, "  %-12s %s\n               from: %s\n", n, o.Summary(), prov)
		} else {
			fmt.Fprintf(s.out, "  %-12s %s\n", n, o.Summary())
		}
	}
	return nil
}

func (s *shell) cmdGen(args []string) error {
	if err := need(args, 2, "gen rmat|posts <name> ..."); err != nil {
		return err
	}
	switch args[0] {
	case "rmat":
		if err := need(args, 4, "gen rmat <name> <scale> <edges> [seed]"); err != nil {
			return err
		}
		scale, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad scale %q", args[2])
		}
		edges, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return fmt.Errorf("bad edge count %q", args[3])
		}
		seed := int64(1)
		if len(args) > 4 {
			if seed, err = strconv.ParseInt(args[4], 10, 64); err != nil {
				return fmt.Errorf("bad seed %q", args[4])
			}
		}
		t := ringo.GenRMATTable(scale, edges, seed)
		s.bind(args[1], core.Object{Table: t})
		fmt.Fprintf(s.out, "%s: %d rows\n", args[1], t.NumRows())
		return nil
	case "posts":
		cfg := ringo.DefaultSOConfig()
		if len(args) > 2 {
			q, err := strconv.Atoi(args[2])
			if err != nil {
				return fmt.Errorf("bad question count %q", args[2])
			}
			cfg.Questions = q
		}
		t, err := ringo.GenStackOverflowPosts(cfg)
		if err != nil {
			return err
		}
		s.bind(args[1], core.Object{Table: t})
		fmt.Fprintf(s.out, "%s: %d rows\n", args[1], t.NumRows())
		return nil
	default:
		return fmt.Errorf("unknown generator %q", args[0])
	}
}

// parseSchema parses col:type tokens (type: int, float, string).
func parseSchema(tokens []string) (ringo.Schema, error) {
	schema := make(ringo.Schema, 0, len(tokens))
	for _, tok := range tokens {
		name, typ, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("column %q: want name:type", tok)
		}
		var ct ringo.ColType
		switch typ {
		case "int":
			ct = ringo.IntCol
		case "float":
			ct = ringo.FloatCol
		case "string", "str":
			ct = ringo.StringCol
		default:
			return nil, fmt.Errorf("column %q: unknown type %q", name, typ)
		}
		schema = append(schema, ringo.Column{Name: name, Type: ct})
	}
	return schema, nil
}

func (s *shell) cmdLoad(args []string) error {
	if err := need(args, 3, "load <name> <file> <col:type>..."); err != nil {
		return err
	}
	schema, err := parseSchema(args[2:])
	if err != nil {
		return err
	}
	t, err := ringo.LoadTableTSV(schema, args[1], false)
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: t})
	fmt.Fprintf(s.out, "%s: %d rows\n", args[0], t.NumRows())
	return nil
}

func (s *shell) cmdLoadGraph(args []string) error {
	if err := need(args, 2, "loadgraph <name> <file>"); err != nil {
		return err
	}
	g, err := ringo.LoadEdgeList(args[1])
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Graph: g})
	fmt.Fprintf(s.out, "%s: %d nodes, %d edges\n", args[0], g.NumNodes(), g.NumEdges())
	return nil
}

var opNames = map[string]ringo.CmpOp{
	"==": ringo.EQ, "=": ringo.EQ, "!=": ringo.NE,
	"<": ringo.LT, "<=": ringo.LE, ">": ringo.GT, ">=": ringo.GE,
}

// parseValue tries int, then float, then string.
func parseValue(tok string) any {
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f
	}
	return tok
}

func (s *shell) cmdSelect(args []string) error {
	if err := need(args, 5, "select <out> <tbl> <col> <op> <value>"); err != nil {
		return err
	}
	t, err := s.ws.Table(args[1])
	if err != nil {
		return err
	}
	op, ok := opNames[args[3]]
	if !ok {
		return fmt.Errorf("unknown operator %q", args[3])
	}
	// The value may contain spaces if quoted crudely; join the rest.
	val := parseValue(strings.Join(args[4:], " "))
	out, err := ringo.Select(t, args[2], op, val)
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: out})
	fmt.Fprintf(s.out, "%s: %d rows\n", args[0], out.NumRows())
	return nil
}

// cmdFilter is expression select: filter <out> <tbl> <predicate...>, e.g.
// filter JQ P Tag = Java and Type = question
func (s *shell) cmdFilter(args []string) error {
	if err := need(args, 3, "filter <out> <tbl> <predicate>"); err != nil {
		return err
	}
	t, err := s.ws.Table(args[1])
	if err != nil {
		return err
	}
	out, err := ringo.SelectExpr(t, strings.Join(args[2:], " "))
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: out})
	fmt.Fprintf(s.out, "%s: %d rows\n", args[0], out.NumRows())
	return nil
}

func (s *shell) cmdJoin(args []string) error {
	if err := need(args, 5, "join <out> <left> <right> <lcol> <rcol>"); err != nil {
		return err
	}
	l, err := s.ws.Table(args[1])
	if err != nil {
		return err
	}
	r, err := s.ws.Table(args[2])
	if err != nil {
		return err
	}
	out, err := ringo.Join(l, r, args[3], args[4])
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: out})
	fmt.Fprintf(s.out, "%s: %d rows (%s)\n", args[0], out.NumRows(), strings.Join(out.ColNames(), ", "))
	return nil
}

func (s *shell) cmdProject(args []string) error {
	if err := need(args, 3, "project <out> <tbl> <col>..."); err != nil {
		return err
	}
	t, err := s.ws.Table(args[1])
	if err != nil {
		return err
	}
	out, err := t.Project(args[2:]...)
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: out})
	fmt.Fprintf(s.out, "%s: %d rows\n", args[0], out.NumRows())
	return nil
}

func (s *shell) cmdGroupCount(args []string) error {
	if err := need(args, 3, "groupcount <out> <tbl> <col>..."); err != nil {
		return err
	}
	t, err := s.ws.Table(args[1])
	if err != nil {
		return err
	}
	out, err := t.Aggregate(args[2:], ringo.Count, "", "count")
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: out})
	fmt.Fprintf(s.out, "%s: %d groups\n", args[0], out.NumRows())
	return nil
}

func (s *shell) cmdOrder(args []string) error {
	if err := need(args, 3, "order <tbl> asc|desc <col>..."); err != nil {
		return err
	}
	t, err := s.ws.Table(args[0])
	if err != nil {
		return err
	}
	desc := args[1] == "desc"
	if !desc && args[1] != "asc" {
		return fmt.Errorf("want asc or desc, got %q", args[1])
	}
	return t.OrderBy(desc, args[2:]...)
}

func (s *shell) cmdToGraph(args []string) error {
	if err := need(args, 4, "tograph <out> <tbl> <srccol> <dstcol>"); err != nil {
		return err
	}
	t, err := s.ws.Table(args[1])
	if err != nil {
		return err
	}
	g, err := ringo.ToGraph(t, args[2], args[3])
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Graph: g})
	fmt.Fprintf(s.out, "%s: %d nodes, %d edges\n", args[0], g.NumNodes(), g.NumEdges())
	return nil
}

func (s *shell) cmdToTable(args []string) error {
	if err := need(args, 2, "totable <out> <graph>"); err != nil {
		return err
	}
	g, err := s.ws.Graph(args[1])
	if err != nil {
		return err
	}
	t, err := ringo.ToTable(g, "src", "dst")
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: t})
	fmt.Fprintf(s.out, "%s: %d rows\n", args[0], t.NumRows())
	return nil
}

func (s *shell) cmdPageRank(args []string) error {
	if err := need(args, 2, "pagerank <out> <graph>"); err != nil {
		return err
	}
	g, err := s.ws.Graph(args[1])
	if err != nil {
		return err
	}
	var pr map[int64]float64
	dt := core.Timed(func() { pr = ringo.GetPageRank(g) })
	s.bind(args[0], core.Object{Scores: pr})
	fmt.Fprintf(s.out, "%s: %d nodes scored in %v\n", args[0], len(pr), dt)
	return nil
}

func (s *shell) cmdScoresToTable(args []string) error {
	if err := need(args, 4, "scores2table <out> <scores> <keycol> <valcol>"); err != nil {
		return err
	}
	sc, err := s.ws.Scores(args[1])
	if err != nil {
		return err
	}
	t, err := ringo.TableFromMap(sc, args[2], args[3])
	if err != nil {
		return err
	}
	s.bind(args[0], core.Object{Table: t})
	fmt.Fprintf(s.out, "%s: %d rows\n", args[0], t.NumRows())
	return nil
}

func (s *shell) cmdAlgo(args []string) error {
	if err := need(args, 2, "algo <graph> triangles|wcc|scc|3core|diam"); err != nil {
		return err
	}
	g, err := s.ws.Graph(args[0])
	if err != nil {
		return err
	}
	switch args[1] {
	case "triangles":
		var n int64
		dt := core.Timed(func() { n = ringo.CountTriangles(ringo.AsUndirected(g)) })
		fmt.Fprintf(s.out, "%d triangles in %v\n", n, dt)
	case "wcc":
		var c ringo.Components
		dt := core.Timed(func() { c = ringo.GetWCC(g) })
		fmt.Fprintf(s.out, "%d weak components, largest %d, in %v\n", c.Count, c.MaxSize, dt)
	case "scc":
		var c ringo.Components
		dt := core.Timed(func() { c = ringo.GetSCC(g) })
		fmt.Fprintf(s.out, "%d strong components, largest %d, in %v\n", c.Count, c.MaxSize, dt)
	case "3core":
		var k *ringo.UGraph
		dt := core.Timed(func() { k = ringo.GetKCoreDirected(g, 3) })
		fmt.Fprintf(s.out, "3-core: %d nodes, %d edges, in %v\n", k.NumNodes(), k.NumEdges(), dt)
	case "diam":
		var d int
		dt := core.Timed(func() { d = ringo.GetApproxDiameter(g, 8, 1) })
		fmt.Fprintf(s.out, "approximate diameter %d in %v\n", d, dt)
	case "motifs":
		var mc ringo.MotifCounts
		dt := core.Timed(func() { mc = ringo.CountMotifs(g) })
		fmt.Fprintf(s.out, "%d cyclic triangles, %d transitive triangles, %d wedges, in %v\n",
			mc.CyclicTriangles, mc.TransTriangles, mc.Wedges, dt)
	case "bridges":
		var br [][2]int64
		dt := core.Timed(func() { br = ringo.GetBridges(ringo.AsUndirected(g)) })
		fmt.Fprintf(s.out, "%d bridges in %v\n", len(br), dt)
	case "cuts":
		var cuts []int64
		dt := core.Timed(func() { cuts = ringo.GetArticulationPoints(ringo.AsUndirected(g)) })
		fmt.Fprintf(s.out, "%d articulation points in %v\n", len(cuts), dt)
	case "toposort":
		order, err := ringo.TopoSort(g)
		if err != nil {
			fmt.Fprintf(s.out, "not a DAG: %v\n", err)
			return nil
		}
		fmt.Fprintf(s.out, "topological order of %d nodes (first 10): %v\n", len(order), order[:min(10, len(order))])
	case "clustering":
		var cc float64
		dt := core.Timed(func() { cc = ringo.GetClusteringCoefficient(ringo.AsUndirected(g)) })
		fmt.Fprintf(s.out, "average clustering coefficient %.4f in %v\n", cc, dt)
	default:
		return fmt.Errorf("unknown algorithm %q", args[1])
	}
	return nil
}

func (s *shell) cmdTop(args []string) error {
	if err := need(args, 1, "top <scores> [k]"); err != nil {
		return err
	}
	sc, err := s.ws.Scores(args[0])
	if err != nil {
		return err
	}
	k := 10
	if len(args) > 1 {
		if k, err = strconv.Atoi(args[1]); err != nil {
			return fmt.Errorf("bad k %q", args[1])
		}
	}
	for i, sco := range ringo.TopK(sc, k) {
		fmt.Fprintf(s.out, "  %2d. node %-10d %.6f\n", i+1, sco.ID, sco.Score)
	}
	return nil
}

func (s *shell) cmdShow(args []string) error {
	if err := need(args, 1, "show <tbl> [rows]"); err != nil {
		return err
	}
	t, err := s.ws.Table(args[0])
	if err != nil {
		return err
	}
	n := 10
	if len(args) > 1 {
		if n, err = strconv.Atoi(args[1]); err != nil {
			return fmt.Errorf("bad row count %q", args[1])
		}
	}
	if n > t.NumRows() {
		n = t.NumRows()
	}
	fmt.Fprintf(s.out, "  %s\n", strings.Join(t.ColNames(), "\t"))
	for row := 0; row < n; row++ {
		cells := make([]string, t.NumCols())
		for col := range cells {
			cells[col] = fmt.Sprint(t.Value(col, row))
		}
		fmt.Fprintf(s.out, "  %s\n", strings.Join(cells, "\t"))
	}
	if t.NumRows() > n {
		fmt.Fprintf(s.out, "  ... %d more rows\n", t.NumRows()-n)
	}
	return nil
}

func (s *shell) cmdSave(args []string) error {
	if err := need(args, 2, "save <tbl> <file>"); err != nil {
		return err
	}
	t, err := s.ws.Table(args[0])
	if err != nil {
		return err
	}
	if err := t.SaveTSVFile(args[1], true); err != nil {
		return err
	}
	fmt.Fprintf(s.out, "wrote %d rows to %s\n", t.NumRows(), args[1])
	return nil
}

// sortedNames is used by tests to check deterministic listings.
func (s *shell) sortedNames() []string {
	names := s.ws.Names()
	sort.Strings(names)
	return names
}
