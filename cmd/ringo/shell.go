package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"ringo/internal/core"
	"ringo/internal/repl"
)

// shell is the interactive terminal front-end: a readline loop over the
// shared repl.Engine (the same evaluator the analytics server exposes over
// HTTP). Each line is one verb over named workspace objects; the engine
// returns a structured result and the shell renders it as text.
type shell struct {
	eng *repl.Engine
	ws  *core.Workspace
	out io.Writer
}

func newShell(out io.Writer) *shell {
	eng := repl.New(nil)
	return &shell{eng: eng, ws: eng.Workspace(), out: out}
}

// run processes commands until EOF or quit.
func (s *shell) run(in io.Reader) error {
	sc := bufio.NewScanner(in)
	fmt.Fprintln(s.out, `ringo shell — type "help" for commands`)
	for {
		fmt.Fprint(s.out, "ringo> ")
		if !sc.Scan() {
			fmt.Fprintln(s.out)
			return sc.Err()
		}
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" || line == "exit" {
			return nil
		}
		if err := s.exec(line); err != nil {
			fmt.Fprintf(s.out, "error: %v\n", err)
		}
	}
}

// exec evaluates a single command line and renders its result.
func (s *shell) exec(line string) error {
	r, err := s.eng.Eval(line)
	if err != nil {
		return err
	}
	r.Render(s.out)
	return nil
}

// runScriptFile executes a script file as one batch (the -script flag's
// non-interactive mode) and renders each step as a live session would
// have. The returned error, if any, names the first failed step and its
// source line; main turns it into a non-zero exit so scripts compose with
// CI and cron.
func (s *shell) runScriptFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	script, err := repl.ParseScript(string(data))
	if err != nil {
		return err
	}
	sr := s.eng.EvalScript(script)
	repl.RenderScript(s.out, sr)
	return sr.Err()
}

// sortedNames is used by tests to check deterministic listings.
func (s *shell) sortedNames() []string {
	names := s.ws.Names()
	sort.Strings(names)
	return names
}
