package main

import (
	"strings"
	"testing"
)

// runScript executes commands against a fresh shell and returns the output.
func runScript(t *testing.T, lines ...string) string {
	t.Helper()
	var out strings.Builder
	sh := newShell(&out)
	for _, line := range lines {
		if err := sh.exec(line); err != nil {
			t.Fatalf("command %q: %v", line, err)
		}
	}
	return out.String()
}

func TestShellExpertDemoScript(t *testing.T) {
	out := runScript(t,
		"gen posts P 500",
		"select JP P Tag == Java",
		"select Q JP Type == question",
		"select A JP Type == answer",
		"join QA Q A AcceptedId PostId",
		"tograph G QA UserId-1 UserId-2",
		"pagerank PR G",
		"scores2table S PR User Scr",
		"top PR 5",
		"ls",
	)
	for _, want := range []string{"nodes scored", "node "} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellRMATAndAlgos(t *testing.T) {
	out := runScript(t,
		"gen rmat E 10 3000 5",
		"tograph G E src dst",
		"algo G triangles",
		"algo G wcc",
		"algo G scc",
		"algo G 3core",
		"algo G diam",
		"algo G motifs",
		"algo G bridges",
		"algo G cuts",
		"algo G toposort",
		"algo G clustering",
		"totable T G",
		"groupcount C T src",
		"order C desc count",
		"show C 3",
	)
	for _, want := range []string{"triangles in", "weak components", "strong components", "3-core:", "diameter"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestShellProjectAndSaveLoad(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	sh := newShell(&out)
	for _, line := range []string{
		"gen rmat E 8 200 1",
		"project P E src",
		"save E " + dir + "/e.tsv",
	} {
		if err := sh.exec(line); err != nil {
			t.Fatalf("%q: %v", line, err)
		}
	}
	// Saved file has a header line; load skips unparseable header via
	// explicit schema with header handling off, so strip it by loading the
	// graph from a headerless re-save instead.
	tbl, err := sh.ws.Table("E")
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.SaveTSVFile(dir+"/raw.tsv", false); err != nil {
		t.Fatal(err)
	}
	if err := sh.exec("load L " + dir + "/raw.tsv src:int dst:int"); err != nil {
		t.Fatal(err)
	}
	l, err := sh.ws.Table("L")
	if err != nil {
		t.Fatal(err)
	}
	if l.NumRows() != tbl.NumRows() {
		t.Fatalf("reload rows = %d, want %d", l.NumRows(), tbl.NumRows())
	}
	if err := sh.exec("loadgraph G " + dir + "/raw.tsv"); err != nil {
		t.Fatal(err)
	}
}

func TestShellErrors(t *testing.T) {
	var out strings.Builder
	sh := newShell(&out)
	for _, line := range []string{
		"bogus",
		"select X",
		"select X missing col == 1",
		"join X a b c d",
		"tograph X missing a b",
		"pagerank X missing",
		"top missing",
		"algo missing wcc",
		"gen rmat X notanumber 5",
		"gen nope X",
		"load X /nonexistent a:int",
		"order X asc a",
		"show missing",
	} {
		if err := sh.exec(line); err == nil {
			t.Fatalf("command %q did not error", line)
		}
	}
}

func TestShellSelectValueParsing(t *testing.T) {
	out := runScript(t,
		"gen posts P 300",
		"select HI P Score >= 10",  // float column, int token
		"select T P Tag != Java",   // string
		"select U P UserId <= 100", // int
	)
	if !strings.Contains(out, "rows") {
		t.Fatalf("output: %s", out)
	}
}

func TestShellRunLoop(t *testing.T) {
	var out strings.Builder
	sh := newShell(&out)
	in := strings.NewReader("gen rmat E 6 50\nls\n# comment\n\nbadcmd\nquit\n")
	if err := sh.run(in); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "error: unknown command") {
		t.Fatalf("run loop did not surface error: %s", s)
	}
	if !strings.Contains(s, "E") {
		t.Fatalf("ls output missing object: %s", s)
	}
}

func TestShellProvenanceShownInLs(t *testing.T) {
	out := runScript(t,
		"gen rmat E 8 100 3",
		"tograph G E src dst",
		"ls",
	)
	if !strings.Contains(out, "from: gen rmat E 8 100 3") {
		t.Fatalf("ls missing provenance:\n%s", out)
	}
	if !strings.Contains(out, "from: tograph G E src dst") {
		t.Fatalf("ls missing graph provenance:\n%s", out)
	}
}

func TestSortedNames(t *testing.T) {
	var out strings.Builder
	sh := newShell(&out)
	_ = sh.exec("gen rmat B 6 50")
	_ = sh.exec("gen rmat A 6 50")
	names := sh.sortedNames()
	if len(names) != 2 || names[0] != "A" || names[1] != "B" {
		t.Fatalf("sorted names = %v", names)
	}
}
