// Package ringo is a Go reproduction of Ringo, the interactive graph
// analytics system for big-memory machines by Perez, Sosič, Banerjee,
// Puttagunta, Raison, Shah and Leskovec (SIGMOD 2015).
//
// Ringo's thesis is that a single shared-memory machine is the right
// platform for analytics on all but the largest graphs, provided the system
// tightly integrates three things:
//
//   - a relational table engine (column store with persistent row ids) for
//     manipulating raw input data,
//   - a dynamic in-memory graph engine (a hash table of nodes with sorted
//     adjacency vectors) with a large algorithm library, and
//   - fast parallel conversions between the two representations, so the
//     iterative explore-build-analyze loop of data science stays
//     interactive.
//
// This package is the public façade over the engine. It mirrors the verbs
// of Ringo's Python front-end:
//
//	posts, _ := ringo.LoadTableTSV(schema, "posts.tsv", true)
//	jp, _ := ringo.Select(posts, "Tag", ringo.EQ, "Java")
//	q, _ := ringo.Select(jp, "Type", ringo.EQ, "question")
//	a, _ := ringo.Select(jp, "Type", ringo.EQ, "answer")
//	qa, _ := ringo.Join(q, a, "AcceptedId", "PostId")
//	g, _ := ringo.ToGraph(qa, "UserId-1", "UserId-2")
//	pr := ringo.GetPageRank(g)
//	experts, _ := ringo.TableFromMap(pr, "User", "Scr")
//
// Beyond the library façade, the engine is exposed two interactive ways
// over the same evaluator (internal/repl): cmd/ringo is the single-user
// terminal shell, and cmd/ringo-server is a multi-session HTTP service.
// The server gives every analyst an isolated named Workspace guarded by a
// per-session RWMutex (read-only queries run concurrently), shares one LRU
// result cache keyed by object fingerprint + command so repeated analytics
// on unchanged data are answered without recomputation, and accepts
// long-running algorithms as async jobs polled by id. NewEngine, NewServer
// and NewWorkspace construct these pieces programmatically; see README.md
// for the HTTP API and a curl quickstart.
//
// Interactivity rests on a second cache beneath the result cache: every
// workspace carries a fingerprint-keyed CSR view cache (Workspace
// DirectedView/UndirectedView), so the optimized flat-array representation
// of a graph (View/UView) is built once, on the first query, and every
// later algorithm over the unchanged graph — even a different one — skips
// the O(V+E) conversion and runs straight over resident arrays. Any
// mutation moves the graph's fingerprint and purges its views. The
// package-level Example below walks the load → query → snapshot loop.
//
// Whole analyses batch as scripts — one verb per line, # comments,
// @echo/@time/@continue directives — executed with per-step results and
// timings by RunScript here, the shell's source verb, ringo -script for CI
// and cron, or one POST /sessions/{id}/script round trip holding the
// session lock once for the whole batch (ExampleRunScript shows the
// library form).
//
// See docs/ARCHITECTURE.md for the package map and data flow,
// docs/COMMANDS.md for the shell verb and script reference, docs/SERVER.md
// for the HTTP API, and docs/FORMATS.md for every on-disk byte layout;
// cmd/ringo-bench regenerates the paper's evaluation tables.
package ringo
