package ringo_test

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// docRef matches repo-relative markdown/file references worth checking:
// docs/*.md pages, root-level UPPERCASE.md files, and shipped example
// artifacts like examples/quickstart/analysis.rng.
var docRef = regexp.MustCompile(`(?:docs/[A-Za-z0-9_.-]+\.md|\b[A-Z][A-Z0-9_]*\.md\b|examples/[A-Za-z0-9_/.-]+\.rng)`)

// TestDocReferencesResolve is the link check of the docs tree: every
// docs/*.md page, root doc file or shipped script referenced from
// README.md, doc.go or any docs/*.md must exist in the repository. This is
// what catches a renamed or never-written page that prose still points at
// (doc.go referenced DESIGN.md and EXPERIMENTS.md for several PRs after
// they stopped existing).
func TestDocReferencesResolve(t *testing.T) {
	sources := []string{"README.md", "doc.go"}
	pages, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	if len(pages) == 0 {
		t.Fatal("no docs/*.md pages found")
	}
	sources = append(sources, pages...)

	for _, src := range sources {
		data, err := os.ReadFile(src)
		if err != nil {
			t.Fatalf("reading %s: %v", src, err)
		}
		for _, ref := range docRef.FindAllString(string(data), -1) {
			// A page naming itself or a sibling by bare name ("COMMANDS.md
			// is the verb reference") refers into docs/ when the file lives
			// there; try both roots.
			candidates := []string{ref}
			if !strings.Contains(ref, "/") {
				candidates = append(candidates, filepath.Join("docs", ref))
			}
			found := false
			for _, c := range candidates {
				if _, err := os.Stat(c); err == nil {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s references %q, which does not exist", src, ref)
			}
		}
	}
}

// TestFormatsDocNamesEveryMagic keeps docs/FORMATS.md anchored to the
// codecs: each on-disk magic string must appear in the page, so adding or
// renaming a format without documenting its layout fails here.
func TestFormatsDocNamesEveryMagic(t *testing.T) {
	data, err := os.ReadFile("docs/FORMATS.md")
	if err != nil {
		t.Fatalf("docs/FORMATS.md missing: %v", err)
	}
	for _, magic := range []string{"RNGS", "RTBL", "RNGO", "RNGU", "RNGM", "# node "} {
		if !strings.Contains(string(data), magic) {
			t.Errorf("docs/FORMATS.md does not mention the %q format", magic)
		}
	}
}
