package ringo_test

import (
	"bytes"
	"net/http/httptest"
	"testing"

	"ringo"
)

// TestSnapshotFacade round-trips a full workspace — table with strings,
// directed graph, undirected graph, score map — through the re-exported
// snapshot API, checking fingerprints are reproduced.
func TestSnapshotFacade(t *testing.T) {
	ws := ringo.NewWorkspace()
	eng := ringo.NewEngine(ws)
	for _, cmd := range []string{"gen posts P 40", "gen rmat E 7 100 2", "tograph G E src dst", "pagerank PR G"} {
		if _, err := eng.Eval(cmd); err != nil {
			t.Fatalf("Eval(%q): %v", cmd, err)
		}
	}
	u, err := ringo.ToUGraph(mustTable(t, ws, "E"), "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	ws.SetWithProvenance("U", ringo.Object{UGraph: u}, "tougraph U E src dst")

	var buf bytes.Buffer
	if err := ringo.SnapshotWorkspace(ws, &buf); err != nil {
		t.Fatal(err)
	}
	back, err := ringo.RestoreWorkspace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	names := back.Names()
	if len(names) != 5 {
		t.Fatalf("restored %d objects: %v", len(names), names)
	}
	for _, name := range names {
		wantFP, _ := ws.Fingerprint(name)
		gotFP, ok := back.Fingerprint(name)
		if !ok || gotFP != wantFP {
			t.Fatalf("fingerprint(%s) = %q, want %q", name, gotFP, wantFP)
		}
		if back.Provenance(name) != ws.Provenance(name) {
			t.Fatalf("provenance(%s) changed", name)
		}
	}
	// The restored engine keeps working: analytics over restored objects.
	eng2 := ringo.NewEngine(back)
	if _, err := eng2.Eval("algo G wcc"); err != nil {
		t.Fatal(err)
	}
}

func mustTable(t *testing.T, ws *ringo.Workspace, name string) *ringo.Table {
	t.Helper()
	tbl, err := ws.Table(name)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

// TestEngineAndServerFacade exercises the interactive-engine re-exports:
// a workspace-backed evaluator and the HTTP server constructor.
func TestEngineAndServerFacade(t *testing.T) {
	ws := ringo.NewWorkspace()
	eng := ringo.NewEngine(ws)
	for _, cmd := range []string{"gen rmat E 7 100 2", "tograph G E src dst", "pagerank PR G"} {
		if _, err := eng.Eval(cmd); err != nil {
			t.Fatalf("Eval(%q): %v", cmd, err)
		}
	}
	if eng.Workspace() != ws {
		t.Fatal("engine not backed by the provided workspace")
	}
	fp, ok := ws.Fingerprint("G")
	if !ok || fp == "" {
		t.Fatalf("Fingerprint(G) = %q, %v", fp, ok)
	}
	if err := ws.Rename("PR", "Ranks"); err != nil {
		t.Fatal(err)
	}
	if !ws.Delete("Ranks") {
		t.Fatal("Delete(Ranks) = false")
	}

	srv := ringo.NewServer(ringo.ServerConfig{CacheSize: 8, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	id, err := srv.CreateSession("")
	if err != nil {
		t.Fatal(err)
	}
	r, err := srv.Eval(id, "gen rmat E 6 30 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Message != "E: 30 rows" {
		t.Fatalf("server eval message = %q", r.Message)
	}
}
