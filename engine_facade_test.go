package ringo_test

import (
	"net/http/httptest"
	"testing"

	"ringo"
)

// TestEngineAndServerFacade exercises the interactive-engine re-exports:
// a workspace-backed evaluator and the HTTP server constructor.
func TestEngineAndServerFacade(t *testing.T) {
	ws := ringo.NewWorkspace()
	eng := ringo.NewEngine(ws)
	for _, cmd := range []string{"gen rmat E 7 100 2", "tograph G E src dst", "pagerank PR G"} {
		if _, err := eng.Eval(cmd); err != nil {
			t.Fatalf("Eval(%q): %v", cmd, err)
		}
	}
	if eng.Workspace() != ws {
		t.Fatal("engine not backed by the provided workspace")
	}
	fp, ok := ws.Fingerprint("G")
	if !ok || fp == "" {
		t.Fatalf("Fingerprint(G) = %q, %v", fp, ok)
	}
	if err := ws.Rename("PR", "Ranks"); err != nil {
		t.Fatal(err)
	}
	if !ws.Delete("Ranks") {
		t.Fatal("Delete(Ranks) = false")
	}

	srv := ringo.NewServer(ringo.ServerConfig{CacheSize: 8, Workers: 1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()
	id, err := srv.CreateSession("")
	if err != nil {
		t.Fatal(err)
	}
	r, err := srv.Eval(id, "gen rmat E 6 30 1")
	if err != nil {
		t.Fatal(err)
	}
	if r.Message != "E: 30 rows" {
		t.Fatalf("server eval message = %q", r.Message)
	}
}
