package ringo_test

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"ringo"
)

// Example walks the canonical interactive loop from the paper — load data,
// convert it to a graph, query it, persist the session — through the same
// engine the shell and the HTTP server drive. The two analytics queries
// share one workspace, so the second runs over the cached CSR view of G
// with no reconversion; the snapshot round trip then restores every
// binding (with provenance and fingerprints) into a fresh workspace.
func Example() {
	eng := ringo.NewEngine(nil)
	run := func(cmd string) *ringo.Result {
		r, err := eng.Eval(cmd)
		if err != nil {
			log.Fatal(err)
		}
		return r
	}

	run("gen rmat E 10 4000 7")               // load: a deterministic edge table
	run("tograph G E src dst")                // build: parallel sort-first conversion
	fmt.Println(run("pagerank PR G").Message) // query 1: builds G's CSR view
	fmt.Println(run("algo G wcc").Message)    // query 2: reuses the cached view

	dir, err := os.MkdirTemp("", "ringo-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "session.snap")
	run("snapshot " + path) // persist the whole workspace

	ws2 := ringo.NewWorkspace()
	eng2 := ringo.NewEngine(ws2)
	if _, err := eng2.Eval("restore " + path); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("restored %d objects: %v\n", len(ws2.Names()), ws2.Names())

	// Output:
	// PR: 702 nodes scored
	// 2 weak components, largest 700
	// restored 3 objects: [E G PR]
}

// ExampleRunScript executes a saved analysis as one batch: the same verbs
// an interactive session would type, parsed and run in order with
// per-step results and timings. A failing step stops the run (unless the
// script declares @continue) and is reported by ScriptResult.Err — the
// same contract `ringo -script` turns into a non-zero exit.
func ExampleRunScript() {
	eng := ringo.NewEngine(nil)
	sr, err := ringo.RunScript(eng, `
# build and rank a small graph
gen rmat E 10 4000 7
tograph G E src dst
pagerank PR G
algo G wcc
`)
	if err != nil { // parse errors only; step failures land on sr
		log.Fatal(err)
	}
	if err := sr.Err(); err != nil {
		log.Fatal(err)
	}
	for _, step := range sr.Steps {
		fmt.Println(step.Result.Message)
	}
	fmt.Printf("%d steps ok\n", sr.OK)

	// Output:
	// E: 4000 rows
	// G: 702 nodes, 3561 edges
	// PR: 702 nodes scored
	// 2 weak components, largest 700
	// 4 steps ok
}
