// Propagation traces information spread through a social network — one of
// the three motivating tasks in the paper's introduction ("tracing the
// propagation of information in a social network"). It builds a
// LiveJournal-like graph, then compares seed-selection strategies for an
// independent-cascade diffusion: random seeds, top-degree seeds, and
// top-PageRank seeds, averaging cascade sizes over several simulations.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"ringo"
)

func main() {
	edges := flag.Int64("edges", 300_000, "edge rows in the synthetic graph")
	scale := flag.Int("scale", 15, "log2 node id space")
	seeds := flag.Int("seeds", 5, "number of seed nodes per strategy")
	prob := flag.Float64("p", 0.05, "per-edge activation probability")
	runs := flag.Int("runs", 10, "simulations per strategy")
	flag.Parse()

	tbl := ringo.GenRMATTable(*scale, *edges, 17)
	g, err := ringo.ToGraph(tbl, "src", "dst")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	strategies := map[string][]int64{
		"random":   randomSeeds(g, *seeds),
		"degree":   topDegreeSeeds(g, *seeds),
		"pagerank": topPageRankSeeds(g, *seeds),
	}

	fmt.Printf("independent cascade, p=%.2f, %d seeds, %d runs per strategy:\n", *prob, *seeds, *runs)
	names := make([]string, 0, len(strategies))
	for name := range strategies {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		var total int
		var maxRounds int
		for r := 0; r < *runs; r++ {
			active := ringo.SimulateCascade(g, strategies[name], *prob, int64(1000+r))
			total += len(active)
			for _, round := range active {
				if round > maxRounds {
					maxRounds = round
				}
			}
		}
		fmt.Printf("  %-9s avg cascade %6.0f nodes (%.1f%% of graph), deepest round %d\n",
			name, float64(total)/float64(*runs),
			100*float64(total)/float64(*runs)/float64(g.NumNodes()), maxRounds)
	}
	fmt.Println("\n(influence-aware seeding should beat random seeding on skewed graphs)")
}

func randomSeeds(g *ringo.Graph, k int) []int64 {
	nodes := g.Nodes()
	// Deterministic spread across the id space.
	out := make([]int64, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, nodes[(i*7919)%len(nodes)])
	}
	return out
}

func topDegreeSeeds(g *ringo.Graph, k int) []int64 {
	deg := map[int64]float64{}
	g.ForNodes(func(id int64) { deg[id] = float64(g.OutDeg(id)) })
	scored := ringo.TopK(deg, k)
	out := make([]int64, len(scored))
	for i, s := range scored {
		out[i] = s.ID
	}
	return out
}

func topPageRankSeeds(g *ringo.Graph, k int) []int64 {
	scored := ringo.TopK(ringo.GetPageRank(g), k)
	out := make([]int64, len(scored))
	for i, s := range scored {
		out[i] = s.ID
	}
	return out
}
