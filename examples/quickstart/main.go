// Quickstart walks the full Ringo analytics loop of Figure 2 in the paper:
// raw data arrives as a relational table, graph construction operations
// shape it, the sort-first conversion builds an optimized graph object,
// graph algorithms run on it, and the results land back in tables for
// further relational analysis.
package main

import (
	"fmt"
	"log"

	"ringo"
)

func main() {
	// 1. Raw input: an edge log as a relational table. In a real workflow
	// this would come from ringo.LoadTableTSV; here a generator with the
	// skew of a social graph stands in.
	edges := ringo.GenRMATTable(14, 200_000, 42)
	fmt.Printf("raw edge table: %d rows\n", edges.NumRows())

	// 2. Table manipulation: drop self-loops before building the graph.
	src, err := edges.IntCol("src")
	if err != nil {
		log.Fatal(err)
	}
	dst, err := edges.IntCol("dst")
	if err != nil {
		log.Fatal(err)
	}
	clean := edges.SelectFunc(func(row int) bool { return src[row] != dst[row] })
	fmt.Printf("after removing self-loops: %d rows\n", clean.NumRows())

	// 3. Convert to the optimized graph representation (sort-first, §2.4).
	g, err := ringo.ToGraph(clean, "src", "dst")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.NumNodes(), g.NumEdges())

	// 4. Graph analytics.
	pr := ringo.GetPageRank(g)
	wcc := ringo.GetWCC(g)
	tri := ringo.CountTriangles(ringo.AsUndirected(g))
	fmt.Printf("analytics: %d weak components (largest %d), %d triangles\n",
		wcc.Count, wcc.MaxSize, tri)

	// 5. Results back into tables, joined and aggregated relationally.
	ranks, err := ringo.TableFromMap(pr, "node", "rank")
	if err != nil {
		log.Fatal(err)
	}
	comps, err := ringo.TableFromIntMap(wcc.Label, "node", "component")
	if err != nil {
		log.Fatal(err)
	}
	joined, err := ringo.Join(ranks, comps, "node", "node")
	if err != nil {
		log.Fatal(err)
	}
	perComp, err := joined.Aggregate([]string{"component"}, ringo.Sum, "rank", "mass")
	if err != nil {
		log.Fatal(err)
	}
	if err := perComp.OrderBy(true, "mass"); err != nil {
		log.Fatal(err)
	}
	compCol, _ := perComp.IntCol("component")
	massCol, _ := perComp.FloatCol("mass")
	fmt.Println("top components by PageRank mass:")
	for i := 0; i < 3 && i < perComp.NumRows(); i++ {
		fmt.Printf("  component %d: %.4f\n", compCol[i], massCol[i])
	}

	// 6. And the loop closes: the graph exports back to a table.
	back, err := ringo.ToTable(g, "src", "dst")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph exported back to a %d-row edge table\n", back.NumRows())
}
