// Socialnetwork is an interactive-style exploration session over a
// LiveJournal-like social graph: the kind of trial-and-error analysis the
// paper's §4.2 performance demo runs on a big-memory machine, here at
// laptop scale. It reports degree structure, connectivity, cores,
// triangles, distances and communities — each produced by one engine call.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"ringo"
)

func timed[T any](label string, fn func() T) T {
	start := time.Now()
	v := fn()
	fmt.Printf("  [%s took %v]\n", label, time.Since(start).Round(time.Millisecond))
	return v
}

func main() {
	scale := flag.Int("scale", 15, "log2 of the node id space")
	edges := flag.Int64("edges", 500_000, "number of edge rows")
	flag.Parse()

	fmt.Printf("building a LiveJournal-like graph (2^%d ids, %d edge rows)...\n", *scale, *edges)
	tbl := ringo.GenRMATTable(*scale, *edges, 7)
	g, err := ringo.ToGraph(tbl, "src", "dst")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n\n", g.NumNodes(), g.NumEdges())

	fmt.Println("degree structure:")
	outStats := ringo.GetOutDegreeStats(g)
	inStats := ringo.GetInDegreeStats(g)
	fmt.Printf("  out-degree min/mean/max: %d / %.1f / %d\n", outStats.Min, outStats.Mean, outStats.Max)
	fmt.Printf("  in-degree  min/mean/max: %d / %.1f / %d\n", inStats.Min, inStats.Mean, inStats.Max)
	hub, hubDeg, _ := ringo.MaxNode(g)
	fmt.Printf("  biggest hub: node %d with out-degree %d\n\n", hub, hubDeg)

	fmt.Println("connectivity:")
	wcc := timed("WCC", func() ringo.Components { return ringo.GetWCC(g) })
	scc := timed("SCC", func() ringo.Components { return ringo.GetSCC(g) })
	fmt.Printf("  %d weak components (largest %d, %.1f%% of nodes)\n",
		wcc.Count, wcc.MaxSize, 100*float64(wcc.MaxSize)/float64(g.NumNodes()))
	fmt.Printf("  %d strong components (largest %d)\n\n", scc.Count, scc.MaxSize)

	u := ringo.AsUndirected(g)
	fmt.Println("cohesion:")
	tri := timed("triangles", func() int64 { return ringo.CountTriangles(u) })
	cc := timed("clustering", func() float64 { return ringo.GetClusteringCoefficient(u) })
	core3 := timed("3-core", func() *ringo.UGraph { return ringo.GetKCore(u, 3) })
	fmt.Printf("  %d triangles, average clustering coefficient %.4f\n", tri, cc)
	fmt.Printf("  3-core: %d of %d nodes\n\n", core3.NumNodes(), g.NumNodes())

	fmt.Println("distances:")
	diam := timed("diameter (8 BFS samples)", func() int { return ringo.GetApproxDiameter(g, 8, 1) })
	fmt.Printf("  approximate diameter: %d\n\n", diam)

	fmt.Println("influence (PageRank, 10 iterations):")
	pr := timed("pagerank", func() map[int64]float64 { return ringo.GetPageRank(g) })
	for i, s := range ringo.TopK(pr, 5) {
		fmt.Printf("  %d. node %-8d rank %.5f\n", i+1, s.ID, s.Score)
	}
	fmt.Println()

	fmt.Println("communities (label propagation):")
	comm := timed("label propagation", func() map[int64]int { return ringo.GetCommunities(u, 10, 3) })
	sizes := map[int]int{}
	for _, c := range comm {
		sizes[c]++
	}
	fmt.Printf("  %d communities, modularity %.4f\n",
		len(sizes), ringo.GetModularity(u, comm))
}
