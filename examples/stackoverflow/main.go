// Stackoverflow reproduces the paper's §4.1 demo: finding the top Java
// experts in a StackOverflow-like Q&A community. The pipeline is exactly
// the one shown in the paper's Python listing:
//
//	P  = ringo.LoadTableTSV(schema, 'posts.tsv')
//	JP = ringo.Select(P, 'Tag=Java')
//	Q  = ringo.Select(JP, 'Type=question')
//	A  = ringo.Select(JP, 'Type=answer')
//	QA = ringo.Join(Q, A, 'AnswerId', 'PostId')
//	G  = ringo.ToGraph(QA, 'UserId-1', 'UserId-2')
//	PR = ringo.GetPageRank(G)
//	S  = ringo.TableFromHashMap(PR, 'User', 'Scr')
//
// The module is offline, so a seeded generator with the site's Zipf skew
// stands in for the real dump (see internal/gen).
package main

import (
	"flag"
	"fmt"
	"log"

	"ringo"
)

func main() {
	questions := flag.Int("questions", 20_000, "number of questions to generate")
	tag := flag.String("tag", "Java", "tag to find experts for")
	topK := flag.Int("top", 10, "number of experts to report")
	flag.Parse()

	cfg := ringo.DefaultSOConfig()
	cfg.Questions = *questions
	posts, err := ringo.GenStackOverflowPosts(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("posts table: %d rows (questions and answers)\n", posts.NumRows())

	// JP = Select(P, 'Tag=Java'): narrow to the topic of interest.
	jp, err := ringo.Select(posts, "Tag", ringo.EQ, *tag)
	if err != nil {
		log.Fatal(err)
	}
	q, err := ringo.Select(jp, "Type", ringo.EQ, "question")
	if err != nil {
		log.Fatal(err)
	}
	a, err := ringo.Select(jp, "Type", ringo.EQ, "answer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s posts: %d questions, %d answers\n", *tag, q.NumRows(), a.NumRows())

	// QA = Join(Q, A, 'AcceptedId', 'PostId'): each row pairs a question
	// with its accepted answer. Both sides carry a UserId column, so the
	// join renames them UserId-1 (asker) and UserId-2 (answerer).
	qa, err := ringo.Join(q, a, "AcceptedId", "PostId")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accepted question-answer pairs: %d\n", qa.NumRows())

	// G = ToGraph(QA, 'UserId-1', 'UserId-2'): an edge means "this user's
	// answer was accepted by that asker".
	g, err := ringo.ToGraph(qa, "UserId-1", "UserId-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expertise graph: %d users, %d acceptance edges\n", g.NumNodes(), g.NumEdges())

	// PR = GetPageRank(G): users whose answers are accepted by other
	// well-regarded users score highest.
	pr := ringo.GetPageRank(g)
	experts, err := ringo.TableFromMap(pr, "User", "Scr")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("top %d %s experts by PageRank:\n", *topK, *tag)
	users, _ := experts.IntCol("User")
	scores, _ := experts.FloatCol("Scr")
	for i := 0; i < *topK && i < experts.NumRows(); i++ {
		fmt.Printf("  %2d. user %-8d score %.5f  (accepted answers: %d)\n",
			i+1, users[i], scores[i], g.InDeg(users[i]))
	}

	// Alternative expertise measure, as the demo invites: HITS authorities.
	hits := ringo.GetHits(g, 20)
	fmt.Println("top 3 by HITS authority for comparison:")
	for i, s := range ringo.TopK(hits.Authority, 3) {
		fmt.Printf("  %2d. user %-8d authority %.5f\n", i+1, s.ID, s.Score)
	}

	// The demo's alternative construction: "one way to build a graph is to
	// connect users who answered the same question" — a self-join of the
	// answers table on the question id.
	coAnswer, err := ringo.Join(a, a, "ParentId", "ParentId")
	if err != nil {
		log.Fatal(err)
	}
	ug, err := ringo.ToUGraph(coAnswer, "UserId-1", "UserId-2")
	if err != nil {
		log.Fatal(err)
	}
	// Self-pairs produce self-loops; they do not affect the communities.
	comm, modularity := ringo.Louvain(ug, 10)
	sizes := map[int]int{}
	for _, c := range comm {
		sizes[c]++
	}
	fmt.Printf("\nco-answer graph: %d users, %d edges; %d Louvain communities (modularity %.3f)\n",
		ug.NumNodes(), ug.NumEdges(), len(sizes), modularity)
}
