// Tablegraph demonstrates Ringo's advanced graph-construction operations
// (§2.3): building graphs that are not explicit in the input data. From a
// synthetic sensor event log it derives
//
//   - a temporal interaction graph with NextK (who acted right after whom
//     in the same location), and
//   - a similarity graph with SimJoin (sensors with near-identical
//     readings),
//
// then analyzes both, showing that one relational table can yield many
// different graphs during exploration.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"ringo"
)

func main() {
	// A synthetic event log: (sensor, location, time, reading).
	events, err := ringo.NewTable(ringo.Schema{
		{Name: "Sensor", Type: ringo.IntCol},
		{Name: "Location", Type: ringo.StringCol},
		{Name: "Time", Type: ringo.FloatCol},
		{Name: "Reading", Type: ringo.FloatCol},
	})
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	locations := []string{"hall", "lab", "roof", "yard"}
	for i := 0; i < 3000; i++ {
		sensor := rng.Intn(120)
		loc := locations[rng.Intn(len(locations))]
		when := rng.Float64() * 1000
		base := float64(sensor % 10)
		if err := events.AppendRow(sensor, loc, when, base+rng.NormFloat64()*0.2); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("event log: %d rows\n\n", events.NumRows())

	// --- Temporal graph: NextK chains events within each location. ---
	follow, err := ringo.NextK(events, "Location", "Time", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("NextK(Location, Time, 1): %d successor pairs\n", follow.NumRows())
	tg, err := ringo.ToGraph(follow, "Sensor-1", "Sensor-2")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("temporal graph: %d sensors, %d follows edges\n", tg.NumNodes(), tg.NumEdges())
	pr := ringo.GetPageRank(tg)
	top := ringo.TopK(pr, 3)
	fmt.Printf("most-followed sensors by PageRank: %d, %d, %d\n\n",
		top[0].ID, top[1].ID, top[2].ID)

	// --- Similarity graph: SimJoin pairs sensors with close readings. ---
	// First aggregate each sensor to its mean reading (one row per sensor).
	means, err := events.Aggregate([]string{"Sensor"}, ringo.Mean, "Reading", "MeanReading")
	if err != nil {
		log.Fatal(err)
	}
	sim, err := ringo.SimJoinTables(means, means,
		[]string{"MeanReading"}, []string{"MeanReading"}, 0.08, ringo.L2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SimJoin(|mean diff| <= 0.08): %d candidate pairs\n", sim.NumRows())
	// Drop self-pairs before building the graph.
	a, _ := sim.IntCol("Sensor-1")
	b, _ := sim.IntCol("Sensor-2")
	pairs := sim.SelectFunc(func(row int) bool { return a[row] != b[row] })
	sg, err := ringo.ToUGraph(pairs, "Sensor-1", "Sensor-2")
	if err != nil {
		log.Fatal(err)
	}
	comps := ringo.GetCommunities(sg, 10, 1)
	groups := map[int]int{}
	for _, c := range comps {
		groups[c]++
	}
	fmt.Printf("similarity graph: %d sensors, %d edges, %d similarity groups\n",
		sg.NumNodes(), sg.NumEdges(), len(groups))
	fmt.Println("(sensors were generated around 10 base readings — the groups recover them)")

	// --- Round trip: graphs flow back into the relational world. ---
	back, err := ringo.ToTable(tg, "From", "To")
	if err != nil {
		log.Fatal(err)
	}
	busiest, err := back.Aggregate([]string{"From"}, ringo.Count, "", "OutEdges")
	if err != nil {
		log.Fatal(err)
	}
	if err := busiest.OrderBy(true, "OutEdges"); err != nil {
		log.Fatal(err)
	}
	from, _ := busiest.IntCol("From")
	cnt, _ := busiest.IntCol("OutEdges")
	fmt.Printf("\nback in tables: busiest sensor %d with %d outgoing follows edges\n", from[0], cnt[0])
}
