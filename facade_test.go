package ringo_test

import (
	"math"
	"reflect"
	"testing"

	"ringo"
)

// Tests for the extended façade surface: structural algorithms, motifs,
// graph ops, attributed networks, and the parallel BFS.

func TestFacadeStructuralAlgorithms(t *testing.T) {
	// Two triangles joined at node 2, with a pendant 4-9 edge.
	u := ringo.NewUGraph()
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}, {4, 9}} {
		u.AddEdge(e[0], e[1])
	}
	cuts := ringo.GetArticulationPoints(u)
	if len(cuts) != 2 || cuts[0] != 2 || cuts[1] != 4 {
		t.Fatalf("articulation points = %v", cuts)
	}
	bridges := ringo.GetBridges(u)
	if len(bridges) != 1 || bridges[0] != [2]int64{4, 9} {
		t.Fatalf("bridges = %v", bridges)
	}
	if _, ok := ringo.Bipartition(u); ok {
		t.Fatal("triangle-containing graph reported bipartite")
	}
	edges, total := ringo.MinimumSpanningForest(u, func(a, b int64) float64 { return 1 })
	if len(edges) != u.NumNodes()-1 {
		t.Fatalf("spanning tree edges = %d", len(edges))
	}
	if total != float64(u.NumNodes()-1) {
		t.Fatalf("unit-weight MST total = %v", total)
	}
}

func TestFacadeDAGVerbs(t *testing.T) {
	g := ringo.GenGNM(10, 0, 1) // nodes only
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	if !ringo.IsDAG(g) {
		t.Fatal("acyclic graph rejected")
	}
	order, err := ringo.TopoSort(g)
	if err != nil || len(order) != 10 {
		t.Fatalf("topo sort = (%d, %v)", len(order), err)
	}
	g.AddEdge(3, 1)
	if ringo.IsDAG(g) {
		t.Fatal("cycle accepted as DAG")
	}
}

func TestFacadeMotifsAndConvergedPageRank(t *testing.T) {
	g := ringo.NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 1)
	mc := ringo.CountMotifs(g)
	if mc.CyclicTriangles != 1 {
		t.Fatalf("motifs = %+v", mc)
	}
	pr, iters := ringo.PageRankConverged(g, 0.85, 1e-10, 500)
	if iters == 0 || iters >= 500 {
		t.Fatalf("iters = %d", iters)
	}
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("converged sum = %v", sum)
	}
}

func TestFacadeGraphOps(t *testing.T) {
	g := ringo.GenGNM(30, 200, 2)
	sub := ringo.Subgraph(g, g.Nodes()[:10])
	if sub.NumNodes() != 10 {
		t.Fatalf("subgraph nodes = %d", sub.NumNodes())
	}
	rev := ringo.ReverseGraph(g)
	if rev.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed edge count")
	}
	un := ringo.UnionGraphs(g, rev)
	if un.NumNodes() != g.NumNodes() {
		t.Fatal("union node count")
	}
	if un.NumEdges() < g.NumEdges() {
		t.Fatal("union lost edges")
	}
	usub := ringo.SubgraphUndirected(ringo.AsUndirected(g), g.Nodes()[:10])
	if usub.NumNodes() != 10 {
		t.Fatal("undirected subgraph nodes")
	}
}

func TestFacadeToNetwork(t *testing.T) {
	tbl, err := ringo.NewTable(ringo.Schema{
		{Name: "src", Type: ringo.IntCol},
		{Name: "dst", Type: ringo.IntCol},
		{Name: "w", Type: ringo.FloatCol},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := tbl.AppendRow(1, 2, float64(i)); err != nil {
			t.Fatal(err)
		}
	}
	n, err := ringo.ToNetwork(tbl, "src", "dst", "w")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumEdges() != 5 {
		t.Fatalf("network edges = %d, want 5 parallel", n.NumEdges())
	}
	if v, ok := n.EdgeAttr("w", 3); !ok || v != 3.0 {
		t.Fatalf("edge attr = (%v,%v)", v, ok)
	}
}

func TestFacadeLinkPredictionAndStats(t *testing.T) {
	u := ringo.NewUGraph()
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 1}, {5, 2}, {5, 3}} {
		u.AddEdge(e[0], e[1])
	}
	if ringo.CommonNeighbors(u, 1, 3) != 3 {
		t.Fatal("common neighbors")
	}
	if ringo.Jaccard(u, 1, 3) != 1 {
		t.Fatal("jaccard")
	}
	if ringo.AdamicAdar(u, 1, 3) <= 0 {
		t.Fatal("adamic-adar")
	}
	if ringo.PreferentialAttachment(u, 1, 3) != 9 {
		t.Fatal("preferential attachment")
	}
	preds := ringo.PredictLinks(u, 5)
	if len(preds) == 0 || preds[0].U != 1 || preds[0].V != 3 {
		t.Fatalf("predictions = %v", preds)
	}

	g := ringo.NewGraph()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	if r := ringo.GetReciprocity(g); r < 0.6 || r > 0.7 {
		t.Fatalf("reciprocity = %v", r)
	}
	if a := ringo.GetDegreeAssortativity(u); a < -1 || a > 1 {
		t.Fatalf("assortativity = %v", a)
	}
	big := ringo.GenBarabasiAlbert(1500, 3, 2)
	if _, ok := ringo.FitPowerLaw(big, 3); !ok {
		t.Fatal("power law fit failed")
	}
	d := ringo.GenGNM(200, 1200, 3)
	if e := ringo.GetEffectiveDiameter(d, 20, 1); e <= 0 {
		t.Fatalf("effective diameter = %v", e)
	}
	if p := ringo.GetDegreePercentiles(d, []float64{50, 90}); p[1] < p[0] {
		t.Fatalf("percentiles = %v", p)
	}
}

func TestFacadeDiffusion(t *testing.T) {
	g := ringo.NewGraph()
	for i := int64(0); i < 10; i++ {
		g.AddEdge(i, i+1)
	}
	active := ringo.SimulateCascade(g, []int64{0}, 1.0, 1)
	if len(active) != 11 {
		t.Fatalf("cascade reached %d", len(active))
	}
	u := ringo.AsUndirected(g)
	res := ringo.SimulateSIR(u, []int64{5}, 1.0, 1.0, 1)
	if len(res.Infected) != 11 {
		t.Fatalf("SIR reached %d", len(res.Infected))
	}
}

func TestFacadeSelectExpr(t *testing.T) {
	posts, err := ringo.GenStackOverflowPosts(ringo.DefaultSOConfig())
	if err != nil {
		t.Fatal(err)
	}
	viaExpr, err := ringo.SelectExpr(posts, "Tag = Java and Type = question")
	if err != nil {
		t.Fatal(err)
	}
	jp, _ := ringo.Select(posts, "Tag", ringo.EQ, "Java")
	viaOps, _ := ringo.Select(jp, "Type", ringo.EQ, "question")
	if viaExpr.NumRows() != viaOps.NumRows() {
		t.Fatalf("expression path %d rows, operator path %d", viaExpr.NumRows(), viaOps.NumRows())
	}
}

func TestFacadeCombinatorialAlgorithms(t *testing.T) {
	u := ringo.GenBarabasiAlbert(120, 2, 9)
	comm, q := ringo.Louvain(u, 10)
	if len(comm) != 120 {
		t.Fatal("Louvain labels missing nodes")
	}
	if lp := ringo.GetModularity(u, ringo.GetCommunities(u, 15, 1)); q+1e-9 < lp {
		t.Fatalf("Louvain modularity %v below label propagation %v", q, lp)
	}
	color, k := ringo.GreedyColoring(u)
	if k < 2 {
		t.Fatalf("colors = %d", k)
	}
	u.ForEdges(func(a, b int64) {
		if a != b && color[a] == color[b] {
			t.Fatal("improper coloring")
		}
	})
	m := ringo.MaximalMatching(u)
	if len(m) == 0 {
		t.Fatal("empty matching")
	}
	is := ringo.IndependentSetGreedy(u)
	if len(is) == 0 {
		t.Fatal("empty independent set")
	}
}

func TestFacadeParallelBFS(t *testing.T) {
	g := ringo.GenGNM(500, 3000, 6)
	src := g.Nodes()[0]
	seq := ringo.GetBFS(g, src, ringo.OutEdges)
	parl := ringo.GetBFSParallel(g, src, ringo.OutEdges)
	if len(seq) != len(parl) {
		t.Fatalf("reach %d vs %d", len(seq), len(parl))
	}
	for id, d := range seq {
		if parl[id] != d {
			t.Fatalf("node %d: %d vs %d", id, d, parl[id])
		}
	}
}

// TestFacadeIncremental drives the incremental tier through the façade:
// in-place workspace mutations append deltas and patch cached views
// instead of rebuilding, the free PatchView function reproduces the
// workspace's patched view, and the dynamic algorithm variants agree
// with their cold oracles.
func TestFacadeIncremental(t *testing.T) {
	g := ringo.NewGraph()
	for i := int64(0); i < 30; i++ {
		g.AddEdge(i, (i+1)%30)
	}
	ws := ringo.NewWorkspace()
	ws.Set("G", ringo.Object{Graph: g})
	v0, err := ws.DirectedView("G")
	if err != nil {
		t.Fatal(err)
	}
	prev := ringo.PageRankViewTol(v0, 0.85, 1e-9)

	// Round 1: mixed mutations, captured as a delta batch.
	for _, m := range []func() (bool, error){
		func() (bool, error) { return ws.AddGraphEdge("G", 3, 17) },
		func() (bool, error) { return ws.DelGraphEdge("G", 5, 6) },
		func() (bool, error) { return ws.AddGraphNode("G", 99) },
	} {
		if ok, err := m(); err != nil || !ok {
			t.Fatalf("mutation failed: ok=%v err=%v", ok, err)
		}
	}
	if n := ws.DeltaEdges(); n != 3 {
		t.Fatalf("DeltaEdges = %d, want 3", n)
	}
	deltas := append([]ringo.Delta(nil), ws.PendingDeltas("G")...)

	v1, err := ws.DirectedView("G")
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := ws.PatchStats(); p == 0 {
		t.Fatal("small batch over a warm view should patch, not rebuild")
	}

	// The free function over the stale view must land on the same CSR.
	patched := ringo.PatchView(v0, g.HasNode, g.HasEdge, deltas)
	if patched.NumNodes() != v1.NumNodes() || patched.NumEdges() != v1.NumEdges() {
		t.Fatalf("PatchView shape (%d,%d) != workspace view (%d,%d)",
			patched.NumNodes(), patched.NumEdges(), v1.NumNodes(), v1.NumEdges())
	}
	for i := int32(0); i < int32(patched.NumNodes()); i++ {
		if patched.ID(i) != v1.ID(i) || !reflect.DeepEqual(patched.Out(i), v1.Out(i)) {
			t.Fatalf("PatchView adjacency differs at row %d", i)
		}
	}

	// Dynamic PageRank vs the cold oracle on the new view.
	incr := ringo.PageRankIncr(v1, prev, 0.85, 1e-9)
	cold := ringo.PageRankViewTol(v1, 0.85, 1e-9)
	for id, want := range cold {
		if d := math.Abs(incr[id] - want); d > 1e-6 {
			t.Fatalf("PageRankIncr[%d] off by %g", id, d)
		}
	}
	// The round-1 batch contains a deletion: incremental WCC must refuse.
	if _, ok := ringo.GetWCCIncr(v1, ringo.GetWCCView(v0), deltas); ok {
		t.Fatal("GetWCCIncr accepted a batch with a deletion")
	}

	// Round 2: additions only — WCC and triangles update incrementally.
	u1, err := ws.UndirectedView("G")
	if err != nil {
		t.Fatal(err)
	}
	tri1 := ringo.CountTrianglesView(u1)
	comp1 := ringo.GetWCCView(v1)
	for _, e := range [][2]int64{{0, 2}, {99, 3}} {
		if ok, err := ws.AddGraphEdge("G", e[0], e[1]); err != nil || !ok {
			t.Fatalf("AddGraphEdge(%v): ok=%v err=%v", e, ok, err)
		}
	}
	// The log keeps the whole history since its base version, so the
	// batch separating v1 from the current state is the suffix after
	// round 1's deltas.
	deltas2 := append([]ringo.Delta(nil), ws.PendingDeltas("G")[len(deltas):]...)
	v2, err := ws.DirectedView("G")
	if err != nil {
		t.Fatal(err)
	}
	u2, err := ws.UndirectedView("G")
	if err != nil {
		t.Fatal(err)
	}
	wcc2, ok := ringo.GetWCCIncr(v2, comp1, deltas2)
	if !ok {
		t.Fatal("GetWCCIncr refused an addition-only batch")
	}
	if !reflect.DeepEqual(wcc2, ringo.GetWCCView(v2)) {
		t.Fatal("GetWCCIncr differs from the cold recompute")
	}
	// Edge 0-2 closes the undirected triangle 0-1-2.
	got := ringo.CountTrianglesIncr(u1, u2, tri1, deltas2)
	if want := ringo.CountTrianglesView(u2); got != want || got != tri1+1 {
		t.Fatalf("CountTrianglesIncr = %d, want %d (was %d)", got, want, tri1)
	}
}
