module ringo

go 1.24
