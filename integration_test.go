package ringo_test

import (
	"testing"
	"testing/quick"

	"ringo"
)

// Integration tests exercising long operation chains across the table
// engine, the conversions and the algorithm library together — the
// iterative explore-build-analyze loop of Figure 2, stressed with random
// inputs.

// TestWorkflowInvariantsProperty runs a randomized end-to-end workflow and
// checks cross-module invariants on the way.
func TestWorkflowInvariantsProperty(t *testing.T) {
	f := func(rawEdges [][2]int16, cut int16) bool {
		if len(rawEdges) == 0 {
			return true
		}
		// 1. Edge log as a table.
		tbl, err := ringo.NewTable(ringo.Schema{
			{Name: "src", Type: ringo.IntCol},
			{Name: "dst", Type: ringo.IntCol},
		})
		if err != nil {
			return false
		}
		for _, e := range rawEdges {
			if err := tbl.AppendRow(int64(e[0]%64), int64(e[1]%64)); err != nil {
				return false
			}
		}
		// 2. Relational cleaning: drop edges below a cut, both ways.
		v := int64(cut % 64)
		hi, err := ringo.SelectExpr(tbl, "src >= "+itoa(v)+" and dst >= "+itoa(v))
		if err != nil {
			return false
		}
		lo := tbl.SelectFunc(func(row int) bool {
			s, _ := tbl.IntCol("src")
			d, _ := tbl.IntCol("dst")
			return !(s[row] >= v && d[row] >= v)
		})
		if hi.NumRows()+lo.NumRows() != tbl.NumRows() {
			return false // selection must partition the table
		}
		// 3. Graph construction on the kept slice.
		g, err := ringo.ToGraph(hi, "src", "dst")
		if err != nil {
			return false
		}
		if err := g.Validate(); err != nil {
			return false
		}
		// 4. Analytics invariants.
		if g.NumNodes() > 0 {
			pr := ringo.GetPageRank(g)
			var sum float64
			for _, p := range pr {
				sum += p
			}
			if sum < 0.999 || sum > 1.001 {
				return false
			}
			wcc := ringo.GetWCC(g)
			scc := ringo.GetSCC(g)
			if wcc.Count > scc.Count || scc.Count > g.NumNodes() {
				return false
			}
			u := ringo.AsUndirected(g)
			if ringo.CountTriangles(u) != ringo.CountTrianglesSeq(u) {
				return false
			}
		}
		// 5. Round trip back to a table keeps the edge multiset.
		back, err := ringo.ToTable(g, "src", "dst")
		if err != nil {
			return false
		}
		g2, err := ringo.ToGraph(back, "src", "dst")
		if err != nil {
			return false
		}
		return g2.NumEdges() == g.NumEdges() && g2.NumNodes() == g.NumNodes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func itoa(n int64) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TestAnalyticsAgreeAcrossRepresentations checks that the dynamic graph and
// its CSR snapshot describe the same topology under a battery of measures.
func TestAnalyticsAgreeAcrossRepresentations(t *testing.T) {
	tbl := ringo.GenRMATTable(11, 6000, 21)
	g, err := ringo.ToGraph(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	csr := ringo.BuildCSR(g)
	if int64(csr.NumEdges()) != g.NumEdges() || csr.NumNodes() != g.NumNodes() {
		t.Fatal("CSR dims differ")
	}
	// Degree agreement per node.
	g.ForNodes(func(id int64) {
		i, ok := csr.Index(id)
		if !ok {
			t.Fatalf("node %d missing from CSR", id)
		}
		if csr.OutDeg(i) != g.OutDeg(id) || csr.InDeg(i) != g.InDeg(id) {
			t.Fatalf("node %d degree mismatch", id)
		}
	})
	// Edge agreement both ways.
	g.ForEdges(func(src, dst int64) {
		if !csr.HasEdge(src, dst) {
			t.Fatalf("CSR missing %d->%d", src, dst)
		}
	})
}

// TestStackOverflowMultiTagSession reproduces the demo's "vary the
// parameters" step: experts for several tags from one loaded posts table,
// with per-tag graphs built independently.
func TestStackOverflowMultiTagSession(t *testing.T) {
	cfg := ringo.DefaultSOConfig()
	cfg.Questions = 4000
	posts, err := ringo.GenStackOverflowPosts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, tag := range []string{"Java", "Python", "Go"} {
		qa, err := ringo.SelectExpr(posts, "Tag = "+tag+" and Type = question")
		if err != nil {
			t.Fatal(err)
		}
		ans, err := ringo.SelectExpr(posts, "Tag = "+tag+" and Type = answer")
		if err != nil {
			t.Fatal(err)
		}
		pairs, err := ringo.Join(qa, ans, "AcceptedId", "PostId")
		if err != nil {
			t.Fatal(err)
		}
		if pairs.NumRows() == 0 {
			t.Fatalf("tag %s: no accepted answers", tag)
		}
		g, err := ringo.ToGraph(pairs, "UserId-1", "UserId-2")
		if err != nil {
			t.Fatal(err)
		}
		pr := ringo.GetPageRank(g)
		top := ringo.TopK(pr, 1)
		if len(top) != 1 || g.InDeg(top[0].ID) == 0 {
			t.Fatalf("tag %s: degenerate top expert", tag)
		}
	}
}

// TestCoAnswerGraphConstruction checks the demo's alternative graph: users
// who answered the same question, built by self-joining answers on the
// question id.
func TestCoAnswerGraphConstruction(t *testing.T) {
	cfg := ringo.DefaultSOConfig()
	cfg.Questions = 1500
	posts, err := ringo.GenStackOverflowPosts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ans, err := ringo.SelectExpr(posts, "Type = answer")
	if err != nil {
		t.Fatal(err)
	}
	co, err := ringo.Join(ans, ans, "ParentId", "ParentId")
	if err != nil {
		t.Fatal(err)
	}
	// Self-join row count: sum over questions of (answers per question)^2.
	counts, err := ans.Aggregate([]string{"ParentId"}, ringo.Count, "", "n")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := counts.IntCol("n")
	want := 0
	for _, c := range n {
		want += int(c * c)
	}
	if co.NumRows() != want {
		t.Fatalf("co-answer rows = %d, want %d", co.NumRows(), want)
	}
	g, err := ringo.ToUGraph(co, "UserId-1", "UserId-2")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 {
		t.Fatal("empty co-answer graph")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestLeftJoinEnrichment exercises the outer-join path in a workflow:
// attach PageRank scores to every user row, including users with no score.
func TestLeftJoinEnrichment(t *testing.T) {
	posts, err := ringo.GenStackOverflowPosts(ringo.DefaultSOConfig())
	if err != nil {
		t.Fatal(err)
	}
	users, err := posts.Unique("UserId")
	if err != nil {
		t.Fatal(err)
	}
	qa, _ := ringo.SelectExpr(posts, "Type = question")
	ans, _ := ringo.SelectExpr(posts, "Type = answer")
	pairs, err := ringo.Join(qa, ans, "AcceptedId", "PostId")
	if err != nil {
		t.Fatal(err)
	}
	g, err := ringo.ToGraph(pairs, "UserId-1", "UserId-2")
	if err != nil {
		t.Fatal(err)
	}
	scores, err := ringo.TableFromMap(ringo.GetPageRank(g), "UserId", "Rank")
	if err != nil {
		t.Fatal(err)
	}
	enriched, err := ringo.LeftJoin(users, scores, "UserId", "UserId", -1)
	if err != nil {
		t.Fatal(err)
	}
	if enriched.NumRows() < users.NumRows() {
		t.Fatalf("left join dropped rows: %d < %d", enriched.NumRows(), users.NumRows())
	}
}
