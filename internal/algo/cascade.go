package algo

import (
	"math/rand"

	"ringo/internal/graph"
)

// Information-propagation simulations: the paper's introduction motivates
// Ringo with "tracing the propagation of information in a social network";
// these are the standard diffusion models used for that task.

// IndependentCascade simulates the independent cascade model: starting from
// the seed set, each newly activated node gets one chance to activate each
// out-neighbor with probability p. It returns every activated node with the
// round in which it activated (seeds are round 0). Deterministic for a
// fixed seed; unknown seed nodes are ignored.
func IndependentCascade(g *graph.Directed, seeds []int64, p float64, seed int64) map[int64]int {
	rng := rand.New(rand.NewSource(seed))
	active := make(map[int64]int)
	var frontier []int64
	for _, s := range seeds {
		if g.HasNode(s) {
			if _, dup := active[s]; !dup {
				active[s] = 0
				frontier = append(frontier, s)
			}
		}
	}
	round := 0
	for len(frontier) > 0 {
		round++
		var next []int64
		for _, u := range frontier {
			for _, v := range g.OutNeighbors(u) {
				if _, done := active[v]; done {
					continue
				}
				if rng.Float64() < p {
					active[v] = round
					next = append(next, v)
				}
			}
		}
		frontier = next
	}
	return active
}

// SIRResult summarizes an SIR epidemic simulation.
type SIRResult struct {
	// Infected maps every ever-infected node to its infection round.
	Infected map[int64]int
	// PeakInfected is the largest simultaneously-infectious population.
	PeakInfected int
	// Rounds is the number of rounds until no node was infectious.
	Rounds int
}

// SIR simulates a discrete-time susceptible-infectious-recovered epidemic
// on the undirected graph: each round every infectious node infects each
// susceptible neighbor with probability beta, then recovers with
// probability gamma. Deterministic for a fixed seed.
func SIR(g *graph.Undirected, seeds []int64, beta, gamma float64, seed int64) SIRResult {
	rng := rand.New(rand.NewSource(seed))
	res := SIRResult{Infected: make(map[int64]int)}
	infectious := map[int64]bool{}
	for _, s := range seeds {
		if g.HasNode(s) && !infectious[s] {
			infectious[s] = true
			res.Infected[s] = 0
		}
	}
	recovered := map[int64]bool{}
	for len(infectious) > 0 {
		if len(infectious) > res.PeakInfected {
			res.PeakInfected = len(infectious)
		}
		res.Rounds++
		newlyInfected := []int64{}
		// Deterministic iteration order over the infectious set.
		order := make([]int64, 0, len(infectious))
		for u := range infectious {
			order = append(order, u)
		}
		sortInt64s(order)
		for _, u := range order {
			for _, v := range g.Neighbors(u) {
				if _, ever := res.Infected[v]; ever {
					continue
				}
				if recovered[v] {
					continue
				}
				if rng.Float64() < beta {
					res.Infected[v] = res.Rounds
					newlyInfected = append(newlyInfected, v)
				}
			}
		}
		recoveries := 0
		for _, u := range order {
			if rng.Float64() < gamma {
				delete(infectious, u)
				recovered[u] = true
				recoveries++
			}
		}
		for _, v := range newlyInfected {
			infectious[v] = true
		}
		if len(newlyInfected) == 0 && recoveries == 0 {
			// gamma = 0 and the epidemic has saturated: nothing can change.
			break
		}
	}
	return res
}

func sortInt64s(a []int64) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && a[j] > v {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}
