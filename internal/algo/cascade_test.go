package algo

import (
	"testing"

	"ringo/internal/graph"
)

func TestIndependentCascadeCertainSpread(t *testing.T) {
	g := pathGraph(6)
	active := IndependentCascade(g, []int64{0}, 1.0, 7)
	if len(active) != 6 {
		t.Fatalf("p=1 activated %d of 6", len(active))
	}
	// Activation round equals hop distance on a path.
	for i := 0; i < 6; i++ {
		if active[int64(i)] != i {
			t.Fatalf("node %d activated in round %d", i, active[int64(i)])
		}
	}
}

func TestIndependentCascadeNoSpread(t *testing.T) {
	g := pathGraph(6)
	active := IndependentCascade(g, []int64{0}, 0.0, 7)
	if len(active) != 1 {
		t.Fatalf("p=0 activated %d", len(active))
	}
	if active[0] != 0 {
		t.Fatal("seed round wrong")
	}
}

func TestIndependentCascadeDeterministicAndDirectional(t *testing.T) {
	g := pathGraph(6)
	a := IndependentCascade(g, []int64{3}, 0.7, 42)
	b := IndependentCascade(g, []int64{3}, 0.7, 42)
	if len(a) != len(b) {
		t.Fatal("not deterministic")
	}
	// Edges point forward only: node 2 can never activate.
	if _, ok := a[2]; ok {
		t.Fatal("cascade ran against edge direction")
	}
	// Unknown seeds ignored, duplicates collapse.
	c := IndependentCascade(g, []int64{0, 0, 99}, 1, 1)
	if len(c) != 6 {
		t.Fatalf("dup/unknown seeds activated %d", len(c))
	}
}

func TestSIREverythingInfectedAtBetaOne(t *testing.T) {
	g := graph.NewUndirected()
	for i := int64(0); i < 8; i++ {
		g.AddEdge(i, (i+1)%8)
	}
	res := SIR(g, []int64{0}, 1.0, 1.0, 5)
	if len(res.Infected) != 8 {
		t.Fatalf("beta=1 infected %d of 8", len(res.Infected))
	}
	if res.Rounds == 0 || res.PeakInfected == 0 {
		t.Fatalf("degenerate result %+v", res)
	}
}

func TestSIRNoSpreadAtBetaZero(t *testing.T) {
	g := graph.NewUndirected()
	g.AddEdge(1, 2)
	res := SIR(g, []int64{1}, 0, 1, 3)
	if len(res.Infected) != 1 {
		t.Fatalf("beta=0 infected %d", len(res.Infected))
	}
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1 (seed recovers immediately)", res.Rounds)
	}
}

func TestSIRDeterministic(t *testing.T) {
	g := barabasiForTest(200, 2)
	a := SIR(g, []int64{0}, 0.3, 0.5, 11)
	b := SIR(g, []int64{0}, 0.3, 0.5, 11)
	if len(a.Infected) != len(b.Infected) || a.Rounds != b.Rounds || a.PeakInfected != b.PeakInfected {
		t.Fatal("SIR not deterministic for fixed seed")
	}
	for id, r := range a.Infected {
		if b.Infected[id] != r {
			t.Fatal("infection rounds differ")
		}
	}
}

func TestSIRTerminatesWithZeroGamma(t *testing.T) {
	// With gamma=0 nodes never recover; the simulation must still stop
	// once the epidemic saturates (no state change in a round).
	g := graph.NewUndirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	res := SIR(g, []int64{1}, 1.0, 0.0, 3)
	if len(res.Infected) != 3 {
		t.Fatalf("saturation infected %d of 3", len(res.Infected))
	}
	if res.PeakInfected != 3 {
		t.Fatalf("peak = %d", res.PeakInfected)
	}
}
