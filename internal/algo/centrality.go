package algo

import (
	"math/rand"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// Closeness returns the closeness centrality of node id in g, following
// edges in both directions: (r-1)/sum(d) scaled by (r-1)/(n-1) where r is
// the number of reached nodes (the Wasserman-Faust formula, robust on
// disconnected graphs). It returns 0 for missing or isolated nodes.
func Closeness(g *graph.Directed, id int64) float64 {
	return ClosenessView(graph.BuildView(g), id)
}

// ClosenessView is Closeness over a prebuilt CSR view.
func ClosenessView(v *graph.View, id int64) float64 {
	s, ok := v.Index(id)
	if !ok {
		return 0
	}
	dist := bfsFlat(v, s, Both)
	var sum int64
	reached := 0
	for _, dv := range dist {
		if dv > 0 {
			sum += int64(dv)
			reached++
		}
	}
	if sum == 0 || v.NumNodes() <= 1 {
		return 0
	}
	r := float64(reached)
	n := float64(v.NumNodes())
	return (r / float64(sum)) * (r / (n - 1))
}

// ApproxBetweenness estimates betweenness centrality with Brandes'
// algorithm run from a sample of source nodes (all nodes when samples >=
// n), scaled to estimate the full sum. Sampling uses the given seed;
// results are deterministic for a fixed seed. Edge direction is ignored, as
// in the usual social-network usage.
func ApproxBetweenness(g *graph.Directed, samples int, seed int64) map[int64]float64 {
	return ApproxBetweennessView(graph.BuildView(g), samples, seed)
}

// ApproxBetweennessView is ApproxBetweenness over a prebuilt CSR view.
func ApproxBetweennessView(v *graph.View, samples int, seed int64) map[int64]float64 {
	n := v.NumNodes()
	if n == 0 {
		return map[int64]float64{}
	}
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	scale := 1.0
	if samples < n {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(n, func(i, j int) { sources[i], sources[j] = sources[j], sources[i] })
		sources = sources[:samples]
		scale = float64(n) / float64(samples)
	}

	adj := undirectedAdj(v, false)

	// Brandes accumulation parallelized over sources: each worker owns a
	// full set of per-source arrays and a private bc accumulator; the
	// accumulators are summed after the barrier.
	ranges := par.Split(len(sources), par.Workers())
	partials := make([][]float64, len(ranges))
	par.ForEach(len(ranges), func(w int) {
		bc := make([]float64, n)
		sigma := make([]float64, n)
		dist := make([]int32, n)
		delta := make([]float64, n)
		order := make([]int32, 0, n)
		preds := make([][]int32, n)
		for si := ranges[w].Lo; si < ranges[w].Hi; si++ {
			s := sources[si]
			for i := range dist {
				dist[i] = -1
				sigma[i] = 0
				delta[i] = 0
				preds[i] = preds[i][:0]
			}
			order = order[:0]
			dist[s] = 0
			sigma[s] = 1
			queue := []int32{s}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				order = append(order, u)
				for _, x := range adj[u] {
					if dist[x] < 0 {
						dist[x] = dist[u] + 1
						queue = append(queue, x)
					}
					if dist[x] == dist[u]+1 {
						sigma[x] += sigma[u]
						preds[x] = append(preds[x], u)
					}
				}
			}
			for i := len(order) - 1; i >= 0; i-- {
				x := order[i]
				for _, p := range preds[x] {
					delta[p] += sigma[p] / sigma[x] * (1 + delta[x])
				}
				if x != s {
					bc[x] += delta[x]
				}
			}
		}
		partials[w] = bc
	})
	bc := make([]float64, n)
	for _, p := range partials {
		for i, pv := range p {
			bc[i] += pv
		}
	}
	// Each undirected shortest path counted from both endpoints when all
	// sources are used; halve for the standard definition.
	for i := range bc {
		bc[i] *= scale / 2
	}
	return scoresToMap(v.IDs(), bc)
}

// undirectedAdj merges each node's out- and in-vectors into a sorted,
// deduplicated undirected adjacency (built in parallel), the form the
// direction-ignoring algorithms traverse. dropSelf omits self-loops
// (motif census ignores them; traversals keep them harmlessly).
func undirectedAdj(v *graph.View, dropSelf bool) [][]int32 {
	n := v.NumNodes()
	adj := make([][]int32, n)
	par.ForEach(n, func(u int) {
		out, in := v.Out(int32(u)), v.In(int32(u))
		merged := make([]int32, 0, len(out)+len(in))
		merged = append(merged, out...)
		merged = append(merged, in...)
		sortInt32(merged)
		// Dedup (and optionally drop self-loops) in place.
		w := 0
		for _, x := range merged {
			if dropSelf && x == int32(u) {
				continue
			}
			if w == 0 || x != merged[w-1] {
				merged[w] = x
				w++
			}
		}
		adj[u] = merged[:w]
	})
	return adj
}

// Eccentricity returns the eccentricity of a node: the longest shortest
// path from it (direction ignored), or -1 if the node is missing.
func Eccentricity(g *graph.Directed, id int64) int {
	return EccentricityView(graph.BuildView(g), id)
}

// EccentricityView is Eccentricity over a prebuilt CSR view.
func EccentricityView(v *graph.View, id int64) int {
	s, ok := v.Index(id)
	if !ok {
		return -1
	}
	dist := bfsFlat(v, s, Both)
	ecc := 0
	for _, dv := range dist {
		if int(dv) > ecc {
			ecc = int(dv)
		}
	}
	return ecc
}

// ApproxDiameter estimates the graph diameter by running BFS (direction
// ignored) from `samples` start nodes chosen deterministically from seed
// and taking the largest eccentricity observed — SNAP's GetBfsFullDiam.
func ApproxDiameter(g *graph.Directed, samples int, seed int64) int {
	return ApproxDiameterView(graph.BuildView(g), samples, seed)
}

// ApproxDiameterView is ApproxDiameter over a prebuilt CSR view.
func ApproxDiameterView(v *graph.View, samples int, seed int64) int {
	defer report(timed("diameter"))
	n := v.NumNodes()
	if n == 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	starts := rng.Perm(n)[:samples]
	diam := 0
	for _, s := range starts {
		dist := bfsFlat(v, int32(s), Both)
		for _, dv := range dist {
			if int(dv) > diam {
				diam = int(dv)
			}
		}
	}
	return diam
}
