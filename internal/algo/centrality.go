package algo

import (
	"math/rand"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// Closeness returns the closeness centrality of node id in g, following
// edges in both directions: (r-1)/sum(d) scaled by (r-1)/(n-1) where r is
// the number of reached nodes (the Wasserman-Faust formula, robust on
// disconnected graphs). It returns 0 for missing or isolated nodes.
func Closeness(g *graph.Directed, id int64) float64 {
	d := denseOf(g)
	s, ok := d.idx[id]
	if !ok {
		return 0
	}
	dist := bfsDense(d, s, Both)
	var sum int64
	reached := 0
	for _, dv := range dist {
		if dv > 0 {
			sum += int64(dv)
			reached++
		}
	}
	if sum == 0 || len(d.ids) <= 1 {
		return 0
	}
	r := float64(reached)
	n := float64(len(d.ids))
	return (r / float64(sum)) * (r / (n - 1))
}

// ApproxBetweenness estimates betweenness centrality with Brandes'
// algorithm run from a sample of source nodes (all nodes when samples >=
// n), scaled to estimate the full sum. Sampling uses the given seed;
// results are deterministic for a fixed seed. Edge direction is ignored, as
// in the usual social-network usage.
func ApproxBetweenness(g *graph.Directed, samples int, seed int64) map[int64]float64 {
	d := denseOf(g)
	n := len(d.ids)
	if n == 0 {
		return map[int64]float64{}
	}
	sources := make([]int32, n)
	for i := range sources {
		sources[i] = int32(i)
	}
	scale := 1.0
	if samples < n {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(n, func(i, j int) { sources[i], sources[j] = sources[j], sources[i] })
		sources = sources[:samples]
		scale = float64(n) / float64(samples)
	}

	// Undirected adjacency = out ∪ in per node.
	adj := make([][]int32, n)
	par.ForEach(n, func(u int) {
		merged := make([]int32, 0, len(d.out[u])+len(d.in[u]))
		merged = append(merged, d.out[u]...)
		merged = append(merged, d.in[u]...)
		sortInt32(merged)
		// Dedup in place.
		w := 0
		for i, v := range merged {
			if i == 0 || v != merged[w-1] {
				merged[w] = v
				w++
			}
		}
		adj[u] = merged[:w]
	})

	// Brandes accumulation parallelized over sources: each worker owns a
	// full set of per-source arrays and a private bc accumulator; the
	// accumulators are summed after the barrier.
	ranges := par.Split(len(sources), par.Workers())
	partials := make([][]float64, len(ranges))
	par.ForEach(len(ranges), func(w int) {
		bc := make([]float64, n)
		sigma := make([]float64, n)
		dist := make([]int32, n)
		delta := make([]float64, n)
		order := make([]int32, 0, n)
		preds := make([][]int32, n)
		for si := ranges[w].Lo; si < ranges[w].Hi; si++ {
			s := sources[si]
			for i := range dist {
				dist[i] = -1
				sigma[i] = 0
				delta[i] = 0
				preds[i] = preds[i][:0]
			}
			order = order[:0]
			dist[s] = 0
			sigma[s] = 1
			queue := []int32{s}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				order = append(order, u)
				for _, v := range adj[u] {
					if dist[v] < 0 {
						dist[v] = dist[u] + 1
						queue = append(queue, v)
					}
					if dist[v] == dist[u]+1 {
						sigma[v] += sigma[u]
						preds[v] = append(preds[v], u)
					}
				}
			}
			for i := len(order) - 1; i >= 0; i-- {
				x := order[i]
				for _, v := range preds[x] {
					delta[v] += sigma[v] / sigma[x] * (1 + delta[x])
				}
				if x != s {
					bc[x] += delta[x]
				}
			}
		}
		partials[w] = bc
	})
	bc := make([]float64, n)
	for _, p := range partials {
		for i, v := range p {
			bc[i] += v
		}
	}
	// Each undirected shortest path counted from both endpoints when all
	// sources are used; halve for the standard definition.
	for i := range bc {
		bc[i] *= scale / 2
	}
	return scoresToMap(d.ids, bc)
}

// Eccentricity returns the eccentricity of a node: the longest shortest
// path from it (direction ignored), or -1 if the node is missing.
func Eccentricity(g *graph.Directed, id int64) int {
	d := denseOf(g)
	s, ok := d.idx[id]
	if !ok {
		return -1
	}
	dist := bfsDense(d, s, Both)
	ecc := 0
	for _, dv := range dist {
		if int(dv) > ecc {
			ecc = int(dv)
		}
	}
	return ecc
}

// ApproxDiameter estimates the graph diameter by running BFS (direction
// ignored) from `samples` start nodes chosen deterministically from seed
// and taking the largest eccentricity observed — SNAP's GetBfsFullDiam.
func ApproxDiameter(g *graph.Directed, samples int, seed int64) int {
	d := denseOf(g)
	n := len(d.ids)
	if n == 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	starts := rng.Perm(n)[:samples]
	diam := 0
	for _, s := range starts {
		dist := bfsDense(d, int32(s), Both)
		for _, dv := range dist {
			if int(dv) > diam {
				diam = int(dv)
			}
		}
	}
	return diam
}
