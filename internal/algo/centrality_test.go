package algo

import (
	"testing"

	"ringo/internal/graph"
)

func TestClosenessPathCenter(t *testing.T) {
	g := pathGraph(5) // 0-1-2-3-4
	center := Closeness(g, 2)
	end := Closeness(g, 0)
	if center <= end {
		t.Fatalf("center closeness %v <= end %v", center, end)
	}
	if Closeness(g, 99) != 0 {
		t.Fatal("missing node closeness nonzero")
	}
}

func TestClosenessIsolatedNode(t *testing.T) {
	g := graph.NewDirected()
	g.AddNode(1)
	g.AddEdge(2, 3)
	if Closeness(g, 1) != 0 {
		t.Fatal("isolated node closeness nonzero")
	}
}

func TestBetweennessPathMiddle(t *testing.T) {
	g := pathGraph(5)
	bc := ApproxBetweenness(g, 1000, 1) // full computation (samples > n)
	// On the 5-path, node 2 lies on the most shortest paths.
	for _, id := range []int64{0, 1, 3, 4} {
		if bc[2] <= bc[id] {
			t.Fatalf("bc[2]=%v not above bc[%d]=%v", bc[2], id, bc[id])
		}
	}
	// Exact values for the path: ends 0, next 3, middle 4.
	if !approxEq(bc[0], 0, 1e-9) || !approxEq(bc[2], 4, 1e-9) || !approxEq(bc[1], 3, 1e-9) {
		t.Fatalf("bc = %v", bc)
	}
}

func TestBetweennessSampledDeterministic(t *testing.T) {
	g := completeUndirectedAsDirected(8)
	a := ApproxBetweenness(g, 4, 42)
	b := ApproxBetweenness(g, 4, 42)
	for id, v := range a {
		if b[id] != v {
			t.Fatal("sampled betweenness not deterministic for fixed seed")
		}
	}
}

func completeUndirectedAsDirected(n int) *graph.Directed {
	g := graph.NewDirected()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(int64(i), int64(j))
		}
	}
	return g
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := pathGraph(7) // diameter 6
	if e := Eccentricity(g, 0); e != 6 {
		t.Fatalf("ecc(0) = %d", e)
	}
	if e := Eccentricity(g, 3); e != 3 {
		t.Fatalf("ecc(3) = %d", e)
	}
	if e := Eccentricity(g, 42); e != -1 {
		t.Fatalf("missing node ecc = %d", e)
	}
	// Sampling every node gives the exact diameter.
	if d := ApproxDiameter(g, 7, 1); d != 6 {
		t.Fatalf("diameter = %d, want 6", d)
	}
	if d := ApproxDiameter(graph.NewDirected(), 3, 1); d != 0 {
		t.Fatalf("empty graph diameter = %d", d)
	}
}

func TestDegreeStatsAndHistogram(t *testing.T) {
	g := starGraph(4) // leaves 1..4 -> hub 0
	out := OutDegreeStats(g)
	if out.Min != 0 || out.Max != 1 || !approxEq(out.Mean, 4.0/5.0, 1e-12) {
		t.Fatalf("out stats = %+v", out)
	}
	in := InDegreeStats(g)
	if in.Max != 4 {
		t.Fatalf("in stats = %+v", in)
	}
	hist := DegreeHistogram(g)
	// out-degrees: one node with 0 (hub), four with 1.
	if len(hist) != 2 || hist[0] != [2]int64{0, 1} || hist[1] != [2]int64{1, 4} {
		t.Fatalf("histogram = %v", hist)
	}
	if got := OutDegreeStats(graph.NewDirected()); got != (DegreeStats{}) {
		t.Fatalf("empty stats = %+v", got)
	}
}

func TestDegreeCentrality(t *testing.T) {
	g := graph.NewUndirected()
	g.AddEdge(0, 1)
	g.AddEdge(0, 2)
	dc := DegreeCentrality(g)
	if !approxEq(dc[0], 1, 1e-12) || !approxEq(dc[1], 0.5, 1e-12) {
		t.Fatalf("degree centrality = %v", dc)
	}
	single := graph.NewUndirected()
	single.AddNode(7)
	if dc := DegreeCentrality(single); dc[7] != 0 {
		t.Fatal("singleton centrality nonzero")
	}
}

func TestMaxDegreeNode(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	id, deg, ok := MaxDegreeNode(g)
	if !ok || id != 1 || deg != 2 {
		t.Fatalf("MaxDegreeNode = (%d,%d,%v)", id, deg, ok)
	}
	if _, _, ok := MaxDegreeNode(graph.NewDirected()); ok {
		t.Fatal("empty graph returned a max node")
	}
}
