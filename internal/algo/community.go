package algo

import (
	"math/rand"

	"ringo/internal/graph"
)

// LabelPropagation detects communities on an undirected graph by iterative
// majority label adoption (Raghavan et al.): every node repeatedly takes
// the most frequent label among its neighbors until labels stabilize or
// maxIters passes complete. Node visit order is shuffled deterministically
// from seed, so results are reproducible. Returns a community label per
// node, labels dense from 0.
func LabelPropagation(g *graph.Undirected, maxIters int, seed int64) map[int64]int {
	return LabelPropagationView(graph.BuildUView(g), maxIters, seed)
}

// LabelPropagationView is LabelPropagation over a prebuilt CSR view.
func LabelPropagationView(v *graph.UView, maxIters int, seed int64) map[int64]int {
	n := v.NumNodes()
	labels := make([]int32, n)
	for i := range labels {
		labels[i] = int32(i)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	rng := rand.New(rand.NewSource(seed))
	counts := map[int32]int{}
	for it := 0; it < maxIters; it++ {
		rng.Shuffle(n, func(i, j int) { order[i], order[j] = order[j], order[i] })
		changed := 0
		for _, u := range order {
			adjU := v.Adj(u)
			if len(adjU) == 0 {
				continue
			}
			clear(counts)
			for _, x := range adjU {
				counts[labels[x]]++
			}
			best := labels[u]
			bestCount := counts[best] // prefer keeping the current label on ties
			for l, c := range counts {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != labels[u] {
				labels[u] = best
				changed++
			}
		}
		if changed == 0 {
			break
		}
	}
	// Densify labels.
	remap := map[int32]int{}
	out := make(map[int64]int, n)
	for i, id := range v.IDs() {
		l, ok := remap[labels[i]]
		if !ok {
			l = len(remap)
			remap[labels[i]] = l
		}
		out[id] = l
	}
	return out
}

// Modularity computes the Newman modularity Q of a community assignment on
// an undirected graph: the fraction of edges inside communities minus the
// expectation under the configuration model. Nodes missing from comm form
// singleton communities.
func Modularity(g *graph.Undirected, comm map[int64]int) float64 {
	m := float64(g.NumEdges())
	if m == 0 {
		return 0
	}
	next := len(comm)
	lookup := func(id int64) int {
		if c, ok := comm[id]; ok {
			return c
		}
		next++
		return next
	}
	var inside float64          // edges within communities
	degSum := map[int]float64{} // sum of degrees per community
	g.ForNodes(func(id int64) {
		degSum[lookup(id)] += float64(g.Deg(id))
	})
	g.ForEdges(func(src, dst int64) {
		if lookup(src) == lookup(dst) {
			inside++
		}
	})
	q := inside / m
	for _, s := range degSum {
		frac := s / (2 * m)
		q -= frac * frac
	}
	return q
}

// RandomWalk returns a random walk of the given length from start,
// following out-edges; the walk stops early at a node with no out-edges.
// The walk is deterministic for a fixed seed. It returns nil if start is
// missing.
func RandomWalk(g *graph.Directed, start int64, length int, seed int64) []int64 {
	if !g.HasNode(start) {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	walk := make([]int64, 0, length+1)
	walk = append(walk, start)
	cur := start
	for i := 0; i < length; i++ {
		nbrs := g.OutNeighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		cur = nbrs[rng.Intn(len(nbrs))]
		walk = append(walk, cur)
	}
	return walk
}
