package algo

import (
	"testing"

	"ringo/internal/graph"
)

// twoCliques builds two k-cliques bridged by a single edge.
func twoCliques(k int) *graph.Undirected {
	g := graph.NewUndirected()
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			g.AddEdge(int64(i), int64(j))
			g.AddEdge(int64(100+i), int64(100+j))
		}
	}
	g.AddEdge(0, 100)
	return g
}

func TestLabelPropagationSeparatesCliques(t *testing.T) {
	g := twoCliques(6)
	// Label propagation is seed-sensitive by design; this seed separates
	// the cliques under the view's canonical (ascending-id) dense order.
	comm := LabelPropagation(g, 20, 8)
	// All members of each clique share a label.
	for i := int64(1); i < 6; i++ {
		if comm[i] != comm[0] {
			t.Fatalf("clique A split: comm[%d]=%d comm[0]=%d", i, comm[i], comm[0])
		}
		if comm[100+i] != comm[100] {
			t.Fatalf("clique B split")
		}
	}
	if comm[0] == comm[100] {
		t.Fatal("cliques merged into one community")
	}
}

func TestLabelPropagationDeterministic(t *testing.T) {
	g := twoCliques(5)
	a := LabelPropagation(g, 10, 3)
	b := LabelPropagation(g, 10, 3)
	for id, c := range a {
		if b[id] != c {
			t.Fatal("label propagation not deterministic for fixed seed")
		}
	}
}

func TestLabelPropagationLabelsDense(t *testing.T) {
	g := twoCliques(4)
	comm := LabelPropagation(g, 10, 1)
	seen := map[int]bool{}
	for _, c := range comm {
		seen[c] = true
	}
	for i := 0; i < len(seen); i++ {
		if !seen[i] {
			t.Fatalf("label %d missing from dense labeling", i)
		}
	}
}

func TestModularityPerfectSplitBeatsMonolith(t *testing.T) {
	g := twoCliques(6)
	split := map[int64]int{}
	g.ForNodes(func(id int64) {
		if id < 100 {
			split[id] = 0
		} else {
			split[id] = 1
		}
	})
	mono := map[int64]int{}
	g.ForNodes(func(id int64) { mono[id] = 0 })
	qs := Modularity(g, split)
	qm := Modularity(g, mono)
	if !approxEq(qm, 0, 1e-12) {
		t.Fatalf("monolithic modularity = %v, want 0", qm)
	}
	if qs <= 0.3 {
		t.Fatalf("split modularity = %v, want > 0.3", qs)
	}
	if Modularity(graph.NewUndirected(), nil) != 0 {
		t.Fatal("empty graph modularity nonzero")
	}
}

func TestRandomWalkProperties(t *testing.T) {
	g := cycleGraph(10)
	walk := RandomWalk(g, 0, 25, 99)
	if len(walk) != 26 || walk[0] != 0 {
		t.Fatalf("walk len=%d start=%d", len(walk), walk[0])
	}
	// Every step follows an edge.
	for i := 1; i < len(walk); i++ {
		if !g.HasEdge(walk[i-1], walk[i]) {
			t.Fatalf("step %d: %d->%d is not an edge", i, walk[i-1], walk[i])
		}
	}
	// Deterministic for a fixed seed.
	walk2 := RandomWalk(g, 0, 25, 99)
	for i := range walk {
		if walk[i] != walk2[i] {
			t.Fatal("walk not deterministic")
		}
	}
	// Walk stops at a sink.
	sink := pathGraph(3)
	w := RandomWalk(sink, 0, 10, 1)
	if len(w) != 3 {
		t.Fatalf("sink walk length = %d, want 3", len(w))
	}
	if RandomWalk(g, 999, 5, 1) != nil {
		t.Fatal("walk from missing node returned non-nil")
	}
}
