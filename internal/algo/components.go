package algo

import (
	"ringo/internal/graph"
)

// Components is the result of a component decomposition: a component label
// per node (labels dense from 0), the number of components, and the size of
// the largest one.
type Components struct {
	Label   map[int64]int
	Count   int
	MaxSize int
}

// WCC computes weakly connected components of a directed graph (edge
// direction ignored) with a union-find over the dense node space.
func WCC(g *graph.Directed) Components {
	return WCCView(graph.BuildView(g))
}

// WCCView is WCC over a prebuilt CSR view.
func WCCView(v *graph.View) Components {
	defer report(timed("wcc"))
	n := v.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for u := 0; u < n; u++ {
		for _, w := range v.Out(int32(u)) {
			union(int32(u), w)
		}
	}
	return labelComponents(v.IDs(), func(i int32) int32 { return find(i) })
}

// SCC computes strongly connected components with an iterative Tarjan
// algorithm (explicit stack, so million-node graphs do not overflow the
// goroutine stack). This is the sequential SCC benchmarked in Table 6.
func SCC(g *graph.Directed) Components {
	return SCCView(graph.BuildView(g))
}

// SCCView is SCC over a prebuilt CSR view.
func SCCView(v *graph.View) Components {
	defer report(timed("scc"))
	n := v.NumNodes()
	const unvisited = -1
	index := make([]int32, n)
	low := make([]int32, n)
	onStack := make([]bool, n)
	comp := make([]int32, n)
	for i := range index {
		index[i] = unvisited
		comp[i] = unvisited
	}
	var next int32
	var nComp int32
	stack := make([]int32, 0, 256)

	// Explicit DFS frames: node and position within its out list.
	type frame struct {
		node int32
		pos  int
	}
	frames := make([]frame, 0, 256)

	for root := 0; root < n; root++ {
		if index[root] != unvisited {
			continue
		}
		frames = append(frames, frame{int32(root), 0})
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, int32(root))
		onStack[root] = true

		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			u := f.node
			out := v.Out(u)
			if f.pos < len(out) {
				w := out[f.pos]
				f.pos++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{w, 0})
				} else if onStack[w] && index[w] < low[u] {
					low[u] = index[w]
				}
				continue
			}
			// u finished: pop frame, close component if root.
			frames = frames[:len(frames)-1]
			if low[u] == index[u] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = nComp
					if w == u {
						break
					}
				}
				nComp++
			}
			if len(frames) > 0 {
				p := frames[len(frames)-1].node
				if low[u] < low[p] {
					low[p] = low[u]
				}
			}
		}
	}
	return labelComponents(v.IDs(), func(i int32) int32 { return comp[i] })
}

// labelComponents converts per-dense-index raw labels into dense component
// ids keyed by node id, with count and max-size statistics.
func labelComponents(ids []int64, rawLabel func(i int32) int32) Components {
	remap := make(map[int32]int)
	label := make(map[int64]int, len(ids))
	sizes := []int{}
	for i, id := range ids {
		raw := rawLabel(int32(i))
		c, ok := remap[raw]
		if !ok {
			c = len(remap)
			remap[raw] = c
			sizes = append(sizes, 0)
		}
		label[id] = c
		sizes[c]++
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	return Components{Label: label, Count: len(remap), MaxSize: maxSize}
}

// LargestWCC returns the subgraph induced by the largest weakly connected
// component — the standard preprocessing step before distance-based
// analyses on real-world graphs.
func LargestWCC(g *graph.Directed) *graph.Directed {
	c := WCC(g)
	sizes := make([]int, c.Count)
	for _, l := range c.Label {
		sizes[l]++
	}
	best := 0
	for l, s := range sizes {
		if s > sizes[best] {
			best = l
		}
	}
	keep := make([]int64, 0, c.MaxSize)
	for id, l := range c.Label {
		if l == best {
			keep = append(keep, id)
		}
	}
	return graph.Subgraph(g, keep)
}

// WCCUndirected computes connected components of an undirected graph.
func WCCUndirected(g *graph.Undirected) Components {
	return WCCUndirectedView(graph.BuildUView(g))
}

// WCCUndirectedView is WCCUndirected over a prebuilt CSR view.
func WCCUndirectedView(v *graph.UView) Components {
	n := v.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		for _, w := range v.Adj(int32(u)) {
			ra, rb := find(int32(u)), find(w)
			if ra != rb {
				parent[ra] = rb
			}
		}
	}
	return labelComponents(v.IDs(), func(i int32) int32 { return find(i) })
}
