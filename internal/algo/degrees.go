package algo

import (
	"sort"

	"ringo/internal/graph"
)

// DegreeStats summarizes a degree distribution.
type DegreeStats struct {
	Min, Max int
	Mean     float64
}

// OutDegreeStats returns out-degree statistics of a directed graph.
func OutDegreeStats(g *graph.Directed) DegreeStats {
	return degreeStats(g, func(id int64) int { return g.OutDeg(id) })
}

// InDegreeStats returns in-degree statistics of a directed graph.
func InDegreeStats(g *graph.Directed) DegreeStats {
	return degreeStats(g, func(id int64) int { return g.InDeg(id) })
}

func degreeStats(g *graph.Directed, deg func(id int64) int) DegreeStats {
	st := DegreeStats{Min: int(^uint(0) >> 1)}
	n := 0
	var total int64
	g.ForNodes(func(id int64) {
		d := deg(id)
		if d < st.Min {
			st.Min = d
		}
		if d > st.Max {
			st.Max = d
		}
		total += int64(d)
		n++
	})
	if n == 0 {
		return DegreeStats{}
	}
	st.Mean = float64(total) / float64(n)
	return st
}

// DegreeHistogram returns (degree, node count) pairs in ascending degree
// order for the out-degrees of a directed graph — SNAP's GetOutDegCnt.
func DegreeHistogram(g *graph.Directed) [][2]int64 {
	counts := map[int]int64{}
	g.ForNodes(func(id int64) {
		counts[g.OutDeg(id)]++
	})
	degrees := make([]int, 0, len(counts))
	for d := range counts {
		degrees = append(degrees, d)
	}
	sort.Ints(degrees)
	out := make([][2]int64, len(degrees))
	for i, d := range degrees {
		out[i] = [2]int64{int64(d), counts[d]}
	}
	return out
}

// DegreeCentrality returns deg(v)/(n-1) per node of an undirected graph,
// the normalized degree centrality measure.
func DegreeCentrality(g *graph.Undirected) map[int64]float64 {
	n := g.NumNodes()
	out := make(map[int64]float64, n)
	if n <= 1 {
		g.ForNodes(func(id int64) { out[id] = 0 })
		return out
	}
	g.ForNodes(func(id int64) {
		out[id] = float64(g.Deg(id)) / float64(n-1)
	})
	return out
}

// MaxDegreeNode returns the node with the highest out-degree, breaking ties
// toward the smaller id; ok is false on an empty graph.
func MaxDegreeNode(g *graph.Directed) (id int64, deg int, ok bool) {
	best := int64(0)
	bestDeg := -1
	g.ForNodes(func(n int64) {
		d := g.OutDeg(n)
		if d > bestDeg || (d == bestDeg && n < best) {
			best, bestDeg = n, d
		}
	})
	if bestDeg < 0 {
		return 0, 0, false
	}
	return best, bestDeg, true
}
