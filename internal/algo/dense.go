// Package algo implements the graph algorithms Ringo exposes through SNAP
// (§2.2, §3 of Perez et al., SIGMOD 2015): PageRank, HITS, triangle
// counting, clustering coefficients, BFS and shortest paths, connected
// components (weak and strong), k-core decomposition, degree statistics,
// centrality measures, community detection, and random walks. The
// algorithms benchmarked in the paper (Tables 3 and 6) come in both
// sequential and parallel variants.
//
// Algorithms accept the dynamic hash-table graphs from internal/graph and
// internally build a dense, array-indexed view once per invocation (the
// role SNAP's node iterators play), then run over flat arrays.
package algo

import (
	"slices"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// dense is a flat-array view of a directed graph: node ids are mapped to
// dense indices, and adjacency is translated to dense indices so iterative
// algorithms index arrays instead of hashing.
type dense struct {
	ids []int64
	idx map[int64]int32
	out [][]int32
	in  [][]int32
}

func denseOf(g *graph.Directed) *dense {
	n := g.NumNodes()
	d := &dense{
		ids: make([]int64, 0, n),
		idx: make(map[int64]int32, n),
	}
	for s := 0; s < g.NumSlots(); s++ {
		if id, ok := g.IDAtSlot(s); ok {
			d.idx[id] = int32(len(d.ids))
			d.ids = append(d.ids, id)
		}
	}
	d.out = make([][]int32, len(d.ids))
	d.in = make([][]int32, len(d.ids))
	at := 0
	for s := 0; s < g.NumSlots(); s++ {
		if _, ok := g.IDAtSlot(s); !ok {
			continue
		}
		d.out[at] = translate(g.OutAtSlot(s), d.idx)
		d.in[at] = translate(g.InAtSlot(s), d.idx)
		at++
	}
	return d
}

// denseUndir is the undirected counterpart of dense.
type denseUndir struct {
	ids []int64
	idx map[int64]int32
	adj [][]int32
}

func denseOfUndir(g *graph.Undirected) *denseUndir {
	n := g.NumNodes()
	d := &denseUndir{
		ids: make([]int64, 0, n),
		idx: make(map[int64]int32, n),
	}
	for s := 0; s < g.NumSlots(); s++ {
		if id, ok := g.IDAtSlot(s); ok {
			d.idx[id] = int32(len(d.ids))
			d.ids = append(d.ids, id)
		}
	}
	d.adj = make([][]int32, len(d.ids))
	at := 0
	for s := 0; s < g.NumSlots(); s++ {
		if _, ok := g.IDAtSlot(s); !ok {
			continue
		}
		d.adj[at] = translate(g.AdjAtSlot(s), d.idx)
		at++
	}
	return d
}

// translate maps node ids to dense indices. The input vectors are sorted by
// id; because dense indices are assigned in slot order, not id order, the
// output is re-sorted so intersection-based algorithms keep working.
func translate(ids []int64, idx map[int64]int32) []int32 {
	if len(ids) == 0 {
		return nil
	}
	out := make([]int32, len(ids))
	for i, id := range ids {
		out[i] = idx[id]
	}
	sortInt32(out)
	return out
}

func sortInt32(a []int32) {
	// Insertion sort for short vectors — adjacency vectors are
	// overwhelmingly short in power-law graphs — and slices.Sort (pdqsort:
	// O(n log n) worst case, bounded recursion) beyond, instead of the old
	// hand-rolled quicksort whose unbalanced pivots could recurse without
	// bound and hit O(n²) on adversarial adjacency.
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	slices.Sort(a)
}

// scoresToMap converts a dense score vector to the id-keyed map Ringo's
// front-end verbs return (ready for TableFromMap).
func scoresToMap(ids []int64, vals []float64) map[int64]float64 {
	m := make(map[int64]float64, len(ids))
	for i, id := range ids {
		m[id] = vals[i]
	}
	return m
}

// parFill sets every element of a to v in parallel.
func parFill(a []float64, v float64) {
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = v
		}
	})
}
