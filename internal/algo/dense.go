// Package algo implements the graph algorithms Ringo exposes through SNAP
// (§2.2, §3 of Perez et al., SIGMOD 2015): PageRank, HITS, triangle
// counting, clustering coefficients, BFS and shortest paths, connected
// components (weak and strong), k-core decomposition, degree statistics,
// centrality measures, community detection, and random walks. The
// algorithms benchmarked in the paper (Tables 3 and 6) come in both
// sequential and parallel variants.
//
// Every algorithm runs over the flat CSR snapshot of the graph
// (graph.View / graph.UView): node ids mapped to dense indices, adjacency
// translated into arena-backed flat arrays, so iterative kernels index
// arrays instead of hashing. Each algorithm is exported twice: a
// view-taking variant (PageRankView, TrianglesView, ...) that runs
// directly over a snapshot — the form the fingerprint-keyed view cache in
// internal/core feeds, so repeated queries on an unchanged graph skip the
// O(V+E) conversion entirely — and a thin wrapper with the historical
// graph-taking signature that builds a throwaway view first.
package algo

import (
	"slices"

	"ringo/internal/par"
)

// sortInt32 sorts a dense-index vector: insertion sort for short vectors —
// adjacency vectors are overwhelmingly short in power-law graphs — and
// slices.Sort (pdqsort: O(n log n) worst case, bounded recursion) beyond,
// instead of the old hand-rolled quicksort whose unbalanced pivots could
// recurse without bound and hit O(n²) on adversarial adjacency.
func sortInt32(a []int32) {
	if len(a) < 24 {
		for i := 1; i < len(a); i++ {
			v := a[i]
			j := i - 1
			for j >= 0 && a[j] > v {
				a[j+1] = a[j]
				j--
			}
			a[j+1] = v
		}
		return
	}
	slices.Sort(a)
}

// scoresToMap converts a dense score vector to the id-keyed map Ringo's
// front-end verbs return (ready for TableFromMap).
func scoresToMap(ids []int64, vals []float64) map[int64]float64 {
	m := make(map[int64]float64, len(ids))
	for i, id := range ids {
		m[id] = vals[i]
	}
	return m
}

// parFill sets every element of a to v in parallel.
func parFill(a []float64, v float64) {
	par.For(len(a), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = v
		}
	})
}
