package algo

import (
	"math/rand"
	"testing"
)

// powerLawVectors builds adjacency-shaped int32 vectors whose lengths follow
// the skew of a social graph: overwhelmingly short, with a heavy tail of
// hubs. The values are shuffled dense indices, the input the out/in merge
// in undirectedAdj (and CountMotifsView) feeds sortInt32.
func powerLawVectors(n int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	vecs := make([][]int32, n)
	for i := range vecs {
		// Pareto-ish length: most vectors < 24 (insertion-sort path), the
		// tail reaching thousands (pdqsort path).
		ln := int(3.0 / (rng.Float64() + 0.001))
		if ln > 8192 {
			ln = 8192
		}
		v := make([]int32, ln)
		for j := range v {
			v[j] = int32(rng.Intn(n))
		}
		vecs[i] = v
	}
	return vecs
}

// BenchmarkSortInt32PowerLaw guards the merged-adjacency sort: the
// slices.Sort replacement for the old hand-rolled quicksort must not regress
// on the power-law length mix that dominates real graphs.
func BenchmarkSortInt32PowerLaw(b *testing.B) {
	vecs := powerLawVectors(4096, 7)
	scratch := make([]int32, 8192)
	var total int64
	for _, v := range vecs {
		total += int64(len(v))
	}
	b.SetBytes(total * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, v := range vecs {
			s := scratch[:len(v)]
			copy(s, v)
			sortInt32(s)
		}
	}
}

func TestSortInt32(t *testing.T) {
	for _, v := range powerLawVectors(512, 11) {
		sortInt32(v)
		for i := 1; i < len(v); i++ {
			if v[i-1] > v[i] {
				t.Fatalf("sortInt32 left index %d out of order", i)
			}
		}
	}
	// The old quicksort's adversarial cases: already sorted, reversed, and
	// all-equal vectors at pdqsort lengths.
	n := 1 << 14
	asc := make([]int32, n)
	desc := make([]int32, n)
	flat := make([]int32, n)
	for i := 0; i < n; i++ {
		asc[i] = int32(i)
		desc[i] = int32(n - i)
		flat[i] = 42
	}
	for _, v := range [][]int32{asc, desc, flat} {
		sortInt32(v)
		for i := 1; i < len(v); i++ {
			if v[i-1] > v[i] {
				t.Fatalf("adversarial vector out of order at %d", i)
			}
		}
	}
}
