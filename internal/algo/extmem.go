package algo

import (
	"sync/atomic"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// Semi-external algorithm variants, the compute half of the beyond-RAM
// tier (see internal/extmem for the storage half): vertex state — ranks,
// labels, distances, frontiers — stays in memory, sized O(V), while edge
// arrays are streamed in vertex-range blocks from the view, which is
// typically an mmap-backed RNGM image whose pages the kernel faults in on
// demand. Blocks whose vertex range has no active vertices are skipped
// without touching their arena pages (GraphMP-style selective scheduling,
// PAPERS.md arXiv 1707.02557), so a BFS over a mostly-converged frontier
// reads a fraction of the file.
//
// Each variant shares a results-equality contract with its in-heap
// counterpart: identical inputs produce byte-identical outputs (exact
// float equality for PageRank), enforced by the equivalence tests. That
// holds because blocking only re-chunks loops whose per-vertex work is
// independent, and the one order-sensitive reduction (PageRank's dangling
// mass) uses the same deterministic par.Reduce as the in-heap path.

// extBlockSize is the vertex-range block width edge arrays are streamed
// in: 1<<15 vertices keeps a block's offset slice inside a few pages while
// giving the scheduler enough granularity to skip cold regions. A var so
// tests can shrink it to force multi-block schedules on small graphs.
var extBlockSize = 1 << 15

var (
	extBlocksScanned atomic.Int64
	extBlocksSkipped atomic.Int64
)

// ExtBlockStats reports the cumulative number of edge blocks scanned and
// skipped by semi-external runs since process start — the selective-
// scheduling effectiveness counters exported at /metrics.
func ExtBlockStats() (scanned, skipped int64) {
	return extBlocksScanned.Load(), extBlocksSkipped.Load()
}

func extNumBlocks(n int) int {
	return (n + extBlockSize - 1) / extBlockSize
}

// PageRankExt is PageRank over a (typically mapped) view in semi-external
// style: both rank vectors live in memory and each power iteration streams
// the in-edge blocks. Every vertex is active in every power iteration, so
// no blocks are skipped — the win over PageRankView is that the edge
// arrays never occupy heap, only page cache. Scores are byte-identical to
// PageRankView on the same view.
func PageRankExt(v *graph.View, damping float64, iters int) map[int64]float64 {
	defer report(timed("pagerank_ext"))
	return scoresToMap(v.IDs(), pageRankExtFlat(v, damping, iters))
}

func pageRankExtFlat(v *graph.View, damping float64, iters int) []float64 {
	n := v.NumNodes()
	if n == 0 {
		return nil
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	outDeg := make([]int32, n)
	for i := 0; i < n; i++ {
		outDeg[i] = int32(v.OutDeg(int32(i)))
	}
	parFill(pr, 1.0/float64(n))

	nb := extNumBlocks(n)
	for it := 0; it < iters; it++ {
		// The dangling-mass reduction is the one float sum whose order
		// affects the result; par.Reduce folds its deterministic ranges in
		// range order, exactly as pageRankFlat does, so base is bit-equal.
		dangling := par.Reduce(n, 0.0, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				if outDeg[i] == 0 {
					s += pr[i]
				}
			}
			return s
		}, func(a, b float64) float64 { return a + b })
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		par.ForEach(nb, func(b int) {
			lo := b * extBlockSize
			hi := min(lo+extBlockSize, n)
			extBlocksScanned.Add(1)
			for i := lo; i < hi; i++ {
				var sum float64
				for _, src := range v.In(int32(i)) {
					sum += pr[src] / float64(outDeg[src])
				}
				next[i] = base + damping*sum
			}
		})
		pr, next = next, pr
	}
	return pr
}

// WCCExt is WCCView in semi-external style: the union-find parent array is
// the in-memory vertex state and the out-edge arena is streamed block by
// block in one ascending pass. Blocks whose vertex range holds no
// out-edges are skipped from the offset vector alone. Unions happen in the
// same (u ascending, Out(u) order) sequence as WCCView, so the component
// labeling is identical.
func WCCExt(v *graph.View) Components {
	defer report(timed("wcc_ext"))
	n := v.NumNodes()
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	nb := extNumBlocks(n)
	for b := 0; b < nb; b++ {
		lo := int32(b * extBlockSize)
		hi := int32(min(int(lo)+extBlockSize, n))
		if v.OutEdgesIn(lo, hi) == 0 {
			extBlocksSkipped.Add(1)
			continue
		}
		extBlocksScanned.Add(1)
		for u := lo; u < hi; u++ {
			for _, w := range v.Out(u) {
				ra, rb := find(u), find(w)
				if ra != rb {
					parent[ra] = rb
				}
			}
		}
	}
	return labelComponents(v.IDs(), func(i int32) int32 { return find(i) })
}

// BFSExt is BFSView in semi-external style: a level-synchronous sweep
// whose frontier, distances and per-block active counts live in memory.
// Each level scans only the blocks holding frontier vertices — on graphs
// with small or shrinking frontiers most blocks are skipped each level,
// which is where selective scheduling actually pays. Hop distances are
// identical to BFSView (both compute true BFS levels).
func BFSExt(v *graph.View, src int64, dir EdgeDir) map[int64]int {
	defer report(timed("bfs_ext"))
	s, ok := v.Index(src)
	if !ok {
		return nil
	}
	n := v.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0

	nb := extNumBlocks(n)
	cur := make([]bool, n)
	nxt := make([]bool, n)
	active := make([]int32, nb)
	nextActive := make([]int32, nb)
	cur[s] = true
	active[int(s)/extBlockSize] = 1
	remaining := 1

	for level := int32(0); remaining > 0; level++ {
		remaining = 0
		for b := 0; b < nb; b++ {
			if active[b] == 0 {
				extBlocksSkipped.Add(1)
				continue
			}
			extBlocksScanned.Add(1)
			lo := b * extBlockSize
			hi := min(lo+extBlockSize, n)
			for i := lo; i < hi; i++ {
				if !cur[i] {
					continue
				}
				expand := func(nbrs []int32) {
					for _, w := range nbrs {
						if dist[w] < 0 {
							dist[w] = level + 1
							nxt[w] = true
							nextActive[int(w)/extBlockSize]++
							remaining++
						}
					}
				}
				if dir == Out || dir == Both {
					expand(v.Out(int32(i)))
				}
				if dir == In || dir == Both {
					expand(v.In(int32(i)))
				}
			}
		}
		cur, nxt = nxt, cur
		active, nextActive = nextActive, active
		clear(nxt)
		clear(nextActive)
	}

	out := make(map[int64]int)
	for i, dv := range dist {
		if dv >= 0 {
			out[v.ID(int32(i))] = int(dv)
		}
	}
	return out
}
