package algo

import (
	"maps"
	"path/filepath"
	"testing"

	"ringo/internal/extmem"
	"ringo/internal/gen"
	"ringo/internal/graph"
)

// mapView round-trips v through an RNGM file and returns the mapped view,
// so the equivalence tests exercise the real storage tier (binary-searched
// Index, aliased arenas), not just a second heap view.
func mapView(t testing.TB, v *graph.View) *graph.View {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.rngm")
	if err := extmem.SaveMapped(path, v); err != nil {
		t.Fatalf("SaveMapped: %v", err)
	}
	mg, err := extmem.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { mg.Close() })
	return mg.View()
}

// shrinkBlocks forces multi-block semi-external schedules on test-sized
// graphs so the skip logic actually runs.
func shrinkBlocks(t *testing.T, size int) {
	t.Helper()
	old := extBlockSize
	extBlockSize = size
	t.Cleanup(func() { extBlockSize = old })
}

// extTestGraphs yields the awkward shapes the equality contract names:
// random graphs, isolated nodes, tombstoned (deleted) slots, and a
// multi-component graph where BFS leaves most blocks inactive.
func extTestGraphs() map[string]*graph.Directed {
	gs := map[string]*graph.Directed{
		"gnm":  gen.GNM(500, 4000, 3),
		"ring": gen.Ring(257),
		"star": gen.Star(300),
	}
	withIso := gen.GNM(300, 1500, 5)
	for id := int64(300); id < 320; id++ {
		withIso.AddNode(id)
	}
	gs["isolated"] = withIso

	tomb := gen.GNM(400, 2500, 9)
	for id := int64(0); id < 120; id += 2 {
		tomb.DelNode(id)
	}
	gs["tombstoned"] = tomb

	two := gen.GNM(200, 900, 13)
	far := gen.Ring(100)
	far.ForEdges(func(src, dst int64) { two.AddEdge(src+10000, dst+10000) })
	gs["two-components"] = two
	return gs
}

func TestPageRankExtMatchesView(t *testing.T) {
	shrinkBlocks(t, 37)
	for name, g := range extTestGraphs() {
		v := graph.BuildView(g)
		mv := mapView(t, v)
		want := PageRankView(v, DefaultDamping, 10)
		got := PageRankExt(mv, DefaultDamping, 10)
		if !maps.Equal(want, got) {
			t.Errorf("%s: PageRankExt scores differ from PageRankView (want %d scores, got %d)", name, len(want), len(got))
		}
	}
}

func TestWCCExtMatchesView(t *testing.T) {
	shrinkBlocks(t, 41)
	for name, g := range extTestGraphs() {
		v := graph.BuildView(g)
		mv := mapView(t, v)
		want := WCCView(v)
		got := WCCExt(mv)
		if want.Count != got.Count || want.MaxSize != got.MaxSize || !maps.Equal(want.Label, got.Label) {
			t.Errorf("%s: WCCExt labeling differs from WCCView (count %d vs %d, max %d vs %d)",
				name, want.Count, got.Count, want.MaxSize, got.MaxSize)
		}
	}
}

func TestBFSExtMatchesView(t *testing.T) {
	shrinkBlocks(t, 29)
	for name, g := range extTestGraphs() {
		v := graph.BuildView(g)
		if v.NumNodes() == 0 {
			continue
		}
		mv := mapView(t, v)
		srcs := []int64{v.ID(0), v.ID(int32(v.NumNodes() / 2)), v.ID(int32(v.NumNodes() - 1))}
		for _, src := range srcs {
			for _, dir := range []EdgeDir{Out, In, Both} {
				want := BFSView(v, src, dir)
				got := BFSExt(mv, src, dir)
				if !maps.Equal(want, got) {
					t.Errorf("%s: BFSExt(src=%d, dir=%d) differs from BFSView (%d vs %d reached)",
						name, src, dir, len(want), len(got))
				}
			}
		}
	}
}

func TestBFSExtUnknownSource(t *testing.T) {
	v := graph.BuildView(gen.GNM(50, 200, 1))
	if got := BFSExt(v, 1<<40, Out); got != nil {
		t.Fatalf("BFSExt from absent source = %v, want nil", got)
	}
}

func TestExtBlockStatsAdvance(t *testing.T) {
	shrinkBlocks(t, 16)
	// A two-component graph where one component is far from the other in
	// the dense ordering: BFS from inside one component must skip the
	// other's blocks.
	g := gen.Ring(128)
	far := gen.Ring(128)
	far.ForEdges(func(src, dst int64) { g.AddEdge(src+100000, dst+100000) })
	v := graph.BuildView(g)

	s0, k0 := ExtBlockStats()
	BFSExt(v, v.ID(0), Out)
	s1, k1 := ExtBlockStats()
	if s1 <= s0 {
		t.Fatalf("scanned counter did not advance (%d -> %d)", s0, s1)
	}
	if k1 <= k0 {
		t.Fatalf("skipped counter did not advance (%d -> %d): selective scheduling scanned every block", k0, k1)
	}
}

// BenchmarkPageRankExt runs semi-external PageRank over a mapped RNGM
// image — the number to put against BenchmarkPageRank-style in-heap runs
// and the CI smoke that keeps the mapped pipeline compiling end to end.
func BenchmarkPageRankExt(b *testing.B) {
	g := gen.GNM(1<<15, 1<<18, 42)
	mv := mapView(b, graph.BuildView(g))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PageRankExt(mv, DefaultDamping, 5)
	}
}
