// Incremental algorithm variants for the mutating-graph tier: each one
// consumes the previous answer plus the mutation deltas that separate the
// old graph state from the new, and returns the same result its cold
// *View counterpart computes from scratch — exactly for WCC and triangle
// counts, within the shared convergence tolerance for PageRank. The
// workspace's delta log (internal/core) supplies the deltas; the patched
// CSR views supply the graph.
package algo

import (
	"math"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// DefaultPageRankTol is the residual tolerance PageRankViewTol and
// PageRankIncr converge to when callers have no stricter requirement.
const DefaultPageRankTol = 1e-9

// PageRankViewTol is PageRank iterated to a convergence tolerance instead
// of a fixed iteration count — the cold oracle the incremental variant is
// equivalent to. It power-iterates the dangling-discard formulation
// x = (1-d)/n + d·Σ_in x/outdeg until the L1 change of a sweep is at most
// (1-d)·tol, then normalizes to sum 1; discarding dangling mass instead of
// redistributing it yields scores proportional to PageRankView's model, so
// after normalization the two agree in the iteration limit.
func PageRankViewTol(v *graph.View, damping, tol float64) map[int64]float64 {
	defer report(timed("pagerank_tol"))
	n := v.NumNodes()
	if n == 0 {
		return map[int64]float64{}
	}
	outDeg := make([]int32, n)
	for i := 0; i < n; i++ {
		outDeg[i] = int32(v.OutDeg(int32(i)))
	}
	a := (1 - damping) / float64(n)
	x := make([]float64, n)
	parFill(x, 1.0/float64(n))
	x = powerIterate(v, outDeg, x, a, damping, tol)
	normalizeSum(x)
	return scoresToMap(v.IDs(), x)
}

// powerIterate sweeps x ← a + d·Σ_in x/outdeg until the L1 change of a
// sweep is at most (1-d)·tol, returning the converged vector. The sweep
// contracts the error by d per round, so the iteration count is bounded by
// log(tol)/log(d); the cap only guards degenerate damping values.
func powerIterate(v *graph.View, outDeg []int32, x []float64, a, damping, tol float64) []float64 {
	n := len(x)
	next := make([]float64, n)
	for it := 0; it < 100000; it++ {
		diff := par.Reduce(n, 0.0, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				var sum float64
				for _, src := range v.In(int32(i)) {
					sum += x[src] / float64(outDeg[src])
				}
				next[i] = a + damping*sum
				s += math.Abs(next[i] - x[i])
			}
			return s
		}, func(p, q float64) float64 { return p + q })
		x, next = next, x
		if diff <= (1-damping)*tol {
			break
		}
	}
	return x
}

// PageRankIncr is dynamic PageRank seeded from the previous score vector:
// one parallel sweep computes the residual of the seed against the new
// view, a Gauss–Southwell push phase drains the residual spike around the
// mutated region along out-edges (work proportional to how much the
// solution actually moved), and a final polish power-iterates under the
// exact stopping rule of the cold oracle. prev is the score map of any
// earlier state (missing nodes seed at 1/n); because the polish shares
// PageRankViewTol's convergence criterion, the result equals
// PageRankViewTol(v, damping, tol) on the current view up to the shared
// tolerance — the seed and the push phase only decide how little work is
// left, never the answer.
func PageRankIncr(v *graph.View, prev map[int64]float64, damping, tol float64) map[int64]float64 {
	defer report(timed("pagerank_incr"))
	n := v.NumNodes()
	if n == 0 {
		return map[int64]float64{}
	}
	outDeg := make([]int32, n)
	for i := 0; i < n; i++ {
		outDeg[i] = int32(v.OutDeg(int32(i)))
	}
	a := (1 - damping) / float64(n)
	x := make([]float64, n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if s, ok := prev[v.ID(int32(i))]; ok {
				x[i] = s
			} else {
				x[i] = 1.0 / float64(n)
			}
		}
	})

	// One full residual sweep against the new topology; after this the
	// work is queue-driven and local.
	rho := make([]float64, n)
	sweep := func() float64 {
		return par.Reduce(n, 0.0, func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				var sum float64
				for _, src := range v.In(int32(i)) {
					sum += x[src] / float64(outDeg[src])
				}
				rho[i] = a + damping*sum - x[i]
				s += rho[i]
			}
			return s
		}, func(p, q float64) float64 { return p + q })
	}
	rsum := sweep()

	// prev is normalized to sum 1, but the fixpoint of the internal
	// dangling-discard iteration has a smaller sum — a seed taken verbatim
	// carries a uniform residual of that scale mismatch, which would erase
	// the warm start. The residual map is affine in a scalar seed rescale
	// (rho(c·x) = a·(1−c) + c·rho(x)), so the c that cancels the aggregate
	// residual has a closed form; rescaling x and rho by it leaves only the
	// genuinely local residual around the mutated region.
	if den := (1 - damping) - rsum; math.Abs(den) > 1e-12 {
		if c := (1 - damping) / den; c > 0.5 && c < 2 {
			par.For(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					x[i] *= c
					rho[i] = a*(1-c) + c*rho[i]
				}
			})
		}
	}

	// Push phase: drain residual mass above the per-node threshold. A push
	// at node u applies the Gauss–Southwell update x_u += rho_u and forwards
	// d·rho_u/deg to the out-neighbors' residuals, preserving the invariant
	// rho = a + d·P'x − x, and removes at least (1−d)·thresh of total
	// residual mass — so the loop both terminates and is worth running only
	// while the residual is concentrated. The cap — a small multiple of the
	// initial spike size — hands diffuse cascades to the polish sweeps,
	// which retire spread-out residual at full parallel memory bandwidth
	// instead of sequential pointer-chasing.
	thresh := (1 - damping) * tol
	inQ := make([]bool, n)
	queue := make([]int32, 0, n)
	for i := int32(0); int(i) < n; i++ {
		if math.Abs(rho[i]) > thresh {
			inQ[i] = true
			queue = append(queue, i)
		}
	}
	maxPush := 8*len(queue) + 1024
	for head := 0; head < len(queue) && maxPush > 0; head++ {
		u := queue[head]
		inQ[u] = false
		r := rho[u]
		if math.Abs(r) <= thresh {
			continue
		}
		maxPush--
		rho[u] = 0
		x[u] += r
		if deg := outDeg[u]; deg > 0 {
			push := damping * r / float64(deg)
			for _, w := range v.Out(u) {
				rho[w] += push
				if !inQ[w] && math.Abs(rho[w]) > thresh {
					inQ[w] = true
					queue = append(queue, w)
				}
			}
		}
		// Compact the drained prefix so the queue slice cannot grow
		// unboundedly across long push cascades.
		if head > n && head > len(queue)/2 {
			queue = append(queue[:0], queue[head+1:]...)
			head = -1
		}
	}

	// Polish: folding the remaining residual into x is exactly one Jacobi
	// sweep (the invariant makes x+rho = a + d·P'x), and the L1 residual is
	// that sweep's diff — so the cold oracle's stopping rule applies
	// directly, and further sweeps run only if the push phase left more
	// than the tolerance behind.
	diff := par.Reduce(n, 0.0, func(lo, hi int) float64 {
		var s float64
		for i := lo; i < hi; i++ {
			s += math.Abs(rho[i])
			x[i] += rho[i]
		}
		return s
	}, func(p, q float64) float64 { return p + q })
	if diff > (1-damping)*tol {
		x = powerIterate(v, outDeg, x, a, damping, tol)
	}
	normalizeSum(x)
	return scoresToMap(v.IDs(), x)
}

// WCCIncr maintains weakly connected components under additions: it
// unions the previous labels across only the net-new edges, so the cost is
// O(V) relabeling plus near-constant work per delta instead of a full edge
// scan. Deletions can split components, which union-find cannot undo, so
// any DeltaDelEdge in the batch returns ok=false and the caller falls back
// to the cold WCCView. When ok, the result is identical to WCCView(v) —
// same labels, count and max size — because both renumber components by
// first appearance in ascending node-id order.
func WCCIncr(v *graph.View, prev Components, deltas []graph.Delta) (Components, bool) {
	for _, d := range deltas {
		if d.Op == graph.DeltaDelEdge {
			return Components{}, false
		}
	}
	defer report(timed("wcc_incr"))
	n := v.NumNodes()
	groups := make([]int32, n)
	next := int32(prev.Count)
	for i, id := range v.IDs() {
		if l, ok := prev.Label[id]; ok {
			groups[i] = int32(l)
		} else {
			groups[i] = next
			next++
		}
	}
	parent := make([]int32, next)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, d := range deltas {
		if d.Op != graph.DeltaAddEdge {
			continue
		}
		si, ok := v.Index(d.Src)
		if !ok {
			continue
		}
		di, ok := v.Index(d.Dst)
		if !ok {
			continue
		}
		ra, rb := find(groups[si]), find(groups[di])
		if ra != rb {
			parent[ra] = rb
		}
	}
	return labelComponents(v.IDs(), func(i int32) int32 { return find(groups[i]) }), true
}

// TrianglesIncr maintains the global triangle count across a mutation
// batch by counting only the wedges the changed edges touch: every net-new
// edge contributes the triangles it closes in the new view, every net-
// deleted edge subtracts the triangles it closed in the old view, and a
// triangle with several changed edges is attributed to exactly one of them
// (the highest-ranked in the batch) so nothing double-counts. The result
// equals TrianglesView(newV) exactly.
func TrianglesIncr(oldV, newV *graph.UView, oldCount int64, deltas []graph.Delta) int64 {
	defer report(timed("triangles_incr"))
	type pair struct{ a, b int64 }
	canon := func(a, b int64) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	seen := make(map[pair]struct{}, len(deltas))
	var added, deleted []pair
	for _, d := range deltas {
		if d.Op == graph.DeltaAddNode {
			continue
		}
		p := canon(d.Src, d.Dst)
		if _, dup := seen[p]; dup {
			continue
		}
		seen[p] = struct{}{}
		inNew := uviewHasEdge(newV, p.a, p.b)
		inOld := uviewHasEdge(oldV, p.a, p.b)
		switch {
		case inNew && !inOld:
			added = append(added, p)
		case inOld && !inNew:
			deleted = append(deleted, p)
		}
	}

	countTouched := func(v *graph.UView, edges []pair) int64 {
		rank := make(map[pair]int, len(edges))
		for i, e := range edges {
			rank[e] = i
		}
		var count int64
		for i, e := range edges {
			if e.a == e.b {
				continue // self-loops close no triangles
			}
			ua, okA := v.Index(e.a)
			ub, okB := v.Index(e.b)
			if !okA || !okB {
				continue
			}
			forEachCommon(v.Adj(ua), v.Adj(ub), func(w int32) {
				if w == ua || w == ub {
					return
				}
				wid := v.ID(w)
				// Attribute the triangle to its highest-ranked changed
				// edge: skip if either wing edge changed with a higher
				// rank than this one.
				if r, ok := rank[canon(e.a, wid)]; ok && r > i {
					return
				}
				if r, ok := rank[canon(e.b, wid)]; ok && r > i {
					return
				}
				count++
			})
		}
		return count
	}

	return oldCount + countTouched(newV, added) - countTouched(oldV, deleted)
}

func uviewHasEdge(v *graph.UView, a, b int64) bool {
	ai, ok := v.Index(a)
	if !ok {
		return false
	}
	bi, ok := v.Index(b)
	if !ok {
		return false
	}
	adj := v.Adj(ai)
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := (lo + hi) / 2
		if adj[mid] < bi {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(adj) && adj[lo] == bi
}

// forEachCommon visits every value present in both sorted slices.
func forEachCommon(a, b []int32, fn func(w int32)) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}

// normalizeSum scales a to sum to 1 (no-op for a zero vector).
func normalizeSum(a []float64) {
	var sum float64
	for _, v := range a {
		sum += v
	}
	if sum == 0 {
		return
	}
	inv := 1 / sum
	for i := range a {
		a[i] *= inv
	}
}
