package algo

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"ringo/internal/graph"
)

func randGraph(rng *rand.Rand, nodes int64, edges int) *graph.Directed {
	g := graph.NewDirected()
	for i := 0; i < edges; i++ {
		g.AddEdge(rng.Int63n(nodes), rng.Int63n(nodes))
	}
	// A few guaranteed dangling and isolated nodes.
	g.AddEdge(nodes, nodes+1)
	g.AddNode(nodes + 2)
	return g
}

func maxScoreDiff(a, b map[int64]float64) float64 {
	var worst float64
	for id, av := range a {
		if d := math.Abs(av - b[id]); d > worst {
			worst = d
		}
	}
	for id, bv := range b {
		if _, ok := a[id]; !ok && math.Abs(bv) > worst {
			worst = math.Abs(bv)
		}
	}
	return worst
}

// TestPageRankViewTolConverges checks the tolerance-based oracle against a
// long fixed-iteration run of the standard redistribute formulation: the
// dangling-discard model it iterates is proportional, so after
// normalization the two must agree tightly.
func TestPageRankViewTolConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGraph(rng, 200, 800)
	v := graph.BuildView(g)
	tol := PageRankViewTol(v, DefaultDamping, 1e-12)
	fixed := PageRankView(v, DefaultDamping, 300)
	if d := maxScoreDiff(tol, fixed); d > 1e-9 {
		t.Fatalf("tolerance-based PageRank diverges from converged power iteration: max diff %g", d)
	}
	var sum float64
	for _, s := range tol {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("scores do not sum to 1: %g", sum)
	}
}

// TestPageRankIncrMatchesCold is the PageRank oracle test: warm-started
// residual pushing over the mutated graph must agree with the cold
// tolerance-based run at the shared tolerance, across add/delete batches.
func TestPageRankIncrMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randGraph(rng, 150, 600)
	prev := PageRankViewTol(graph.BuildView(g), DefaultDamping, 1e-10)
	for round := 0; round < 6; round++ {
		for i := 0; i < 10; i++ {
			switch rng.Intn(3) {
			case 0:
				g.DelEdge(rng.Int63n(150), rng.Int63n(150))
			case 1:
				g.AddNode(rng.Int63n(300))
			default:
				g.AddEdge(rng.Int63n(300), rng.Int63n(300))
			}
		}
		v := graph.BuildView(g)
		incr := PageRankIncr(v, prev, DefaultDamping, 1e-10)
		cold := PageRankViewTol(v, DefaultDamping, 1e-10)
		if d := maxScoreDiff(incr, cold); d > 1e-7 {
			t.Fatalf("round %d: incremental PageRank diverges from cold oracle: max diff %g", round, d)
		}
		prev = incr
	}
}

// TestPageRankIncrColdStart seeds from an empty previous vector: the push
// method must still converge to the oracle (it just does more work).
func TestPageRankIncrColdStart(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randGraph(rng, 80, 300)
	v := graph.BuildView(g)
	incr := PageRankIncr(v, map[int64]float64{}, DefaultDamping, 1e-10)
	cold := PageRankViewTol(v, DefaultDamping, 1e-10)
	if d := maxScoreDiff(incr, cold); d > 1e-7 {
		t.Fatalf("cold-started incremental PageRank diverges: max diff %g", d)
	}
}

// TestWCCIncrMatchesCold grows a graph edge by edge and requires the
// incremental components to be *identical* to the cold result — labels,
// count and max size — at every step.
func TestWCCIncrMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.NewDirected()
	for i := int64(0); i < 50; i++ {
		g.AddNode(i)
	}
	prev := WCCView(graph.BuildView(g))
	for round := 0; round < 20; round++ {
		var deltas []graph.Delta
		for i := 0; i < 4; i++ {
			s, d := rng.Int63n(70), rng.Int63n(70)
			if g.AddEdge(s, d) {
				deltas = append(deltas, graph.Delta{Op: graph.DeltaAddEdge, Src: s, Dst: d})
			}
		}
		if id := rng.Int63n(100); g.AddNode(id) {
			deltas = append(deltas, graph.Delta{Op: graph.DeltaAddNode, Src: id})
		}
		v := graph.BuildView(g)
		got, ok := WCCIncr(v, prev, deltas)
		if !ok {
			t.Fatalf("round %d: WCCIncr refused an additions-only batch", round)
		}
		want := WCCView(v)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round %d: incremental WCC differs: got count=%d max=%d, want count=%d max=%d",
				round, got.Count, got.MaxSize, want.Count, want.MaxSize)
		}
		prev = got
	}
}

// TestWCCIncrRefusesDeletions: union-find cannot split components, so a
// batch containing any deletion must signal fallback.
func TestWCCIncrRefusesDeletions(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	v := graph.BuildView(g)
	prev := WCCView(v)
	if _, ok := WCCIncr(v, prev, []graph.Delta{{Op: graph.DeltaDelEdge, Src: 1, Dst: 2}}); ok {
		t.Fatal("WCCIncr accepted a batch with a deletion")
	}
}

// TestTrianglesIncrMatchesCold mutates an undirected graph randomly and
// requires the wedge-counted delta to reproduce the exact cold count at
// every step — including batches that add whole triangles at once (all
// three edges changed, exercising the dedup rule) and self-loops.
func TestTrianglesIncrMatchesCold(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.NewUndirected()
	for i := 0; i < 60; i++ {
		g.AddEdge(rng.Int63n(25), rng.Int63n(25))
	}
	oldV := graph.BuildUView(g)
	count := TrianglesView(oldV)
	for round := 0; round < 25; round++ {
		var deltas []graph.Delta
		mutate := func(add bool, s, d int64) {
			if add {
				if g.AddEdge(s, d) {
					deltas = append(deltas, graph.Delta{Op: graph.DeltaAddEdge, Src: s, Dst: d})
				}
			} else if g.DelEdge(s, d) {
				deltas = append(deltas, graph.Delta{Op: graph.DeltaDelEdge, Src: s, Dst: d})
			}
		}
		if round%5 == 0 {
			// A full fresh triangle in one batch.
			base := 100 + int64(round)
			mutate(true, base, base+1)
			mutate(true, base+1, base+2)
			mutate(true, base+2, base)
		}
		for i := 0; i < 6; i++ {
			mutate(rng.Intn(3) != 0, rng.Int63n(30), rng.Int63n(30))
		}
		newV := graph.BuildUView(g)
		got := TrianglesIncr(oldV, newV, count, deltas)
		want := TrianglesView(newV)
		if got != want {
			t.Fatalf("round %d: incremental triangle count %d, cold says %d", round, got, want)
		}
		oldV, count = newV, got
	}
}

// BenchmarkPageRankIncr compares the update-then-query cost of the
// incremental PageRank against the cold tolerance-based run it replaces.
func BenchmarkPageRankIncr(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	g := randGraph(rng, 20000, 100000)
	prev := PageRankViewTol(graph.BuildView(g), DefaultDamping, DefaultPageRankTol)
	for i := 0; i < 16; i++ {
		g.AddEdge(rng.Int63n(20000), rng.Int63n(20000))
	}
	v := graph.BuildView(g)
	b.Run("incr", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PageRankIncr(v, prev, DefaultDamping, DefaultPageRankTol)
		}
	})
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PageRankViewTol(v, DefaultDamping, DefaultPageRankTol)
		}
	})
}
