package algo

import (
	"ringo/internal/graph"
)

// CoreNumbers computes the core number (coreness) of every node of an
// undirected graph with the linear-time peeling algorithm of Batagelj and
// Zaveršnik: nodes are bucketed by degree and repeatedly peeled from the
// lowest bucket, decrementing their neighbors. Self-loops are ignored for
// degree purposes.
func CoreNumbers(g *graph.Undirected) map[int64]int {
	d := denseOfUndir(g)
	n := len(d.ids)
	deg := make([]int32, n)
	maxDeg := int32(0)
	for u := 0; u < n; u++ {
		c := int32(0)
		for _, v := range d.adj[u] {
			if v != int32(u) {
				c++
			}
		}
		deg[u] = c
		if c > maxDeg {
			maxDeg = c
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int32, maxDeg+2)
	for _, dv := range deg {
		binStart[dv+1]++
	}
	for i := int32(1); i <= maxDeg+1; i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int32, n)  // node -> position in vert
	vert := make([]int32, n) // sorted by degree
	fill := make([]int32, maxDeg+1)
	copy(fill, binStart[:maxDeg+1])
	for u := 0; u < n; u++ {
		p := fill[deg[u]]
		fill[deg[u]]++
		pos[u] = p
		vert[p] = int32(u)
	}

	core := make([]int32, n)
	bin := make([]int32, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])
	for i := 0; i < n; i++ {
		u := vert[i]
		core[u] = deg[u]
		for _, v := range d.adj[u] {
			if v == u {
				continue
			}
			if deg[v] > deg[u] {
				// Move v to the front of its bucket, then shrink its degree.
				dv := deg[v]
				pv := pos[v]
				pw := bin[dv]
				w := vert[pw]
				if v != w {
					vert[pv], vert[pw] = w, v
					pos[v], pos[w] = pw, pv
				}
				bin[dv]++
				deg[v]--
			}
		}
	}
	out := make(map[int64]int, n)
	for u, id := range d.ids {
		out[id] = int(core[u])
	}
	return out
}

// KCore returns the k-core of g: the maximal subgraph in which every node
// has degree at least k. Table 6 benchmarks the 3-core. The result is a new
// graph; g is unmodified.
func KCore(g *graph.Undirected, k int) *graph.Undirected {
	cores := CoreNumbers(g)
	sub := graph.NewUndirected()
	keep := func(id int64) bool { return cores[id] >= k }
	g.ForNodes(func(id int64) {
		if keep(id) {
			sub.AddNode(id)
		}
	})
	g.ForEdges(func(src, dst int64) {
		if keep(src) && keep(dst) {
			sub.AddEdge(src, dst)
		}
	})
	return sub
}

// KCoreDirected is KCore on the undirected view of a directed graph,
// matching SNAP's KCore on graphs loaded as directed edge lists.
func KCoreDirected(g *graph.Directed, k int) *graph.Undirected {
	return KCore(graph.AsUndirected(g), k)
}
