package algo

import (
	"ringo/internal/graph"
)

// CoreNumbers computes the core number (coreness) of every node of an
// undirected graph with the linear-time peeling algorithm of Batagelj and
// Zaveršnik: nodes are bucketed by degree and repeatedly peeled from the
// lowest bucket, decrementing their neighbors. Self-loops are ignored for
// degree purposes.
func CoreNumbers(g *graph.Undirected) map[int64]int {
	return CoreNumbersView(graph.BuildUView(g))
}

// CoreNumbersView is CoreNumbers over a prebuilt CSR view.
func CoreNumbersView(v *graph.UView) map[int64]int {
	core := coreNumbersFlat(v)
	n := v.NumNodes()
	out := make(map[int64]int, n)
	for u, id := range v.IDs() {
		out[id] = int(core[u])
	}
	return out
}

// coreNumbersFlat runs the peeling over the view, returning core numbers
// indexed by dense index.
func coreNumbersFlat(v *graph.UView) []int32 {
	n := v.NumNodes()
	deg := make([]int32, n)
	maxDeg := int32(0)
	for u := 0; u < n; u++ {
		c := int32(0)
		for _, x := range v.Adj(int32(u)) {
			if x != int32(u) {
				c++
			}
		}
		deg[u] = c
		if c > maxDeg {
			maxDeg = c
		}
	}
	// Bucket sort nodes by degree.
	binStart := make([]int32, maxDeg+2)
	for _, dv := range deg {
		binStart[dv+1]++
	}
	for i := int32(1); i <= maxDeg+1; i++ {
		binStart[i] += binStart[i-1]
	}
	pos := make([]int32, n)  // node -> position in vert
	vert := make([]int32, n) // sorted by degree
	fill := make([]int32, maxDeg+1)
	copy(fill, binStart[:maxDeg+1])
	for u := 0; u < n; u++ {
		p := fill[deg[u]]
		fill[deg[u]]++
		pos[u] = p
		vert[p] = int32(u)
	}

	core := make([]int32, n)
	bin := make([]int32, maxDeg+1)
	copy(bin, binStart[:maxDeg+1])
	for i := 0; i < n; i++ {
		u := vert[i]
		core[u] = deg[u]
		for _, x := range v.Adj(u) {
			if x == u {
				continue
			}
			if deg[x] > deg[u] {
				// Move x to the front of its bucket, then shrink its degree.
				dx := deg[x]
				px := pos[x]
				pw := bin[dx]
				w := vert[pw]
				if x != w {
					vert[px], vert[pw] = w, x
					pos[x], pos[w] = pw, px
				}
				bin[dx]++
				deg[x]--
			}
		}
	}
	return core
}

// KCore returns the k-core of g: the maximal subgraph in which every node
// has degree at least k. Table 6 benchmarks the 3-core. The result is a new
// graph; g is unmodified.
func KCore(g *graph.Undirected, k int) *graph.Undirected {
	cores := CoreNumbers(g)
	sub := graph.NewUndirected()
	keep := func(id int64) bool { return cores[id] >= k }
	g.ForNodes(func(id int64) {
		if keep(id) {
			sub.AddNode(id)
		}
	})
	g.ForEdges(func(src, dst int64) {
		if keep(src) && keep(dst) {
			sub.AddEdge(src, dst)
		}
	})
	return sub
}

// KCoreStatsView reports the size of the k-core — node count and edge count
// of the maximal subgraph of minimum degree k — straight from a CSR view,
// without materializing the subgraph. It is what the repl's "algo 3core"
// verb prints, so a cached view answers it with no graph construction.
func KCoreStatsView(v *graph.UView, k int) (nodes int, edges int64) {
	defer report(timed("kcore"))
	core := coreNumbersFlat(v)
	for u := 0; u < v.NumNodes(); u++ {
		if int(core[u]) < k {
			continue
		}
		nodes++
		for _, x := range v.Adj(int32(u)) {
			if int(core[x]) < k {
				continue
			}
			if x == int32(u) {
				edges += 2 // self-loop stored once, counted as a full edge
			} else {
				edges++
			}
		}
	}
	return nodes, edges / 2
}

// KCoreDirected is KCore on the undirected view of a directed graph,
// matching SNAP's KCore on graphs loaded as directed edge lists.
func KCoreDirected(g *graph.Directed, k int) *graph.Undirected {
	return KCore(graph.AsUndirected(g), k)
}
