package algo

import (
	"testing"
	"testing/quick"

	"ringo/internal/graph"
)

func TestCoreNumbersKnown(t *testing.T) {
	// K4 plus a tail 3-4-5: clique nodes have core 3 (node 3 included),
	// tail nodes 4,5 have core 1.
	g := completeUndirected(4)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	cores := CoreNumbers(g)
	for _, id := range []int64{0, 1, 2, 3} {
		if cores[id] != 3 {
			t.Fatalf("core[%d] = %d, want 3", id, cores[id])
		}
	}
	if cores[4] != 1 || cores[5] != 1 {
		t.Fatalf("tail cores = %d,%d", cores[4], cores[5])
	}
}

func TestCoreNumbersStar(t *testing.T) {
	g := graph.NewUndirected()
	for i := int64(1); i <= 5; i++ {
		g.AddEdge(0, i)
	}
	cores := CoreNumbers(g)
	for id, c := range cores {
		if c != 1 {
			t.Fatalf("star core[%d] = %d, want 1", id, c)
		}
	}
}

func TestKCoreSubgraph(t *testing.T) {
	g := completeUndirected(4)
	g.AddEdge(3, 4)
	g.AddEdge(4, 5)
	core3 := KCore(g, 3)
	if core3.NumNodes() != 4 {
		t.Fatalf("3-core nodes = %d, want 4", core3.NumNodes())
	}
	if core3.NumEdges() != 6 {
		t.Fatalf("3-core edges = %d, want 6", core3.NumEdges())
	}
	if core3.HasNode(4) || core3.HasNode(5) {
		t.Fatal("tail nodes leaked into 3-core")
	}
	// Min-degree property: every node in the k-core has degree >= k there.
	core3.ForNodes(func(id int64) {
		if core3.Deg(id) < 3 {
			t.Fatalf("node %d has degree %d in 3-core", id, core3.Deg(id))
		}
	})
	// 5-core of K4 is empty.
	if KCore(g, 5).NumNodes() != 0 {
		t.Fatal("5-core of K4+tail should be empty")
	}
	// Original graph unmodified.
	if g.NumNodes() != 6 {
		t.Fatal("KCore mutated input")
	}
}

func TestKCoreDirected(t *testing.T) {
	d := graph.NewDirected()
	// Directed K4 (one direction per pair) has undirected 3-core = all.
	for i := int64(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			d.AddEdge(i, j)
		}
	}
	d.AddEdge(3, 9)
	core := KCoreDirected(d, 3)
	if core.NumNodes() != 4 || core.HasNode(9) {
		t.Fatalf("directed 3-core nodes = %d", core.NumNodes())
	}
}

// Property: the k-core is the maximal subgraph with min degree >= k; its
// nodes are exactly those with core number >= k.
func TestKCoreMatchesPeelingProperty(t *testing.T) {
	f := func(edges [][2]int8, kk uint8) bool {
		k := int(kk%4) + 1
		g := graph.NewUndirected()
		for _, e := range edges {
			a, b := int64(e[0]%20), int64(e[1]%20)
			if a != b {
				g.AddEdge(a, b)
			}
		}
		cores := CoreNumbers(g)
		sub := KCore(g, k)
		// Every kept node has core >= k and degree >= k in the subgraph.
		ok := true
		sub.ForNodes(func(id int64) {
			if cores[id] < k || sub.Deg(id) < k {
				ok = false
			}
		})
		if !ok {
			return false
		}
		// Every node with core >= k is kept.
		for id, c := range cores {
			if c >= k && !sub.HasNode(id) {
				return false
			}
		}
		// Reference peeling: repeatedly remove nodes with degree < k.
		ref := g.Clone()
		for {
			removed := false
			for _, id := range ref.Nodes() {
				if ref.Deg(id) < k {
					ref.DelNode(id)
					removed = true
				}
			}
			if !removed {
				break
			}
		}
		if ref.NumNodes() != sub.NumNodes() || ref.NumEdges() != sub.NumEdges() {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
