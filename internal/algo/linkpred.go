package algo

import (
	"math"
	"sort"

	"ringo/internal/graph"
)

// Neighborhood-similarity scores for pairs of nodes — the classic link
// prediction measures (Liben-Nowell & Kleinberg) that SNAP exposes for
// recommending edges. All operate on undirected graphs and ignore
// self-loops.

// CommonNeighbors returns |N(u) ∩ N(v)|.
func CommonNeighbors(g *graph.Undirected, u, v int64) int {
	return len(commonNeighbors(g, u, v))
}

// Jaccard returns |N(u) ∩ N(v)| / |N(u) ∪ N(v)|, 0 when both neighborhoods
// are empty.
func Jaccard(g *graph.Undirected, u, v int64) float64 {
	inter := len(commonNeighbors(g, u, v))
	du, dv := properDeg(g, u), properDeg(g, v)
	union := du + dv - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// AdamicAdar returns the Adamic-Adar index: sum over common neighbors w of
// 1/log(deg(w)). Common neighbors of degree 1 cannot occur (they are
// adjacent to both u and v).
func AdamicAdar(g *graph.Undirected, u, v int64) float64 {
	var s float64
	for _, w := range commonNeighbors(g, u, v) {
		d := properDeg(g, w)
		if d > 1 {
			s += 1 / math.Log(float64(d))
		}
	}
	return s
}

// PreferentialAttachment returns deg(u) × deg(v).
func PreferentialAttachment(g *graph.Undirected, u, v int64) int {
	return properDeg(g, u) * properDeg(g, v)
}

// properDeg is the degree excluding self-loops.
func properDeg(g *graph.Undirected, u int64) int {
	d := g.Deg(u)
	if g.HasEdge(u, u) {
		d--
	}
	return d
}

// commonNeighbors merges the two sorted adjacency vectors, excluding the
// endpoints themselves.
func commonNeighbors(g *graph.Undirected, u, v int64) []int64 {
	a, b := g.Neighbors(u), g.Neighbors(v)
	var out []int64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] != u && a[i] != v {
				out = append(out, a[i])
			}
			i++
			j++
		}
	}
	return out
}

// PredictedLink is a scored candidate edge.
type PredictedLink struct {
	U, V  int64
	Score float64
}

// PredictLinks scores all non-adjacent pairs at distance 2 with the
// Adamic-Adar index and returns the top k candidates, ties broken by
// (U, V) for determinism. Distance-2 pairs are the only ones any
// common-neighbor measure can score above zero, which keeps the candidate
// set near-linear in practice.
func PredictLinks(g *graph.Undirected, k int) []PredictedLink {
	seen := map[[2]int64]bool{}
	var cands []PredictedLink
	g.ForNodes(func(u int64) {
		for _, w := range g.Neighbors(u) {
			if w == u {
				continue
			}
			for _, v := range g.Neighbors(w) {
				if v <= u || v == w || g.HasEdge(u, v) {
					continue
				}
				key := [2]int64{u, v}
				if seen[key] {
					continue
				}
				seen[key] = true
				cands = append(cands, PredictedLink{u, v, AdamicAdar(g, u, v)})
			}
		}
	})
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].Score != cands[j].Score {
			return cands[i].Score > cands[j].Score
		}
		if cands[i].U != cands[j].U {
			return cands[i].U < cands[j].U
		}
		return cands[i].V < cands[j].V
	})
	if k < len(cands) {
		cands = cands[:k]
	}
	return cands
}
