package algo

import (
	"math"
	"testing"

	"ringo/internal/graph"
)

// lollipop builds the test graph: square 1-2-3-4 plus a diagonal hub 5
// adjacent to 1, 2, 3.
func lollipop() *graph.Undirected {
	g := graph.NewUndirected()
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {4, 1}, {5, 1}, {5, 2}, {5, 3}} {
		g.AddEdge(e[0], e[1])
	}
	return g
}

func TestCommonNeighbors(t *testing.T) {
	g := lollipop()
	// N(1)={2,4,5}, N(3)={2,4,5} -> 3 common.
	if got := CommonNeighbors(g, 1, 3); got != 3 {
		t.Fatalf("CommonNeighbors(1,3) = %d", got)
	}
	if got := CommonNeighbors(g, 4, 5); got != 2 { // {1,3}
		t.Fatalf("CommonNeighbors(4,5) = %d", got)
	}
	// Endpoints themselves are excluded.
	if got := CommonNeighbors(g, 1, 2); got != 1 { // only 5 ({2,4,5}∩{1,3,5} minus endpoints)
		t.Fatalf("CommonNeighbors(1,2) = %d", got)
	}
}

func TestJaccard(t *testing.T) {
	g := lollipop()
	// N(1)={2,4,5}, N(3)={2,4,5}: intersection 3, union 3.
	if got := Jaccard(g, 1, 3); !approxEq(got, 1, 1e-12) {
		t.Fatalf("Jaccard(1,3) = %v", got)
	}
	iso := graph.NewUndirected()
	iso.AddNode(1)
	iso.AddNode(2)
	if got := Jaccard(iso, 1, 2); got != 0 {
		t.Fatalf("isolated Jaccard = %v", got)
	}
}

func TestAdamicAdar(t *testing.T) {
	g := lollipop()
	// Common neighbors of 1 and 3: 2 (deg 3), 4 (deg 2), 5 (deg 3).
	want := 1/math.Log(3) + 1/math.Log(2) + 1/math.Log(3)
	if got := AdamicAdar(g, 1, 3); !approxEq(got, want, 1e-12) {
		t.Fatalf("AdamicAdar(1,3) = %v, want %v", got, want)
	}
}

func TestPreferentialAttachment(t *testing.T) {
	g := lollipop()
	if got := PreferentialAttachment(g, 1, 3); got != 9 {
		t.Fatalf("PA(1,3) = %d", got)
	}
	// Self-loop excluded from degree.
	g.AddEdge(1, 1)
	if got := PreferentialAttachment(g, 1, 3); got != 9 {
		t.Fatalf("PA with self-loop = %d", got)
	}
}

func TestPredictLinks(t *testing.T) {
	g := lollipop()
	preds := PredictLinks(g, 10)
	if len(preds) == 0 {
		t.Fatal("no predictions")
	}
	// The strongest candidate is the non-edge (1,3) — three common
	// neighbors.
	if preds[0].U != 1 || preds[0].V != 3 {
		t.Fatalf("top prediction = %+v", preds[0])
	}
	// No predicted pair is an existing edge, and scores are descending.
	for i, p := range preds {
		if g.HasEdge(p.U, p.V) {
			t.Fatalf("predicted an existing edge %+v", p)
		}
		if p.U >= p.V {
			t.Fatalf("pair not normalized: %+v", p)
		}
		if i > 0 && preds[i-1].Score < p.Score {
			t.Fatal("scores not descending")
		}
	}
	if got := PredictLinks(g, 1); len(got) != 1 {
		t.Fatalf("k=1 returned %d", len(got))
	}
}

func TestReciprocity(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(2, 3)
	if got := Reciprocity(g); !approxEq(got, 2.0/3.0, 1e-12) {
		t.Fatalf("reciprocity = %v", got)
	}
	if Reciprocity(graph.NewDirected()) != 0 {
		t.Fatal("empty reciprocity nonzero")
	}
	full := graph.NewDirected()
	full.AddEdge(1, 2)
	full.AddEdge(2, 1)
	if Reciprocity(full) != 1 {
		t.Fatal("fully reciprocal graph != 1")
	}
}

func TestDegreeAssortativity(t *testing.T) {
	// A star is maximally disassortative: r = -1.
	star := graph.NewUndirected()
	for i := int64(1); i <= 6; i++ {
		star.AddEdge(0, i)
	}
	if got := DegreeAssortativity(star); !approxEq(got, -1, 1e-9) {
		t.Fatalf("star assortativity = %v", got)
	}
	// A regular graph has zero degree variance: r defined as 0.
	cyc := graph.NewUndirected()
	for i := int64(0); i < 6; i++ {
		cyc.AddEdge(i, (i+1)%6)
	}
	if got := DegreeAssortativity(cyc); got != 0 {
		t.Fatalf("cycle assortativity = %v", got)
	}
	if DegreeAssortativity(graph.NewUndirected()) != 0 {
		t.Fatal("empty assortativity nonzero")
	}
}

func TestEffectiveDiameterPath(t *testing.T) {
	g := pathGraph(11) // distances 1..10 from the ends
	eff := EffectiveDiameter(g, 11, 1)
	diam := float64(ApproxDiameter(g, 11, 1))
	if eff <= 0 || eff > diam {
		t.Fatalf("effective diameter %v outside (0, %v]", eff, diam)
	}
	// 90th percentile must exceed the median distance.
	if eff < 5 {
		t.Fatalf("effective diameter %v implausibly small", eff)
	}
	if EffectiveDiameter(graph.NewDirected(), 3, 1) != 0 {
		t.Fatal("empty effective diameter nonzero")
	}
}

func TestPowerLawExponent(t *testing.T) {
	// A BA graph has a power-law tail with alpha near 3.
	g := barabasiForTest(2000, 3)
	alpha, ok := PowerLawExponent(g, 3)
	if !ok {
		t.Fatal("fit failed")
	}
	if alpha < 2 || alpha > 4.5 {
		t.Fatalf("BA alpha = %v, want near 3", alpha)
	}
	// Too few qualifying nodes.
	small := graph.NewUndirected()
	small.AddEdge(1, 2)
	if _, ok := PowerLawExponent(small, 1); ok {
		t.Fatal("fit on 2 nodes accepted")
	}
}

// barabasiForTest is a local preferential-attachment generator (gen imports
// algo-free packages only, so tests build their own to avoid a cycle).
func barabasiForTest(n, m int) *graph.Undirected {
	g := graph.NewUndirected()
	endpoints := []int64{}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(int64(i), int64(j))
			endpoints = append(endpoints, int64(i), int64(j))
		}
	}
	state := uint64(12345)
	next := func(bound int) int {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return int(state % uint64(bound))
	}
	for v := m + 1; v < n; v++ {
		chosen := map[int64]bool{}
		for len(chosen) < m {
			t := endpoints[next(len(endpoints))]
			if t != int64(v) {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.AddEdge(int64(v), t)
			endpoints = append(endpoints, int64(v), t)
		}
	}
	return g
}

func TestDegreePercentiles(t *testing.T) {
	g := starGraph(9) // out-degrees: nine 1s and one 0
	pcts := DegreePercentiles(g, []float64{0, 50, 100})
	if pcts[0] != 0 || pcts[2] != 1 {
		t.Fatalf("percentiles = %v", pcts)
	}
	if got := DegreePercentiles(graph.NewDirected(), []float64{50}); got[0] != 0 {
		t.Fatal("empty percentile nonzero")
	}
}
