package algo

import (
	"ringo/internal/graph"
)

// Louvain detects communities by modularity maximization (Blondel et al.):
// repeated passes of greedy local moves followed by graph aggregation,
// until modularity stops improving. Node visiting order is fixed (dense
// order), so results are deterministic. Returns the community label per
// node (dense from 0) and the modularity of the returned partition.
// Self-loops are ignored.
func Louvain(g *graph.Undirected, maxPasses int) (map[int64]int, float64) {
	return LouvainView(graph.BuildUView(g), maxPasses)
}

// LouvainView is Louvain over a prebuilt CSR view.
func LouvainView(d *graph.UView, maxPasses int) (map[int64]int, float64) {
	defer report(timed("louvain"))
	n := d.NumNodes()
	if n == 0 {
		return map[int64]int{}, 0
	}

	// Working graph: adjacency with weights, plus per-node self weight
	// (intra-community weight accumulated by aggregation).
	type wedge struct {
		to int32
		w  float64
	}
	adj := make([][]wedge, n)
	var m2 float64 // 2m: total degree mass
	for u := 0; u < n; u++ {
		for _, v := range d.Adj(int32(u)) {
			if v == int32(u) {
				continue
			}
			adj[u] = append(adj[u], wedge{v, 1})
			m2++
		}
	}
	if m2 == 0 {
		out := make(map[int64]int, n)
		for i, id := range d.IDs() {
			out[id] = i
		}
		return out, 0
	}
	selfW := make([]float64, n)
	// membership[level] maps the previous level's supernodes to communities.
	membership := [][]int32{}
	cur := n

	for pass := 0; pass < maxPasses; pass++ {
		// Local move phase on the current aggregated graph of size cur.
		comm := make([]int32, cur)
		commTot := make([]float64, cur) // sum of degrees per community
		deg := make([]float64, cur)
		for u := 0; u < cur; u++ {
			comm[u] = int32(u)
			for _, e := range adj[u] {
				deg[u] += e.w
			}
			deg[u] += selfW[u]
			commTot[u] = deg[u]
		}
		improvedPass := false
		for {
			moved := false
			for u := 0; u < cur; u++ {
				// Weights from u to each neighboring community.
				neighW := map[int32]float64{}
				for _, e := range adj[u] {
					neighW[comm[e.to]] += e.w
				}
				old := comm[u]
				commTot[old] -= deg[u]
				best := old
				bestGain := neighW[old] - commTot[old]*deg[u]/m2
				for c, w := range neighW {
					gain := w - commTot[c]*deg[u]/m2
					if gain > bestGain+1e-12 || (gain > bestGain-1e-12 && c < best) {
						if gain > bestGain+1e-12 {
							best, bestGain = c, gain
						} else if c < best && gain >= bestGain-1e-12 {
							best = c
						}
					}
				}
				commTot[best] += deg[u]
				if best != old {
					comm[u] = best
					moved = true
					improvedPass = true
				}
			}
			if !moved {
				break
			}
		}
		// Densify community ids.
		remap := map[int32]int32{}
		for u := 0; u < cur; u++ {
			if _, ok := remap[comm[u]]; !ok {
				remap[comm[u]] = int32(len(remap))
			}
			comm[u] = remap[comm[u]]
		}
		membership = append(membership, comm)
		next := len(remap)
		if !improvedPass || next == cur {
			break
		}
		// Aggregation phase: build the community graph.
		newAdj := make([][]wedge, next)
		newSelf := make([]float64, next)
		acc := make([]map[int32]float64, next)
		for u := 0; u < cur; u++ {
			cu := comm[u]
			newSelf[cu] += selfW[u]
			for _, e := range adj[u] {
				cv := comm[e.to]
				if cu == cv {
					newSelf[cu] += e.w // both orientations accumulate; intra mass
					continue
				}
				if acc[cu] == nil {
					acc[cu] = map[int32]float64{}
				}
				acc[cu][cv] += e.w
			}
		}
		for c := 0; c < next; c++ {
			for to, w := range acc[c] {
				newAdj[c] = append(newAdj[c], wedge{to, w})
			}
		}
		adj = newAdj
		selfW = newSelf
		cur = next
	}

	// Flatten membership levels to original nodes.
	final := make([]int32, n)
	for i := range final {
		final[i] = int32(i)
	}
	for _, level := range membership {
		for i := range final {
			final[i] = level[final[i]]
		}
	}
	out := make(map[int64]int, n)
	remap := map[int32]int{}
	for i, id := range d.IDs() {
		c, ok := remap[final[i]]
		if !ok {
			c = len(remap)
			remap[final[i]] = c
		}
		out[id] = c
	}
	return out, ModularityView(d, out)
}

// ModularityView is Modularity computed over a CSR view instead of the
// dynamic graph (identical definition and result).
func ModularityView(v *graph.UView, comm map[int64]int) float64 {
	m := float64(v.NumEdges())
	if m == 0 {
		return 0
	}
	next := len(comm)
	lookup := func(id int64) int {
		if c, ok := comm[id]; ok {
			return c
		}
		next++
		return next
	}
	var inside float64
	degSum := map[int]float64{}
	for u, id := range v.IDs() {
		degSum[lookup(id)] += float64(v.Deg(int32(u)))
		for _, x := range v.Adj(int32(u)) {
			if int32(u) <= x && lookup(id) == lookup(v.ID(x)) {
				inside++
			}
		}
	}
	q := inside / m
	for _, s := range degSum {
		frac := s / (2 * m)
		q -= frac * frac
	}
	return q
}
