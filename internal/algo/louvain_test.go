package algo

import (
	"testing"

	"ringo/internal/graph"
)

func TestLouvainSeparatesCliques(t *testing.T) {
	g := twoCliques(6)
	comm, q := Louvain(g, 10)
	for i := int64(1); i < 6; i++ {
		if comm[i] != comm[0] {
			t.Fatalf("clique A split: %v", comm)
		}
		if comm[100+i] != comm[100] {
			t.Fatalf("clique B split: %v", comm)
		}
	}
	if comm[0] == comm[100] {
		t.Fatal("cliques merged")
	}
	if q < 0.3 {
		t.Fatalf("modularity = %v, want > 0.3", q)
	}
}

func TestLouvainRingOfCliques(t *testing.T) {
	// Four 5-cliques in a ring, bridged by single edges: the canonical
	// Louvain test — each clique is one community.
	g := graph.NewUndirected()
	const k = 5
	base := func(c int) int64 { return int64(100 * c) }
	for c := 0; c < 4; c++ {
		for i := int64(0); i < k; i++ {
			for j := i + 1; j < k; j++ {
				g.AddEdge(base(c)+i, base(c)+j)
			}
		}
	}
	for c := 0; c < 4; c++ {
		g.AddEdge(base(c), base((c+1)%4)+1)
	}
	comm, q := Louvain(g, 10)
	labels := map[int]bool{}
	for c := 0; c < 4; c++ {
		l := comm[base(c)]
		labels[l] = true
		for i := int64(1); i < k; i++ {
			if comm[base(c)+i] != l {
				t.Fatalf("clique %d split", c)
			}
		}
	}
	if len(labels) != 4 {
		t.Fatalf("found %d communities, want 4", len(labels))
	}
	if q < 0.5 {
		t.Fatalf("modularity = %v", q)
	}
}

func TestLouvainBeatsOrMatchesLabelPropagation(t *testing.T) {
	g := barabasiForTest(400, 3)
	_, ql := Louvain(g, 10)
	lp := LabelPropagation(g, 20, 1)
	qlp := Modularity(g, lp)
	if ql+1e-9 < qlp {
		t.Fatalf("Louvain modularity %v below label propagation %v", ql, qlp)
	}
}

func TestLouvainDegenerateInputs(t *testing.T) {
	comm, q := Louvain(graph.NewUndirected(), 5)
	if len(comm) != 0 || q != 0 {
		t.Fatal("empty graph")
	}
	// Edgeless graph: every node its own community.
	iso := graph.NewUndirected()
	iso.AddNode(1)
	iso.AddNode(2)
	comm, _ = Louvain(iso, 5)
	if comm[1] == comm[2] {
		t.Fatal("isolated nodes merged")
	}
}

func TestLouvainDeterministic(t *testing.T) {
	g := twoCliques(5)
	a, qa := Louvain(g, 10)
	b, qb := Louvain(g, 10)
	if qa != qb {
		t.Fatal("modularity differs across runs")
	}
	for id, c := range a {
		if b[id] != c {
			t.Fatal("labels differ across runs")
		}
	}
}

func TestGreedyColoringProper(t *testing.T) {
	g := completeUndirected(5)
	color, k := GreedyColoring(g)
	if k != 5 {
		t.Fatalf("K5 colors = %d", k)
	}
	g.ForEdges(func(u, v int64) {
		if u != v && color[u] == color[v] {
			t.Fatalf("edge %d-%d monochromatic", u, v)
		}
	})
	// A path is 2-colorable and Welsh-Powell achieves it.
	p := graph.NewUndirected()
	for i := int64(0); i < 10; i++ {
		p.AddEdge(i, i+1)
	}
	_, k = GreedyColoring(p)
	if k != 2 {
		t.Fatalf("path colors = %d", k)
	}
	if _, k := GreedyColoring(graph.NewUndirected()); k != 0 {
		t.Fatal("empty graph colors != 0")
	}
}

func TestMaximalMatching(t *testing.T) {
	p := graph.NewUndirected()
	p.AddEdge(1, 2)
	p.AddEdge(2, 3)
	p.AddEdge(3, 4)
	m := MaximalMatching(p)
	// Validity: no shared endpoints.
	used := map[int64]bool{}
	for _, e := range m {
		if used[e[0]] || used[e[1]] {
			t.Fatalf("matching shares endpoint: %v", m)
		}
		used[e[0]], used[e[1]] = true, true
		if !p.HasEdge(e[0], e[1]) {
			t.Fatalf("matched non-edge %v", e)
		}
	}
	// Maximality: every edge touches a matched node.
	p.ForEdges(func(u, v int64) {
		if !used[u] && !used[v] {
			t.Fatalf("matching not maximal: edge %d-%d free", u, v)
		}
	})
}

func TestIndependentSetGreedy(t *testing.T) {
	g := completeUndirected(4)
	g.AddEdge(9, 9) // self-loop node can never join
	is := IndependentSetGreedy(g)
	if len(is) != 1 {
		t.Fatalf("K4 independent set = %v", is)
	}
	// Independence.
	for i := 0; i < len(is); i++ {
		for j := i + 1; j < len(is); j++ {
			if g.HasEdge(is[i], is[j]) {
				t.Fatal("set not independent")
			}
		}
	}
	// Star: all leaves are independent.
	star := graph.NewUndirected()
	for i := int64(1); i <= 5; i++ {
		star.AddEdge(0, i)
	}
	if is := IndependentSetGreedy(star); len(is) != 5 {
		t.Fatalf("star independent set = %v", is)
	}
}
