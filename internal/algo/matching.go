package algo

import (
	"sort"

	"ringo/internal/graph"
)

// GreedyColoring colors the nodes of an undirected graph so no edge is
// monochromatic, using the Welsh-Powell heuristic: visit nodes in
// descending degree order (ties by id) and give each the smallest color
// unused by its neighbors. Returns the coloring and the number of colors.
// Self-loops are ignored.
func GreedyColoring(g *graph.Undirected) (map[int64]int, int) {
	nodes := g.Nodes()
	sort.SliceStable(nodes, func(i, j int) bool {
		di, dj := g.Deg(nodes[i]), g.Deg(nodes[j])
		if di != dj {
			return di > dj
		}
		return nodes[i] < nodes[j]
	})
	color := make(map[int64]int, len(nodes))
	for _, id := range nodes {
		color[id] = -1
	}
	maxColor := 0
	used := []bool{}
	for _, u := range nodes {
		for i := range used {
			used[i] = false
		}
		for _, v := range g.Neighbors(u) {
			if v == u {
				continue
			}
			if c := color[v]; c >= 0 {
				for c >= len(used) {
					used = append(used, false)
				}
				used[c] = true
			}
		}
		c := 0
		for c < len(used) && used[c] {
			c++
		}
		color[u] = c
		if c+1 > maxColor {
			maxColor = c + 1
		}
	}
	if len(nodes) == 0 {
		return color, 0
	}
	return color, maxColor
}

// MaximalMatching returns a maximal matching of the undirected graph:
// greedy over edges in (src, dst) order, so the result is deterministic.
// The matching is maximal (no edge can be added), not necessarily maximum.
// Self-loops are skipped.
func MaximalMatching(g *graph.Undirected) [][2]int64 {
	matched := map[int64]bool{}
	var out [][2]int64
	for _, u := range g.Nodes() {
		if matched[u] {
			continue
		}
		for _, v := range g.Neighbors(u) {
			if v == u || matched[v] {
				continue
			}
			matched[u], matched[v] = true, true
			a, b := u, v
			if a > b {
				a, b = b, a
			}
			out = append(out, [2]int64{a, b})
			break
		}
	}
	return out
}

// IndependentSetGreedy returns a maximal independent set: visit nodes in
// ascending degree order and take every node none of whose neighbors is
// already taken.
func IndependentSetGreedy(g *graph.Undirected) []int64 {
	nodes := g.Nodes()
	sort.SliceStable(nodes, func(i, j int) bool {
		di, dj := g.Deg(nodes[i]), g.Deg(nodes[j])
		if di != dj {
			return di < dj
		}
		return nodes[i] < nodes[j]
	})
	taken := map[int64]bool{}
	blocked := map[int64]bool{}
	var out []int64
	for _, u := range nodes {
		if blocked[u] || g.HasEdge(u, u) {
			continue
		}
		taken[u] = true
		out = append(out, u)
		for _, v := range g.Neighbors(u) {
			blocked[v] = true
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
