package algo

import (
	"math"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// MotifCounts are the counts of connected directed 3-node motifs involving
// a closed triangle, plus wedge (open triple) counts — the small-subgraph
// statistics SNAP exposes for network comparison.
type MotifCounts struct {
	// CyclicTriangles is the number of directed 3-cycles a->b->c->a.
	CyclicTriangles int64
	// TransTriangles is the number of transitive triangles
	// (a->b, b->c, a->c), counting each unordered triple once per
	// transitive orientation set.
	TransTriangles int64
	// Wedges is the number of undirected open triples (paths of length 2
	// whose endpoints are not adjacent).
	Wedges int64
}

// CountMotifs counts directed triangle motifs and undirected wedges.
func CountMotifs(g *graph.Directed) MotifCounts {
	return CountMotifsView(graph.BuildView(g))
}

// CountMotifsView is CountMotifs over a prebuilt CSR view.
func CountMotifsView(v *graph.View) MotifCounts {
	defer report(timed("motifs"))
	n := v.NumNodes()

	// Undirected adjacency for triangle/wedge enumeration, self-loops
	// dropped (they carry no motif information).
	adj := undirectedAdj(v, true)

	hasArc := func(a, b int32) bool {
		_, found := searchInt32(v.Out(a), b)
		return found
	}

	var mc MotifCounts
	// Triangles: enumerate undirected triangles u<x<w, classify arcs.
	for u := 0; u < n; u++ {
		adjU := adj[u]
		i := upperBound(adjU, int32(u))
		for ; i < len(adjU); i++ {
			x := adjU[i]
			forEachCommonAbove(adjU, adj[x], x, func(w int32) {
				uu := int32(u)
				// Count arcs among the 6 possible.
				arcs := 0
				cw := 0 // u->x->w->u cycle arcs
				ccw := 0
				if hasArc(uu, x) {
					arcs++
					cw++
				}
				if hasArc(x, uu) {
					arcs++
					ccw++
				}
				if hasArc(x, w) {
					arcs++
					cw++
				}
				if hasArc(w, x) {
					arcs++
					ccw++
				}
				if hasArc(w, uu) {
					arcs++
					cw++
				}
				if hasArc(uu, w) {
					arcs++
					ccw++
				}
				cycles := 0
				if cw == 3 {
					cycles++
				}
				if ccw == 3 {
					cycles++
				}
				mc.CyclicTriangles += int64(cycles)
				// Every set of 3 arcs covering all three undirected edges
				// that is not a cycle is transitive; with `arcs` arcs there
				// are combinations, but the standard census counts each
				// triple once if it has a transitive orientation: arcs >= 3
				// and not purely cyclic.
				if arcs >= 3 && cycles == 0 {
					mc.TransTriangles++
				}
			})
		}
	}

	// Wedges: paths of length 2 minus closed ones. Total triples centered
	// at each node: deg*(deg-1)/2; closed triples = 3*triangles.
	var closed int64
	var triples int64
	for u := 0; u < n; u++ {
		deg := int64(len(adj[u]))
		triples += deg * (deg - 1) / 2
		i := upperBound(adj[u], int32(u))
		for ; i < len(adj[u]); i++ {
			x := adj[u][i]
			closed += countCommonAbove(adj[u], adj[x], x)
		}
	}
	mc.Wedges = triples - 3*closed
	return mc
}

func searchInt32(a []int32, v int32) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == v
}

// PageRankConverged runs PageRank until the L1 change between iterations
// drops below tol or maxIters is reached, returning the scores and the
// number of iterations executed — the tolerance-based variant SNAP's
// GetPageRank exposes alongside the fixed-iteration one.
func PageRankConverged(g *graph.Directed, damping, tol float64, maxIters int) (map[int64]float64, int) {
	return PageRankConvergedView(graph.BuildView(g), damping, tol, maxIters)
}

// PageRankConvergedView is PageRankConverged over a prebuilt CSR view.
func PageRankConvergedView(v *graph.View, damping, tol float64, maxIters int) (map[int64]float64, int) {
	n := v.NumNodes()
	if n == 0 {
		return nil, 0
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	outDeg := make([]int32, n)
	for i := 0; i < n; i++ {
		outDeg[i] = int32(v.OutDeg(int32(i)))
	}
	parFill(pr, 1.0/float64(n))
	iters := 0
	for ; iters < maxIters; iters++ {
		var dangling float64
		for i := 0; i < n; i++ {
			if outDeg[i] == 0 {
				dangling += pr[i]
			}
		}
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		diff := par.Reduce(n, 0.0, func(lo, hi int) float64 {
			var dsum float64
			for i := lo; i < hi; i++ {
				var sum float64
				for _, src := range v.In(int32(i)) {
					sum += pr[src] / float64(outDeg[src])
				}
				next[i] = base + damping*sum
				dsum += math.Abs(next[i] - pr[i])
			}
			return dsum
		}, func(a, b float64) float64 { return a + b })
		pr, next = next, pr
		if diff < tol {
			iters++
			break
		}
	}
	return scoresToMap(v.IDs(), pr), iters
}
