package algo

import (
	"sync/atomic"
	"time"
)

// timer is the process-global per-algorithm timing hook. The algo package
// stays a leaf — it knows nothing about registries or exposition — and a
// host that wants kernel timings (the HTTP server publishes them as
// ringo_algo_duration_seconds on /metrics) installs a recording function.
// Nil (the default) costs one atomic load per instrumented call.
var timer atomic.Pointer[func(name string, elapsed time.Duration)]

// SetTimer installs fn as the per-algorithm timing hook: every
// instrumented View entry point reports its wall time under a stable
// algorithm name. Pass nil to disable. Safe to call concurrently with
// running algorithms; fn must be safe for concurrent use.
func SetTimer(fn func(name string, elapsed time.Duration)) {
	if fn == nil {
		timer.Store(nil)
		return
	}
	timer.Store(&fn)
}

// timed starts timing one named kernel invocation; the returned func
// reports to the hook (use with defer). With no hook installed the cost
// is one atomic pointer load and a nil func return.
func timed(name string) func() {
	p := timer.Load()
	if p == nil {
		return nil
	}
	start := time.Now()
	return func() { (*p)(name, time.Since(start)) }
}

// report invokes a timed() closure, tolerating the nil fast path — so
// call sites stay a two-liner:
//
//	defer report(timed("pagerank"))
func report(done func()) {
	if done != nil {
		done()
	}
}
