package algo

import (
	"math"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// DefaultDamping is the standard PageRank damping factor.
const DefaultDamping = 0.85

// PageRank computes PageRank scores with the given damping factor and a
// fixed number of power iterations (the paper times 10 iterations), using
// all cores: each iteration splits the node range across workers, and each
// worker pulls rank from its nodes' in-neighbors — a contention-free "pull"
// formulation. Dangling-node mass is redistributed uniformly so scores sum
// to 1. Scores are returned keyed by node id.
func PageRank(g *graph.Directed, damping float64, iters int) map[int64]float64 {
	return PageRankView(graph.BuildView(g), damping, iters)
}

// PageRankView is PageRank over a prebuilt CSR view.
func PageRankView(v *graph.View, damping float64, iters int) map[int64]float64 {
	defer report(timed("pagerank"))
	return scoresToMap(v.IDs(), pageRankFlat(v, damping, iters, true))
}

// PageRankSeq is the single-threaded PageRank used for the sequential
// baselines and the parallel-vs-sequential ablation.
func PageRankSeq(g *graph.Directed, damping float64, iters int) map[int64]float64 {
	v := graph.BuildView(g)
	return scoresToMap(v.IDs(), pageRankFlat(v, damping, iters, false))
}

func pageRankFlat(v *graph.View, damping float64, iters int, parallel bool) []float64 {
	n := v.NumNodes()
	if n == 0 {
		return nil
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	outDeg := make([]int32, n)
	for i := 0; i < n; i++ {
		outDeg[i] = int32(v.OutDeg(int32(i)))
	}
	init := 1.0 / float64(n)
	parFill(pr, init)

	runRange := func(fn func(lo, hi int)) {
		if parallel {
			par.For(n, fn)
		} else {
			fn(0, n)
		}
	}
	sumRange := func(fn func(lo, hi int) float64) float64 {
		if parallel {
			return par.Reduce(n, 0.0, fn, func(a, b float64) float64 { return a + b })
		}
		return fn(0, n)
	}

	for it := 0; it < iters; it++ {
		// Mass parked on dangling nodes teleports uniformly.
		dangling := sumRange(func(lo, hi int) float64 {
			var s float64
			for i := lo; i < hi; i++ {
				if outDeg[i] == 0 {
					s += pr[i]
				}
			}
			return s
		})
		base := (1-damping)/float64(n) + damping*dangling/float64(n)
		runRange(func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var sum float64
				for _, src := range v.In(int32(i)) {
					sum += pr[src] / float64(outDeg[src])
				}
				next[i] = base + damping*sum
			}
		})
		pr, next = next, pr
	}
	return pr
}

// PersonalizedPageRank computes PageRank with teleportation restricted to
// the given seed nodes (uniformly across them), the standard
// random-walk-with-restart relevance measure. Unknown seeds are ignored; it
// returns nil if no seed is a node of g.
func PersonalizedPageRank(g *graph.Directed, seeds []int64, damping float64, iters int) map[int64]float64 {
	return PersonalizedPageRankView(graph.BuildView(g), seeds, damping, iters)
}

// PersonalizedPageRankView is PersonalizedPageRank over a prebuilt CSR view.
func PersonalizedPageRankView(v *graph.View, seeds []int64, damping float64, iters int) map[int64]float64 {
	n := v.NumNodes()
	if n == 0 {
		return nil
	}
	seedIdx := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if i, ok := v.Index(s); ok {
			seedIdx = append(seedIdx, i)
		}
	}
	if len(seedIdx) == 0 {
		return nil
	}
	teleport := make([]float64, n)
	for _, i := range seedIdx {
		teleport[i] += 1.0 / float64(len(seedIdx))
	}
	outDeg := make([]int32, n)
	for i := 0; i < n; i++ {
		outDeg[i] = int32(v.OutDeg(int32(i)))
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	copy(pr, teleport)
	for it := 0; it < iters; it++ {
		var dangling float64
		for i := 0; i < n; i++ {
			if outDeg[i] == 0 {
				dangling += pr[i]
			}
		}
		par.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var sum float64
				for _, src := range v.In(int32(i)) {
					sum += pr[src] / float64(outDeg[src])
				}
				next[i] = (1-damping)*teleport[i] + damping*(sum+dangling*teleport[i])
			}
		})
		pr, next = next, pr
	}
	return scoresToMap(v.IDs(), pr)
}

// HITSScores holds hub and authority scores keyed by node id.
type HITSScores struct {
	Hub       map[int64]float64
	Authority map[int64]float64
}

// HITS computes Kleinberg's hubs-and-authorities scores by power iteration
// with L2 normalization each round.
func HITS(g *graph.Directed, iters int) HITSScores {
	return HITSView(graph.BuildView(g), iters)
}

// HITSView is HITS over a prebuilt CSR view.
func HITSView(v *graph.View, iters int) HITSScores {
	n := v.NumNodes()
	hub := make([]float64, n)
	auth := make([]float64, n)
	parFill(hub, 1)
	parFill(auth, 1)
	for it := 0; it < iters; it++ {
		// Authority: sum of hub scores of in-neighbors.
		par.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var s float64
				for _, src := range v.In(int32(i)) {
					s += hub[src]
				}
				auth[i] = s
			}
		})
		normalize(auth)
		// Hub: sum of authority scores of out-neighbors.
		par.For(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				var s float64
				for _, dst := range v.Out(int32(i)) {
					s += auth[dst]
				}
				hub[i] = s
			}
		})
		normalize(hub)
	}
	return HITSScores{
		Hub:       scoresToMap(v.IDs(), hub),
		Authority: scoresToMap(v.IDs(), auth),
	}
}

func normalize(a []float64) {
	var sq float64
	for _, v := range a {
		sq += v * v
	}
	if sq == 0 {
		return
	}
	inv := 1 / math.Sqrt(sq)
	for i := range a {
		a[i] *= inv
	}
}
