package algo

import (
	"math"
	"testing"

	"ringo/internal/graph"
)

func cycleGraph(n int) *graph.Directed {
	g := graph.NewDirected()
	for i := 0; i < n; i++ {
		g.AddEdge(int64(i), int64((i+1)%n))
	}
	return g
}

func starGraph(leaves int) *graph.Directed {
	// Edges point from leaves to the hub (node 0).
	g := graph.NewDirected()
	for i := 1; i <= leaves; i++ {
		g.AddEdge(int64(i), 0)
	}
	return g
}

func approxEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestPageRankUniformOnCycle(t *testing.T) {
	g := cycleGraph(10)
	pr := PageRank(g, DefaultDamping, 50)
	for id, v := range pr {
		if !approxEq(v, 0.1, 1e-9) {
			t.Fatalf("node %d rank %v, want 0.1", id, v)
		}
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := starGraph(5) // hub is dangling
	pr := PageRank(g, DefaultDamping, 30)
	if s := SumScores(pr); !approxEq(s, 1, 1e-9) {
		t.Fatalf("PageRank sum = %v, want 1 (dangling mass lost?)", s)
	}
}

func TestPageRankHubHighest(t *testing.T) {
	g := starGraph(8)
	pr := PageRank(g, DefaultDamping, 30)
	top := TopK(pr, 1)
	if top[0].ID != 0 {
		t.Fatalf("top node = %d, want hub 0", top[0].ID)
	}
	for id, v := range pr {
		if id != 0 && v >= pr[0] {
			t.Fatalf("leaf %d rank %v >= hub rank %v", id, v, pr[0])
		}
	}
}

func TestPageRankSeqMatchesParallel(t *testing.T) {
	g := graph.NewDirected()
	// Irregular graph.
	edges := [][2]int64{{1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}, {5, 3}, {6, 1}, {2, 6}}
	for _, e := range edges {
		g.AddEdge(e[0], e[1])
	}
	p := PageRank(g, DefaultDamping, 25)
	s := PageRankSeq(g, DefaultDamping, 25)
	for id, v := range p {
		if !approxEq(v, s[id], 1e-12) {
			t.Fatalf("node %d: parallel %v != sequential %v", id, v, s[id])
		}
	}
}

func TestPageRankEmptyGraph(t *testing.T) {
	g := graph.NewDirected()
	if pr := PageRank(g, DefaultDamping, 10); len(pr) != 0 {
		t.Fatalf("PageRank on empty graph = %v", pr)
	}
}

func TestPageRankConvergesToStationary(t *testing.T) {
	// Two-node graph 1<->2: stationary distribution is (0.5, 0.5).
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	pr := PageRank(g, DefaultDamping, 60)
	if !approxEq(pr[1], 0.5, 1e-9) || !approxEq(pr[2], 0.5, 1e-9) {
		t.Fatalf("pr = %v", pr)
	}
}

func TestPersonalizedPageRank(t *testing.T) {
	g := cycleGraph(6)
	ppr := PersonalizedPageRank(g, []int64{0}, DefaultDamping, 40)
	if ppr == nil {
		t.Fatal("nil result for valid seed")
	}
	// The seed should outrank the node farthest from it.
	if ppr[0] <= ppr[3] {
		t.Fatalf("seed rank %v <= distant rank %v", ppr[0], ppr[3])
	}
	if s := SumScores(ppr); !approxEq(s, 1, 1e-6) {
		t.Fatalf("PPR sum = %v", s)
	}
	if got := PersonalizedPageRank(g, []int64{999}, DefaultDamping, 5); got != nil {
		t.Fatal("unknown seed should return nil")
	}
}

func TestHITSBipartite(t *testing.T) {
	// Hubs {1,2} point at authorities {10,11,12}.
	g := graph.NewDirected()
	for _, h := range []int64{1, 2} {
		for _, a := range []int64{10, 11, 12} {
			g.AddEdge(h, a)
		}
	}
	hs := HITS(g, 30)
	for _, h := range []int64{1, 2} {
		if hs.Hub[h] <= hs.Hub[10] {
			t.Fatalf("hub score of %d (%v) not above authority node (%v)", h, hs.Hub[h], hs.Hub[10])
		}
	}
	for _, a := range []int64{10, 11, 12} {
		if hs.Authority[a] <= hs.Authority[1] {
			t.Fatalf("authority score of %d (%v) not above hub node (%v)", a, hs.Authority[a], hs.Authority[1])
		}
	}
	// L2-normalized: authority vector norm 1 over the three authorities.
	var sq float64
	for _, v := range hs.Authority {
		sq += v * v
	}
	if !approxEq(sq, 1, 1e-9) {
		t.Fatalf("authority norm² = %v", sq)
	}
}

func TestTopK(t *testing.T) {
	scores := map[int64]float64{1: 0.5, 2: 0.9, 3: 0.9, 4: 0.1}
	top := TopK(scores, 3)
	if len(top) != 3 {
		t.Fatalf("TopK returned %d", len(top))
	}
	if top[0].ID != 2 || top[1].ID != 3 || top[2].ID != 1 {
		t.Fatalf("TopK order = %v", top)
	}
	if got := TopK(scores, 100); len(got) != 4 {
		t.Fatalf("TopK overshoot = %d", len(got))
	}
}
