package algo

import (
	"sync/atomic"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// BFSParallel is a level-synchronous parallel breadth-first search: each
// level's frontier is split across workers, workers claim unvisited nodes
// with compare-and-swap, and per-worker output buffers are concatenated
// into the next frontier — no locks on the hot path. The paper names
// expanding Ringo's set of parallel algorithms as ongoing work (§3); this
// is the parallel counterpart of the sequential BFS benchmarked in Table 6.
// Results are identical to BFS.
func BFSParallel(g *graph.Directed, src int64, dir EdgeDir) map[int64]int {
	return BFSParallelView(graph.BuildView(g), src, dir)
}

// BFSParallelView is BFSParallel over a prebuilt CSR view.
func BFSParallelView(v *graph.View, src int64, dir EdgeDir) map[int64]int {
	defer report(timed("parbfs"))
	s, ok := v.Index(src)
	if !ok {
		return nil
	}
	n := v.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	frontier := []int32{s}
	level := int32(0)
	for len(frontier) > 0 {
		level++
		workers := par.Workers()
		ranges := par.Split(len(frontier), workers)
		nextParts := make([][]int32, len(ranges))
		par.ForEach(len(ranges), func(w int) {
			var out []int32
			visit := func(x int32) {
				// Claim x for this level; exactly one worker wins.
				if atomic.CompareAndSwapInt32(&dist[x], -1, level) {
					out = append(out, x)
				}
			}
			for fi := ranges[w].Lo; fi < ranges[w].Hi; fi++ {
				u := frontier[fi]
				if dir == Out || dir == Both {
					for _, x := range v.Out(u) {
						visit(x)
					}
				}
				if dir == In || dir == Both {
					for _, x := range v.In(u) {
						visit(x)
					}
				}
			}
			nextParts[w] = out
		})
		frontier = frontier[:0]
		for _, p := range nextParts {
			frontier = append(frontier, p...)
		}
	}
	out := make(map[int64]int)
	for i, dv := range dist {
		if dv >= 0 {
			out[v.ID(int32(i))] = int(dv)
		}
	}
	return out
}
