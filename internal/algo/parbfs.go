package algo

import (
	"sync/atomic"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// BFSParallel is a level-synchronous parallel breadth-first search: each
// level's frontier is split across workers, workers claim unvisited nodes
// with compare-and-swap, and per-worker output buffers are concatenated
// into the next frontier — no locks on the hot path. The paper names
// expanding Ringo's set of parallel algorithms as ongoing work (§3); this
// is the parallel counterpart of the sequential BFS benchmarked in Table 6.
// Results are identical to BFS.
func BFSParallel(g *graph.Directed, src int64, dir EdgeDir) map[int64]int {
	d := denseOf(g)
	s, ok := d.idx[src]
	if !ok {
		return nil
	}
	n := len(d.ids)
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	frontier := []int32{s}
	level := int32(0)
	for len(frontier) > 0 {
		level++
		workers := par.Workers()
		ranges := par.Split(len(frontier), workers)
		nextParts := make([][]int32, len(ranges))
		par.ForEach(len(ranges), func(w int) {
			var out []int32
			visit := func(v int32) {
				// Claim v for this level; exactly one worker wins.
				if atomic.CompareAndSwapInt32(&dist[v], -1, level) {
					out = append(out, v)
				}
			}
			for fi := ranges[w].Lo; fi < ranges[w].Hi; fi++ {
				u := frontier[fi]
				if dir == Out || dir == Both {
					for _, v := range d.out[u] {
						visit(v)
					}
				}
				if dir == In || dir == Both {
					for _, v := range d.in[u] {
						visit(v)
					}
				}
			}
			nextParts[w] = out
		})
		frontier = frontier[:0]
		for _, p := range nextParts {
			frontier = append(frontier, p...)
		}
	}
	out := make(map[int64]int)
	for i, dv := range dist {
		if dv >= 0 {
			out[d.ids[i]] = int(dv)
		}
	}
	return out
}
