package algo

import (
	"testing"
	"testing/quick"

	"ringo/internal/gen"
	"ringo/internal/graph"
)

func TestBFSParallelMatchesSequentialOnPath(t *testing.T) {
	g := pathGraph(50)
	for _, dir := range []EdgeDir{Out, In, Both} {
		seq := BFS(g, 25, dir)
		parl := BFSParallel(g, 25, dir)
		if len(seq) != len(parl) {
			t.Fatalf("dir %v: reach %d vs %d", dir, len(seq), len(parl))
		}
		for id, dv := range seq {
			if parl[id] != dv {
				t.Fatalf("dir %v: node %d dist %d vs %d", dir, id, dv, parl[id])
			}
		}
	}
}

func TestBFSParallelMissingSource(t *testing.T) {
	if BFSParallel(pathGraph(3), 42, Out) != nil {
		t.Fatal("missing source returned non-nil")
	}
}

func TestBFSParallelMatchesSequentialProperty(t *testing.T) {
	f := func(edges [][2]int8, srcRaw int8) bool {
		g := graph.NewDirected()
		for _, e := range edges {
			g.AddEdge(int64(e[0]%24), int64(e[1]%24))
		}
		src := int64(srcRaw % 24)
		g.AddNode(src)
		seq := BFS(g, src, Out)
		parl := BFSParallel(g, src, Out)
		if len(seq) != len(parl) {
			return false
		}
		for id, dv := range seq {
			if parl[id] != dv {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSParallelLargeGraph(t *testing.T) {
	g := gen.GNM(20_000, 80_000, 5)
	src := g.Nodes()[0]
	seq := BFS(g, src, Out)
	parl := BFSParallel(g, src, Out)
	if len(seq) != len(parl) {
		t.Fatalf("reach %d vs %d", len(seq), len(parl))
	}
	for id, dv := range seq {
		if parl[id] != dv {
			t.Fatalf("node %d: %d vs %d", id, dv, parl[id])
		}
	}
}
