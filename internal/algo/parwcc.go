package algo

import (
	"sync/atomic"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// WCCParallel computes weakly connected components with parallel label
// propagation (hash-min): every node starts labeled with its own index, and
// each round every node atomically lowers its neighbors' labels to the
// minimum seen, until no label changes. Results are identical to WCC.
func WCCParallel(g *graph.Directed) Components {
	return WCCParallelView(graph.BuildView(g))
}

// WCCParallelView is WCCParallel over a prebuilt CSR view.
func WCCParallelView(v *graph.View) Components {
	defer report(timed("parwcc"))
	n := v.NumNodes()
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	// lowerTo atomically lowers label[x] to at most val, reporting change.
	lowerTo := func(x int32, val int32) bool {
		for {
			cur := atomic.LoadInt32(&label[x])
			if cur <= val {
				return false
			}
			if atomic.CompareAndSwapInt32(&label[x], cur, val) {
				return true
			}
		}
	}
	for {
		changed := par.SumInt(n, func(lo, hi int) int64 {
			var c int64
			for u := lo; u < hi; u++ {
				lu := atomic.LoadInt32(&label[u])
				min := lu
				for _, x := range v.Out(int32(u)) {
					if lx := atomic.LoadInt32(&label[x]); lx < min {
						min = lx
					}
				}
				for _, x := range v.In(int32(u)) {
					if lx := atomic.LoadInt32(&label[x]); lx < min {
						min = lx
					}
				}
				if min < lu {
					if lowerTo(int32(u), min) {
						c++
					}
				}
				// Push the minimum outward too, halving convergence rounds
				// on long chains.
				for _, x := range v.Out(int32(u)) {
					if lowerTo(x, min) {
						c++
					}
				}
				for _, x := range v.In(int32(u)) {
					if lowerTo(x, min) {
						c++
					}
				}
			}
			return c
		})
		if changed == 0 {
			break
		}
	}
	return labelComponents(v.IDs(), func(i int32) int32 { return label[i] })
}
