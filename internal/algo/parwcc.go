package algo

import (
	"sync/atomic"

	"ringo/internal/graph"
	"ringo/internal/par"
)

// WCCParallel computes weakly connected components with parallel label
// propagation (hash-min): every node starts labeled with its own index, and
// each round every node atomically lowers its neighbors' labels to the
// minimum seen, until no label changes. Results are identical to WCC.
func WCCParallel(g *graph.Directed) Components {
	d := denseOf(g)
	n := len(d.ids)
	label := make([]int32, n)
	for i := range label {
		label[i] = int32(i)
	}
	// lowerTo atomically lowers label[v] to at most x, reporting change.
	lowerTo := func(v int32, x int32) bool {
		for {
			cur := atomic.LoadInt32(&label[v])
			if cur <= x {
				return false
			}
			if atomic.CompareAndSwapInt32(&label[v], cur, x) {
				return true
			}
		}
	}
	for {
		changed := par.SumInt(n, func(lo, hi int) int64 {
			var c int64
			for u := lo; u < hi; u++ {
				lu := atomic.LoadInt32(&label[u])
				min := lu
				for _, v := range d.out[u] {
					if lv := atomic.LoadInt32(&label[v]); lv < min {
						min = lv
					}
				}
				for _, v := range d.in[u] {
					if lv := atomic.LoadInt32(&label[v]); lv < min {
						min = lv
					}
				}
				if min < lu {
					if lowerTo(int32(u), min) {
						c++
					}
				}
				// Push the minimum outward too, halving convergence rounds
				// on long chains.
				for _, v := range d.out[u] {
					if lowerTo(v, min) {
						c++
					}
				}
				for _, v := range d.in[u] {
					if lowerTo(v, min) {
						c++
					}
				}
			}
			return c
		})
		if changed == 0 {
			break
		}
	}
	return labelComponents(d.ids, func(i int32) int32 { return label[i] })
}
