package algo

import (
	"testing"
	"testing/quick"

	"ringo/internal/gen"
	"ringo/internal/graph"
)

func TestWCCParallelMatchesSequential(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(10, 11)
	g.AddNode(99)
	seq := WCC(g)
	parl := WCCParallel(g)
	if seq.Count != parl.Count || seq.MaxSize != parl.MaxSize {
		t.Fatalf("seq (%d,%d) vs parallel (%d,%d)", seq.Count, seq.MaxSize, parl.Count, parl.MaxSize)
	}
	// Same partition: labels agree up to renaming.
	if !samePartition(seq.Label, parl.Label) {
		t.Fatal("partitions differ")
	}
}

func samePartition(a, b map[int64]int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	back := map[int]int{}
	for id, la := range a {
		lb, ok := b[id]
		if !ok {
			return false
		}
		if m, seen := fwd[la]; seen && m != lb {
			return false
		}
		if m, seen := back[lb]; seen && m != la {
			return false
		}
		fwd[la] = lb
		back[lb] = la
	}
	return true
}

func TestWCCParallelLongChain(t *testing.T) {
	// Long chains need many hash-min rounds; correctness must not depend
	// on round count.
	g := pathGraph(5000)
	c := WCCParallel(g)
	if c.Count != 1 || c.MaxSize != 5000 {
		t.Fatalf("chain components = (%d,%d)", c.Count, c.MaxSize)
	}
}

func TestWCCParallelProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		g := graph.NewDirected()
		for _, e := range edges {
			g.AddEdge(int64(e[0]%20), int64(e[1]%20))
		}
		seq := WCC(g)
		parl := WCCParallel(g)
		return seq.Count == parl.Count && seq.MaxSize == parl.MaxSize &&
			samePartition(seq.Label, parl.Label)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWCCParallelLargeRandom(t *testing.T) {
	g := gen.GNM(5000, 8000, 3)
	seq := WCC(g)
	parl := WCCParallel(g)
	if seq.Count != parl.Count || seq.MaxSize != parl.MaxSize {
		t.Fatalf("seq (%d,%d) vs parallel (%d,%d)", seq.Count, seq.MaxSize, parl.Count, parl.MaxSize)
	}
}
