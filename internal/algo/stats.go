package algo

import (
	"math"
	"math/rand"
	"sort"

	"ringo/internal/graph"
)

// Whole-graph statistics from SNAP's structural-analysis toolbox:
// reciprocity, degree assortativity, effective diameter, and a power-law
// exponent fit — the numbers network papers report in their "dataset"
// tables.

// Reciprocity returns the fraction of directed edges whose reverse edge
// also exists (self-loops count as reciprocated). Zero for edgeless graphs.
func Reciprocity(g *graph.Directed) float64 {
	if g.NumEdges() == 0 {
		return 0
	}
	var recip int64
	g.ForEdges(func(src, dst int64) {
		if g.HasEdge(dst, src) {
			recip++
		}
	})
	return float64(recip) / float64(g.NumEdges())
}

// DegreeAssortativity returns the Pearson correlation of degrees across
// undirected edges (Newman's assortativity coefficient r). Positive values
// mean high-degree nodes attach to high-degree nodes; social networks are
// typically assortative, technological graphs disassortative. Returns 0
// when degenerate (no edges or zero variance).
func DegreeAssortativity(g *graph.Undirected) float64 {
	var m float64
	var sumXY, sumX, sumY, sumX2, sumY2 float64
	g.ForEdges(func(u, v int64) {
		if u == v {
			return
		}
		du, dv := float64(g.Deg(u)), float64(g.Deg(v))
		// Each undirected edge contributes both orientations.
		sumXY += 2 * du * dv
		sumX += du + dv
		sumY += du + dv
		sumX2 += du*du + dv*dv
		sumY2 += du*du + dv*dv
		m += 2
	})
	if m == 0 {
		return 0
	}
	num := sumXY/m - (sumX/m)*(sumY/m)
	den := math.Sqrt(sumX2/m-(sumX/m)*(sumX/m)) * math.Sqrt(sumY2/m-(sumY/m)*(sumY/m))
	if den == 0 {
		return 0
	}
	return num / den
}

// EffectiveDiameter estimates the 90th-percentile shortest-path distance
// (SNAP's GetBfsEffDiam): BFS from `samples` random sources (direction
// ignored), pooling all finite pairwise distances, with linear
// interpolation between the two straddling integer distances.
func EffectiveDiameter(g *graph.Directed, samples int, seed int64) float64 {
	return EffectiveDiameterView(graph.BuildView(g), samples, seed)
}

// EffectiveDiameterView is EffectiveDiameter over a prebuilt CSR view.
func EffectiveDiameterView(v *graph.View, samples int, seed int64) float64 {
	n := v.NumNodes()
	if n == 0 {
		return 0
	}
	if samples > n {
		samples = n
	}
	rng := rand.New(rand.NewSource(seed))
	starts := rng.Perm(n)[:samples]
	// Histogram of distances.
	counts := []int64{}
	var total int64
	for _, s := range starts {
		dist := bfsFlat(v, int32(s), Both)
		for _, dv := range dist {
			if dv <= 0 {
				continue
			}
			for int(dv) >= len(counts) {
				counts = append(counts, 0)
			}
			counts[dv]++
			total++
		}
	}
	if total == 0 {
		return 0
	}
	target := 0.9 * float64(total)
	var cum int64
	for dist, c := range counts {
		prev := float64(cum)
		cum += c
		if float64(cum) >= target {
			if c == 0 {
				return float64(dist)
			}
			// Interpolate within this distance bucket.
			frac := (target - prev) / float64(c)
			return float64(dist-1) + frac
		}
	}
	return float64(len(counts) - 1)
}

// PowerLawExponent fits alpha of P(deg = d) ∝ d^-alpha to the degree
// distribution with the discrete maximum-likelihood estimator of Clauset,
// Shalizi & Newman (alpha = 1 + n / Σ ln(d_i / (dmin - 0.5))) over degrees
// >= dmin. ok is false when fewer than 10 nodes reach dmin.
func PowerLawExponent(g *graph.Undirected, dmin int) (alpha float64, ok bool) {
	if dmin < 1 {
		dmin = 1
	}
	var sum float64
	n := 0
	g.ForNodes(func(id int64) {
		d := g.Deg(id)
		if d >= dmin {
			sum += math.Log(float64(d) / (float64(dmin) - 0.5))
			n++
		}
	})
	if n < 10 || sum == 0 {
		return 0, false
	}
	return 1 + float64(n)/sum, true
}

// DegreePercentiles returns the requested percentiles (0-100) of the
// out-degree distribution.
func DegreePercentiles(g *graph.Directed, pcts []float64) []int {
	degs := make([]int, 0, g.NumNodes())
	g.ForNodes(func(id int64) { degs = append(degs, g.OutDeg(id)) })
	sort.Ints(degs)
	out := make([]int, len(pcts))
	for i, p := range pcts {
		if len(degs) == 0 {
			out[i] = 0
			continue
		}
		idx := int(p / 100 * float64(len(degs)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(degs) {
			idx = len(degs) - 1
		}
		out[i] = degs[idx]
	}
	return out
}
