package algo

import (
	"fmt"
	"sort"

	"ringo/internal/graph"
)

// ArticulationPoints returns the cut vertices of an undirected graph: nodes
// whose removal increases the number of connected components. Iterative
// Tarjan lowlink computation, safe on deep graphs.
func ArticulationPoints(g *graph.Undirected) []int64 {
	return ArticulationPointsView(graph.BuildUView(g))
}

// ArticulationPointsView is ArticulationPoints over a prebuilt CSR view.
func ArticulationPointsView(v *graph.UView) []int64 {
	defer report(timed("cuts"))
	n := v.NumNodes()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	isCut := make([]bool, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	var timer int32
	type frame struct {
		node int32
		pos  int
	}
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		rootChildren := 0
		stack := []frame{{int32(root), 0}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			adjU := v.Adj(u)
			if f.pos < len(adjU) {
				x := adjU[f.pos]
				f.pos++
				if x == u {
					continue // self-loop
				}
				if disc[x] == -1 {
					parent[x] = u
					if u == int32(root) {
						rootChildren++
					}
					disc[x] = timer
					low[x] = timer
					timer++
					stack = append(stack, frame{x, 0})
				} else if x != parent[u] && disc[x] < low[u] {
					low[u] = disc[x]
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[u]; p != -1 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if p != int32(root) && low[u] >= disc[p] {
					isCut[p] = true
				}
			}
		}
		if rootChildren > 1 {
			isCut[root] = true
		}
	}
	var out []int64
	for i, cut := range isCut {
		if cut {
			out = append(out, v.ID(int32(i)))
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Bridges returns the cut edges of an undirected graph (edges whose removal
// disconnects their endpoints), each as {smaller id, larger id}, sorted.
func Bridges(g *graph.Undirected) [][2]int64 {
	return BridgesView(graph.BuildUView(g))
}

// BridgesView is Bridges over a prebuilt CSR view.
func BridgesView(v *graph.UView) [][2]int64 {
	defer report(timed("bridges"))
	n := v.NumNodes()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	for i := range disc {
		disc[i] = -1
		parent[i] = -1
	}
	var timer int32
	var out [][2]int64
	type frame struct {
		node    int32
		pos     int
		skipped bool // one parallel-edge-back-to-parent allowance used
	}
	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		stack := []frame{{int32(root), 0, false}}
		disc[root] = timer
		low[root] = timer
		timer++
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			u := f.node
			adjU := v.Adj(u)
			if f.pos < len(adjU) {
				x := adjU[f.pos]
				f.pos++
				if x == u {
					continue
				}
				if disc[x] == -1 {
					parent[x] = u
					disc[x] = timer
					low[x] = timer
					timer++
					stack = append(stack, frame{x, 0, false})
				} else if x != parent[u] || f.skipped {
					if disc[x] < low[u] {
						low[u] = disc[x]
					}
				} else {
					// First sighting of the tree edge back to the parent:
					// not a cycle edge. (Simple graphs: at most one.)
					f.skipped = true
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if p := parent[u]; p != -1 {
				if low[u] < low[p] {
					low[p] = low[u]
				}
				if low[u] > disc[p] {
					a, b := v.ID(p), v.ID(u)
					if a > b {
						a, b = b, a
					}
					out = append(out, [2]int64{a, b})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// TopoSort returns a topological order of a directed acyclic graph (Kahn's
// algorithm). It errors if the graph contains a cycle.
func TopoSort(g *graph.Directed) ([]int64, error) {
	return TopoSortView(graph.BuildView(g))
}

// TopoSortView is TopoSort over a prebuilt CSR view.
func TopoSortView(v *graph.View) ([]int64, error) {
	defer report(timed("toposort"))
	n := v.NumNodes()
	indeg := make([]int32, n)
	for u := 0; u < n; u++ {
		indeg[u] = int32(v.InDeg(int32(u)))
	}
	// Ready nodes kept id-sorted for deterministic output.
	ready := make([]int32, 0, n)
	for u := 0; u < n; u++ {
		if indeg[u] == 0 {
			ready = append(ready, int32(u))
		}
	}
	sort.Slice(ready, func(i, j int) bool { return v.ID(ready[i]) < v.ID(ready[j]) })
	order := make([]int64, 0, n)
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, v.ID(u))
		for _, x := range v.Out(u) {
			indeg[x]--
			if indeg[x] == 0 {
				ready = append(ready, x)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("algo: graph has a cycle; no topological order")
	}
	return order, nil
}

// IsDAG reports whether the directed graph is acyclic.
func IsDAG(g *graph.Directed) bool {
	_, err := TopoSort(g)
	return err == nil
}

// Bipartition two-colors an undirected graph. ok is false if the graph
// contains an odd cycle (not bipartite); otherwise side maps every node to
// 0 or 1 with no monochromatic edge.
func Bipartition(g *graph.Undirected) (side map[int64]int, ok bool) {
	return BipartitionView(graph.BuildUView(g))
}

// BipartitionView is Bipartition over a prebuilt CSR view.
func BipartitionView(v *graph.UView) (side map[int64]int, ok bool) {
	n := v.NumNodes()
	color := make([]int8, n)
	for i := range color {
		color[i] = -1
	}
	for root := 0; root < n; root++ {
		if color[root] != -1 {
			continue
		}
		color[root] = 0
		queue := []int32{int32(root)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, x := range v.Adj(u) {
				if x == u {
					return nil, false // self-loop is an odd cycle
				}
				if color[x] == -1 {
					color[x] = 1 - color[u]
					queue = append(queue, x)
				} else if color[x] == color[u] {
					return nil, false
				}
			}
		}
	}
	side = make(map[int64]int, n)
	for i, id := range v.IDs() {
		side[id] = int(color[i])
	}
	return side, true
}

// MSTEdge is one edge of a minimum spanning forest.
type MSTEdge struct {
	Src, Dst int64
	Weight   float64
}

// MinimumSpanningForest computes a minimum spanning forest of an undirected
// graph under the given edge weights (Kruskal with union-find). Self-loops
// are ignored. The total weight and the chosen edges are returned; for a
// connected graph the forest is a spanning tree.
func MinimumSpanningForest(g *graph.Undirected, w func(u, v int64) float64) (edges []MSTEdge, total float64) {
	all := make([]MSTEdge, 0, g.NumEdges())
	g.ForEdges(func(u, v int64) {
		if u != v {
			all = append(all, MSTEdge{u, v, w(u, v)})
		}
	})
	sort.Slice(all, func(i, j int) bool {
		if all[i].Weight != all[j].Weight {
			return all[i].Weight < all[j].Weight
		}
		if all[i].Src != all[j].Src {
			return all[i].Src < all[j].Src
		}
		return all[i].Dst < all[j].Dst
	})
	parent := map[int64]int64{}
	var find func(x int64) int64
	find = func(x int64) int64 {
		p, ok := parent[x]
		if !ok || p == x {
			return x
		}
		r := find(p)
		parent[x] = r
		return r
	}
	for _, e := range all {
		ra, rb := find(e.Src), find(e.Dst)
		if ra == rb {
			continue
		}
		parent[ra] = rb
		edges = append(edges, e)
		total += e.Weight
	}
	return edges, total
}
