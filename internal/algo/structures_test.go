package algo

import (
	"testing"
	"testing/quick"

	"ringo/internal/graph"
)

func TestArticulationPointsBarbell(t *testing.T) {
	// Two triangles joined through node 2: {0,1,2} and {2,3,4}. Node 2 is
	// the only cut vertex.
	g := graph.NewUndirected()
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {2, 4}} {
		g.AddEdge(e[0], e[1])
	}
	cuts := ArticulationPoints(g)
	if len(cuts) != 1 || cuts[0] != 2 {
		t.Fatalf("articulation points = %v, want [2]", cuts)
	}
}

func TestArticulationPointsPath(t *testing.T) {
	// On a path 0-1-2-3, the interior nodes are cut vertices.
	g := graph.NewUndirected()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	cuts := ArticulationPoints(g)
	if len(cuts) != 2 || cuts[0] != 1 || cuts[1] != 2 {
		t.Fatalf("path cut vertices = %v", cuts)
	}
}

func TestArticulationPointsCycleHasNone(t *testing.T) {
	g := graph.NewUndirected()
	for i := int64(0); i < 6; i++ {
		g.AddEdge(i, (i+1)%6)
	}
	if cuts := ArticulationPoints(g); len(cuts) != 0 {
		t.Fatalf("cycle cut vertices = %v", cuts)
	}
}

func TestBridgesKnown(t *testing.T) {
	// Triangle {0,1,2} with a pendant edge 2-3: only 2-3 is a bridge.
	g := graph.NewUndirected()
	for _, e := range [][2]int64{{0, 1}, {1, 2}, {0, 2}, {2, 3}} {
		g.AddEdge(e[0], e[1])
	}
	br := Bridges(g)
	if len(br) != 1 || br[0] != [2]int64{2, 3} {
		t.Fatalf("bridges = %v", br)
	}
	// Every edge of a tree is a bridge.
	tree := graph.NewUndirected()
	tree.AddEdge(0, 1)
	tree.AddEdge(1, 2)
	tree.AddEdge(1, 3)
	if br := Bridges(tree); len(br) != 3 {
		t.Fatalf("tree bridges = %v", br)
	}
	// A cycle has none.
	cyc := graph.NewUndirected()
	for i := int64(0); i < 5; i++ {
		cyc.AddEdge(i, (i+1)%5)
	}
	if br := Bridges(cyc); len(br) != 0 {
		t.Fatalf("cycle bridges = %v", br)
	}
}

// Reference check: an edge {u,v} is a bridge iff deleting it disconnects u
// from v.
func TestBridgesMatchReferenceProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		g := graph.NewUndirected()
		for _, e := range edges {
			a, b := int64(e[0]%10), int64(e[1]%10)
			if a != b {
				g.AddEdge(a, b)
			}
		}
		got := map[[2]int64]bool{}
		for _, b := range Bridges(g) {
			got[b] = true
		}
		ok := true
		g.ForEdges(func(u, v int64) {
			work := g.Clone()
			work.DelEdge(u, v)
			reachable := false
			// BFS from u looking for v.
			seen := map[int64]bool{u: true}
			queue := []int64{u}
			for len(queue) > 0 && !reachable {
				x := queue[0]
				queue = queue[1:]
				for _, nbr := range work.Neighbors(x) {
					if nbr == v {
						reachable = true
						break
					}
					if !seen[nbr] {
						seen[nbr] = true
						queue = append(queue, nbr)
					}
				}
			}
			key := [2]int64{u, v}
			if u > v {
				key = [2]int64{v, u}
			}
			if got[key] == reachable {
				ok = false // bridge iff NOT reachable after deletion
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTopoSort(t *testing.T) {
	g := graph.NewDirected()
	for _, e := range [][2]int64{{5, 11}, {7, 11}, {7, 8}, {3, 8}, {3, 10}, {11, 2}, {11, 9}, {11, 10}, {8, 9}} {
		g.AddEdge(e[0], e[1])
	}
	order, err := TopoSort(g)
	if err != nil {
		t.Fatal(err)
	}
	pos := map[int64]int{}
	for i, id := range order {
		pos[id] = i
	}
	g.ForEdges(func(src, dst int64) {
		if pos[src] >= pos[dst] {
			t.Fatalf("edge %d->%d violates order %v", src, dst, order)
		}
	})
	if !IsDAG(g) {
		t.Fatal("DAG not recognized")
	}
	g.AddEdge(9, 5) // creates a cycle 5->11->9->5
	if _, err := TopoSort(g); err == nil {
		t.Fatal("cycle not detected")
	}
	if IsDAG(g) {
		t.Fatal("cyclic graph reported as DAG")
	}
}

func TestBipartition(t *testing.T) {
	// Even cycle is bipartite.
	even := graph.NewUndirected()
	for i := int64(0); i < 6; i++ {
		even.AddEdge(i, (i+1)%6)
	}
	side, ok := Bipartition(even)
	if !ok {
		t.Fatal("even cycle not bipartite")
	}
	even.ForEdges(func(u, v int64) {
		if side[u] == side[v] {
			t.Fatalf("monochromatic edge %d-%d", u, v)
		}
	})
	// Odd cycle is not.
	odd := graph.NewUndirected()
	for i := int64(0); i < 5; i++ {
		odd.AddEdge(i, (i+1)%5)
	}
	if _, ok := Bipartition(odd); ok {
		t.Fatal("odd cycle reported bipartite")
	}
	// Self-loop is not.
	loop := graph.NewUndirected()
	loop.AddEdge(1, 1)
	if _, ok := Bipartition(loop); ok {
		t.Fatal("self-loop reported bipartite")
	}
	// Disconnected bipartite graph.
	two := graph.NewUndirected()
	two.AddEdge(1, 2)
	two.AddEdge(10, 11)
	if _, ok := Bipartition(two); !ok {
		t.Fatal("disconnected bipartite rejected")
	}
}

func TestMinimumSpanningForest(t *testing.T) {
	// Square with a diagonal: MST picks the three cheapest edges.
	g := graph.NewUndirected()
	weights := map[[2]int64]float64{
		{1, 2}: 1, {2, 3}: 2, {3, 4}: 3, {1, 4}: 4, {1, 3}: 5,
	}
	for e := range weights {
		g.AddEdge(e[0], e[1])
	}
	w := func(u, v int64) float64 {
		if u > v {
			u, v = v, u
		}
		return weights[[2]int64{u, v}]
	}
	edges, total := MinimumSpanningForest(g, w)
	if len(edges) != 3 {
		t.Fatalf("MST edges = %v", edges)
	}
	if total != 1+2+3 {
		t.Fatalf("MST total = %v, want 6", total)
	}
	// Forest on a disconnected graph spans each component.
	g.AddEdge(100, 101)
	edges, _ = MinimumSpanningForest(g, func(u, v int64) float64 { return 1 })
	if len(edges) != 4 { // 3 for the square component + 1 for the pair
		t.Fatalf("forest edges = %d, want 4", len(edges))
	}
}

func TestMotifCounts(t *testing.T) {
	// Directed 3-cycle: one cyclic triangle, no transitive.
	cyc := graph.NewDirected()
	cyc.AddEdge(1, 2)
	cyc.AddEdge(2, 3)
	cyc.AddEdge(3, 1)
	mc := CountMotifs(cyc)
	if mc.CyclicTriangles != 1 || mc.TransTriangles != 0 {
		t.Fatalf("cycle motifs = %+v", mc)
	}

	// Transitive triangle: a->b, b->c, a->c.
	tr := graph.NewDirected()
	tr.AddEdge(1, 2)
	tr.AddEdge(2, 3)
	tr.AddEdge(1, 3)
	mc = CountMotifs(tr)
	if mc.TransTriangles != 1 || mc.CyclicTriangles != 0 {
		t.Fatalf("transitive motifs = %+v", mc)
	}

	// A path has one wedge and no triangles.
	p := graph.NewDirected()
	p.AddEdge(1, 2)
	p.AddEdge(2, 3)
	mc = CountMotifs(p)
	if mc.Wedges != 1 || mc.CyclicTriangles+mc.TransTriangles != 0 {
		t.Fatalf("path motifs = %+v", mc)
	}

	// Fully reciprocal triangle: both cyclic orientations.
	full := graph.NewDirected()
	for _, e := range [][2]int64{{1, 2}, {2, 1}, {2, 3}, {3, 2}, {1, 3}, {3, 1}} {
		full.AddEdge(e[0], e[1])
	}
	mc = CountMotifs(full)
	if mc.CyclicTriangles != 2 {
		t.Fatalf("reciprocal triangle cycles = %+v", mc)
	}
}

func TestPageRankConverged(t *testing.T) {
	g := cycleGraph(8)
	pr, iters := PageRankConverged(g, DefaultDamping, 1e-12, 200)
	if iters >= 200 {
		t.Fatalf("did not converge: %d iterations", iters)
	}
	for _, v := range pr {
		if !approxEq(v, 1.0/8, 1e-9) {
			t.Fatalf("converged rank = %v", v)
		}
	}
	// Tight budget stops early.
	_, iters = PageRankConverged(g, DefaultDamping, 0, 3)
	if iters != 3 {
		t.Fatalf("iteration budget ignored: %d", iters)
	}
	if pr, _ := PageRankConverged(graph.NewDirected(), DefaultDamping, 1e-9, 5); pr != nil {
		t.Fatal("empty graph should return nil")
	}
}
