package algo

import "sort"

// Scored pairs a node id with a score, for ranked results.
type Scored struct {
	ID    int64
	Score float64
}

// TopK returns the k highest-scored nodes in descending score order, ties
// broken by ascending id so results are deterministic. k larger than the
// map returns everything.
func TopK(scores map[int64]float64, k int) []Scored {
	all := make([]Scored, 0, len(scores))
	for id, s := range scores {
		all = append(all, Scored{id, s})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Score != all[j].Score {
			return all[i].Score > all[j].Score
		}
		return all[i].ID < all[j].ID
	})
	if k < len(all) {
		all = all[:k]
	}
	return all
}

// SumScores returns the sum of all scores (used by tests to check that
// PageRank is a probability distribution).
func SumScores(scores map[int64]float64) float64 {
	var s float64
	for _, v := range scores {
		s += v
	}
	return s
}
