package algo

import (
	"container/heap"
	"math"

	"ringo/internal/graph"
)

// EdgeDir selects which edges a traversal follows on a directed graph.
type EdgeDir int

// Traversal directions.
const (
	// Out follows edges in their direction.
	Out EdgeDir = iota
	// In follows edges against their direction.
	In
	// Both ignores edge direction.
	Both
)

// BFS runs a breadth-first search over g from src following dir edges and
// returns hop distances keyed by node id for every reached node (including
// src at distance 0). It returns nil if src is not a node.
func BFS(g *graph.Directed, src int64, dir EdgeDir) map[int64]int {
	return BFSView(graph.BuildView(g), src, dir)
}

// BFSView is BFS over a prebuilt CSR view.
func BFSView(v *graph.View, src int64, dir EdgeDir) map[int64]int {
	s, ok := v.Index(src)
	if !ok {
		return nil
	}
	dist := bfsFlat(v, s, dir)
	out := make(map[int64]int)
	for i, dv := range dist {
		if dv >= 0 {
			out[v.ID(int32(i))] = int(dv)
		}
	}
	return out
}

// bfsFlat runs BFS over the CSR view, returning -1 for unreached nodes.
func bfsFlat(v *graph.View, src int32, dir EdgeDir) []int32 {
	n := v.NumNodes()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, 256)
	queue = append(queue, src)
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		du := dist[u]
		expand := func(nbrs []int32) {
			for _, w := range nbrs {
				if dist[w] < 0 {
					dist[w] = du + 1
					queue = append(queue, w)
				}
			}
		}
		if dir == Out || dir == Both {
			expand(v.Out(u))
		}
		if dir == In || dir == Both {
			expand(v.In(u))
		}
	}
	return dist
}

// SSSPUnweighted returns single-source shortest-path hop distances from src
// following out-edges — the unweighted SSSP benchmarked in Table 6, where
// every edge has length 1 and BFS is the optimal algorithm.
func SSSPUnweighted(g *graph.Directed, src int64) map[int64]int {
	return BFS(g, src, Out)
}

// ShortestPath returns the hop distance from src to dst following
// out-edges, or -1 if dst is unreachable.
func ShortestPath(g *graph.Directed, src, dst int64) int {
	return ShortestPathView(graph.BuildView(g), src, dst)
}

// ShortestPathView is ShortestPath over a prebuilt CSR view.
func ShortestPathView(v *graph.View, src, dst int64) int {
	s, ok := v.Index(src)
	if !ok {
		return -1
	}
	t, ok := v.Index(dst)
	if !ok {
		return -1
	}
	dist := bfsFlat(v, s, Out)
	return int(dist[t])
}

// WeightFunc supplies the length of the edge src->dst; it must be
// non-negative for Dijkstra.
type WeightFunc func(src, dst int64) float64

// Dijkstra computes weighted single-source shortest paths from src
// following out-edges, with edge lengths from w. Unreachable nodes are
// absent from the result. It returns nil if src is not a node.
func Dijkstra(g *graph.Directed, src int64, w WeightFunc) map[int64]float64 {
	return DijkstraView(graph.BuildView(g), src, w)
}

// DijkstraView is Dijkstra over a prebuilt CSR view.
func DijkstraView(v *graph.View, src int64, w WeightFunc) map[int64]float64 {
	s, ok := v.Index(src)
	if !ok {
		return nil
	}
	n := v.NumNodes()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[s] = 0
	pq := &distHeap{{s, 0}}
	for pq.Len() > 0 {
		top := heap.Pop(pq).(distEntry)
		u := top.node
		if top.dist > dist[u] {
			continue // stale entry
		}
		for _, x := range v.Out(u) {
			nd := dist[u] + w(v.ID(u), v.ID(x))
			if nd < dist[x] {
				dist[x] = nd
				heap.Push(pq, distEntry{x, nd})
			}
		}
	}
	out := make(map[int64]float64)
	for i, dv := range dist {
		if !math.IsInf(dv, 1) {
			out[v.ID(int32(i))] = dv
		}
	}
	return out
}

type distEntry struct {
	node int32
	dist float64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
