package algo

import (
	"testing"

	"ringo/internal/graph"
)

func pathGraph(n int) *graph.Directed {
	g := graph.NewDirected()
	for i := 0; i < n-1; i++ {
		g.AddEdge(int64(i), int64(i+1))
	}
	return g
}

func TestBFSDistancesOnPath(t *testing.T) {
	g := pathGraph(6)
	dist := BFS(g, 0, Out)
	for i := 0; i < 6; i++ {
		if dist[int64(i)] != i {
			t.Fatalf("dist[%d] = %d", i, dist[int64(i)])
		}
	}
	// Following out-edges, nothing reaches backwards.
	back := BFS(g, 5, Out)
	if len(back) != 1 || back[5] != 0 {
		t.Fatalf("backwards BFS = %v", back)
	}
	// In direction reverses reachability.
	in := BFS(g, 5, In)
	if in[0] != 5 {
		t.Fatalf("in-BFS dist to 0 = %d", in[0])
	}
	// Both directions reach everything from the middle.
	both := BFS(g, 3, Both)
	if len(both) != 6 {
		t.Fatalf("both-BFS reached %d nodes", len(both))
	}
}

func TestBFSMissingSource(t *testing.T) {
	if BFS(pathGraph(3), 99, Out) != nil {
		t.Fatal("BFS from missing node returned non-nil")
	}
}

func TestSSSPUnweightedMatchesBFS(t *testing.T) {
	g := pathGraph(5)
	g.AddEdge(0, 3) // shortcut
	dist := SSSPUnweighted(g, 0)
	if dist[3] != 1 || dist[4] != 2 {
		t.Fatalf("shortcut distances = %v", dist)
	}
}

func TestShortestPath(t *testing.T) {
	g := pathGraph(4)
	if d := ShortestPath(g, 0, 3); d != 3 {
		t.Fatalf("ShortestPath = %d", d)
	}
	if d := ShortestPath(g, 3, 0); d != -1 {
		t.Fatalf("unreachable = %d, want -1", d)
	}
	if d := ShortestPath(g, 99, 0); d != -1 {
		t.Fatalf("missing src = %d", d)
	}
	if d := ShortestPath(g, 0, 99); d != -1 {
		t.Fatalf("missing dst = %d", d)
	}
}

func TestDijkstraPrefersLightPath(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2) // weight 10 (direct)
	g.AddEdge(1, 3) // weight 1
	g.AddEdge(3, 2) // weight 1
	w := func(src, dst int64) float64 {
		if src == 1 && dst == 2 {
			return 10
		}
		return 1
	}
	dist := Dijkstra(g, 1, w)
	if !approxEq(dist[2], 2, 1e-12) {
		t.Fatalf("dist[2] = %v, want 2 (via node 3)", dist[2])
	}
	if !approxEq(dist[3], 1, 1e-12) {
		t.Fatalf("dist[3] = %v", dist[3])
	}
}

func TestDijkstraUnreachableAbsent(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddNode(3)
	dist := Dijkstra(g, 1, func(a, b int64) float64 { return 1 })
	if _, ok := dist[3]; ok {
		t.Fatal("unreachable node present in Dijkstra result")
	}
	if Dijkstra(g, 99, func(a, b int64) float64 { return 1 }) != nil {
		t.Fatal("Dijkstra from missing node returned non-nil")
	}
}

func TestDijkstraMatchesBFSWithUnitWeights(t *testing.T) {
	g := pathGraph(8)
	g.AddEdge(2, 6)
	unit := func(a, b int64) float64 { return 1 }
	dd := Dijkstra(g, 0, unit)
	bd := BFS(g, 0, Out)
	for id, hops := range bd {
		if !approxEq(dd[id], float64(hops), 1e-12) {
			t.Fatalf("node %d: dijkstra %v != bfs %d", id, dd[id], hops)
		}
	}
}

func TestWCCTwoComponents(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(10, 11)
	g.AddNode(99)
	c := WCC(g)
	if c.Count != 3 {
		t.Fatalf("WCC count = %d, want 3", c.Count)
	}
	if c.MaxSize != 3 {
		t.Fatalf("WCC max size = %d, want 3", c.MaxSize)
	}
	if c.Label[1] != c.Label[3] || c.Label[1] == c.Label[10] {
		t.Fatalf("labels = %v", c.Label)
	}
}

func TestWCCDirectionIgnored(t *testing.T) {
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(3, 2) // converging arrows still connect weakly
	c := WCC(g)
	if c.Count != 1 {
		t.Fatalf("WCC count = %d, want 1", c.Count)
	}
}

func TestSCCCycleAndDAG(t *testing.T) {
	cyc := cycleGraph(5)
	c := SCC(cyc)
	if c.Count != 1 || c.MaxSize != 5 {
		t.Fatalf("cycle SCC = (%d comps, max %d)", c.Count, c.MaxSize)
	}
	dag := pathGraph(5)
	c = SCC(dag)
	if c.Count != 5 || c.MaxSize != 1 {
		t.Fatalf("path SCC = (%d comps, max %d)", c.Count, c.MaxSize)
	}
}

func TestSCCTextbookExample(t *testing.T) {
	// Components: {1,2,3}, {4,5}, {6}.
	g := graph.NewDirected()
	for _, e := range [][2]int64{
		{1, 2}, {2, 3}, {3, 1}, // cycle A
		{3, 4},
		{4, 5}, {5, 4}, // cycle B
		{5, 6},
	} {
		g.AddEdge(e[0], e[1])
	}
	c := SCC(g)
	if c.Count != 3 {
		t.Fatalf("SCC count = %d, want 3", c.Count)
	}
	if c.Label[1] != c.Label[2] || c.Label[2] != c.Label[3] {
		t.Fatal("cycle A split")
	}
	if c.Label[4] != c.Label[5] {
		t.Fatal("cycle B split")
	}
	if c.Label[1] == c.Label[4] || c.Label[4] == c.Label[6] || c.Label[1] == c.Label[6] {
		t.Fatal("distinct components merged")
	}
	if c.MaxSize != 3 {
		t.Fatalf("max size = %d", c.MaxSize)
	}
}

func TestSCCDeepGraphNoStackOverflow(t *testing.T) {
	// A 200k-node path would overflow a recursive Tarjan.
	g := pathGraph(200_000)
	c := SCC(g)
	if c.Count != 200_000 {
		t.Fatalf("deep path SCC count = %d", c.Count)
	}
}

func TestLargestWCC(t *testing.T) {
	g := graph.NewDirected()
	// Component A: 4 nodes; component B: 2 nodes; isolated: 1.
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 4)
	g.AddEdge(10, 11)
	g.AddNode(99)
	sub := LargestWCC(g)
	if sub.NumNodes() != 4 {
		t.Fatalf("largest WCC nodes = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 3 {
		t.Fatalf("largest WCC edges = %d", sub.NumEdges())
	}
	if sub.HasNode(10) || sub.HasNode(99) {
		t.Fatal("other components leaked")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWCCUndirected(t *testing.T) {
	g := graph.NewUndirected()
	g.AddEdge(1, 2)
	g.AddEdge(3, 4)
	c := WCCUndirected(g)
	if c.Count != 2 || c.MaxSize != 2 {
		t.Fatalf("undirected WCC = (%d,%d)", c.Count, c.MaxSize)
	}
}
