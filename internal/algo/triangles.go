package algo

import (
	"ringo/internal/graph"
	"ringo/internal/par"
)

// Triangles counts undirected triangles in parallel. It is the algorithm
// benchmarked in Table 3: a straightforward edge-iterator with sorted
// adjacency-vector intersection ("similar to [6]" in the paper),
// parallelized by splitting the node range across workers. Each triangle
// {a,b,c} with a<b<c is counted exactly once, at its smallest-index vertex.
func Triangles(g *graph.Undirected) int64 {
	return TrianglesView(graph.BuildUView(g))
}

// TrianglesView is Triangles over a prebuilt CSR view.
func TrianglesView(v *graph.UView) int64 {
	defer report(timed("triangles"))
	return par.SumInt(v.NumNodes(), func(lo, hi int) int64 {
		var count int64
		for u := lo; u < hi; u++ {
			count += trianglesAt(v, int32(u))
		}
		return count
	})
}

// TrianglesSeq is the single-threaded triangle count (parallel-vs-
// sequential ablation baseline).
func TrianglesSeq(g *graph.Undirected) int64 {
	return TrianglesSeqView(graph.BuildUView(g))
}

// TrianglesSeqView is TrianglesSeq over a prebuilt CSR view.
func TrianglesSeqView(v *graph.UView) int64 {
	var count int64
	for u := 0; u < v.NumNodes(); u++ {
		count += trianglesAt(v, int32(u))
	}
	return count
}

// trianglesAt counts triangles whose smallest dense index is u: for every
// neighbor x > u, the common neighbors w of u and x with w > x each close
// one triangle. Adjacency vectors are sorted, so common neighbors come from
// a linear merge.
func trianglesAt(v *graph.UView, u int32) int64 {
	adjU := v.Adj(u)
	// Skip to neighbors > u.
	i := upperBound(adjU, u)
	var count int64
	for ; i < len(adjU); i++ {
		x := adjU[i]
		count += countCommonAbove(adjU, v.Adj(x), x)
	}
	return count
}

// countCommonAbove counts values present in both sorted slices that are
// strictly greater than floor.
func countCommonAbove(a, b []int32, floor int32) int64 {
	i := upperBound(a, floor)
	j := upperBound(b, floor)
	var count int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}

// upperBound returns the index of the first element > v in sorted a.
func upperBound(a []int32, v int32) int {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// NodeTriangles returns, for every node, the number of triangles the node
// participates in (each triangle counted at all three corners).
func NodeTriangles(g *graph.Undirected) map[int64]int64 {
	return NodeTrianglesView(graph.BuildUView(g))
}

// NodeTrianglesView is NodeTriangles over a prebuilt CSR view.
func NodeTrianglesView(v *graph.UView) map[int64]int64 {
	n := v.NumNodes()
	counts := make([]int64, n)
	// Sequential accumulation: each triangle updates three corners, which
	// would race under the node-partitioned scheme.
	for u := 0; u < n; u++ {
		adjU := v.Adj(int32(u))
		i := upperBound(adjU, int32(u))
		for ; i < len(adjU); i++ {
			x := adjU[i]
			forEachCommonAbove(adjU, v.Adj(x), x, func(w int32) {
				counts[u]++
				counts[x]++
				counts[w]++
			})
		}
	}
	out := make(map[int64]int64, n)
	for i, id := range v.IDs() {
		out[id] = counts[i]
	}
	return out
}

func forEachCommonAbove(a, b []int32, floor int32, fn func(w int32)) {
	i := upperBound(a, floor)
	j := upperBound(b, floor)
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}

// ClusteringCoefficient returns the average local clustering coefficient:
// for each node, the fraction of its neighbor pairs that are connected,
// averaged over nodes with degree >= 2 contributing their ratio and others
// contributing 0, as in SNAP's GetClustCf.
func ClusteringCoefficient(g *graph.Undirected) float64 {
	return ClusteringCoefficientView(graph.BuildUView(g))
}

// ClusteringCoefficientView is ClusteringCoefficient over a prebuilt CSR
// view.
func ClusteringCoefficientView(v *graph.UView) float64 {
	defer report(timed("clustering"))
	n := v.NumNodes()
	if n == 0 {
		return 0
	}
	total := par.Reduce(n, 0.0, func(lo, hi int) float64 {
		var s float64
		for u := lo; u < hi; u++ {
			adjU := v.Adj(int32(u))
			deg := 0
			for _, x := range adjU {
				if x != int32(u) {
					deg++
				}
			}
			if deg < 2 {
				continue
			}
			var closed int64
			for _, x := range adjU {
				if x == int32(u) {
					continue
				}
				closed += countCommonExcluding(adjU, v.Adj(x), int32(u), x)
			}
			// closed counted each connected pair twice (once per order).
			s += float64(closed) / float64(deg*(deg-1))
		}
		return s
	}, func(a, b float64) float64 { return a + b })
	return total / float64(n)
}

// countCommonExcluding counts common elements of the two sorted slices,
// excluding the two endpoint values themselves (self-loop guard).
func countCommonExcluding(a, b []int32, x, y int32) int64 {
	i, j := 0, 0
	var count int64
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if a[i] != x && a[i] != y {
				count++
			}
			i++
			j++
		}
	}
	return count
}
