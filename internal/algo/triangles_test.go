package algo

import (
	"testing"
	"testing/quick"

	"ringo/internal/graph"
)

func completeUndirected(n int) *graph.Undirected {
	g := graph.NewUndirected()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(int64(i), int64(j))
		}
	}
	return g
}

func TestTrianglesKnownCounts(t *testing.T) {
	cases := []struct {
		g    *graph.Undirected
		want int64
		name string
	}{
		{completeUndirected(3), 1, "K3"},
		{completeUndirected(4), 4, "K4"},
		{completeUndirected(5), 10, "K5"},
		{completeUndirected(6), 20, "K6"},
	}
	for _, c := range cases {
		if got := Triangles(c.g); got != c.want {
			t.Fatalf("%s: Triangles = %d, want %d", c.name, got, c.want)
		}
		if got := TrianglesSeq(c.g); got != c.want {
			t.Fatalf("%s: TrianglesSeq = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestTrianglesPathHasNone(t *testing.T) {
	g := graph.NewUndirected()
	for i := int64(0); i < 10; i++ {
		g.AddEdge(i, i+1)
	}
	if got := Triangles(g); got != 0 {
		t.Fatalf("path triangles = %d", got)
	}
}

func TestTrianglesIgnoreSelfLoops(t *testing.T) {
	g := completeUndirected(3)
	g.AddEdge(0, 0)
	if got := Triangles(g); got != 1 {
		t.Fatalf("triangles with self-loop = %d, want 1", got)
	}
}

func TestNodeTrianglesSumIsThreeTimesTotal(t *testing.T) {
	g := completeUndirected(5)
	g.AddEdge(10, 11) // isolated edge, no triangles
	per := NodeTriangles(g)
	var sum int64
	for _, c := range per {
		sum += c
	}
	total := Triangles(g)
	if sum != 3*total {
		t.Fatalf("sum of per-node counts %d != 3×%d", sum, total)
	}
	if per[10] != 0 || per[11] != 0 {
		t.Fatal("isolated edge nodes have triangles")
	}
	// In K5, every node is in C(4,2) = 6 triangles.
	if per[0] != 6 {
		t.Fatalf("K5 node triangle count = %d, want 6", per[0])
	}
}

// brute-force reference: count triples with all three edges.
func bruteTriangles(g *graph.Undirected) int64 {
	nodes := g.Nodes()
	var count int64
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if !g.HasEdge(nodes[i], nodes[j]) {
				continue
			}
			for k := j + 1; k < len(nodes); k++ {
				if g.HasEdge(nodes[j], nodes[k]) && g.HasEdge(nodes[i], nodes[k]) {
					count++
				}
			}
		}
	}
	return count
}

func TestTrianglesMatchBruteForceProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		g := graph.NewUndirected()
		for _, e := range edges {
			g.AddEdge(int64(e[0]%12), int64(e[1]%12))
		}
		want := bruteTriangles(g)
		return Triangles(g) == want && TrianglesSeq(g) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestClusteringCoefficientComplete(t *testing.T) {
	g := completeUndirected(6)
	if cc := ClusteringCoefficient(g); !approxEq(cc, 1, 1e-12) {
		t.Fatalf("clustering of K6 = %v, want 1", cc)
	}
}

func TestClusteringCoefficientStarIsZero(t *testing.T) {
	g := graph.NewUndirected()
	for i := int64(1); i <= 6; i++ {
		g.AddEdge(0, i)
	}
	if cc := ClusteringCoefficient(g); cc != 0 {
		t.Fatalf("clustering of star = %v", cc)
	}
}

func TestClusteringCoefficientTrianglePlusTail(t *testing.T) {
	// Triangle {0,1,2} plus tail 2-3. Nodes 0,1 have cc 1; node 2 has
	// cc = 1/3 (one of three neighbor pairs connected); node 3 deg 1 → 0.
	g := graph.NewUndirected()
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	g.AddEdge(2, 3)
	want := (1.0 + 1.0 + 1.0/3.0 + 0.0) / 4.0
	if cc := ClusteringCoefficient(g); !approxEq(cc, want, 1e-12) {
		t.Fatalf("clustering = %v, want %v", cc, want)
	}
}

func TestClusteringEmptyGraph(t *testing.T) {
	if cc := ClusteringCoefficient(graph.NewUndirected()); cc != 0 {
		t.Fatalf("clustering of empty graph = %v", cc)
	}
}
