// Package bitmap provides the dense bitset that carries selection vectors
// through Ringo's vectorized table execution (§2.3 of Perez et al., SIGMOD
// 2015, the select benchmarked in Table 4). A Bitmap holds one bit per table
// row in a flat []uint64; predicate leaves fill it column-at-a-time, boolean
// connectives combine whole words (64 rows per instruction instead of a
// closure call per row), and the two-pass parallel row copy consumes it via
// popcounts and trailing-zero iteration.
//
// The invariant throughout: bits at positions >= Len() in the last word are
// always zero. Every mutating operation maintains it, so Count and the
// complement (Not) need no per-call masking of earlier state.
package bitmap

import (
	"fmt"
	"math/bits"

	"ringo/internal/par"
)

// WordBits is the number of rows covered by one storage word.
const WordBits = 64

// Bitmap is a fixed-length dense bitset. The zero value is an empty bitmap
// of length 0; use New for a sized one. A Bitmap is safe for concurrent
// readers; concurrent writers need external synchronization (the parallel
// fill helpers write disjoint words and are safe).
type Bitmap struct {
	n     int
	words []uint64
}

// New returns an all-zeros bitmap of n bits.
func New(n int) *Bitmap {
	if n < 0 {
		panic("bitmap: negative length")
	}
	return &Bitmap{n: n, words: make([]uint64, (n+WordBits-1)/WordBits)}
}

// Len reports the bitmap's length in bits.
func (b *Bitmap) Len() int { return b.n }

// Words exposes the backing words. Callers writing to them must keep the
// tail-bits-zero invariant; the kernel fill loops in internal/table do.
func (b *Bitmap) Words() []uint64 { return b.words }

// Bytes reports the heap size of the backing array, for cache accounting.
func (b *Bitmap) Bytes() int64 { return int64(cap(b.words)) * 8 }

// Set sets bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << uint(i&63) }

// Get reports bit i.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<uint(i&63)) != 0 }

// tailMask returns the valid-bit mask for the last word, or ^0 when the
// length is word-aligned (or zero words exist).
func (b *Bitmap) tailMask() uint64 {
	if r := b.n & 63; r != 0 {
		return (1 << uint(r)) - 1
	}
	return ^uint64(0)
}

// Reset zeroes every bit.
func (b *Bitmap) Reset() {
	clear(b.words)
}

// SetAll sets every bit in [0, Len).
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	if len(b.words) > 0 {
		b.words[len(b.words)-1] &= b.tailMask()
	}
}

func (b *Bitmap) sameLen(o *Bitmap) {
	if b.n != o.n {
		panic(fmt.Sprintf("bitmap: length mismatch %d vs %d", b.n, o.n))
	}
}

// And intersects b with o in place. Panics on length mismatch.
func (b *Bitmap) And(o *Bitmap) {
	b.sameLen(o)
	bw, ow := b.words, o.words
	par.For(len(bw), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			bw[i] &= ow[i]
		}
	})
}

// Or unions b with o in place. Panics on length mismatch.
func (b *Bitmap) Or(o *Bitmap) {
	b.sameLen(o)
	bw, ow := b.words, o.words
	par.For(len(bw), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			bw[i] |= ow[i]
		}
	})
}

// AndNot removes o's bits from b in place (b &^= o). Panics on length
// mismatch.
func (b *Bitmap) AndNot(o *Bitmap) {
	b.sameLen(o)
	bw, ow := b.words, o.words
	par.For(len(bw), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			bw[i] &^= ow[i]
		}
	})
}

// Not complements b in place, masking the tail so bits past Len stay zero.
func (b *Bitmap) Not() {
	bw := b.words
	par.For(len(bw), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			bw[i] = ^bw[i]
		}
	})
	if len(bw) > 0 {
		bw[len(bw)-1] &= b.tailMask()
	}
}

// Count reports the number of set bits, popcounting words in parallel.
func (b *Bitmap) Count() int {
	return int(par.SumInt(len(b.words), func(lo, hi int) int64 {
		var c int64
		for _, w := range b.words[lo:hi] {
			c += int64(bits.OnesCount64(w))
		}
		return c
	}))
}

// CountRange reports the number of set bits in [lo, hi). It is the per-range
// counting pass of the two-pass parallel selection copy.
func (b *Bitmap) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	if wLo == wHi {
		m := (^uint64(0) << uint(lo&63)) & maskUpto(hi-1)
		return bits.OnesCount64(b.words[wLo] & m)
	}
	c := bits.OnesCount64(b.words[wLo] & (^uint64(0) << uint(lo&63)))
	for w := wLo + 1; w < wHi; w++ {
		c += bits.OnesCount64(b.words[w])
	}
	c += bits.OnesCount64(b.words[wHi] & maskUpto(hi-1))
	return c
}

// maskUpto returns a mask of bits [0, (i&63)] — every bit up to and
// including position i within its word.
func maskUpto(i int) uint64 {
	r := uint(i & 63)
	if r == 63 {
		return ^uint64(0)
	}
	return (1 << (r + 1)) - 1
}

// Range calls fn for every set bit in ascending order.
func (b *Bitmap) Range(fn func(i int)) {
	b.RangeBits(0, b.n, fn)
}

// RangeBits calls fn for every set bit in [lo, hi) in ascending order,
// iterating word-at-a-time with trailing-zero extraction.
func (b *Bitmap) RangeBits(lo, hi int, fn func(i int)) {
	if lo >= hi {
		return
	}
	wLo, wHi := lo>>6, (hi-1)>>6
	for wi := wLo; wi <= wHi; wi++ {
		w := b.words[wi]
		if wi == wLo {
			w &= ^uint64(0) << uint(lo&63)
		}
		if wi == wHi {
			w &= maskUpto(hi - 1)
		}
		base := wi << 6
		for w != 0 {
			fn(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// ParFill partitions the backing words into contiguous ranges and runs
// fill(loWord, hiWord) on each in parallel. fill must write only words in
// [loWord, hiWord) and maintain the tail-bits-zero invariant for the last
// word; the typed predicate kernels do both by construction.
func (b *Bitmap) ParFill(fill func(loWord, hiWord int)) {
	par.For(len(b.words), fill)
}

// Clone returns a deep copy.
func (b *Bitmap) Clone() *Bitmap {
	return &Bitmap{n: b.n, words: append([]uint64(nil), b.words...)}
}
