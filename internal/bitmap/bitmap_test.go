package bitmap

import (
	"math/rand"
	"testing"
)

// refBitmap mirrors a Bitmap as a []bool, the oracle for the word-level ops.
func randomPair(n int, seed int64) (*Bitmap, []bool) {
	rng := rand.New(rand.NewSource(seed))
	b := New(n)
	ref := make([]bool, n)
	for i := 0; i < n; i++ {
		if rng.Intn(2) == 1 {
			b.Set(i)
			ref[i] = true
		}
	}
	return b, ref
}

func checkAgainst(t *testing.T, b *Bitmap, ref []bool, ctx string) {
	t.Helper()
	if b.Len() != len(ref) {
		t.Fatalf("%s: len = %d, want %d", ctx, b.Len(), len(ref))
	}
	want := 0
	for i, r := range ref {
		if b.Get(i) != r {
			t.Fatalf("%s: bit %d = %v, want %v", ctx, i, b.Get(i), r)
		}
		if r {
			want++
		}
	}
	if got := b.Count(); got != want {
		t.Fatalf("%s: Count = %d, want %d", ctx, got, want)
	}
	// Tail invariant: bits past Len are zero in the last word.
	if w := b.Words(); len(w) > 0 && b.Len()&63 != 0 {
		if w[len(w)-1]&^((1<<uint(b.Len()&63))-1) != 0 {
			t.Fatalf("%s: tail bits past Len are set", ctx)
		}
	}
}

func TestSetGetClear(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 130, 1000} {
		b := New(n)
		if b.Count() != 0 {
			t.Fatalf("n=%d: fresh bitmap has %d set bits", n, b.Count())
		}
		for i := 0; i < n; i += 7 {
			b.Set(i)
		}
		for i := 0; i < n; i++ {
			if b.Get(i) != (i%7 == 0) {
				t.Fatalf("n=%d: bit %d wrong", n, i)
			}
		}
		for i := 0; i < n; i += 7 {
			b.Clear(i)
		}
		if b.Count() != 0 {
			t.Fatalf("n=%d: Clear left %d bits", n, b.Count())
		}
	}
}

func TestWordOpsAgainstReference(t *testing.T) {
	for _, n := range []int{1, 64, 65, 127, 128, 500, 4096 + 17} {
		a, ra := randomPair(n, int64(n))
		c, rc := randomPair(n, int64(n)*31+7)

		and := a.Clone()
		and.And(c)
		wantAnd := make([]bool, n)
		for i := range wantAnd {
			wantAnd[i] = ra[i] && rc[i]
		}
		checkAgainst(t, and, wantAnd, "And")

		or := a.Clone()
		or.Or(c)
		wantOr := make([]bool, n)
		for i := range wantOr {
			wantOr[i] = ra[i] || rc[i]
		}
		checkAgainst(t, or, wantOr, "Or")

		andNot := a.Clone()
		andNot.AndNot(c)
		wantAndNot := make([]bool, n)
		for i := range wantAndNot {
			wantAndNot[i] = ra[i] && !rc[i]
		}
		checkAgainst(t, andNot, wantAndNot, "AndNot")

		not := a.Clone()
		not.Not()
		wantNot := make([]bool, n)
		for i := range wantNot {
			wantNot[i] = !ra[i]
		}
		checkAgainst(t, not, wantNot, "Not")

		// Double complement restores the original, including the tail.
		not.Not()
		checkAgainst(t, not, ra, "Not twice")
	}
}

func TestSetAllReset(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 200} {
		b := New(n)
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("n=%d: SetAll counts %d", n, b.Count())
		}
		b.Not()
		if b.Count() != 0 {
			t.Fatalf("n=%d: complement of all-ones counts %d", n, b.Count())
		}
		b.SetAll()
		b.Reset()
		if b.Count() != 0 {
			t.Fatalf("n=%d: Reset left %d bits", n, b.Count())
		}
	}
}

func TestCountRange(t *testing.T) {
	n := 513
	b, ref := randomPair(n, 42)
	for _, r := range [][2]int{{0, 0}, {0, n}, {0, 1}, {63, 65}, {64, 128}, {1, 512}, {100, 101}, {511, 513}, {200, 150}} {
		lo, hi := r[0], r[1]
		want := 0
		for i := lo; i < hi && i < n; i++ {
			if ref[i] {
				want++
			}
		}
		if got := b.CountRange(lo, hi); got != want {
			t.Fatalf("CountRange(%d,%d) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestRangeIteration(t *testing.T) {
	n := 300
	b, ref := randomPair(n, 7)
	var got []int
	b.Range(func(i int) { got = append(got, i) })
	var want []int
	for i, r := range ref {
		if r {
			want = append(want, i)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("Range yielded %d bits, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("Range[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	// Sub-range iteration respects both bounds.
	got = got[:0]
	b.RangeBits(65, 129, func(i int) { got = append(got, i) })
	for _, i := range got {
		if i < 65 || i >= 129 {
			t.Fatalf("RangeBits(65,129) yielded out-of-range bit %d", i)
		}
	}
	count := 0
	for i := 65; i < 129; i++ {
		if ref[i] {
			count++
		}
	}
	if len(got) != count {
		t.Fatalf("RangeBits(65,129) yielded %d bits, want %d", len(got), count)
	}
}

func TestParFill(t *testing.T) {
	n := 10_000
	b := New(n)
	// Fill even bits via the parallel word-range helper.
	b.ParFill(func(lo, hi int) {
		for w := lo; w < hi; w++ {
			base := w << 6
			end := base + WordBits
			if end > n {
				end = n
			}
			var word uint64
			for i := base; i < end; i++ {
				if i%2 == 0 {
					word |= 1 << uint(i-base)
				}
			}
			b.Words()[w] = word
		}
	})
	if got, want := b.Count(), (n+1)/2; got != want {
		t.Fatalf("ParFill count = %d, want %d", got, want)
	}
	for i := 0; i < n; i++ {
		if b.Get(i) != (i%2 == 0) {
			t.Fatalf("ParFill bit %d wrong", i)
		}
	}
}

func TestLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And on mismatched lengths did not panic")
		}
	}()
	New(10).And(New(11))
}
