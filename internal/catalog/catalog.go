// Package catalog embeds a reconstruction of the Stanford Large Network
// Dataset Collection as of 2015 — the 71 public graphs whose size
// distribution is Table 1 of the Ringo paper ("90% of graphs have less than
// 100M edges. Only one graph has more than 1B edges."). Edge counts for the
// well-known datasets are their published values; a few long-tail entries
// are approximate reconstructions, which does not affect the binned
// statistics the experiment reports.
package catalog

// Dataset is one graph of the collection.
type Dataset struct {
	Name  string
	Edges int64
}

// Collection lists the 71 graphs.
var Collection = []Dataset{
	// < 0.1M edges (16 graphs).
	{"ca-GrQc", 14_496},
	{"as-735", 13_895},
	{"p2p-Gnutella08", 20_777},
	{"oregon1-010331", 22_002},
	{"email-Eu-core", 25_571},
	{"ca-HepTh", 25_998},
	{"p2p-Gnutella09", 26_013},
	{"oregon2-010331", 31_180},
	{"p2p-Gnutella06", 31_525},
	{"p2p-Gnutella05", 31_839},
	{"p2p-Gnutella04", 39_994},
	{"p2p-Gnutella25", 54_705},
	{"p2p-Gnutella24", 65_369},
	{"ego-Facebook", 88_234},
	{"p2p-Gnutella30", 88_328},
	{"ca-CondMat", 93_497},
	// 0.1M – 1M edges (25 graphs).
	{"wiki-Vote", 103_689},
	{"wiki-Elec", 103_663},
	{"ca-HepPh", 118_521},
	{"p2p-Gnutella31", 147_892},
	{"wiki-RfA", 179_418},
	{"email-Enron", 183_831},
	{"ca-AstroPh", 198_110},
	{"loc-Brightkite", 214_078},
	{"cit-HepTh", 352_807},
	{"act-mooc", 411_749},
	{"email-EuAll", 420_045},
	{"cit-HepPh", 421_578},
	{"sx-mathoverflow", 506_550},
	{"soc-Epinions1", 508_837},
	{"soc-sign-Slashdot081106", 545_671},
	{"soc-sign-Slashdot090216", 548_552},
	{"soc-sign-Slashdot090221", 549_202},
	{"higgs-activity-time", 563_069},
	{"soc-sign-epinions", 841_372},
	{"soc-RedditHyperlinks", 858_490},
	{"soc-Slashdot0811", 905_468},
	{"sx-superuser", 924_886},
	{"com-Amazon", 925_872},
	{"soc-Slashdot0902", 948_464},
	{"loc-Gowalla", 950_327},
	// 1M – 10M edges (17 graphs).
	{"com-DBLP", 1_049_866},
	{"amazon0302", 1_234_877},
	{"twitter-combined", 1_342_310},
	{"web-NotreDame", 1_497_134},
	{"roadNet-PA", 1_541_898},
	{"roadNet-TX", 1_921_660},
	{"web-Stanford", 2_312_497},
	{"roadNet-CA", 2_766_607},
	{"com-Youtube", 2_987_624},
	{"amazon0312", 3_200_440},
	{"amazon0505", 3_356_824},
	{"amazon0601", 3_387_388},
	{"youtube-links", 4_945_382},
	{"wiki-Talk", 5_021_410},
	{"web-Google", 5_105_039},
	{"flickr-links", 5_801_442},
	{"web-BerkStan", 7_600_595},
	// 10M – 100M edges (7 graphs).
	{"as-Skitter", 11_095_298},
	{"gplus-combined", 13_673_453},
	{"cit-Patents", 16_518_948},
	{"wiki-topcats", 28_511_807},
	{"soc-Pokec", 30_622_564},
	{"com-LiveJournal", 34_681_189},
	{"soc-LiveJournal1", 68_993_773},
	// 100M – 1B edges (5 graphs).
	{"com-Orkut", 117_185_083},
	{"soc-sinaweibo", 261_321_071},
	{"web-uk-2002", 298_113_762},
	{"wiki-en-links", 378_142_420},
	{"memetracker-links", 418_237_269},
	// > 1B edges (1 graph).
	{"twitter-2010", 1_468_365_182},
}

// Bin is one row of the Table 1 histogram.
type Bin struct {
	Label  string
	Lo, Hi int64 // edge-count interval [Lo, Hi); Hi<=0 means unbounded
	Count  int
}

// Bins returns the Table 1 histogram of the collection: graphs bucketed by
// edge count at the paper's boundaries 0.1M, 1M, 10M, 100M and 1B.
func Bins() []Bin {
	bins := []Bin{
		{Label: "<0.1M", Lo: 0, Hi: 100_000},
		{Label: "0.1M - 1M", Lo: 100_000, Hi: 1_000_000},
		{Label: "1M - 10M", Lo: 1_000_000, Hi: 10_000_000},
		{Label: "10M - 100M", Lo: 10_000_000, Hi: 100_000_000},
		{Label: "100M - 1B", Lo: 100_000_000, Hi: 1_000_000_000},
		{Label: ">1B", Lo: 1_000_000_000, Hi: 0},
	}
	for _, d := range Collection {
		for i := range bins {
			if d.Edges >= bins[i].Lo && (bins[i].Hi <= 0 || d.Edges < bins[i].Hi) {
				bins[i].Count++
				break
			}
		}
	}
	return bins
}

// FractionBelow reports the fraction of the collection with fewer than
// limit edges (the paper's "90% of graphs have less than 100M edges").
func FractionBelow(limit int64) float64 {
	n := 0
	for _, d := range Collection {
		if d.Edges < limit {
			n++
		}
	}
	return float64(n) / float64(len(Collection))
}
