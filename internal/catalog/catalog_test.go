package catalog

import "testing"

func TestCollectionHas71Graphs(t *testing.T) {
	if len(Collection) != 71 {
		t.Fatalf("collection has %d graphs, want 71", len(Collection))
	}
	seen := map[string]bool{}
	for _, d := range Collection {
		if d.Name == "" || d.Edges <= 0 {
			t.Fatalf("bad entry %+v", d)
		}
		if seen[d.Name] {
			t.Fatalf("duplicate dataset %q", d.Name)
		}
		seen[d.Name] = true
	}
}

func TestBinsMatchTable1(t *testing.T) {
	// The exact histogram from Table 1 of the paper.
	want := map[string]int{
		"<0.1M":      16,
		"0.1M - 1M":  25,
		"1M - 10M":   17,
		"10M - 100M": 7,
		"100M - 1B":  5,
		">1B":        1,
	}
	total := 0
	for _, b := range Bins() {
		if b.Count != want[b.Label] {
			t.Fatalf("bin %q = %d graphs, want %d", b.Label, b.Count, want[b.Label])
		}
		total += b.Count
	}
	if total != 71 {
		t.Fatalf("bins cover %d graphs", total)
	}
}

func TestNinetyPercentBelow100M(t *testing.T) {
	f := FractionBelow(100_000_000)
	if f < 0.90 || f >= 0.95 {
		t.Fatalf("fraction below 100M edges = %.3f, paper reports about 90%%", f)
	}
}

func TestOnlyOneGraphAboveOneBillion(t *testing.T) {
	n := 0
	for _, d := range Collection {
		if d.Edges > 1_000_000_000 {
			n++
		}
	}
	if n != 1 {
		t.Fatalf("%d graphs above 1B edges, want 1", n)
	}
}
