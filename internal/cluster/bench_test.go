package cluster

// BenchmarkClusterReadFanout measures read-only throughput through the
// coordinator as the replica count grows — the in-process miniature of the
// curve cmd/ringo-loadtest publishes against real server processes. CI
// runs it with -benchtime 1x as a smoke test (the full pipeline: ship,
// verify, classify, fan out); locally, -benchtime and -cpu give the real
// shape. replicas=0 is the baseline: every read falls through to the
// primary, so the relative numbers read directly as fan-out gain.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
)

func BenchmarkClusterReadFanout(b *testing.B) {
	for _, n := range []int{0, 1, 2, 3} {
		b.Run(fmt.Sprintf("replicas=%d", n), func(b *testing.B) {
			coord, cts := newCluster(b, n, nil)
			if err := coord.Ship(); err != nil {
				b.Fatal(err)
			}
			body, _ := json.Marshal(map[string]string{"cmd": "top PR 5"})
			url := cts.URL + "/sessions/main/query"
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					resp, err := http.Post(url, "application/json", bytes.NewReader(body))
					if err != nil {
						b.Fatal(err)
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Fatalf("status %d", resp.StatusCode)
					}
				}
			})
		})
	}
}
