// Package cluster composes Ringo's existing primitives — deterministic,
// content-digested workspace snapshots (internal/core), the HTTP server's
// snapshot/restore/fingerprints endpoints (internal/server), and the verb
// table's ReadOnly/TouchesFiles classification (internal/repl) — into a
// small-cluster serving tier: one primary ringo-server that takes every
// mutation, N replica servers serving the same restored snapshot, and a
// Coordinator fronting them all behind the primary's own HTTP API.
//
// The paper scales Ringo up one big-memory machine; the coordinator scales
// it out the way the small-cluster line of work (GraphH; "Efficient
// Processing of Very Large Graphs in a Small Cluster") argues is the sweet
// spot: a handful of commodity nodes, each holding the whole workspace in
// memory, with read traffic fanned across them. Correctness rests on two
// invariants, each held by its own test:
//
//   - Fingerprint-verified shipping: a replica enters the read rotation
//     only after the coordinator restored the primary's snapshot into a
//     fresh session on it and read back a byte-equal workspace content
//     digest and per-object name#version fingerprints
//     (GET /sessions/{id}/fingerprints). A replica that restored different
//     bytes — corruption, a stray write, the wrong file — is rejected with
//     an error naming the first divergence and never serves a request.
//   - Classified routing: a request reaches a replica only when the verb
//     table proves every command in it is read-only and file-free
//     (ClassifyCmd/ClassifyScript); everything else routes to the primary,
//     and a successful mutation on the serving session invalidates every
//     replica and re-ships before the response returns, so a client that
//     writes then reads can never observe its write missing.
//
// Replica failure is absorbed, not surfaced: health checks with timeout,
// consecutive-failure threshold and exponential backoff drain dead
// replicas from rotation, a transport error during a read retries on the
// next healthy replica (the primary as last resort) without the client
// seeing a failure, and a recovered replica is re-shipped and re-verified
// before it serves again. docs/CLUSTER.md is the operator reference:
// topology, the ship protocol, routing rules, failure modes and the
// load-test harness; drift tests in docs_test.go keep it honest.
package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ringo/internal/obs"
	"ringo/internal/repl"
)

// Route is the coordinator's dispatch decision for one request: the
// primary (mutations, file access, anything unclassifiable) or the
// read-replica rotation.
type Route int

const (
	// RoutePrimary sends the request to the primary server.
	RoutePrimary Route = iota
	// RouteReplica fans the request across healthy, current replicas.
	RouteReplica
)

// ClassifyCmd routes one command line: replicas serve it only if the verb
// table says it neither mutates workspace state nor touches host files.
// The file carve-out matters even for read-only verbs — save or snapshot
// on a replica would write to the replica host's filesystem, not the
// operator's. Unknown commands classify read-only (they fail without side
// effects) and are deliberately still sent to a replica: the error comes
// back identical and the primary stays unburdened.
func ClassifyCmd(cmd string) Route {
	if repl.ReadOnly(cmd) && !repl.TouchesFiles(cmd) {
		return RouteReplica
	}
	return RoutePrimary
}

// ClassifyScript routes a parsed script batch the same way: every step
// must be read-only and file-free for the batch to run on a replica.
func ClassifyScript(s *repl.Script) Route {
	if s.ReadOnly() && s.TouchesFiles() < 0 {
		return RouteReplica
	}
	return RoutePrimary
}

// Config describes a cluster to coordinate.
type Config struct {
	// Primary is the base URL of the primary ringo-server — the one node
	// that takes mutations and is the source of every shipped snapshot.
	Primary string
	// Replicas are base URLs of the read-replica ringo-servers. They must
	// run with file IO allowed (the ship protocol restores from ShipPath)
	// and must share a filesystem with the primary (same host or a shared
	// mount), since snapshots ship as files, not request bodies.
	Replicas []string
	// Session is the replicated serving session id (default "main") — the
	// session the primary was warm-started into and the only one whose
	// read traffic fans out; requests for other sessions pass through to
	// the primary untouched.
	Session string
	// ShipPath is where the primary writes the snapshot each ship (default
	// ringo-ship-<session>.rngs under os.TempDir). The write is atomic
	// (temp file + rename), so replicas never restore a half-written ship.
	ShipPath string
	// AuthToken, when non-empty, is sent as a bearer token on every
	// upstream request. The coordinator itself does not authenticate its
	// clients; deploy it behind the same boundary as the servers.
	AuthToken string
	// Eventual selects the consistency mode for reads. False (default,
	// "strict") drains replicas from the read rotation the moment a
	// mutation lands until they are re-shipped, so every read reflects
	// every acknowledged write. True keeps replicas serving their last
	// verified snapshot while a re-ship is in flight — bounded staleness
	// in exchange for read throughput that mutations cannot stall.
	Eventual bool
	// Balance picks the replica selection policy: "least" (default,
	// least-loaded by in-flight requests, round-robin tie-break) or "rr"
	// (pure rotation).
	Balance string
	// HealthInterval is the probe period (default 2s); HealthTimeout
	// bounds each probe (default 1s). FailThreshold consecutive probe
	// failures mark a target down (default 2); while down, probes back off
	// exponentially up to MaxBackoff (default 30s).
	HealthInterval time.Duration
	HealthTimeout  time.Duration
	FailThreshold  int
	MaxBackoff     time.Duration
	// StatsTTL caches each target's GET /stats for the labeled cache
	// metrics on the coordinator's /metrics, so one scrape costs one
	// upstream fetch per target instead of one per family. 0 fetches
	// fresh every read.
	StatsTTL time.Duration
	// Metrics is the registry the coordinator records into (nil creates a
	// fresh one); Logger receives structured ship/health/routing records
	// (nil disables logging).
	Metrics *obs.Registry
	Logger  *slog.Logger
	// Client overrides the upstream HTTP client (tests, custom transports).
	Client *http.Client
}

// Defaults for Config zero values.
const (
	DefaultSession        = "main"
	DefaultHealthInterval = 2 * time.Second
	DefaultHealthTimeout  = time.Second
	DefaultFailThreshold  = 2
	DefaultMaxBackoff     = 30 * time.Second
)

// targetState is a target's position in the serving rotation.
type targetState int32

const (
	// stateHealthy targets answer probes; replicas additionally need a
	// verified ship at the current version to take reads.
	stateHealthy targetState = iota
	// stateDown targets failed FailThreshold consecutive probes or a live
	// request; they take no traffic until a probe succeeds, then re-ship.
	stateDown
	// stateRejected replicas restored a snapshot whose fingerprints did
	// not match the primary's. They take no traffic until a later ship
	// verifies clean; probes alone can never clear this state.
	stateRejected
)

func (s targetState) String() string {
	switch s {
	case stateHealthy:
		return "healthy"
	case stateDown:
		return "down"
	default:
		return "rejected"
	}
}

// target is one upstream server: the primary or a replica.
type target struct {
	name    string // metrics/label name: "primary", "r1", "r2", ...
	url     string // base URL, no trailing slash
	primary bool

	state    atomic.Int32  // targetState
	gen      atomic.Uint64 // last verified shipped version (replicas; 0 = never)
	inflight atomic.Int64  // proxied requests currently outstanding

	// Health-loop bookkeeping and the last error, guarded by mu. The
	// health goroutine is the only writer of the probe fields; lastErr is
	// also written on live-request failures and ship rejections.
	mu           sync.Mutex
	lastErr      string
	fails        int
	backoff      time.Duration
	backoffUntil time.Time
	// Recovery re-ship backoff for rejected replicas, also under mu. A
	// replica that keeps restoring the wrong bytes re-rejects on every
	// attempt; retrying it on each health tick would re-snapshot the
	// primary every interval forever, so recovery attempts space out
	// exponentially until a ship verifies clean (see checkAll).
	shipBackoff      time.Duration
	shipBackoffUntil time.Time
}

func (t *target) setErr(err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err == nil {
		t.lastErr = ""
		return
	}
	t.lastErr = err.Error()
}

func (t *target) errString() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.lastErr
}

// inShipBackoff reports whether a rejected replica's next recovery
// re-ship attempt is still deferred.
func (t *target) inShipBackoff() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Now().Before(t.shipBackoffUntil)
}

// scheduleShipBackoff defers the next recovery re-ship attempt, doubling
// the window from min up to max on each consecutive rejection.
func (t *target) scheduleShipBackoff(min, max time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.shipBackoff < min {
		t.shipBackoff = min
	} else if t.shipBackoff *= 2; t.shipBackoff > max {
		t.shipBackoff = max
	}
	t.shipBackoffUntil = time.Now().Add(t.shipBackoff)
}

func (t *target) clearShipBackoff() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.shipBackoff = 0
	t.shipBackoffUntil = time.Time{}
}

// Coordinator fronts one primary and N replicas behind the ringo-server
// HTTP API. It implements http.Handler; construct with New, call Start to
// begin health checking, Ship to run the initial snapshot distribution,
// and Close when done.
type Coordinator struct {
	cfg      Config
	client   *http.Client
	session  string
	shipPath string
	eventual bool
	balance  string

	primary  *target
	replicas []*target
	targets  []*target // primary + replicas, for iteration

	// version counts acknowledged mutations on the serving session (and
	// the bootstrap ship). A replica takes strict-mode reads only when its
	// verified ship generation equals this value.
	version atomic.Uint64
	// shipMu serializes ships: one snapshot-and-verify cycle at a time, in
	// mutation order.
	shipMu        sync.Mutex
	lastShip      atomic.Int64 // unix nanos of last successful ship
	lastShipBytes atomic.Int64

	rr atomic.Uint64 // rotation cursor for replica selection

	mux    *http.ServeMux
	reg    *obs.Registry
	logger *slog.Logger

	// Live metric instruments (see obs.go).
	mRetries      *obs.Counter
	mShips        *obs.Counter
	mShipFailures *obs.Counter
	mShipRejects  *obs.Counter
	mShipBytes    *obs.Counter
	mShipDur      *obs.Histogram

	statsCache sync.Map // *target -> *cachedStats

	stop      chan struct{}
	healthWG  sync.WaitGroup
	startOnce sync.Once
	closeOnce sync.Once
}

// New validates the topology and returns a ready-to-serve Coordinator.
// Health checking starts with Start; the initial ship is the caller's move
// (Ship), so a caller can decide whether a failed bootstrap is fatal.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Primary == "" {
		return nil, errors.New("cluster: no primary URL configured")
	}
	if cfg.Session == "" {
		cfg.Session = DefaultSession
	}
	if cfg.ShipPath == "" {
		cfg.ShipPath = filepath.Join(os.TempDir(), "ringo-ship-"+cfg.Session+".rngs")
	}
	if cfg.HealthInterval <= 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.HealthTimeout <= 0 {
		cfg.HealthTimeout = DefaultHealthTimeout
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	switch cfg.Balance {
	case "":
		cfg.Balance = "least"
	case "least", "rr":
	default:
		return nil, fmt.Errorf("cluster: balance must be \"least\" or \"rr\", got %q", cfg.Balance)
	}

	c := &Coordinator{
		cfg:      cfg,
		session:  cfg.Session,
		shipPath: cfg.ShipPath,
		eventual: cfg.Eventual,
		balance:  cfg.Balance,
		client:   cfg.Client,
		reg:      cfg.Metrics,
		logger:   cfg.Logger,
		stop:     make(chan struct{}),
	}
	if c.client == nil {
		c.client = &http.Client{}
	}
	if c.reg == nil {
		c.reg = obs.NewRegistry()
	}

	seen := map[string]bool{}
	addTarget := func(raw, name string, primary bool) error {
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return fmt.Errorf("cluster: target %s: %q is not an http(s) base URL", name, raw)
		}
		base := strings.TrimRight(raw, "/")
		// The same process serving as primary and replica would double
		// count every aggregated figure and turn "read from a replica"
		// into "read from the primary" silently.
		if seen[base] {
			return fmt.Errorf("cluster: duplicate target URL %q", base)
		}
		seen[base] = true
		t := &target{name: name, url: base, primary: primary}
		c.targets = append(c.targets, t)
		if primary {
			c.primary = t
		} else {
			c.replicas = append(c.replicas, t)
		}
		return nil
	}
	if err := addTarget(cfg.Primary, "primary", true); err != nil {
		return nil, err
	}
	for i, r := range cfg.Replicas {
		if err := addTarget(r, fmt.Sprintf("r%d", i+1), false); err != nil {
			return nil, err
		}
	}

	c.initObs()
	c.mux = http.NewServeMux()
	for pattern, handler := range c.routeTable() {
		c.mux.HandleFunc(pattern, handler)
	}
	return c, nil
}

// routeTable is the single source of truth for the coordinator's own API
// surface. Everything it does not claim falls through the "/" entry to the
// primary, so the coordinator is a drop-in front for the full ringo-server
// API. The drift test in docs_test.go checks docs/CLUSTER.md documents
// exactly the non-passthrough entries.
func (c *Coordinator) routeTable() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"POST /sessions/{id}/query":  c.handleQuery,
		"POST /sessions/{id}/script": c.handleScript,
		"POST /sessions/{id}/jobs":   c.handleJobs,
		"GET /cluster":               c.handleCluster,
		"POST /cluster/ship":         c.handleShipRequest,
		"GET /stats":                 c.handleStats,
		"GET /metrics":               c.handleMetrics,
		"/":                          c.handlePassthrough,
	}
}

// Start launches the health-check loop. Safe to call once; Close stops it.
func (c *Coordinator) Start() {
	c.startOnce.Do(func() {
		c.healthWG.Add(1)
		go c.healthLoop()
	})
}

// Close stops the health loop and waits for it to exit.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() { close(c.stop) })
	c.healthWG.Wait()
}

// Metrics exposes the coordinator's registry — what its GET /metrics
// serves — for embedding hosts and tests.
func (c *Coordinator) Metrics() *obs.Registry { return c.reg }

// Session returns the replicated serving session id.
func (c *Coordinator) Session() string { return c.session }

// Version returns the serving session's mutation version: the generation
// replicas must have verifiably restored to take strict-mode reads.
func (c *Coordinator) Version() uint64 { return c.version.Load() }

func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	c.mux.ServeHTTP(w, r)
}

// --- request routing ---

// handleQuery classifies one command and dispatches it: read-only,
// file-free commands on the serving session fan across replicas,
// everything else goes to the primary. A successful mutation bumps the
// version (instantly draining replicas from the strict read rotation) and
// re-ships before the response returns.
func (c *Coordinator) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	var req struct {
		Cmd string `json:"cmd"`
	}
	// An unparseable body forwards to the primary, which produces the
	// canonical 400 — the coordinator never invents its own error shape
	// for requests the underlying API already rejects.
	parsed := json.Unmarshal(body, &req) == nil
	if id == c.session && parsed && ClassifyCmd(req.Cmd) == RouteReplica {
		c.serveRead(w, r, body)
		return
	}
	invalidates := id == c.session && parsed && !repl.ReadOnly(req.Cmd)
	c.servePrimary(w, r, body, invalidates)
}

// handleScript is handleQuery for script batches: the whole batch must
// classify read-only and file-free to reach a replica.
func (c *Coordinator) handleScript(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	var req struct {
		Script string `json:"script"`
	}
	var script *repl.Script
	if json.Unmarshal(body, &req) == nil {
		script, _ = repl.ParseScript(req.Script) // nil on parse error: primary decides
	}
	if id == c.session && script != nil && ClassifyScript(script) == RouteReplica {
		c.serveRead(w, r, body)
		return
	}
	invalidates := id == c.session && script != nil && !script.ReadOnly()
	c.servePrimary(w, r, body, invalidates)
}

// handleJobs forwards async job submissions to the primary — job state
// lives where the job runs, and GET /jobs passes through to the primary —
// but refuses mutating jobs on the serving session: a job mutates at some
// unknowable later moment, after the coordinator has already answered, so
// there is no point at which it could re-ship without racing the job. The
// refusal names the alternative.
func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	if id == c.session {
		var req struct {
			Cmd    string `json:"cmd"`
			Script string `json:"script"`
		}
		if json.Unmarshal(body, &req) == nil {
			mutating := req.Cmd != "" && !repl.ReadOnly(req.Cmd)
			if !mutating && req.Script != "" {
				if s, err := repl.ParseScript(req.Script); err == nil {
					mutating = !s.ReadOnly()
				}
			}
			if mutating {
				writeError(w, http.StatusForbidden, fmt.Errorf(
					"mutating jobs are not allowed on replicated session %q: an async mutation would complete after the coordinator answered, bypassing snapshot re-ship and serving stale reads — run it synchronously via /query or /script, or submit it to the primary directly", c.session))
				return
			}
		}
	}
	c.servePrimary(w, r, body, false)
}

// handlePassthrough forwards everything the coordinator does not classify
// (session CRUD, job polling, snapshot/restore) to the primary. A
// successful non-GET scoped to the serving session — a restore, a
// delete — is treated as a mutation: version bump, re-ship. Scoping is by
// exact path segment, not raw prefix, so a sibling session like "main2"
// never invalidates "main"; POST /snapshot is exempt because it only
// writes a host file and leaves the workspace untouched.
func (c *Coordinator) handlePassthrough(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	base := "/sessions/" + c.session
	path := r.URL.Path
	sessionScoped := path == base || strings.HasPrefix(path, base+"/")
	invalidates := r.Method != http.MethodGet && r.Method != http.MethodHead &&
		sessionScoped && path != base+"/snapshot"
	c.servePrimary(w, r, body, invalidates)
}

// servePrimary forwards one request to the primary. When invalidates is
// set and the primary acknowledged the request, every replica is drained
// from the strict read rotation and a re-ship runs before the client gets
// its answer — the re-ship's own failures degrade routing (reads fall back
// to the primary), never the client's mutation.
func (c *Coordinator) servePrimary(w http.ResponseWriter, r *http.Request, body []byte, invalidates bool) {
	resp, err := c.roundTrip(c.primary, r, body)
	if err != nil {
		c.markDown(c.primary, err)
		writeError(w, http.StatusBadGateway, fmt.Errorf("primary %s unreachable: %w", c.primary.url, err))
		return
	}
	if invalidates && resp.status/100 == 2 {
		c.version.Add(1)
		if err := c.Ship(); err != nil {
			if c.logger != nil {
				c.logger.Error("re-ship after mutation failed", "err", err)
			}
		}
	}
	resp.writeTo(w)
}

// serveRead serves a classified read-only request from the replica
// rotation, retrying transport failures on the next eligible replica and
// finally the primary, so a replica dying mid-burst costs the client
// nothing but latency. Retries are safe precisely because only
// ClassifyCmd/ClassifyScript-approved requests get here.
func (c *Coordinator) serveRead(w http.ResponseWriter, r *http.Request, body []byte) {
	tried := make(map[*target]bool, len(c.replicas))
	for {
		t := c.pickReplica(tried)
		if t == nil {
			break
		}
		tried[t] = true
		// Claim an in-flight slot, then re-check eligibility: a ship
		// pulling this replica from rotation either zeroes its generation
		// before the re-check (the read moves on) or after it (the ship's
		// drain sees this claim and waits for the response before dropping
		// the session). Without the claim a read could pass selection,
		// lose the race, and arrive at a dropped session.
		t.inflight.Add(1)
		if !c.eligible(t) {
			t.inflight.Add(-1)
			continue
		}
		resp, err := c.roundTrip(t, r, body)
		t.inflight.Add(-1)
		if err != nil {
			c.markDown(t, err)
			c.mRetries.Inc()
			continue
		}
		resp.writeTo(w)
		return
	}
	// No eligible replica answered: the primary is the read path of last
	// resort, never a worse outcome than running without replicas at all.
	resp, err := c.roundTrip(c.primary, r, body)
	if err != nil {
		c.markDown(c.primary, err)
		writeError(w, http.StatusBadGateway, fmt.Errorf("no replica available and primary %s unreachable: %w", c.primary.url, err))
		return
	}
	resp.writeTo(w)
}

// eligible reports whether a replica may take reads right now: it must be
// healthy and hold a fingerprint-verified ship — the current version under
// strict consistency, any verified version under eventual. Both modes
// require gen > 0: before the first ship version is 0 too, and "0 == 0"
// must not admit a replica that never restored anything.
func (c *Coordinator) eligible(t *target) bool {
	if targetState(t.state.Load()) != stateHealthy {
		return false
	}
	g := t.gen.Load()
	if c.eventual {
		return g > 0
	}
	return g > 0 && g == c.version.Load()
}

// pickReplica selects the next replica to try: the least-loaded eligible
// one (by in-flight requests) with a rotating tie-break, or pure rotation
// under Balance "rr". Nil when no eligible replica remains.
func (c *Coordinator) pickReplica(tried map[*target]bool) *target {
	n := len(c.replicas)
	if n == 0 {
		return nil
	}
	start := int(c.rr.Add(1)-1) % n
	var best *target
	var bestLoad int64
	for i := 0; i < n; i++ {
		t := c.replicas[(start+i)%n]
		if tried[t] || !c.eligible(t) {
			continue
		}
		if c.balance == "rr" {
			return t
		}
		if load := t.inflight.Load(); best == nil || load < bestLoad {
			best, bestLoad = t, load
		}
	}
	return best
}

// markDown records a live-request transport failure: the target leaves
// rotation immediately (no waiting for the health loop to notice) and its
// ship generation is zeroed, so when it comes back it must re-verify — a
// "recovered" process may be a restarted, empty one.
func (c *Coordinator) markDown(t *target, err error) {
	prev := targetState(t.state.Swap(int32(stateDown)))
	t.gen.Store(0)
	t.setErr(err)
	if prev != stateDown && c.logger != nil {
		c.logger.Warn("cluster target down", "target", t.name, "url", t.url, "err", err)
	}
}

// --- upstream round trips ---

// bufferedResponse is one upstream response, fully read: buffering is what
// makes read failover safe (nothing is written to the client until a
// replica has answered completely) and keeps the retry loop free of
// half-committed responses.
type bufferedResponse struct {
	status int
	header http.Header
	body   []byte
	target string
}

func (b *bufferedResponse) writeTo(w http.ResponseWriter) {
	h := w.Header()
	for k, vs := range b.header {
		switch k {
		// Hop-by-hop headers describe the upstream connection, not this
		// one; Content-Length is recomputed from the buffered body.
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Content-Length":
			continue
		}
		h[k] = vs
	}
	h.Set("X-Ringo-Target", b.target)
	w.WriteHeader(b.status)
	_, _ = w.Write(b.body)
}

// roundTrip forwards one request to a target and buffers the full
// response, recording the per-target request counter, latency histogram,
// error counter and in-flight gauge. A returned error means transport
// failure — the caller may safely retry a read elsewhere; an HTTP error
// status is a response, not an error.
func (c *Coordinator) roundTrip(t *target, r *http.Request, body []byte) (*bufferedResponse, error) {
	t.inflight.Add(1)
	defer t.inflight.Add(-1)
	start := time.Now()
	resp, err := c.do(t, r.Method, r.URL.RequestURI(), r.Header, body)
	c.reg.Histogram(metricRequestDuration, "Proxied request latency in seconds, by target.",
		obs.L("target", t.name)).Observe(time.Since(start))
	c.reg.Counter(metricRequests, "Proxied requests, by target.", obs.L("target", t.name)).Inc()
	if err != nil {
		c.reg.Counter(metricErrors, "Proxied request transport failures, by target.", obs.L("target", t.name)).Inc()
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		c.reg.Counter(metricErrors, "Proxied request transport failures, by target.", obs.L("target", t.name)).Inc()
		return nil, err
	}
	return &bufferedResponse{status: resp.StatusCode, header: resp.Header, body: data, target: t.name}, nil
}

// do issues one upstream HTTP request. Client headers are forwarded;
// the configured bearer token (if any) overrides Authorization.
func (c *Coordinator) do(t *target, method, uri string, header http.Header, body []byte) (*http.Response, error) {
	req, err := http.NewRequest(method, t.url+uri, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for k, vs := range header {
		switch k {
		case "Connection", "Keep-Alive", "Transfer-Encoding", "Content-Length", "Host":
			continue
		}
		req.Header[k] = vs
	}
	if c.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.AuthToken)
	}
	return c.client.Do(req)
}

// doJSON is the coordinator's control-plane call: JSON in, JSON out,
// non-2xx statuses surfaced as errors carrying the server's message.
func (c *Coordinator) doJSON(t *target, method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return err
		}
	}
	h := http.Header{"Content-Type": []string{"application/json"}}
	resp, err := c.do(t, method, path, h, payload)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var em struct {
			Error string `json:"error"`
		}
		msg := strings.TrimSpace(string(data))
		if json.Unmarshal(data, &em) == nil && em.Error != "" {
			msg = em.Error
		}
		return fmt.Errorf("%s %s%s: status %d: %s", method, t.url, path, resp.StatusCode, msg)
	}
	if out != nil {
		return json.Unmarshal(data, out)
	}
	return nil
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
