package cluster

// The cluster tier's contract, each clause held by its own test:
// fingerprint-verified shipping (a replica serves only bytes proven equal
// to the primary's; tampered ships are rejected with a pointed error),
// classified routing (replicas see exactly the traffic the verb table
// proves read-only and file-free; mutations stick to the primary and
// re-ship before the response), and absorbed failure (a replica dying
// mid-burst costs clients nothing). All tests run in-process: real
// ringo-servers behind httptest, the coordinator in front, under -race.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ringo/internal/repl"
	"ringo/internal/server"
)

// newNode starts one in-process ringo-server with file IO enabled (the
// ship protocol needs snapshot/restore) and returns its base URL.
func newNode(t testing.TB) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{AllowFileIO: true})
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func doJSON(t testing.TB, method, url string, body, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decode: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

// seedMain creates the serving session on a node and evaluates cmds in it.
func seedMain(t testing.TB, base string, cmds ...string) {
	t.Helper()
	if code := doJSON(t, "POST", base+"/sessions", map[string]string{"id": "main"}, nil); code != http.StatusCreated {
		t.Fatalf("create session: status %d", code)
	}
	for _, cmd := range cmds {
		if code := doJSON(t, "POST", base+"/sessions/main/query", map[string]string{"cmd": cmd}, nil); code != http.StatusOK {
			t.Fatalf("seed %q: status %d", cmd, code)
		}
	}
}

// seedCmds is the standard fixture: an R-MAT edge table, its graph, and
// PageRank scores — three bindings, three version-clock ticks.
var seedCmds = []string{
	"gen rmat E 8 256 7",
	"tograph G E src dst",
	"pagerank PR G",
}

// newCluster stands up a primary and n replicas, seeds the primary, and
// fronts them with a coordinator (not yet shipped or started).
func newCluster(t testing.TB, n int, mutate func(*Config)) (*Coordinator, *httptest.Server) {
	t.Helper()
	_, pts := newNode(t)
	seedMain(t, pts.URL, seedCmds...)
	var replicas []string
	for i := 0; i < n; i++ {
		_, rts := newNode(t)
		replicas = append(replicas, rts.URL)
	}
	cfg := Config{
		Primary:  pts.URL,
		Replicas: replicas,
		ShipPath: filepath.Join(t.TempDir(), "ship.rngs"),
	}
	if mutate != nil {
		mutate(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)
	return coord, cts
}

// cquery sends one command through the coordinator and returns the status,
// the X-Ringo-Target header (who actually served it) and the raw body.
func cquery(t testing.TB, coordURL, session, cmd string) (int, string, string) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"cmd": cmd})
	resp, err := http.Post(coordURL+"/sessions/"+session+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("query %q: %v", cmd, err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Ringo-Target"), string(data)
}

// clusterView decodes the coordinator's GET /cluster topology report.
func clusterView(t testing.TB, coordURL string) map[string]any {
	t.Helper()
	var v map[string]any
	if code := doJSON(t, "GET", coordURL+"/cluster", nil, &v); code != http.StatusOK {
		t.Fatalf("GET /cluster: status %d", code)
	}
	return v
}

func targetsByName(t testing.TB, view map[string]any) map[string]map[string]any {
	t.Helper()
	out := map[string]map[string]any{}
	for _, raw := range view["targets"].([]any) {
		tv := raw.(map[string]any)
		out[tv["target"].(string)] = tv
	}
	return out
}

// TestClusterShipAndFanout is the core integration path: ship to two
// replicas, verify both enter rotation fingerprint-verified, fan read-only
// traffic across exactly the replicas, sticky-route a mutation to the
// primary, and observe the re-ship deliver the write to every replica
// before the next read (read-your-writes through the rotation).
func TestClusterShipAndFanout(t *testing.T) {
	coord, cts := newCluster(t, 2, nil)
	if err := coord.Ship(); err != nil {
		t.Fatalf("initial ship: %v", err)
	}
	if got := coord.Version(); got != 1 {
		t.Fatalf("version after bootstrap ship = %d, want 1", got)
	}

	targets := targetsByName(t, clusterView(t, cts.URL))
	for _, name := range []string{"r1", "r2"} {
		tv := targets[name]
		if tv["state"] != "healthy" || tv["eligible"] != true || tv["generation"] != float64(1) {
			t.Fatalf("%s not in rotation after verified ship: %+v", name, tv)
		}
	}

	// Read-only traffic lands on replicas only, and on both of them.
	served := map[string]int{}
	for i := 0; i < 20; i++ {
		code, target, body := cquery(t, cts.URL, "main", "top PR 5")
		if code != http.StatusOK {
			t.Fatalf("read %d: status %d: %s", i, code, body)
		}
		served[target]++
	}
	if served["primary"] > 0 {
		t.Fatalf("read-only queries reached the primary: %v", served)
	}
	if served["r1"] == 0 || served["r2"] == 0 {
		t.Fatalf("reads did not fan out across both replicas: %v", served)
	}

	// A mutation sticks to the primary and re-ships before returning.
	code, target, body := cquery(t, cts.URL, "main", "gen rmat E2 6 64 3")
	if code != http.StatusOK || target != "primary" {
		t.Fatalf("mutation: status %d target %q: %s", code, target, body)
	}
	if got := coord.Version(); got != 2 {
		t.Fatalf("version after mutation = %d, want 2", got)
	}
	targets = targetsByName(t, clusterView(t, cts.URL))
	for _, name := range []string{"r1", "r2"} {
		if targets[name]["generation"] != float64(2) {
			t.Fatalf("%s not re-shipped after mutation: %+v", name, targets[name])
		}
	}
	// Read-your-writes: the very next replica read must see E2.
	code, target, body = cquery(t, cts.URL, "main", "ls")
	if code != http.StatusOK || target == "primary" {
		t.Fatalf("post-mutation read: status %d target %q", code, target)
	}
	if !strings.Contains(body, "E2") {
		t.Fatalf("replica read after mutation misses the write: %s", body)
	}

	// Read-only but file-touching verbs must not run on a replica host.
	if _, target, _ = cquery(t, cts.URL, "main", "snapshot "+filepath.Join(t.TempDir(), "x.rngs")); target != "primary" {
		t.Fatalf("file-touching verb served by %q, want primary", target)
	}

	// Sessions other than the replicated one pass through to the primary.
	if code := doJSON(t, "POST", cts.URL+"/sessions", map[string]string{"id": "other"}, nil); code != http.StatusCreated {
		t.Fatalf("create passthrough session: status %d", code)
	}
	if _, target, _ = cquery(t, cts.URL, "other", "ls"); target != "primary" {
		t.Fatalf("non-replicated session served by %q, want primary", target)
	}
}

// TestClusterScriptRouting checks batch classification end to end: an
// all-reads script fans to a replica; a script with one mutating step
// routes to the primary and re-ships.
func TestClusterScriptRouting(t *testing.T) {
	coord, cts := newCluster(t, 1, nil)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}
	post := func(script string) (int, string) {
		body, _ := json.Marshal(map[string]string{"script": script})
		resp, err := http.Post(cts.URL+"/sessions/main/script", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode, resp.Header.Get("X-Ringo-Target")
	}
	if code, target := post("ls\ntop PR 3\nstats"); code != http.StatusOK || target != "r1" {
		t.Fatalf("read-only script: status %d target %q, want 200 r1", code, target)
	}
	if code, target := post("ls\ngen rmat E3 5 32 1\ntop PR 3"); code != http.StatusOK || target != "primary" {
		t.Fatalf("mutating script: status %d target %q, want 200 primary", code, target)
	}
	if got := coord.Version(); got != 2 {
		t.Fatalf("version after mutating script = %d, want 2", got)
	}
	if _, target, body := cquery(t, cts.URL, "main", "ls"); target != "r1" || !strings.Contains(body, "E3") {
		t.Fatalf("replica read after script mutation: target %q body %s", target, body)
	}
}

// TestClusterFailover kills a replica in the middle of a read burst and
// requires zero client-visible failures: in-flight requests on the dead
// replica retry transparently, and the dead node drains from rotation.
func TestClusterFailover(t *testing.T) {
	_, pts := newNode(t)
	seedMain(t, pts.URL, seedCmds...)
	_, r1ts := newNode(t)
	_, r2ts := newNode(t)
	coord, err := New(Config{
		Primary:  pts.URL,
		Replicas: []string{r1ts.URL, r2ts.URL},
		ShipPath: filepath.Join(t.TempDir(), "ship.rngs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}

	const workers, perWorker = 4, 25
	var failures, kills atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if w == 0 && i == perWorker/2 && kills.Add(1) == 1 {
					// Mid-burst, r1 dies hard: active connections severed,
					// listener closed.
					r1ts.CloseClientConnections()
					r1ts.Close()
				}
				body, _ := json.Marshal(map[string]string{"cmd": "top PR 5"})
				resp, err := http.Post(cts.URL+"/sessions/main/query", "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures during replica death, want 0", n)
	}
	targets := targetsByName(t, clusterView(t, cts.URL))
	if targets["r1"]["state"] != "down" {
		t.Fatalf("dead replica not drained: %+v", targets["r1"])
	}
	// Post-failover reads keep flowing, now on the survivor.
	for i := 0; i < 5; i++ {
		code, target, _ := cquery(t, cts.URL, "main", "ls")
		if code != http.StatusOK || target != "r2" {
			t.Fatalf("post-failover read %d: status %d target %q, want 200 r2", i, code, target)
		}
	}
}

// tamperRestore wraps a node so every restore is redirected to a decoy
// snapshot file — the "wrong bytes" failure the fingerprint check exists
// to catch (corrupted ship, stray write, wrong file on the shared mount).
func tamperRestore(t *testing.T, inner http.Handler, decoyPath string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/restore") {
			body, _ := json.Marshal(map[string]string{"path": decoyPath})
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterFingerprintReject proves a replica serving the wrong bytes
// can never enter rotation. Two corruptions, two detections: a decoy with
// the same bindings and versions but different content is caught by the
// workspace digest alone (version fingerprints agree); a decoy with a
// different binding set is caught by the per-object comparison. Both
// replicas end rejected with a pointed error, and every read is served
// elsewhere. Removing either comparison in compareFingerprints fails this
// test.
func TestClusterFingerprintReject(t *testing.T) {
	_, pts := newNode(t)
	seedMain(t, pts.URL, seedCmds...)

	// Decoy A: identical command shape, different RMAT seed — same names,
	// same version clock, different bytes. Only the content digest can
	// tell it from the real ship.
	_, decoyA := newNode(t)
	seedMain(t, decoyA.URL, "gen rmat E 8 256 8", "tograph G E src dst", "pagerank PR G")
	decoyAPath := filepath.Join(t.TempDir(), "decoyA.rngs")
	if code := doJSON(t, "POST", decoyA.URL+"/sessions/main/snapshot", map[string]string{"path": decoyAPath}, nil); code != http.StatusOK {
		t.Fatalf("decoy A snapshot: status %d", code)
	}
	// Decoy B: a different binding set entirely (the wrong-file case).
	_, decoyB := newNode(t)
	seedMain(t, decoyB.URL, "gen rmat X 6 64 1")
	decoyBPath := filepath.Join(t.TempDir(), "decoyB.rngs")
	if code := doJSON(t, "POST", decoyB.URL+"/sessions/main/snapshot", map[string]string{"path": decoyBPath}, nil); code != http.StatusOK {
		t.Fatalf("decoy B snapshot: status %d", code)
	}

	honestSrv, honest := newNode(t)
	_ = honestSrv
	tamperedASrv, _ := newNode(t)
	tamperedA := tamperRestore(t, tamperedASrv, decoyAPath)
	tamperedBSrv, _ := newNode(t)
	tamperedB := tamperRestore(t, tamperedBSrv, decoyBPath)

	coord, err := New(Config{
		Primary:  pts.URL,
		Replicas: []string{honest.URL, tamperedA.URL, tamperedB.URL},
		ShipPath: filepath.Join(t.TempDir(), "ship.rngs"),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)

	err = coord.Ship()
	if err == nil {
		t.Fatal("ship to tampered replicas reported success")
	}
	if !strings.Contains(err.Error(), "rejected") {
		t.Fatalf("ship error does not name the rejection: %v", err)
	}

	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)
	targets := targetsByName(t, clusterView(t, cts.URL))
	if targets["r1"]["state"] != "healthy" || targets["r1"]["eligible"] != true {
		t.Fatalf("honest replica kept out of rotation: %+v", targets["r1"])
	}
	for name, wantMsg := range map[string]string{
		"r2": "digest mismatch",      // decoy A: versions agree, bytes differ
		"r3": "fingerprint mismatch", // decoy B: wrong binding set
	} {
		tv := targets[name]
		if tv["state"] != "rejected" || tv["eligible"] != false {
			t.Fatalf("tampered replica %s not rejected: %+v", name, tv)
		}
		if msg, _ := tv["error"].(string); !strings.Contains(msg, wantMsg) {
			t.Fatalf("%s rejection error %q does not name the divergence (want %q)", name, msg, wantMsg)
		}
	}
	// The rejected replicas never serve: every read lands on the honest one.
	for i := 0; i < 10; i++ {
		code, target, _ := cquery(t, cts.URL, "main", "top PR 5")
		if code != http.StatusOK || target != "r1" {
			t.Fatalf("read %d served by %q (status %d), want honest r1", i, target, code)
		}
	}
}

// TestClusterMutatingJobsRefused: an async mutation on the replicated
// session would complete after the coordinator answered, bypassing
// re-ship — so it is refused with an error that names the alternative.
// Read-only jobs and jobs on other sessions pass through.
func TestClusterMutatingJobsRefused(t *testing.T) {
	coord, cts := newCluster(t, 1, nil)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}
	var errResp struct {
		Error string `json:"error"`
	}
	code := doJSON(t, "POST", cts.URL+"/sessions/main/jobs", map[string]string{"cmd": "gen rmat E9 5 32 1"}, &errResp)
	if code != http.StatusForbidden {
		t.Fatalf("mutating job: status %d, want 403", code)
	}
	if !strings.Contains(errResp.Error, "re-ship") || !strings.Contains(errResp.Error, "/query") {
		t.Fatalf("refusal does not explain itself: %q", errResp.Error)
	}
	if code := doJSON(t, "POST", cts.URL+"/sessions/main/jobs", map[string]string{"cmd": "top PR 5"}, nil); code != http.StatusAccepted {
		t.Fatalf("read-only job: status %d, want 202", code)
	}
	if code := doJSON(t, "POST", cts.URL+"/sessions", map[string]string{"id": "scratch"}, nil); code != http.StatusCreated {
		t.Fatalf("create scratch session: status %d", code)
	}
	if code := doJSON(t, "POST", cts.URL+"/sessions/scratch/jobs", map[string]string{"cmd": "gen rmat T 5 32 1"}, nil); code != http.StatusAccepted {
		t.Fatalf("mutating job on non-replicated session: status %d, want 202", code)
	}
}

// TestClusterConsistencyModes pins the strict/eventual contrast at the
// moment it matters: a mutation lands but the re-ship fails. Strict mode
// pulls stale replicas from rotation (reads fall back to the primary);
// eventual mode keeps them serving their last verified snapshot.
func TestClusterConsistencyModes(t *testing.T) {
	for _, eventual := range []bool{false, true} {
		t.Run(map[bool]string{false: "strict", true: "eventual"}[eventual], func(t *testing.T) {
			shipDir := filepath.Join(t.TempDir(), "ships")
			if err := os.MkdirAll(shipDir, 0o755); err != nil {
				t.Fatal(err)
			}
			coord, cts := newCluster(t, 1, func(cfg *Config) {
				cfg.Eventual = eventual
				cfg.ShipPath = filepath.Join(shipDir, "ship.rngs")
			})
			if err := coord.Ship(); err != nil {
				t.Fatal(err)
			}
			// Break the ship path, then mutate: the primary accepts, the
			// re-ship fails, replicas are one generation behind.
			if err := os.RemoveAll(shipDir); err != nil {
				t.Fatal(err)
			}
			code, target, body := cquery(t, cts.URL, "main", "gen rmat E2 5 32 1")
			if code != http.StatusOK || target != "primary" {
				t.Fatalf("mutation with broken ship path: status %d target %q: %s", code, target, body)
			}
			code, target, _ = cquery(t, cts.URL, "main", "top PR 5")
			if code != http.StatusOK {
				t.Fatalf("read after failed re-ship: status %d", code)
			}
			want := "primary" // strict: stale replica drained
			if eventual {
				want = "r1" // eventual: last verified snapshot keeps serving
			}
			if target != want {
				t.Fatalf("%s read after failed re-ship served by %q, want %q",
					map[bool]string{false: "strict", true: "eventual"}[eventual], target, want)
			}
		})
	}
}

// TestRoutingAgreesWithVerbTable drives the coordinator with randomized
// commands and scripts and requires every observed routing decision
// (X-Ringo-Target) to agree with the verb table: ReadOnly && !TouchesFiles
// serves from a replica, everything else from the primary. The generator
// spans every registered verb plus unknown ones, so a verb-table edit that
// silently widens replica routing fails here.
func TestRoutingAgreesWithVerbTable(t *testing.T) {
	// Random file verbs ("snapshot A") really execute on the primary with
	// relative paths; keep their droppings out of the package directory.
	t.Chdir(t.TempDir())
	coord, cts := newCluster(t, 1, nil)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	verbs := repl.Verbs()
	randCmd := func() string {
		if rng.Intn(8) == 0 {
			return fmt.Sprintf("nosuchverb%d arg", rng.Intn(100))
		}
		v := verbs[rng.Intn(len(verbs))]
		args := []string{"A", "B", "C", "D"}[:rng.Intn(4)]
		return strings.TrimSpace(v + " " + strings.Join(args, " "))
	}
	for i := 0; i < 60; i++ {
		cmd := randCmd()
		wantReplica := repl.ReadOnly(cmd) && !repl.TouchesFiles(cmd)
		if want := ClassifyCmd(cmd); (want == RouteReplica) != wantReplica {
			t.Fatalf("ClassifyCmd(%q) = %v disagrees with verb table", cmd, want)
		}
		_, target, _ := cquery(t, cts.URL, "main", cmd)
		if wantReplica && target != "r1" {
			t.Fatalf("read-only command %q served by %q, want r1", cmd, target)
		}
		if !wantReplica && target != "primary" {
			t.Fatalf("mutating/file command %q served by %q, want primary", cmd, target)
		}
	}
	// Script batches: replica only when every step is read-only and
	// file-free; ParseScript failures route to the primary for its 400.
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(4)
		lines := make([]string, n)
		for j := range lines {
			lines[j] = randCmd()
		}
		src := strings.Join(lines, "\n")
		script, err := repl.ParseScript(src)
		wantReplica := err == nil && script.ReadOnly() && script.TouchesFiles() < 0
		if err == nil {
			if want := ClassifyScript(script); (want == RouteReplica) != wantReplica {
				t.Fatalf("ClassifyScript(%q) = %v disagrees with script classification", src, want)
			}
		}
		body, _ := json.Marshal(map[string]string{"script": src})
		resp, perr := http.Post(cts.URL+"/sessions/main/script", "application/json", bytes.NewReader(body))
		if perr != nil {
			t.Fatal(perr)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		target := resp.Header.Get("X-Ringo-Target")
		if wantReplica && target != "r1" {
			t.Fatalf("read-only script %q served by %q, want r1", src, target)
		}
		if !wantReplica && target != "primary" {
			t.Fatalf("mutating script %q served by %q, want primary", src, target)
		}
	}
}

// TestClusterHealthLoop exercises the probe loop end to end with
// millisecond intervals: it marks a killed replica down without any
// traffic, and when a downed-but-alive replica answers probes again it is
// re-shipped and fingerprint-verified before re-entering rotation —
// recovery is never granted on the probe alone.
func TestClusterHealthLoop(t *testing.T) {
	_, pts := newNode(t)
	seedMain(t, pts.URL, seedCmds...)
	_, r1ts := newNode(t)
	_, r2ts := newNode(t)
	coord, err := New(Config{
		Primary:        pts.URL,
		Replicas:       []string{r1ts.URL, r2ts.URL},
		ShipPath:       filepath.Join(t.TempDir(), "ship.rngs"),
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  200 * time.Millisecond,
		FailThreshold:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}
	coord.Start()

	// r1 dies hard: the loop alone (no traffic) must drain it.
	r1ts.CloseClientConnections()
	r1ts.Close()
	waitFor(t, 2*time.Second, func() bool {
		return targetState(coord.replicas[0].state.Load()) == stateDown
	}, "health loop never marked the killed replica down")

	// r2 suffered a transport blip (live-request markDown) but the process
	// is fine: the loop probes it healthy, then the recovery ship restores
	// and verifies it back into rotation (gen is zeroed by markDown, so
	// eligibility requires the fresh verified ship, not just the probe).
	c2 := coord.replicas[1]
	coord.markDown(c2, fmt.Errorf("simulated transport blip"))
	if coord.eligible(c2) {
		t.Fatal("downed replica still eligible")
	}
	waitFor(t, 2*time.Second, func() bool {
		return coord.eligible(c2)
	}, "recovered replica never re-verified into rotation")
	if got := c2.gen.Load(); got != coord.Version() {
		t.Fatalf("recovered replica gen %d, want current version %d", got, coord.Version())
	}
}

// TestClusterStrictRequiresVerifiedShip pins the bootstrap edge of strict
// eligibility: before the first ship the cluster version and every replica
// generation are all 0, and "0 == 0" must not admit replicas that never
// restored anything. Reads route to the primary until a verified ship
// lands. Weakening eligible to plain gen == version fails here.
func TestClusterStrictRequiresVerifiedShip(t *testing.T) {
	coord, cts := newCluster(t, 2, nil)
	targets := targetsByName(t, clusterView(t, cts.URL))
	for _, name := range []string{"r1", "r2"} {
		if targets[name]["eligible"] != false {
			t.Fatalf("%s eligible before any ship: %+v", name, targets[name])
		}
	}
	for i := 0; i < 5; i++ {
		code, target, body := cquery(t, cts.URL, "main", "top PR 5")
		if code != http.StatusOK || target != "primary" {
			t.Fatalf("pre-ship read %d: status %d target %q (%s), want 200 primary", i, code, target, body)
		}
	}
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}
	if _, target, _ := cquery(t, cts.URL, "main", "top PR 5"); target == "primary" {
		t.Fatal("read still on primary after verified ship")
	}
}

// delayRestore wraps a node so every restore stalls for d before the real
// handler runs — holding a ship's drop-and-restore window open long enough
// for concurrent reads to race it deterministically.
func delayRestore(t *testing.T, inner http.Handler, d time.Duration) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/restore") {
			time.Sleep(d)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestClusterMidShipReadsNeverHitDroppedSession holds a re-ship's restore
// window open on an eventual-mode replica while reads hammer the
// coordinator: every read must succeed, meaning it landed on a node
// actually holding the session. Without shipReplica pulling the replica
// from rotation first, eventual mode keeps it eligible (gen > 0) while its
// serving session is dropped and mid-restore, and reads come back 404 —
// an HTTP status is a response, not a retried transport failure.
func TestClusterMidShipReadsNeverHitDroppedSession(t *testing.T) {
	_, pts := newNode(t)
	seedMain(t, pts.URL, seedCmds...)
	rSrv, _ := newNode(t)
	rts := delayRestore(t, rSrv, 150*time.Millisecond)
	coord, err := New(Config{
		Primary:  pts.URL,
		Replicas: []string{rts.URL},
		ShipPath: filepath.Join(t.TempDir(), "ship.rngs"),
		Eventual: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cts := httptest.NewServer(coord)
	t.Cleanup(cts.Close)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var bad atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(map[string]string{"cmd": "top PR 5"})
				resp, err := http.Post(cts.URL+"/sessions/main/query", "application/json", bytes.NewReader(body))
				if err != nil {
					bad.Add(1)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					bad.Add(1)
				}
			}
		}()
	}
	// The mutation triggers a re-ship whose restore stalls 150ms on the
	// replica; the read burst keeps flowing the whole time.
	code, target, body := cquery(t, cts.URL, "main", "gen rmat E2 5 32 1")
	if code != http.StatusOK || target != "primary" {
		t.Fatalf("mutation: status %d target %q: %s", code, target, body)
	}
	close(stop)
	wg.Wait()
	if n := bad.Load(); n != 0 {
		t.Fatalf("%d reads failed during the re-ship window, want 0", n)
	}
	if !coord.eligible(coord.replicas[0]) {
		t.Fatal("replica not back in rotation after the re-ship")
	}
}

// TestClusterRejectedRecoveryBackoff: a replica that keeps restoring the
// wrong bytes re-rejects on every recovery attempt. The health loop must
// retry it on an exponential schedule (not every tick) and must not drop
// and re-restore the healthy, already-verified replica along the way.
// Removing either the backoff or the already-verified skip fails here.
func TestClusterRejectedRecoveryBackoff(t *testing.T) {
	_, pts := newNode(t)
	seedMain(t, pts.URL, seedCmds...)

	var honestRestores atomic.Int64
	honestSrv, _ := newNode(t)
	honest := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/restore") {
			honestRestores.Add(1)
		}
		honestSrv.ServeHTTP(w, r)
	}))
	t.Cleanup(honest.Close)

	// The decoy the tampered replica restores instead of the real ship.
	_, decoy := newNode(t)
	seedMain(t, decoy.URL, "gen rmat X 5 32 1")
	decoyPath := filepath.Join(t.TempDir(), "decoy.rngs")
	if code := doJSON(t, "POST", decoy.URL+"/sessions/main/snapshot", map[string]string{"path": decoyPath}, nil); code != http.StatusOK {
		t.Fatalf("decoy snapshot: status %d", code)
	}
	var tamperedRestores atomic.Int64
	tamperedSrv, _ := newNode(t)
	tampered := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && strings.HasSuffix(r.URL.Path, "/restore") {
			tamperedRestores.Add(1)
			body, _ := json.Marshal(map[string]string{"path": decoyPath})
			r.Body = io.NopCloser(bytes.NewReader(body))
			r.ContentLength = int64(len(body))
		}
		tamperedSrv.ServeHTTP(w, r)
	}))
	t.Cleanup(tampered.Close)

	coord, err := New(Config{
		Primary:        pts.URL,
		Replicas:       []string{honest.URL, tampered.URL},
		ShipPath:       filepath.Join(t.TempDir(), "ship.rngs"),
		HealthInterval: 10 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		MaxBackoff:     100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	if err := coord.Ship(); err == nil {
		t.Fatal("ship to tampered replica reported success")
	}
	coord.Start()

	// Let recovery retry the rejected replica a few times, then let
	// several more backoff windows pass.
	waitFor(t, 5*time.Second, func() bool {
		return tamperedRestores.Load() >= 3
	}, "health loop never retried the rejected replica")
	time.Sleep(300 * time.Millisecond)

	if got := honestRestores.Load(); got != 1 {
		t.Fatalf("healthy verified replica restored %d times, want exactly 1: recovery ships must not drop it from rotation", got)
	}
	// Retries at 10, 20, 40, 80, then 100ms intervals stay in single
	// digits over this window; one per 10ms health tick would be dozens.
	if got := tamperedRestores.Load(); got > 12 {
		t.Fatalf("rejected replica restored %d times; recovery retries are not backing off", got)
	}
	if coord.eligible(coord.replicas[1]) {
		t.Fatal("tampered replica entered rotation")
	}
	if !coord.eligible(coord.replicas[0]) {
		t.Fatal("honest replica left rotation during recovery retries")
	}
}

// TestClusterPassthroughInvalidation pins exactly which passthrough
// requests count as mutations of the serving session. Each false positive
// costs a synchronous full re-ship, so a sibling session sharing the name
// prefix ("main2" beside "main") and the non-mutating POST /snapshot
// (writes a host file, leaves the workspace untouched) must not bump the
// version — while a genuine session-scoped mutation like POST /restore
// still must.
func TestClusterPassthroughInvalidation(t *testing.T) {
	coord, cts := newCluster(t, 1, nil)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}

	snapPath := filepath.Join(t.TempDir(), "snap.rngs")
	if code := doJSON(t, "POST", cts.URL+"/sessions/main/snapshot", map[string]string{"path": snapPath}, nil); code != http.StatusOK {
		t.Fatalf("snapshot: status %d", code)
	}
	if got := coord.Version(); got != 1 {
		t.Fatalf("version after POST /snapshot = %d, want 1", got)
	}

	if code := doJSON(t, "POST", cts.URL+"/sessions", map[string]string{"id": "main2"}, nil); code != http.StatusCreated {
		t.Fatalf("create main2: status %d", code)
	}
	if code := doJSON(t, "POST", cts.URL+"/sessions/main2/restore", map[string]string{"path": snapPath}, nil); code/100 != 2 {
		t.Fatalf("restore into main2: status %d", code)
	}
	if code := doJSON(t, "DELETE", cts.URL+"/sessions/main2", nil, nil); code/100 != 2 {
		t.Fatalf("delete main2: status %d", code)
	}
	if got := coord.Version(); got != 1 {
		t.Fatalf("version after sibling-session traffic = %d, want 1: %q must not invalidate %q", got, "main2", "main")
	}
	if !coord.eligible(coord.replicas[0]) {
		t.Fatal("replica left rotation on non-invalidating passthrough traffic")
	}

	if code := doJSON(t, "POST", cts.URL+"/sessions/main/restore", map[string]string{"path": snapPath}, nil); code/100 != 2 {
		t.Fatalf("restore into main: status %d", code)
	}
	if got := coord.Version(); got != 2 {
		t.Fatalf("version after POST /restore on the serving session = %d, want 2", got)
	}
}

func waitFor(t testing.TB, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}
