package cluster

// Drift gates for docs/CLUSTER.md: the coordinator's route table and
// metric family list are the single sources of truth, and the operator
// page must track both exactly — a route or family added without
// documentation, or documented after removal, fails the build here.

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

var docRouteHeading = regexp.MustCompile(`^### (GET|POST|PUT|DELETE|PATCH) (/\S*)$`)

func clusterDoc(t *testing.T) string {
	t.Helper()
	data, err := os.ReadFile("../../docs/CLUSTER.md")
	if err != nil {
		t.Fatalf("docs/CLUSTER.md missing: %v", err)
	}
	return string(data)
}

func TestClusterDocCoversEveryRoute(t *testing.T) {
	doc := clusterDoc(t)
	documented := map[string]bool{}
	for _, line := range strings.Split(doc, "\n") {
		if m := docRouteHeading.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			documented[m[1]+" "+m[2]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("docs/CLUSTER.md documents no endpoints (want '### METHOD /path' headings)")
	}

	coord, err := New(Config{Primary: "http://localhost:1"})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	registered := map[string]bool{}
	for pattern := range coord.routeTable() {
		if pattern == "/" {
			continue // the passthrough catch-all is prose, not an endpoint
		}
		registered[pattern] = true
	}

	for pattern := range registered {
		if !documented[pattern] {
			t.Errorf("route %q is not documented in docs/CLUSTER.md (add a %q heading)", pattern, "### "+pattern)
		}
	}
	for pattern := range documented {
		if !registered[pattern] {
			t.Errorf("docs/CLUSTER.md documents %q, which is not a registered coordinator route", pattern)
		}
	}
}

func TestClusterDocNamesEveryMetric(t *testing.T) {
	doc := clusterDoc(t)
	for _, name := range metricNames() {
		if !strings.Contains(doc, "`"+name+"`") && !strings.Contains(doc, "`"+name+" ") &&
			!strings.Contains(doc, name) {
			t.Errorf("docs/CLUSTER.md does not mention metric family %s", name)
		}
	}
}
