package cluster

// Health checking and failover: the loop that decides who is in the
// rotation. Every HealthInterval each target is probed with a cheap
// GET /sessions under HealthTimeout. FailThreshold consecutive failures
// mark a target down; while down, probes back off exponentially (interval,
// 2x, 4x, ... capped at MaxBackoff) so a dead node costs a bounded trickle
// of connection attempts rather than a full-rate hammer. Live requests
// short-circuit this: a transport error on a proxied read marks the target
// down immediately (see markDown), the probe loop only has to notice
// recovery.
//
// Recovery is deliberately pessimistic. A replica that answers probes
// again has an unknown workspace — the common case is a restarted, empty
// process — so it re-enters rotation only through a fresh
// fingerprint-verified ship, never on the probe alone. Rejected replicas
// (fingerprint mismatch) are probed like everyone else but stay out of
// rotation no matter how healthy they look: only a later ship that
// verifies clean clears the rejection, and recovery retries of a
// still-rejected replica back off exponentially so a permanently bad node
// costs a bounded trickle of re-ships, not one per tick.

import (
	"context"
	"net/http"
	"time"
)

func (c *Coordinator) healthLoop() {
	defer c.healthWG.Done()
	ticker := time.NewTicker(c.cfg.HealthInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-ticker.C:
			c.checkAll()
		}
	}
}

// checkAll probes every target once (concurrently — a hung target must
// not delay the others' probes) and re-ships any replica that recovered
// since the last pass.
func (c *Coordinator) checkAll() {
	done := make(chan struct{}, len(c.targets))
	for _, t := range c.targets {
		go func(t *target) {
			c.probe(t)
			done <- struct{}{}
		}(t)
	}
	for range c.targets {
		<-done
	}
	// A recovered replica is healthy but unverified (gen 0): ship once for
	// all of them. Rejected replicas are retried too — the operator may
	// have replaced the bad node — but on an exponential backoff schedule
	// (HealthInterval doubling up to MaxBackoff, reset by a clean ship),
	// because a permanently bad node re-rejects every attempt and retrying
	// it each tick would re-snapshot the primary forever. The recovery
	// ship itself (ship(false)) touches only the replicas that need it;
	// replicas already verified at the current version stay in rotation.
	for _, t := range c.replicas {
		st := targetState(t.state.Load())
		if (st == stateHealthy && t.gen.Load() == 0) || (st == stateRejected && !t.inShipBackoff()) {
			if err := c.ship(false); err != nil && c.logger != nil {
				c.logger.Error("recovery ship failed", "err", err)
			}
			break
		}
	}
}

// probe runs one health check against one target, honoring its backoff
// window, and applies the consecutive-failure threshold and recovery
// transition. Only this goroutine's loop writes the probe bookkeeping
// (fails/backoff), guarded by t.mu against /cluster topology reads.
func (c *Coordinator) probe(t *target) {
	t.mu.Lock()
	if time.Now().Before(t.backoffUntil) {
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()

	err := c.ping(t)

	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		t.fails++
		t.lastErr = err.Error()
		if t.fails >= c.cfg.FailThreshold && targetState(t.state.Load()) == stateHealthy {
			t.state.Store(int32(stateDown))
			t.gen.Store(0)
			if c.logger != nil {
				c.logger.Warn("cluster target down (health)", "target", t.name, "url", t.url, "err", err)
			}
		}
		if targetState(t.state.Load()) == stateDown {
			if t.backoff < c.cfg.HealthInterval {
				t.backoff = c.cfg.HealthInterval
			} else if t.backoff *= 2; t.backoff > c.cfg.MaxBackoff {
				t.backoff = c.cfg.MaxBackoff
			}
			t.backoffUntil = time.Now().Add(t.backoff)
		}
		return
	}
	t.fails = 0
	t.backoff = 0
	t.backoffUntil = time.Time{}
	if targetState(t.state.Load()) == stateDown {
		// Back from the dead: serve again (primary) or wait for the
		// verify-ship checkAll runs next (replicas, gen stays 0).
		t.state.Store(int32(stateHealthy))
		t.lastErr = ""
		if c.logger != nil {
			c.logger.Info("cluster target recovered", "target", t.name, "url", t.url)
		}
	}
}

// ping is one health probe: GET /sessions, the cheapest endpoint every
// ringo-server serves, under the configured timeout.
func (c *Coordinator) ping(t *target) error {
	ctx, cancel := context.WithTimeout(context.Background(), c.cfg.HealthTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, t.url+"/sessions", nil)
	if err != nil {
		return err
	}
	if c.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+c.cfg.AuthToken)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return errStatus(resp.StatusCode)
	}
	return nil
}

type errStatus int

func (e errStatus) Error() string { return http.StatusText(int(e)) }
