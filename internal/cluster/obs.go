package cluster

// Coordinator observability. All figures land in one obs.Registry served
// as Prometheus text on GET /metrics: rotation gauges
// (ringo_cluster_replicas by state), per-target proxy families
// (requests/errors/latency by target label), ship accounting
// (count/failures/rejects/bytes/duration), and per-target cache hit/miss
// counters scraped from each server's GET /stats — labeled by target so an
// operator can tell a cold replica from a hot one, and summed nowhere at
// the metrics layer, so nothing is ever double counted (each target's own
// process reports once, under its own label).
//
// GET /stats is the JSON aggregation view: per-target blocks verbatim from
// each server, plus cluster-wide cache/views/indexes sums computed from
// exactly those per-target figures — one fetch per distinct target per
// request, the same no-double-counting rule enforced structurally (New
// rejects duplicate target URLs).

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"ringo/internal/obs"
)

// Metric families the coordinator records. docs/CLUSTER.md documents every
// name; the drift test in docs_test.go keeps the list and the page equal.
const (
	metricReplicas        = "ringo_cluster_replicas"
	metricGeneration      = "ringo_cluster_generation"
	metricRequests        = "ringo_cluster_requests_total"
	metricErrors          = "ringo_cluster_errors_total"
	metricRequestDuration = "ringo_cluster_request_duration_seconds"
	metricRetries         = "ringo_cluster_retries_total"
	metricShips           = "ringo_cluster_ships_total"
	metricShipFailures    = "ringo_cluster_ship_failures_total"
	metricShipRejects     = "ringo_cluster_ship_rejects_total"
	metricShipBytes       = "ringo_cluster_ship_bytes_total"
	metricShipDuration    = "ringo_cluster_ship_duration_seconds"
	metricTargetUp        = "ringo_cluster_target_up"

	metricTargetResultHits   = "ringo_cluster_result_cache_hits_total"
	metricTargetResultMisses = "ringo_cluster_result_cache_misses_total"
	metricTargetViewHits     = "ringo_cluster_view_cache_hits_total"
	metricTargetViewMisses   = "ringo_cluster_view_cache_misses_total"
	metricTargetIndexHits    = "ringo_cluster_index_cache_hits_total"
	metricTargetIndexMisses  = "ringo_cluster_index_cache_misses_total"
)

// metricNames lists every family this package registers, for the
// docs-drift test.
func metricNames() []string {
	return []string{
		metricReplicas, metricGeneration, metricRequests, metricErrors,
		metricRequestDuration, metricRetries, metricShips, metricShipFailures,
		metricShipRejects, metricShipBytes, metricShipDuration, metricTargetUp,
		metricTargetResultHits, metricTargetResultMisses,
		metricTargetViewHits, metricTargetViewMisses,
		metricTargetIndexHits, metricTargetIndexMisses,
	}
}

// cacheBlock mirrors one hits/misses/entries/bytes block of the server's
// GET /stats JSON.
type cacheBlock struct {
	Hits    uint64 `json:"hits"`
	Misses  uint64 `json:"misses"`
	Entries int    `json:"entries"`
	Bytes   int64  `json:"bytes,omitempty"`
}

func (b *cacheBlock) add(o cacheBlock) {
	b.Hits += o.Hits
	b.Misses += o.Misses
	b.Entries += o.Entries
	b.Bytes += o.Bytes
}

// serverStats mirrors the fields of the server's GET /stats the
// coordinator aggregates.
type serverStats struct {
	Sessions int        `json:"sessions"`
	Cache    cacheBlock `json:"cache"`
	Views    cacheBlock `json:"views"`
	Indexes  cacheBlock `json:"indexes"`
}

// cachedStats is one target's last-fetched stats, kept StatsTTL so a
// /metrics scrape reading six labeled families per target costs one
// upstream fetch per target, not six.
type cachedStats struct {
	mu      sync.Mutex
	fetched time.Time
	stats   serverStats
	err     error
}

// targetStats returns a target's /stats block, from cache within
// StatsTTL. Errors (target down) return zero stats: a scrape must not
// fail because one node is; the target_up gauge carries the outage.
func (c *Coordinator) targetStats(t *target) (serverStats, error) {
	v, _ := c.statsCache.LoadOrStore(t, &cachedStats{})
	cs := v.(*cachedStats)
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if c.cfg.StatsTTL > 0 && !cs.fetched.IsZero() && time.Since(cs.fetched) < c.cfg.StatsTTL {
		return cs.stats, cs.err
	}
	var s serverStats
	err := c.doJSON(t, "GET", "/stats", nil, &s)
	cs.fetched, cs.err = time.Now(), err
	if err != nil {
		cs.stats = serverStats{}
		return cs.stats, err
	}
	cs.stats = s
	return s, nil
}

// initObs registers the rotation gauges, ship instruments and per-target
// cache counters. Called once from New, before any request is served.
func (c *Coordinator) initObs() {
	reg := c.reg

	// Rotation census by state, plus "stale": healthy replicas not
	// currently eligible for strict reads (awaiting a re-ship).
	count := func(match func(*target) bool) func() float64 {
		return func() float64 {
			n := 0
			for _, t := range c.replicas {
				if match(t) {
					n++
				}
			}
			return float64(n)
		}
	}
	const replicasHelp = "Replicas by rotation state (stale = healthy but awaiting re-ship)."
	reg.GaugeFunc(metricReplicas, replicasHelp, count(func(t *target) bool {
		return targetState(t.state.Load()) == stateHealthy && c.eligible(t)
	}), obs.L("state", "healthy"))
	reg.GaugeFunc(metricReplicas, replicasHelp, count(func(t *target) bool {
		return targetState(t.state.Load()) == stateHealthy && !c.eligible(t)
	}), obs.L("state", "stale"))
	reg.GaugeFunc(metricReplicas, replicasHelp, count(func(t *target) bool {
		return targetState(t.state.Load()) == stateDown
	}), obs.L("state", "down"))
	reg.GaugeFunc(metricReplicas, replicasHelp, count(func(t *target) bool {
		return targetState(t.state.Load()) == stateRejected
	}), obs.L("state", "rejected"))

	reg.GaugeFunc(metricGeneration, "Serving session mutation version; replicas must verify at this generation for strict reads.",
		func() float64 { return float64(c.version.Load()) })

	c.mRetries = reg.Counter(metricRetries, "Read requests retried on another target after a transport failure.")
	c.mShips = reg.Counter(metricShips, "Snapshot ship cycles completed.")
	c.mShipFailures = reg.Counter(metricShipFailures, "Ship cycles with at least one failure.")
	c.mShipRejects = reg.Counter(metricShipRejects, "Replicas rejected on fingerprint mismatch after restore.")
	c.mShipBytes = reg.Counter(metricShipBytes, "Snapshot bytes shipped to replicas (file size x replicas restored).")
	c.mShipDur = reg.Histogram(metricShipDuration, "Ship cycle wall time in seconds (snapshot + restore + verify, all replicas).")

	// Per-target families: liveness and the cache blocks, each under its
	// target's own label so nothing aggregates (or double counts) at the
	// metrics layer.
	for _, t := range c.targets {
		t := t
		// Pre-register the proxy families so a scrape shows every target's
		// series from the first request, zeros included — an absent series
		// is indistinguishable from a never-registered one to an alerting
		// rule.
		reg.Counter(metricRequests, "Proxied requests, by target.", obs.L("target", t.name))
		reg.Counter(metricErrors, "Proxied request transport failures, by target.", obs.L("target", t.name))
		reg.Histogram(metricRequestDuration, "Proxied request latency in seconds, by target.", obs.L("target", t.name))
		reg.GaugeFunc(metricTargetUp, "1 when the target serves traffic (healthy), else 0.", func() float64 {
			if targetState(t.state.Load()) == stateHealthy {
				return 1
			}
			return 0
		}, obs.L("target", t.name))
		cacheFn := func(sel func(serverStats) float64) func() float64 {
			return func() float64 {
				s, err := c.targetStats(t)
				if err != nil {
					return 0
				}
				return sel(s)
			}
		}
		reg.CounterFunc(metricTargetResultHits, "Result cache hits, by target.",
			cacheFn(func(s serverStats) float64 { return float64(s.Cache.Hits) }), obs.L("target", t.name))
		reg.CounterFunc(metricTargetResultMisses, "Result cache misses, by target.",
			cacheFn(func(s serverStats) float64 { return float64(s.Cache.Misses) }), obs.L("target", t.name))
		reg.CounterFunc(metricTargetViewHits, "CSR view cache hits, by target.",
			cacheFn(func(s serverStats) float64 { return float64(s.Views.Hits) }), obs.L("target", t.name))
		reg.CounterFunc(metricTargetViewMisses, "CSR view cache misses, by target.",
			cacheFn(func(s serverStats) float64 { return float64(s.Views.Misses) }), obs.L("target", t.name))
		reg.CounterFunc(metricTargetIndexHits, "Equality-index cache hits, by target.",
			cacheFn(func(s serverStats) float64 { return float64(s.Indexes.Hits) }), obs.L("target", t.name))
		reg.CounterFunc(metricTargetIndexMisses, "Equality-index cache misses, by target.",
			cacheFn(func(s serverStats) float64 { return float64(s.Indexes.Misses) }), obs.L("target", t.name))
	}
}

// --- coordinator endpoints ---

// targetView is one target's row in the GET /cluster topology report.
type targetView struct {
	Target     string `json:"target"`
	URL        string `json:"url"`
	Primary    bool   `json:"primary,omitempty"`
	State      string `json:"state"`
	Generation uint64 `json:"generation"`
	InFlight   int64  `json:"in_flight"`
	Eligible   bool   `json:"eligible"`
	Error      string `json:"error,omitempty"`
}

// handleCluster reports the live topology: every target's state, verified
// generation, load and last error, plus the serving session, consistency
// mode and last ship.
func (c *Coordinator) handleCluster(w http.ResponseWriter, r *http.Request) {
	targets := make([]targetView, 0, len(c.targets))
	for _, t := range c.targets {
		targets = append(targets, targetView{
			Target:     t.name,
			URL:        t.url,
			Primary:    t.primary,
			State:      targetState(t.state.Load()).String(),
			Generation: t.gen.Load(),
			InFlight:   t.inflight.Load(),
			Eligible:   !t.primary && c.eligible(t),
			Error:      t.errString(),
		})
	}
	consistency := "strict"
	if c.eventual {
		consistency = "eventual"
	}
	var lastShip string
	if ns := c.lastShip.Load(); ns > 0 {
		lastShip = time.Unix(0, ns).UTC().Format(time.RFC3339Nano)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":         c.session,
		"consistency":     consistency,
		"balance":         c.balance,
		"version":         c.version.Load(),
		"ship_path":       c.shipPath,
		"last_ship":       lastShip,
		"last_ship_bytes": c.lastShipBytes.Load(),
		"targets":         targets,
	})
}

// handleShipRequest is the operator's manual ship trigger: re-snapshot and
// re-verify every replica now (bootstrap, after replacing a rejected node,
// after out-of-band primary changes).
func (c *Coordinator) handleShipRequest(w http.ResponseWriter, r *http.Request) {
	if err := c.Ship(); err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"shipped": true, "version": c.version.Load()})
}

// handleStats aggregates GET /stats across the cluster: one block per
// target verbatim (so per-node figures stay attributable) and
// cluster-wide cache/views/indexes sums over exactly those blocks. Targets
// that fail to answer contribute zeros and carry their error in their
// block — an aggregation must degrade per node, not fail whole.
func (c *Coordinator) handleStats(w http.ResponseWriter, r *http.Request) {
	type targetBlock struct {
		Target   string     `json:"target"`
		URL      string     `json:"url"`
		State    string     `json:"state"`
		Sessions int        `json:"sessions"`
		Cache    cacheBlock `json:"cache"`
		Views    cacheBlock `json:"views"`
		Indexes  cacheBlock `json:"indexes"`
		Error    string     `json:"error,omitempty"`
	}
	var mu sync.Mutex
	blocks := make([]targetBlock, 0, len(c.targets))
	var wg sync.WaitGroup
	for _, t := range c.targets {
		wg.Add(1)
		go func(t *target) {
			defer wg.Done()
			s, err := c.targetStats(t)
			b := targetBlock{
				Target: t.name, URL: t.url,
				State:    targetState(t.state.Load()).String(),
				Sessions: s.Sessions, Cache: s.Cache, Views: s.Views, Indexes: s.Indexes,
			}
			if err != nil {
				b.Error = err.Error()
			}
			mu.Lock()
			blocks = append(blocks, b)
			mu.Unlock()
		}(t)
	}
	wg.Wait()
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Target < blocks[j].Target })

	var cache, views, indexes cacheBlock
	healthy := 0
	for _, b := range blocks {
		cache.add(b.Cache)
		views.add(b.Views)
		indexes.add(b.Indexes)
		if b.State == "healthy" && b.Target != "primary" {
			healthy++
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"session":  c.session,
		"version":  c.version.Load(),
		"replicas": map[string]int{"total": len(c.replicas), "healthy": healthy},
		"targets":  blocks,
		"cache":    cache,
		"views":    views,
		"indexes":  indexes,
	})
}

// handleMetrics serves the coordinator's registry in Prometheus text
// exposition format — cluster families only; each server keeps serving its
// own /metrics with the full per-process stack.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = c.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
