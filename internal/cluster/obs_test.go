package cluster

// Aggregation correctness and exposition hygiene for the coordinator's two
// telemetry surfaces. GET /stats must carry one block per distinct target
// with the cluster-wide cache/views/indexes sums equal to the sum over
// exactly those blocks — the bug class this guards is double counting (a
// target aggregated twice, or primary figures folded into a replica's).
// GET /metrics must parse as strict Prometheus text exposition with every
// per-target family labeled by target.

import (
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"
)

// coordStats mirrors the coordinator's GET /stats aggregation response.
type coordStats struct {
	Session  string `json:"session"`
	Version  uint64 `json:"version"`
	Replicas struct {
		Total   int `json:"total"`
		Healthy int `json:"healthy"`
	} `json:"replicas"`
	Targets []struct {
		Target   string     `json:"target"`
		URL      string     `json:"url"`
		State    string     `json:"state"`
		Sessions int        `json:"sessions"`
		Cache    cacheBlock `json:"cache"`
		Views    cacheBlock `json:"views"`
		Indexes  cacheBlock `json:"indexes"`
		Error    string     `json:"error,omitempty"`
	} `json:"targets"`
	Cache   cacheBlock `json:"cache"`
	Views   cacheBlock `json:"views"`
	Indexes cacheBlock `json:"indexes"`
}

func TestClusterStatsAggregation(t *testing.T) {
	coord, cts := newCluster(t, 2, nil)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}
	// Generate cache activity on the replicas: algo results are served
	// from each node's result cache on repeat, so identical reads fanned
	// across both replicas produce per-target hits to aggregate.
	for i := 0; i < 12; i++ {
		if code, _, body := cquery(t, cts.URL, "main", "algo G wcc"); code != http.StatusOK {
			t.Fatalf("warm read: status %d: %s", code, body)
		}
	}

	var agg coordStats
	if code := doJSON(t, "GET", cts.URL+"/stats", nil, &agg); code != http.StatusOK {
		t.Fatalf("GET /stats: status %d", code)
	}
	if len(agg.Targets) != 3 {
		t.Fatalf("aggregated %d target blocks, want 3 (primary + 2 replicas)", len(agg.Targets))
	}
	seen := map[string]bool{}
	var wantCache, wantViews, wantIndexes cacheBlock
	for _, b := range agg.Targets {
		if seen[b.Target] {
			t.Fatalf("target %s aggregated twice", b.Target)
		}
		if seen[b.URL] {
			t.Fatalf("URL %s aggregated twice", b.URL)
		}
		seen[b.Target], seen[b.URL] = true, true
		wantCache.add(b.Cache)
		wantViews.add(b.Views)
		wantIndexes.add(b.Indexes)
	}
	for _, name := range []string{"primary", "r1", "r2"} {
		if !seen[name] {
			t.Fatalf("no block for target %s: %+v", name, agg.Targets)
		}
	}
	if agg.Cache != wantCache || agg.Views != wantViews || agg.Indexes != wantIndexes {
		t.Fatalf("cluster-wide sums disagree with per-target blocks:\ncache %+v want %+v\nviews %+v want %+v\nindexes %+v want %+v",
			agg.Cache, wantCache, agg.Views, wantViews, agg.Indexes, wantIndexes)
	}
	// The reads above hit replica result caches; if the sum were double or
	// zero counted this would not line up with what the traffic implies.
	if agg.Cache.Hits == 0 {
		t.Fatal("repeated identical replica reads produced no aggregated cache hits")
	}
	if agg.Replicas.Total != 2 || agg.Replicas.Healthy != 2 {
		t.Fatalf("replica census %+v, want 2/2", agg.Replicas)
	}
}

// TestClusterMetricsExposition scrapes the coordinator's /metrics and
// checks it the way a real Prometheus scraper would — plus that every
// cluster family this package records is present, and per-target families
// carry a series per distinct target (no merged or duplicated labels).
func TestClusterMetricsExposition(t *testing.T) {
	coord, cts := newCluster(t, 2, nil)
	if err := coord.Ship(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		cquery(t, cts.URL, "main", "top PR 5")
	}
	cquery(t, cts.URL, "main", "gen rmat E2 5 32 1") // one mutation: ship metrics move

	resp, err := http.Get(cts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	out := string(raw)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	checkExposition(t, out)

	for _, name := range metricNames() {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("family %s missing from exposition", name)
		}
	}
	for _, series := range []string{
		`ringo_cluster_replicas{state="healthy"} 2`,
		`ringo_cluster_replicas{state="down"} 0`,
		`ringo_cluster_replicas{state="rejected"} 0`,
		`ringo_cluster_replicas{state="stale"} 0`,
		`ringo_cluster_target_up{target="primary"} 1`,
		`ringo_cluster_target_up{target="r1"} 1`,
		`ringo_cluster_target_up{target="r2"} 1`,
	} {
		if !strings.Contains(out, series) {
			t.Errorf("series %q missing from exposition", series)
		}
	}
	// Per-target request accounting: every target label appears, and the
	// ship counters reflect the bootstrap ship plus the post-mutation one.
	for _, target := range []string{"primary", "r1", "r2"} {
		if !strings.Contains(out, `ringo_cluster_requests_total{target="`+target+`"}`) {
			t.Errorf("no request counter for target %s", target)
		}
		if !strings.Contains(out, `ringo_cluster_result_cache_hits_total{target="`+target+`"}`) {
			t.Errorf("no labeled cache-hit counter for target %s", target)
		}
	}
	if v := metricValue(t, out, "ringo_cluster_ships_total"); v < 2 {
		t.Errorf("ships_total = %v, want >= 2 (bootstrap + post-mutation)", v)
	}
	if v := metricValue(t, out, "ringo_cluster_generation"); v != 2 {
		t.Errorf("generation = %v, want 2", v)
	}
}

// metricValue extracts one unlabeled sample from exposition text.
func metricValue(t *testing.T, out, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(out, "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(rest, 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}

// checkExposition validates Prometheus text format strictly: every sample
// belongs to a family announced by a preceding # TYPE, no series line
// repeats, values parse, and comments are only HELP/TYPE.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	helped := map[string]int{}
	seen := map[string]bool{}
	for n, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		lineNo := n + 1
		switch {
		case line == "":
			t.Fatalf("line %d: blank line", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			helped[name]++
			if helped[name] > 1 {
				t.Errorf("line %d: duplicate # HELP %s", lineNo, name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			if typed[name] {
				t.Errorf("line %d: duplicate # TYPE %s", lineNo, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("line %d: bad type %q", lineNo, typ)
			}
			typed[name] = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		default:
			var key, val string
			if i := strings.Index(line, "} "); strings.Contains(line, "{") && i >= 0 {
				key, val = line[:i+1], line[i+2:]
			} else if k, v, ok := strings.Cut(line, " "); ok {
				key, val = k, v
			} else {
				t.Fatalf("line %d: malformed sample %q", lineNo, line)
			}
			if seen[key] {
				t.Errorf("line %d: duplicate series %q", lineNo, key)
			}
			seen[key] = true
			name := key
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base = strings.TrimSuffix(base, suf)
			}
			if !typed[name] && !typed[base] {
				t.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, line)
			}
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("line %d: unparseable value %q", lineNo, val)
			}
		}
	}
}
