package cluster

// Snapshot shipping: how a replica comes to serve the primary's workspace,
// and how the coordinator proves it actually does.
//
// One ship is: snapshot the primary's serving session to the ship path
// (atomic temp-file + rename, so replicas never see a torn file), read the
// primary's per-object fingerprints and workspace content digest, then for
// each replica: pull it from the read rotation (zero its generation, so no
// new read routes to it mid-restore) and drain in-flight reads, drop and
// recreate the serving session — a fresh workspace restarts its version
// clock, which is what makes the restored versions reproduce the primary's
// byte for byte — restore the shipped file into it, and read the replica's
// fingerprints back. The replica joins the read
// rotation only if its digest and every name#version fingerprint equal the
// primary's; anything else marks it rejected with an error naming the
// first divergence. The name#version comparison tells which object
// diverged; the content digest catches divergence that version numbers
// cannot see at all (same names, same versions, different bytes).
//
// Ships serialize on shipMu and run in mutation order: each ship verifies
// replicas against the version captured when it started, so a mutation
// arriving mid-ship leaves the replicas one generation behind — strictly
// ineligible — until its own ship completes.

import (
	"fmt"
	"os"
	"time"
)

// fingerprintReport mirrors the server's GET /sessions/{id}/fingerprints
// response. Declared locally so the data plane (this package) depends only
// on the wire format, not on internal/server.
type fingerprintReport struct {
	Session string `json:"session"`
	Digest  string `json:"digest"`
	Objects []struct {
		Name        string `json:"name"`
		Fingerprint string `json:"fingerprint"`
	} `json:"objects"`
}

// shipDrainTimeout bounds how long a ship waits for reads already
// dispatched to a replica to finish before its serving session is
// dropped. Leaving rotation (gen 0) stops new reads instantly; the drain
// only covers requests in flight at that moment, so the window is small —
// the bound keeps a stuck read from stalling mutation acknowledgement.
const shipDrainTimeout = 2 * time.Second

// Ship distributes the primary's current serving-session snapshot to every
// replica that answers, verifying fingerprints before any of them may
// serve. It returns the first replica error (shipping continues past
// individual failures — one bad replica must not strand the others stale);
// a primary-side failure aborts, since there is nothing to ship.
func (c *Coordinator) Ship() error { return c.ship(true) }

// ship is Ship's engine. full ships every reachable replica — mutation
// re-ships (the version just changed, everyone is stale), bootstrap, and
// the operator's POST /cluster/ship (which must re-verify even replicas
// whose generation looks current, to catch out-of-band primary changes).
// Recovery ships from the health loop pass full=false and touch only the
// replicas that need it: a replica already verified at the target version
// stays in rotation untouched, and a rejected replica is retried only
// once its exponential backoff window has passed.
func (c *Coordinator) ship(full bool) error {
	c.shipMu.Lock()
	defer c.shipMu.Unlock()
	v := c.version.Load()
	if v == 0 {
		// Bootstrap: the first ship is generation 1, so "gen 0" can keep
		// meaning "never verified" everywhere.
		c.version.CompareAndSwap(0, 1)
		v = c.version.Load()
	}
	start := time.Now()

	// 1. Snapshot the primary's serving session to the shared ship path.
	if err := c.doJSON(c.primary, "POST", "/sessions/"+c.session+"/snapshot",
		map[string]string{"path": c.shipPath}, nil); err != nil {
		c.mShipFailures.Inc()
		return fmt.Errorf("ship: snapshot on primary: %w", err)
	}
	var shipBytes int64
	if fi, err := os.Stat(c.shipPath); err == nil {
		// Best effort: the coordinator usually shares the filesystem the
		// ship path lives on; when it does not, the byte metrics stay 0.
		shipBytes = fi.Size()
	}

	// 2. The primary's identity: what every replica must reproduce.
	var want fingerprintReport
	if err := c.doJSON(c.primary, "GET", "/sessions/"+c.session+"/fingerprints", nil, &want); err != nil {
		c.mShipFailures.Inc()
		return fmt.Errorf("ship: primary fingerprints: %w", err)
	}

	// 3. Restore and verify, replica by replica.
	var firstErr error
	shipped := 0
	for _, t := range c.replicas {
		st := targetState(t.state.Load())
		if st == stateDown {
			// Down replicas are unreachable by definition; the health loop
			// re-ships them the moment they answer a probe again.
			continue
		}
		if !full {
			if st == stateHealthy && t.gen.Load() == v {
				// Already verified at exactly this version: re-shipping
				// would drop its serving session mid-rotation for nothing.
				continue
			}
			if st == stateRejected && t.inShipBackoff() {
				// A permanently bad replica re-rejects every attempt;
				// retry on the exponential schedule, not every tick.
				continue
			}
		}
		if err := c.shipReplica(t, &want); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			if c.logger != nil {
				c.logger.Error("ship failed", "target", t.name, "url", t.url, "err", err)
			}
			continue
		}
		t.gen.Store(v)
		t.state.Store(int32(stateHealthy))
		t.setErr(nil)
		t.clearShipBackoff()
		shipped++
	}

	elapsed := time.Since(start)
	c.mShips.Inc()
	c.mShipBytes.Add(uint64(shipBytes) * uint64(shipped))
	c.mShipDur.Observe(elapsed)
	if firstErr != nil {
		c.mShipFailures.Inc()
	}
	c.lastShip.Store(time.Now().UnixNano())
	c.lastShipBytes.Store(shipBytes)
	if c.logger != nil {
		c.logger.Info("ship complete",
			"version", v, "replicas", shipped, "of", len(c.replicas),
			"bytes", shipBytes, "digest", want.Digest, "elapsed", elapsed)
	}
	return firstErr
}

// shipReplica restores the shipped snapshot into a fresh serving session
// on one replica and verifies the restored workspace's fingerprints
// against the primary's. Transport and HTTP failures mark the replica
// down; a fingerprint mismatch marks it rejected — a state only a later
// clean ship can clear, because the replica is reachable and healthy yet
// provably serving the wrong bytes.
func (c *Coordinator) shipReplica(t *target, want *fingerprintReport) error {
	// Leave the read rotation before touching the serving session: gen 0
	// is ineligible under both consistency modes, so no new read routes
	// here while the session is dropped and restored — a read landing in
	// that window would see a missing or half-restored session and return
	// that to the client (an HTTP status is a response, not a retried
	// transport failure). Then let reads already dispatched finish against
	// the old session, bounded by shipDrainTimeout.
	t.gen.Store(0)
	for deadline := time.Now().Add(shipDrainTimeout); t.inflight.Load() > 0 && time.Now().Before(deadline); {
		time.Sleep(2 * time.Millisecond)
	}
	// Drop-and-recreate gives the restore a zero version clock (exact
	// fingerprint reproduction) and purges every cache keyed to the old
	// session instance on the replica.
	if err := c.doJSON(t, "DELETE", "/sessions/"+c.session, nil, nil); err != nil {
		// A missing session is the normal first-ship case; anything else
		// (unreachable, auth) will re-fail on the create below and be
		// reported there.
		_ = err
	}
	if err := c.doJSON(t, "POST", "/sessions", map[string]string{"id": c.session}, nil); err != nil {
		c.markDown(t, err)
		return fmt.Errorf("replica %s: create session: %w", t.name, err)
	}
	if err := c.doJSON(t, "POST", "/sessions/"+c.session+"/restore",
		map[string]string{"path": c.shipPath}, nil); err != nil {
		c.markDown(t, err)
		return fmt.Errorf("replica %s: restore %s: %w", t.name, c.shipPath, err)
	}
	var got fingerprintReport
	if err := c.doJSON(t, "GET", "/sessions/"+c.session+"/fingerprints", nil, &got); err != nil {
		c.markDown(t, err)
		return fmt.Errorf("replica %s: fingerprints: %w", t.name, err)
	}
	if err := compareFingerprints(want, &got); err != nil {
		t.state.Store(int32(stateRejected))
		t.gen.Store(0)
		t.setErr(err)
		t.scheduleShipBackoff(c.cfg.HealthInterval, c.cfg.MaxBackoff)
		c.mShipRejects.Inc()
		return fmt.Errorf("replica %s (%s) rejected: %w", t.name, t.url, err)
	}
	return nil
}

// compareFingerprints decides whether a replica's restored workspace is
// the primary's, and if not, says precisely how it differs: the first
// divergent object by name#version, a missing or extra binding, or — when
// every version number agrees — the content digest, which means the bytes
// themselves diverged (a tampered or corrupted ship).
func compareFingerprints(want, got *fingerprintReport) error {
	if len(got.Objects) != len(want.Objects) {
		return fmt.Errorf("fingerprint mismatch: restored %d objects, primary has %d", len(got.Objects), len(want.Objects))
	}
	for i, w := range want.Objects {
		g := got.Objects[i]
		if g.Name != w.Name || g.Fingerprint != w.Fingerprint {
			return fmt.Errorf("fingerprint mismatch on object %d: primary %s (%s), replica %s (%s)",
				i, w.Name, w.Fingerprint, g.Name, g.Fingerprint)
		}
	}
	if got.Digest != want.Digest {
		return fmt.Errorf("workspace digest mismatch: primary %s, replica %s — object versions agree but the restored bytes differ (corrupted or tampered ship)",
			want.Digest, got.Digest)
	}
	return nil
}
