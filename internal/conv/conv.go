// Package conv implements Ringo's fast conversions between tables and
// graphs (§2.4 of Perez et al., SIGMOD 2015).
//
// Table to graph uses the paper's "sort-first" algorithm: copy the source
// and destination columns, sort the copies in parallel, compute the exact
// number of neighbors for each node from the sorted runs, and then copy the
// per-node neighbor vectors into the graph's node hash table. Sorting
// parallelizes well, exact degree counts remove any need to guess hash
// table or vector sizes in advance, and workers write disjoint vectors, so
// there is no contention and no thread-safe data structure on the hot path.
//
// Graph to table partitions the graph's nodes among workers, pre-allocates
// the output table, and assigns each worker a disjoint output range
// computed by a prefix sum over node degrees.
package conv

import (
	"fmt"

	"ringo/internal/graph"
	"ringo/internal/par"
	"ringo/internal/table"
)

// ToDirected converts an edge table to a directed graph using the
// sort-first algorithm. srcCol and dstCol name the edge source and
// destination columns; they must be Int or String columns (string cells
// become nodes identified by their pool ids). Duplicate rows collapse to a
// single edge. The heavy lifting — parallel pair sort, dedup, flat-arena
// adjacency materialization — lives in graph.BuildDirectedCols, shared with
// the parallel text-ingest pipeline.
func ToDirected(t *table.Table, srcCol, dstCol string) (*graph.Directed, error) {
	srcs, dsts, err := edgeColumns(t, srcCol, dstCol)
	if err != nil {
		return nil, err
	}
	return graph.BuildDirectedCols(srcs, dsts)
}

// ToUndirected converts an edge table to an undirected graph with the same
// sort-first approach; each table row (u,v) contributes the edge {u,v},
// duplicates and reverse duplicates collapse.
func ToUndirected(t *table.Table, srcCol, dstCol string) (*graph.Undirected, error) {
	srcs, dsts, err := edgeColumns(t, srcCol, dstCol)
	if err != nil {
		return nil, err
	}
	return graph.BuildUndirectedCols(srcs, dsts)
}

// NaiveToDirected is the per-edge-insert baseline the sort-first algorithm
// is benchmarked against (ablation for the conversion design choice): it
// simply calls AddEdge for every row, paying a hash lookup plus a sorted
// insertion per edge.
func NaiveToDirected(t *table.Table, srcCol, dstCol string) (*graph.Directed, error) {
	srcs, dsts, err := edgeColumns(t, srcCol, dstCol)
	if err != nil {
		return nil, err
	}
	g := graph.NewDirected()
	for i := range srcs {
		g.AddEdge(srcs[i], dsts[i])
	}
	return g, nil
}

// ToEdgeTable converts a directed graph to an edge table with the given
// column names. Workers receive disjoint node partitions and write disjoint
// pre-allocated output ranges, so the export runs in parallel without
// synchronization. Edges are emitted in (source, destination) sorted order.
func ToEdgeTable(g *graph.Directed, srcName, dstName string) (*table.Table, error) {
	nodes := g.Nodes()
	n := len(nodes)
	offsets := make([]int64, n+1)
	for i, id := range nodes {
		offsets[i+1] = offsets[i] + int64(g.OutDeg(id))
	}
	total := offsets[n]
	srcCol := make([]int64, total)
	dstCol := make([]int64, total)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			at := offsets[i]
			id := nodes[i]
			for _, dst := range g.OutNeighbors(id) {
				srcCol[at] = id
				dstCol[at] = dst
				at++
			}
		}
	})
	return table.FromIntColumns([]string{srcName, dstName}, [][]int64{srcCol, dstCol})
}

// ToNodeTable converts a graph's node set to a single-column table of node
// ids in ascending order.
func ToNodeTable(g *graph.Directed, name string) (*table.Table, error) {
	return table.FromIntColumns([]string{name}, [][]int64{g.Nodes()})
}

// ToUndirectedEdgeTable exports an undirected graph as an edge table with
// one row per edge, src <= dst.
func ToUndirectedEdgeTable(g *graph.Undirected, srcName, dstName string) (*table.Table, error) {
	nodes := g.Nodes()
	n := len(nodes)
	offsets := make([]int64, n+1)
	for i, id := range nodes {
		// Count neighbors >= id: each edge emitted once from its smaller
		// endpoint (self-loops once).
		cnt := 0
		for _, nbr := range g.Neighbors(id) {
			if nbr >= id {
				cnt++
			}
		}
		offsets[i+1] = offsets[i] + int64(cnt)
	}
	total := offsets[n]
	srcCol := make([]int64, total)
	dstCol := make([]int64, total)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			at := offsets[i]
			id := nodes[i]
			for _, nbr := range g.Neighbors(id) {
				if nbr >= id {
					srcCol[at] = id
					dstCol[at] = nbr
					at++
				}
			}
		}
	})
	return table.FromIntColumns([]string{srcName, dstName}, [][]int64{srcCol, dstCol})
}

// edgeColumns fetches the two node-id columns backing an edge table.
func edgeColumns(t *table.Table, srcCol, dstCol string) (srcs, dsts []int64, err error) {
	srcs, err = t.IntCol(srcCol)
	if err != nil {
		return nil, nil, fmt.Errorf("conv: source column: %w", err)
	}
	dsts, err = t.IntCol(dstCol)
	if err != nil {
		return nil, nil, fmt.Errorf("conv: destination column: %w", err)
	}
	return srcs, dsts, nil
}
