// Package conv implements Ringo's fast conversions between tables and
// graphs (§2.4 of Perez et al., SIGMOD 2015).
//
// Table to graph uses the paper's "sort-first" algorithm: copy the source
// and destination columns, sort the copies in parallel, compute the exact
// number of neighbors for each node from the sorted runs, and then copy the
// per-node neighbor vectors into the graph's node hash table. Sorting
// parallelizes well, exact degree counts remove any need to guess hash
// table or vector sizes in advance, and workers write disjoint vectors, so
// there is no contention and no thread-safe data structure on the hot path.
//
// Graph to table partitions the graph's nodes among workers, pre-allocates
// the output table, and assigns each worker a disjoint output range
// computed by a prefix sum over node degrees.
package conv

import (
	"fmt"

	"ringo/internal/graph"
	"ringo/internal/par"
	"ringo/internal/table"
)

// ToDirected converts an edge table to a directed graph using the
// sort-first algorithm. srcCol and dstCol name the edge source and
// destination columns; they must be Int or String columns (string cells
// become nodes identified by their pool ids). Duplicate rows collapse to a
// single edge.
func ToDirected(t *table.Table, srcCol, dstCol string) (*graph.Directed, error) {
	srcs, dsts, err := edgeColumns(t, srcCol, dstCol)
	if err != nil {
		return nil, err
	}
	// Copies of both columns, in both orientations.
	k1 := append([]int64(nil), srcs...)
	v1 := append([]int64(nil), dsts...)
	k2 := append([]int64(nil), dsts...)
	v2 := append([]int64(nil), srcs...)
	par.Do(
		func() { par.SortPairs(k1, v1) },
		func() { par.SortPairs(k2, v2) },
	)

	ids := mergeUniqueSorted(k1, k2)
	outRuns := runOffsets(ids, k1)
	inRuns := runOffsets(ids, k2)

	out := make([][]int64, len(ids))
	in := make([][]int64, len(ids))
	par.ForEach(len(ids), func(i int) {
		out[i] = dedupCopy(v1[outRuns[i][0]:outRuns[i][1]])
		in[i] = dedupCopy(v2[inRuns[i][0]:inRuns[i][1]])
	})
	return graph.BuildDirectedBulk(ids, in, out)
}

// ToUndirected converts an edge table to an undirected graph with the same
// sort-first approach; each table row (u,v) contributes the edge {u,v},
// duplicates and reverse duplicates collapse.
func ToUndirected(t *table.Table, srcCol, dstCol string) (*graph.Undirected, error) {
	srcs, dsts, err := edgeColumns(t, srcCol, dstCol)
	if err != nil {
		return nil, err
	}
	n := len(srcs)
	keys := make([]int64, 2*n)
	vals := make([]int64, 2*n)
	copy(keys[:n], srcs)
	copy(vals[:n], dsts)
	copy(keys[n:], dsts)
	copy(vals[n:], srcs)
	par.SortPairs(keys, vals)

	ids := uniqueSorted(keys)
	runs := runOffsets(ids, keys)
	adj := make([][]int64, len(ids))
	par.ForEach(len(ids), func(i int) {
		adj[i] = dedupCopy(vals[runs[i][0]:runs[i][1]])
	})
	return graph.BuildUndirectedBulk(ids, adj)
}

// NaiveToDirected is the per-edge-insert baseline the sort-first algorithm
// is benchmarked against (ablation for the conversion design choice): it
// simply calls AddEdge for every row, paying a hash lookup plus a sorted
// insertion per edge.
func NaiveToDirected(t *table.Table, srcCol, dstCol string) (*graph.Directed, error) {
	srcs, dsts, err := edgeColumns(t, srcCol, dstCol)
	if err != nil {
		return nil, err
	}
	g := graph.NewDirected()
	for i := range srcs {
		g.AddEdge(srcs[i], dsts[i])
	}
	return g, nil
}

// ToEdgeTable converts a directed graph to an edge table with the given
// column names. Workers receive disjoint node partitions and write disjoint
// pre-allocated output ranges, so the export runs in parallel without
// synchronization. Edges are emitted in (source, destination) sorted order.
func ToEdgeTable(g *graph.Directed, srcName, dstName string) (*table.Table, error) {
	nodes := g.Nodes()
	n := len(nodes)
	offsets := make([]int64, n+1)
	for i, id := range nodes {
		offsets[i+1] = offsets[i] + int64(g.OutDeg(id))
	}
	total := offsets[n]
	srcCol := make([]int64, total)
	dstCol := make([]int64, total)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			at := offsets[i]
			id := nodes[i]
			for _, dst := range g.OutNeighbors(id) {
				srcCol[at] = id
				dstCol[at] = dst
				at++
			}
		}
	})
	return table.FromIntColumns([]string{srcName, dstName}, [][]int64{srcCol, dstCol})
}

// ToNodeTable converts a graph's node set to a single-column table of node
// ids in ascending order.
func ToNodeTable(g *graph.Directed, name string) (*table.Table, error) {
	return table.FromIntColumns([]string{name}, [][]int64{g.Nodes()})
}

// ToUndirectedEdgeTable exports an undirected graph as an edge table with
// one row per edge, src <= dst.
func ToUndirectedEdgeTable(g *graph.Undirected, srcName, dstName string) (*table.Table, error) {
	nodes := g.Nodes()
	n := len(nodes)
	offsets := make([]int64, n+1)
	for i, id := range nodes {
		// Count neighbors >= id: each edge emitted once from its smaller
		// endpoint (self-loops once).
		cnt := 0
		for _, nbr := range g.Neighbors(id) {
			if nbr >= id {
				cnt++
			}
		}
		offsets[i+1] = offsets[i] + int64(cnt)
	}
	total := offsets[n]
	srcCol := make([]int64, total)
	dstCol := make([]int64, total)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			at := offsets[i]
			id := nodes[i]
			for _, nbr := range g.Neighbors(id) {
				if nbr >= id {
					srcCol[at] = id
					dstCol[at] = nbr
					at++
				}
			}
		}
	})
	return table.FromIntColumns([]string{srcName, dstName}, [][]int64{srcCol, dstCol})
}

// edgeColumns fetches the two node-id columns backing an edge table.
func edgeColumns(t *table.Table, srcCol, dstCol string) (srcs, dsts []int64, err error) {
	srcs, err = t.IntCol(srcCol)
	if err != nil {
		return nil, nil, fmt.Errorf("conv: source column: %w", err)
	}
	dsts, err = t.IntCol(dstCol)
	if err != nil {
		return nil, nil, fmt.Errorf("conv: destination column: %w", err)
	}
	return srcs, dsts, nil
}

// mergeUniqueSorted returns the sorted union of the distinct values of two
// sorted slices.
func mergeUniqueSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)/2+len(b)/2)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int64
		switch {
		case j >= len(b) || (i < len(a) && a[i] <= b[j]):
			v = a[i]
			i++
		default:
			v = b[j]
			j++
		}
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		out = append(out, v)
	}
	return out
}

// uniqueSorted returns the distinct values of a sorted slice.
func uniqueSorted(a []int64) []int64 {
	out := make([]int64, 0, len(a)/2)
	for i := 0; i < len(a); {
		v := a[i]
		out = append(out, v)
		for i < len(a) && a[i] == v {
			i++
		}
	}
	return out
}

// runOffsets returns, for each id in ids (sorted unique), the [start, end)
// range of its run in the sorted keys slice. Ids with no run get an empty
// range.
func runOffsets(ids, keys []int64) [][2]int {
	runs := make([][2]int, len(ids))
	p := 0
	for i, id := range ids {
		for p < len(keys) && keys[p] < id {
			p++
		}
		start := p
		for p < len(keys) && keys[p] == id {
			p++
		}
		runs[i] = [2]int{start, p}
	}
	return runs
}

// dedupCopy copies a sorted slice, dropping adjacent duplicates. It returns
// nil for empty input so empty adjacency vectors carry no allocation.
func dedupCopy(a []int64) []int64 {
	if len(a) == 0 {
		return nil
	}
	out := make([]int64, 0, len(a))
	prev := a[0] + 1 // differs from a[0]
	for _, v := range a {
		if v != prev {
			out = append(out, v)
			prev = v
		}
	}
	return out
}
