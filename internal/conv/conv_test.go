package conv

import (
	"testing"
	"testing/quick"

	"ringo/internal/table"
)

func edgeTable(t *testing.T, edges ...[2]int64) *table.Table {
	t.Helper()
	src := make([]int64, len(edges))
	dst := make([]int64, len(edges))
	for i, e := range edges {
		src[i], dst[i] = e[0], e[1]
	}
	tbl, err := table.FromIntColumns([]string{"src", "dst"}, [][]int64{src, dst})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestToDirectedBasic(t *testing.T) {
	tbl := edgeTable(t, [2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 3}, [2]int64{3, 1})
	g, err := ToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Fatalf("dims = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	for _, e := range [][2]int64{{1, 2}, {1, 3}, {2, 3}, {3, 1}} {
		if !g.HasEdge(e[0], e[1]) {
			t.Fatalf("missing edge %v", e)
		}
	}
	if g.HasEdge(2, 1) {
		t.Fatal("reverse edge invented")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestToDirectedDeduplicatesRows(t *testing.T) {
	tbl := edgeTable(t, [2]int64{1, 2}, [2]int64{1, 2}, [2]int64{1, 2})
	g, err := ToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d, want 1 after dedup", g.NumEdges())
	}
}

func TestToDirectedSelfLoopsAndIsolatedSources(t *testing.T) {
	tbl := edgeTable(t, [2]int64{5, 5}, [2]int64{7, 5})
	g, err := ToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(5, 5) || !g.HasEdge(7, 5) {
		t.Fatal("edges missing")
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestToDirectedEmptyTable(t *testing.T) {
	tbl, err := table.FromIntColumns([]string{"src", "dst"}, [][]int64{{}, {}})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty table produced (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	u, err := ToUndirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != 0 {
		t.Fatal("empty undirected conversion produced nodes")
	}
	back, err := ToEdgeTable(g, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != 0 {
		t.Fatal("empty graph export produced rows")
	}
}

func TestToDirectedErrors(t *testing.T) {
	tbl := edgeTable(t, [2]int64{1, 2})
	if _, err := ToDirected(tbl, "nope", "dst"); err == nil {
		t.Fatal("missing source column accepted")
	}
	if _, err := ToDirected(tbl, "src", "nope"); err == nil {
		t.Fatal("missing destination column accepted")
	}
	ft := table.MustNew(table.Schema{{Name: "f", Type: table.Float}, {Name: "d", Type: table.Int}})
	if _, err := ToDirected(ft, "f", "d"); err == nil {
		t.Fatal("float source column accepted")
	}
}

func TestToDirectedStringColumns(t *testing.T) {
	tbl := table.MustNew(table.Schema{{Name: "a", Type: table.String}, {Name: "b", Type: table.String}})
	for _, e := range [][2]string{{"x", "y"}, {"y", "z"}, {"x", "y"}} {
		if err := tbl.AppendRow(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := ToDirected(tbl, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("string graph dims = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
}

func TestToUndirectedMergesDirections(t *testing.T) {
	tbl := edgeTable(t, [2]int64{1, 2}, [2]int64{2, 1}, [2]int64{2, 3}, [2]int64{4, 4})
	g, err := ToUndirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 { // {1,2}, {2,3}, {4,4}
		t.Fatalf("undirected edges = %d, want 3", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNaiveMatchesSortFirst(t *testing.T) {
	tbl := edgeTable(t,
		[2]int64{1, 2}, [2]int64{3, 4}, [2]int64{1, 2}, [2]int64{4, 1}, [2]int64{2, 2})
	fast, err := ToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if fast.NumNodes() != naive.NumNodes() || fast.NumEdges() != naive.NumEdges() {
		t.Fatalf("fast (%d,%d) != naive (%d,%d)",
			fast.NumNodes(), fast.NumEdges(), naive.NumNodes(), naive.NumEdges())
	}
	naive.ForEdges(func(src, dst int64) {
		if !fast.HasEdge(src, dst) {
			t.Fatalf("sort-first lost edge %d->%d", src, dst)
		}
	})
}

func TestToEdgeTableRoundTrip(t *testing.T) {
	tbl := edgeTable(t, [2]int64{1, 2}, [2]int64{1, 3}, [2]int64{2, 3}, [2]int64{3, 1})
	g, err := ToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	back, err := ToEdgeTable(g, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if int64(back.NumRows()) != g.NumEdges() {
		t.Fatalf("edge table rows = %d, graph edges = %d", back.NumRows(), g.NumEdges())
	}
	g2, err := ToDirected(back, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	g.ForEdges(func(src, dst int64) {
		if !g2.HasEdge(src, dst) {
			t.Fatalf("round trip lost %d->%d", src, dst)
		}
	})
}

func TestToNodeTable(t *testing.T) {
	tbl := edgeTable(t, [2]int64{5, 1}, [2]int64{2, 5})
	g, _ := ToDirected(tbl, "src", "dst")
	nt, err := ToNodeTable(g, "node")
	if err != nil {
		t.Fatal(err)
	}
	col, _ := nt.IntCol("node")
	want := []int64{1, 2, 5}
	if len(col) != len(want) {
		t.Fatalf("node table = %v", col)
	}
	for i, v := range col {
		if v != want[i] {
			t.Fatalf("node table = %v, want %v", col, want)
		}
	}
}

func TestToUndirectedEdgeTable(t *testing.T) {
	tbl := edgeTable(t, [2]int64{1, 2}, [2]int64{2, 1}, [2]int64{3, 3})
	g, _ := ToUndirected(tbl, "src", "dst")
	et, err := ToUndirectedEdgeTable(g, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if int64(et.NumRows()) != g.NumEdges() {
		t.Fatalf("edge table rows = %d, want %d", et.NumRows(), g.NumEdges())
	}
	a, _ := et.IntCol("a")
	b, _ := et.IntCol("b")
	for i := range a {
		if a[i] > b[i] {
			t.Fatalf("row %d not normalized: %d > %d", i, a[i], b[i])
		}
	}
}

// Property: sort-first conversion equals a reference map-based edge-set
// construction for arbitrary edge tables.
func TestToDirectedMatchesReferenceProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		src := make([]int64, len(edges))
		dst := make([]int64, len(edges))
		ref := map[[2]int64]bool{}
		nodes := map[int64]bool{}
		for i, e := range edges {
			s, d := int64(e[0]%32), int64(e[1]%32)
			src[i], dst[i] = s, d
			ref[[2]int64{s, d}] = true
			nodes[s], nodes[d] = true, true
		}
		tbl, err := table.FromIntColumns([]string{"s", "d"}, [][]int64{src, dst})
		if err != nil {
			return false
		}
		g, err := ToDirected(tbl, "s", "d")
		if err != nil {
			return false
		}
		if g.Validate() != nil {
			return false
		}
		if g.NumNodes() != len(nodes) || g.NumEdges() != int64(len(ref)) {
			return false
		}
		for e := range ref {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: table -> graph -> table -> graph is a fixed point.
func TestConversionFixedPointProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		src := make([]int64, len(edges))
		dst := make([]int64, len(edges))
		for i, e := range edges {
			src[i], dst[i] = int64(e[0]%16), int64(e[1]%16)
		}
		tbl, err := table.FromIntColumns([]string{"s", "d"}, [][]int64{src, dst})
		if err != nil {
			return false
		}
		g1, err := ToDirected(tbl, "s", "d")
		if err != nil {
			return false
		}
		t2, err := ToEdgeTable(g1, "s", "d")
		if err != nil {
			return false
		}
		g2, err := ToDirected(t2, "s", "d")
		if err != nil {
			return false
		}
		if g1.NumNodes() != g2.NumNodes() || g1.NumEdges() != g2.NumEdges() {
			return false
		}
		ok := true
		g1.ForEdges(func(s, d int64) {
			if !g2.HasEdge(s, d) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestToDirectedLargeParallel(t *testing.T) {
	// Large enough to engage parallel sorting and parallel vector fill.
	const n = 30_000
	src := make([]int64, n)
	dst := make([]int64, n)
	x := uint64(1)
	for i := 0; i < n; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		src[i] = int64(x % 2000)
		dst[i] = int64((x >> 20) % 2000)
	}
	tbl, err := table.FromIntColumns([]string{"s", "d"}, [][]int64{src, dst})
	if err != nil {
		t.Fatal(err)
	}
	g, err := ToDirected(tbl, "s", "d")
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	naive, err := NaiveToDirected(tbl, "s", "d")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != naive.NumEdges() || g.NumNodes() != naive.NumNodes() {
		t.Fatalf("fast (%d,%d) != naive (%d,%d)",
			g.NumNodes(), g.NumEdges(), naive.NumNodes(), naive.NumEdges())
	}
}
