package conv

import (
	"fmt"

	"ringo/internal/graph"
	"ringo/internal/table"
)

// ToNetwork converts an edge table to an attributed directed multigraph:
// every row becomes its own edge (parallel edges are preserved, unlike
// ToDirected), and each named attribute column is attached to the edge as a
// typed attribute. This is Ringo's path for carrying row payloads —
// timestamps, weights, labels — onto the graph so that analytics results
// can be related back to the original records.
func ToNetwork(t *table.Table, srcCol, dstCol string, attrCols ...string) (*graph.Network, error) {
	srcs, dsts, err := edgeColumns(t, srcCol, dstCol)
	if err != nil {
		return nil, err
	}
	n := graph.NewNetwork()

	type attrPlan struct {
		name string
		typ  table.Type
		col  int
	}
	plans := make([]attrPlan, 0, len(attrCols))
	for _, name := range attrCols {
		i := t.ColIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("conv: no attribute column %q", name)
		}
		typ, _ := t.ColType(name)
		var at graph.AttrType
		switch typ {
		case table.Int:
			at = graph.AttrInt
		case table.Float:
			at = graph.AttrFloat
		default:
			at = graph.AttrString
		}
		if err := n.DeclareEdgeAttr(name, at); err != nil {
			return nil, err
		}
		plans = append(plans, attrPlan{name, typ, i})
	}

	for row := range srcs {
		eid := n.AddEdge(srcs[row], dsts[row])
		for _, p := range plans {
			var v any
			switch p.typ {
			case table.Int:
				v = t.IntAt(p.col, row)
			case table.Float:
				v = t.FloatAt(p.col, row)
			default:
				v = t.StrAt(p.col, row)
			}
			if err := n.SetEdgeAttr(p.name, eid, v); err != nil {
				return nil, err
			}
		}
	}
	return n, nil
}
