package conv

import (
	"testing"

	"ringo/internal/table"
)

func TestToNetworkKeepsParallelEdgesAndAttrs(t *testing.T) {
	tbl := table.MustNew(table.Schema{
		{Name: "src", Type: table.Int},
		{Name: "dst", Type: table.Int},
		{Name: "w", Type: table.Float},
		{Name: "kind", Type: table.String},
		{Name: "ts", Type: table.Int},
	})
	rows := []struct {
		src, dst int
		w        float64
		kind     string
		ts       int
	}{
		{1, 2, 0.5, "follow", 100},
		{1, 2, 0.9, "reply", 200}, // parallel edge
		{2, 3, 0.1, "follow", 300},
	}
	for _, r := range rows {
		if err := tbl.AppendRow(r.src, r.dst, r.w, r.kind, r.ts); err != nil {
			t.Fatal(err)
		}
	}
	n, err := ToNetwork(tbl, "src", "dst", "w", "kind", "ts")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumNodes() != 3 || n.NumEdges() != 3 {
		t.Fatalf("network dims = (%d,%d)", n.NumNodes(), n.NumEdges())
	}
	if len(n.OutEdges(1)) != 2 {
		t.Fatal("parallel edges merged")
	}
	// Attributes preserved per edge, in row order of AddEdge ids.
	for i, r := range rows {
		eid := int32(i)
		src, dst, ok := n.EdgeEnds(eid)
		if !ok || src != int64(r.src) || dst != int64(r.dst) {
			t.Fatalf("edge %d ends = (%d,%d,%v)", eid, src, dst, ok)
		}
		if v, _ := n.EdgeAttr("w", eid); v != r.w {
			t.Fatalf("edge %d w = %v", eid, v)
		}
		if v, _ := n.EdgeAttr("kind", eid); v != r.kind {
			t.Fatalf("edge %d kind = %v", eid, v)
		}
		if v, _ := n.EdgeAttr("ts", eid); v != int64(r.ts) {
			t.Fatalf("edge %d ts = %v", eid, v)
		}
	}
	// The simple-graph projection merges the parallel edge.
	g := n.AsDirected()
	if g.NumEdges() != 2 {
		t.Fatalf("projected edges = %d", g.NumEdges())
	}
}

func TestToNetworkErrors(t *testing.T) {
	tbl := edgeTable(t, [2]int64{1, 2})
	if _, err := ToNetwork(tbl, "src", "dst", "missing"); err == nil {
		t.Fatal("missing attribute column accepted")
	}
	if _, err := ToNetwork(tbl, "nope", "dst"); err == nil {
		t.Fatal("missing source column accepted")
	}
}
