package core

import (
	"strings"
	"testing"
	"time"

	"ringo/internal/gen"
)

func TestToGraphAndBack(t *testing.T) {
	tbl := gen.RMATTable(8, 500, 3)
	g, err := ToGraph(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() == 0 || g.NumEdges() == 0 {
		t.Fatal("empty graph from RMAT table")
	}
	back, err := ToTable(g, "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	if int64(back.NumRows()) != g.NumEdges() {
		t.Fatalf("edge table rows %d != edges %d", back.NumRows(), g.NumEdges())
	}
	nt, err := ToNodeTable(g, "node")
	if err != nil {
		t.Fatal(err)
	}
	if nt.NumRows() != g.NumNodes() {
		t.Fatal("node table wrong size")
	}
	u, err := ToUGraph(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	if u.NumNodes() != g.NumNodes() {
		t.Fatal("undirected node count differs")
	}
}

func TestGetPageRankSumsToOne(t *testing.T) {
	tbl := gen.RMATTable(8, 500, 3)
	g, _ := ToGraph(tbl, "src", "dst")
	pr := GetPageRank(g)
	var sum float64
	for _, v := range pr {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("PageRank sum = %v", sum)
	}
}

func TestTableFromMapSortedDescending(t *testing.T) {
	m := map[int64]float64{1: 0.2, 2: 0.9, 3: 0.5}
	tbl, err := TableFromMap(m, "User", "Scr")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 {
		t.Fatalf("rows = %d", tbl.NumRows())
	}
	scr, _ := tbl.FloatCol("Scr")
	for i := 1; i < len(scr); i++ {
		if scr[i-1] < scr[i] {
			t.Fatalf("scores not descending: %v", scr)
		}
	}
	user, _ := tbl.IntCol("User")
	if user[0] != 2 {
		t.Fatalf("top user = %d", user[0])
	}
}

func TestTableFromIntMap(t *testing.T) {
	tbl, err := TableFromIntMap(map[int64]int{5: 1, 3: 0}, "node", "comp")
	if err != nil {
		t.Fatal(err)
	}
	n, _ := tbl.IntCol("node")
	if n[0] != 3 || n[1] != 5 {
		t.Fatalf("keys = %v", n)
	}
}

func TestWorkspace(t *testing.T) {
	w := NewWorkspace()
	tbl := gen.RMATTable(6, 50, 1)
	w.Set("P", Object{Table: tbl})
	g, _ := ToGraph(tbl, "src", "dst")
	w.Set("G", Object{Graph: g})
	w.Set("PR", Object{Scores: GetPageRank(g)})

	if got, _ := w.Table("P"); got != tbl {
		t.Fatal("Table lookup failed")
	}
	if _, err := w.Table("G"); err == nil {
		t.Fatal("graph returned as table")
	}
	if _, err := w.Graph("missing"); err == nil {
		t.Fatal("missing name accepted")
	}
	if _, err := w.Scores("PR"); err != nil {
		t.Fatal(err)
	}
	names := w.Names()
	if len(names) != 3 || names[0] != "P" || names[2] != "PR" {
		t.Fatalf("names = %v", names)
	}
	// Rebinding keeps order and replaces.
	w.Set("P", Object{Graph: g})
	if len(w.Names()) != 3 {
		t.Fatal("rebinding duplicated name")
	}
	o, _ := w.Get("P")
	if o.Kind() != "graph" {
		t.Fatalf("rebound kind = %s", o.Kind())
	}
}

func TestWorkspaceProvenance(t *testing.T) {
	w := NewWorkspace()
	tbl := gen.RMATTable(5, 20, 1)
	w.SetWithProvenance("E", Object{Table: tbl}, "gen rmat E 5 20")
	if got := w.Provenance("E"); got != "gen rmat E 5 20" {
		t.Fatalf("provenance = %q", got)
	}
	if w.Provenance("missing") != "" {
		t.Fatal("missing name has provenance")
	}
	// Rebinding updates provenance.
	w.SetWithProvenance("E", Object{Table: tbl}, "select ...")
	if w.Provenance("E") != "select ..." {
		t.Fatal("provenance not updated on rebind")
	}
}

func TestObjectSummaries(t *testing.T) {
	tbl := gen.RMATTable(5, 20, 1)
	g, _ := ToGraph(tbl, "src", "dst")
	for _, c := range []struct {
		o    Object
		want string
	}{
		{Object{Table: tbl}, "table"},
		{Object{Graph: g}, "graph"},
		{Object{Scores: map[int64]float64{1: 1}}, "scores"},
		{Object{}, "empty"},
	} {
		if c.o.Kind() != c.want {
			t.Fatalf("kind = %s, want %s", c.o.Kind(), c.want)
		}
		if c.o.Summary() == "" {
			t.Fatal("empty summary")
		}
	}
}

func TestSpecScaling(t *testing.T) {
	small := LJSim(0.001)
	big := LJSim(0.01)
	if small.Edges >= big.Edges || small.RMATScale > big.RMATScale {
		t.Fatalf("scaling not monotone: %+v vs %+v", small, big)
	}
	if small.PaperName != "LiveJournal" || TWSim(0.001).PaperName != "Twitter2010" {
		t.Fatal("paper names wrong")
	}
	tbl := small.EdgeTable()
	if int64(tbl.NumRows()) != small.Edges {
		t.Fatalf("edge table rows = %d, want %d", tbl.NumRows(), small.Edges)
	}
	// Cache returns the same object.
	if small.CachedEdgeTable() != small.CachedEdgeTable() {
		t.Fatal("cache miss on identical spec")
	}
}

func TestTimedAndRate(t *testing.T) {
	d := Timed(func() { time.Sleep(5 * time.Millisecond) })
	if d < 5*time.Millisecond {
		t.Fatalf("Timed = %v", d)
	}
	if Rate(2_000_000, time.Second) != "2.0M/s" {
		t.Fatalf("Rate = %s", Rate(2_000_000, time.Second))
	}
	if Rate(5, 0) != "inf" {
		t.Fatal("zero-duration rate")
	}
	if !strings.HasSuffix(Rate(3_000_000_000, time.Second), "B/s") {
		t.Fatal("billion rate suffix")
	}
	if MB(1<<20) != "1.0MB" {
		t.Fatalf("MB = %s", MB(1<<20))
	}
}

func TestHeapDeltaDetectsAllocation(t *testing.T) {
	var sink []byte
	d := HeapDelta(func() {
		sink = make([]byte, 64<<20)
		for i := range sink {
			sink[i] = byte(i)
		}
	})
	if d < 32<<20 {
		t.Fatalf("HeapDelta = %d, want at least 32MB", d)
	}
	_ = sink
}

func TestReportPrint(t *testing.T) {
	r := Report{
		Title:  "T",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"xxxxxx", "1"}, {"y", "2"}},
		Notes:  []string{"n1"},
	}
	var sb strings.Builder
	r.Print(&sb)
	out := sb.String()
	for _, want := range []string{"T", "long-header", "xxxxxx", "note: n1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report output missing %q:\n%s", want, out)
		}
	}
}

// Integration: run every experiment end to end at a tiny scale and check
// the paper's shape claims hold.
func TestExperimentsEndToEnd(t *testing.T) {
	specs := []Spec{LJSim(0.002), TWSim(0.0001)} // ~138K and ~150K edge rows

	t1 := Table1()
	if len(t1.Rows) != 6 {
		t.Fatalf("Table1 rows = %d", len(t1.Rows))
	}

	t2, err := Table2(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) != 2 {
		t.Fatalf("Table2 rows = %d", len(t2.Rows))
	}

	t3, err := Table3(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.Rows) != 4 {
		t.Fatalf("Table3 rows = %d", len(t3.Rows))
	}

	t4, err := Table4(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 8 {
		t.Fatalf("Table4 rows = %d", len(t4.Rows))
	}

	t5, err := Table5(specs)
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != 4 {
		t.Fatalf("Table5 rows = %d", len(t5.Rows))
	}

	t6, err := Table6(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(t6.Rows) != 3 {
		t.Fatalf("Table6 rows = %d", len(t6.Rows))
	}

	fp, err := Footprint(specs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(fp.Rows) != 2 {
		t.Fatalf("Footprint rows = %d", len(fp.Rows))
	}
}

func TestTable4SelectCountsNear10K(t *testing.T) {
	spec := LJSim(0.002)
	r, err := Table4([]Spec{spec})
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is "Select 10K": output should be within 3x of 10K (duplicates
	// in the skewed column can overshoot slightly).
	var out int
	if _, err := fmtSscan(r.Rows[0][2], &out); err != nil {
		t.Fatal(err)
	}
	if out < 2_000 || out > 40_000 {
		t.Fatalf("Select 10K output = %d", out)
	}
}

func fmtSscan(s string, out *int) (int, error) {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			break
		}
		n = n*10 + int(c-'0')
	}
	*out = n
	return n, nil
}
