// Package core is the Ringo engine: it ties the table store, the graph
// store, the conversions and the algorithm library into the verb set the
// paper's Python front-end exposes (LoadTableTSV, Select, Join, ToGraph,
// GetPageRank, TableFromHashMap, ...). The root ringo package re-exports
// this API; cmd/ringo drives it interactively; the experiment harness in
// this package regenerates every table of the paper's evaluation.
//
// The package's two stateful pieces implement the paper's session model:
// Workspace is the named-object registry standing in for the Python
// session (provenance-tracked bindings, versioned fingerprints, binary
// snapshot/restore), and ViewCache — embedded in every workspace — keeps
// the flat CSR snapshots (graph.View/UView) that algorithms run over,
// keyed by object fingerprint so a graph is converted to its optimized
// representation once per state, not once per query.
package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"ringo/internal/algo"
	"ringo/internal/conv"
	"ringo/internal/extmem"
	"ringo/internal/graph"
	"ringo/internal/table"
)

// ToGraph converts an edge table into Ringo's directed graph representation
// with the parallel sort-first algorithm (§2.4).
func ToGraph(t *table.Table, srcCol, dstCol string) (*graph.Directed, error) {
	return conv.ToDirected(t, srcCol, dstCol)
}

// ToUGraph converts an edge table into an undirected graph.
func ToUGraph(t *table.Table, srcCol, dstCol string) (*graph.Undirected, error) {
	return conv.ToUndirected(t, srcCol, dstCol)
}

// ToTable converts a directed graph back into an edge table.
func ToTable(g *graph.Directed, srcName, dstName string) (*table.Table, error) {
	return conv.ToEdgeTable(g, srcName, dstName)
}

// ToNodeTable converts a graph's node set into a single-column table.
func ToNodeTable(g *graph.Directed, name string) (*table.Table, error) {
	return conv.ToNodeTable(g, name)
}

// GetPageRank runs 10 iterations of parallel PageRank with the standard
// damping factor, the configuration timed in Table 3.
func GetPageRank(g *graph.Directed) map[int64]float64 {
	return algo.PageRank(g, algo.DefaultDamping, 10)
}

// TableFromMap builds a two-column table (key, score) from an algorithm
// result map, sorted by descending score — the paper's TableFromHashMap,
// closing the loop from graph analytics back to tables.
func TableFromMap(m map[int64]float64, keyCol, valCol string) (*table.Table, error) {
	type kv struct {
		k int64
		v float64
	}
	pairs := make([]kv, 0, len(m))
	for k, v := range m {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].v != pairs[j].v {
			return pairs[i].v > pairs[j].v
		}
		return pairs[i].k < pairs[j].k
	})
	keys := make([]int64, len(pairs))
	vals := make([]float64, len(pairs))
	for i, p := range pairs {
		keys[i] = p.k
		vals[i] = p.v
	}
	t, err := table.FromIntColumns([]string{keyCol}, [][]int64{keys})
	if err != nil {
		return nil, err
	}
	if err := t.AddFloatColumn(valCol, vals); err != nil {
		return nil, err
	}
	return t, nil
}

// TableFromIntMap is TableFromMap for integer-valued results (component
// labels, core numbers, hop distances).
func TableFromIntMap(m map[int64]int, keyCol, valCol string) (*table.Table, error) {
	keys := make([]int64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	vals := make([]int64, len(keys))
	for i, k := range keys {
		vals[i] = int64(m[k])
	}
	return table.FromIntColumns([]string{keyCol, valCol}, [][]int64{keys, vals})
}

// Object is a value held in a Workspace: a table, a graph (in-heap or
// mapped from an RNGM image), or a score map.
type Object struct {
	Table  *table.Table
	Graph  *graph.Directed
	UGraph *graph.Undirected
	Scores map[int64]float64
	// Mapped is a read-only graph served in place from an RNGM file (the
	// beyond-RAM tier): its views come straight from the mapping, never
	// from the view cache, and mutating verbs reject it.
	Mapped *extmem.Graph
}

// Kind describes what an Object holds.
func (o Object) Kind() string {
	switch {
	case o.Table != nil:
		return "table"
	case o.Graph != nil:
		return "graph"
	case o.UGraph != nil:
		return "ugraph"
	case o.Scores != nil:
		return "scores"
	case o.Mapped != nil:
		return "mgraph"
	default:
		return "empty"
	}
}

// Summary is a one-line description of the object for the shell.
func (o Object) Summary() string {
	switch {
	case o.Table != nil:
		return fmt.Sprintf("table  %d rows × %d cols  (%s)", o.Table.NumRows(), o.Table.NumCols(), schemaString(o.Table))
	case o.Graph != nil:
		return fmt.Sprintf("graph  %d nodes, %d edges (directed)", o.Graph.NumNodes(), o.Graph.NumEdges())
	case o.UGraph != nil:
		return fmt.Sprintf("graph  %d nodes, %d edges (undirected)", o.UGraph.NumNodes(), o.UGraph.NumEdges())
	case o.Scores != nil:
		return fmt.Sprintf("scores %d nodes", len(o.Scores))
	case o.Mapped != nil:
		via := "mmap"
		if !o.Mapped.Mapped() {
			via = "copied"
		}
		return fmt.Sprintf("mgraph %d nodes, %d edges (%s, %s %s)",
			o.Mapped.NumNodes(), o.Mapped.NumEdges(), o.Mapped.Kind(), via, o.Mapped.Path())
	default:
		return "empty"
	}
}

func schemaString(t *table.Table) string {
	s := ""
	for i, c := range t.Schema() {
		if i > 0 {
			s += ", "
		}
		s += c.Name + ":" + c.Type.String()
	}
	return s
}

// Workspace is a named-object registry backing the interactive shell and
// the analytics server — the stand-in for the Python session in which Ringo
// objects live. Each binding records its provenance (the operation that
// created it), extending Ringo's fine-grained data tracking from rows to
// whole objects: ls shows how every object in the session came to be.
//
// Every binding also carries a version drawn from a workspace-wide clock.
// Rebinding or touching a name bumps its version, so (name, version) pairs —
// surfaced as Fingerprint — identify an object's exact state and make safe
// cache keys: any mutation invalidates all fingerprints taken before it.
//
// Graph bindings are queried through DirectedView/UndirectedView, which
// serve the flat CSR snapshot algorithms run over from a fingerprint-keyed
// ViewCache: the first query on a graph pays the O(V+E) conversion, every
// later query on the unchanged graph goes straight to flat-array compute.
// Rebinding operations (Set, Delete, Rename, Touch, Restore) purge the
// affected views — the new object shares nothing with the cached state.
//
// Fine-grained graph mutations (AddGraphEdge, DelGraphEdge, AddGraphNode)
// are different: they bump the version but keep the binding's cached views
// resident and append to its delta log, so the next query patches the
// pending deltas onto a cached base view (graph.PatchView) instead of
// rebuilding — as long as the batch stays under the ConfigurePatching
// threshold. See incremental.go for the delta-log machinery.
//
// A Workspace is safe for concurrent use by multiple goroutines.
type Workspace struct {
	mu      sync.RWMutex
	objs    map[string]Object
	prov    map[string]string
	ver     map[string]uint64
	clock   uint64
	order   []string
	views   *ViewCache
	indexes *IndexCache
	// deltas holds each graph binding's pending mutation log; patchRatio
	// is the patch-vs-rebuild threshold; patches/rebuilds count how view
	// materializations were served (they are touched inside cache build
	// closures, outside mu — hence atomics).
	deltas     map[string]*deltaLog
	patchRatio float64
	patches    atomic.Uint64
	rebuilds   atomic.Uint64
}

// NewWorkspace returns an empty workspace with a view cache of
// DefaultViewCacheEntries and an equality-index cache of
// DefaultIndexCacheEntries; resize or disable them with ConfigureViewCache
// and ConfigureIndexCache.
func NewWorkspace() *Workspace {
	return &Workspace{
		objs:       make(map[string]Object),
		prov:       make(map[string]string),
		ver:        make(map[string]uint64),
		views:      NewViewCache(DefaultViewCacheEntries),
		indexes:    NewIndexCache(DefaultIndexCacheEntries),
		deltas:     make(map[string]*deltaLog),
		patchRatio: DefaultPatchRatio,
	}
}

// ConfigureViewCache resizes the workspace's CSR view cache; maxEntries < 1
// disables caching (every query rebuilds its view). The previous cache's
// contents are discarded.
func (w *Workspace) ConfigureViewCache(maxEntries int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if maxEntries < 1 {
		w.views = nil
		return
	}
	w.views = NewViewCache(maxEntries)
}

// ViewCacheStats reports the view cache's cumulative hits and misses, the
// current entry count and resident bytes (zeros when disabled).
func (w *Workspace) ViewCacheStats() (hits, misses uint64, entries int, bytes int64) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.views.Stats()
}

// ConfigureIndexCache resizes the workspace's equality-index cache;
// maxEntries < 1 disables caching (every TableEqIndex call rebuilds). The
// previous cache's contents are discarded.
func (w *Workspace) ConfigureIndexCache(maxEntries int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if maxEntries < 1 {
		w.indexes = nil
		return
	}
	w.indexes = NewIndexCache(maxEntries)
}

// IndexCacheStats reports the equality-index cache's cumulative hits and
// misses, the current entry count and resident bytes (zeros when disabled).
func (w *Workspace) IndexCacheStats() (hits, misses uint64, entries int, bytes int64) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.indexes.Stats()
}

// TableEqIndex returns the equality bitmap index over col of the table
// bound to name, built on first use and served from the fingerprint-keyed
// index cache on every later call against the unchanged table — the
// relational analogue of DirectedView's build-once-query-many contract. The
// warm path is a single cache probe with no allocation. Build failures
// (missing column, float column, cardinality over the cap) are returned —
// and cached — as errors; callers treat any error as "filter by scanning".
func (w *Workspace) TableEqIndex(name, col string) (*table.EqIndex, error) {
	w.mu.RLock()
	o, ok := w.objs[name]
	ver := w.ver[name]
	idxc := w.indexes
	w.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no object named %q", name)
	}
	if o.Table == nil {
		return nil, fmt.Errorf("%q is a %s, not a table", name, o.Kind())
	}
	if idx, err, hit := idxc.Cached(name, ver, col); hit {
		return idx, err
	}
	idx, err := idxc.Get(name, ver, col, func() (*table.EqIndex, error) {
		return table.BuildEqIndex(o.Table, col, 0)
	})
	w.dropIndexIfStale(idxc, name, ver)
	return idx, err
}

// dropIndexIfStale is dropIfStale for the index cache: it evicts indexes of
// a binding state that was mutated away while an index build was in flight.
func (w *Workspace) dropIndexIfStale(idxc *IndexCache, name string, ver uint64) {
	if cur, ok := w.Version(name); !ok || cur != ver {
		idxc.Drop(name, ver)
	}
}

// DirectedView returns the CSR view of the directed graph bound to name,
// served from the view cache when possible: on a hit no O(V+E) conversion
// runs, the paper's build-once-query-many model.
func (w *Workspace) DirectedView(name string) (*graph.View, error) {
	w.mu.RLock()
	o, ok := w.objs[name]
	ver := w.ver[name]
	views := w.views
	plan := w.patchPlanLocked(name)
	w.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no object named %q", name)
	}
	if o.Mapped != nil {
		// A mapped graph IS its view: no conversion to cache, no heap
		// bytes for the cache to account. Serve it straight from the
		// mapping.
		if mv := o.Mapped.View(); mv != nil {
			return mv, nil
		}
		return nil, fmt.Errorf("%q is an undirected mapped graph, not a directed one", name)
	}
	if o.Graph == nil {
		return nil, fmt.Errorf("%q is a %s, not a directed graph", name, o.Kind())
	}
	v := views.Directed(name, ver, func() *graph.View {
		if base, pending := plan.baseDirected(views, name); base != nil {
			w.patches.Add(1)
			return graph.PatchView(base, o.Graph.HasNode, o.Graph.HasEdge, pending)
		}
		w.rebuilds.Add(1)
		return graph.BuildView(o.Graph)
	})
	w.dropIfStale(views, name, ver)
	return v, nil
}

// UndirectedView returns the undirected CSR view of the graph bound to
// name — for a directed graph, the view of its undirected projection
// (edge directions dropped, duplicates merged), which is what triangle
// counting, bridges, k-core and the other orientation-blind algorithms
// consume. Cached like DirectedView.
func (w *Workspace) UndirectedView(name string) (*graph.UView, error) {
	w.mu.RLock()
	o, ok := w.objs[name]
	ver := w.ver[name]
	views := w.views
	plan := w.patchPlanLocked(name)
	w.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("no object named %q", name)
	}
	var v *graph.UView
	switch {
	case o.UGraph != nil:
		v = views.Undirected(name, ver, func() *graph.UView {
			if base, pending := plan.baseUndirected(views, name); base != nil {
				w.patches.Add(1)
				return graph.PatchUView(base, o.UGraph.HasNode, o.UGraph.HasEdge, pending)
			}
			w.rebuilds.Add(1)
			return graph.BuildUView(o.UGraph)
		})
	case o.Graph != nil:
		v = views.Undirected(name, ver, func() *graph.UView {
			if base, pending := plan.baseUndirected(views, name); base != nil {
				w.patches.Add(1)
				g := o.Graph
				// An undirected edge of the projection exists when either
				// orientation does.
				sym := func(a, b int64) bool { return g.HasEdge(a, b) || g.HasEdge(b, a) }
				return graph.PatchUView(base, g.HasNode, sym, pending)
			}
			w.rebuilds.Add(1)
			return graph.BuildUView(graph.AsUndirected(o.Graph))
		})
	case o.Mapped != nil && o.Mapped.UView() != nil:
		// An undirected mapped image is served in place, like DirectedView.
		return o.Mapped.UView(), nil
	case o.Mapped != nil:
		// The undirected projection of a mapped directed graph is a heap
		// materialization, so it earns a cache slot like any conversion;
		// the builder streams the mapped arenas once.
		v = views.Undirected(name, ver, func() *graph.UView { return graph.ProjectUView(o.Mapped.View()) })
	default:
		return nil, fmt.Errorf("%q is a %s, not a graph", name, o.Kind())
	}
	w.dropIfStale(views, name, ver)
	return v, nil
}

// dropIfStale evicts the view just served if its binding was mutated away
// while the view was being built: in that interleaving the mutator's
// purge ran before the cache insertion landed, and without this check the
// dead view would stay resident until LRU pressure reached it. (If the
// mutation happens after this check instead, its purge runs after the
// insertion and removes the entry itself — either order is covered.)
//
// Views superseded by *delta-logged* mutations are deliberately kept:
// they are exactly the base states the next query patches from, so a view
// is only stale when no live delta log covers its version (the binding
// was rebound, renamed, touched or deleted).
func (w *Workspace) dropIfStale(views *ViewCache, name string, ver uint64) {
	w.mu.RLock()
	cur, ok := w.ver[name]
	patchable := false
	if dl := w.deltas[name]; ok && dl != nil {
		patchable = ver >= dl.baseVer && ver <= cur
	}
	w.mu.RUnlock()
	if !ok || (cur != ver && !patchable) {
		views.Drop(name, ver)
	}
}

// Set binds name to an object, replacing any previous binding.
func (w *Workspace) Set(name string, o Object) {
	w.SetWithProvenance(name, o, "")
}

// SetWithProvenance binds name to an object and records the operation that
// produced it.
func (w *Workspace) SetWithProvenance(name string, o Object, prov string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, exists := w.objs[name]; !exists {
		w.order = append(w.order, name)
	}
	w.objs[name] = o
	w.prov[name] = prov
	w.clock++
	w.ver[name] = w.clock
	w.views.Purge(name)
	w.indexes.Purge(name)
	delete(w.deltas, name)
}

// Delete removes a binding, reporting whether it existed.
func (w *Workspace) Delete(name string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.objs[name]; !ok {
		return false
	}
	delete(w.objs, name)
	delete(w.prov, name)
	delete(w.ver, name)
	for i, n := range w.order {
		if n == name {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	w.views.Purge(name)
	w.indexes.Purge(name)
	delete(w.deltas, name)
	return true
}

// Rename rebinds oldName as newName, carrying provenance along. The renamed
// binding gets a fresh version (its identity changed), and any existing
// binding at newName is replaced.
func (w *Workspace) Rename(oldName, newName string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	o, ok := w.objs[oldName]
	if !ok {
		return fmt.Errorf("no object named %q", oldName)
	}
	if oldName == newName {
		return nil
	}
	prov := w.prov[oldName]
	delete(w.objs, oldName)
	delete(w.prov, oldName)
	delete(w.ver, oldName)
	for i, n := range w.order {
		if n == newName {
			w.order = append(w.order[:i], w.order[i+1:]...)
			break
		}
	}
	for i, n := range w.order {
		if n == oldName {
			w.order[i] = newName
			break
		}
	}
	w.objs[newName] = o
	w.prov[newName] = prov
	w.clock++
	w.ver[newName] = w.clock
	w.views.Purge(oldName)
	w.views.Purge(newName)
	w.indexes.Purge(oldName)
	w.indexes.Purge(newName)
	delete(w.deltas, oldName)
	delete(w.deltas, newName)
	return nil
}

// Touch bumps the version of a binding whose object was mutated in place
// (e.g. an in-place sort), invalidating fingerprints taken before the
// mutation. It is a no-op for unknown names.
func (w *Workspace) Touch(name string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.objs[name]; ok {
		w.clock++
		w.ver[name] = w.clock
		w.views.Purge(name)
		w.indexes.Purge(name)
		delete(w.deltas, name)
	}
}

// Version returns the binding's version (0, false if unbound).
func (w *Workspace) Version(name string) (uint64, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	v, ok := w.ver[name]
	return v, ok
}

// Fingerprint identifies the exact state of a binding as "name#version".
// It changes whenever the name is rebound, renamed or touched, so it is a
// safe component of result-cache keys.
func (w *Workspace) Fingerprint(name string) (string, bool) {
	v, ok := w.Version(name)
	if !ok {
		return "", false
	}
	return fmt.Sprintf("%s#%d", name, v), true
}

// Provenance returns the recorded origin of a binding ("" if untracked).
func (w *Workspace) Provenance(name string) string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return w.prov[name]
}

// Get returns the object bound to name.
func (w *Workspace) Get(name string) (Object, bool) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	o, ok := w.objs[name]
	return o, ok
}

// Table returns the table bound to name or an error.
func (w *Workspace) Table(name string) (*table.Table, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	o, ok := w.objs[name]
	if !ok {
		return nil, fmt.Errorf("no object named %q", name)
	}
	if o.Table == nil {
		return nil, fmt.Errorf("%q is a %s, not a table", name, o.Kind())
	}
	return o.Table, nil
}

// Graph returns the directed graph bound to name or an error.
func (w *Workspace) Graph(name string) (*graph.Directed, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	o, ok := w.objs[name]
	if !ok {
		return nil, fmt.Errorf("no object named %q", name)
	}
	if o.Graph == nil {
		return nil, fmt.Errorf("%q is a %s, not a directed graph", name, o.Kind())
	}
	return o.Graph, nil
}

// Scores returns the score map bound to name or an error.
func (w *Workspace) Scores(name string) (map[int64]float64, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	o, ok := w.objs[name]
	if !ok {
		return nil, fmt.Errorf("no object named %q", name)
	}
	if o.Scores == nil {
		return nil, fmt.Errorf("%q is a %s, not a score map", name, o.Kind())
	}
	return o.Scores, nil
}

// Names lists bound names in binding order.
func (w *Workspace) Names() []string {
	w.mu.RLock()
	defer w.mu.RUnlock()
	return append([]string(nil), w.order...)
}

// MappedGraph returns the mapped graph bound to name or an error.
func (w *Workspace) MappedGraph(name string) (*extmem.Graph, error) {
	w.mu.RLock()
	defer w.mu.RUnlock()
	o, ok := w.objs[name]
	if !ok {
		return nil, fmt.Errorf("no object named %q", name)
	}
	if o.Mapped == nil {
		return nil, fmt.Errorf("%q is a %s, not a mapped graph", name, o.Kind())
	}
	return o.Mapped, nil
}

// MappedBytes reports the total size of RNGM images bound in the
// workspace. These bytes are file-backed (page cache, not Go heap), which
// is why they are accounted separately from the view cache's resident
// bytes in stats and metrics.
func (w *Workspace) MappedBytes() int64 {
	w.mu.RLock()
	defer w.mu.RUnlock()
	var total int64
	for _, o := range w.objs {
		if o.Mapped != nil {
			total += o.Mapped.Bytes()
		}
	}
	return total
}
