package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"time"

	"ringo/internal/algo"
	"ringo/internal/catalog"
	"ringo/internal/conv"
	"ringo/internal/graph"
	"ringo/internal/obs"
	"ringo/internal/par"
	"ringo/internal/table"
)

// Experiments regenerate each table of the paper's evaluation (§3) on the
// synthetic stand-in datasets. Absolute numbers differ from the paper's
// 80-hyperthread 1TB machine; the shapes the paper argues from (relative
// operation costs, flat conversion rates, graph smaller than table,
// footprint < 2× graph) are what the report notes track.

// Table1 reproduces Table 1: the size histogram of the 71 public graphs in
// the SNAP collection.
func Table1() Report {
	r := Report{
		Title:  "Table 1: Graph size statistics of the Stanford Large Network Collection (71 graphs)",
		Header: []string{"Number of Edges", "Number of Graphs"},
	}
	for _, b := range catalog.Bins() {
		r.Rows = append(r.Rows, []string{b.Label, fmt.Sprintf("%d", b.Count)})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("%.0f%% of graphs have fewer than 100M edges", 100*catalog.FractionBelow(100_000_000)))
	return r
}

// Table2 reproduces Table 2: dataset text size, in-memory graph size and
// in-memory table size for each experiment dataset.
func Table2(specs []Spec) (Report, error) {
	r := Report{
		Title: "Table 2: Experiment graphs",
		Header: []string{"Graph", "Stands in for", "Nodes", "Edges",
			"Text File Size", "In-memory Graph Size", "In-memory Table Size"},
	}
	for _, s := range specs {
		t := s.CachedEdgeTable()
		var cw countingWriter
		if err := t.SaveTSV(&cw, false); err != nil {
			return Report{}, err
		}
		g, err := conv.ToDirected(t, "src", "dst")
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{
			s.Name, s.PaperName,
			fmt.Sprintf("%d", g.NumNodes()), fmt.Sprintf("%d", g.NumEdges()),
			MB(cw.n), MB(g.Bytes()), MB(t.Bytes()),
		})
	}
	r.Notes = append(r.Notes,
		"shape check: graph object smaller than table object (paper: 0.7GB vs 1.1GB on LiveJournal)")
	return r, nil
}

// Table3 reproduces Table 3: parallel PageRank (10 iterations) and parallel
// triangle counting runtimes.
func Table3(specs []Spec) (Report, error) {
	r := Report{
		Title:  "Table 3: Parallel graph algorithms",
		Header: []string{"Operation", "Dataset", "Time", "Result"},
	}
	for _, s := range specs {
		g, err := conv.ToDirected(s.CachedEdgeTable(), "src", "dst")
		if err != nil {
			return Report{}, err
		}
		var pr map[int64]float64
		dt := Timed(func() { pr = algo.PageRank(g, algo.DefaultDamping, 10) })
		r.Rows = append(r.Rows, []string{"PageRank (10 iter)", s.Name, dt.Round(time.Millisecond).String(),
			fmt.Sprintf("%d nodes scored", len(pr))})

		u := graph.AsUndirected(g)
		var tri int64
		dt = Timed(func() { tri = algo.Triangles(u) })
		r.Rows = append(r.Rows, []string{"Triangle Counting", s.Name, dt.Round(time.Millisecond).String(),
			fmt.Sprintf("%d triangles", tri)})
	}
	return r, nil
}

// Table4 reproduces Table 4: Select and Join performance with an output of
// about 10K rows and of all-but-10K rows, with rows/s rates (Join rates
// count both input tables, as in the paper).
func Table4(specs []Spec) (Report, error) {
	r := Report{
		Title:  "Table 4: Select and Join on tables",
		Header: []string{"Operation", "Dataset", "Output Rows", "Time", "Rows/s"},
	}
	for _, s := range specs {
		t := s.CachedEdgeTable()
		n := t.NumRows()
		if n < 30_000 {
			return Report{}, fmt.Errorf("dataset %s too small for the 10K selections", s.Name)
		}
		src, err := t.IntCol("src")
		if err != nil {
			return Report{}, err
		}
		sorted := append([]int64(nil), src...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

		for _, c := range []struct {
			label  string
			target int
		}{
			{"Select 10K, in place", 10_000},
			{"Select all-10K, in place", n - 10_000},
		} {
			op, val := selectCut(sorted, c.target)
			work := t.Clone()
			var kept int
			dt := Timed(func() {
				kept, err = work.SelectInPlace("src", op, val)
			})
			if err != nil {
				return Report{}, err
			}
			r.Rows = append(r.Rows, []string{c.label, s.Name, fmt.Sprintf("%d", kept),
				dt.Round(time.Microsecond).String(), Rate(int64(n), dt)})
		}

		// Join keys: distinct src values accumulated by ascending frequency
		// until the target output size is reached.
		freq := map[int64]int64{}
		for _, v := range src {
			freq[v]++
		}
		distinct := make([]int64, 0, len(freq))
		for v := range freq {
			distinct = append(distinct, v)
		}
		sort.Slice(distinct, func(i, j int) bool {
			if freq[distinct[i]] != freq[distinct[j]] {
				return freq[distinct[i]] < freq[distinct[j]]
			}
			return distinct[i] < distinct[j]
		})
		pick := func(target int64) []int64 {
			var cum int64
			var out []int64
			for _, v := range distinct {
				if cum >= target {
					break
				}
				out = append(out, v)
				cum += freq[v]
			}
			return out
		}
		for _, c := range []struct {
			label  string
			target int64
		}{
			{"Join 10K", 10_000},
			{"Join all-10K", int64(n) - 10_000},
		} {
			keys := pick(c.target)
			right, err := table.FromIntColumns([]string{"key"}, [][]int64{keys})
			if err != nil {
				return Report{}, err
			}
			var joined *table.Table
			dt := Timed(func() {
				joined, err = t.Join(right, "src", "key")
			})
			if err != nil {
				return Report{}, err
			}
			r.Rows = append(r.Rows, []string{c.label, s.Name, fmt.Sprintf("%d", joined.NumRows()),
				dt.Round(time.Microsecond).String(), Rate(int64(n+right.NumRows()), dt)})
		}
	}
	r.Notes = append(r.Notes, "shape check: select faster than join; rates robust across output sizes")
	return r, nil
}

// selectCut picks the constant-comparison predicate over a sorted copy of
// the column whose match count lands closest to target rows. On heavily
// skewed columns (an R-MAT hub can occupy tens of thousands of rows) no
// threshold hits the target exactly; the report prints actual counts.
func selectCut(sorted []int64, target int) (table.CmpOp, int64) {
	vLT := sorted[target]
	countLT := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= vLT })
	vLE := sorted[target-1]
	countLE := sort.Search(len(sorted), func(i int) bool { return sorted[i] > vLE })
	if countLT > 0 && abs(countLT-target) <= abs(countLE-target) {
		return table.LT, vLT
	}
	return table.LE, vLE
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Table5 reproduces Table 5: table-to-graph and graph-to-table conversion
// times and edge rates.
func Table5(specs []Spec) (Report, error) {
	r := Report{
		Title:  "Table 5: Conversions between tables and graphs",
		Header: []string{"Conversion", "Dataset", "Rows/Edges", "Time", "Edges/s"},
	}
	for _, s := range specs {
		t := s.CachedEdgeTable()
		var g *graph.Directed
		var err error
		dt := Timed(func() { g, err = conv.ToDirected(t, "src", "dst") })
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{"Table to graph", s.Name,
			fmt.Sprintf("%d", t.NumRows()), dt.Round(time.Millisecond).String(), Rate(int64(t.NumRows()), dt)})

		var back *table.Table
		dt = Timed(func() { back, err = conv.ToEdgeTable(g, "src", "dst") })
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{"Graph to table", s.Name,
			fmt.Sprintf("%d", back.NumRows()), dt.Round(time.Millisecond).String(), Rate(g.NumEdges(), dt)})
	}
	r.Notes = append(r.Notes, "shape check: rates roughly flat across dataset scales (conversion scales well)")
	return r, nil
}

// Table6 reproduces Table 6: single-threaded 3-core, SSSP (averaged over 10
// random sources) and SCC on the LiveJournal stand-in.
func Table6(spec Spec) (Report, error) {
	g, err := conv.ToDirected(spec.CachedEdgeTable(), "src", "dst")
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Table 6: Sequential graph algorithms on " + spec.Name,
		Header: []string{"Algorithm", "Time", "Result"},
	}

	u := graph.AsUndirected(g)
	var core3 *graph.Undirected
	dt := Timed(func() { core3 = algo.KCore(u, 3) })
	r.Rows = append(r.Rows, []string{"3-core", dt.Round(time.Millisecond).String(),
		fmt.Sprintf("%d nodes, %d edges", core3.NumNodes(), core3.NumEdges())})

	nodes := g.Nodes()
	rng := rand.New(rand.NewSource(7))
	var reached int
	total := time.Duration(0)
	for i := 0; i < 10; i++ {
		src := nodes[rng.Intn(len(nodes))]
		total += Timed(func() { reached = len(algo.SSSPUnweighted(g, src)) })
	}
	r.Rows = append(r.Rows, []string{"SSSP (avg of 10 sources)", (total / 10).Round(time.Millisecond).String(),
		fmt.Sprintf("last run reached %d nodes", reached)})

	var comps algo.Components
	dt = Timed(func() { comps = algo.SCC(g) })
	r.Rows = append(r.Rows, []string{"SCC", dt.Round(time.Millisecond).String(),
		fmt.Sprintf("%d components, largest %d", comps.Count, comps.MaxSize)})
	return r, nil
}

// Footprint reproduces the §3 memory-footprint measurement: the peak extra
// heap during parallel PageRank and triangle counting, compared with the
// graph object size (the paper reports < 2× for both on Twitter2010).
func Footprint(spec Spec) (Report, error) {
	g, err := conv.ToDirected(spec.CachedEdgeTable(), "src", "dst")
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title:  "Memory footprint (§3) on " + spec.Name,
		Header: []string{"Computation", "Graph Size", "Peak Extra Heap", "Ratio"},
	}
	gb := g.Bytes()
	d := HeapDelta(func() { algo.PageRank(g, algo.DefaultDamping, 10) })
	r.Rows = append(r.Rows, []string{"PageRank (10 iter)", MB(gb), MB(d), fmt.Sprintf("%.2fx", float64(d)/float64(gb))})

	u := graph.AsUndirected(g)
	ub := u.Bytes()
	d = HeapDelta(func() { algo.Triangles(u) })
	r.Rows = append(r.Rows, []string{"Triangle Counting", MB(ub), MB(d), fmt.Sprintf("%.2fx", float64(d)/float64(ub))})
	r.Notes = append(r.Notes, "paper shape: footprint below 2x the graph object size")
	return r, nil
}

// Views measures the interactive-query model the view cache implements: a
// session's first analytics query pays the O(V+E) CSR view construction, a
// repeat query on the unchanged graph fetches the resident view in
// microseconds, and the end-to-end effect shows up as cold-vs-warm
// PageRank and triangle-count runtimes.
func Views(specs []Spec) (Report, error) {
	r := Report{
		Title:  "Views: fingerprint-keyed CSR view cache, cold vs warm queries",
		Header: []string{"Measurement", "Dataset", "Cold", "Warm", "Speedup"},
	}
	for _, s := range specs {
		g, err := conv.ToDirected(s.CachedEdgeTable(), "src", "dst")
		if err != nil {
			return Report{}, err
		}
		ws := NewWorkspace()
		ws.Set("g", Object{Graph: g})

		var v *graph.View
		cold := Timed(func() { v, err = ws.DirectedView("g") })
		if err != nil {
			return Report{}, err
		}
		var warm time.Duration
		const probes = 100
		warm = Timed(func() {
			for i := 0; i < probes; i++ {
				if v, err = ws.DirectedView("g"); err != nil {
					return
				}
			}
		}) / probes
		if err != nil {
			return Report{}, err
		}
		r.Rows = append(r.Rows, []string{"View fetch", s.Name,
			cold.Round(time.Microsecond).String(), warm.String(),
			fmt.Sprintf("%.0fx", cold.Seconds()/warm.Seconds())})

		prCold := Timed(func() { algo.PageRank(g, algo.DefaultDamping, 10) })
		prWarm := Timed(func() { algo.PageRankView(v, algo.DefaultDamping, 10) })
		r.Rows = append(r.Rows, []string{"PageRank (10 iter)", s.Name,
			prCold.Round(time.Millisecond).String(), prWarm.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", prCold.Seconds()/prWarm.Seconds())})

		triCold := Timed(func() { algo.Triangles(graph.AsUndirected(g)) })
		var uv *graph.UView
		if uv, err = ws.UndirectedView("g"); err != nil {
			return Report{}, err
		}
		triWarm := Timed(func() { algo.TrianglesView(uv) })
		r.Rows = append(r.Rows, []string{"Triangle Counting", s.Name,
			triCold.Round(time.Millisecond).String(), triWarm.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", triCold.Seconds()/triWarm.Seconds())})
	}
	r.Notes = append(r.Notes,
		"cold = build the CSR view (and, for triangles, the undirected projection) then compute; warm = cached view, flat-array compute only",
		"shape check: warm fetch is microseconds regardless of graph size; warm analytics approach pure compute time")
	return r, nil
}

// ObsOverhead measures the observability layer's tax on the hot path: the
// per-op cost of the lock-free internal/obs primitives, the per-call cost
// of the algo timing hook in both states (uninstalled: one atomic load;
// installed: a clock read plus a histogram record), the end-to-end effect
// on a real kernel, and the cost of rendering a /metrics scrape.
func ObsOverhead(spec Spec) (Report, error) {
	r := Report{
		Title:  "Observability overhead: internal/obs primitives and the algo timing hook",
		Header: []string{"Operation", "Iterations", "Total", "Per Op"},
	}
	reg := obs.NewRegistry()
	c := reg.Counter("bench_ops_total", "Benchmark counter.")
	g := reg.Gauge("bench_gauge", "Benchmark gauge.")
	h := reg.Histogram("bench_duration_seconds", "Benchmark histogram.", obs.L("op", "bench"))

	row := func(label string, iters int, dt time.Duration) {
		r.Rows = append(r.Rows, []string{label, fmt.Sprintf("%d", iters),
			dt.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fns", float64(dt.Nanoseconds())/float64(iters))})
	}

	const n = 5_000_000
	row("Counter.Inc", n, Timed(func() {
		for i := 0; i < n; i++ {
			c.Inc()
		}
	}))
	row("Gauge.Set", n, Timed(func() {
		for i := 0; i < n; i++ {
			g.Set(int64(i))
		}
	}))
	row("Histogram.Observe", n, Timed(func() {
		for i := 0; i < n; i++ {
			h.Observe(time.Duration(i))
		}
	}))

	// The timing hook around every instrumented algo entry point, measured
	// through a trivially cheap kernel (single-node WCC view) so the hook
	// is a visible fraction of the call rather than noise under a long run.
	g1, err := conv.ToDirected(spec.CachedEdgeTable(), "src", "dst")
	if err != nil {
		return Report{}, err
	}
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: g1})
	v, err := ws.DirectedView("g")
	if err != nil {
		return Report{}, err
	}

	const runs = 10
	algo.SetTimer(nil)
	off := Timed(func() {
		for i := 0; i < runs; i++ {
			algo.PageRankView(v, algo.DefaultDamping, 10)
		}
	})
	algoHist := reg.Histogram("ringo_algo_duration_seconds", "Algorithm kernel wall time.", obs.L("algo", "pagerank"))
	algo.SetTimer(func(name string, elapsed time.Duration) { algoHist.Observe(elapsed) })
	on := Timed(func() {
		for i := 0; i < runs; i++ {
			algo.PageRankView(v, algo.DefaultDamping, 10)
		}
	})
	algo.SetTimer(nil)
	r.Rows = append(r.Rows, []string{"PageRank (10 iter), hook off", fmt.Sprintf("%d", runs),
		off.Round(time.Millisecond).String(), (off / runs).Round(time.Microsecond).String()})
	r.Rows = append(r.Rows, []string{"PageRank (10 iter), hook on", fmt.Sprintf("%d", runs),
		on.Round(time.Millisecond).String(), (on / runs).Round(time.Microsecond).String()})

	const scrapes = 1000
	var buf bytes.Buffer
	var werr error
	dt := Timed(func() {
		for i := 0; i < scrapes; i++ {
			buf.Reset()
			if werr = reg.WritePrometheus(&buf); werr != nil {
				return
			}
		}
	})
	if werr != nil {
		return Report{}, werr
	}
	row("WritePrometheus scrape", scrapes, dt)

	r.Notes = append(r.Notes,
		"primitives are lock-free atomics: target well under 50ns/op so instrumentation never shows up in query latency",
		fmt.Sprintf("hook on/off delta on a real kernel: %.2f%% (sub-noise — one clock read + one histogram record per kernel call)",
			100*(on.Seconds()-off.Seconds())/off.Seconds()),
		fmt.Sprintf("one /metrics render over %d series costs %s", scrapeSeries(reg), (dt/scrapes).Round(time.Microsecond)))
	return r, nil
}

// scrapeSeries counts the series a registry currently exposes.
func scrapeSeries(reg *obs.Registry) int {
	n := 0
	for _, name := range reg.Names() {
		n += len(reg.Series(name))
	}
	return n
}

// Ingest measures text edge-list loading, the paper's headline interactive
// cost ("load a billion-edge graph in minutes"): the sequential scanner
// loader against the parallel chunk-parse + sort-first-build pipeline, on a
// generated edge-list file per dataset.
func Ingest(specs []Spec) (Report, error) {
	r := Report{
		Title: "Ingest: text edge-list load, sequential scanner vs parallel pipeline",
		Header: []string{"Dataset", "File Size", "Edge Rows", "Seq Load", "Par Load",
			"Speedup", "Par Throughput"},
	}
	for _, s := range specs {
		t := s.CachedEdgeTable()
		f, err := os.CreateTemp("", "ringo-ingest-*.txt")
		if err != nil {
			return Report{}, err
		}
		path := f.Name()
		writeErr := t.SaveTSV(f, false)
		closeErr := f.Close()
		defer os.Remove(path)
		if writeErr != nil {
			return Report{}, writeErr
		}
		if closeErr != nil {
			return Report{}, closeErr
		}
		info, err := os.Stat(path)
		if err != nil {
			return Report{}, err
		}

		var seqG, parG *graph.Directed
		var seqErr, parErr error
		seqT := Timed(func() { seqG, seqErr = graph.LoadEdgeListFile(path) })
		parT := Timed(func() { parG, parErr = graph.LoadEdgeListParallelFile(path) })
		if seqErr != nil {
			return Report{}, seqErr
		}
		if parErr != nil {
			return Report{}, parErr
		}
		if seqG.NumNodes() != parG.NumNodes() || seqG.NumEdges() != parG.NumEdges() {
			return Report{}, fmt.Errorf("core: loader mismatch on %s: seq %d/%d, par %d/%d",
				s.Name, seqG.NumNodes(), seqG.NumEdges(), parG.NumNodes(), parG.NumEdges())
		}
		r.Rows = append(r.Rows, []string{
			s.Name, MB(info.Size()), fmt.Sprintf("%d", t.NumRows()),
			seqT.Round(time.Millisecond).String(), parT.Round(time.Millisecond).String(),
			fmt.Sprintf("%.1fx", seqT.Seconds()/parT.Seconds()),
			fmt.Sprintf("%s rows (%s/s)", Rate(int64(t.NumRows()), parT), MB(int64(float64(info.Size())/parT.Seconds()))),
		})
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("both loaders produce identical graphs (equivalence- and fuzz-tested); GOMAXPROCS=%d", par.Workers()))
	return r, nil
}

// Incr measures the incremental-analytics tier on an update-then-query
// loop: a session holds a warm view, a batch of mutations lands, and the
// next query either patches the cached CSR and runs dynamic PageRank from
// the previous scores, or rebuilds from scratch and iterates PageRank
// cold. Both paths are timed on the same post-mutation graph state; the
// notes report where the crossover falls.
func Incr(spec Spec) (Report, error) {
	g, err := conv.ToDirected(spec.CachedEdgeTable(), "src", "dst")
	if err != nil {
		return Report{}, err
	}
	r := Report{
		Title: "Incr: update-then-query on " + spec.Name + ", patched view + dynamic PageRank vs cold rebuild",
		Header: []string{"Delta Edges", "Patch View", "Incr PageRank", "Patched Total",
			"Rebuild", "Cold PageRank", "Cold Total", "Speedup"},
	}

	// Edge pool for deletions; additions extend it so later batches can
	// delete what earlier batches added.
	edges := make([][2]int64, 0, g.NumEdges())
	g.ForEdges(func(src, dst int64) { edges = append(edges, [2]int64{src, dst}) })
	rng := rand.New(rand.NewSource(17))
	idSpace := int64(1) << spec.RMATScale

	const tol = 1e-8
	var prev map[int64]float64
	lastWin := int64(-1)
	crossed := false
	for _, batch := range []int{1, 64, 1024, 16384} {
		// Fresh workspace per batch so the delta log starts empty: each row
		// measures one warm view + one pending batch, not the cumulative
		// history of earlier rows. The ratio is set absurdly high so the
		// patch path is exercised at every batch size — the production
		// default (DefaultPatchRatio) would rebuild past its cutoff.
		ws := NewWorkspace()
		ws.ConfigurePatching(1e9)
		ws.Set("g", Object{Graph: g})
		if _, err := ws.DirectedView("g"); err != nil {
			return Report{}, err
		}
		if prev == nil {
			v, _ := ws.DirectedView("g")
			prev = algo.PageRankViewTol(v, algo.DefaultDamping, tol)
		}

		applied := 0
		for applied < batch {
			if rng.Intn(3) == 0 && len(edges) > 0 {
				i := rng.Intn(len(edges))
				if ok, err := ws.DelGraphEdge("g", edges[i][0], edges[i][1]); err != nil {
					return Report{}, err
				} else if ok {
					edges[i] = edges[len(edges)-1]
					edges = edges[:len(edges)-1]
					applied++
				}
			} else {
				s, d := rng.Int63n(idSpace), rng.Int63n(idSpace)
				if ok, err := ws.AddGraphEdge("g", s, d); err != nil {
					return Report{}, err
				} else if ok {
					edges = append(edges, [2]int64{s, d})
					applied++
				}
			}
		}

		p0, _ := ws.PatchStats()
		var v *graph.View
		tPatch := Timed(func() { v, err = ws.DirectedView("g") })
		if err != nil {
			return Report{}, err
		}
		if p1, _ := ws.PatchStats(); p1 != p0+1 {
			return Report{}, fmt.Errorf("core: incr report expected a patched view at batch %d", batch)
		}
		var incr map[int64]float64
		tIncr := Timed(func() { incr = algo.PageRankIncr(v, prev, algo.DefaultDamping, tol) })

		var cold *graph.View
		tRebuild := Timed(func() { cold = graph.BuildView(g) })
		tColdPR := Timed(func() { algo.PageRankViewTol(cold, algo.DefaultDamping, tol) })

		patched, coldTotal := tPatch+tIncr, tRebuild+tColdPR
		speed := coldTotal.Seconds() / patched.Seconds()
		if speed >= 1 {
			lastWin = int64(batch)
		} else {
			crossed = true
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", batch),
			tPatch.Round(time.Microsecond).String(), tIncr.Round(time.Microsecond).String(),
			patched.Round(time.Microsecond).String(),
			tRebuild.Round(time.Microsecond).String(), tColdPR.Round(time.Microsecond).String(),
			coldTotal.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1fx", speed),
		})
		prev = incr
	}

	switch {
	case crossed && lastWin >= 0:
		r.Notes = append(r.Notes, fmt.Sprintf("crossover: patching last wins at %d delta edges on this host", lastWin))
	case crossed:
		r.Notes = append(r.Notes, "crossover: cold rebuild won at every measured batch size on this host")
	default:
		r.Notes = append(r.Notes, "crossover: not reached — patching won at every measured batch size on this host")
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("production default patches only up to %.0f%% of V+E (DefaultPatchRatio) and caps the delta log at %d entries; larger batches rebuild", 100*DefaultPatchRatio, maxDeltaLog),
		"incremental PageRank chains from the previous batch's scores (equivalence to the cold oracle is test-enforced)")
	return r, nil
}
