package core

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"ringo/internal/algo"
	"ringo/internal/conv"
	"ringo/internal/extmem"
	"ringo/internal/graph"
)

// ExtMem benchmarks the beyond-RAM storage tier against the in-heap
// baseline on one dataset: warm-start (RNGS snapshot decode vs RNGM map),
// analytics over the mapped view (semi-external variants vs heap view),
// and the memory the two tiers keep resident. Results are cross-checked —
// the mapped runs must produce exactly the in-heap answers — so the table
// doubles as an end-to-end equivalence check on real data shapes.
func ExtMem(s Spec) (Report, error) {
	r := Report{
		Title:  "ExtMem: mmap-backed CSR graphs vs in-heap decode",
		Header: []string{"Measurement", "Dataset", "In-heap", "Mapped", "Ratio"},
	}
	g, err := conv.ToDirected(s.CachedEdgeTable(), "src", "dst")
	if err != nil {
		return Report{}, err
	}
	dir, err := os.MkdirTemp("", "ringo-extmem-*")
	if err != nil {
		return Report{}, err
	}
	defer os.RemoveAll(dir)

	// Warm start: decode the RNGS snapshot vs map the RNGM image.
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: g})
	snapPath := filepath.Join(dir, "ws.rngs")
	if err := ws.SnapshotFile(snapPath); err != nil {
		return Report{}, err
	}
	v := graph.BuildView(g)
	mapPath := filepath.Join(dir, "g.rngm")
	if err := extmem.SaveMapped(mapPath, v); err != nil {
		return Report{}, err
	}

	var restoreErr error
	decode := Timed(func() {
		fresh := NewWorkspace()
		restoreErr = fresh.RestoreFile(snapPath)
	})
	if restoreErr != nil {
		return Report{}, restoreErr
	}
	var mg *extmem.Graph
	var openErr error
	mapped := Timed(func() { mg, openErr = extmem.Open(mapPath) })
	if openErr != nil {
		return Report{}, openErr
	}
	defer mg.Close()
	mv := mg.View()
	r.Rows = append(r.Rows, []string{"Warm start (restore)", s.Name,
		decode.Round(time.Millisecond).String(), mapped.Round(time.Microsecond).String(),
		fmt.Sprintf("%.0fx", decode.Seconds()/mapped.Seconds())})

	// Analytics over the mapped view, checked against the heap answers.
	var prHeap, prExt map[int64]float64
	prHeapT := Timed(func() { prHeap = algo.PageRankView(v, algo.DefaultDamping, 10) })
	prExtT := Timed(func() { prExt = algo.PageRankExt(mv, algo.DefaultDamping, 10) })
	if !sameScores(prHeap, prExt) {
		return Report{}, fmt.Errorf("core: PageRankExt diverged from PageRankView on %s", s.Name)
	}
	r.Rows = append(r.Rows, []string{"PageRank (10 iter)", s.Name,
		prHeapT.Round(time.Millisecond).String(), prExtT.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1fx", prExtT.Seconds()/prHeapT.Seconds())})

	src := v.ID(0)
	var bfsHeap, bfsExt map[int64]int
	bfsHeapT := Timed(func() { bfsHeap = algo.BFSView(v, src, algo.Out) })
	bfsExtT := Timed(func() { bfsExt = algo.BFSExt(mv, src, algo.Out) })
	if len(bfsHeap) != len(bfsExt) {
		return Report{}, fmt.Errorf("core: BFSExt diverged from BFSView on %s", s.Name)
	}
	r.Rows = append(r.Rows, []string{"BFS (out)", s.Name,
		bfsHeapT.Round(time.Millisecond).String(), bfsExtT.Round(time.Millisecond).String(),
		fmt.Sprintf("%.1fx", bfsExtT.Seconds()/bfsHeapT.Seconds())})

	r.Rows = append(r.Rows, []string{"Graph bytes resident", s.Name,
		MB(v.Bytes()), MB(0) + " heap (" + MB(mg.Bytes()) + " file-backed)", "—"})

	scanned, skipped := algo.ExtBlockStats()
	r.Notes = append(r.Notes,
		"warm start: decode rebuilds every adjacency vector and hash map; map validates checksums and aliases the file in place",
		"mapped analytics read edge blocks through the page cache; semi-external results are verified equal to the in-heap answers",
		fmt.Sprintf("semi-external scheduler totals this process: %d blocks scanned, %d skipped", scanned, skipped))
	return r, nil
}

// sameScores compares score maps for exact (bitwise) float equality, the
// contract the semi-external variants are held to.
func sameScores(a, b map[int64]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || av != bv {
			return false
		}
	}
	return true
}
