package core

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ringo/internal/extmem"
	"ringo/internal/gen"
	"ringo/internal/graph"
)

func openMappedTestGraph(t testing.TB, g *graph.Directed) *extmem.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.rngm")
	if err := extmem.SaveMapped(path, graph.BuildView(g)); err != nil {
		t.Fatalf("SaveMapped: %v", err)
	}
	mg, err := extmem.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { mg.Close() })
	return mg
}

func TestWorkspaceMappedBinding(t *testing.T) {
	mg := openMappedTestGraph(t, gen.GNM(300, 2000, 21))
	ws := NewWorkspace()
	ws.Set("m", Object{Mapped: mg})

	o, ok := ws.Get("m")
	if !ok || o.Kind() != "mgraph" {
		t.Fatalf("binding kind = %q, want mgraph", o.Kind())
	}
	if !strings.Contains(o.Summary(), "mgraph") {
		t.Fatalf("summary %q does not name the mapped kind", o.Summary())
	}

	v, err := ws.DirectedView("m")
	if err != nil {
		t.Fatalf("DirectedView: %v", err)
	}
	if v != mg.View() {
		t.Fatalf("DirectedView did not serve the mapped view in place")
	}
	// Mapped views bypass the cache entirely: no entry, no accounted bytes.
	_, _, entries, _ := ws.ViewCacheStats()
	if entries != 0 {
		t.Fatalf("mapped DirectedView occupied %d cache entries", entries)
	}

	// The undirected projection is a heap materialization and is cached.
	u1, err := ws.UndirectedView("m")
	if err != nil {
		t.Fatalf("UndirectedView: %v", err)
	}
	u2, err := ws.UndirectedView("m")
	if err != nil {
		t.Fatalf("UndirectedView (warm): %v", err)
	}
	if u1 != u2 {
		t.Fatalf("undirected projection of a mapped graph was rebuilt on the second query")
	}
	if u1.NumNodes() != mg.NumNodes() {
		t.Fatalf("projection has %d nodes, image %d", u1.NumNodes(), mg.NumNodes())
	}

	if ws.MappedBytes() != mg.Bytes() {
		t.Fatalf("MappedBytes() = %d, want %d", ws.MappedBytes(), mg.Bytes())
	}

	// Mutating accessors must reject the read-only tier by kind.
	if _, err := ws.Graph("m"); err == nil {
		t.Fatalf("Graph() handed out a mutable handle to a mapped graph")
	}
	if _, err := ws.MappedGraph("m"); err != nil {
		t.Fatalf("MappedGraph: %v", err)
	}

	// Snapshots exclude mapped bindings with a pointed error.
	var buf bytes.Buffer
	err = ws.Snapshot(&buf)
	if err == nil || !strings.Contains(err.Error(), "mapped graph") {
		t.Fatalf("Snapshot err = %v, want mapped-graph rejection", err)
	}
}

func TestWorkspaceMappedUndirectedBinding(t *testing.T) {
	u := graph.BuildUView(gen.BarabasiAlbert(200, 3, 5))
	path := filepath.Join(t.TempDir(), "u.rngm")
	if err := extmem.SaveMappedUndirected(path, u); err != nil {
		t.Fatalf("SaveMappedUndirected: %v", err)
	}
	mg, err := extmem.Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer mg.Close()

	ws := NewWorkspace()
	ws.Set("mu", Object{Mapped: mg})
	uv, err := ws.UndirectedView("mu")
	if err != nil {
		t.Fatalf("UndirectedView: %v", err)
	}
	if uv != mg.UView() {
		t.Fatalf("UndirectedView did not serve the mapped view in place")
	}
	if _, err := ws.DirectedView("mu"); err == nil {
		t.Fatalf("DirectedView served an undirected mapped image")
	}
}

func TestExtMemReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and times a dataset")
	}
	r, err := ExtMem(LJSim(0.001))
	if err != nil {
		t.Fatalf("ExtMem: %v", err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("ExtMem report has %d rows", len(r.Rows))
	}
}

// restoreFixture builds a ≥1M-edge graph once per benchmark run and lays
// down both warm-start artifacts: the RNGS workspace snapshot (decode
// path) and the RNGM image (map path).
func restoreFixture(b *testing.B) (snapPath, mapPath string) {
	b.Helper()
	g := gen.GNM(200_000, 1_000_000, 77)
	dir := b.TempDir()
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: g})
	snapPath = filepath.Join(dir, "ws.rngs")
	if err := ws.SnapshotFile(snapPath); err != nil {
		b.Fatalf("SnapshotFile: %v", err)
	}
	mapPath = filepath.Join(dir, "g.rngm")
	if err := extmem.SaveMapped(mapPath, graph.BuildView(g)); err != nil {
		b.Fatalf("SaveMapped: %v", err)
	}
	return snapPath, mapPath
}

// BenchmarkRestoreDecode is the warm-start baseline: decode the RNGS
// snapshot, rebuilding every adjacency vector and hash map on the heap.
func BenchmarkRestoreDecode(b *testing.B) {
	snapPath, _ := restoreFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws := NewWorkspace()
		if err := ws.RestoreFile(snapPath); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRestoreMapped is the beyond-RAM warm start: validate and map
// the RNGM image, serving a queryable view with no decode. Compare against
// BenchmarkRestoreDecode on the same 1M-edge graph.
func BenchmarkRestoreMapped(b *testing.B) {
	_, mapPath := restoreFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mg, err := extmem.Open(mapPath)
		if err != nil {
			b.Fatal(err)
		}
		if mg.View().NumNodes() == 0 {
			b.Fatal("empty view")
		}
		mg.Close()
	}
}
