package core

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"ringo/internal/gen"
	"ringo/internal/table"
)

// Spec describes a synthetic benchmark dataset standing in for one of the
// paper's experiment graphs (Table 2). The generator is R-MAT with the
// canonical skew parameters, so the degree distribution matches the
// LiveJournal/Twitter shape at any scale.
type Spec struct {
	// Name labels the dataset in reports (e.g. "lj-sim").
	Name string
	// PaperName is the dataset this one stands in for.
	PaperName string
	// RMATScale is the log2 of the node id space.
	RMATScale int
	// Edges is the number of generated edge rows (before deduplication).
	Edges int64
	// Seed fixes the generator.
	Seed int64
}

// LJSim returns the LiveJournal stand-in (paper: 4.8M nodes, 69M edges)
// scaled by factor: Edges = 69M × factor, node space sized to keep the
// edges-per-node ratio of the original.
func LJSim(factor float64) Spec {
	return scaledSpec("lj-sim", "LiveJournal", 4.8e6, 69e6, factor, 101)
}

// TWSim returns the Twitter2010 stand-in (paper: 42M nodes, 1.5B edges)
// scaled by factor.
func TWSim(factor float64) Spec {
	return scaledSpec("tw-sim", "Twitter2010", 42e6, 1.5e9, factor, 202)
}

func scaledSpec(name, paper string, nodes, edges, factor float64, seed int64) Spec {
	if factor <= 0 {
		panic("core: dataset scale factor must be positive")
	}
	n := nodes * factor
	scale := int(math.Round(math.Log2(n)))
	if scale < 4 {
		scale = 4
	}
	if scale > 31 {
		scale = 31
	}
	return Spec{
		Name:      name,
		PaperName: paper,
		RMATScale: scale,
		Edges:     int64(edges * factor),
		Seed:      seed,
	}
}

// EdgeTable generates the dataset's raw edge table.
func (s Spec) EdgeTable() *table.Table {
	return gen.RMATTable(s.RMATScale, s.Edges, s.Seed)
}

// specCache memoizes generated edge tables so one harness run generates
// each dataset once.
var specCache = map[string]*table.Table{}

// CachedEdgeTable returns a shared generated edge table for the spec.
// Callers must not mutate it (clone first for in-place operations).
func (s Spec) CachedEdgeTable() *table.Table {
	key := fmt.Sprintf("%s/%d/%d/%d", s.Name, s.RMATScale, s.Edges, s.Seed)
	if t, ok := specCache[key]; ok {
		return t
	}
	t := s.EdgeTable()
	specCache[key] = t
	return t
}

// Timed runs fn and returns its wall-clock duration.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}

// Rate formats a per-second processing rate ("13.0M/s") from a count and a
// duration.
func Rate(count int64, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	perSec := float64(count) / d.Seconds()
	switch {
	case perSec >= 1e9:
		return fmt.Sprintf("%.1fB/s", perSec/1e9)
	case perSec >= 1e6:
		return fmt.Sprintf("%.1fM/s", perSec/1e6)
	case perSec >= 1e3:
		return fmt.Sprintf("%.1fK/s", perSec/1e3)
	default:
		return fmt.Sprintf("%.1f/s", perSec)
	}
}

// MB formats a byte count in megabytes, the unit Table 2 uses.
func MB(b int64) string {
	return fmt.Sprintf("%.1fMB", float64(b)/(1<<20))
}

// HeapDelta measures the extra heap consumed while fn runs: the peak live
// heap sampled during execution minus the settled heap before it. It is the
// "memory footprint" measurement from §3 (PageRank on Twitter2010 ran
// within 2× the graph size). Sampling is approximate but stable enough for
// the shape check.
func HeapDelta(fn func()) int64 {
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	var peak atomic.Int64
	peak.Store(int64(before.HeapAlloc))
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(2 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				if h := int64(m.HeapAlloc); h > peak.Load() {
					peak.Store(h)
				}
			}
		}
	}()
	fn()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	close(done)
	if h := int64(after.HeapAlloc); h > peak.Load() {
		peak.Store(h)
	}
	delta := peak.Load() - int64(before.HeapAlloc)
	if delta < 0 {
		return 0
	}
	return delta
}

// Report is a formatted experiment result: a title, column headers, and
// rows, printable in the layout of the paper's tables.
type Report struct {
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// Print writes the report as an aligned text table.
func (r Report) Print(w io.Writer) {
	fmt.Fprintf(w, "%s\n", r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "  %s\n", strings.Join(parts, "  "))
	}
	line(r.Header)
	rule := make([]string, len(r.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// countingWriter measures serialized byte size (the "Text File Size" column
// of Table 2) without materializing the file.
type countingWriter struct{ n int64 }

func (c *countingWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}
