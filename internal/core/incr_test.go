package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"ringo/internal/algo"
	"ringo/internal/graph"
)

// incrShapes builds the graph shapes the oracle suite mutates, mirroring
// the graph-level patch tests: G(n,m), ring, star, isolated nodes, and a
// graph whose slot table carries tombstones from pre-binding deletions.
func incrShapes(rng *rand.Rand) map[string]*graph.Directed {
	gnm := graph.NewDirected()
	for i := 0; i < 150; i++ {
		gnm.AddEdge(rng.Int63n(45), rng.Int63n(45))
	}
	ring := graph.NewDirected()
	for i := int64(0); i < 32; i++ {
		ring.AddEdge(i, (i+1)%32)
	}
	star := graph.NewDirected()
	for i := int64(1); i <= 24; i++ {
		star.AddEdge(0, i)
	}
	isolated := graph.NewDirected()
	for i := int64(0); i < 18; i++ {
		isolated.AddNode(i * 5)
	}
	tombstoned := graph.NewDirected()
	for i := int64(0); i < 36; i++ {
		tombstoned.AddEdge(i, (i*5)%36)
	}
	for i := int64(0); i < 36; i += 4 {
		tombstoned.DelNode(i)
	}
	return map[string]*graph.Directed{
		"gnm": gnm, "ring": ring, "star": star,
		"isolated": isolated, "tombstoned": tombstoned,
	}
}

func sameViewT(t *testing.T, ctx string, got, want *graph.View) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("%s: view shape differs: got %d/%d nodes/edges, want %d/%d",
			ctx, got.NumNodes(), got.NumEdges(), want.NumNodes(), want.NumEdges())
	}
	for u := int32(0); int(u) < want.NumNodes(); u++ {
		if got.ID(u) != want.ID(u) {
			t.Fatalf("%s: id at dense %d differs: %d vs %d", ctx, u, got.ID(u), want.ID(u))
		}
		if !reflect.DeepEqual(got.Out(u), want.Out(u)) || !reflect.DeepEqual(got.In(u), want.In(u)) {
			t.Fatalf("%s: adjacency of node %d differs", ctx, want.ID(u))
		}
	}
}

func sameUViewT(t *testing.T, ctx string, got, want *graph.UView) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() {
		t.Fatalf("%s: uview node counts differ: %d vs %d", ctx, got.NumNodes(), want.NumNodes())
	}
	for u := int32(0); int(u) < want.NumNodes(); u++ {
		if got.ID(u) != want.ID(u) {
			t.Fatalf("%s: id at dense %d differs: %d vs %d", ctx, u, got.ID(u), want.ID(u))
		}
		if !reflect.DeepEqual(got.Adj(u), want.Adj(u)) {
			t.Fatalf("%s: adjacency of node %d differs", ctx, want.ID(u))
		}
	}
}

// TestIncrementalOracle is the archetype headline: randomized
// interleavings of mutations and queries against a workspace binding,
// asserting after every step that the patched views are structurally
// identical to from-scratch builds and that the incremental algorithms
// agree with their cold oracles. Run with -race in CI.
func TestIncrementalOracle(t *testing.T) {
	const tol = 1e-9
	rng := rand.New(rand.NewSource(21))
	for name, g := range incrShapes(rng) {
		t.Run(name, func(t *testing.T) {
			ws := NewWorkspace()
			ws.Set("g", Object{Graph: g})

			dv, err := ws.DirectedView("g")
			if err != nil {
				t.Fatal(err)
			}
			uv, _ := ws.UndirectedView("g")
			pr := algo.PageRankViewTol(dv, algo.DefaultDamping, tol)
			wcc := algo.WCCView(dv)
			tri := algo.TrianglesView(uv)

			for step := 0; step < 15; step++ {
				ctx := fmt.Sprintf("%s step %d", name, step)
				var deltas []graph.Delta
				for i := 0; i < 1+rng.Intn(6); i++ {
					switch rng.Intn(6) {
					case 0:
						id := rng.Int63n(80)
						if ok, err := ws.AddGraphNode("g", id); err != nil {
							t.Fatal(err)
						} else if ok {
							deltas = append(deltas, graph.Delta{Op: graph.DeltaAddNode, Src: id})
						}
					case 1, 2:
						s, d := rng.Int63n(60), rng.Int63n(60)
						if ok, _ := ws.DelGraphEdge("g", s, d); ok {
							deltas = append(deltas, graph.Delta{Op: graph.DeltaDelEdge, Src: s, Dst: d})
						}
					default:
						s, d := rng.Int63n(80), rng.Int63n(80)
						if ok, _ := ws.AddGraphEdge("g", s, d); ok {
							deltas = append(deltas, graph.Delta{Op: graph.DeltaAddEdge, Src: s, Dst: d})
						}
					}
				}

				newDV, err := ws.DirectedView("g")
				if err != nil {
					t.Fatal(err)
				}
				sameViewT(t, ctx, newDV, graph.BuildView(g))
				newUV, err := ws.UndirectedView("g")
				if err != nil {
					t.Fatal(err)
				}
				sameUViewT(t, ctx, newUV, graph.BuildUView(graph.AsUndirected(g)))

				// Incremental algorithms against their cold oracles.
				incrPR := algo.PageRankIncr(newDV, pr, algo.DefaultDamping, tol)
				coldPR := algo.PageRankViewTol(newDV, algo.DefaultDamping, tol)
				for id, s := range coldPR {
					if math.Abs(incrPR[id]-s) > 1e-6 {
						t.Fatalf("%s: incremental PageRank diverges at node %d: %g vs %g",
							ctx, id, incrPR[id], s)
					}
				}
				coldWCC := algo.WCCView(newDV)
				if incrWCC, ok := algo.WCCIncr(newDV, wcc, deltas); ok {
					if !reflect.DeepEqual(incrWCC, coldWCC) {
						t.Fatalf("%s: incremental WCC differs from cold", ctx)
					}
				} else {
					hasDel := false
					for _, d := range deltas {
						if d.Op == graph.DeltaDelEdge {
							hasDel = true
						}
					}
					if !hasDel {
						t.Fatalf("%s: WCCIncr fell back without a deletion in the batch", ctx)
					}
				}
				incrTri := algo.TrianglesIncr(uv, newUV, tri, deltas)
				if coldTri := algo.TrianglesView(newUV); incrTri != coldTri {
					t.Fatalf("%s: incremental triangles %d, cold says %d", ctx, incrTri, coldTri)
				}

				dv, uv = newDV, newUV
				pr, wcc, tri = incrPR, coldWCC, incrTri
			}

			patches, rebuilds := ws.PatchStats()
			if patches == 0 {
				t.Fatalf("%s: no query was served by patching (rebuilds=%d)", name, rebuilds)
			}
		})
	}
}

// TestIncrementalOracleUndirected runs the interleaving against a native
// undirected binding.
func TestIncrementalOracleUndirected(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := graph.NewUndirected()
	for i := 0; i < 80; i++ {
		g.AddEdge(rng.Int63n(30), rng.Int63n(30))
	}
	ws := NewWorkspace()
	ws.Set("u", Object{UGraph: g})
	uv, err := ws.UndirectedView("u")
	if err != nil {
		t.Fatal(err)
	}
	tri := algo.TrianglesView(uv)
	for step := 0; step < 12; step++ {
		var deltas []graph.Delta
		for i := 0; i < 1+rng.Intn(5); i++ {
			s, d := rng.Int63n(40), rng.Int63n(40)
			if rng.Intn(3) == 0 {
				if ok, _ := ws.DelGraphEdge("u", s, d); ok {
					deltas = append(deltas, graph.Delta{Op: graph.DeltaDelEdge, Src: s, Dst: d})
				}
			} else if ok, _ := ws.AddGraphEdge("u", s, d); ok {
				deltas = append(deltas, graph.Delta{Op: graph.DeltaAddEdge, Src: s, Dst: d})
			}
		}
		newUV, err := ws.UndirectedView("u")
		if err != nil {
			t.Fatal(err)
		}
		sameUViewT(t, fmt.Sprintf("step %d", step), newUV, graph.BuildUView(g))
		incrTri := algo.TrianglesIncr(uv, newUV, tri, deltas)
		if coldTri := algo.TrianglesView(newUV); incrTri != coldTri {
			t.Fatalf("step %d: incremental triangles %d, cold says %d", step, incrTri, coldTri)
		}
		uv, tri = newUV, incrTri
	}
	if patches, _ := ws.PatchStats(); patches == 0 {
		t.Fatal("no undirected query was served by patching")
	}
}

// TestPatchThresholdBoundary pins the rebuild cutoff exactly: with a base
// of V+E = 100 and ratio 0.1, a 10-delta batch patches and an 11-delta
// batch rebuilds.
func TestPatchThresholdBoundary(t *testing.T) {
	g := graph.NewDirected()
	for i := int64(0); i < 40; i++ {
		g.AddEdge(i, (i+1)%40) // ring: 40 nodes, 40 edges
	}
	for i := int64(40); i < 60; i++ {
		g.AddNode(i) // 20 isolated nodes -> V+E = 100
	}
	ws := NewWorkspace()
	ws.ConfigurePatching(0.1)
	ws.Set("g", Object{Graph: g})
	if _, err := ws.DirectedView("g"); err != nil {
		t.Fatal(err)
	}
	if p, r := ws.PatchStats(); p != 0 || r != 1 {
		t.Fatalf("after warm build: patches=%d rebuilds=%d, want 0/1", p, r)
	}

	// Exactly at the cutoff: 5 deletes + 5 adds keeps V+E at 100.
	for i := int64(0); i < 5; i++ {
		if ok, _ := ws.DelGraphEdge("g", 2*i, 2*i+1); !ok {
			t.Fatalf("expected ring edge %d->%d", 2*i, 2*i+1)
		}
		if ok, _ := ws.AddGraphEdge("g", 40+2*i, 41+2*i); !ok {
			t.Fatalf("expected fresh edge %d->%d", 40+2*i, 41+2*i)
		}
	}
	v, err := ws.DirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	sameViewT(t, "at cutoff", v, graph.BuildView(g))
	if p, r := ws.PatchStats(); p != 1 || r != 1 {
		t.Fatalf("batch at cutoff: patches=%d rebuilds=%d, want 1/1", p, r)
	}

	// One past the cutoff: 11 effective deltas against the freshly cached
	// base (still V+E = 100) must rebuild.
	for i := int64(5); i < 10; i++ {
		if ok, _ := ws.DelGraphEdge("g", 2*i, 2*i+1); !ok {
			t.Fatalf("expected ring edge %d->%d", 2*i, 2*i+1)
		}
		if ok, _ := ws.AddGraphEdge("g", 40+2*i, 41+2*i); !ok {
			t.Fatalf("expected fresh edge %d->%d", 40+2*i, 41+2*i)
		}
	}
	if ok, _ := ws.AddGraphEdge("g", 40, 42); !ok {
		t.Fatal("expected fresh edge 40->42")
	}
	v, err = ws.DirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	sameViewT(t, "past cutoff", v, graph.BuildView(g))
	if p, r := ws.PatchStats(); p != 1 || r != 2 {
		t.Fatalf("batch past cutoff: patches=%d rebuilds=%d, want 1/2", p, r)
	}
}

// TestMutationKeepsSiblingViews is the purge-granularity regression: a
// mutation of binding X must not disturb the warm views of binding Y —
// whether the mutation is a delta-logged edge update or a wholesale Touch
// — and X's own pre-mutation view must stay resident as the patch base.
func TestMutationKeepsSiblingViews(t *testing.T) {
	mkRing := func(n int64) *graph.Directed {
		g := graph.NewDirected()
		for i := int64(0); i < n; i++ {
			g.AddEdge(i, (i+1)%n)
		}
		return g
	}
	ws := NewWorkspace()
	ws.Set("x", Object{Graph: mkRing(20)})
	ws.Set("y", Object{Graph: mkRing(12)})

	vy, err := ws.DirectedView("y")
	if err != nil {
		t.Fatal(err)
	}
	vx, err := ws.DirectedView("x")
	if err != nil {
		t.Fatal(err)
	}
	hits0, _, entries0, _ := ws.ViewCacheStats()
	if entries0 != 2 {
		t.Fatalf("expected 2 warm views, have %d", entries0)
	}

	// Delta-logged mutation of x: y's view must still hit, and x's old
	// view must survive as the patch base.
	if ok, err := ws.AddGraphEdge("x", 100, 101); err != nil || !ok {
		t.Fatalf("AddGraphEdge: ok=%v err=%v", ok, err)
	}
	if _, _, entries, _ := ws.ViewCacheStats(); entries != entries0 {
		t.Fatalf("mutation of x changed resident view count: %d -> %d", entries0, entries)
	}
	vy2, err := ws.DirectedView("y")
	if err != nil {
		t.Fatal(err)
	}
	if vy2 != vy {
		t.Fatal("warm view of y did not survive a mutation of x")
	}
	hits1, _, _, _ := ws.ViewCacheStats()
	if hits1 != hits0+1 {
		t.Fatalf("y's re-query was not a cache hit: hits %d -> %d", hits0, hits1)
	}
	vx2, err := ws.DirectedView("x")
	if err != nil {
		t.Fatal(err)
	}
	if vx2 == vx {
		t.Fatal("x's view was not refreshed after its mutation")
	}
	if p, _ := ws.PatchStats(); p != 1 {
		t.Fatalf("x's refresh should have patched from the retained base, patches=%d", p)
	}

	// Wholesale Touch of x: y still untouched.
	ws.Touch("x")
	vy3, err := ws.DirectedView("y")
	if err != nil {
		t.Fatal(err)
	}
	if vy3 != vy {
		t.Fatal("warm view of y did not survive a Touch of x")
	}
}

// TestMutateGraphErrors pins the error surface of the mutation API.
func TestMutateGraphErrors(t *testing.T) {
	ws := NewWorkspace()
	if _, err := ws.AddGraphEdge("nope", 1, 2); err == nil {
		t.Fatal("expected error for unknown binding")
	}
	ws.Set("s", Object{Scores: map[int64]float64{1: 1}})
	if _, err := ws.AddGraphEdge("s", 1, 2); err == nil {
		t.Fatal("expected error for non-graph binding")
	}
	ws.Set("g", Object{Graph: graph.NewDirected()})
	if _, err := ws.AddGraphNode("g", graph.ReservedNodeID); err == nil {
		t.Fatal("expected error for reserved node id")
	}
	if ok, err := ws.AddGraphEdge("g", 1, 2); err != nil || !ok {
		t.Fatalf("first add: ok=%v err=%v", ok, err)
	}
	if ok, err := ws.AddGraphEdge("g", 1, 2); err != nil || ok {
		t.Fatalf("duplicate add should be a logged no-op: ok=%v err=%v", ok, err)
	}
	if ok, err := ws.DelGraphEdge("g", 7, 8); err != nil || ok {
		t.Fatalf("deleting a missing edge should be a no-op: ok=%v err=%v", ok, err)
	}
	if n := ws.DeltaEdges(); n != 1 {
		t.Fatalf("only the effective mutation should be logged, DeltaEdges=%d", n)
	}
	if d := ws.PendingDeltas("g"); len(d) != 1 || d[0].Op != graph.DeltaAddEdge {
		t.Fatalf("unexpected pending deltas: %+v", d)
	}
}

// TestIncrementalConcurrentReaders exercises the patch machinery under the
// race detector with the server's access pattern: mutations happen in
// exclusive phases (the session lock), then many goroutines concurrently
// materialize and read patched views of both orientations.
func TestIncrementalConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := graph.NewDirected()
	for i := 0; i < 300; i++ {
		g.AddEdge(rng.Int63n(80), rng.Int63n(80))
	}
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: g})
	if _, err := ws.DirectedView("g"); err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 6; round++ {
		for i := 0; i < 4; i++ {
			ws.AddGraphEdge("g", rng.Int63n(90), rng.Int63n(90))
		}
		want := graph.BuildView(g)
		var wg sync.WaitGroup
		for r := 0; r < 8; r++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				v, err := ws.DirectedView("g")
				if err != nil {
					t.Error(err)
					return
				}
				if v.NumNodes() != want.NumNodes() || v.NumEdges() != want.NumEdges() {
					t.Errorf("concurrent reader saw wrong view shape: %d/%d vs %d/%d",
						v.NumNodes(), v.NumEdges(), want.NumNodes(), want.NumEdges())
				}
				if _, err := ws.UndirectedView("g"); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
}
