package core

import (
	"fmt"

	"ringo/internal/graph"
)

// DefaultPatchRatio is the patch-vs-rebuild threshold: a pending delta
// batch is patched onto a cached base view when it holds at most
// ratio × (V+E) deltas (sized against the base), and triggers the full
// rebuild otherwise. Patching wins clearly at small deltas (see
// ringo-bench -table incr for the measured crossover); past a fifth of
// the graph the merge bookkeeping stops paying for itself and the
// incremental algorithms lose their locality advantage anyway.
const DefaultPatchRatio = 0.2

// maxDeltaLog caps a binding's pending delta log. When a mutation would
// grow the log past the cap, the log resets to the current version:
// older cached views stop being patchable (the next query rebuilds), in
// exchange for bounded memory under unbounded mutation streams.
const maxDeltaLog = 1 << 14

// verDelta is one logged mutation stamped with the binding version it
// produced, so any cached view — at the log's base version or at any
// intermediate version — can locate the exact delta suffix separating it
// from the current state.
type verDelta struct {
	ver uint64
	d   graph.Delta
}

// deltaLog is the pending mutation history of one graph binding, from the
// version the oldest patchable view carries (baseVer) to the current one.
// Mutating verbs append; Set/Delete/Rename/Touch/Restore discard the log
// along with the binding's cached views.
type deltaLog struct {
	baseVer uint64
	deltas  []verDelta
}

// ConfigurePatching sets the patch-vs-rebuild threshold ratio (see
// DefaultPatchRatio). ratio <= 0 disables patching: every view miss runs
// the full build, which also serves as the oracle configuration in the
// equivalence tests.
func (w *Workspace) ConfigurePatching(ratio float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.patchRatio = ratio
}

// PatchStats reports how many view materializations were served by
// patching a cached base versus running a full build.
func (w *Workspace) PatchStats() (patches, rebuilds uint64) {
	return w.patches.Load(), w.rebuilds.Load()
}

// DeltaEdges reports the number of deltas retained across every
// binding's log. A log is kept even after the newest view absorbs it —
// other cached views at older versions still patch forward across it —
// and drops only when the binding is invalidated wholesale or the log
// overflows maxDeltaLog. This is the ringo_delta_edges gauge.
func (w *Workspace) DeltaEdges() int {
	w.mu.RLock()
	defer w.mu.RUnlock()
	total := 0
	for _, dl := range w.deltas {
		total += len(dl.deltas)
	}
	return total
}

// PendingDeltas returns the binding's logged mutations since the oldest
// patchable view state, oldest first — the batch callers hand to the
// incremental algorithms (PageRankIncr, WCCIncr, TrianglesIncr) together
// with the previous result.
func (w *Workspace) PendingDeltas(name string) []graph.Delta {
	w.mu.RLock()
	defer w.mu.RUnlock()
	dl := w.deltas[name]
	if dl == nil || len(dl.deltas) == 0 {
		return nil
	}
	out := make([]graph.Delta, len(dl.deltas))
	for i, vd := range dl.deltas {
		out[i] = vd.d
	}
	return out
}

// AddGraphNode adds an isolated node to the graph bound to name,
// reporting whether the node was new. The mutation bumps the binding's
// version and appends to its delta log without purging cached views —
// they stay resident as patch bases.
func (w *Workspace) AddGraphNode(name string, id int64) (bool, error) {
	return w.mutateGraph(name, graph.Delta{Op: graph.DeltaAddNode, Src: id})
}

// AddGraphEdge adds an edge to the graph bound to name (creating missing
// endpoints), reporting whether the edge was new. See AddGraphNode for
// the versioning contract.
func (w *Workspace) AddGraphEdge(name string, src, dst int64) (bool, error) {
	return w.mutateGraph(name, graph.Delta{Op: graph.DeltaAddEdge, Src: src, Dst: dst})
}

// DelGraphEdge removes an edge from the graph bound to name, reporting
// whether it existed. See AddGraphNode for the versioning contract.
func (w *Workspace) DelGraphEdge(name string, src, dst int64) (bool, error) {
	return w.mutateGraph(name, graph.Delta{Op: graph.DeltaDelEdge, Src: src, Dst: dst})
}

// mutateGraph applies one delta to a graph binding. Like Touch and the
// in-place table sort, graph mutations require the host to serialize them
// against running queries (the server's per-session lock does); the
// workspace lock only protects its own registry state.
func (w *Workspace) mutateGraph(name string, d graph.Delta) (bool, error) {
	if d.Src == graph.ReservedNodeID || (d.Op != graph.DeltaAddNode && d.Dst == graph.ReservedNodeID) {
		return false, fmt.Errorf("node id %d is reserved", graph.ReservedNodeID)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	o, ok := w.objs[name]
	if !ok {
		return false, fmt.Errorf("no object named %q", name)
	}
	var changed bool
	switch {
	case o.Graph != nil:
		switch d.Op {
		case graph.DeltaAddNode:
			changed = o.Graph.AddNode(d.Src)
		case graph.DeltaAddEdge:
			changed = o.Graph.AddEdge(d.Src, d.Dst)
		case graph.DeltaDelEdge:
			changed = o.Graph.DelEdge(d.Src, d.Dst)
		}
	case o.UGraph != nil:
		switch d.Op {
		case graph.DeltaAddNode:
			changed = o.UGraph.AddNode(d.Src)
		case graph.DeltaAddEdge:
			changed = o.UGraph.AddEdge(d.Src, d.Dst)
		case graph.DeltaDelEdge:
			changed = o.UGraph.DelEdge(d.Src, d.Dst)
		}
	case o.Mapped != nil:
		return false, fmt.Errorf("%q is a mapped graph (read-only)", name)
	default:
		return false, fmt.Errorf("%q is a %s, not a graph", name, o.Kind())
	}
	if !changed {
		return false, nil
	}
	oldVer := w.ver[name]
	w.clock++
	w.ver[name] = w.clock
	dl := w.deltas[name]
	if dl == nil {
		dl = &deltaLog{baseVer: oldVer}
		w.deltas[name] = dl
	}
	if len(dl.deltas) >= maxDeltaLog {
		*dl = deltaLog{baseVer: w.clock}
	} else {
		dl.deltas = append(dl.deltas, verDelta{ver: w.clock, d: d})
	}
	return true, nil
}

// patchPlan is an immutable snapshot of a binding's delta log plus the
// patch threshold, taken under the workspace lock and consumed inside the
// view cache's build closure — where no workspace lock is held.
type patchPlan struct {
	ratio   float64
	baseVer uint64
	deltas  []verDelta
}

// patchPlanLocked snapshots name's pending deltas; callers hold w.mu.
// The slice is capped so concurrent appends cannot write into it.
func (w *Workspace) patchPlanLocked(name string) patchPlan {
	p := patchPlan{ratio: w.patchRatio}
	if dl := w.deltas[name]; dl != nil && len(dl.deltas) > 0 {
		p.baseVer = dl.baseVer
		p.deltas = dl.deltas[:len(dl.deltas):len(dl.deltas)]
	}
	return p
}

// candidateVer returns the binding version a cached view would carry if
// it reflects the log state before deltas[i:] — the log's base for i = 0,
// the version stamped on delta i-1 otherwise.
func (p patchPlan) candidateVer(i int) uint64 {
	if i == 0 {
		return p.baseVer
	}
	return p.deltas[i-1].ver
}

// pending extracts the delta suffix from index i on.
func (p patchPlan) pending(i int) []graph.Delta {
	out := make([]graph.Delta, len(p.deltas)-i)
	for j := i; j < len(p.deltas); j++ {
		out[j-i] = p.deltas[j].d
	}
	return out
}

// withinCutoff applies the patch-vs-rebuild threshold: the pending batch
// must be no larger than ratio × (V+E) of the base view. A batch exactly
// at the cutoff patches; one past it rebuilds.
func (p patchPlan) withinCutoff(pending int, nodes int, edges int64) bool {
	return pending <= int(p.ratio*float64(int64(nodes)+edges))
}

// baseDirected finds the freshest resident directed view the pending
// deltas can patch from, returning it with the delta suffix to apply, or
// nil when no base is resident or the batch exceeds the cutoff.
func (p patchPlan) baseDirected(views *ViewCache, name string) (*graph.View, []graph.Delta) {
	if p.ratio <= 0 || len(p.deltas) == 0 {
		return nil, nil
	}
	for i := len(p.deltas) - 1; i >= 0; i-- {
		if base := views.PeekDirected(name, p.candidateVer(i)); base != nil {
			if !p.withinCutoff(len(p.deltas)-i, base.NumNodes(), base.NumEdges()) {
				return nil, nil
			}
			return base, p.pending(i)
		}
	}
	return nil, nil
}

// baseUndirected is baseDirected for the undirected orientation.
func (p patchPlan) baseUndirected(views *ViewCache, name string) (*graph.UView, []graph.Delta) {
	if p.ratio <= 0 || len(p.deltas) == 0 {
		return nil, nil
	}
	for i := len(p.deltas) - 1; i >= 0; i-- {
		if base := views.PeekUndirected(name, p.candidateVer(i)); base != nil {
			if !p.withinCutoff(len(p.deltas)-i, base.NumNodes(), base.NumEdges()) {
				return nil, nil
			}
			return base, p.pending(i)
		}
	}
	return nil, nil
}
