package core

import (
	"container/list"
	"sync"

	"ringo/internal/table"
)

// DefaultIndexCacheEntries bounds a workspace's equality-index cache.
// Indexes are per-(table, column) and each costs roughly
// cardinality × NumRows/8 bytes, much smaller than CSR views, so the bound
// is looser than the view cache's.
const DefaultIndexCacheEntries = 32

// indexKey identifies one cached equality index: the exact state of a
// workspace table binding — its fingerprint, carried as the (name, version)
// pair so keying is exact for any binding name — plus the indexed column.
type indexKey struct {
	name string
	ver  uint64
	col  string
}

// indexEntry is one cache slot. The index is built inside once, so
// concurrent readers asking for the same uncached index block on a single
// build instead of racing O(rows) scans. Build failures (missing column,
// high cardinality) are cached too: they are fingerprint-exact facts, and
// caching them keeps repeat filters on an unindexable column from
// re-scanning to rediscover the failure. ready is written under the cache
// lock after the build completes, so the lock-only fast path can serve the
// entry without touching the sync.Once.
type indexEntry struct {
	key   indexKey
	once  sync.Once
	idx   *table.EqIndex
	err   error
	ready bool
	bytes int64
}

// IndexCache is the fingerprint-keyed equality-index cache, the relational
// sibling of ViewCache: a low-cardinality column's bitmap index is built on
// the first equality filter and every later filter over the unchanged table
// is served from it. Exact invalidation comes from workspace fingerprints —
// any mutation of a binding changes its version — and the workspace
// additionally purges entries eagerly on mutation. Bounded LRU; safe for
// concurrent use.
type IndexCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List
	items  map[indexKey]*list.Element
	hits   uint64
	misses uint64
	bytes  int64
}

// NewIndexCache returns a cache holding at most max indexes (max < 1 is
// treated as 1).
func NewIndexCache(max int) *IndexCache {
	if max < 1 {
		max = 1
	}
	return &IndexCache{max: max, ll: list.New(), items: make(map[indexKey]*list.Element)}
}

// Cached returns the finished entry for (name, ver, col) if one is resident,
// recording a hit. This is the warm path: one lock, one map probe, zero
// allocations. ok reports false for absent or still-building entries.
func (c *IndexCache) Cached(name string, ver uint64, col string) (idx *table.EqIndex, err error, ok bool) {
	if c == nil {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.items[indexKey{name: name, ver: ver, col: col}]
	if !found {
		return nil, nil, false
	}
	ent := el.Value.(*indexEntry)
	if !ent.ready {
		return nil, nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.idx, ent.err, true
}

// Get returns the cached index for the binding state (name, ver) and
// column, building it with build on a miss. A nil cache always builds.
// Prefer Cached first on hot paths — Get's build closure argument is
// constructed by the caller even on a hit.
func (c *IndexCache) Get(name string, ver uint64, col string, build func() (*table.EqIndex, error)) (*table.EqIndex, error) {
	if c == nil {
		return build()
	}
	ent, el := c.acquire(indexKey{name: name, ver: ver, col: col})
	ent.once.Do(func() {
		ent.idx, ent.err = build()
		var bytes int64
		if ent.idx != nil {
			bytes = ent.idx.Bytes()
		}
		c.record(ent, el, bytes)
	})
	return ent.idx, ent.err
}

// acquire returns the entry for key, inserting (and evicting) as needed.
// The caller runs the build inside the entry's once.
func (c *IndexCache) acquire(key indexKey) (*indexEntry, *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*indexEntry), el
	}
	ent := &indexEntry{key: key}
	el := c.ll.PushFront(ent)
	c.items[key] = el
	c.misses++
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		old := oldest.Value.(*indexEntry)
		c.ll.Remove(oldest)
		delete(c.items, old.key)
		c.bytes -= old.bytes
	}
	return ent, el
}

// record books the finished build's size and marks the entry servable by
// the lock-only fast path, unless the entry was evicted while it was
// building (then the index lives only as long as its callers).
func (c *IndexCache) record(ent *indexEntry, el *list.Element, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent.bytes = bytes
	ent.ready = true
	if cur, ok := c.items[ent.key]; ok && cur == el {
		c.bytes += bytes
	} else {
		ent.bytes = 0
	}
}

// Drop removes every column's index of one exact binding state. The
// workspace calls it when an index finished building just as its binding
// was mutated away: the mutator's Purge ran before the insertion landed, so
// without the drop the dead index would linger until LRU eviction.
func (c *IndexCache) Drop(name string, ver uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.name == name && key.ver == ver {
			ent := el.Value.(*indexEntry)
			c.ll.Remove(el)
			delete(c.items, key)
			c.bytes -= ent.bytes
		}
	}
}

// Purge drops every index of the named binding, whatever its version or
// column — the purge-on-mutate path: the binding's fingerprint has moved
// on, so these entries can never hit again.
func (c *IndexCache) Purge(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.name == name {
			ent := el.Value.(*indexEntry)
			c.ll.Remove(el)
			delete(c.items, key)
			c.bytes -= ent.bytes
		}
	}
}

// PurgeAll empties the cache (workspace restore: every binding's
// fingerprint was replaced wholesale).
func (c *IndexCache) PurgeAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
	c.bytes = 0
}

// Stats returns cumulative hits and misses, the current entry count, and
// the estimated resident bytes of the cached indexes.
func (c *IndexCache) Stats() (hits, misses uint64, entries int, bytes int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.bytes
}
