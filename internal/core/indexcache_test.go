package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"ringo/internal/table"
)

// testTable builds rows×(k:int, tag:string, score:float) with k drawn from
// [0, card) and tag from a fixed small vocabulary — low-cardinality columns
// shaped like the ones equality indexes exist for.
func testTable(t *testing.T, rows, card int, seed int64) *table.Table {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	tags := []string{"go", "java", "sql", "ml"}
	tbl, err := table.New(table.Schema{
		{Name: "k", Type: table.Int},
		{Name: "tag", Type: table.String},
		{Name: "score", Type: table.Float},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		if err := tbl.AppendRow(int64(rng.Intn(card)), tags[rng.Intn(len(tags))], rng.Float64()); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestTableEqIndexCachedUntilMutation(t *testing.T) {
	ws := NewWorkspace()
	tbl := testTable(t, 500, 7, 1)
	ws.Set("t", Object{Table: tbl})

	x1, err := ws.TableEqIndex("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	x2, err := ws.TableEqIndex("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if x1 != x2 {
		t.Fatal("second TableEqIndex on unchanged table rebuilt the index")
	}
	hits, misses, entries, bytes := ws.IndexCacheStats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("stats = %d hits, %d misses, %d entries; want 1/1/1", hits, misses, entries)
	}
	if bytes <= 0 {
		t.Fatalf("cached index bytes = %d, want > 0", bytes)
	}

	// In-place mutation + Touch: the old index must be evicted and a fresh
	// one built over the new rows.
	if err := tbl.AppendRow(int64(3), "go", 0.5); err != nil {
		t.Fatal(err)
	}
	ws.Touch("t")
	if _, _, entries, _ := ws.IndexCacheStats(); entries != 0 {
		t.Fatalf("Touch left %d index entries", entries)
	}
	x3, err := ws.TableEqIndex("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if x3 == x1 {
		t.Fatal("index served after mutation is the stale one")
	}
	if x3.Rows() != tbl.NumRows() {
		t.Fatalf("post-mutation index covers %d rows, table has %d", x3.Rows(), tbl.NumRows())
	}
}

func TestIndexPurgeOnSetDeleteRename(t *testing.T) {
	ws := NewWorkspace()
	ws.Set("a", Object{Table: testTable(t, 200, 5, 2)})
	ws.Set("b", Object{Table: testTable(t, 200, 5, 3)})
	if _, err := ws.TableEqIndex("a", "k"); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.TableEqIndex("b", "k"); err != nil {
		t.Fatal(err)
	}
	if _, _, entries, _ := ws.IndexCacheStats(); entries != 2 {
		t.Fatalf("want 2 entries, got %d", entries)
	}
	// Rebinding a purges its index only.
	ws.Set("a", Object{Table: testTable(t, 200, 5, 4)})
	if _, _, entries, _ := ws.IndexCacheStats(); entries != 1 {
		t.Fatalf("rebind: want 1 entry left, got %d", entries)
	}
	// Renaming b purges it too (its identity changed).
	if err := ws.Rename("b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, _, entries, _ := ws.IndexCacheStats(); entries != 0 {
		t.Fatalf("rename: want 0 entries, got %d", entries)
	}
	if _, err := ws.TableEqIndex("c", "k"); err != nil {
		t.Fatal(err)
	}
	if !ws.Delete("c") {
		t.Fatal("delete failed")
	}
	if _, _, entries, bytes := ws.IndexCacheStats(); entries != 0 || bytes != 0 {
		t.Fatalf("delete: want empty cache, got %d entries, %d bytes", entries, bytes)
	}
}

func TestIndexPurgeOnRestore(t *testing.T) {
	ws := NewWorkspace()
	ws.Set("t", Object{Table: testTable(t, 200, 5, 5)})
	x1, err := ws.TableEqIndex("t", "tag")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ws.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ws.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, entries, _ := ws.IndexCacheStats(); entries != 0 {
		t.Fatalf("restore left %d index entries", entries)
	}
	x2, err := ws.TableEqIndex("t", "tag")
	if err != nil {
		t.Fatal(err)
	}
	if x2 == x1 {
		t.Fatal("index of restored object is the pre-restore one")
	}
}

// TestIndexedVsScanResults is the correctness gate: filtering through a
// cached index must select exactly the rows the vectorized scan selects,
// row ids included — for present and absent values, EQ and NE, int and
// string columns, on cold and warm fetches.
func TestIndexedVsScanResults(t *testing.T) {
	ws := NewWorkspace()
	tbl := testTable(t, 1000, 6, 6)
	ws.Set("t", Object{Table: tbl})

	cases := []struct {
		col string
		val any
	}{
		{"k", int64(3)},
		{"k", int64(99)}, // absent
		{"tag", "java"},
		{"tag", "rust"}, // never interned
	}
	for round := 0; round < 2; round++ { // round 1 hits the cache
		for _, tc := range cases {
			for _, op := range []table.CmpOp{table.EQ, table.NE} {
				idx, err := ws.TableEqIndex("t", tc.col)
				if err != nil {
					t.Fatal(err)
				}
				bm, ok := idx.Lookup(tbl, op, tc.val)
				if !ok {
					t.Fatalf("Lookup(%s %v %v) not servable", tc.col, op, tc.val)
				}
				got, err := tbl.SelectBitmap(bm)
				if err != nil {
					t.Fatal(err)
				}
				want, err := tbl.Select(tc.col, op, tc.val)
				if err != nil {
					t.Fatal(err)
				}
				if got.NumRows() != want.NumRows() {
					t.Fatalf("round %d: %s %v %v: indexed %d rows, scan %d",
						round, tc.col, op, tc.val, got.NumRows(), want.NumRows())
				}
				gids, wids := got.RowIDs(), want.RowIDs()
				for i := range gids {
					if gids[i] != wids[i] {
						t.Fatalf("round %d: %s %v %v: row id %d: indexed %d, scan %d",
							round, tc.col, op, tc.val, i, gids[i], wids[i])
					}
				}
			}
		}
	}
}

// TestIndexBuildErrorsCached pins the decision to cache build failures:
// an unindexable column reports its error from the cache instead of paying
// a rediscovery scan per filter.
func TestIndexBuildErrorsCached(t *testing.T) {
	ws := NewWorkspace()
	tbl := testTable(t, 300, 300, 7) // k has ~300 distinct values
	ws.Set("t", Object{Table: tbl})
	ws.ConfigureIndexCache(8)

	if _, err := ws.TableEqIndex("t", "score"); err == nil {
		t.Fatal("float column was indexed")
	}
	if _, err := ws.TableEqIndex("t", "none"); err == nil {
		t.Fatal("missing column was indexed")
	}

	big := testTable(t, 200, 5, 8)
	// Force the cardinality cap: every k distinct.
	for i := 0; i < 200; i++ {
		bigK, _ := big.IntCol("k")
		bigK[i] = int64(i)
	}
	ws.Set("big", Object{Table: big})
	// The table-level cap is DefaultIndexMaxCardinality; shrink via a column
	// that exceeds it is impractical here, so assert the error type through
	// BuildEqIndex directly with a small cap, and the cache path with the
	// real cap on the valid column.
	if _, err := table.BuildEqIndex(big, "k", 10); !errors.Is(err, table.ErrHighCardinality) {
		t.Fatalf("cap-exceeded build returned %v, want ErrHighCardinality", err)
	}

	_, misses0, _, _ := ws.IndexCacheStats()
	if _, err := ws.TableEqIndex("t", "score"); err == nil {
		t.Fatal("float column was indexed on repeat")
	}
	hits, misses, _, _ := ws.IndexCacheStats()
	if misses != misses0 || hits == 0 {
		t.Fatalf("repeat failing fetch was not served from cache (hits %d, misses %d -> %d)", hits, misses0, misses)
	}
}

// TestIndexPurgeExactName guards the key scheme: purging one binding must
// not touch another whose name merely shares a prefix — including names
// containing '#', which a string-fingerprint prefix match would confuse.
func TestIndexPurgeExactName(t *testing.T) {
	ws := NewWorkspace()
	ws.Set("t", Object{Table: testTable(t, 150, 5, 9)})
	ws.Set("t#1", Object{Table: testTable(t, 150, 5, 10)})
	if _, err := ws.TableEqIndex("t", "k"); err != nil {
		t.Fatal(err)
	}
	x1, err := ws.TableEqIndex("t#1", "k")
	if err != nil {
		t.Fatal(err)
	}
	ws.Touch("t")
	if _, _, entries, _ := ws.IndexCacheStats(); entries != 1 {
		t.Fatalf("purging %q left %d entries, want 1 (%q untouched)", "t", entries, "t#1")
	}
	x2, err := ws.TableEqIndex("t#1", "k")
	if err != nil {
		t.Fatal(err)
	}
	if x1 != x2 {
		t.Fatalf("index of %q was rebuilt after mutating %q", "t#1", "t")
	}
}

func TestIndexCacheLRUBound(t *testing.T) {
	ws := NewWorkspace()
	ws.ConfigureIndexCache(2)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("t%d", i)
		ws.Set(name, Object{Table: testTable(t, 100, 5, int64(i))})
		if _, err := ws.TableEqIndex(name, "k"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, entries, _ := ws.IndexCacheStats(); entries != 2 {
		t.Fatalf("LRU bound 2 violated: %d entries", entries)
	}
}

func TestIndexCacheDisabled(t *testing.T) {
	ws := NewWorkspace()
	ws.ConfigureIndexCache(0)
	ws.Set("t", Object{Table: testTable(t, 200, 5, 11)})
	x1, err := ws.TableEqIndex("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	x2, err := ws.TableEqIndex("t", "k")
	if err != nil {
		t.Fatal(err)
	}
	if x1 == x2 {
		t.Fatal("disabled cache served a cached index")
	}
	if hits, misses, entries, bytes := ws.IndexCacheStats(); hits != 0 || misses != 0 || entries != 0 || bytes != 0 {
		t.Fatal("disabled cache reported non-zero stats")
	}
}

// TestWarmIndexFetchAllocs pins the acceptance criterion: a warm index
// fetch plus an EQ lookup allocates nothing — one lock, one map probe, one
// shared bitmap out.
func TestWarmIndexFetchAllocs(t *testing.T) {
	ws := NewWorkspace()
	tbl := testTable(t, 2000, 5, 12)
	ws.Set("t", Object{Table: tbl})
	if _, err := ws.TableEqIndex("t", "k"); err != nil {
		t.Fatal(err)
	}
	var val any = int64(3) // hoisted so interface boxing isn't charged to the fetch
	allocs := testing.AllocsPerRun(100, func() {
		idx, err := ws.TableEqIndex("t", "k")
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := idx.Lookup(tbl, table.EQ, val); !ok {
			t.Fatal("lookup not servable")
		}
	})
	if allocs != 0 {
		t.Fatalf("warm index fetch does %v allocs/op, want 0", allocs)
	}
}
