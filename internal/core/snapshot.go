package core

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"ringo/internal/snapshot"
	"ringo/internal/xhash"
)

// Snapshot serializes the workspace — every object with its provenance and
// version, plus the version clock — to out in the binary snapshot format
// (see internal/snapshot for the layout). The workspace read lock is held
// for the whole write, so the snapshot is a consistent cut: no binding can
// be added, dropped or rebound while it is being taken.
func (w *Workspace) Snapshot(out io.Writer) error {
	w.mu.RLock()
	defer w.mu.RUnlock()
	objs := make([]snapshot.Object, 0, len(w.order))
	for _, name := range w.order {
		o := w.objs[name]
		if o.Mapped != nil {
			// A mapped graph already lives in its own durable file;
			// copying it into a snapshot would both bloat the snapshot and
			// silently demote the binding to a decoded heap graph on
			// restore. Point the user at the file instead.
			return fmt.Errorf("core: %q is a mapped graph served from %s; snapshots exclude mapped bindings (drop it or re-open the RNGM file after restore)",
				name, o.Mapped.Path())
		}
		objs = append(objs, snapshot.Object{
			Name:       name,
			Provenance: w.prov[name],
			Version:    w.ver[name],
			Table:      o.Table,
			Graph:      o.Graph,
			UGraph:     o.UGraph,
			Scores:     o.Scores,
		})
	}
	return snapshot.Write(out, w.clock, objs)
}

// Restore replaces the workspace contents with the objects of a snapshot.
// Decoding happens before any lock is taken; the object map is then swapped
// atomically under the write lock, so concurrent readers see either the old
// workspace or the new one, never a mix — and a corrupt snapshot leaves the
// workspace untouched.
//
// Versions are shifted by the workspace's current clock: restoring into a
// fresh workspace (clock 0) reproduces every saved version — and therefore
// every fingerprint — byte-for-byte, while restoring over a live workspace
// bumps all versions past anything previously issued, so fingerprint-keyed
// caches can never serve results computed against pre-restore objects.
func (w *Workspace) Restore(in io.Reader) error {
	clock, objs, err := snapshot.Read(in)
	if err != nil {
		return err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	base := w.clock
	w.objs = make(map[string]Object, len(objs))
	w.prov = make(map[string]string, len(objs))
	w.ver = make(map[string]uint64, len(objs))
	w.order = make([]string, 0, len(objs))
	maxVer := clock
	for _, so := range objs {
		w.objs[so.Name] = Object{
			Table:  so.Table,
			Graph:  so.Graph,
			UGraph: so.UGraph,
			Scores: so.Scores,
		}
		w.prov[so.Name] = so.Provenance
		w.ver[so.Name] = base + so.Version
		w.order = append(w.order, so.Name)
		if so.Version > maxVer {
			maxVer = so.Version
		}
	}
	w.clock = base + maxVer
	// Every binding was replaced wholesale; no pre-restore view or index can
	// ever be asked for again, so drop them all — and the pending delta
	// logs with them, since their base versions point at replaced objects.
	w.views.PurgeAll()
	w.indexes.PurgeAll()
	clear(w.deltas)
	return nil
}

// Digest returns a content fingerprint of the entire workspace: the xhash
// checksum of its canonical snapshot encoding, rendered as 16 hex digits.
// The encoding is deterministic and restore into a fresh workspace
// reproduces it byte for byte (TestSnapshotDigestSurvivesRestore), so two
// workspaces digest equally exactly when they hold the same objects at the
// same versions with the same provenance — the property the cluster tier's
// fingerprint-verified snapshot shipping checks after every replica
// restore. Per-binding name#version fingerprints (Fingerprint) tell cache
// entries apart cheaply; the digest is the content-level complement that
// catches a replica whose bytes diverged even though its version numbers
// agree. Like Snapshot, it refuses workspaces holding mapped bindings.
func (w *Workspace) Digest() (string, error) {
	d := xhash.NewDigest()
	if err := w.Snapshot(d); err != nil {
		return "", err
	}
	return fmt.Sprintf("%016x", d.Sum64()), nil
}

// SnapshotFile is Snapshot writing to the named file. The snapshot is
// written to a temporary file in the same directory and renamed into place
// on success, so a failed or interrupted snapshot never destroys a
// previous good snapshot at the same path.
func (w *Workspace) SnapshotFile(path string) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if err := w.Snapshot(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	// Flush data before the rename: without it, a crash after a journaled
	// rename could leave the target pointing at unwritten blocks, losing
	// the old good snapshot anyway.
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// RestoreFile is Restore reading from the named file.
func (w *Workspace) RestoreFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return w.Restore(f)
}
