package core

import (
	"bytes"
	"strings"
	"testing"

	"ringo/internal/graph"
	"ringo/internal/table"
)

// snapshotWorkspace builds a workspace holding all four object kinds — a
// table with a string column, a directed graph, an undirected graph and a
// score map — the exact mix the acceptance criteria call for.
func snapshotWorkspace(t *testing.T) *Workspace {
	t.Helper()
	ws := NewWorkspace()
	tbl, err := table.New(table.Schema{
		{Name: "User", Type: table.String},
		{Name: "Posts", Type: table.Int},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range []struct {
		u string
		n int64
	}{{"alice", 4}, {"bob", 2}, {"", 0}} {
		if err := tbl.AppendRow(row.u, row.n); err != nil {
			t.Fatal(err)
		}
	}
	g := graph.NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	u := graph.NewUndirected()
	u.AddEdge(5, 6)
	ws.SetWithProvenance("T", Object{Table: tbl}, "load T users.tsv User:string Posts:int")
	ws.SetWithProvenance("G", Object{Graph: g}, "tograph G T src dst")
	ws.SetWithProvenance("U", Object{UGraph: u}, "")
	ws.SetWithProvenance("PR", Object{Scores: map[int64]float64{1: 0.7, 2: 0.3}}, "pagerank PR G")
	return ws
}

func TestWorkspaceSnapshotRestoreRoundTrip(t *testing.T) {
	ws := snapshotWorkspace(t)
	var buf bytes.Buffer
	if err := ws.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// Restoring into a fresh workspace must reproduce names, provenance
	// and fingerprints byte-for-byte.
	fresh := NewWorkspace()
	if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	wantNames := ws.Names()
	gotNames := fresh.Names()
	if len(gotNames) != len(wantNames) {
		t.Fatalf("names = %v, want %v", gotNames, wantNames)
	}
	for i, name := range wantNames {
		if gotNames[i] != name {
			t.Fatalf("names = %v, want %v", gotNames, wantNames)
		}
		if got, want := fresh.Provenance(name), ws.Provenance(name); got != want {
			t.Fatalf("provenance(%s) = %q, want %q", name, got, want)
		}
		wantFP, _ := ws.Fingerprint(name)
		gotFP, ok := fresh.Fingerprint(name)
		if !ok || gotFP != wantFP {
			t.Fatalf("fingerprint(%s) = %q, want %q", name, gotFP, wantFP)
		}
	}
	tbl, err := fresh.Table("T")
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() != 3 || tbl.Value(0, 0) != "alice" || tbl.Value(0, 2) != "" {
		t.Fatalf("table content lost: %d rows", tbl.NumRows())
	}
	g, err := fresh.Graph("G")
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(2, 3) {
		t.Fatal("graph edge lost")
	}
	if o, _ := fresh.Get("U"); o.UGraph == nil || !o.UGraph.HasEdge(6, 5) {
		t.Fatal("ugraph lost")
	}
	sc, err := fresh.Scores("PR")
	if err != nil {
		t.Fatal(err)
	}
	if sc[1] != 0.7 {
		t.Fatalf("scores lost: %v", sc)
	}
}

// TestWorkspaceRestoreBumpsVersionsOverLiveState: restoring over a dirty
// workspace must issue fingerprints unlike any handed out before, so a
// cache keyed by pre-restore fingerprints cannot serve stale results.
func TestWorkspaceRestoreBumpsVersionsOverLiveState(t *testing.T) {
	ws := snapshotWorkspace(t)
	var buf bytes.Buffer
	if err := ws.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}

	live := NewWorkspace()
	live.Set("T", Object{Scores: map[int64]float64{9: 9}})
	live.Set("other", Object{Scores: map[int64]float64{1: 1}})
	preFP, _ := live.Fingerprint("T")

	if err := live.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// Replaced wholesale: the non-snapshot binding is gone.
	if _, ok := live.Get("other"); ok {
		t.Fatal("restore merged instead of swapping")
	}
	postFP, ok := live.Fingerprint("T")
	if !ok {
		t.Fatal("T missing after restore")
	}
	if postFP == preFP {
		t.Fatalf("restored fingerprint %q collides with pre-restore state", postFP)
	}
	// New bindings after restore must keep advancing past everything.
	live.Set("new", Object{Scores: map[int64]float64{5: 5}})
	vNew, _ := live.Version("new")
	for _, name := range live.Names() {
		if name == "new" {
			continue
		}
		if v, _ := live.Version(name); v >= vNew {
			t.Fatalf("restored %s version %d not below fresh binding version %d", name, v, vNew)
		}
	}
}

func TestWorkspaceRestoreRejectsCorruptSnapshotUntouched(t *testing.T) {
	ws := snapshotWorkspace(t)
	var buf bytes.Buffer
	if err := ws.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	mangled := append([]byte(nil), buf.Bytes()...)
	mangled[len(mangled)-4] ^= 0xff // corrupt the last object's payload

	target := NewWorkspace()
	target.Set("keep", Object{Scores: map[int64]float64{1: 1}})
	err := target.Restore(bytes.NewReader(mangled))
	if err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
	if !strings.Contains(err.Error(), `"PR"`) {
		t.Fatalf("error %q does not name the corrupt object", err)
	}
	if _, ok := target.Get("keep"); !ok {
		t.Fatal("failed restore clobbered the workspace")
	}
}

// TestSnapshotDigestSurvivesRestore pins the property the cluster tier's
// fingerprint-verified shipping stands on: restoring a snapshot into a
// fresh workspace reproduces the content digest exactly, across
// generations, while any content change — even one that leaves every
// name#version fingerprint identical — moves it.
func TestSnapshotDigestSurvivesRestore(t *testing.T) {
	ws := snapshotWorkspace(t)
	want, err := ws.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 16 {
		t.Fatalf("digest %q is not 16 hex digits", want)
	}

	var buf bytes.Buffer
	if err := ws.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	fresh := NewWorkspace()
	if err := fresh.Restore(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	got, err := fresh.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("digest changed across restore: %s -> %s", want, got)
	}

	// Second generation: restore the restored workspace's snapshot.
	var buf2 bytes.Buffer
	if err := fresh.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	gen2 := NewWorkspace()
	if err := gen2.Restore(bytes.NewReader(buf2.Bytes())); err != nil {
		t.Fatal(err)
	}
	if d, _ := gen2.Digest(); d != want {
		t.Fatalf("digest drifted at generation 2: %s -> %s", want, d)
	}

	// A content tamper that preserves versions: rebuild the same workspace
	// with one score nudged. Fingerprints agree, the digest must not.
	tampered := snapshotWorkspace(t)
	tampered.mu.Lock()
	tampered.objs["PR"].Scores[1] = 0.70001
	tampered.mu.Unlock()
	for _, name := range ws.Names() {
		a, _ := ws.Fingerprint(name)
		b, ok := tampered.Fingerprint(name)
		if !ok || a != b {
			t.Fatalf("test setup: fingerprints diverged for %s (%s vs %s)", name, a, b)
		}
	}
	if d, _ := tampered.Digest(); d == want {
		t.Fatal("digest did not detect a content change invisible to name#version fingerprints")
	}
}
func TestWorkspaceSnapshotFileRoundTrip(t *testing.T) {
	ws := snapshotWorkspace(t)
	path := t.TempDir() + "/ws.rsnp"
	if err := ws.SnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	fresh := NewWorkspace()
	if err := fresh.RestoreFile(path); err != nil {
		t.Fatal(err)
	}
	if len(fresh.Names()) != 4 {
		t.Fatalf("restored %d objects, want 4", len(fresh.Names()))
	}
	if err := fresh.RestoreFile(path + ".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
