package core

import (
	"fmt"
	"math/rand"
	"time"

	"ringo/internal/table"
)

// TableFilter measures the table-selection execution paths against each
// other on one synthetic table — the experiment behind the vectorized
// refactor. Two selective predicates (≈1% of rows each) run through the
// per-row closure path (CompileExpr + SelectFunc) and the column-at-a-time
// bitmap path (SelectExpr):
//
//   - a string ordering comparison, where the closure pays a pool fetch and
//     a string compare per row while the vectorized kernel decides each
//     distinct interned value once and broadcasts over the id column — the
//     widest gap, and the paper's Select regime (Table 4);
//   - an integer equality, where both paths reduce to one comparison per
//     row and the gap is bitmap bookkeeping vs closure-call overhead; the
//     warm cached equality index (TableEqIndex + Lookup + SelectBitmap)
//     then skips that scan entirely.
//
// Single-column group-by is timed the same way against the multi-column
// rowkey path.
func TableFilter(rows int64) (Report, error) {
	const (
		card  = 64   // k values: one value ≈ 1.6% of rows, indexable
		vocab = 1000 // tag values: "w0001".."w1000"
	)
	rng := rand.New(rand.NewSource(42))
	// URL-shaped values: the shared prefix is what per-row string comparison
	// walks on every row and the id broadcast never touches.
	words := make([]string, vocab)
	for i := range words {
		words[i] = fmt.Sprintf("stackoverflow.com/questions/tagged/w%04d", i+1)
	}
	tbl, err := table.New(table.Schema{
		{Name: "k", Type: table.Int},
		{Name: "k2", Type: table.Int},
		{Name: "tag", Type: table.String},
	})
	if err != nil {
		return Report{}, err
	}
	for i := int64(0); i < rows; i++ {
		if err := tbl.AppendRow(int64(rng.Intn(card)), int64(rng.Intn(32)), words[rng.Intn(vocab)]); err != nil {
			return Report{}, err
		}
	}

	ws := NewWorkspace()
	ws.Set("t", Object{Table: tbl})

	// The IN-list: 8 of 1000 tags, 0.8% of rows. The vectorized backend
	// fuses the OR-of-equalities chain into one membership scan.
	inExpr := ""
	for i, v := range []int{7, 19, 33, 47, 101, 250, 512, 900} {
		if i > 0 {
			inExpr += " or "
		}
		inExpr += "tag = " + words[v]
	}
	// The ordering comparison keeps tags w0001..w0009: 0.9% of rows.
	strExpr := "tag < " + words[9]
	const intExpr = "k = 7"

	best := func(fn func()) time.Duration {
		min := time.Duration(1<<63 - 1)
		for rep := 0; rep < 3; rep++ {
			if d := Timed(fn); d < min {
				min = d
			}
		}
		return min
	}
	closureTime := func(expr string) (time.Duration, int, error) {
		pred, err := tbl.CompileExpr(expr)
		if err != nil {
			return 0, 0, err
		}
		var selected int
		d := best(func() { selected = tbl.SelectFunc(pred).NumRows() })
		return d, selected, nil
	}
	vectorTime := func(expr string) (time.Duration, int, error) {
		var selected int
		var err error
		d := best(func() {
			out, err2 := tbl.SelectExpr(expr)
			if err2 != nil {
				err = err2
				return
			}
			selected = out.NumRows()
		})
		return d, selected, err
	}

	inClosure, inSelC, err := closureTime(inExpr)
	if err != nil {
		return Report{}, err
	}
	inVector, inSelV, err := vectorTime(inExpr)
	if err != nil {
		return Report{}, err
	}
	strClosure, strSelC, err := closureTime(strExpr)
	if err != nil {
		return Report{}, err
	}
	strVector, strSelV, err := vectorTime(strExpr)
	if err != nil {
		return Report{}, err
	}
	intClosure, intSelC, err := closureTime(intExpr)
	if err != nil {
		return Report{}, err
	}
	intVector, intSelV, err := vectorTime(intExpr)
	if err != nil {
		return Report{}, err
	}
	if inSelC != inSelV || strSelC != strSelV || intSelC != intSelV {
		return Report{}, fmt.Errorf("core: execution paths disagree: %d/%d, %d/%d and %d/%d rows",
			inSelC, inSelV, strSelC, strSelV, intSelC, intSelV)
	}

	// Warm the index outside the timed region: the build is the cold cost
	// the cache amortizes away; what repeat filters pay is fetch + lookup +
	// gather.
	if _, err := ws.TableEqIndex("t", "k"); err != nil {
		return Report{}, err
	}
	var intSelI int
	indexed := best(func() {
		idx, err2 := ws.TableEqIndex("t", "k")
		if err2 != nil {
			err = err2
			return
		}
		bm, ok := idx.Lookup(tbl, table.EQ, int64(7))
		if !ok {
			err = fmt.Errorf("core: equality index not servable for %s", intExpr)
			return
		}
		out, err2 := tbl.SelectBitmap(bm)
		if err2 != nil {
			err = err2
			return
		}
		intSelI = out.NumRows()
	})
	if err != nil {
		return Report{}, err
	}
	if intSelI != intSelC {
		return Report{}, fmt.Errorf("core: indexed path selected %d rows, scans selected %d", intSelI, intSelC)
	}

	groupSingle := best(func() {
		if _, _, err2 := tbl.Group("k"); err2 != nil {
			err = err2
		}
	})
	groupRowkey := best(func() {
		if _, _, err2 := tbl.Group("k", "k2"); err2 != nil {
			err = err2
		}
	})
	if err != nil {
		return Report{}, err
	}

	speedup := func(base, d time.Duration) string {
		if d <= 0 {
			return "inf"
		}
		return fmt.Sprintf("%.1fx", float64(base)/float64(d))
	}
	row := func(path string, d time.Duration, sel int, base time.Duration) []string {
		selStr := "-"
		if sel >= 0 {
			selStr = fmt.Sprintf("%d", sel)
		}
		return []string{path, fmt.Sprintf("%d", rows), selStr, d.Round(time.Microsecond).String(), Rate(rows, d), speedup(base, d)}
	}
	return Report{
		Title:  fmt.Sprintf("Table filter: execution paths over %d rows", rows),
		Header: []string{"path", "rows", "selected", "time", "rate", "speedup"},
		Rows: [][]string{
			row("tag IN (8 of 1000) closure", inClosure, inSelC, inClosure),
			row("tag IN (8 of 1000) vectorized", inVector, inSelC, inClosure),
			row("tag < t10 (ordering) closure", strClosure, strSelC, strClosure),
			row("tag < t10 (ordering) vectorized", strVector, strSelC, strClosure),
			row("k = 7 closure", intClosure, intSelC, intClosure),
			row("k = 7 vectorized", intVector, intSelC, intClosure),
			row("k = 7 indexed warm", indexed, intSelC, intClosure),
			row("group-by k (column fast path)", groupSingle, -1, groupSingle),
			row("group-by k,k2 (rowkey path)", groupRowkey, -1, groupSingle),
		},
		Notes: []string{
			"speedup is vs the closure path of the same predicate (group-by rows: vs the single-column fast path)",
			"every predicate keeps ~1% of rows; tags are URL-shaped strings from a 1000-value vocabulary",
			"the IN-list OR-chain fuses into one membership scan; the ordering compare broadcasts one decision per interned value",
			"indexed path is the warm cache cost: fingerprint fetch + bitmap lookup + row gather, no scan",
		},
	}, nil
}
