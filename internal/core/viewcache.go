package core

import (
	"container/list"
	"sync"

	"ringo/internal/graph"
)

// DefaultViewCacheEntries bounds a workspace's view cache. Views are
// O(V+E) objects, so the bound is deliberately small: an interactive
// session works on a handful of graphs at a time, and anything colder is
// cheaper to rebuild than to keep resident.
const DefaultViewCacheEntries = 8

// viewKey identifies one cached CSR snapshot: the exact state of a
// workspace binding — its fingerprint, carried as the (name, version)
// pair rather than the formatted "name#version" string, so keying is
// exact for any binding name — plus the orientation. A directed graph has
// both a directed view (pagerank, scc, bfs, ...) and an undirected one
// (triangles, bridges, ...); they cache independently.
type viewKey struct {
	name  string
	ver   uint64
	undir bool
}

// viewEntry is one cache slot. The view itself is built inside once, so
// concurrent readers asking for the same uncached view block on a single
// build instead of racing O(V+E) constructions; bytes and the ready flag
// are recorded under the cache lock after the build completes, which is
// what lets Peek read dir/un without joining the once.
type viewEntry struct {
	key   viewKey
	once  sync.Once
	dir   *graph.View
	un    *graph.UView
	bytes int64
	ready bool
}

// ViewCache is the fingerprint-keyed CSR view cache at the heart of
// Ringo's interactivity model (§2.2 of Perez et al.): the optimized
// flat-array representation of a graph is built once, on the first query,
// and every later query over the unchanged graph runs straight over it.
// Exact invalidation comes for free from workspace fingerprints — any
// mutation of a binding changes its version, so stale views can never be
// served — and the workspace additionally purges entries eagerly on
// mutation so dead views stop holding memory. Bounded LRU; safe for
// concurrent use.
type ViewCache struct {
	mu     sync.Mutex
	max    int
	ll     *list.List
	items  map[viewKey]*list.Element
	hits   uint64
	misses uint64
	bytes  int64
}

// NewViewCache returns a cache holding at most max views (max < 1 is
// treated as 1).
func NewViewCache(max int) *ViewCache {
	if max < 1 {
		max = 1
	}
	return &ViewCache{max: max, ll: list.New(), items: make(map[viewKey]*list.Element)}
}

// acquire returns the entry for key, inserting (and evicting) as needed.
// The caller runs the build inside the entry's once.
func (c *ViewCache) acquire(key viewKey) (*viewEntry, *list.Element) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*viewEntry), el
	}
	ent := &viewEntry{key: key}
	el := c.ll.PushFront(ent)
	c.items[key] = el
	c.misses++
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		old := oldest.Value.(*viewEntry)
		c.ll.Remove(oldest)
		delete(c.items, old.key)
		c.bytes -= old.bytes
	}
	return ent, el
}

// record books the finished build's size, unless the entry was evicted
// while it was building (then the view lives only as long as its callers).
func (c *ViewCache) record(ent *viewEntry, el *list.Element, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ent.bytes = bytes
	ent.ready = true
	if cur, ok := c.items[ent.key]; ok && cur == el {
		c.bytes += bytes
	} else {
		ent.bytes = 0
	}
}

// peek returns the finished entry for key without inserting, counting a
// hit or a miss, or waiting on an in-flight build — the lookup the patch
// planner uses to find a resident base view. A found entry moves to the
// LRU front: a view serving as patch base is in active use even though no
// query hit it directly.
func (c *ViewCache) peek(key viewKey) *viewEntry {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	ent := el.Value.(*viewEntry)
	if !ent.ready {
		return nil
	}
	c.ll.MoveToFront(el)
	return ent
}

// PeekDirected returns the resident directed view of the exact binding
// state (name, ver), or nil — never building, never blocking.
func (c *ViewCache) PeekDirected(name string, ver uint64) *graph.View {
	if ent := c.peek(viewKey{name: name, ver: ver}); ent != nil {
		return ent.dir
	}
	return nil
}

// PeekUndirected is PeekDirected for the undirected orientation.
func (c *ViewCache) PeekUndirected(name string, ver uint64) *graph.UView {
	if ent := c.peek(viewKey{name: name, ver: ver, undir: true}); ent != nil {
		return ent.un
	}
	return nil
}

// Directed returns the cached directed view for the binding state
// (name, ver), building it with build on a miss. A nil cache always
// builds.
func (c *ViewCache) Directed(name string, ver uint64, build func() *graph.View) *graph.View {
	if c == nil {
		return build()
	}
	ent, el := c.acquire(viewKey{name: name, ver: ver})
	ent.once.Do(func() {
		ent.dir = build()
		c.record(ent, el, ent.dir.Bytes())
	})
	return ent.dir
}

// Undirected returns the cached undirected view for the binding state
// (name, ver), building it with build on a miss. A nil cache always
// builds.
func (c *ViewCache) Undirected(name string, ver uint64, build func() *graph.UView) *graph.UView {
	if c == nil {
		return build()
	}
	ent, el := c.acquire(viewKey{name: name, ver: ver, undir: true})
	ent.once.Do(func() {
		ent.un = build()
		c.record(ent, el, ent.un.Bytes())
	})
	return ent.un
}

// Drop removes both orientations of one exact binding state. The
// workspace calls it when a view finished building just as its binding
// was mutated away: the mutator's Purge ran before the insertion landed,
// so without the drop the dead view would linger until LRU eviction.
func (c *ViewCache) Drop(name string, ver uint64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, undir := range [2]bool{false, true} {
		key := viewKey{name: name, ver: ver, undir: undir}
		if el, ok := c.items[key]; ok {
			ent := el.Value.(*viewEntry)
			c.ll.Remove(el)
			delete(c.items, key)
			c.bytes -= ent.bytes
		}
	}
}

// Purge drops every view of the named binding, whatever its version — the
// purge-on-mutate path: the binding's fingerprint has moved on, so these
// entries can never hit again.
func (c *ViewCache) Purge(name string) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.name == name {
			ent := el.Value.(*viewEntry)
			c.ll.Remove(el)
			delete(c.items, key)
			c.bytes -= ent.bytes
		}
	}
}

// PurgeAll empties the cache (workspace restore: every binding's
// fingerprint was replaced wholesale).
func (c *ViewCache) PurgeAll() {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	clear(c.items)
	c.bytes = 0
}

// Stats returns cumulative hits and misses, the current entry count, and
// the estimated resident bytes of the cached views.
func (c *ViewCache) Stats() (hits, misses uint64, entries int, bytes int64) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len(), c.bytes
}
