package core

import (
	"testing"

	"ringo/internal/algo"
	"ringo/internal/graph"
)

// benchWorkspace binds one R-MAT graph in a fresh workspace.
func benchWorkspace(b *testing.B) (*Workspace, *graph.Directed) {
	b.Helper()
	spec := Spec{Name: "bench", RMATScale: 14, Edges: 120_000, Seed: 42}
	g, err := ToGraph(spec.CachedEdgeTable(), "src", "dst")
	if err != nil {
		b.Fatal(err)
	}
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: g})
	return ws, g
}

// BenchmarkDenseViewBuild is the cold path every query used to pay: one
// full O(V+E) CSR construction per invocation.
func BenchmarkDenseViewBuild(b *testing.B) {
	_, g := benchWorkspace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.BuildView(g)
	}
}

// BenchmarkDenseViewCached is the warm path: the fingerprint-keyed cache
// answers with the resident view — near-zero allocations, no O(V+E) work.
func BenchmarkDenseViewCached(b *testing.B) {
	ws, _ := benchWorkspace(b)
	if _, err := ws.DirectedView("g"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ws.DirectedView("g"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPageRankCold measures a first query on a fresh graph: view
// construction plus ten power iterations.
func BenchmarkPageRankCold(b *testing.B) {
	_, g := benchWorkspace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		algo.PageRank(g, algo.DefaultDamping, 10)
	}
}

// BenchmarkPageRankWarm measures every later query on the unchanged graph:
// the cached view goes straight to flat-array compute.
func BenchmarkPageRankWarm(b *testing.B) {
	ws, _ := benchWorkspace(b)
	if _, err := ws.DirectedView("g"); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := ws.DirectedView("g")
		if err != nil {
			b.Fatal(err)
		}
		algo.PageRankView(v, algo.DefaultDamping, 10)
	}
}
