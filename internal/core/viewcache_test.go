package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"ringo/internal/algo"
	"ringo/internal/graph"
)

func testGraph(n, m int, seed int64) *graph.Directed {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDirected()
	for i := 0; i < m; i++ {
		g.AddEdge(int64(rng.Intn(n)), int64(rng.Intn(n)))
	}
	return g
}

func TestDirectedViewCachedUntilMutation(t *testing.T) {
	ws := NewWorkspace()
	g := testGraph(100, 400, 1)
	ws.Set("g", Object{Graph: g})

	v1, err := ws.DirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ws.DirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatal("second DirectedView on unchanged graph rebuilt the view")
	}
	hits, misses, entries, bytes := ws.ViewCacheStats()
	if hits != 1 || misses != 1 || entries != 1 {
		t.Fatalf("stats = %d hits, %d misses, %d entries; want 1/1/1", hits, misses, entries)
	}
	if bytes <= 0 {
		t.Fatalf("cached view bytes = %d, want > 0", bytes)
	}

	// In-place mutation + Touch: the old view must be evicted and a fresh
	// one built that sees the new edge.
	g.AddEdge(1000, 2000)
	ws.Touch("g")
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 0 {
		t.Fatalf("Touch left %d view entries", entries)
	}
	v3, err := ws.DirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	if v3 == v1 {
		t.Fatal("view served after mutation is the stale snapshot")
	}
	if _, ok := v3.Index(2000); !ok {
		t.Fatal("post-mutation view does not contain the new node")
	}
}

func TestViewPurgeOnSetDeleteRename(t *testing.T) {
	ws := NewWorkspace()
	ws.Set("a", Object{Graph: testGraph(50, 200, 2)})
	ws.Set("b", Object{Graph: testGraph(50, 200, 3)})
	if _, err := ws.DirectedView("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.DirectedView("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 2 {
		t.Fatalf("want 2 entries, got %d", entries)
	}
	// Rebinding a purges its view only.
	ws.Set("a", Object{Graph: testGraph(50, 200, 4)})
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 1 {
		t.Fatalf("rebind: want 1 entry left, got %d", entries)
	}
	// Renaming b purges it too (its identity changed).
	if err := ws.Rename("b", "c"); err != nil {
		t.Fatal(err)
	}
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 0 {
		t.Fatalf("rename: want 0 entries, got %d", entries)
	}
	if _, err := ws.DirectedView("c"); err != nil {
		t.Fatal(err)
	}
	if !ws.Delete("c") {
		t.Fatal("delete failed")
	}
	if _, _, entries, bytes := ws.ViewCacheStats(); entries != 0 || bytes != 0 {
		t.Fatalf("delete: want empty cache, got %d entries, %d bytes", entries, bytes)
	}
}

func TestViewPurgeOnRestore(t *testing.T) {
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: testGraph(50, 200, 5)})
	v1, err := ws.DirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ws.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ws.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 0 {
		t.Fatalf("restore left %d view entries", entries)
	}
	v2, err := ws.DirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	if v2 == v1 {
		t.Fatal("view of restored object is the pre-restore snapshot")
	}
}

func TestUndirectedViewOfDirectedGraph(t *testing.T) {
	ws := NewWorkspace()
	g := testGraph(60, 300, 6)
	ws.Set("g", Object{Graph: g})
	uv, err := ws.UndirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	u := graph.AsUndirected(g)
	if uv.NumNodes() != u.NumNodes() || uv.NumEdges() != u.NumEdges() {
		t.Fatalf("uview %d/%d, projection %d/%d",
			uv.NumNodes(), uv.NumEdges(), u.NumNodes(), u.NumEdges())
	}
	uv2, err := ws.UndirectedView("g")
	if err != nil {
		t.Fatal(err)
	}
	if uv2 != uv {
		t.Fatal("undirected view rebuilt on unchanged graph")
	}
	// The directed and undirected views of one binding cache independently.
	if _, err := ws.DirectedView("g"); err != nil {
		t.Fatal(err)
	}
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 2 {
		t.Fatalf("want 2 entries (dir + undir), got %d", entries)
	}

	// An undirected binding serves its own view through the same call.
	ws.Set("u", Object{UGraph: u})
	uv3, err := ws.UndirectedView("u")
	if err != nil {
		t.Fatal(err)
	}
	if uv3.NumEdges() != u.NumEdges() {
		t.Fatal("uview of undirected binding wrong")
	}
}

// TestAlgorithmsCachedVsBypassed is the cache-correctness gate: every
// algorithm must return identical results whether its view came from the
// cache (twice, to cover the hit path) or was built fresh with caching
// disabled.
func TestAlgorithmsCachedVsBypassed(t *testing.T) {
	g := testGraph(80, 400, 7)
	cached := NewWorkspace()
	cached.Set("g", Object{Graph: g})
	bypass := NewWorkspace()
	bypass.ConfigureViewCache(0)
	bypass.Set("g", Object{Graph: g})

	for round := 0; round < 2; round++ { // round 1 hits the cache
		cv, err := cached.DirectedView("g")
		if err != nil {
			t.Fatal(err)
		}
		bv, err := bypass.DirectedView("g")
		if err != nil {
			t.Fatal(err)
		}
		if round == 1 && bv == cv {
			t.Fatal("bypass workspace served a cached view")
		}
		prC := algo.PageRankView(cv, algo.DefaultDamping, 10)
		prB := algo.PageRankView(bv, algo.DefaultDamping, 10)
		prDirect := algo.PageRank(g, algo.DefaultDamping, 10)
		for id, s := range prDirect {
			if dc := prC[id] - s; dc > 1e-12 || dc < -1e-12 {
				t.Fatalf("round %d: cached pagerank diverges at %d", round, id)
			}
			if db := prB[id] - s; db > 1e-12 || db < -1e-12 {
				t.Fatalf("round %d: bypassed pagerank diverges at %d", round, id)
			}
		}
		wC, wB, wD := algo.WCCView(cv), algo.WCCView(bv), algo.WCC(g)
		if wC.Count != wD.Count || wB.Count != wD.Count || wC.MaxSize != wD.MaxSize {
			t.Fatalf("round %d: wcc diverges: %d/%d/%d", round, wC.Count, wB.Count, wD.Count)
		}
		sC, sD := algo.SCCView(cv), algo.SCC(g)
		if sC.Count != sD.Count || sC.MaxSize != sD.MaxSize {
			t.Fatalf("round %d: scc diverges", round)
		}

		cu, err := cached.UndirectedView("g")
		if err != nil {
			t.Fatal(err)
		}
		bu, err := bypass.UndirectedView("g")
		if err != nil {
			t.Fatal(err)
		}
		u := graph.AsUndirected(g)
		if tc, tb, td := algo.TrianglesView(cu), algo.TrianglesView(bu), algo.Triangles(u); tc != td || tb != td {
			t.Fatalf("round %d: triangles diverge: %d/%d/%d", round, tc, tb, td)
		}
		nodes, edges := algo.KCoreStatsView(cu, 3)
		k := algo.KCore(u, 3)
		if nodes != k.NumNodes() || edges != k.NumEdges() {
			t.Fatalf("round %d: 3-core stats %d/%d, subgraph %d/%d",
				round, nodes, edges, k.NumNodes(), k.NumEdges())
		}
	}
}

// TestViewPurgeExactName guards the key scheme: purging one binding must
// not touch another whose name merely shares a prefix — including names
// containing '#', which a string-fingerprint prefix match would confuse.
func TestViewPurgeExactName(t *testing.T) {
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: testGraph(40, 150, 9)})
	ws.Set("g#1", Object{Graph: testGraph(40, 150, 10)})
	if _, err := ws.DirectedView("g"); err != nil {
		t.Fatal(err)
	}
	v1, err := ws.DirectedView("g#1")
	if err != nil {
		t.Fatal(err)
	}
	ws.Touch("g")
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 1 {
		t.Fatalf("purging %q left %d entries, want 1 (%q untouched)", "g", entries, "g#1")
	}
	v2, err := ws.DirectedView("g#1")
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Fatalf("view of %q was rebuilt after mutating %q", "g#1", "g")
	}
}

func TestViewCacheLRUBound(t *testing.T) {
	ws := NewWorkspace()
	ws.ConfigureViewCache(2)
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf("g%d", i)
		ws.Set(name, Object{Graph: testGraph(30, 100, int64(i))})
		if _, err := ws.DirectedView(name); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, entries, _ := ws.ViewCacheStats(); entries != 2 {
		t.Fatalf("LRU bound 2 violated: %d entries", entries)
	}
}

// TestWarmViewAllocs pins the acceptance criterion: a warm view lookup must
// not rebuild anything — just a fingerprint format and a cache probe.
func TestWarmViewAllocs(t *testing.T) {
	ws := NewWorkspace()
	ws.Set("g", Object{Graph: testGraph(200, 1000, 8)})
	if _, err := ws.DirectedView("g"); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := ws.DirectedView("g"); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 6 {
		t.Fatalf("warm DirectedView does %v allocs/op; the O(V+E) build is not being skipped", allocs)
	}
}
