package core

import (
	"fmt"
	"sync"
	"testing"

	"ringo/internal/gen"
)

func TestWorkspaceDelete(t *testing.T) {
	ws := NewWorkspace()
	ws.SetWithProvenance("a", Object{Table: gen.RMATTable(6, 10, 1)}, "gen a")
	ws.Set("b", Object{Table: gen.RMATTable(6, 10, 2)})
	if !ws.Delete("a") {
		t.Fatal("Delete(a) = false, want true")
	}
	if ws.Delete("a") {
		t.Fatal("second Delete(a) = true, want false")
	}
	if _, ok := ws.Get("a"); ok {
		t.Fatal("a still bound after delete")
	}
	if _, ok := ws.Version("a"); ok {
		t.Fatal("a still versioned after delete")
	}
	if ws.Provenance("a") != "" {
		t.Fatal("a still has provenance after delete")
	}
	if names := ws.Names(); len(names) != 1 || names[0] != "b" {
		t.Fatalf("Names() = %v, want [b]", names)
	}
}

func TestWorkspaceRenameCarriesProvenance(t *testing.T) {
	ws := NewWorkspace()
	ws.SetWithProvenance("old", Object{Table: gen.RMATTable(6, 10, 1)}, "gen rmat old 6 10 1")
	ws.Set("other", Object{Table: gen.RMATTable(6, 10, 2)})
	if err := ws.Rename("old", "new"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ws.Get("old"); ok {
		t.Fatal("old still bound after rename")
	}
	if prov := ws.Provenance("new"); prov != "gen rmat old 6 10 1" {
		t.Fatalf("provenance not carried: %q", prov)
	}
	if names := ws.Names(); len(names) != 2 || names[0] != "new" || names[1] != "other" {
		t.Fatalf("Names() = %v, want [new other]", names)
	}
	if err := ws.Rename("missing", "x"); err == nil {
		t.Fatal("rename of missing object did not error")
	}
	// Renaming onto an existing name replaces it.
	if err := ws.Rename("new", "other"); err != nil {
		t.Fatal(err)
	}
	if names := ws.Names(); len(names) != 1 || names[0] != "other" {
		t.Fatalf("Names() after replace = %v, want [other]", names)
	}
	// Self-rename is a no-op.
	if err := ws.Rename("other", "other"); err != nil {
		t.Fatal(err)
	}
}

func TestWorkspaceFingerprintChangesOnMutation(t *testing.T) {
	ws := NewWorkspace()
	if _, ok := ws.Fingerprint("g"); ok {
		t.Fatal("fingerprint of unbound name")
	}
	ws.Set("g", Object{Table: gen.RMATTable(6, 10, 1)})
	fp1, ok := ws.Fingerprint("g")
	if !ok {
		t.Fatal("no fingerprint after Set")
	}
	ws.Touch("g")
	fp2, _ := ws.Fingerprint("g")
	if fp1 == fp2 {
		t.Fatalf("Touch did not change fingerprint: %q", fp1)
	}
	ws.Set("g", Object{Table: gen.RMATTable(6, 10, 2)})
	fp3, _ := ws.Fingerprint("g")
	if fp3 == fp2 {
		t.Fatalf("rebind did not change fingerprint: %q", fp2)
	}
	// Rename gives the binding a fresh identity under the new name.
	if err := ws.Rename("g", "h"); err != nil {
		t.Fatal(err)
	}
	fph, ok := ws.Fingerprint("h")
	if !ok || fph == fp3 {
		t.Fatalf("fingerprint after rename = %q ok=%v", fph, ok)
	}
	// Touch of an unknown name is a no-op, not a bind.
	ws.Touch("nope")
	if _, ok := ws.Version("nope"); ok {
		t.Fatal("Touch bound an unknown name")
	}
}

// TestWorkspaceConcurrentAccess hammers one workspace from many goroutines
// doing Set/Get/Delete/Rename/Fingerprint; run under -race it verifies the
// workspace's internal locking (the layer session locks build on).
func TestWorkspaceConcurrentAccess(t *testing.T) {
	ws := NewWorkspace()
	tbl := gen.RMATTable(6, 20, 1)
	const goroutines = 16
	const iters = 200
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			name := fmt.Sprintf("obj%d", id%4)
			for k := 0; k < iters; k++ {
				switch k % 5 {
				case 0:
					ws.SetWithProvenance(name, Object{Table: tbl}, "set "+name)
				case 1:
					if o, ok := ws.Get(name); ok && o.Kind() != "table" {
						t.Errorf("unexpected kind %q", o.Kind())
					}
					ws.Names()
				case 2:
					ws.Fingerprint(name)
					ws.Provenance(name)
				case 3:
					ws.Touch(name)
				case 4:
					if id%2 == 0 {
						ws.Delete(name)
					} else {
						_ = ws.Rename(name, name+"x")
						ws.Delete(name + "x")
					}
				}
			}
		}(i)
	}
	wg.Wait()
}
