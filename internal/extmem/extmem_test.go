package extmem

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"ringo/internal/gen"
	"ringo/internal/graph"
	"ringo/internal/xhash"
)

// testView builds a directed view with the awkward shapes the format must
// preserve: isolated nodes, tombstoned slots (deleted nodes), and a node
// with no out-edges but in-edges.
func testView(t testing.TB) *graph.View {
	t.Helper()
	g := gen.GNM(400, 3000, 7)
	for id := int64(400); id < 410; id++ {
		g.AddNode(id) // isolated
	}
	for id := int64(0); id < 40; id += 3 {
		g.DelNode(id) // tombstoned slots
	}
	return graph.BuildView(g)
}

func testUView(t testing.TB) *graph.UView {
	t.Helper()
	g := gen.BarabasiAlbert(300, 3, 11)
	for id := int64(300); id < 308; id++ {
		g.AddNode(id)
	}
	for id := int64(0); id < 30; id += 4 {
		g.DelNode(id)
	}
	return graph.BuildUView(g)
}

func saveTemp(t testing.TB, v *graph.View) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.rngm")
	if err := SaveMapped(path, v); err != nil {
		t.Fatalf("SaveMapped: %v", err)
	}
	return path
}

func sameView(t *testing.T, want, got *graph.View) {
	t.Helper()
	if !slices.Equal(want.IDs(), got.IDs()) {
		t.Fatalf("id vectors differ")
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", want.NumEdges(), got.NumEdges())
	}
	for i := 0; i < want.NumNodes(); i++ {
		u := int32(i)
		if !slices.Equal(want.Out(u), got.Out(u)) {
			t.Fatalf("out vector of dense %d differs", i)
		}
		if !slices.Equal(want.In(u), got.In(u)) {
			t.Fatalf("in vector of dense %d differs", i)
		}
	}
	for _, id := range want.IDs() {
		wi, _ := want.Index(id)
		gi, ok := got.Index(id)
		if !ok || wi != gi {
			t.Fatalf("Index(%d) = %d,%v; want %d,true", id, gi, ok, wi)
		}
	}
	if _, ok := got.Index(1 << 40); ok {
		t.Fatalf("Index hit on absent id")
	}
}

func TestRoundTripDirected(t *testing.T) {
	v := testView(t)
	path := saveTemp(t, v)
	g, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer g.Close()
	if g.Kind() != "directed" || g.View() == nil || g.UView() != nil {
		t.Fatalf("wrong shape: kind=%q view=%v uview=%v", g.Kind(), g.View() != nil, g.UView() != nil)
	}
	if mmapSupported != g.Mapped() {
		t.Fatalf("Mapped() = %v, platform support = %v", g.Mapped(), mmapSupported)
	}
	if g.Bytes() <= 0 {
		t.Fatalf("Bytes() = %d", g.Bytes())
	}
	sameView(t, v, g.View())
}

func TestRoundTripUndirected(t *testing.T) {
	u := testUView(t)
	path := filepath.Join(t.TempDir(), "u.rngm")
	if err := SaveMappedUndirected(path, u); err != nil {
		t.Fatalf("SaveMappedUndirected: %v", err)
	}
	g, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer g.Close()
	if g.Kind() != "undirected" || g.UView() == nil {
		t.Fatalf("wrong shape: kind=%q", g.Kind())
	}
	got := g.UView()
	if !slices.Equal(u.IDs(), got.IDs()) {
		t.Fatalf("id vectors differ")
	}
	if u.NumEdges() != got.NumEdges() {
		t.Fatalf("edge counts differ: %d vs %d", u.NumEdges(), got.NumEdges())
	}
	for i := 0; i < u.NumNodes(); i++ {
		if !slices.Equal(u.Adj(int32(i)), got.Adj(int32(i))) {
			t.Fatalf("adjacency of dense %d differs", i)
		}
	}
}

func TestRoundTripEmpty(t *testing.T) {
	g := graph.NewDirected()
	path := filepath.Join(t.TempDir(), "empty.rngm")
	if err := SaveMapped(path, graph.BuildView(g)); err != nil {
		t.Fatalf("SaveMapped: %v", err)
	}
	m, err := Open(path)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer m.Close()
	if m.NumNodes() != 0 || m.NumEdges() != 0 {
		t.Fatalf("empty image decoded to %d nodes, %d edges", m.NumNodes(), m.NumEdges())
	}
}

func TestFallbackMatchesMapped(t *testing.T) {
	v := testView(t)
	path := saveTemp(t, v)
	g, err := openFallback(path)
	if err != nil {
		t.Fatalf("openFallback: %v", err)
	}
	defer g.Close()
	if g.Mapped() {
		t.Fatalf("fallback image reports Mapped()")
	}
	sameView(t, v, g.View())
}

func TestOpenMappedWithoutSupportNamesError(t *testing.T) {
	if mmapSupported {
		t.Skip("platform has mmap; the gate is exercised on !(linux||darwin) builds")
	}
	_, err := OpenMapped(saveTemp(t, testView(t)))
	if !errors.Is(err, ErrNoMmap) {
		t.Fatalf("err = %v, want ErrNoMmap", err)
	}
}

// fixChecksums recomputes the section checksums and header checksum after a
// test mutates payload or table bytes, so corruption tests can target one
// specific validation layer at a time.
func fixChecksums(data []byte) {
	nsections := int(binary.LittleEndian.Uint64(data[32:]))
	for i := 0; i < nsections; i++ {
		ent := data[fixedHeaderLen+i*sectionEntryLen:]
		off := binary.LittleEndian.Uint64(ent)
		length := binary.LittleEndian.Uint64(ent[8:])
		if off+length <= uint64(len(data)) {
			binary.LittleEndian.PutUint64(ent[16:], xhash.Checksum64(data[off:off+length]))
		}
	}
	hdr := headerLen(nsections)
	binary.LittleEndian.PutUint64(data[hdr-8:], xhash.Checksum64(data[:hdr-8]))
}

func TestOpenRejectsCorruption(t *testing.T) {
	v := testView(t)
	good, err := os.ReadFile(saveTemp(t, v))
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name   string
		mutate func(b []byte) []byte
		want   string
	}{
		{"empty file", func(b []byte) []byte { return nil }, "empty file"},
		{"truncated header", func(b []byte) []byte { return b[:20] }, "truncated header"},
		{"bad magic", func(b []byte) []byte { b[0] = 'X'; return b }, "not a mapped graph"},
		{"bad version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:], 99)
			fixChecksums(b)
			return b
		}, "unsupported format version"},
		{"bad kind", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], 7)
			return b
		}, "unknown graph kind"},
		{"absurd node count", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[16:], 1<<50)
			fixChecksums(b)
			return b
		}, "implausible header counts"},
		{"wrong section count", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[32:], 2)
			return b
		}, "claims 2 sections"},
		{"header bit rot", func(b []byte) []byte { b[17] ^= 1; return b }, "header checksum mismatch"},
		{"lying edge count", func(b []byte) []byte {
			binary.LittleEndian.PutUint64(b[24:], binary.LittleEndian.Uint64(b[24:])+1)
			fixChecksums(b)
			return b
		}, "disagrees with header counts"},
		{"misaligned section offset", func(b []byte) []byte {
			ent := b[fixedHeaderLen:]
			binary.LittleEndian.PutUint64(ent, binary.LittleEndian.Uint64(ent)+8)
			fixChecksums(b)
			return b
		}, "misaligned or out of range"},
		{"overlapping sections", func(b []byte) []byte {
			// Point section 1 at section 0's offset.
			e0 := binary.LittleEndian.Uint64(b[fixedHeaderLen:])
			binary.LittleEndian.PutUint64(b[fixedHeaderLen+sectionEntryLen:], e0)
			fixChecksums(b)
			return b
		}, "overlaps preceding bytes"},
		{"section past file end", func(b []byte) []byte { return b[:len(b)-16] }, "extends past file end"},
		{"payload bit rot", func(b []byte) []byte {
			b[len(b)-1] ^= 1
			hdr := headerLen(5)
			binary.LittleEndian.PutUint64(b[hdr-8:], xhash.Checksum64(b[:hdr-8]))
			return b
		}, "checksum mismatch"},
		{"neighbor out of range", func(b []byte) []byte {
			// Last int32 of the final section is an in-neighbor index.
			binary.LittleEndian.PutUint32(b[len(b)-4:], 1<<30)
			fixChecksums(b)
			return b
		}, "outside [0,"},
		{"unsorted neighbors", func(b []byte) []byte {
			// Reverse a node's in-vector by swapping its first two entries
			// (dense node picked so its in-degree is >= 2 and ascending).
			ent := b[fixedHeaderLen+4*sectionEntryLen:]
			off := binary.LittleEndian.Uint64(ent)
			for at := off; at+8 <= off+binary.LittleEndian.Uint64(ent[8:]); at += 4 {
				a := binary.LittleEndian.Uint32(b[at:])
				c := binary.LittleEndian.Uint32(b[at+4:])
				if a < c {
					binary.LittleEndian.PutUint32(b[at:], c)
					binary.LittleEndian.PutUint32(b[at+4:], a)
					break
				}
			}
			fixChecksums(b)
			return b
		}, "not sorted"},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mutate(slices.Clone(good))
			path := filepath.Join(t.TempDir(), "bad.rngm")
			if err := os.WriteFile(path, mutated, 0o644); err != nil {
				t.Fatal(err)
			}
			g, err := Open(path)
			if err == nil {
				g.Close()
				t.Fatalf("Open accepted corrupt image")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// FuzzOpenMapped feeds arbitrary bytes to the mapped loader: it must reject
// or serve them without panicking, and anything it serves must satisfy the
// view invariants it claims to validate.
func FuzzOpenMapped(f *testing.F) {
	dirBytes, err := os.ReadFile(saveTemp(f, testView(f)))
	if err != nil {
		f.Fatal(err)
	}
	u := testUView(f)
	upath := filepath.Join(f.TempDir(), "u.rngm")
	if err := SaveMappedUndirected(upath, u); err != nil {
		f.Fatal(err)
	}
	undirBytes, err := os.ReadFile(upath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(dirBytes)
	f.Add(undirBytes)
	f.Add(dirBytes[:len(dirBytes)/2])
	f.Add([]byte(mappedMagic))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.rngm")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		g, err := Open(path)
		if err != nil {
			return
		}
		defer g.Close()
		// Whatever the loader accepted must be traversable end to end.
		if v := g.View(); v != nil {
			for i := 0; i < v.NumNodes(); i++ {
				for _, w := range v.Out(int32(i)) {
					_ = v.In(w)
				}
			}
		}
		if uv := g.UView(); uv != nil {
			for i := 0; i < uv.NumNodes(); i++ {
				for _, w := range uv.Adj(int32(i)) {
					_ = uv.Deg(w)
				}
			}
		}
	})
}
