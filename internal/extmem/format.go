// Package extmem is Ringo's beyond-RAM storage tier: CSR graph snapshots
// serialized in a layout a process can mmap and query in place. The Ringo
// paper (Perez et al., SIGMOD 2015) assumes a big-memory machine; GraphMP's
// semi-external recipe — vertex state in RAM, edge arrays in mapped on-disk
// blocks — removes that assumption. This package provides the on-disk
// format (RNGM) plus the mapped loader; internal/algo provides the
// semi-external algorithm variants that stream blocks from a mapped view.
//
// RNGM layout (all integers little endian):
//
//	[0:4)   magic "RNGM"
//	[4:8)   format version u32 (currently 1)
//	[8:12)  kind u32: 1 = directed view, 2 = undirected view
//	[12:16) reserved u32 (zero)
//	[16:24) node count u64
//	[24:32) edge-array entry count u64 (directed: out-edge count, which
//	        equals the in-edge count; undirected: adjacency arena entries)
//	[32:40) section count u64 (5 directed, 3 undirected)
//	then per section: file offset u64, byte length u64, checksum u64
//	then header checksum u64 (xhash of every preceding header byte)
//
// Sections follow in table order at 4096-aligned offsets, each the raw
// little-endian image of one graph.View / graph.UView array:
//
//	directed:   ids []i64, outOff []i64, inOff []i64, out []i32, in []i32
//	undirected: ids []i64, off []i64, arena []i32
//
// Because the section layout IS the in-memory layout, OpenMapped turns a
// file into a queryable view by validating and aliasing — no per-node
// decode loop, no hash-map build, no allocation proportional to the graph.
package extmem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"unsafe"

	"ringo/internal/graph"
	"ringo/internal/xhash"
)

const (
	mappedMagic   = "RNGM"
	mappedVersion = 1

	kindDirected   = 1
	kindUndirected = 2

	// pageAlign is the section alignment: a multiple of every page size in
	// practical use, so a section start in a page-aligned mapping is always
	// 8-byte aligned for direct []int64 aliasing.
	pageAlign = 4096

	// fixedHeaderLen is the header prefix before the section table.
	fixedHeaderLen = 40
	// sectionEntryLen is one section-table entry (offset, length, checksum).
	sectionEntryLen = 24

	// maxMappedCount rejects node/edge counts no real dataset reaches,
	// mirroring the RNGO/RNGU decoders: a header claiming more is corrupt,
	// and section-length math must not be asked to overflow on it.
	maxMappedCount = 1 << 44
)

func headerLen(nsections int) int64 {
	return fixedHeaderLen + int64(nsections)*sectionEntryLen + 8
}

func alignUp(off int64) int64 {
	return (off + pageAlign - 1) &^ (pageAlign - 1)
}

// SaveMapped writes v to path as an RNGM image. The write goes to a
// temporary file in path's directory and renames into place, so readers
// never observe a half-written image.
func SaveMapped(path string, v *graph.View) error {
	ids, outOff, inOff, out, in := v.ViewParts()
	secs := [][]byte{i64Bytes(ids), i64Bytes(outOff), i64Bytes(inOff), i32Bytes(out), i32Bytes(in)}
	return save(path, kindDirected, uint64(len(ids)), uint64(len(out)), secs)
}

// SaveMappedUndirected writes u to path as the undirected RNGM variant.
func SaveMappedUndirected(path string, u *graph.UView) error {
	ids, off, arena := u.UViewParts()
	secs := [][]byte{i64Bytes(ids), i64Bytes(off), i32Bytes(arena)}
	return save(path, kindUndirected, uint64(len(ids)), uint64(len(arena)), secs)
}

func save(path string, kind uint32, nnodes, nentries uint64, secs [][]byte) error {
	hdr := headerLen(len(secs))
	offsets := make([]int64, len(secs))
	at := alignUp(hdr)
	for i, s := range secs {
		offsets[i] = at
		at = alignUp(at + int64(len(s)))
	}

	head := make([]byte, 0, hdr)
	head = append(head, mappedMagic...)
	head = binary.LittleEndian.AppendUint32(head, mappedVersion)
	head = binary.LittleEndian.AppendUint32(head, kind)
	head = binary.LittleEndian.AppendUint32(head, 0) // reserved
	head = binary.LittleEndian.AppendUint64(head, nnodes)
	head = binary.LittleEndian.AppendUint64(head, nentries)
	head = binary.LittleEndian.AppendUint64(head, uint64(len(secs)))
	for i, s := range secs {
		head = binary.LittleEndian.AppendUint64(head, uint64(offsets[i]))
		head = binary.LittleEndian.AppendUint64(head, uint64(len(s)))
		head = binary.LittleEndian.AppendUint64(head, xhash.Checksum64(s))
	}
	head = binary.LittleEndian.AppendUint64(head, xhash.Checksum64(head))

	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, ".rngm-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}

	bw := bufio.NewWriterSize(f, 1<<20)
	pos := int64(0)
	write := func(p []byte) error {
		n, err := bw.Write(p)
		pos += int64(n)
		return err
	}
	padTo := func(target int64) error {
		var zeros [pageAlign]byte
		for pos < target {
			chunk := target - pos
			if chunk > pageAlign {
				chunk = pageAlign
			}
			if err := write(zeros[:chunk]); err != nil {
				return err
			}
		}
		return nil
	}

	if err := write(head); err != nil {
		return fail(err)
	}
	for i, s := range secs {
		if err := padTo(offsets[i]); err != nil {
			return fail(err)
		}
		if err := write(s); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// hostLittle reports whether this host stores integers little endian, in
// which case in-memory arrays alias their on-disk image byte for byte and
// both save and open can skip per-value encoding.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// i64Bytes returns the little-endian byte image of s — aliased on LE
// hosts, encoded into a fresh buffer on BE hosts.
func i64Bytes(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
	}
	out := make([]byte, len(s)*8)
	for i, v := range s {
		binary.LittleEndian.PutUint64(out[i*8:], uint64(v))
	}
	return out
}

// u64Bytes views a []uint64 buffer as bytes; the read fallback allocates
// its image through this so the base is always 8-byte aligned for section
// aliasing.
func u64Bytes(s []uint64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*8)
}

// i32Bytes is i64Bytes for int32 arrays.
func i32Bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	if hostLittle {
		return unsafe.Slice((*byte)(unsafe.Pointer(unsafe.SliceData(s))), len(s)*4)
	}
	out := make([]byte, len(s)*4)
	for i, v := range s {
		binary.LittleEndian.PutUint32(out[i*4:], uint32(v))
	}
	return out
}

// i64Section interprets length bytes at off as []int64: zero-copy aliasing
// when the host is little endian and the base is 8-byte aligned (always
// true for page-aligned sections in a page-aligned mapping), decode-copy
// otherwise.
func i64Section(data []byte, off, length int64) []int64 {
	if length == 0 {
		return nil
	}
	base := &data[off]
	if hostLittle && uintptr(unsafe.Pointer(base))%8 == 0 {
		return unsafe.Slice((*int64)(unsafe.Pointer(base)), length/8)
	}
	out := make([]int64, length/8)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(data[off+int64(i)*8:]))
	}
	return out
}

// i32Section is i64Section for []int32.
func i32Section(data []byte, off, length int64) []int32 {
	if length == 0 {
		return nil
	}
	base := &data[off]
	if hostLittle && uintptr(unsafe.Pointer(base))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(base)), length/4)
	}
	out := make([]int32, length/4)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(data[off+int64(i)*4:]))
	}
	return out
}

// kindName names a kind constant for errors and summaries.
func kindName(kind uint32) string {
	switch kind {
	case kindDirected:
		return "directed"
	case kindUndirected:
		return "undirected"
	default:
		return fmt.Sprintf("kind-%d", kind)
	}
}
