//go:build !(linux || darwin)

package extmem

import "os"

// mmapSupported is false on platforms this package has no mmap shim for;
// OpenMapped fails with ErrNoMmap and Open falls back to copying the file
// into an aligned heap buffer (correct, but bounded by RAM again).
const mmapSupported = false

func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	return nil, nil, ErrNoMmap
}
