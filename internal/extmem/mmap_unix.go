//go:build linux || darwin

package extmem

import (
	"os"
	"syscall"
)

// mmapSupported reports whether this build can serve RNGM files in place.
// On unix the image is mapped read-only and shared, so the kernel pages it
// in on demand and may drop clean pages under memory pressure — the
// property that lets graphs larger than the heap stay queryable.
const mmapSupported = true

// mapFile maps size bytes of f read-only and returns the mapping plus its
// releaser. The file descriptor may be closed after mapping; the mapping
// stays valid until the releaser runs.
func mapFile(f *os.File, size int64) ([]byte, func() error, error) {
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, &os.PathError{Op: "mmap", Path: f.Name(), Err: err}
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
