package extmem

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync"

	"ringo/internal/graph"
	"ringo/internal/par"
	"ringo/internal/xhash"
)

// ErrNoMmap reports that this build has no mmap shim for the host platform.
// OpenMapped fails with it; Open catches it and copies the file into an
// aligned heap buffer instead, which is correct but loses the beyond-RAM
// property.
var ErrNoMmap = errors.New("extmem: no mmap support on this platform; RNGM graphs load by copying the file into memory (extmem.Open)")

// Graph is an opened RNGM image: the raw bytes (mapped or heap-copied) plus
// a graph.View / graph.UView assembled directly over them. The view pins
// the Graph, and the Graph pins the mapping, so views handed to algorithms
// or the view cache stay valid even after the Graph itself goes out of
// scope; a runtime cleanup releases the mapping once nothing references it.
// Close releases it eagerly — only safe once no views over it are in use.
type Graph struct {
	path   string
	data   []byte
	mapped bool
	kind   uint32
	view   *graph.View  // non-nil iff kind == kindDirected
	uview  *graph.UView // non-nil iff kind == kindUndirected

	closer *mapCloser
}

// mapCloser releases a mapping exactly once. It is a separate object so the
// runtime cleanup can reference it without keeping the Graph (and therefore
// the cleanup's own trigger) alive.
type mapCloser struct {
	once  sync.Once
	unmap func() error
	err   error
}

func (c *mapCloser) close() error {
	c.once.Do(func() {
		if c.unmap != nil {
			c.err = c.unmap()
		}
	})
	return c.err
}

// OpenMapped opens an RNGM image via the platform mmap, validates it, and
// serves it as a queryable view without decoding the arrays. On platforms
// without an mmap shim it fails with ErrNoMmap.
func OpenMapped(path string) (*Graph, error) {
	if !mmapSupported {
		return nil, fmt.Errorf("extmem: open %s: %w", path, ErrNoMmap)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if st.Size() == 0 {
		return nil, fmt.Errorf("extmem: %s: empty file", path)
	}
	data, unmap, err := mapFile(f, st.Size())
	if err != nil {
		return nil, err
	}
	g, err := finish(path, data, true, unmap)
	if err != nil {
		unmap()
		return nil, err
	}
	return g, nil
}

// Open opens an RNGM image, preferring the zero-copy mapped path and
// falling back to an aligned in-memory copy where mmap is unavailable.
func Open(path string) (*Graph, error) {
	g, err := OpenMapped(path)
	if err == nil || !errors.Is(err, ErrNoMmap) {
		return g, err
	}
	return openFallback(path)
}

// openFallback reads the whole file into a []uint64-backed buffer so the
// base is 8-byte aligned and sections alias exactly as they do in a
// mapping.
func openFallback(path string) (*Graph, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) == 0 {
		return nil, fmt.Errorf("extmem: %s: empty file", path)
	}
	backing := make([]uint64, (len(raw)+7)/8)
	data := u64Bytes(backing)[:len(raw)]
	copy(data, raw)
	return finish(path, data, false, nil)
}

// finish validates a raw image and assembles the Graph over it.
func finish(path string, data []byte, mapped bool, unmap func() error) (*Graph, error) {
	g := &Graph{path: path, data: data, mapped: mapped, closer: &mapCloser{unmap: unmap}}
	if err := g.parse(); err != nil {
		return nil, fmt.Errorf("extmem: %s: %w", path, err)
	}
	// Backstop release: once neither the Graph nor any view retaining it is
	// reachable, the mapping goes away even without an explicit Close. The
	// closure must capture only the closer, never g itself.
	runtime.AddCleanup(g, func(c *mapCloser) { c.close() }, g.closer)
	return g, nil
}

// parse validates the header, section table, checksums and array
// invariants, then aliases the sections into a view. Every check mirrors
// the RNGO/RNGU hardening: truncation, absurd counts, lying lengths and
// corrupt payloads all fail with a named error before any algorithm can
// index out of bounds.
func (g *Graph) parse() error {
	data := g.data
	if int64(len(data)) < fixedHeaderLen+8 {
		return fmt.Errorf("truncated header (%d bytes)", len(data))
	}
	if string(data[:4]) != mappedMagic {
		return fmt.Errorf("not a mapped graph image (magic %q)", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != mappedVersion {
		return fmt.Errorf("unsupported format version %d", v)
	}
	g.kind = binary.LittleEndian.Uint32(data[8:])
	var nsections int
	switch g.kind {
	case kindDirected:
		nsections = 5
	case kindUndirected:
		nsections = 3
	default:
		return fmt.Errorf("unknown graph kind %d", g.kind)
	}
	nnodes := binary.LittleEndian.Uint64(data[16:])
	nentries := binary.LittleEndian.Uint64(data[24:])
	if nnodes > maxMappedCount || nentries > maxMappedCount {
		return fmt.Errorf("implausible header counts (%d nodes, %d edge entries)", nnodes, nentries)
	}
	if got := binary.LittleEndian.Uint64(data[32:]); got != uint64(nsections) {
		return fmt.Errorf("header claims %d sections, %s images have %d", got, kindName(g.kind), nsections)
	}
	hdr := headerLen(nsections)
	if int64(len(data)) < hdr {
		return fmt.Errorf("truncated section table (%d bytes, header needs %d)", len(data), hdr)
	}
	if got, want := binary.LittleEndian.Uint64(data[hdr-8:]), xhash.Checksum64(data[:hdr-8]); got != want {
		return fmt.Errorf("header checksum mismatch (file %x, computed %x)", got, want)
	}

	// Section lengths are fully determined by the header counts; a table
	// that disagrees is lying about the layout.
	n, e := int64(nnodes), int64(nentries)
	var want []int64
	switch g.kind {
	case kindDirected:
		want = []int64{n * 8, (n + 1) * 8, (n + 1) * 8, e * 4, e * 4}
	case kindUndirected:
		want = []int64{n * 8, (n + 1) * 8, e * 4}
	}
	type span struct{ off, len int64 }
	spans := make([]span, nsections)
	prevEnd := hdr
	for i := 0; i < nsections; i++ {
		ent := data[fixedHeaderLen+i*sectionEntryLen:]
		off := binary.LittleEndian.Uint64(ent)
		length := binary.LittleEndian.Uint64(ent[8:])
		if off > uint64(len(data)) || off%pageAlign != 0 {
			return fmt.Errorf("section %d offset %d misaligned or out of range", i, off)
		}
		if int64(length) != want[i] {
			return fmt.Errorf("section %d length %d disagrees with header counts (want %d)", i, length, want[i])
		}
		if int64(off) < prevEnd {
			return fmt.Errorf("section %d at offset %d overlaps preceding bytes (end %d)", i, off, prevEnd)
		}
		if uint64(len(data))-off < length {
			return fmt.Errorf("section %d (offset %d, length %d) extends past file end (%d bytes)", i, off, length, len(data))
		}
		spans[i] = span{int64(off), int64(length)}
		prevEnd = int64(off) + int64(length)
	}

	// Payload checksums, one worker per section: a linear read of the file
	// with no allocation — cheap next to a decode, and it catches the bit
	// rot the structural checks below cannot.
	sumErrs := make([]error, nsections)
	par.ForEach(nsections, func(i int) {
		ent := data[fixedHeaderLen+i*sectionEntryLen:]
		wantSum := binary.LittleEndian.Uint64(ent[16:])
		if got := xhash.Checksum64(data[spans[i].off : spans[i].off+spans[i].len]); got != wantSum {
			sumErrs[i] = fmt.Errorf("section %d checksum mismatch (file %x, computed %x)", i, wantSum, got)
		}
	})
	for _, err := range sumErrs {
		if err != nil {
			return err
		}
	}

	switch g.kind {
	case kindDirected:
		ids := i64Section(data, spans[0].off, spans[0].len)
		outOff := i64Section(data, spans[1].off, spans[1].len)
		inOff := i64Section(data, spans[2].off, spans[2].len)
		out := i32Section(data, spans[3].off, spans[3].len)
		in := i32Section(data, spans[4].off, spans[4].len)
		v, err := graph.ViewFromArrays(ids, outOff, inOff, out, in, g)
		if err != nil {
			return err
		}
		g.view = v
	case kindUndirected:
		ids := i64Section(data, spans[0].off, spans[0].len)
		off := i64Section(data, spans[1].off, spans[1].len)
		arena := i32Section(data, spans[2].off, spans[2].len)
		u, err := graph.UViewFromArrays(ids, off, arena, g)
		if err != nil {
			return err
		}
		g.uview = u
	}
	return nil
}

// Path returns the file the image was opened from.
func (g *Graph) Path() string { return g.path }

// Kind reports "directed" or "undirected".
func (g *Graph) Kind() string { return kindName(g.kind) }

// View returns the directed view served over the image, or nil for
// undirected images.
func (g *Graph) View() *graph.View { return g.view }

// UView returns the undirected view served over the image, or nil for
// directed images.
func (g *Graph) UView() *graph.UView { return g.uview }

// NumNodes reports the node count of the image.
func (g *Graph) NumNodes() int {
	if g.view != nil {
		return g.view.NumNodes()
	}
	return g.uview.NumNodes()
}

// NumEdges reports the edge count: directed edges for directed images,
// undirected edges (self-loops once) for undirected ones.
func (g *Graph) NumEdges() int64 {
	if g.view != nil {
		return g.view.NumEdges()
	}
	return g.uview.NumEdges()
}

// Bytes reports the size of the backing image in bytes.
func (g *Graph) Bytes() int64 { return int64(len(g.data)) }

// Mapped reports whether the image is served by mmap (true) or the
// read-into-memory fallback (false).
func (g *Graph) Mapped() bool { return g.mapped }

// Close releases the mapping. It is safe to call more than once, but must
// not race with algorithms still reading views over this image — the pages
// vanish under them. Long-lived owners (workspaces) should simply drop the
// Graph and let the runtime cleanup release it.
func (g *Graph) Close() error { return g.closer.close() }
