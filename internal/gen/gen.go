// Package gen provides deterministic synthetic workload generators. The
// module is offline, so the paper's evaluation datasets (LiveJournal,
// Twitter2010, the StackOverflow dump) are replaced by generators that
// reproduce their shapes: R-MAT / preferential-attachment graphs with
// power-law degree skew for the graph workloads, and a Zipf-skewed Q&A
// posts table for the §4.1 StackOverflow demo. All generators are seeded
// and reproducible.
package gen

import (
	"math"
	"math/rand"

	"ringo/internal/graph"
	"ringo/internal/table"
)

// RMATEdges generates nEdges edges over a node id space of size 2^scale
// with the R-MAT recursive-quadrant model (Chakrabarti et al.). The
// canonical parameters a=0.57, b=0.19, c=0.19 reproduce the skewed degree
// distributions of social graphs such as LiveJournal and Twitter. Duplicate
// edges and self-loops may occur, as in real edge logs; graph conversion
// deduplicates them.
func RMATEdges(scale int, nEdges int64, a, b, c float64, seed int64) (src, dst []int64) {
	if scale < 1 || scale > 40 {
		panic("gen: RMAT scale out of range")
	}
	rng := rand.New(rand.NewSource(seed))
	src = make([]int64, nEdges)
	dst = make([]int64, nEdges)
	ab := a + b
	abc := a + b + c
	for i := int64(0); i < nEdges; i++ {
		var s, d int64
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			s <<= 1
			d <<= 1
			switch {
			case r < a:
				// top-left: no bits set
			case r < ab:
				d |= 1
			case r < abc:
				s |= 1
			default:
				s |= 1
				d |= 1
			}
		}
		src[i], dst[i] = s, d
	}
	return src, dst
}

// RMATTable generates an R-MAT edge table with columns src and dst, the raw
// input format of the paper's benchmarks.
func RMATTable(scale int, nEdges int64, seed int64) *table.Table {
	src, dst := RMATEdges(scale, nEdges, 0.57, 0.19, 0.19, seed)
	t, err := table.FromIntColumns([]string{"src", "dst"}, [][]int64{src, dst})
	if err != nil {
		panic(err) // generator-internal schema is always valid
	}
	return t
}

// GNM generates a uniform random directed graph with n nodes and m distinct
// edges (Erdős–Rényi G(n,m)); self-loops excluded.
func GNM(n int, m int64, seed int64) *graph.Directed {
	if int64(n)*int64(n-1) < m {
		panic("gen: GNM with more edges than node pairs")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDirectedCap(n)
	for i := 0; i < n; i++ {
		g.AddNode(int64(i))
	}
	var added int64
	for added < m {
		s := int64(rng.Intn(n))
		d := int64(rng.Intn(n))
		if s == d {
			continue
		}
		if g.AddEdge(s, d) {
			added++
		}
	}
	return g
}

// GNP generates a uniform random directed graph where each ordered pair
// (excluding self-loops) is an edge with probability p, using geometric
// skip sampling so the cost is proportional to the number of edges.
func GNP(n int, p float64, seed int64) *graph.Directed {
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewDirectedCap(n)
	for i := 0; i < n; i++ {
		g.AddNode(int64(i))
	}
	if p <= 0 {
		return g
	}
	if p >= 1 {
		for s := 0; s < n; s++ {
			for d := 0; d < n; d++ {
				if s != d {
					g.AddEdge(int64(s), int64(d))
				}
			}
		}
		return g
	}
	// Walk the n*(n-1) candidate pairs with geometric gaps.
	total := int64(n) * int64(n-1)
	at := int64(-1)
	for {
		at += 1 + geometricSkip(rng, p)
		if at >= total {
			return g
		}
		s := at / int64(n-1)
		r := at % int64(n-1)
		d := r
		if d >= s {
			d++ // skip the diagonal
		}
		g.AddEdge(s, d)
	}
}

// geometricSkip samples the number of failures before the next success of a
// Bernoulli(p) sequence.
func geometricSkip(rng *rand.Rand, p float64) int64 {
	u := rng.Float64()
	if u == 0 {
		return 0
	}
	skip := int64(math.Floor(math.Log(u) / math.Log(1-p)))
	if skip < 0 {
		return 0
	}
	return skip
}

// BarabasiAlbert generates an undirected preferential-attachment graph: n
// nodes arrive in sequence and each connects to m existing nodes chosen
// proportionally to degree (the repeated-endpoints trick).
func BarabasiAlbert(n, m int, seed int64) *graph.Undirected {
	if m < 1 || n < m+1 {
		panic("gen: BarabasiAlbert needs n > m >= 1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewUndirectedCap(n)
	// Seed clique of m+1 nodes.
	endpoints := make([]int64, 0, 2*m*n)
	for i := 0; i <= m; i++ {
		g.AddNode(int64(i))
	}
	for i := 0; i <= m; i++ {
		for j := i + 1; j <= m; j++ {
			g.AddEdge(int64(i), int64(j))
			endpoints = append(endpoints, int64(i), int64(j))
		}
	}
	for v := m + 1; v < n; v++ {
		g.AddNode(int64(v))
		chosen := map[int64]bool{}
		for len(chosen) < m {
			t := endpoints[rng.Intn(len(endpoints))]
			if t != int64(v) {
				chosen[t] = true
			}
		}
		for t := range chosen {
			g.AddEdge(int64(v), t)
			endpoints = append(endpoints, int64(v), t)
		}
	}
	return g
}

// WattsStrogatz generates a small-world graph: a ring of n nodes each
// connected to its k nearest neighbors on each side, with every edge
// rewired with probability beta.
func WattsStrogatz(n, k int, beta float64, seed int64) *graph.Undirected {
	if k < 1 || n < 2*k+1 {
		panic("gen: WattsStrogatz needs n >= 2k+1")
	}
	rng := rand.New(rand.NewSource(seed))
	g := graph.NewUndirectedCap(n)
	for i := 0; i < n; i++ {
		g.AddNode(int64(i))
	}
	for i := 0; i < n; i++ {
		for j := 1; j <= k; j++ {
			dst := int64((i + j) % n)
			src := int64(i)
			if rng.Float64() < beta {
				for tries := 0; tries < 32; tries++ {
					cand := int64(rng.Intn(n))
					if cand != src && !g.HasEdge(src, cand) {
						dst = cand
						break
					}
				}
			}
			g.AddEdge(src, dst)
		}
	}
	return g
}

// Star returns a star with the hub as node 0 and the given number of
// leaves, edges pointing leaf -> hub.
func Star(leaves int) *graph.Directed {
	g := graph.NewDirectedCap(leaves + 1)
	for i := 1; i <= leaves; i++ {
		g.AddEdge(int64(i), 0)
	}
	return g
}

// Ring returns a directed cycle of n nodes.
func Ring(n int) *graph.Directed {
	g := graph.NewDirectedCap(n)
	for i := 0; i < n; i++ {
		g.AddEdge(int64(i), int64((i+1)%n))
	}
	return g
}

// Grid returns an undirected rows×cols grid graph; node id = r*cols+c.
func Grid(rows, cols int) *graph.Undirected {
	g := graph.NewUndirectedCap(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			id := int64(r*cols + c)
			g.AddNode(id)
			if c+1 < cols {
				g.AddEdge(id, id+1)
			}
			if r+1 < rows {
				g.AddEdge(id, id+int64(cols))
			}
		}
	}
	return g
}

// Complete returns the complete undirected graph on n nodes.
func Complete(n int) *graph.Undirected {
	g := graph.NewUndirectedCap(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(int64(i), int64(j))
		}
	}
	return g
}
