package gen

import (
	"sort"
	"testing"

	"ringo/internal/conv"
	"ringo/internal/table"
)

func TestRMATDeterministicAndInRange(t *testing.T) {
	src1, dst1 := RMATEdges(10, 5000, 0.57, 0.19, 0.19, 42)
	src2, dst2 := RMATEdges(10, 5000, 0.57, 0.19, 0.19, 42)
	for i := range src1 {
		if src1[i] != src2[i] || dst1[i] != dst2[i] {
			t.Fatal("RMAT not deterministic for fixed seed")
		}
		if src1[i] < 0 || src1[i] >= 1024 || dst1[i] < 0 || dst1[i] >= 1024 {
			t.Fatalf("edge (%d,%d) outside 2^10 node space", src1[i], dst1[i])
		}
	}
	src3, _ := RMATEdges(10, 5000, 0.57, 0.19, 0.19, 43)
	same := true
	for i := range src1 {
		if src1[i] != src3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical edges")
	}
}

func TestRMATSkewedDegrees(t *testing.T) {
	// R-MAT with canonical parameters must be much more skewed than uniform:
	// the max out-degree should far exceed the mean.
	tbl := RMATTable(12, 40_000, 7)
	g, err := conv.ToDirected(tbl, "src", "dst")
	if err != nil {
		t.Fatal(err)
	}
	maxDeg := 0
	g.ForNodes(func(id int64) {
		if d := g.OutDeg(id); d > maxDeg {
			maxDeg = d
		}
	})
	mean := float64(g.NumEdges()) / float64(g.NumNodes())
	if float64(maxDeg) < 10*mean {
		t.Fatalf("max degree %d not skewed vs mean %.1f", maxDeg, mean)
	}
}

func TestGNM(t *testing.T) {
	g := GNM(100, 500, 3)
	if g.NumNodes() != 100 || g.NumEdges() != 500 {
		t.Fatalf("GNM dims = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	g.ForEdges(func(s, d int64) {
		if s == d {
			t.Fatal("GNM produced self-loop")
		}
	})
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestGNPEdgeCountNearExpectation(t *testing.T) {
	const n = 200
	const p = 0.05
	g := GNP(n, p, 11)
	expect := p * float64(n) * float64(n-1)
	got := float64(g.NumEdges())
	if got < expect*0.8 || got > expect*1.2 {
		t.Fatalf("GNP edges = %v, expected about %v", got, expect)
	}
	g.ForEdges(func(s, d int64) {
		if s == d {
			t.Fatal("GNP produced self-loop")
		}
	})
	if GNP(50, 0, 1).NumEdges() != 0 {
		t.Fatal("GNP(p=0) has edges")
	}
	full := GNP(10, 1, 1)
	if full.NumEdges() != 90 {
		t.Fatalf("GNP(p=1) edges = %d, want 90", full.NumEdges())
	}
}

func TestBarabasiAlbert(t *testing.T) {
	g := BarabasiAlbert(300, 3, 5)
	if g.NumNodes() != 300 {
		t.Fatalf("BA nodes = %d", g.NumNodes())
	}
	// Each of the 296 arrivals adds exactly 3 edges to the seed clique's 6.
	want := int64(6 + 296*3)
	if g.NumEdges() != want {
		t.Fatalf("BA edges = %d, want %d", g.NumEdges(), want)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Preferential attachment produces a hub far above the minimum degree.
	degs := []int{}
	g.ForNodes(func(id int64) { degs = append(degs, g.Deg(id)) })
	sort.Ints(degs)
	if degs[len(degs)-1] < 3*degs[0] {
		t.Fatalf("BA degrees not skewed: min %d max %d", degs[0], degs[len(degs)-1])
	}
}

func TestWattsStrogatz(t *testing.T) {
	g := WattsStrogatz(100, 2, 0.1, 9)
	if g.NumNodes() != 100 {
		t.Fatalf("WS nodes = %d", g.NumNodes())
	}
	// Ring lattice has n*k edges; rewiring can only collide occasionally.
	if g.NumEdges() < 180 || g.NumEdges() > 200 {
		t.Fatalf("WS edges = %d, want about 200", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicTopologies(t *testing.T) {
	if g := Star(5); g.NumNodes() != 6 || g.NumEdges() != 5 || g.InDeg(0) != 5 {
		t.Fatal("Star wrong")
	}
	if g := Ring(7); g.NumEdges() != 7 || !g.HasEdge(6, 0) {
		t.Fatal("Ring wrong")
	}
	grid := Grid(3, 4)
	if grid.NumNodes() != 12 || grid.NumEdges() != int64(3*3+2*4) {
		t.Fatalf("Grid dims = (%d,%d)", grid.NumNodes(), grid.NumEdges())
	}
	if k := Complete(5); k.NumEdges() != 10 {
		t.Fatal("Complete wrong")
	}
}

func TestGeneratorPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"rmat-scale": func() { RMATEdges(0, 1, 0.5, 0.2, 0.2, 1) },
		"gnm-over":   func() { GNM(3, 100, 1) },
		"ba-params":  func() { BarabasiAlbert(2, 2, 1) },
		"ws-params":  func() { WattsStrogatz(3, 2, 0.1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestStackOverflowPosts(t *testing.T) {
	cfg := DefaultSOConfig()
	tbl, err := StackOverflowPosts(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.NumRows() < cfg.Questions {
		t.Fatalf("rows = %d, want at least %d questions", tbl.NumRows(), cfg.Questions)
	}
	// Questions + answers partition the table.
	qs, err := tbl.Select("Type", table.EQ, "question")
	if err != nil {
		t.Fatal(err)
	}
	if qs.NumRows() != cfg.Questions {
		t.Fatalf("questions = %d", qs.NumRows())
	}
	// Every accepted id refers to an answer post, and answers carry -1.
	accepted, _ := qs.IntCol("AcceptedId")
	ans, err := tbl.Select("Type", table.EQ, "answer")
	if err != nil {
		t.Fatal(err)
	}
	answerIDs := map[int64]bool{}
	ids, _ := ans.IntCol("PostId")
	for _, id := range ids {
		answerIDs[id] = true
	}
	nAccepted := 0
	for _, a := range accepted {
		if a == -1 {
			continue
		}
		nAccepted++
		if !answerIDs[a] {
			t.Fatalf("accepted id %d is not an answer", a)
		}
	}
	if nAccepted == 0 {
		t.Fatal("no question accepted an answer; demo join would be empty")
	}
	aAccepted, _ := ans.IntCol("AcceptedId")
	for _, a := range aAccepted {
		if a != -1 {
			t.Fatal("answer row has non-empty AcceptedId")
		}
	}
	// Every answer's ParentId is a question; questions carry -1.
	questionIDs := map[int64]bool{}
	qIDs, _ := qs.IntCol("PostId")
	for _, id := range qIDs {
		questionIDs[id] = true
	}
	parents, _ := ans.IntCol("ParentId")
	for _, p := range parents {
		if !questionIDs[p] {
			t.Fatalf("answer parent %d is not a question", p)
		}
	}
	qParents, _ := qs.IntCol("ParentId")
	for _, p := range qParents {
		if p != -1 {
			t.Fatal("question row has a parent")
		}
	}
	// Java posts exist for the demo.
	java, err := tbl.Select("Tag", table.EQ, "Java")
	if err != nil {
		t.Fatal(err)
	}
	if java.NumRows() == 0 {
		t.Fatal("no Java posts generated")
	}
	// Deterministic.
	tbl2, _ := StackOverflowPosts(cfg)
	if tbl2.NumRows() != tbl.NumRows() {
		t.Fatal("generator not deterministic")
	}
}

func TestStackOverflowConfigValidation(t *testing.T) {
	if _, err := StackOverflowPosts(SOConfig{Questions: 0, Users: 5}); err == nil {
		t.Fatal("zero questions accepted")
	}
	if _, err := StackOverflowPosts(SOConfig{Questions: 5, Users: 5, AcceptProb: 2}); err == nil {
		t.Fatal("bad accept probability accepted")
	}
}
