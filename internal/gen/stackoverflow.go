package gen

import (
	"fmt"
	"math/rand"

	"ringo/internal/table"
)

// SOConfig configures the synthetic StackOverflow-like posts table standing
// in for the real dump used by the paper's §4.1 demo (8M questions, 14M
// answers). User activity and tag popularity are Zipf-distributed, matching
// the heavy skew of the real site.
type SOConfig struct {
	// Questions is the number of question posts.
	Questions int
	// MeanAnswers is the average number of answers per question.
	MeanAnswers float64
	// Users is the size of the user population.
	Users int
	// Tags is the tag vocabulary; nil selects a default list headed by
	// "Java" so the demo query has matches.
	Tags []string
	// AcceptProb is the probability that a question accepts one of its
	// answers.
	AcceptProb float64
	// Seed makes the table reproducible.
	Seed int64
}

// DefaultSOConfig returns the configuration used by the examples: a small
// but skewed Q&A corpus.
func DefaultSOConfig() SOConfig {
	return SOConfig{
		Questions:   2000,
		MeanAnswers: 1.8,
		Users:       500,
		AcceptProb:  0.7,
		Seed:        1,
	}
}

// SOSchema is the schema of the generated posts table, mirroring the demo:
// questions carry the PostId of their accepted answer in AcceptedId (-1
// when none) and -1 in ParentId; answers carry -1 in AcceptedId and their
// question's PostId in ParentId. ParentId supports the demo's alternative
// construction, "connect users who answered the same question".
var SOSchema = table.Schema{
	{Name: "PostId", Type: table.Int},
	{Name: "Type", Type: table.String},
	{Name: "UserId", Type: table.Int},
	{Name: "Tag", Type: table.String},
	{Name: "AcceptedId", Type: table.Int},
	{Name: "ParentId", Type: table.Int},
	{Name: "Score", Type: table.Float},
}

// StackOverflowPosts generates the posts table.
func StackOverflowPosts(cfg SOConfig) (*table.Table, error) {
	if cfg.Questions < 1 || cfg.Users < 1 {
		return nil, fmt.Errorf("gen: StackOverflowPosts needs questions and users >= 1")
	}
	if cfg.MeanAnswers < 0 || cfg.AcceptProb < 0 || cfg.AcceptProb > 1 {
		return nil, fmt.Errorf("gen: StackOverflowPosts config out of range")
	}
	tags := cfg.Tags
	if tags == nil {
		tags = []string{"Java", "Python", "Go", "C++", "JavaScript", "SQL", "Rust", "Haskell"}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	userZipf := rand.NewZipf(rng, 1.3, 1, uint64(cfg.Users-1))
	tagZipf := rand.NewZipf(rng, 1.2, 1, uint64(len(tags)-1))

	t, err := table.NewWithCapacity(SOSchema, cfg.Questions*3)
	if err != nil {
		return nil, err
	}
	nextPost := int64(1)
	for q := 0; q < cfg.Questions; q++ {
		qid := nextPost
		nextPost++
		asker := int64(userZipf.Uint64())
		tag := tags[tagZipf.Uint64()]
		nAnswers := rng.Intn(int(2*cfg.MeanAnswers) + 1)
		answerIDs := make([]int64, 0, nAnswers)
		answerUsers := make([]int64, 0, nAnswers)
		for a := 0; a < nAnswers; a++ {
			answerIDs = append(answerIDs, nextPost)
			nextPost++
			answerUsers = append(answerUsers, int64(userZipf.Uint64()))
		}
		accepted := int64(-1)
		if len(answerIDs) > 0 && rng.Float64() < cfg.AcceptProb {
			accepted = answerIDs[rng.Intn(len(answerIDs))]
		}
		if err := t.AppendRow(qid, "question", asker, tag, accepted, int64(-1), float64(rng.Intn(20))); err != nil {
			return nil, err
		}
		for a, aid := range answerIDs {
			if err := t.AppendRow(aid, "answer", answerUsers[a], tag, int64(-1), qid, float64(rng.Intn(40))); err != nil {
				return nil, err
			}
		}
	}
	return t, nil
}
