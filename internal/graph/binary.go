package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph serialization: a compact format that loads an order of
// magnitude faster than re-parsing text edge lists, the same role SNAP's
// binary graph files play in interactive sessions (load once from the
// big-data side of Figure 1, then iterate in memory).
//
// Layout (little endian): magic "RNGO", format version u32, node count u64,
// edge count u64, then per node: id i64, out-degree u32, out-neighbor ids
// i64... In-vectors are reconstructed on load.

const (
	binaryMagic   = "RNGO"
	binaryVersion = 1

	// undirectedMagic marks the undirected variant: same framing, one
	// adjacency vector per node instead of an out-vector.
	undirectedMagic = "RNGU"

	// mappedMagic marks the mmap-friendly CSR image written by
	// internal/extmem. This package only sniffs it so stream loaders can
	// point callers at the mapped loader instead of failing on a parse.
	mappedMagic = "RNGM"

	// maxBinaryCount rejects node/edge counts no real dataset reaches
	// (2^44 ≈ 17 trillion): a header claiming more is corrupt, and
	// trusting it would mean absurd allocations before the stream runs
	// dry. maxBinaryPrealloc additionally bounds how far any decoded
	// count is trusted for pre-allocation; slices grow by append beyond
	// it, so even a plausible-looking lie costs reads, not memory.
	maxBinaryCount    = 1 << 44
	maxBinaryPrealloc = 1 << 20
)

// SaveBinary writes g in the binary graph format.
func SaveBinary(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := writeU32(binaryVersion); err != nil {
		return err
	}
	nodes := g.Nodes()
	if err := writeU64(uint64(len(nodes))); err != nil {
		return err
	}
	if err := writeU64(uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, id := range nodes {
		if err := writeU64(uint64(id)); err != nil {
			return err
		}
		out := g.OutNeighbors(id)
		if err := writeU32(uint32(len(out))); err != nil {
			return err
		}
		for _, dst := range out {
			if err := writeU64(uint64(dst)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadBinary reads a graph written by SaveBinary.
func LoadBinary(r io.Reader) (*Directed, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: not a Ringo binary graph (magic %q)", magic)
	}
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("graph: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	nNodes, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	nEdges, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	if nNodes > maxBinaryCount {
		return nil, fmt.Errorf("graph: implausible node count %d", nNodes)
	}
	if nEdges > maxBinaryCount {
		return nil, fmt.Errorf("graph: implausible edge count %d", nEdges)
	}

	prealloc := clampPrealloc(nNodes)
	ids := make([]int64, 0, prealloc)
	outs := make([][]int64, 0, prealloc)
	inDeg := make(map[int64]int, prealloc)
	// Degrees are checked against the edge budget the header declared,
	// and adjacency vectors start at a capped capacity and grow by
	// append: a corrupt degree costs reads until the stream runs dry,
	// never an oversized up-front allocation.
	remaining := nEdges
	for i := uint64(0); i < nNodes; i++ {
		idU, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		id := int64(idU)
		deg, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("graph: reading degree of node %d: %w", id, err)
		}
		if uint64(deg) > remaining {
			return nil, fmt.Errorf("graph: node %d declares degree %d with only %d of %d edges unclaimed", id, deg, remaining, nEdges)
		}
		remaining -= uint64(deg)
		out := make([]int64, 0, clampPrealloc(uint64(deg)))
		for j := uint32(0); j < deg; j++ {
			dstU, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("graph: reading edges of node %d: %w", id, err)
			}
			out = append(out, int64(dstU))
			inDeg[int64(dstU)]++
		}
		ids = append(ids, id)
		outs = append(outs, out)
	}
	if remaining != 0 {
		return nil, fmt.Errorf("graph: header claims %d edges, vectors hold %d", nEdges, nEdges-remaining)
	}

	// Reconstruct sorted in-vectors with exact sizing, then bulk-build.
	idx := make(map[int64]int, len(ids))
	ins := make([][]int64, len(ids))
	for i, id := range ids {
		idx[id] = i
		if d := inDeg[id]; d > 0 {
			ins[i] = make([]int64, 0, d)
		}
	}
	for i, id := range ids {
		for _, dst := range outs[i] {
			j, ok := idx[dst]
			if !ok {
				return nil, fmt.Errorf("graph: edge %d->%d targets unknown node", id, dst)
			}
			ins[j] = append(ins[j], id)
		}
	}
	// ids are saved ascending, so appends above produced sorted in-vectors.
	g, err := BuildDirectedBulk(ids, ins, outs)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary file inconsistent: %w", err)
	}
	return g, nil
}

// SaveBinaryFile is SaveBinary writing to the named file.
func SaveBinaryFile(path string, g *Directed) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile is LoadBinary reading from the named file.
func LoadBinaryFile(path string) (*Directed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBinary(f)
}

func clampPrealloc(n uint64) int {
	if n > maxBinaryPrealloc {
		return maxBinaryPrealloc
	}
	return int(n)
}

// SaveBinaryUndirected writes g in the binary graph format's undirected
// variant: magic "RNGU", version u32, node count u64, edge count u64, then
// per node (ascending id): id i64, degree u32, sorted neighbor ids i64...
// Each non-loop edge appears in both endpoints' vectors, a self-loop once,
// mirroring the in-memory representation.
func SaveBinaryUndirected(w io.Writer, g *Undirected) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(undirectedMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := writeU32(binaryVersion); err != nil {
		return err
	}
	nodes := g.Nodes()
	if err := writeU64(uint64(len(nodes))); err != nil {
		return err
	}
	if err := writeU64(uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, id := range nodes {
		if err := writeU64(uint64(id)); err != nil {
			return err
		}
		adj := g.Neighbors(id)
		if err := writeU32(uint32(len(adj))); err != nil {
			return err
		}
		for _, nbr := range adj {
			if err := writeU64(uint64(nbr)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadBinaryUndirected reads a graph written by SaveBinaryUndirected, with
// the same corruption guards as LoadBinary: truncation, absurd counts and
// over-long degrees error out before any oversized allocation.
func LoadBinaryUndirected(r io.Reader) (*Undirected, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != undirectedMagic {
		return nil, fmt.Errorf("graph: not a Ringo undirected binary graph (magic %q)", magic)
	}
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("graph: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	nNodes, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	nEdges, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}
	if nNodes > maxBinaryCount {
		return nil, fmt.Errorf("graph: implausible node count %d", nNodes)
	}
	if nEdges > maxBinaryCount {
		return nil, fmt.Errorf("graph: implausible edge count %d", nEdges)
	}

	prealloc := clampPrealloc(nNodes)
	ids := make([]int64, 0, prealloc)
	adjs := make([][]int64, 0, prealloc)
	// Each edge contributes at most two vector entries (one for a loop).
	remaining := 2 * nEdges
	for i := uint64(0); i < nNodes; i++ {
		idU, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		id := int64(idU)
		deg, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("graph: reading degree of node %d: %w", id, err)
		}
		if uint64(deg) > remaining {
			return nil, fmt.Errorf("graph: node %d declares degree %d beyond the %d-edge budget", id, deg, nEdges)
		}
		remaining -= uint64(deg)
		adj := make([]int64, 0, clampPrealloc(uint64(deg)))
		for j := uint32(0); j < deg; j++ {
			nbrU, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("graph: reading edges of node %d: %w", id, err)
			}
			adj = append(adj, int64(nbrU))
		}
		ids = append(ids, id)
		adjs = append(adjs, adj)
	}
	g, err := BuildUndirectedBulk(ids, adjs)
	if err != nil {
		return nil, err
	}
	if g.NumEdges() != int64(nEdges) {
		return nil, fmt.Errorf("graph: header claims %d edges, vectors hold %d", nEdges, g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: undirected binary file inconsistent: %w", err)
	}
	return g, nil
}

// LoadFileAuto loads a directed graph from path in whichever of the two
// on-disk formats it is in, sniffing the leading magic bytes: files written
// by SaveBinary load through the fast binary path, anything else is parsed
// as a SNAP-style text edge list by the parallel ingest pipeline. This lets
// the shell's loadgraph verb (and the server sessions built on it) read back
// binary files its save verb writes without a format flag, while text edge
// lists load at full-machine speed.
func LoadFileAuto(path string) (*Directed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	br := bufio.NewReader(f)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		return LoadBinary(br)
	}
	if err == nil && string(head) == undirectedMagic {
		// Feeding these bytes to the text parser would produce a baffling
		// integer-parse error; name the actual mismatch instead.
		return nil, fmt.Errorf("graph: %s holds an undirected binary graph; this loader builds directed graphs (use LoadBinaryUndirected)", path)
	}
	if err == nil && string(head) == mappedMagic {
		// Mapped CSR images are not decoded into a Directed at all; they
		// are served in place by the extmem loader.
		return nil, fmt.Errorf("graph: %s holds a mapped CSR graph image; decode-style loaders cannot read it (use extmem.OpenMapped)", path)
	}
	return LoadEdgeListParallel(br)
}
