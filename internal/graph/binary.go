package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary graph serialization: a compact format that loads an order of
// magnitude faster than re-parsing text edge lists, the same role SNAP's
// binary graph files play in interactive sessions (load once from the
// big-data side of Figure 1, then iterate in memory).
//
// Layout (little endian): magic "RNGO", format version u32, node count u64,
// edge count u64, then per node: id i64, out-degree u32, out-neighbor ids
// i64... In-vectors are reconstructed on load.

const (
	binaryMagic   = "RNGO"
	binaryVersion = 1
)

// SaveBinary writes g in the binary graph format.
func SaveBinary(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var scratch [8]byte
	writeU32 := func(v uint32) error {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, err := bw.Write(scratch[:4])
		return err
	}
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, err := bw.Write(scratch[:])
		return err
	}
	if err := writeU32(binaryVersion); err != nil {
		return err
	}
	nodes := g.Nodes()
	if err := writeU64(uint64(len(nodes))); err != nil {
		return err
	}
	if err := writeU64(uint64(g.NumEdges())); err != nil {
		return err
	}
	for _, id := range nodes {
		if err := writeU64(uint64(id)); err != nil {
			return err
		}
		out := g.OutNeighbors(id)
		if err := writeU32(uint32(len(out))); err != nil {
			return err
		}
		for _, dst := range out {
			if err := writeU64(uint64(dst)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// LoadBinary reads a graph written by SaveBinary.
func LoadBinary(r io.Reader) (*Directed, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: not a Ringo binary graph (magic %q)", magic)
	}
	var scratch [8]byte
	readU32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, scratch[:4]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(scratch[:4]), nil
	}
	readU64 := func() (uint64, error) {
		if _, err := io.ReadFull(br, scratch[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(scratch[:]), nil
	}
	version, err := readU32()
	if err != nil {
		return nil, fmt.Errorf("graph: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	nNodes, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading node count: %w", err)
	}
	nEdges, err := readU64()
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge count: %w", err)
	}

	ids := make([]int64, 0, nNodes)
	outs := make([][]int64, 0, nNodes)
	inDeg := make(map[int64]int, nNodes)
	var totalOut uint64
	for i := uint64(0); i < nNodes; i++ {
		idU, err := readU64()
		if err != nil {
			return nil, fmt.Errorf("graph: reading node %d: %w", i, err)
		}
		id := int64(idU)
		deg, err := readU32()
		if err != nil {
			return nil, fmt.Errorf("graph: reading degree of node %d: %w", id, err)
		}
		out := make([]int64, deg)
		for j := range out {
			dstU, err := readU64()
			if err != nil {
				return nil, fmt.Errorf("graph: reading edges of node %d: %w", id, err)
			}
			out[j] = int64(dstU)
			inDeg[out[j]]++
		}
		ids = append(ids, id)
		outs = append(outs, out)
		totalOut += uint64(deg)
	}
	if totalOut != nEdges {
		return nil, fmt.Errorf("graph: header claims %d edges, vectors hold %d", nEdges, totalOut)
	}

	// Reconstruct sorted in-vectors with exact sizing, then bulk-build.
	idx := make(map[int64]int, len(ids))
	ins := make([][]int64, len(ids))
	for i, id := range ids {
		idx[id] = i
		if d := inDeg[id]; d > 0 {
			ins[i] = make([]int64, 0, d)
		}
	}
	for i, id := range ids {
		for _, dst := range outs[i] {
			j, ok := idx[dst]
			if !ok {
				return nil, fmt.Errorf("graph: edge %d->%d targets unknown node", id, dst)
			}
			ins[j] = append(ins[j], id)
		}
	}
	// ids are saved ascending, so appends above produced sorted in-vectors.
	g, err := BuildDirectedBulk(ids, ins, outs)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary file inconsistent: %w", err)
	}
	return g, nil
}

// SaveBinaryFile is SaveBinary writing to the named file.
func SaveBinaryFile(path string, g *Directed) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveBinary(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinaryFile is LoadBinary reading from the named file.
func LoadBinaryFile(path string) (*Directed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadBinary(f)
}
