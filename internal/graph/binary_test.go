package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := sampleDirected()
	g.AddNode(99) // isolated node survives
	var buf bytes.Buffer
	if err := SaveBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip dims = (%d,%d)", back.NumNodes(), back.NumEdges())
	}
	g.ForEdges(func(src, dst int64) {
		if !back.HasEdge(src, dst) {
			t.Fatalf("lost edge %d->%d", src, dst)
		}
	})
	if !back.HasNode(99) {
		t.Fatal("lost isolated node")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := LoadBinary(strings.NewReader("not a graph at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadBinary(strings.NewReader("RN")); err == nil {
		t.Fatal("truncated magic accepted")
	}
	// Correct magic, truncated header.
	if _, err := LoadBinary(strings.NewReader("RNGO\x01\x00")); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Wrong version.
	if _, err := LoadBinary(strings.NewReader("RNGO\x63\x00\x00\x00")); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestBinaryTruncatedBody(t *testing.T) {
	g := sampleDirected()
	var buf bytes.Buffer
	if err := SaveBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) - 1, len(data) / 2, 20} {
		if _, err := LoadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := sampleDirected()
	path := t.TempDir() + "/g.rngo"
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip edges")
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		g := NewDirected()
		for _, e := range edges {
			g.AddEdge(int64(e[0]%32), int64(e[1]%32))
		}
		var buf bytes.Buffer
		if err := SaveBinary(&buf, g); err != nil {
			return false
		}
		back, err := LoadBinary(&buf)
		if err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.ForEdges(func(src, dst int64) {
			if !back.HasEdge(src, dst) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
