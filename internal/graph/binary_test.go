package graph

import (
	"bytes"
	"os"
	"strings"
	"testing"
	"testing/quick"
)

func TestBinaryRoundTrip(t *testing.T) {
	g := sampleDirected()
	g.AddNode(99) // isolated node survives
	var buf bytes.Buffer
	if err := SaveBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip dims = (%d,%d)", back.NumNodes(), back.NumEdges())
	}
	g.ForEdges(func(src, dst int64) {
		if !back.HasEdge(src, dst) {
			t.Fatalf("lost edge %d->%d", src, dst)
		}
	})
	if !back.HasNode(99) {
		t.Fatal("lost isolated node")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRejectsGarbage(t *testing.T) {
	if _, err := LoadBinary(strings.NewReader("not a graph at all")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := LoadBinary(strings.NewReader("RN")); err == nil {
		t.Fatal("truncated magic accepted")
	}
	// Correct magic, truncated header.
	if _, err := LoadBinary(strings.NewReader("RNGO\x01\x00")); err == nil {
		t.Fatal("truncated header accepted")
	}
	// Wrong version.
	if _, err := LoadBinary(strings.NewReader("RNGO\x63\x00\x00\x00")); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestBinaryTruncatedBody(t *testing.T) {
	g := sampleDirected()
	var buf bytes.Buffer
	if err := SaveBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) - 1, len(data) / 2, 20} {
		if _, err := LoadBinary(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryFileRoundTrip(t *testing.T) {
	g := sampleDirected()
	path := t.TempDir() + "/g.rngo"
	if err := SaveBinaryFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinaryFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatal("file round trip edges")
	}
}

// TestBinaryRejectsMangledBuffers corrupts a valid binary graph in targeted
// ways — absurd counts, over-declared degrees, out-of-range edge targets —
// and requires a clean error (no panic, no huge allocation) for each.
func TestBinaryRejectsMangledBuffers(t *testing.T) {
	g := sampleDirected()
	var buf bytes.Buffer
	if err := SaveBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Offsets into the fixed-size header: magic[0:4] version[4:8]
	// nodeCount[8:16] edgeCount[16:24], then the first node record:
	// id[24:32] degree[32:36].
	cases := []struct {
		name    string
		mangle  func(b []byte)
		wantSub string
	}{
		{"absurd node count", func(b []byte) {
			for i := 8; i < 16; i++ {
				b[i] = 0xff
			}
		}, "implausible node count"},
		{"absurd edge count", func(b []byte) {
			for i := 16; i < 24; i++ {
				b[i] = 0xff
			}
		}, "implausible edge count"},
		{"node count beyond stream", func(b []byte) {
			b[8], b[9] = 0xff, 0xff // claims 65535 nodes; stream has far fewer
		}, ""},
		{"degree beyond edge budget", func(b []byte) {
			b[32], b[33] = 0xff, 0xff // first node claims degree 65535
		}, "unclaimed"},
		{"edge count vs vectors mismatch", func(b []byte) {
			b[16]++ // one more edge than the vectors hold
		}, "vectors hold"},
		{"edge to unknown node", func(b []byte) {
			// First neighbor id lives at [36:44]; point it at a node id
			// that does not exist.
			b[36], b[37] = 0x7f, 0x7f
		}, "unknown node"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mangled := append([]byte(nil), good...)
			tc.mangle(mangled)
			_, err := LoadBinary(bytes.NewReader(mangled))
			if err == nil {
				t.Fatal("mangled buffer accepted")
			}
			if tc.wantSub != "" && !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}
}

func sampleUndirectedBinary() *Undirected {
	u := NewUndirected()
	u.AddEdge(1, 2)
	u.AddEdge(2, 3)
	u.AddEdge(3, 1)
	u.AddEdge(4, 4) // self-loop survives
	u.AddNode(99)   // isolated node survives
	return u
}

func TestBinaryUndirectedRoundTrip(t *testing.T) {
	u := sampleUndirectedBinary()
	var buf bytes.Buffer
	if err := SaveBinaryUndirected(&buf, u); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBinaryUndirected(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != u.NumNodes() || back.NumEdges() != u.NumEdges() {
		t.Fatalf("round trip dims = (%d,%d), want (%d,%d)",
			back.NumNodes(), back.NumEdges(), u.NumNodes(), u.NumEdges())
	}
	u.ForEdges(func(src, dst int64) {
		if !back.HasEdge(src, dst) {
			t.Fatalf("lost edge {%d,%d}", src, dst)
		}
	})
	if !back.HasNode(99) {
		t.Fatal("lost isolated node")
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryUndirectedRejectsCorruption(t *testing.T) {
	u := sampleUndirectedBinary()
	var buf bytes.Buffer
	if err := SaveBinaryUndirected(&buf, u); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	// Directed magic must not load as undirected and vice versa.
	if _, err := LoadBinaryUndirected(strings.NewReader("RNGO\x01\x00\x00\x00")); err == nil {
		t.Fatal("directed magic accepted as undirected")
	}
	for _, cut := range []int{2, 6, 20, len(good) - 1} {
		if _, err := LoadBinaryUndirected(bytes.NewReader(good[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	mangled := append([]byte(nil), good...)
	for i := 8; i < 16; i++ {
		mangled[i] = 0xff
	}
	if _, err := LoadBinaryUndirected(bytes.NewReader(mangled)); err == nil {
		t.Fatal("absurd node count accepted")
	}
	mangled = append([]byte(nil), good...)
	mangled[16]++ // header edge count no longer matches the vectors
	if _, err := LoadBinaryUndirected(bytes.NewReader(mangled)); err == nil {
		t.Fatal("edge count mismatch accepted")
	}
}

func TestLoadFileAuto(t *testing.T) {
	g := sampleDirected()
	dir := t.TempDir()

	binPath := dir + "/g.rngo"
	if err := SaveBinaryFile(binPath, g); err != nil {
		t.Fatal(err)
	}
	fromBin, err := LoadFileAuto(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromBin.NumEdges() != g.NumEdges() {
		t.Fatalf("binary auto-load edges = %d, want %d", fromBin.NumEdges(), g.NumEdges())
	}

	txtPath := dir + "/g.txt"
	if err := SaveEdgeListFile(txtPath, g); err != nil {
		t.Fatal(err)
	}
	fromTxt, err := LoadFileAuto(txtPath)
	if err != nil {
		t.Fatal(err)
	}
	if fromTxt.NumEdges() != g.NumEdges() {
		t.Fatalf("edge-list auto-load edges = %d, want %d", fromTxt.NumEdges(), g.NumEdges())
	}

	if _, err := LoadFileAuto(dir + "/missing"); err == nil {
		t.Fatal("missing file accepted")
	}

	// An undirected binary file must produce a clear mismatch error, not a
	// baffling text-parse failure.
	u := sampleUndirectedBinary()
	uPath := dir + "/u.rngu"
	f, err := os.Create(uPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveBinaryUndirected(f, u); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = LoadFileAuto(uPath)
	if err == nil || !strings.Contains(err.Error(), "undirected") {
		t.Fatalf("undirected binary through LoadFileAuto: %v", err)
	}
}

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		g := NewDirected()
		for _, e := range edges {
			g.AddEdge(int64(e[0]%32), int64(e[1]%32))
		}
		var buf bytes.Buffer
		if err := SaveBinary(&buf, g); err != nil {
			return false
		}
		back, err := LoadBinary(&buf)
		if err != nil {
			return false
		}
		if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.ForEdges(func(src, dst int64) {
			if !back.HasEdge(src, dst) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
