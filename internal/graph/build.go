package graph

import (
	"fmt"

	"ringo/internal/par"
)

// Bulk graph construction: the paper's "sort-first" algorithm (§2.4) applied
// to raw edge pairs instead of table columns. Both orientations of the edge
// list are sorted in parallel, exact deduplicated degrees are counted per
// node, and every adjacency vector is carved out of one flat arena
// allocation — no per-edge sorted inserts, no contention between workers,
// and no guessing of vector sizes. This is the construction path behind the
// parallel text-ingest pipeline (LoadEdgeListParallel) and the table-to-graph
// conversions in internal/conv.

// BuildDirected constructs a directed graph from raw (src, dst) edge pairs.
// Duplicate pairs collapse to a single edge; self-loops are kept. The result
// is indistinguishable from feeding every pair through AddEdge — same node
// set, same sorted duplicate-free adjacency vectors — but construction is
// parallel and costs O(E log E) total instead of O(E · deg) sorted inserts.
func BuildDirected(edges [][2]int64) (*Directed, error) {
	n := len(edges)
	k1 := make([]int64, n)
	v1 := make([]int64, n)
	k2 := make([]int64, n)
	v2 := make([]int64, n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			k1[i], v1[i] = edges[i][0], edges[i][1]
			k2[i], v2[i] = edges[i][1], edges[i][0]
		}
	})
	return buildDirectedSorted(k1, v1, k2, v2)
}

// BuildDirectedCols is BuildDirected taking the edge list as two parallel
// columns, the form edge tables store; it copies the columns straight into
// the sort buffers with no intermediate pair slice.
func BuildDirectedCols(srcs, dsts []int64) (*Directed, error) {
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("graph: bulk build column length mismatch: %d srcs, %d dsts", len(srcs), len(dsts))
	}
	n := len(srcs)
	k1 := make([]int64, n)
	v1 := make([]int64, n)
	k2 := make([]int64, n)
	v2 := make([]int64, n)
	par.For(n, func(lo, hi int) {
		copy(k1[lo:hi], srcs[lo:hi])
		copy(v1[lo:hi], dsts[lo:hi])
		copy(k2[lo:hi], dsts[lo:hi])
		copy(v2[lo:hi], srcs[lo:hi])
	})
	return buildDirectedSorted(k1, v1, k2, v2)
}

// buildDirectedSorted finishes a bulk build from unsorted orientation
// buffers, which it owns and sorts in place: (k1, v1) holds (src, dst) and
// (k2, v2) holds (dst, src).
func buildDirectedSorted(k1, v1, k2, v2 []int64) (*Directed, error) {
	par.Do(
		func() { par.SortPairs(k1, v1) },
		func() { par.SortPairs(k2, v2) },
	)
	ids := mergeUniqueSorted(k1, k2)
	if len(ids) > 0 && ids[0] == tombstone {
		return nil, fmt.Errorf("graph: node id %d reserved", int64(tombstone))
	}
	var out, in [][]int64
	par.Do(
		func() { out = arenaVectors(ids, k1, v1) },
		func() { in = arenaVectors(ids, k2, v2) },
	)
	return BuildDirectedBulk(ids, in, out)
}

// BuildUndirected constructs an undirected graph from raw edge pairs with
// the same sort-first approach; duplicates and reverse duplicates collapse,
// self-loops are kept (stored once, as AddEdge stores them).
func BuildUndirected(edges [][2]int64) (*Undirected, error) {
	n := len(edges)
	keys := make([]int64, 2*n)
	vals := make([]int64, 2*n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			keys[i], vals[i] = edges[i][0], edges[i][1]
			keys[n+i], vals[n+i] = edges[i][1], edges[i][0]
		}
	})
	return buildUndirectedSorted(keys, vals)
}

// BuildUndirectedCols is BuildUndirected taking the edge list as two
// parallel columns (see BuildDirectedCols).
func BuildUndirectedCols(srcs, dsts []int64) (*Undirected, error) {
	if len(srcs) != len(dsts) {
		return nil, fmt.Errorf("graph: bulk build column length mismatch: %d srcs, %d dsts", len(srcs), len(dsts))
	}
	n := len(srcs)
	keys := make([]int64, 2*n)
	vals := make([]int64, 2*n)
	par.For(n, func(lo, hi int) {
		copy(keys[lo:hi], srcs[lo:hi])
		copy(vals[lo:hi], dsts[lo:hi])
		copy(keys[n+lo:n+hi], dsts[lo:hi])
		copy(vals[n+lo:n+hi], srcs[lo:hi])
	})
	return buildUndirectedSorted(keys, vals)
}

// buildUndirectedSorted finishes an undirected bulk build from the unsorted
// symmetrized (keys, vals) buffers, which it owns and sorts in place.
func buildUndirectedSorted(keys, vals []int64) (*Undirected, error) {
	par.SortPairs(keys, vals)
	ids := uniqueSorted(keys)
	if len(ids) > 0 && ids[0] == tombstone {
		return nil, fmt.Errorf("graph: node id %d reserved", int64(tombstone))
	}
	return BuildUndirectedBulk(ids, arenaVectors(ids, keys, vals))
}

// arenaVectors materializes one adjacency direction: for each id (sorted,
// unique) it deduplicates the id's run in the sorted (keys, vals) pairs and
// copies it into a slice of one shared arena. Exact deduplicated counts are
// computed first so the arena is allocated once and workers write disjoint
// ranges. Each vector is capped with a full slice expression, so a later
// AddEdge on one node reallocates that vector instead of clobbering its
// arena neighbors.
func arenaVectors(ids, keys, vals []int64) [][]int64 {
	runs := runOffsets(ids, keys)
	offs := make([]int64, len(ids)+1)
	par.ForEach(len(ids), func(i int) {
		seg := vals[runs[i][0]:runs[i][1]]
		c := int64(0)
		for j, v := range seg {
			if j == 0 || v != seg[j-1] {
				c++
			}
		}
		offs[i+1] = c
	})
	for i := 0; i < len(ids); i++ {
		offs[i+1] += offs[i]
	}
	arena := make([]int64, offs[len(ids)])
	vecs := make([][]int64, len(ids))
	par.ForEach(len(ids), func(i int) {
		lo, hi := offs[i], offs[i+1]
		if lo == hi {
			return // empty vectors stay nil, carrying no allocation
		}
		dst := arena[lo:lo:hi]
		seg := vals[runs[i][0]:runs[i][1]]
		for j, v := range seg {
			if j == 0 || v != seg[j-1] {
				dst = append(dst, v)
			}
		}
		vecs[i] = dst
	})
	return vecs
}

// mergeUniqueSorted returns the sorted union of the distinct values of two
// sorted slices.
func mergeUniqueSorted(a, b []int64) []int64 {
	out := make([]int64, 0, len(a)/2+len(b)/2)
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		var v int64
		switch {
		case j >= len(b) || (i < len(a) && a[i] <= b[j]):
			v = a[i]
			i++
		default:
			v = b[j]
			j++
		}
		for i < len(a) && a[i] == v {
			i++
		}
		for j < len(b) && b[j] == v {
			j++
		}
		out = append(out, v)
	}
	return out
}

// uniqueSorted returns the distinct values of a sorted slice.
func uniqueSorted(a []int64) []int64 {
	out := make([]int64, 0, len(a)/2)
	for i := 0; i < len(a); {
		v := a[i]
		out = append(out, v)
		for i < len(a) && a[i] == v {
			i++
		}
	}
	return out
}

// runOffsets returns, for each id in ids (sorted unique), the [start, end)
// range of its run in the sorted keys slice. Ids with no run get an empty
// range.
func runOffsets(ids, keys []int64) [][2]int {
	runs := make([][2]int, len(ids))
	p := 0
	for i, id := range ids {
		for p < len(keys) && keys[p] < id {
			p++
		}
		start := p
		for p < len(keys) && keys[p] == id {
			p++
		}
		runs[i] = [2]int{start, p}
	}
	return runs
}
