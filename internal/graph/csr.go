package graph

import (
	"fmt"
	"slices"
)

// CSR is the Compressed Sparse Row representation discussed in §2.2: two
// flat vectors — an offset vector indexed by dense node index and an edge
// vector sorted by source. It is compact and fast to traverse but static:
// deleting a single edge requires time linear in the total number of edges,
// which is why Ringo adopts the hash-of-nodes design instead. CSR is kept
// here as the ablation baseline for that design choice.
type CSR struct {
	ids    []int64 // dense index -> node id, ascending
	idx    map[int64]int32
	outOff []int64
	outTgt []int32 // dense destination indices, sorted within a source
	inOff  []int64
	inTgt  []int32
}

// FromDirected builds a CSR snapshot of g.
func FromDirected(g *Directed) *CSR {
	ids := g.Nodes()
	c := &CSR{
		ids: ids,
		idx: make(map[int64]int32, len(ids)),
	}
	for i, id := range ids {
		c.idx[id] = int32(i)
	}
	n := len(ids)
	c.outOff = make([]int64, n+1)
	c.inOff = make([]int64, n+1)
	for i, id := range ids {
		c.outOff[i+1] = c.outOff[i] + int64(g.OutDeg(id))
		c.inOff[i+1] = c.inOff[i] + int64(g.InDeg(id))
	}
	c.outTgt = make([]int32, c.outOff[n])
	c.inTgt = make([]int32, c.inOff[n])
	for i, id := range ids {
		at := c.outOff[i]
		for _, dst := range g.OutNeighbors(id) {
			c.outTgt[at] = c.idx[dst]
			at++
		}
		at = c.inOff[i]
		for _, src := range g.InNeighbors(id) {
			c.inTgt[at] = c.idx[src]
			at++
		}
	}
	return c
}

// NumNodes reports the number of nodes.
func (c *CSR) NumNodes() int { return len(c.ids) }

// NumEdges reports the number of directed edges.
func (c *CSR) NumEdges() int64 { return int64(len(c.outTgt)) }

// ID returns the node id at dense index i.
func (c *CSR) ID(i int32) int64 { return c.ids[i] }

// Index returns the dense index of a node id.
func (c *CSR) Index(id int64) (int32, bool) {
	i, ok := c.idx[id]
	return i, ok
}

// OutNeighbors returns the dense destination indices of node i.
func (c *CSR) OutNeighbors(i int32) []int32 {
	return c.outTgt[c.outOff[i]:c.outOff[i+1]]
}

// InNeighbors returns the dense source indices of node i.
func (c *CSR) InNeighbors(i int32) []int32 {
	return c.inTgt[c.inOff[i]:c.inOff[i+1]]
}

// OutDeg returns the out-degree of dense index i.
func (c *CSR) OutDeg(i int32) int { return int(c.outOff[i+1] - c.outOff[i]) }

// InDeg returns the in-degree of dense index i.
func (c *CSR) InDeg(i int32) int { return int(c.inOff[i+1] - c.inOff[i]) }

// HasEdge reports whether src->dst exists (ids, not dense indices).
func (c *CSR) HasEdge(src, dst int64) bool {
	si, ok := c.idx[src]
	if !ok {
		return false
	}
	di, ok := c.idx[dst]
	if !ok {
		return false
	}
	_, found := slices.BinarySearch(c.OutNeighbors(si), di)
	return found
}

// DelEdge removes the edge src->dst by compacting both flat edge vectors —
// deliberately the O(E) operation the paper attributes to CSR maintenance.
// It reports whether the edge existed.
func (c *CSR) DelEdge(src, dst int64) bool {
	si, ok := c.idx[src]
	if !ok {
		return false
	}
	di, ok := c.idx[dst]
	if !ok {
		return false
	}
	rel, found := slices.BinarySearch(c.OutNeighbors(si), di)
	if !found {
		return false
	}
	pos := c.outOff[si] + int64(rel)
	c.outTgt = slices.Delete(c.outTgt, int(pos), int(pos)+1)
	for i := int(si) + 1; i < len(c.outOff); i++ {
		c.outOff[i]--
	}
	rel, _ = slices.BinarySearch(c.InNeighbors(di), si)
	pos = c.inOff[di] + int64(rel)
	c.inTgt = slices.Delete(c.inTgt, int(pos), int(pos)+1)
	for i := int(di) + 1; i < len(c.inOff); i++ {
		c.inOff[i]--
	}
	return true
}

// Bytes estimates the in-memory size of the CSR structure.
func (c *CSR) Bytes() int64 {
	return int64(cap(c.ids))*8 +
		int64(cap(c.outOff)+cap(c.inOff))*8 +
		int64(cap(c.outTgt)+cap(c.inTgt))*4 +
		int64(len(c.idx))*16
}

// Validate checks CSR structural invariants (monotone offsets, in/out edge
// counts equal, targets in range); used by tests and property checks.
func (c *CSR) Validate() error {
	n := len(c.ids)
	if len(c.outOff) != n+1 || len(c.inOff) != n+1 {
		return fmt.Errorf("csr: offset vector length mismatch")
	}
	if c.outOff[n] != int64(len(c.outTgt)) || c.inOff[n] != int64(len(c.inTgt)) {
		return fmt.Errorf("csr: final offset does not match edge vector length")
	}
	if len(c.outTgt) != len(c.inTgt) {
		return fmt.Errorf("csr: out edges %d != in edges %d", len(c.outTgt), len(c.inTgt))
	}
	for i := 0; i < n; i++ {
		if c.outOff[i] > c.outOff[i+1] || c.inOff[i] > c.inOff[i+1] {
			return fmt.Errorf("csr: offsets not monotone at %d", i)
		}
	}
	for _, t := range c.outTgt {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("csr: out target %d out of range", t)
		}
	}
	for _, t := range c.inTgt {
		if t < 0 || int(t) >= n {
			return fmt.Errorf("csr: in target %d out of range", t)
		}
	}
	return nil
}
