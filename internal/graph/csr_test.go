package graph

import (
	"testing"
	"testing/quick"
)

func sampleDirected() *Directed {
	g := NewDirected()
	g.AddEdge(10, 20)
	g.AddEdge(10, 30)
	g.AddEdge(20, 30)
	g.AddEdge(30, 10)
	return g
}

func TestCSRFromDirected(t *testing.T) {
	g := sampleDirected()
	c := FromDirected(g)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.NumNodes() != 3 || c.NumEdges() != 4 {
		t.Fatalf("csr dims = (%d,%d)", c.NumNodes(), c.NumEdges())
	}
	i, ok := c.Index(10)
	if !ok {
		t.Fatal("Index(10) missing")
	}
	if c.OutDeg(i) != 2 || c.InDeg(i) != 1 {
		t.Fatalf("node 10 degrees = (%d,%d)", c.OutDeg(i), c.InDeg(i))
	}
	// Every directed edge is present in CSR.
	g.ForEdges(func(src, dst int64) {
		if !c.HasEdge(src, dst) {
			t.Fatalf("csr lost edge %d->%d", src, dst)
		}
	})
	if c.HasEdge(20, 10) || c.HasEdge(99, 10) {
		t.Fatal("csr invented an edge")
	}
}

func TestCSRNeighborsDense(t *testing.T) {
	g := sampleDirected()
	c := FromDirected(g)
	i, _ := c.Index(10)
	for _, d := range c.OutNeighbors(i) {
		id := c.ID(d)
		if id != 20 && id != 30 {
			t.Fatalf("unexpected neighbor %d", id)
		}
	}
	for _, s := range c.InNeighbors(i) {
		if c.ID(s) != 30 {
			t.Fatalf("unexpected in-neighbor %d", c.ID(s))
		}
	}
}

func TestCSRDelEdge(t *testing.T) {
	g := sampleDirected()
	c := FromDirected(g)
	if !c.DelEdge(10, 20) {
		t.Fatal("DelEdge existing failed")
	}
	if c.DelEdge(10, 20) || c.DelEdge(99, 1) || c.DelEdge(10, 99) {
		t.Fatal("DelEdge of absent edge returned true")
	}
	if c.NumEdges() != 3 || c.HasEdge(10, 20) {
		t.Fatalf("after delete: %d edges", c.NumEdges())
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Remaining edges intact.
	for _, e := range [][2]int64{{10, 30}, {20, 30}, {30, 10}} {
		if !c.HasEdge(e[0], e[1]) {
			t.Fatalf("edge %v lost", e)
		}
	}
}

func TestCSRBytesSmallerThanDynamicGraph(t *testing.T) {
	g := NewDirected()
	for i := int64(0); i < 2000; i++ {
		g.AddEdge(i, (i*7)%2000)
		g.AddEdge(i, (i*13)%2000)
	}
	c := FromDirected(g)
	if c.Bytes() >= g.Bytes() {
		t.Fatalf("CSR (%d bytes) not smaller than dynamic graph (%d bytes)", c.Bytes(), g.Bytes())
	}
}

// Property: CSR round-trips the edge set of any directed graph.
func TestCSRRoundTripProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		g := NewDirected()
		for _, e := range edges {
			g.AddEdge(int64(e[0]%16), int64(e[1]%16))
		}
		c := FromDirected(g)
		if c.Validate() != nil {
			return false
		}
		if int64(c.NumEdges()) != g.NumEdges() || c.NumNodes() != g.NumNodes() {
			return false
		}
		ok := true
		g.ForEdges(func(src, dst int64) {
			if !c.HasEdge(src, dst) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
