package graph

import (
	"slices"

	"ringo/internal/par"
)

// ReservedNodeID is the node id reserved for tombstoned slots; AddNode
// panics on it, and hosts that accept ids from user input (the shell's
// addnode/addedge verbs) reject it up front.
const ReservedNodeID = tombstone

// DeltaOp enumerates the mutations a graph delta log records. Node
// deletion is deliberately absent: the incremental tier only grows or
// rewires the node set, which keeps every cached view's node universe a
// subset of the live graph's and makes patching a pure merge.
type DeltaOp uint8

const (
	// DeltaAddNode records an isolated-node insertion (Src is the id).
	DeltaAddNode DeltaOp = iota
	// DeltaAddEdge records an edge insertion Src->Dst (endpoints created
	// as needed, exactly like Directed.AddEdge / Undirected.AddEdge).
	DeltaAddEdge
	// DeltaDelEdge records an edge deletion Src->Dst.
	DeltaDelEdge
)

// Delta is one recorded mutation. For DeltaAddNode only Src is meaningful.
type Delta struct {
	Op       DeltaOp
	Src, Dst int64
}

// PatchView produces the CSR view of the current graph state by patching a
// base view with a batch of deltas, instead of rebuilding from scratch: a
// sorted overlay of net adjacency changes is merged with the base arena in
// one parallel pass, so the cost is a flat O(V+E) copy plus work
// proportional to the touched adjacency lists — no hashing, no re-sort.
//
// The caller describes the *current* graph through the hasNode/hasEdge
// callbacks; deltas only tell the patch which pairs to re-examine, so the
// batch may contain duplicates, cancelling add/delete pairs, self-loops
// and deletions of edges that never existed — the result depends only on
// the current graph. The one precondition is that the base view's node set
// is a subset of the current graph's (no node was deleted since the base
// was built); that is exactly the invariant the delta ops can express.
//
// The result is equivalent to BuildView of the current graph — the full
// build stays as both fallback and oracle (see TestPatchViewMatchesRebuild
// and FuzzIncrementalView).
func PatchView(base *View, hasNode func(int64) bool, hasEdge func(src, dst int64) bool, deltas []Delta) *View {
	type pair struct{ s, d int64 }
	pairs := make(map[pair]struct{}, len(deltas))
	touched := make(map[int64]struct{}, len(deltas))
	for _, d := range deltas {
		touched[d.Src] = struct{}{}
		if d.Op != DeltaAddNode {
			touched[d.Dst] = struct{}{}
			pairs[pair{d.Src, d.Dst}] = struct{}{}
		}
	}

	ids, oldToNew, newToOld, newIdx := mergeIDs(base.ids, base.Index, hasNode, touched)
	n := len(ids)
	index := func(id int64) int32 {
		if i, ok := base.Index(id); ok {
			return oldToNew[i]
		}
		return newIdx[id]
	}

	// Net changes per direction, in the new dense space. An edge is a net
	// add iff it exists now but not in the base, a net delete iff the
	// reverse — order- and duplicate-independent.
	addOut := map[int32][]int32{}
	delOut := map[int32][]int32{}
	addIn := map[int32][]int32{}
	delIn := map[int32][]int32{}
	for p := range pairs {
		cur := hasEdge(p.s, p.d)
		inBase := false
		if si, ok := base.Index(p.s); ok {
			if di, ok := base.Index(p.d); ok {
				_, inBase = slices.BinarySearch(base.Out(si), di)
			}
		}
		if cur == inBase {
			continue
		}
		ns, nd := index(p.s), index(p.d)
		if cur {
			addOut[ns] = append(addOut[ns], nd)
			addIn[nd] = append(addIn[nd], ns)
		} else {
			delOut[ns] = append(delOut[ns], nd)
			delIn[nd] = append(delIn[nd], ns)
		}
	}
	for _, m := range []map[int32][]int32{addOut, delOut, addIn, delIn} {
		for _, l := range m {
			slices.Sort(l)
		}
	}

	v := &View{ids: ids}
	v.outOff = make([]int64, n+1)
	v.inOff = make([]int64, n+1)
	for i := 0; i < n; i++ {
		var od, id int
		if o := newToOld[i]; o >= 0 {
			od = base.OutDeg(o)
			id = base.InDeg(o)
		}
		od += len(addOut[int32(i)]) - len(delOut[int32(i)])
		id += len(addIn[int32(i)]) - len(delIn[int32(i)])
		v.outOff[i+1] = v.outOff[i] + int64(od)
		v.inOff[i+1] = v.inOff[i] + int64(id)
	}
	e := v.outOff[n]
	v.arena = make([]int32, e+v.inOff[n])
	v.out = v.arena[:e:e]
	v.in = v.arena[e:]

	par.Do(
		func() {
			v.idx = make(map[int64]int32, n)
			for i, id := range ids {
				v.idx[id] = int32(i)
			}
		},
		func() { patchAdj(n, v.out, v.outOff, newToOld, oldToNew, base.Out, addOut, delOut) },
		func() { patchAdj(n, v.in, v.inOff, newToOld, oldToNew, base.In, addIn, delIn) },
	)
	return v
}

// PatchUView is PatchView for undirected views. hasEdge must be symmetric
// in its arguments (for the undirected projection of a directed graph,
// pass the closure over both orientations).
func PatchUView(base *UView, hasNode func(int64) bool, hasEdge func(a, b int64) bool, deltas []Delta) *UView {
	type pair struct{ a, b int64 }
	canon := func(a, b int64) pair {
		if a > b {
			a, b = b, a
		}
		return pair{a, b}
	}
	pairs := make(map[pair]struct{}, len(deltas))
	touched := make(map[int64]struct{}, len(deltas))
	for _, d := range deltas {
		touched[d.Src] = struct{}{}
		if d.Op != DeltaAddNode {
			touched[d.Dst] = struct{}{}
			pairs[canon(d.Src, d.Dst)] = struct{}{}
		}
	}

	ids, oldToNew, newToOld, newIdx := mergeIDs(base.ids, base.Index, hasNode, touched)
	n := len(ids)
	index := func(id int64) int32 {
		if i, ok := base.Index(id); ok {
			return oldToNew[i]
		}
		return newIdx[id]
	}

	add := map[int32][]int32{}
	del := map[int32][]int32{}
	for p := range pairs {
		cur := hasEdge(p.a, p.b)
		inBase := false
		if ai, ok := base.Index(p.a); ok {
			if bi, ok := base.Index(p.b); ok {
				_, inBase = slices.BinarySearch(base.Adj(ai), bi)
			}
		}
		if cur == inBase {
			continue
		}
		na, nb := index(p.a), index(p.b)
		m := add
		if !cur {
			m = del
		}
		// A self-loop appears once in its node's adjacency, like
		// Undirected.AddEdge inserts it.
		m[na] = append(m[na], nb)
		if na != nb {
			m[nb] = append(m[nb], na)
		}
	}
	for _, m := range []map[int32][]int32{add, del} {
		for _, l := range m {
			slices.Sort(l)
		}
	}

	v := &UView{ids: ids}
	v.off = make([]int64, n+1)
	for i := 0; i < n; i++ {
		var deg int
		if o := newToOld[i]; o >= 0 {
			deg = base.Deg(o)
		}
		deg += len(add[int32(i)]) - len(del[int32(i)])
		v.off[i+1] = v.off[i] + int64(deg)
	}
	v.arena = make([]int32, v.off[n])

	par.Do(
		func() {
			v.idx = make(map[int64]int32, n)
			for i, id := range ids {
				v.idx[id] = int32(i)
			}
		},
		func() { patchAdj(n, v.arena, v.off, newToOld, oldToNew, base.Adj, add, del) },
	)
	return v
}

// mergeIDs merges the base id vector with the touched ids that are new to
// it (present in the current graph, absent from the base), returning the
// merged ascending id vector plus the dense-index translations both ways
// (newToOld is -1 for freshly added nodes) and the dense index of each new
// id.
func mergeIDs(baseIDs []int64, baseIndex func(int64) (int32, bool), hasNode func(int64) bool, touched map[int64]struct{}) (ids []int64, oldToNew, newToOld []int32, newIdx map[int64]int32) {
	var newIDs []int64
	for id := range touched {
		if !hasNode(id) {
			continue
		}
		if _, ok := baseIndex(id); !ok {
			newIDs = append(newIDs, id)
		}
	}
	slices.Sort(newIDs)

	oldN := len(baseIDs)
	n := oldN + len(newIDs)
	ids = make([]int64, 0, n)
	oldToNew = make([]int32, oldN)
	newToOld = make([]int32, n)
	newIdx = make(map[int64]int32, len(newIDs))
	i, j := 0, 0
	for len(ids) < n {
		if j >= len(newIDs) || (i < oldN && baseIDs[i] < newIDs[j]) {
			oldToNew[i] = int32(len(ids))
			newToOld[len(ids)] = int32(i)
			ids = append(ids, baseIDs[i])
			i++
		} else {
			newIdx[newIDs[j]] = int32(len(ids))
			newToOld[len(ids)] = -1
			ids = append(ids, newIDs[j])
			j++
		}
	}
	return ids, oldToNew, newToOld, newIdx
}

// patchAdj fills one adjacency half of a patched view in parallel: nodes
// with no pending changes translate their base list through the dense-index
// shift; touched nodes merge the translated base list with the sorted add
// overlay while skipping deletes; fresh nodes copy their adds. Translation
// preserves sort order because oldToNew is strictly increasing.
func patchAdj(n int, dst []int32, off []int64, newToOld, oldToNew []int32, baseAdj func(int32) []int32, adds, dels map[int32][]int32) {
	par.ForEach(n, func(i int) {
		at := off[i]
		a := adds[int32(i)]
		d := dels[int32(i)]
		o := newToOld[i]
		if o < 0 {
			copy(dst[at:], a)
			return
		}
		src := baseAdj(o)
		if len(a) == 0 && len(d) == 0 {
			for _, x := range src {
				dst[at] = oldToNew[x]
				at++
			}
			return
		}
		ai, di := 0, 0
		for _, x := range src {
			nx := oldToNew[x]
			for ai < len(a) && a[ai] < nx {
				dst[at] = a[ai]
				at++
				ai++
			}
			if di < len(d) && d[di] == nx {
				di++
				continue
			}
			dst[at] = nx
			at++
		}
		for ; ai < len(a); ai++ {
			dst[at] = a[ai]
			at++
		}
	})
}
