package graph

import (
	"fmt"
	"math/rand"
	"testing"
)

// directedDeltaClosures binds the patch callbacks to a live directed graph.
func directedDeltaClosures(g *Directed) (func(int64) bool, func(int64, int64) bool) {
	return g.HasNode, g.HasEdge
}

// projectionClosures are the callbacks for patching the undirected
// projection of a directed graph: an undirected edge exists when either
// orientation does.
func projectionClosures(g *Directed) (func(int64) bool, func(int64, int64) bool) {
	return g.HasNode, func(a, b int64) bool { return g.HasEdge(a, b) || g.HasEdge(b, a) }
}

func sameView(a, b *View) error {
	if a.NumNodes() != b.NumNodes() {
		return fmt.Errorf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i, id := range a.IDs() {
		if b.IDs()[i] != id {
			return fmt.Errorf("id at dense %d differs: %d vs %d", i, id, b.IDs()[i])
		}
	}
	for u := int32(0); int(u) < a.NumNodes(); u++ {
		ao, bo := a.Out(u), b.Out(u)
		if len(ao) != len(bo) {
			return fmt.Errorf("out-degree of %d differs: %d vs %d", a.ID(u), len(ao), len(bo))
		}
		for i := range ao {
			if ao[i] != bo[i] {
				return fmt.Errorf("out list of %d differs at %d: %d vs %d", a.ID(u), i, ao[i], bo[i])
			}
		}
		ai, bi := a.In(u), b.In(u)
		if len(ai) != len(bi) {
			return fmt.Errorf("in-degree of %d differs: %d vs %d", a.ID(u), len(ai), len(bi))
		}
		for i := range ai {
			if ai[i] != bi[i] {
				return fmt.Errorf("in list of %d differs at %d: %d vs %d", a.ID(u), i, ai[i], bi[i])
			}
		}
	}
	return nil
}

func sameUView(a, b *UView) error {
	if a.NumNodes() != b.NumNodes() {
		return fmt.Errorf("node counts differ: %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i, id := range a.IDs() {
		if b.IDs()[i] != id {
			return fmt.Errorf("id at dense %d differs: %d vs %d", i, id, b.IDs()[i])
		}
	}
	for u := int32(0); int(u) < a.NumNodes(); u++ {
		aa, ba := a.Adj(u), b.Adj(u)
		if len(aa) != len(ba) {
			return fmt.Errorf("degree of %d differs: %d vs %d", a.ID(u), len(aa), len(ba))
		}
		for i := range aa {
			if aa[i] != ba[i] {
				return fmt.Errorf("adj list of %d differs at %d: %d vs %d", a.ID(u), i, aa[i], ba[i])
			}
		}
	}
	return nil
}

// deltaTestShapes builds the graph shapes the oracle suite mutates: a
// G(n,m) random graph, a ring, a star, isolated nodes, and a graph with
// tombstoned slots (nodes deleted before the base view is taken).
func deltaTestShapes(rng *rand.Rand) map[string]*Directed {
	gnm := NewDirected()
	for i := 0; i < 120; i++ {
		gnm.AddEdge(rng.Int63n(40), rng.Int63n(40))
	}
	ring := NewDirected()
	for i := int64(0); i < 30; i++ {
		ring.AddEdge(i, (i+1)%30)
	}
	star := NewDirected()
	for i := int64(1); i <= 25; i++ {
		star.AddEdge(0, i)
	}
	isolated := NewDirected()
	for i := int64(0); i < 20; i++ {
		isolated.AddNode(i * 10)
	}
	isolated.AddEdge(0, 10)
	tombstoned := NewDirected()
	for i := int64(0); i < 40; i++ {
		tombstoned.AddEdge(i, (i*7)%40)
	}
	for i := int64(0); i < 40; i += 3 {
		tombstoned.DelNode(i)
	}
	return map[string]*Directed{
		"gnm": gnm, "ring": ring, "star": star,
		"isolated": isolated, "tombstoned": tombstoned,
	}
}

// randomDelta applies one random mutation to g and returns its delta
// record; ok is false when the mutation was a no-op (nothing to log).
func randomDelta(rng *rand.Rand, g *Directed, idSpace int64) (Delta, bool) {
	switch rng.Intn(10) {
	case 0:
		id := rng.Int63n(idSpace)
		return Delta{Op: DeltaAddNode, Src: id}, g.AddNode(id)
	case 1, 2, 3:
		// Delete a random existing edge when there is one.
		var src, dst int64
		found := false
		g.ForEdges(func(s, d int64) {
			if !found && rng.Intn(4) == 0 {
				src, dst, found = s, d, true
			}
		})
		if !found {
			return Delta{}, false
		}
		g.DelEdge(src, dst)
		return Delta{Op: DeltaDelEdge, Src: src, Dst: dst}, true
	default:
		s, d := rng.Int63n(idSpace), rng.Int63n(idSpace)
		return Delta{Op: DeltaAddEdge, Src: s, Dst: d}, g.AddEdge(s, d)
	}
}

// TestPatchViewMatchesRebuild is the graph-level oracle: across every
// shape, random mutation batches patched onto the base view must be
// structurally identical to a from-scratch build of the mutated graph —
// for both orientations, including the undirected projection.
func TestPatchViewMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, g := range deltaTestShapes(rng) {
		t.Run(name, func(t *testing.T) {
			for round := 0; round < 8; round++ {
				base := BuildView(g)
				ubase := BuildUView(AsUndirected(g))
				var deltas []Delta
				for i := 0; i < 1+rng.Intn(12); i++ {
					if d, ok := randomDelta(rng, g, 60); ok {
						deltas = append(deltas, d)
					}
				}
				hasNode, hasEdge := directedDeltaClosures(g)
				patched := PatchView(base, hasNode, hasEdge, deltas)
				if err := sameView(patched, BuildView(g)); err != nil {
					t.Fatalf("round %d: patched directed view diverges: %v", round, err)
				}
				_, uHasEdge := projectionClosures(g)
				upatched := PatchUView(ubase, hasNode, uHasEdge, deltas)
				if err := sameUView(upatched, BuildUView(AsUndirected(g))); err != nil {
					t.Fatalf("round %d: patched undirected view diverges: %v", round, err)
				}
			}
		})
	}
}

// TestPatchUViewUndirectedGraph patches views of a native undirected
// graph, exercising the self-loop single-entry convention.
func TestPatchUViewUndirectedGraph(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(4, 4)
	base := BuildUView(g)

	g.AddEdge(3, 3) // new self-loop
	g.DelEdge(4, 4) // delete a self-loop
	g.AddEdge(2, 1) // duplicate of {1,2} in the other order: no-op
	g.AddEdge(5, 1) // new node
	g.DelEdge(9, 9) // unknown ids: no-op
	deltas := []Delta{
		{Op: DeltaAddEdge, Src: 3, Dst: 3},
		{Op: DeltaDelEdge, Src: 4, Dst: 4},
		{Op: DeltaAddEdge, Src: 2, Dst: 1},
		{Op: DeltaAddEdge, Src: 5, Dst: 1},
		{Op: DeltaDelEdge, Src: 9, Dst: 9},
	}
	patched := PatchUView(base, g.HasNode, g.HasEdge, deltas)
	if err := sameUView(patched, BuildUView(g)); err != nil {
		t.Fatalf("patched undirected view diverges: %v", err)
	}
}

// TestPatchViewNoiseTolerance feeds the patch deltas that never changed
// the graph (duplicates, deletes of absent edges, unknown ids) plus
// cancelling add/delete pairs: the patch must reproduce the rebuild
// regardless, because only the current graph state decides the output.
func TestPatchViewNoiseTolerance(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	base := BuildView(g)

	// Add then delete 3->1: net no-op, but both deltas are in the batch.
	g.AddEdge(3, 1)
	g.DelEdge(3, 1)
	g.AddEdge(1, 1)
	deltas := []Delta{
		{Op: DeltaAddEdge, Src: 3, Dst: 1},
		{Op: DeltaDelEdge, Src: 3, Dst: 1},
		{Op: DeltaAddEdge, Src: 1, Dst: 1},
		{Op: DeltaAddEdge, Src: 1, Dst: 1}, // duplicate
		{Op: DeltaDelEdge, Src: 7, Dst: 8}, // unknown ids
		{Op: DeltaAddNode, Src: 2},         // already present
	}
	patched := PatchView(base, g.HasNode, g.HasEdge, deltas)
	if err := sameView(patched, BuildView(g)); err != nil {
		t.Fatalf("patched view diverges under noisy deltas: %v", err)
	}
}

// TestPatchViewEmptyBase patches from an empty base view: every node and
// edge arrives through the overlay.
func TestPatchViewEmptyBase(t *testing.T) {
	g := NewDirected()
	base := BuildView(g)
	g.AddEdge(5, 6)
	g.AddNode(7)
	deltas := []Delta{
		{Op: DeltaAddEdge, Src: 5, Dst: 6},
		{Op: DeltaAddNode, Src: 7},
	}
	patched := PatchView(base, g.HasNode, g.HasEdge, deltas)
	if err := sameView(patched, BuildView(g)); err != nil {
		t.Fatalf("patched view diverges from empty base: %v", err)
	}
}

// FuzzIncrementalView interprets the fuzz input as a byte-encoded mutation
// script — add/delete edges, add nodes, with ids drawn from a small space
// so duplicates, self-loops and unknown-id deletes occur constantly — and
// checks the patched view against the sequential rebuild oracle after
// every scripted snapshot point and at the end, for the directed view and
// the undirected projection alike.
func FuzzIncrementalView(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 1, 2, 0x01, 1, 2, 0x02, 3, 3})
	f.Add([]byte{0x03, 0x00, 5, 5, 0x03, 0x01, 5, 5})
	f.Add([]byte{0x00, 200, 200, 0x00, 1, 200, 0x01, 200, 200, 0x03})
	f.Fuzz(func(t *testing.T, script []byte) {
		if len(script) > 1<<12 {
			t.Skip("outsized script")
		}
		g := NewDirected()
		g.AddEdge(1, 2) // seed so early deletes can hit something
		base := BuildView(g)
		ubase := BuildUView(AsUndirected(g))
		var deltas []Delta

		check := func() {
			hasNode, hasEdge := directedDeltaClosures(g)
			if err := sameView(PatchView(base, hasNode, hasEdge, deltas), BuildView(g)); err != nil {
				t.Fatalf("directed patch diverges from rebuild: %v", err)
			}
			_, uHasEdge := projectionClosures(g)
			if err := sameUView(PatchUView(ubase, hasNode, uHasEdge, deltas), BuildUView(AsUndirected(g))); err != nil {
				t.Fatalf("undirected patch diverges from rebuild: %v", err)
			}
		}

		for i := 0; i+1 <= len(script); {
			op := script[i] % 4
			switch op {
			case 3: // snapshot point: verify, then rebase the patch window
				check()
				base = BuildView(g)
				ubase = BuildUView(AsUndirected(g))
				deltas = deltas[:0]
				i++
			default:
				if i+3 > len(script) {
					i = len(script)
					break
				}
				src := int64(script[i+1] % 23)
				dst := int64(script[i+2] % 23)
				i += 3
				switch op {
				case 0:
					if g.AddEdge(src, dst) {
						deltas = append(deltas, Delta{Op: DeltaAddEdge, Src: src, Dst: dst})
					}
				case 1:
					if g.DelEdge(src, dst) {
						deltas = append(deltas, Delta{Op: DeltaDelEdge, Src: src, Dst: dst})
					}
				case 2:
					if g.AddNode(src) {
						deltas = append(deltas, Delta{Op: DeltaAddNode, Src: src})
					}
				}
			}
		}
		check()
	})
}

// BenchmarkViewPatch measures patching a small delta batch onto a base
// view against the full rebuild it replaces.
func BenchmarkViewPatch(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	g := NewDirected()
	for i := 0; i < 200000; i++ {
		g.AddEdge(rng.Int63n(50000), rng.Int63n(50000))
	}
	base := BuildView(g)
	var deltas []Delta
	for len(deltas) < 64 {
		if d, ok := randomDelta(rng, g, 50000); ok {
			deltas = append(deltas, d)
		}
	}
	hasNode, hasEdge := directedDeltaClosures(g)
	b.Run("patch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			PatchView(base, hasNode, hasEdge, deltas)
		}
	})
	b.Run("rebuild", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			BuildView(g)
		}
	})
}
