// Package graph implements Ringo's in-memory graph objects (§2.2 of Perez
// et al., SIGMOD 2015). The primary representation is dynamic: a hash table
// of nodes where each node maintains sorted adjacency vectors of neighboring
// node ids. Updates are cheap (deleting an edge is linear in the node
// degree, not in the graph size), while sorted vectors keep neighborhood
// scans and membership tests fast. The package also provides an undirected
// variant, a multigraph with typed attributes (Network), and the static
// Compressed Sparse Row representation the paper contrasts against.
package graph

import (
	"fmt"
	"math"
	"slices"
)

// tombstone marks a freed node slot.
const tombstone = math.MinInt64

// Directed is a dynamic directed graph: a hash table keyed by node id where
// each node holds two sorted adjacency vectors (in-neighbors and
// out-neighbors). Parallel edges are not stored; self-loops are allowed.
// Directed is safe for concurrent readers; mutations require external
// synchronization.
type Directed struct {
	idx    map[int64]int32
	ids    []int64 // slot -> node id, tombstone when freed
	inAdj  [][]int64
	outAdj [][]int64
	free   []int32
	nEdges int64
}

// NewDirected returns an empty directed graph.
func NewDirected() *Directed {
	return NewDirectedCap(0)
}

// NewDirectedCap returns an empty directed graph preallocated for n nodes.
func NewDirectedCap(n int) *Directed {
	return &Directed{
		idx:    make(map[int64]int32, n),
		ids:    make([]int64, 0, n),
		inAdj:  make([][]int64, 0, n),
		outAdj: make([][]int64, 0, n),
	}
}

// NumNodes reports the number of nodes.
func (g *Directed) NumNodes() int { return len(g.idx) }

// NumEdges reports the number of directed edges.
func (g *Directed) NumEdges() int64 { return g.nEdges }

// HasNode reports whether id is a node of the graph.
func (g *Directed) HasNode(id int64) bool {
	_, ok := g.idx[id]
	return ok
}

// AddNode adds a node and reports whether it was newly added.
func (g *Directed) AddNode(id int64) bool {
	if id == tombstone {
		panic("graph: node id reserved")
	}
	if _, ok := g.idx[id]; ok {
		return false
	}
	var slot int32
	if n := len(g.free); n > 0 {
		slot = g.free[n-1]
		g.free = g.free[:n-1]
		g.ids[slot] = id
		g.inAdj[slot] = nil
		g.outAdj[slot] = nil
	} else {
		slot = int32(len(g.ids))
		g.ids = append(g.ids, id)
		g.inAdj = append(g.inAdj, nil)
		g.outAdj = append(g.outAdj, nil)
	}
	g.idx[id] = slot
	return true
}

// DelNode removes a node and all incident edges. It reports whether the
// node existed. Cost is proportional to the degrees of the node's
// neighbors, not to the size of the graph.
func (g *Directed) DelNode(id int64) bool {
	slot, ok := g.idx[id]
	if !ok {
		return false
	}
	for _, dst := range g.outAdj[slot] {
		if dst == id {
			continue // self-loop handled below
		}
		ds := g.idx[dst]
		g.inAdj[ds] = removeSorted(g.inAdj[ds], id)
	}
	g.nEdges -= int64(len(g.outAdj[slot]))
	for _, src := range g.inAdj[slot] {
		if src == id {
			continue
		}
		ss := g.idx[src]
		g.outAdj[ss] = removeSorted(g.outAdj[ss], id)
		g.nEdges--
	}
	// A self-loop was counted once in outAdj; the inAdj loop above skipped
	// it, so the accounting is already correct.
	g.ids[slot] = tombstone
	g.inAdj[slot] = nil
	g.outAdj[slot] = nil
	g.free = append(g.free, slot)
	delete(g.idx, id)
	return true
}

// AddEdge adds the directed edge src->dst, creating missing endpoints, and
// reports whether the edge was newly added. Insertion keeps both adjacency
// vectors sorted (binary search + insert, linear in node degree).
func (g *Directed) AddEdge(src, dst int64) bool {
	g.AddNode(src)
	g.AddNode(dst)
	ss := g.idx[src]
	pos, found := slices.BinarySearch(g.outAdj[ss], dst)
	if found {
		return false
	}
	g.outAdj[ss] = slices.Insert(g.outAdj[ss], pos, dst)
	ds := g.idx[dst]
	pos, _ = slices.BinarySearch(g.inAdj[ds], src)
	g.inAdj[ds] = slices.Insert(g.inAdj[ds], pos, src)
	g.nEdges++
	return true
}

// DelEdge removes the edge src->dst and reports whether it existed. Cost is
// linear in the degrees of the two endpoints — the dynamic-graph property
// the paper contrasts with CSR's O(E) single-edge deletion.
func (g *Directed) DelEdge(src, dst int64) bool {
	ss, ok := g.idx[src]
	if !ok {
		return false
	}
	ds, ok := g.idx[dst]
	if !ok {
		return false
	}
	if _, found := slices.BinarySearch(g.outAdj[ss], dst); !found {
		return false
	}
	g.outAdj[ss] = removeSorted(g.outAdj[ss], dst)
	g.inAdj[ds] = removeSorted(g.inAdj[ds], src)
	g.nEdges--
	return true
}

// HasEdge reports whether the edge src->dst exists (binary search on the
// source's sorted out-vector).
func (g *Directed) HasEdge(src, dst int64) bool {
	ss, ok := g.idx[src]
	if !ok {
		return false
	}
	_, found := slices.BinarySearch(g.outAdj[ss], dst)
	return found
}

// OutDeg returns the out-degree of id (0 for absent nodes).
func (g *Directed) OutDeg(id int64) int {
	if s, ok := g.idx[id]; ok {
		return len(g.outAdj[s])
	}
	return 0
}

// InDeg returns the in-degree of id (0 for absent nodes).
func (g *Directed) InDeg(id int64) int {
	if s, ok := g.idx[id]; ok {
		return len(g.inAdj[s])
	}
	return 0
}

// OutNeighbors returns the sorted out-neighbor ids of id. The slice is the
// graph's own storage: callers must not modify it and must not hold it
// across mutations.
func (g *Directed) OutNeighbors(id int64) []int64 {
	if s, ok := g.idx[id]; ok {
		return g.outAdj[s]
	}
	return nil
}

// InNeighbors returns the sorted in-neighbor ids of id (see OutNeighbors
// for aliasing rules).
func (g *Directed) InNeighbors(id int64) []int64 {
	if s, ok := g.idx[id]; ok {
		return g.inAdj[s]
	}
	return nil
}

// Nodes returns all node ids in ascending order (a fresh slice).
func (g *Directed) Nodes() []int64 {
	out := make([]int64, 0, len(g.idx))
	for id := range g.idx {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// ForNodes calls fn for every node id, in unspecified order.
func (g *Directed) ForNodes(fn func(id int64)) {
	for _, id := range g.ids {
		if id != tombstone {
			fn(id)
		}
	}
}

// ForEdges calls fn for every directed edge, in unspecified node order but
// sorted destination order within a source.
func (g *Directed) ForEdges(fn func(src, dst int64)) {
	for s, id := range g.ids {
		if id == tombstone {
			continue
		}
		for _, dst := range g.outAdj[s] {
			fn(id, dst)
		}
	}
}

// NumSlots reports the size of the internal slot space; slots in
// [0, NumSlots) either hold a node or are tombstones. Algorithms use the
// slot space to build dense per-node arrays without hashing.
func (g *Directed) NumSlots() int { return len(g.ids) }

// IDAtSlot returns the node id at a slot, or false for tombstones.
func (g *Directed) IDAtSlot(s int) (int64, bool) {
	id := g.ids[s]
	return id, id != tombstone
}

// SlotOf returns the slot of a node id.
func (g *Directed) SlotOf(id int64) (int, bool) {
	s, ok := g.idx[id]
	return int(s), ok
}

// OutAtSlot returns the sorted out-neighbors of the node at slot s.
func (g *Directed) OutAtSlot(s int) []int64 { return g.outAdj[s] }

// InAtSlot returns the sorted in-neighbors of the node at slot s.
func (g *Directed) InAtSlot(s int) []int64 { return g.inAdj[s] }

// setAdjBulk installs pre-sorted adjacency vectors for a node created by
// the bulk builder. It trusts the caller (internal/conv) to pass vectors
// that are sorted and duplicate-free.
func (g *Directed) setAdjBulk(id int64, in, out []int64) {
	s := g.idx[id]
	g.inAdj[s] = in
	g.outAdj[s] = out
	g.nEdges += int64(len(out))
}

// BuildDirectedBulk assembles a directed graph from per-node pre-sorted
// adjacency vectors. ids must be duplicate-free, and in/out[i] must be the
// sorted, duplicate-free neighbor vectors of ids[i]; the total edge count
// is taken from the out-vectors. The vectors are adopted, not copied. This
// is the fast path used by the sort-first table-to-graph conversion.
func BuildDirectedBulk(ids []int64, in, out [][]int64) (*Directed, error) {
	if len(ids) != len(in) || len(ids) != len(out) {
		return nil, fmt.Errorf("graph: bulk build length mismatch: %d ids, %d in, %d out",
			len(ids), len(in), len(out))
	}
	g := NewDirectedCap(len(ids))
	for _, id := range ids {
		if !g.AddNode(id) {
			return nil, fmt.Errorf("graph: bulk build duplicate node %d", id)
		}
	}
	for i, id := range ids {
		g.setAdjBulk(id, in[i], out[i])
	}
	return g, nil
}

// Clone returns a deep copy of the graph.
func (g *Directed) Clone() *Directed {
	out := NewDirectedCap(len(g.idx))
	for id, s := range g.idx {
		out.AddNode(id)
		out.setAdjBulk(id, slices.Clone(g.inAdj[s]), slices.Clone(g.outAdj[s]))
	}
	return out
}

// Bytes estimates the in-memory size of the graph: adjacency vector
// storage, slot bookkeeping, and hash-table entries. This is the quantity
// reported as "In-memory Graph Size" in Table 2.
func (g *Directed) Bytes() int64 {
	var b int64
	for s := range g.ids {
		b += int64(cap(g.inAdj[s])+cap(g.outAdj[s])) * 8
		b += 2 * 24 // slice headers
	}
	b += int64(cap(g.ids)) * 8
	b += int64(cap(g.free)) * 4
	b += int64(len(g.idx)) * 16 // map entries: key + slot + bucket overhead
	return b
}

// removeSorted deletes v from the sorted slice a, preserving order.
func removeSorted(a []int64, v int64) []int64 {
	pos, found := slices.BinarySearch(a, v)
	if !found {
		return a
	}
	return slices.Delete(a, pos, pos+1)
}
