package graph

import (
	"testing"
	"testing/quick"
)

func TestDirectedAddNodesEdges(t *testing.T) {
	g := NewDirected()
	if !g.AddNode(1) || g.AddNode(1) {
		t.Fatal("AddNode idempotence broken")
	}
	if !g.AddEdge(1, 2) {
		t.Fatal("AddEdge new edge returned false")
	}
	if g.AddEdge(1, 2) {
		t.Fatal("duplicate edge accepted")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 1 {
		t.Fatalf("dims = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || g.HasEdge(2, 1) {
		t.Fatal("HasEdge direction wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedAdjacencySorted(t *testing.T) {
	g := NewDirected()
	for _, dst := range []int64{5, 1, 9, 3, 7} {
		g.AddEdge(0, dst)
	}
	adj := g.OutNeighbors(0)
	want := []int64{1, 3, 5, 7, 9}
	for i, v := range adj {
		if v != want[i] {
			t.Fatalf("out-neighbors = %v, want %v", adj, want)
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedDegrees(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if g.OutDeg(1) != 2 || g.InDeg(1) != 0 {
		t.Fatalf("node 1 degrees = (%d,%d)", g.OutDeg(1), g.InDeg(1))
	}
	if g.OutDeg(3) != 0 || g.InDeg(3) != 2 {
		t.Fatalf("node 3 degrees = (%d,%d)", g.OutDeg(3), g.InDeg(3))
	}
	if g.OutDeg(99) != 0 || g.InDeg(99) != 0 {
		t.Fatal("absent node has nonzero degree")
	}
}

func TestDirectedDelEdge(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	if !g.DelEdge(1, 2) {
		t.Fatal("DelEdge existing returned false")
	}
	if g.DelEdge(1, 2) || g.DelEdge(5, 6) {
		t.Fatal("DelEdge missing returned true")
	}
	if g.NumEdges() != 1 || g.HasEdge(1, 2) {
		t.Fatal("edge not removed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedDelNodeRemovesIncidentEdges(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 2)
	g.AddEdge(2, 2) // self-loop
	if !g.DelNode(2) {
		t.Fatal("DelNode existing returned false")
	}
	if g.DelNode(2) {
		t.Fatal("DelNode twice returned true")
	}
	if g.NumNodes() != 2 || g.NumEdges() != 0 {
		t.Fatalf("after DelNode: (%d nodes, %d edges)", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Freed slot is reused without corruption.
	g.AddEdge(10, 1)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 {
		t.Fatalf("nodes after reuse = %d", g.NumNodes())
	}
}

func TestDirectedSelfLoop(t *testing.T) {
	g := NewDirected()
	g.AddEdge(7, 7)
	if g.NumEdges() != 1 || !g.HasEdge(7, 7) {
		t.Fatal("self-loop not stored")
	}
	if g.OutDeg(7) != 1 || g.InDeg(7) != 1 {
		t.Fatalf("self-loop degrees = (%d,%d)", g.OutDeg(7), g.InDeg(7))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.DelEdge(7, 7) || g.NumEdges() != 0 {
		t.Fatal("self-loop not deleted")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedNodesSorted(t *testing.T) {
	g := NewDirected()
	for _, id := range []int64{42, 7, 100, -3} {
		g.AddNode(id)
	}
	nodes := g.Nodes()
	for i := 1; i < len(nodes); i++ {
		if nodes[i-1] >= nodes[i] {
			t.Fatalf("Nodes() not sorted: %v", nodes)
		}
	}
}

func TestDirectedForEdges(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 1)
	g.AddEdge(1, 3)
	count := 0
	g.ForEdges(func(src, dst int64) { count++ })
	if count != 3 {
		t.Fatalf("ForEdges visited %d", count)
	}
}

func TestDirectedClone(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(2, 3)
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatal("clone not independent")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDirectedBulkBuild(t *testing.T) {
	ids := []int64{10, 20, 30}
	in := [][]int64{nil, {10}, {10, 20}}
	out := [][]int64{{20, 30}, {30}, nil}
	g, err := BuildDirectedBulk(ids, in, out)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 3 {
		t.Fatalf("bulk dims = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildDirectedBulk([]int64{1, 1}, make([][]int64, 2), make([][]int64, 2)); err == nil {
		t.Fatal("duplicate ids accepted")
	}
	if _, err := BuildDirectedBulk([]int64{1}, nil, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestDirectedBytesScalesWithEdges(t *testing.T) {
	small := NewDirected()
	small.AddEdge(1, 2)
	big := NewDirected()
	for i := int64(0); i < 1000; i++ {
		big.AddEdge(i, i+1)
	}
	if big.Bytes() <= small.Bytes() {
		t.Fatal("Bytes not monotone in size")
	}
}

func TestDirectedSlotAccess(t *testing.T) {
	g := NewDirected()
	g.AddEdge(5, 6)
	s, ok := g.SlotOf(5)
	if !ok {
		t.Fatal("SlotOf missing")
	}
	id, live := g.IDAtSlot(s)
	if !live || id != 5 {
		t.Fatalf("IDAtSlot = (%d,%v)", id, live)
	}
	if len(g.OutAtSlot(s)) != 1 || g.OutAtSlot(s)[0] != 6 {
		t.Fatal("OutAtSlot wrong")
	}
	g.DelNode(5)
	if _, live := g.IDAtSlot(s); live {
		t.Fatal("tombstone slot reported live")
	}
}

// Property: a random sequence of adds and deletes preserves all invariants
// and matches a reference adjacency-set implementation.
func TestDirectedMatchesReferenceModel(t *testing.T) {
	type opcode struct {
		Op       uint8
		Src, Dst int8
	}
	f := func(ops []opcode) bool {
		g := NewDirected()
		ref := map[[2]int64]bool{}
		refNodes := map[int64]bool{}
		for _, o := range ops {
			src, dst := int64(o.Src%8), int64(o.Dst%8)
			switch o.Op % 4 {
			case 0:
				g.AddEdge(src, dst)
				ref[[2]int64{src, dst}] = true
				refNodes[src], refNodes[dst] = true, true
			case 1:
				g.DelEdge(src, dst)
				delete(ref, [2]int64{src, dst})
			case 2:
				g.AddNode(src)
				refNodes[src] = true
			case 3:
				g.DelNode(src)
				if refNodes[src] {
					delete(refNodes, src)
					for e := range ref {
						if e[0] == src || e[1] == src {
							delete(ref, e)
						}
					}
				}
			}
		}
		if g.Validate() != nil {
			return false
		}
		if g.NumNodes() != len(refNodes) || g.NumEdges() != int64(len(ref)) {
			return false
		}
		for e := range ref {
			if !g.HasEdge(e[0], e[1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
