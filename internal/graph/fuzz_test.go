package graph

import (
	"bytes"
	"testing"
)

// FuzzLoadEdgeList drives the sequential and parallel loaders with arbitrary
// bytes and requires them to agree: both reject the input, or both accept it
// and build identical graphs that pass Validate. This is the contract that
// lets LoadFileAuto route text through the parallel pipeline without
// changing what any caller observes.
func FuzzLoadEdgeList(f *testing.F) {
	seeds := []string{
		"",
		"1 2\n2 3\n3 1\n",
		"1\t2\r\n2\t2\r\n",
		"# comment\n\n1 2\n",
		"# node 7\n# node -3\n",
		"#node 9\n# node 5 extra\n# nodes 4\n",
		"1 2 3 4\n",
		"1 2 trailing\n",
		"99999999999999999999999999 1\n",
		"1 99999999999999999999999999\n",
		"-9223372036854775808 1\n",
		"9223372036854775807 -9223372036854775807\n",
		"1\n",
		"a b\n",
		"+1 -2\n",
		"01 002\n",
		" 5   6 \n",
		"5 6", // no trailing newline
		"1 2\n",
		"1 2\n",
		"1 2\x00\n",
		"--1 2\n",
		"1- 2\n",
		"# node 9223372036854775808\n",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("outsized input") // avoid the scanner's deliberate line cap
		}
		seq, seqErr := LoadEdgeList(bytes.NewReader(data))
		par, parErr := ParseEdgeList(data)
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("loaders disagree on acceptance: seq=%v par=%v", seqErr, parErr)
		}
		if seqErr != nil {
			return
		}
		if err := seq.Validate(); err != nil {
			t.Fatalf("sequential graph invalid: %v", err)
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("parallel graph invalid: %v", err)
		}
		if err := sameDirected(seq, par); err != nil {
			t.Fatalf("graphs differ: %v", err)
		}
	})
}
