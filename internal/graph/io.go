package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// LoadEdgeList reads a SNAP-style whitespace-separated edge list (lines of
// "src dst", '#' comments and blank lines ignored) into a directed graph.
// Comment lines of the form "# node <id>" declare a node without edges, the
// convention SaveEdgeList uses so isolated nodes survive a text round trip.
// This is the sequential reference loader; LoadEdgeListParallel accepts the
// same inputs and builds the same graph using all cores.
func LoadEdgeList(r io.Reader) (*Directed, error) {
	g := NewDirected()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if id, ok := nodeCommentID(line); ok {
				g.AddNode(id)
			}
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: need two fields, got %q", lineNo, line)
		}
		src, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		dst, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		if src == tombstone || dst == tombstone {
			return nil, fmt.Errorf("graph: line %d: node id %d reserved", lineNo, int64(tombstone))
		}
		g.AddEdge(src, dst)
	}
	if err := sc.Err(); err != nil {
		// The failing token is the line after the last one delivered; name
		// it so a "token too long" on a 5 GB file is findable.
		return nil, fmt.Errorf("graph: line %d: reading edge list: %w", lineNo+1, err)
	}
	return g, nil
}

// nodeCommentID recognizes the "# node <id>" comment convention that keeps
// isolated nodes through a text round trip. The line must be trimmed and
// start with '#'; anything that is not exactly a node declaration is an
// ordinary comment. Both the sequential and parallel loaders call this, so
// they cannot disagree on what counts as a declaration.
func nodeCommentID(line string) (int64, bool) {
	fields := strings.Fields(line[1:])
	if len(fields) != 2 || fields[0] != "node" {
		return 0, false
	}
	id, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || id == tombstone {
		return 0, false
	}
	return id, true
}

// LoadEdgeListFile is LoadEdgeList reading from the named file.
func LoadEdgeListFile(path string) (*Directed, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEdgeList(f)
}

// SaveEdgeList writes g as a tab-separated edge list in ascending source
// order. Zero-degree nodes, which no edge line can carry, are written as
// SNAP-compatible "# node <id>" comment lines so a save/load round trip
// preserves the exact node set.
func SaveEdgeList(w io.Writer, g *Directed) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, src := range g.Nodes() {
		if g.OutDeg(src) == 0 && g.InDeg(src) == 0 {
			buf = append(buf[:0], "# node "...)
			buf = strconv.AppendInt(buf, src, 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
			continue
		}
		for _, dst := range g.OutNeighbors(src) {
			buf = buf[:0]
			buf = strconv.AppendInt(buf, src, 10)
			buf = append(buf, '\t')
			buf = strconv.AppendInt(buf, dst, 10)
			buf = append(buf, '\n')
			if _, err := bw.Write(buf); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// SaveEdgeListFile is SaveEdgeList writing to the named file.
func SaveEdgeListFile(path string, g *Directed) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := SaveEdgeList(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Validate checks the structural invariants of a directed graph: adjacency
// vectors sorted and duplicate-free, in/out vectors mutually consistent,
// and the edge count correct. Tests and property checks call it after
// mutation sequences.
func (g *Directed) Validate() error {
	var edges int64
	for s, id := range g.ids {
		if id == tombstone {
			continue
		}
		if got, ok := g.idx[id]; !ok || got != int32(s) {
			return fmt.Errorf("graph: node %d slot mapping broken", id)
		}
		for i, v := range g.outAdj[s] {
			if i > 0 && g.outAdj[s][i-1] >= v {
				return fmt.Errorf("graph: node %d out-vector not strictly sorted", id)
			}
			ds, ok := g.idx[v]
			if !ok {
				return fmt.Errorf("graph: edge %d->%d points at missing node", id, v)
			}
			if _, found := binarySearch(g.inAdj[ds], id); !found {
				return fmt.Errorf("graph: edge %d->%d missing from in-vector", id, v)
			}
		}
		for i, v := range g.inAdj[s] {
			if i > 0 && g.inAdj[s][i-1] >= v {
				return fmt.Errorf("graph: node %d in-vector not strictly sorted", id)
			}
			ss, ok := g.idx[v]
			if !ok {
				return fmt.Errorf("graph: edge %d->%d points at missing node", v, id)
			}
			if _, found := binarySearch(g.outAdj[ss], id); !found {
				return fmt.Errorf("graph: edge %d->%d missing from out-vector", v, id)
			}
		}
		edges += int64(len(g.outAdj[s]))
	}
	if edges != g.nEdges {
		return fmt.Errorf("graph: edge count %d, vectors hold %d", g.nEdges, edges)
	}
	return nil
}

// Validate checks the invariants of an undirected graph.
func (g *Undirected) Validate() error {
	var halfEdges int64
	for s, id := range g.ids {
		if id == tombstone {
			continue
		}
		if got, ok := g.idx[id]; !ok || got != int32(s) {
			return fmt.Errorf("graph: node %d slot mapping broken", id)
		}
		for i, v := range g.adj[s] {
			if i > 0 && g.adj[s][i-1] >= v {
				return fmt.Errorf("graph: node %d vector not strictly sorted", id)
			}
			ns, ok := g.idx[v]
			if !ok {
				return fmt.Errorf("graph: edge {%d,%d} points at missing node", id, v)
			}
			if v != id {
				if _, found := binarySearch(g.adj[ns], id); !found {
					return fmt.Errorf("graph: edge {%d,%d} not symmetric", id, v)
				}
				halfEdges++
			} else {
				halfEdges += 2
			}
		}
	}
	if halfEdges%2 != 0 || halfEdges/2 != g.nEdges {
		return fmt.Errorf("graph: edge count %d, vectors hold %d halves", g.nEdges, halfEdges)
	}
	return nil
}

func binarySearch(a []int64, v int64) (int, bool) {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo, lo < len(a) && a[lo] == v
}
