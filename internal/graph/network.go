package graph

import (
	"fmt"

	"ringo/internal/strpool"
)

// AttrType enumerates attribute value types on a Network.
type AttrType uint8

// Attribute types.
const (
	AttrInt AttrType = iota
	AttrFloat
	AttrString
)

type attrCol struct {
	typ    AttrType
	ints   []int64
	floats []float64
}

func (c *attrCol) grow(n int) {
	switch c.typ {
	case AttrFloat:
		for len(c.floats) < n {
			c.floats = append(c.floats, 0)
		}
	default:
		for len(c.ints) < n {
			c.ints = append(c.ints, attrUnsetStr)
		}
	}
}

// attrUnsetStr marks an unset string attribute cell (pool ids are >= 0).
// Int attribute cells share the storage; their zero value is attrUnsetStr
// too, so Int attributes read as 0 when unset via the accessor.
const attrUnsetStr = -1

// Network is a directed multigraph with typed node and edge attributes,
// modeled after SNAP's TNEANet. Unlike Directed it permits parallel edges:
// every edge has a persistent integer id, and adjacency vectors store edge
// ids. Attributes are stored column-wise, the same layout as Ringo tables,
// so graph results integrate cheaply with table processing.
type Network struct {
	idx      map[int64]int32
	ids      []int64
	outEdges [][]int32
	inEdges  [][]int32
	eSrc     []int64
	eDst     []int64
	eAlive   []bool
	nEdges   int64
	nodeAttr map[string]*attrCol // indexed by node slot
	edgeAttr map[string]*attrCol // indexed by edge id
	pool     *strpool.Pool
}

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		idx:      make(map[int64]int32),
		nodeAttr: make(map[string]*attrCol),
		edgeAttr: make(map[string]*attrCol),
		pool:     strpool.New(0),
	}
}

// NumNodes reports the number of nodes.
func (n *Network) NumNodes() int { return len(n.idx) }

// NumEdges reports the number of live edges.
func (n *Network) NumEdges() int64 { return n.nEdges }

// HasNode reports whether id is a node.
func (n *Network) HasNode(id int64) bool {
	_, ok := n.idx[id]
	return ok
}

// AddNode adds a node and reports whether it was newly added.
func (n *Network) AddNode(id int64) bool {
	if _, ok := n.idx[id]; ok {
		return false
	}
	slot := int32(len(n.ids))
	n.ids = append(n.ids, id)
	n.outEdges = append(n.outEdges, nil)
	n.inEdges = append(n.inEdges, nil)
	n.idx[id] = slot
	return true
}

// AddEdge adds a directed edge src->dst (parallel edges allowed), creating
// missing endpoints, and returns its persistent edge id.
func (n *Network) AddEdge(src, dst int64) int32 {
	n.AddNode(src)
	n.AddNode(dst)
	eid := int32(len(n.eSrc))
	n.eSrc = append(n.eSrc, src)
	n.eDst = append(n.eDst, dst)
	n.eAlive = append(n.eAlive, true)
	n.outEdges[n.idx[src]] = append(n.outEdges[n.idx[src]], eid)
	n.inEdges[n.idx[dst]] = append(n.inEdges[n.idx[dst]], eid)
	n.nEdges++
	return eid
}

// DelEdge removes the edge with the given id, reporting whether it was
// live. Edge ids are never reused.
func (n *Network) DelEdge(eid int32) bool {
	if int(eid) >= len(n.eAlive) || !n.eAlive[eid] {
		return false
	}
	n.eAlive[eid] = false
	ss := n.idx[n.eSrc[eid]]
	n.outEdges[ss] = removeEdgeID(n.outEdges[ss], eid)
	ds := n.idx[n.eDst[eid]]
	n.inEdges[ds] = removeEdgeID(n.inEdges[ds], eid)
	n.nEdges--
	return true
}

func removeEdgeID(a []int32, eid int32) []int32 {
	for i, v := range a {
		if v == eid {
			return append(a[:i], a[i+1:]...)
		}
	}
	return a
}

// EdgeEnds returns the endpoints of a live edge.
func (n *Network) EdgeEnds(eid int32) (src, dst int64, ok bool) {
	if int(eid) >= len(n.eAlive) || !n.eAlive[eid] {
		return 0, 0, false
	}
	return n.eSrc[eid], n.eDst[eid], true
}

// OutEdges returns the ids of edges leaving node id (graph-owned storage).
func (n *Network) OutEdges(id int64) []int32 {
	if s, ok := n.idx[id]; ok {
		return n.outEdges[s]
	}
	return nil
}

// InEdges returns the ids of edges entering node id.
func (n *Network) InEdges(id int64) []int32 {
	if s, ok := n.idx[id]; ok {
		return n.inEdges[s]
	}
	return nil
}

// ForEdges calls fn for every live edge.
func (n *Network) ForEdges(fn func(eid int32, src, dst int64)) {
	for eid := range n.eSrc {
		if n.eAlive[eid] {
			fn(int32(eid), n.eSrc[eid], n.eDst[eid])
		}
	}
}

// ForNodes calls fn for every node id.
func (n *Network) ForNodes(fn func(id int64)) {
	for _, id := range n.ids {
		fn(id)
	}
}

// DeclareNodeAttr registers a node attribute column of the given type. It
// errors if the name is already declared with a different type.
func (n *Network) DeclareNodeAttr(name string, typ AttrType) error {
	return declareAttr(n.nodeAttr, name, typ)
}

// DeclareEdgeAttr registers an edge attribute column.
func (n *Network) DeclareEdgeAttr(name string, typ AttrType) error {
	return declareAttr(n.edgeAttr, name, typ)
}

func declareAttr(m map[string]*attrCol, name string, typ AttrType) error {
	if c, ok := m[name]; ok {
		if c.typ != typ {
			return fmt.Errorf("graph: attribute %q already declared with different type", name)
		}
		return nil
	}
	m[name] = &attrCol{typ: typ}
	return nil
}

// SetNodeAttr sets a declared node attribute for node id.
func (n *Network) SetNodeAttr(name string, id int64, val any) error {
	s, ok := n.idx[id]
	if !ok {
		return fmt.Errorf("graph: no node %d", id)
	}
	c, ok := n.nodeAttr[name]
	if !ok {
		return fmt.Errorf("graph: node attribute %q not declared", name)
	}
	return n.setAttr(c, int(s), val, name)
}

// SetEdgeAttr sets a declared edge attribute for a live edge.
func (n *Network) SetEdgeAttr(name string, eid int32, val any) error {
	if int(eid) >= len(n.eAlive) || !n.eAlive[eid] {
		return fmt.Errorf("graph: no edge %d", eid)
	}
	c, ok := n.edgeAttr[name]
	if !ok {
		return fmt.Errorf("graph: edge attribute %q not declared", name)
	}
	return n.setAttr(c, int(eid), val, name)
}

func (n *Network) setAttr(c *attrCol, at int, val any, name string) error {
	c.grow(at + 1)
	switch c.typ {
	case AttrInt:
		switch v := val.(type) {
		case int:
			c.ints[at] = int64(v)
		case int64:
			c.ints[at] = int64(v)
		default:
			return fmt.Errorf("graph: attribute %q expects int, got %T", name, val)
		}
	case AttrFloat:
		switch v := val.(type) {
		case float64:
			c.floats[at] = v
		case int:
			c.floats[at] = float64(v)
		default:
			return fmt.Errorf("graph: attribute %q expects float, got %T", name, val)
		}
	default:
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("graph: attribute %q expects string, got %T", name, val)
		}
		c.ints[at] = int64(n.pool.Intern(s))
	}
	return nil
}

// NodeAttr returns the attribute value for node id; ok is false when the
// node or attribute is missing or the cell was never set (string type) —
// numeric cells default to zero.
func (n *Network) NodeAttr(name string, id int64) (any, bool) {
	s, okN := n.idx[id]
	c, okA := n.nodeAttr[name]
	if !okN || !okA {
		return nil, false
	}
	return n.getAttr(c, int(s))
}

// EdgeAttr returns the attribute value for a live edge.
func (n *Network) EdgeAttr(name string, eid int32) (any, bool) {
	if int(eid) >= len(n.eAlive) || !n.eAlive[eid] {
		return nil, false
	}
	c, ok := n.edgeAttr[name]
	if !ok {
		return nil, false
	}
	return n.getAttr(c, int(eid))
}

func (n *Network) getAttr(c *attrCol, at int) (any, bool) {
	switch c.typ {
	case AttrFloat:
		if at >= len(c.floats) {
			return float64(0), true
		}
		return c.floats[at], true
	case AttrInt:
		if at >= len(c.ints) || c.ints[at] == attrUnsetStr {
			return int64(0), true
		}
		return c.ints[at], true
	default:
		if at >= len(c.ints) || c.ints[at] == attrUnsetStr {
			return "", false
		}
		return n.pool.Get(int32(c.ints[at])), true
	}
}

// AsDirected returns the simple directed graph underlying the network
// (parallel edges merged).
func (n *Network) AsDirected() *Directed {
	g := NewDirectedCap(n.NumNodes())
	n.ForNodes(func(id int64) { g.AddNode(id) })
	n.ForEdges(func(_ int32, src, dst int64) { g.AddEdge(src, dst) })
	return g
}
