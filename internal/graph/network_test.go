package graph

import (
	"strings"
	"testing"
)

func TestNetworkParallelEdges(t *testing.T) {
	n := NewNetwork()
	e1 := n.AddEdge(1, 2)
	e2 := n.AddEdge(1, 2)
	if e1 == e2 {
		t.Fatal("parallel edges share an id")
	}
	if n.NumEdges() != 2 || n.NumNodes() != 2 {
		t.Fatalf("dims = (%d,%d)", n.NumNodes(), n.NumEdges())
	}
	if len(n.OutEdges(1)) != 2 || len(n.InEdges(2)) != 2 {
		t.Fatal("edge lists wrong")
	}
}

func TestNetworkDelEdge(t *testing.T) {
	n := NewNetwork()
	e1 := n.AddEdge(1, 2)
	e2 := n.AddEdge(1, 2)
	if !n.DelEdge(e1) {
		t.Fatal("DelEdge failed")
	}
	if n.DelEdge(e1) || n.DelEdge(999) {
		t.Fatal("DelEdge of dead/absent edge returned true")
	}
	if n.NumEdges() != 1 {
		t.Fatalf("edges = %d", n.NumEdges())
	}
	if _, _, ok := n.EdgeEnds(e1); ok {
		t.Fatal("dead edge still has endpoints")
	}
	src, dst, ok := n.EdgeEnds(e2)
	if !ok || src != 1 || dst != 2 {
		t.Fatalf("EdgeEnds = (%d,%d,%v)", src, dst, ok)
	}
}

func TestNetworkAttributes(t *testing.T) {
	n := NewNetwork()
	eid := n.AddEdge(1, 2)
	if err := n.DeclareNodeAttr("name", AttrString); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareNodeAttr("score", AttrFloat); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareEdgeAttr("weight", AttrInt); err != nil {
		t.Fatal(err)
	}
	if err := n.SetNodeAttr("name", 1, "alice"); err != nil {
		t.Fatal(err)
	}
	if err := n.SetNodeAttr("score", 2, 0.75); err != nil {
		t.Fatal(err)
	}
	if err := n.SetEdgeAttr("weight", eid, 9); err != nil {
		t.Fatal(err)
	}
	if v, ok := n.NodeAttr("name", 1); !ok || v != "alice" {
		t.Fatalf("name = (%v,%v)", v, ok)
	}
	if v, ok := n.NodeAttr("score", 2); !ok || v != 0.75 {
		t.Fatalf("score = (%v,%v)", v, ok)
	}
	if v, ok := n.EdgeAttr("weight", eid); !ok || v != int64(9) {
		t.Fatalf("weight = (%v,%v)", v, ok)
	}
	// Unset string attribute reads as not-ok; numeric defaults to zero.
	if _, ok := n.NodeAttr("name", 2); ok {
		t.Fatal("unset string attribute reported ok")
	}
	if v, ok := n.NodeAttr("score", 1); !ok || v != 0.0 {
		t.Fatalf("unset float attribute = (%v,%v)", v, ok)
	}
}

func TestNetworkAttributeErrors(t *testing.T) {
	n := NewNetwork()
	n.AddNode(1)
	if err := n.DeclareNodeAttr("x", AttrInt); err != nil {
		t.Fatal(err)
	}
	if err := n.DeclareNodeAttr("x", AttrFloat); err == nil {
		t.Fatal("redeclaration with new type accepted")
	}
	if err := n.DeclareNodeAttr("x", AttrInt); err != nil {
		t.Fatal("idempotent redeclaration rejected")
	}
	if err := n.SetNodeAttr("y", 1, 5); err == nil {
		t.Fatal("undeclared attribute accepted")
	}
	if err := n.SetNodeAttr("x", 99, 5); err == nil {
		t.Fatal("attribute on missing node accepted")
	}
	if err := n.SetNodeAttr("x", 1, "str"); err == nil {
		t.Fatal("type-mismatched value accepted")
	}
	if _, ok := n.NodeAttr("missing", 1); ok {
		t.Fatal("missing attribute reported ok")
	}
}

func TestNetworkAsDirected(t *testing.T) {
	n := NewNetwork()
	n.AddEdge(1, 2)
	n.AddEdge(1, 2) // parallel, merges
	n.AddEdge(2, 3)
	n.AddNode(99)
	g := n.AsDirected()
	if g.NumNodes() != 4 || g.NumEdges() != 2 {
		t.Fatalf("AsDirected dims = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNetworkForEdgesSkipsDead(t *testing.T) {
	n := NewNetwork()
	e1 := n.AddEdge(1, 2)
	n.AddEdge(2, 3)
	n.DelEdge(e1)
	count := 0
	n.ForEdges(func(eid int32, src, dst int64) { count++ })
	if count != 1 {
		t.Fatalf("ForEdges visited %d, want 1", count)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := sampleDirected()
	var sb strings.Builder
	if err := SaveEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != g.NumNodes() || back.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip dims = (%d,%d)", back.NumNodes(), back.NumEdges())
	}
	g.ForEdges(func(src, dst int64) {
		if !back.HasEdge(src, dst) {
			t.Fatalf("round trip lost %d->%d", src, dst)
		}
	})
}

func TestLoadEdgeListFormat(t *testing.T) {
	in := "# comment\n\n1\t2\n3 4\n  5   6  \n"
	g, err := LoadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
	if _, err := LoadEdgeList(strings.NewReader("1\n")); err == nil {
		t.Fatal("single-field line accepted")
	}
	if _, err := LoadEdgeList(strings.NewReader("a b\n")); err == nil {
		t.Fatal("non-integer accepted")
	}
}

func TestEdgeListFileRoundTrip(t *testing.T) {
	g := sampleDirected()
	path := t.TempDir() + "/edges.tsv"
	if err := SaveEdgeListFile(path, g); err != nil {
		t.Fatal(err)
	}
	back, err := LoadEdgeListFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != g.NumEdges() {
		t.Fatalf("file round trip edges = %d", back.NumEdges())
	}
}
