package graph

// Subgraph returns the subgraph of g induced by the given node ids (absent
// ids are ignored): the kept nodes and every edge whose endpoints are both
// kept.
func Subgraph(g *Directed, ids []int64) *Directed {
	keep := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if g.HasNode(id) {
			keep[id] = true
		}
	}
	sub := NewDirectedCap(len(keep))
	for id := range keep {
		sub.AddNode(id)
	}
	for id := range keep {
		for _, dst := range g.OutNeighbors(id) {
			if keep[dst] {
				sub.AddEdge(id, dst)
			}
		}
	}
	return sub
}

// SubgraphUndirected returns the induced undirected subgraph.
func SubgraphUndirected(g *Undirected, ids []int64) *Undirected {
	keep := make(map[int64]bool, len(ids))
	for _, id := range ids {
		if g.HasNode(id) {
			keep[id] = true
		}
	}
	sub := NewUndirectedCap(len(keep))
	for id := range keep {
		sub.AddNode(id)
	}
	for id := range keep {
		for _, nbr := range g.Neighbors(id) {
			if nbr >= id && keep[nbr] {
				sub.AddEdge(id, nbr)
			}
		}
	}
	return sub
}

// Reverse returns a new directed graph with every edge direction flipped.
func Reverse(g *Directed) *Directed {
	out := NewDirectedCap(g.NumNodes())
	g.ForNodes(func(id int64) { out.AddNode(id) })
	g.ForEdges(func(src, dst int64) { out.AddEdge(dst, src) })
	return out
}

// Union returns a new directed graph containing the nodes and edges of both
// inputs.
func Union(a, b *Directed) *Directed {
	out := NewDirectedCap(a.NumNodes() + b.NumNodes())
	a.ForNodes(func(id int64) { out.AddNode(id) })
	b.ForNodes(func(id int64) { out.AddNode(id) })
	a.ForEdges(func(src, dst int64) { out.AddEdge(src, dst) })
	b.ForEdges(func(src, dst int64) { out.AddEdge(src, dst) })
	return out
}
