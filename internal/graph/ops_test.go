package graph

import (
	"testing"
	"testing/quick"
)

func TestSubgraphInduced(t *testing.T) {
	g := NewDirected()
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 1}, {3, 4}, {4, 5}} {
		g.AddEdge(e[0], e[1])
	}
	sub := Subgraph(g, []int64{1, 2, 3, 99})
	if sub.NumNodes() != 3 {
		t.Fatalf("subgraph nodes = %d", sub.NumNodes())
	}
	if sub.NumEdges() != 3 { // the triangle
		t.Fatalf("subgraph edges = %d", sub.NumEdges())
	}
	if sub.HasEdge(3, 4) || sub.HasNode(99) {
		t.Fatal("subgraph leaked excluded nodes")
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original untouched.
	if g.NumEdges() != 5 {
		t.Fatal("Subgraph mutated input")
	}
}

func TestSubgraphUndirected(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(3, 3)
	sub := SubgraphUndirected(g, []int64{2, 3})
	if sub.NumNodes() != 2 || sub.NumEdges() != 2 { // {2,3} and {3,3}
		t.Fatalf("subgraph = (%d nodes, %d edges)", sub.NumNodes(), sub.NumEdges())
	}
	if err := sub.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverse(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddNode(9)
	r := Reverse(g)
	if r.NumNodes() != g.NumNodes() || r.NumEdges() != g.NumEdges() {
		t.Fatal("reverse changed dimensions")
	}
	if !r.HasEdge(2, 1) || !r.HasEdge(3, 2) || r.HasEdge(1, 2) {
		t.Fatal("edges not reversed")
	}
	if !r.HasNode(9) {
		t.Fatal("isolated node lost")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReverseInvolutionProperty(t *testing.T) {
	f := func(edges [][2]int8) bool {
		g := NewDirected()
		for _, e := range edges {
			g.AddEdge(int64(e[0]%16), int64(e[1]%16))
		}
		rr := Reverse(Reverse(g))
		if rr.NumNodes() != g.NumNodes() || rr.NumEdges() != g.NumEdges() {
			return false
		}
		ok := true
		g.ForEdges(func(s, d int64) {
			if !rr.HasEdge(s, d) {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUnion(t *testing.T) {
	a := NewDirected()
	a.AddEdge(1, 2)
	b := NewDirected()
	b.AddEdge(1, 2) // shared
	b.AddEdge(2, 3)
	b.AddNode(50)
	u := Union(a, b)
	if u.NumNodes() != 4 || u.NumEdges() != 2 {
		t.Fatalf("union dims = (%d,%d)", u.NumNodes(), u.NumEdges())
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}
