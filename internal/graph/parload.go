package graph

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"unicode/utf8"

	"ringo/internal/par"
)

// Parallel text ingest (§2.3 of Perez et al.): loading a billion-edge text
// file must saturate cores, not a single scanner loop. The pipeline reads
// the whole input into memory (the big-memory premise of the paper), splits
// it into one chunk per worker at newline boundaries, parses each chunk with
// allocation-free byte-slice integer parsing into per-worker edge buffers,
// and hands the concatenated pairs to the sort-first bulk constructor
// (BuildDirected). The result is identical to LoadEdgeList — same node set,
// same sorted adjacency vectors, same accepted and rejected inputs — which
// the equivalence and fuzz tests enforce. The one deliberate difference:
// this path has no line-length cap, so inputs the scanner rejects as "token
// too long" parse fine here.

// LoadEdgeListParallel reads a SNAP-style whitespace-separated edge list
// (see LoadEdgeList) into a directed graph, parsing and building in parallel.
func LoadEdgeListParallel(r io.Reader) (*Directed, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: reading edge list: %w", err)
	}
	return ParseEdgeList(data)
}

// LoadEdgeListParallelFile is LoadEdgeListParallel reading the named file.
func LoadEdgeListParallelFile(path string) (*Directed, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseEdgeList(data)
}

// ParseEdgeList parses an in-memory edge-list text into a directed graph
// using the parallel ingest pipeline.
func ParseEdgeList(data []byte) (*Directed, error) {
	bounds := chunkBounds(data, par.Workers())
	nc := len(bounds) - 1
	results := make([]chunkResult, nc)
	par.ForEach(nc, func(i int) {
		results[i] = parseChunk(data[bounds[i]:bounds[i+1]])
	})
	lineBase := 0
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineBase+results[i].errLine, err)
		}
		lineBase += results[i].lines
	}
	offs := make([]int, nc+1)
	for i := range results {
		offs[i+1] = offs[i] + len(results[i].edges)
	}
	edges := make([][2]int64, offs[nc])
	par.ForEach(nc, func(i int) {
		copy(edges[offs[i]:offs[i+1]], results[i].edges)
	})
	// The per-worker buffers and the raw bytes are fully consumed; drop them
	// before the build phase allocates its sort buffers and arenas, so peak
	// memory is the build's own, not build + parse leftovers.
	for i := range results {
		results[i].edges = nil
	}
	data = nil
	g, err := BuildDirected(edges)
	if err != nil {
		return nil, err
	}
	for i := range results {
		for _, id := range results[i].nodes {
			g.AddNode(id)
		}
	}
	return g, nil
}

// chunkBounds partitions data into at most parts byte ranges whose interior
// boundaries sit just past a newline, so every chunk is a whole number of
// lines. Boundaries are strictly increasing; the result always starts at 0
// and ends at len(data).
func chunkBounds(data []byte, parts int) []int {
	n := len(data)
	if parts < 1 {
		parts = 1
	}
	bounds := make([]int, 0, parts+1)
	bounds = append(bounds, 0)
	for i := 1; i < parts; i++ {
		p := i * n / parts
		if p <= bounds[len(bounds)-1] {
			continue
		}
		for p < n && data[p-1] != '\n' {
			p++
		}
		if p > bounds[len(bounds)-1] && p < n {
			bounds = append(bounds, p)
		}
	}
	bounds = append(bounds, n)
	return bounds
}

// chunkResult is one worker's parse of one chunk.
type chunkResult struct {
	edges   [][2]int64
	nodes   []int64 // isolated nodes declared by "# node <id>" comments
	lines   int     // lines consumed (complete chunks) or seen before the error
	errLine int     // 1-based line index of err within the chunk
	err     error
}

// asciiSpace marks the ASCII bytes unicode.IsSpace reports as whitespace,
// so the fast path splits fields exactly like strings.Fields does on ASCII
// input. Lines with any non-ASCII byte take the strings-based slow path.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// parseChunk parses the complete lines of one chunk.
func parseChunk(data []byte) chunkResult {
	res := chunkResult{edges: make([][2]int64, 0, len(data)/12+1)}
	pos := 0
	for pos < len(data) {
		end := pos
		for end < len(data) && data[end] != '\n' {
			end++
		}
		res.lines++
		if err := parseLine(data[pos:end], &res); err != nil {
			res.errLine = res.lines
			res.err = err
			return res
		}
		pos = end + 1
	}
	return res
}

// parseLine parses one line (without its newline) into res. The ASCII fast
// path allocates nothing per line; lines containing non-ASCII bytes fall
// back to the exact string-based logic of the sequential loader so the two
// paths accept and reject identical inputs.
func parseLine(ln []byte, res *chunkResult) error {
	for _, b := range ln {
		if b >= utf8.RuneSelf {
			return parseLineSlow(string(ln), res)
		}
	}
	lo, hi := 0, len(ln)
	for lo < hi && asciiSpace[ln[lo]] {
		lo++
	}
	for hi > lo && asciiSpace[ln[hi-1]] {
		hi--
	}
	if lo == hi {
		return nil
	}
	if ln[lo] == '#' {
		if id, ok := nodeCommentID(string(ln[lo:hi])); ok {
			res.nodes = append(res.nodes, id)
		}
		return nil
	}
	f1 := lo
	for f1 < hi && !asciiSpace[ln[f1]] {
		f1++
	}
	f2 := f1
	for f2 < hi && asciiSpace[ln[f2]] {
		f2++
	}
	if f2 == hi {
		return fmt.Errorf("need two fields, got %q", ln[lo:hi])
	}
	f2hi := f2
	for f2hi < hi && !asciiSpace[ln[f2hi]] {
		f2hi++
	}
	src, err := parseInt64(ln[lo:f1])
	if err != nil {
		return err
	}
	dst, err := parseInt64(ln[f2:f2hi])
	if err != nil {
		return err
	}
	if src == tombstone || dst == tombstone {
		return fmt.Errorf("node id %d reserved", int64(tombstone))
	}
	res.edges = append(res.edges, [2]int64{src, dst})
	return nil
}

// parseLineSlow mirrors the sequential loader's per-line logic verbatim.
func parseLineSlow(line string, res *chunkResult) error {
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		if id, ok := nodeCommentID(line); ok {
			res.nodes = append(res.nodes, id)
		}
		return nil
	}
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("need two fields, got %q", line)
	}
	src, err := strconv.ParseInt(fields[0], 10, 64)
	if err != nil {
		return err
	}
	dst, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return err
	}
	if src == tombstone || dst == tombstone {
		return fmt.Errorf("node id %d reserved", int64(tombstone))
	}
	res.edges = append(res.edges, [2]int64{src, dst})
	return nil
}

// parseInt64 parses a base-10 signed integer from a byte slice without
// allocating. It accepts exactly the inputs strconv.ParseInt(s, 10, 64)
// accepts: an optional +/- sign followed by one or more ASCII digits, within
// the int64 range.
func parseInt64(s []byte) (int64, error) {
	neg := false
	i := 0
	if len(s) > 0 && (s[0] == '+' || s[0] == '-') {
		neg = s[0] == '-'
		i = 1
	}
	if i == len(s) {
		return 0, fmt.Errorf("invalid integer %q", s)
	}
	limit := uint64(1) << 63 // |MinInt64|; MaxInt64 when positive
	if !neg {
		limit--
	}
	var u uint64
	for ; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid integer %q", s)
		}
		d := uint64(c - '0')
		if u > limit/10 || (u == limit/10 && d > limit%10) {
			return 0, fmt.Errorf("integer %q out of range", s)
		}
		u = u*10 + d
	}
	if neg {
		return int64(-u), nil
	}
	return int64(u), nil
}
