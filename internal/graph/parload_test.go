package graph

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"strconv"
	"strings"
	"testing"
)

// sameDirected reports whether two directed graphs have identical node sets
// and identical (sorted) adjacency vectors in both directions.
func sameDirected(a, b *Directed) error {
	na, nb := a.Nodes(), b.Nodes()
	if !slices.Equal(na, nb) {
		return fmt.Errorf("node sets differ: %d vs %d nodes", len(na), len(nb))
	}
	if a.NumEdges() != b.NumEdges() {
		return fmt.Errorf("edge counts differ: %d vs %d", a.NumEdges(), b.NumEdges())
	}
	for _, id := range na {
		if !slices.Equal(a.OutNeighbors(id), b.OutNeighbors(id)) {
			return fmt.Errorf("out-neighbors of %d differ", id)
		}
		if !slices.Equal(a.InNeighbors(id), b.InNeighbors(id)) {
			return fmt.Errorf("in-neighbors of %d differ", id)
		}
	}
	return nil
}

// randomEdgeListText renders a randomized edge list exercising every
// syntactic feature the loaders accept: comments, node declarations, blank
// lines, mixed separators and padding, duplicate edges, self-loops, extra
// fields, negative and large ids.
func randomEdgeListText(rng *rand.Rand, nEdges int) string {
	var sb strings.Builder
	sb.WriteString("# randomized edge list\n")
	seps := []string{"\t", " ", "  ", " \t "}
	for i := 0; i < nEdges; i++ {
		switch rng.Intn(12) {
		case 0:
			sb.WriteString("\n")
		case 1:
			sb.WriteString("# a comment line\n")
		case 2:
			fmt.Fprintf(&sb, "# node %d\n", rng.Int63n(1000)-500)
		default:
			src := rng.Int63n(200) - 100
			dst := rng.Int63n(200) - 100
			if rng.Intn(10) == 0 {
				dst = src // self-loop
			}
			pad := ""
			if rng.Intn(4) == 0 {
				pad = "  "
			}
			fmt.Fprintf(&sb, "%s%d%s%d", pad, src, seps[rng.Intn(len(seps))], dst)
			if rng.Intn(8) == 0 {
				fmt.Fprintf(&sb, "\tignored-field")
			}
			if rng.Intn(3) != 0 || i == nEdges-1 {
				sb.WriteString("\n")
			} else {
				sb.WriteString("\r\n")
			}
		}
	}
	return sb.String()
}

func TestParallelMatchesSequentialRandomized(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		text := randomEdgeListText(rng, 2000)
		seq, err := LoadEdgeList(strings.NewReader(text))
		if err != nil {
			t.Fatalf("seed %d: sequential load: %v", seed, err)
		}
		par, err := LoadEdgeListParallel(strings.NewReader(text))
		if err != nil {
			t.Fatalf("seed %d: parallel load: %v", seed, err)
		}
		if err := seq.Validate(); err != nil {
			t.Fatalf("seed %d: sequential graph invalid: %v", seed, err)
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("seed %d: parallel graph invalid: %v", seed, err)
		}
		if err := sameDirected(seq, par); err != nil {
			t.Fatalf("seed %d: loaders disagree: %v", seed, err)
		}
	}
}

func TestParallelLoaderManyChunks(t *testing.T) {
	// Enough lines that every worker gets a multi-line chunk, with ids wide
	// enough to shuffle across chunk boundaries.
	rng := rand.New(rand.NewSource(99))
	var sb strings.Builder
	for i := 0; i < 50_000; i++ {
		fmt.Fprintf(&sb, "%d\t%d\n", rng.Int63n(5000), rng.Int63n(5000))
	}
	text := sb.String()
	seq, err := LoadEdgeList(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	par, err := ParseEdgeList([]byte(text))
	if err != nil {
		t.Fatal(err)
	}
	if err := par.Validate(); err != nil {
		t.Fatalf("parallel graph invalid: %v", err)
	}
	if err := sameDirected(seq, par); err != nil {
		t.Fatal(err)
	}
}

func TestParallelLoaderErrorLineNumbers(t *testing.T) {
	cases := []struct {
		in   string
		line int
	}{
		{"1 2\nbogus\n3 4\n", 2},
		{"1 2\n3 4\n5\n", 3},
		{"99999999999999999999999999 1\n", 1},
		{"1 2\n# fine\n\n1 x\n", 4},
		{"-9223372036854775808 1\n", 1},
		{"1 -9223372036854775808\n", 1},
	}
	for _, c := range cases {
		_, seqErr := LoadEdgeList(strings.NewReader(c.in))
		_, parErr := ParseEdgeList([]byte(c.in))
		if seqErr == nil || parErr == nil {
			t.Fatalf("input %q: expected both loaders to fail, got seq=%v par=%v", c.in, seqErr, parErr)
		}
		want := fmt.Sprintf("line %d", c.line)
		if !strings.Contains(seqErr.Error(), want) {
			t.Errorf("input %q: sequential error %q missing %q", c.in, seqErr, want)
		}
		if !strings.Contains(parErr.Error(), want) {
			t.Errorf("input %q: parallel error %q missing %q", c.in, parErr, want)
		}
	}
}

func TestScannerErrorCarriesLineNumber(t *testing.T) {
	// A line longer than the scanner's 4 MiB cap: the sequential loader must
	// name the failing line, not just say "token too long".
	long := "# " + strings.Repeat("x", 1<<22+10)
	in := "1 2\n2 3\n" + long + "\n4 5\n"
	_, err := LoadEdgeList(strings.NewReader(in))
	if err == nil {
		t.Fatal("expected scanner overflow error")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error %q does not name line 3", err)
	}
	// The parallel path has no line cap; the same input must parse.
	g, err := ParseEdgeList([]byte(in))
	if err != nil {
		t.Fatalf("parallel load of long line: %v", err)
	}
	if !g.HasEdge(4, 5) || g.NumEdges() != 3 {
		t.Fatalf("parallel load mangled input: %d edges", g.NumEdges())
	}
}

func TestSaveEdgeListKeepsIsolatedNodes(t *testing.T) {
	g := NewDirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddNode(50) // isolated
	g.AddNode(-7) // isolated, negative id
	var sb strings.Builder
	if err := SaveEdgeList(&sb, g); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "# node 50\n") || !strings.Contains(sb.String(), "# node -7\n") {
		t.Fatalf("isolated node comments missing from:\n%s", sb.String())
	}
	for _, load := range []func() (*Directed, error){
		func() (*Directed, error) { return LoadEdgeList(strings.NewReader(sb.String())) },
		func() (*Directed, error) { return ParseEdgeList([]byte(sb.String())) },
	} {
		back, err := load()
		if err != nil {
			t.Fatal(err)
		}
		if err := sameDirected(g, back); err != nil {
			t.Fatalf("round trip lost structure: %v", err)
		}
		if !back.HasNode(50) || !back.HasNode(-7) {
			t.Fatal("round trip dropped isolated nodes")
		}
	}
}

func TestNodeCommentVariants(t *testing.T) {
	in := "# node 5\n#node 6\n# node 7 extra\n# nodes 8\n# node notanum\n1 2\n"
	for name, load := range map[string]func() (*Directed, error){
		"seq": func() (*Directed, error) { return LoadEdgeList(strings.NewReader(in)) },
		"par": func() (*Directed, error) { return ParseEdgeList([]byte(in)) },
	} {
		g, err := load()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !g.HasNode(5) || !g.HasNode(6) {
			t.Fatalf("%s: node declarations not honored", name)
		}
		for _, id := range []int64{7, 8} {
			if g.HasNode(id) {
				t.Fatalf("%s: malformed declaration created node %d", name, id)
			}
		}
		if g.NumNodes() != 4 {
			t.Fatalf("%s: want 4 nodes, got %d", name, g.NumNodes())
		}
	}
}

func TestBuildDirectedMatchesAddEdge(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1000 + int(seed)*7000 // crosses the parallel-sort threshold
		edges := make([][2]int64, n)
		ref := NewDirected()
		for i := range edges {
			src := rng.Int63n(300) - 150
			dst := rng.Int63n(300) - 150
			edges[i] = [2]int64{src, dst}
			ref.AddEdge(src, dst)
		}
		g, err := BuildDirected(edges)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: bulk graph invalid: %v", seed, err)
		}
		if err := sameDirected(ref, g); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		srcs := make([]int64, len(edges))
		dsts := make([]int64, len(edges))
		for i, e := range edges {
			srcs[i], dsts[i] = e[0], e[1]
		}
		cols, err := BuildDirectedCols(srcs, dsts)
		if err != nil {
			t.Fatal(err)
		}
		if err := sameDirected(ref, cols); err != nil {
			t.Fatalf("seed %d: column form: %v", seed, err)
		}
	}
}

func TestBuildColsLengthMismatch(t *testing.T) {
	if _, err := BuildDirectedCols([]int64{1}, nil); err == nil {
		t.Fatal("BuildDirectedCols accepted mismatched columns")
	}
	if _, err := BuildUndirectedCols(nil, []int64{1}); err == nil {
		t.Fatal("BuildUndirectedCols accepted mismatched columns")
	}
}

func TestBuildUndirectedMatchesAddEdge(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1000 + int(seed)*7000
		edges := make([][2]int64, n)
		ref := NewUndirected()
		for i := range edges {
			src := rng.Int63n(300) - 150
			dst := rng.Int63n(300) - 150
			if rng.Intn(12) == 0 {
				dst = src
			}
			edges[i] = [2]int64{src, dst}
			ref.AddEdge(src, dst)
		}
		g, err := BuildUndirected(edges)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("seed %d: bulk graph invalid: %v", seed, err)
		}
		if ref.NumNodes() != g.NumNodes() || ref.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: size mismatch: %d/%d nodes, %d/%d edges",
				seed, ref.NumNodes(), g.NumNodes(), ref.NumEdges(), g.NumEdges())
		}
		for _, id := range ref.Nodes() {
			if !slices.Equal(ref.Neighbors(id), g.Neighbors(id)) {
				t.Fatalf("seed %d: neighbors of %d differ", seed, id)
			}
		}
	}
}

func TestBuildDirectedRejectsReservedID(t *testing.T) {
	if _, err := BuildDirected([][2]int64{{tombstone, 1}}); err == nil {
		t.Fatal("BuildDirected accepted the reserved id")
	}
	if _, err := BuildUndirected([][2]int64{{1, tombstone}}); err == nil {
		t.Fatal("BuildUndirected accepted the reserved id")
	}
}

func TestBuildDirectedEmpty(t *testing.T) {
	g, err := BuildDirected(nil)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatal("empty build not empty")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildDirectedArenaIsolation: vectors are carved from a shared arena;
// growing one node's adjacency must not corrupt a neighbor's vector.
func TestBuildDirectedArenaIsolation(t *testing.T) {
	g, err := BuildDirected([][2]int64{{1, 2}, {1, 3}, {4, 5}, {4, 6}})
	if err != nil {
		t.Fatal(err)
	}
	g.AddEdge(1, 9) // grows node 1's out-vector, adjacent to node 4's in the arena
	if !slices.Equal(g.OutNeighbors(4), []int64{5, 6}) {
		t.Fatalf("arena neighbor clobbered: out(4) = %v", g.OutNeighbors(4))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// benchEdgeListText memoizes a ~1M-line generated edge list so the Seq/Par
// benchmark pair parses identical bytes.
var benchEdgeList struct {
	text  []byte
	edges [][2]int64
}

func benchEdgeListText(b *testing.B) []byte {
	if benchEdgeList.text == nil {
		const n = 1 << 20
		rng := rand.New(rand.NewSource(1))
		buf := make([]byte, 0, n*14)
		edges := make([][2]int64, 0, n)
		for i := 0; i < n; i++ {
			src, dst := rng.Int63n(1<<18), rng.Int63n(1<<18)
			buf = strconv.AppendInt(buf, src, 10)
			buf = append(buf, '\t')
			buf = strconv.AppendInt(buf, dst, 10)
			buf = append(buf, '\n')
			edges = append(edges, [2]int64{src, dst})
		}
		benchEdgeList.text = buf
		benchEdgeList.edges = edges
	}
	b.SetBytes(int64(len(benchEdgeList.text)))
	return benchEdgeList.text
}

func BenchmarkLoadEdgeListSeq(b *testing.B) {
	text := benchEdgeListText(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadEdgeList(bytes.NewReader(text)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLoadEdgeListPar(b *testing.B) {
	text := benchEdgeListText(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseEdgeList(text); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBuildDirected(b *testing.B) {
	benchEdgeListText(b)
	edges := benchEdgeList.edges
	b.SetBytes(int64(len(edges) * 16))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildDirected(edges); err != nil {
			b.Fatal(err)
		}
	}
}
