package graph

import (
	"fmt"
	"slices"
)

// Undirected is a dynamic undirected graph with the same design as
// Directed: a hash table of nodes, each holding one sorted adjacency
// vector. An edge {u,v} appears in both endpoints' vectors; a self-loop
// appears once in its node's vector.
type Undirected struct {
	idx    map[int64]int32
	ids    []int64
	adj    [][]int64
	free   []int32
	nEdges int64
}

// NewUndirected returns an empty undirected graph.
func NewUndirected() *Undirected { return NewUndirectedCap(0) }

// NewUndirectedCap returns an empty undirected graph preallocated for n
// nodes.
func NewUndirectedCap(n int) *Undirected {
	return &Undirected{
		idx: make(map[int64]int32, n),
		ids: make([]int64, 0, n),
		adj: make([][]int64, 0, n),
	}
}

// NumNodes reports the number of nodes.
func (g *Undirected) NumNodes() int { return len(g.idx) }

// NumEdges reports the number of undirected edges.
func (g *Undirected) NumEdges() int64 { return g.nEdges }

// HasNode reports whether id is a node of the graph.
func (g *Undirected) HasNode(id int64) bool {
	_, ok := g.idx[id]
	return ok
}

// AddNode adds a node and reports whether it was newly added.
func (g *Undirected) AddNode(id int64) bool {
	if id == tombstone {
		panic("graph: node id reserved")
	}
	if _, ok := g.idx[id]; ok {
		return false
	}
	var slot int32
	if n := len(g.free); n > 0 {
		slot = g.free[n-1]
		g.free = g.free[:n-1]
		g.ids[slot] = id
		g.adj[slot] = nil
	} else {
		slot = int32(len(g.ids))
		g.ids = append(g.ids, id)
		g.adj = append(g.adj, nil)
	}
	g.idx[id] = slot
	return true
}

// DelNode removes a node and its incident edges, reporting whether it
// existed.
func (g *Undirected) DelNode(id int64) bool {
	slot, ok := g.idx[id]
	if !ok {
		return false
	}
	for _, nbr := range g.adj[slot] {
		if nbr == id {
			continue
		}
		ns := g.idx[nbr]
		g.adj[ns] = removeSorted(g.adj[ns], id)
	}
	g.nEdges -= int64(len(g.adj[slot]))
	g.ids[slot] = tombstone
	g.adj[slot] = nil
	g.free = append(g.free, slot)
	delete(g.idx, id)
	return true
}

// AddEdge adds the undirected edge {src,dst}, creating missing endpoints,
// and reports whether it was newly added.
func (g *Undirected) AddEdge(src, dst int64) bool {
	g.AddNode(src)
	g.AddNode(dst)
	ss := g.idx[src]
	pos, found := slices.BinarySearch(g.adj[ss], dst)
	if found {
		return false
	}
	g.adj[ss] = slices.Insert(g.adj[ss], pos, dst)
	if src != dst {
		ds := g.idx[dst]
		pos, _ = slices.BinarySearch(g.adj[ds], src)
		g.adj[ds] = slices.Insert(g.adj[ds], pos, src)
	}
	g.nEdges++
	return true
}

// DelEdge removes the edge {src,dst} and reports whether it existed.
func (g *Undirected) DelEdge(src, dst int64) bool {
	ss, ok := g.idx[src]
	if !ok {
		return false
	}
	ds, ok := g.idx[dst]
	if !ok {
		return false
	}
	if _, found := slices.BinarySearch(g.adj[ss], dst); !found {
		return false
	}
	g.adj[ss] = removeSorted(g.adj[ss], dst)
	if src != dst {
		g.adj[ds] = removeSorted(g.adj[ds], src)
	}
	g.nEdges--
	return true
}

// HasEdge reports whether {src,dst} is an edge.
func (g *Undirected) HasEdge(src, dst int64) bool {
	ss, ok := g.idx[src]
	if !ok {
		return false
	}
	_, found := slices.BinarySearch(g.adj[ss], dst)
	return found
}

// Deg returns the degree of id (self-loops count once).
func (g *Undirected) Deg(id int64) int {
	if s, ok := g.idx[id]; ok {
		return len(g.adj[s])
	}
	return 0
}

// Neighbors returns the sorted neighbor ids of id. The slice aliases graph
// storage; callers must not modify it.
func (g *Undirected) Neighbors(id int64) []int64 {
	if s, ok := g.idx[id]; ok {
		return g.adj[s]
	}
	return nil
}

// Nodes returns all node ids in ascending order.
func (g *Undirected) Nodes() []int64 {
	out := make([]int64, 0, len(g.idx))
	for id := range g.idx {
		out = append(out, id)
	}
	slices.Sort(out)
	return out
}

// ForNodes calls fn for every node id in unspecified order.
func (g *Undirected) ForNodes(fn func(id int64)) {
	for _, id := range g.ids {
		if id != tombstone {
			fn(id)
		}
	}
}

// ForEdges calls fn once per undirected edge, with src <= dst.
func (g *Undirected) ForEdges(fn func(src, dst int64)) {
	for s, id := range g.ids {
		if id == tombstone {
			continue
		}
		for _, nbr := range g.adj[s] {
			if id <= nbr {
				fn(id, nbr)
			}
		}
	}
}

// NumSlots reports the slot-space size (see Directed.NumSlots).
func (g *Undirected) NumSlots() int { return len(g.ids) }

// IDAtSlot returns the node id at slot s, or false for tombstones.
func (g *Undirected) IDAtSlot(s int) (int64, bool) {
	id := g.ids[s]
	return id, id != tombstone
}

// SlotOf returns the slot of a node id.
func (g *Undirected) SlotOf(id int64) (int, bool) {
	s, ok := g.idx[id]
	return int(s), ok
}

// AdjAtSlot returns the sorted neighbors of the node at slot s.
func (g *Undirected) AdjAtSlot(s int) []int64 { return g.adj[s] }

// setAdjBulk installs a pre-sorted adjacency vector (bulk build fast path).
func (g *Undirected) setAdjBulk(id int64, adj []int64) {
	s := g.idx[id]
	g.adj[s] = adj
}

// BuildUndirectedBulk assembles an undirected graph from per-node
// pre-sorted adjacency vectors; adj[i] lists the sorted, duplicate-free
// neighbors of ids[i], with each non-loop edge present in both endpoint
// vectors and each self-loop present once. nEdges is recomputed from the
// vectors. The vectors are adopted, not copied.
func BuildUndirectedBulk(ids []int64, adj [][]int64) (*Undirected, error) {
	if len(ids) != len(adj) {
		return nil, fmt.Errorf("graph: bulk build length mismatch: %d ids, %d adj", len(ids), len(adj))
	}
	g := NewUndirectedCap(len(ids))
	for _, id := range ids {
		if !g.AddNode(id) {
			return nil, fmt.Errorf("graph: bulk build duplicate node %d", id)
		}
	}
	var halfEdges int64
	for i, id := range ids {
		g.setAdjBulk(id, adj[i])
		for _, nbr := range adj[i] {
			if nbr == id {
				halfEdges += 2 // self-loop stored once, count as full edge
			} else {
				halfEdges++
			}
		}
	}
	g.nEdges = halfEdges / 2
	return g, nil
}

// Clone returns a deep copy of the graph.
func (g *Undirected) Clone() *Undirected {
	out := NewUndirectedCap(len(g.idx))
	for id, s := range g.idx {
		out.AddNode(id)
		out.setAdjBulk(id, slices.Clone(g.adj[s]))
	}
	out.nEdges = g.nEdges
	return out
}

// Bytes estimates the in-memory size of the graph (see Directed.Bytes).
func (g *Undirected) Bytes() int64 {
	var b int64
	for s := range g.ids {
		b += int64(cap(g.adj[s]))*8 + 24
	}
	b += int64(cap(g.ids)) * 8
	b += int64(cap(g.free)) * 4
	b += int64(len(g.idx)) * 16
	return b
}

// AsUndirected returns the undirected view of a directed graph: each
// directed edge becomes an undirected edge, duplicates merged.
func AsUndirected(g *Directed) *Undirected {
	u := NewUndirectedCap(g.NumNodes())
	g.ForNodes(func(id int64) { u.AddNode(id) })
	g.ForEdges(func(src, dst int64) { u.AddEdge(src, dst) })
	return u
}
