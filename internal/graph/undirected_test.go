package graph

import (
	"testing"
	"testing/quick"
)

func TestUndirectedBasics(t *testing.T) {
	g := NewUndirected()
	if !g.AddEdge(1, 2) || g.AddEdge(2, 1) {
		t.Fatal("undirected edge not symmetric on insert")
	}
	if g.NumEdges() != 1 || g.NumNodes() != 2 {
		t.Fatalf("dims = (%d,%d)", g.NumNodes(), g.NumEdges())
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Fatal("HasEdge not symmetric")
	}
	if g.Deg(1) != 1 || g.Deg(2) != 1 {
		t.Fatal("degrees wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedSelfLoop(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(3, 3)
	if g.NumEdges() != 1 || g.Deg(3) != 1 {
		t.Fatalf("self-loop: edges=%d deg=%d", g.NumEdges(), g.Deg(3))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.DelEdge(3, 3) || g.NumEdges() != 0 {
		t.Fatal("self-loop delete failed")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedDelNode(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(1, 3)
	if !g.DelNode(2) {
		t.Fatal("DelNode failed")
	}
	if g.NumEdges() != 1 || !g.HasEdge(1, 3) {
		t.Fatalf("after DelNode: %d edges", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedDelEdgeSymmetric(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2)
	if !g.DelEdge(2, 1) {
		t.Fatal("DelEdge via reversed endpoints failed")
	}
	if g.HasEdge(1, 2) || g.NumEdges() != 0 {
		t.Fatal("edge survived delete")
	}
	if g.DelEdge(1, 2) || g.DelEdge(9, 9) {
		t.Fatal("DelEdge of absent edge returned true")
	}
}

func TestUndirectedForEdgesOncePerEdge(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2)
	g.AddEdge(2, 3)
	g.AddEdge(4, 4)
	count := 0
	g.ForEdges(func(src, dst int64) {
		if src > dst {
			t.Fatalf("ForEdges emitted src %d > dst %d", src, dst)
		}
		count++
	})
	if count != 3 {
		t.Fatalf("ForEdges visited %d edges, want 3", count)
	}
}

func TestAsUndirected(t *testing.T) {
	d := NewDirected()
	d.AddEdge(1, 2)
	d.AddEdge(2, 1) // merges into one undirected edge
	d.AddEdge(2, 3)
	u := AsUndirected(d)
	if u.NumEdges() != 2 {
		t.Fatalf("undirected edges = %d, want 2", u.NumEdges())
	}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedBulkBuild(t *testing.T) {
	ids := []int64{1, 2, 3}
	adj := [][]int64{{2, 3}, {1}, {1, 3}} // includes a self-loop at 3
	g, err := BuildUndirectedBulk(ids, adj)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 3 {
		t.Fatalf("bulk edges = %d, want 3", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := BuildUndirectedBulk([]int64{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestUndirectedClone(t *testing.T) {
	g := NewUndirected()
	g.AddEdge(1, 2)
	c := g.Clone()
	c.AddEdge(3, 4)
	if g.NumEdges() != 1 || c.NumEdges() != 2 {
		t.Fatal("clone not independent")
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestUndirectedMatchesReferenceModel(t *testing.T) {
	type opcode struct {
		Op       uint8
		Src, Dst int8
	}
	norm := func(a, b int64) [2]int64 {
		if a > b {
			a, b = b, a
		}
		return [2]int64{a, b}
	}
	f := func(ops []opcode) bool {
		g := NewUndirected()
		ref := map[[2]int64]bool{}
		refNodes := map[int64]bool{}
		for _, o := range ops {
			src, dst := int64(o.Src%8), int64(o.Dst%8)
			switch o.Op % 4 {
			case 0:
				g.AddEdge(src, dst)
				ref[norm(src, dst)] = true
				refNodes[src], refNodes[dst] = true, true
			case 1:
				g.DelEdge(src, dst)
				delete(ref, norm(src, dst))
			case 2:
				g.AddNode(src)
				refNodes[src] = true
			case 3:
				g.DelNode(src)
				if refNodes[src] {
					delete(refNodes, src)
					for e := range ref {
						if e[0] == src || e[1] == src {
							delete(ref, e)
						}
					}
				}
			}
		}
		if g.Validate() != nil {
			return false
		}
		if g.NumNodes() != len(refNodes) || g.NumEdges() != int64(len(ref)) {
			return false
		}
		for e := range ref {
			if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
