package graph

import (
	"slices"

	"ringo/internal/par"
)

// View is a flat CSR snapshot of a Directed graph, the optimized read-only
// representation Ringo's algorithms run over (§2.2 of Perez et al.): node
// ids are mapped to dense indices in ascending id order, and both adjacency
// directions are translated into one arena-backed int32 array addressed
// through offset vectors. Building a View costs O(V log V + E) once; every
// algorithm over it then indexes flat arrays with no hashing. A View is an
// immutable snapshot — mutations to the source graph are not reflected —
// and is safe for concurrent use by any number of readers, which is what
// makes it cacheable across queries (see internal/core's view cache).
type View struct {
	ids    []int64 // dense index -> node id, ascending
	idx    map[int64]int32
	outOff []int64
	inOff  []int64
	arena  []int32 // out targets in arena[:E], in sources in arena[E:]
	out    []int32 // arena[:E:E]
	in     []int32 // arena[E:]
	// retain pins whatever owns externally backed arrays (a file mapping)
	// for the view's lifetime; nil for heap-built views. idx is nil for
	// such views — Index falls back to binary search over ids.
	retain any
}

// BuildView snapshots a directed graph into its CSR view, in parallel:
// the id space is sorted with the parallel sorter, per-node degrees are
// counted concurrently, and both adjacency directions are translated into
// disjoint ranges of one shared arena by all workers at once. Because dense
// indices are assigned in ascending id order and the source adjacency
// vectors are id-sorted, the translated vectors come out sorted with no
// re-sort pass.
func BuildView(g *Directed) *View {
	nslots := g.NumSlots()
	n := g.NumNodes()
	v := &View{
		ids: make([]int64, 0, n),
		idx: make(map[int64]int32, n),
	}
	for s := 0; s < nslots; s++ {
		if id, ok := g.IDAtSlot(s); ok {
			v.ids = append(v.ids, id)
		}
	}
	par.SortInt64s(v.ids)

	// denseSlot maps dense index -> source slot; slotDense the reverse.
	// Every dense index maps to a unique slot, so the parallel writes are
	// disjoint.
	denseSlot := make([]int32, n)
	slotDense := make([]int32, nslots)
	par.For(nslots, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			id, ok := g.IDAtSlot(s)
			if !ok {
				continue
			}
			d, _ := slices.BinarySearch(v.ids, id)
			denseSlot[d] = int32(s)
			slotDense[s] = int32(d)
		}
	})

	v.outOff = make([]int64, n+1)
	v.inOff = make([]int64, n+1)
	par.ForEach(n, func(i int) {
		s := int(denseSlot[i])
		v.outOff[i+1] = int64(len(g.outAdj[s]))
		v.inOff[i+1] = int64(len(g.inAdj[s]))
	})
	for i := 0; i < n; i++ {
		v.outOff[i+1] += v.outOff[i]
		v.inOff[i+1] += v.inOff[i]
	}
	e := v.outOff[n]
	v.arena = make([]int32, e+v.inOff[n])
	v.out = v.arena[:e:e]
	v.in = v.arena[e:]

	// The id->dense map is only consulted for algorithm entry points
	// (Index), never during translation, so it builds sequentially while
	// the workers fill both arena halves.
	par.Do(
		func() {
			for i, id := range v.ids {
				v.idx[id] = int32(i)
			}
		},
		func() {
			par.ForEach(n, func(i int) {
				s := int(denseSlot[i])
				at := v.outOff[i]
				for _, dst := range g.outAdj[s] {
					v.out[at] = slotDense[g.idx[dst]]
					at++
				}
			})
		},
		func() {
			par.ForEach(n, func(i int) {
				s := int(denseSlot[i])
				at := v.inOff[i]
				for _, src := range g.inAdj[s] {
					v.in[at] = slotDense[g.idx[src]]
					at++
				}
			})
		},
	)
	return v
}

// NumNodes reports the number of nodes in the snapshot.
func (v *View) NumNodes() int { return len(v.ids) }

// NumEdges reports the number of directed edges in the snapshot.
func (v *View) NumEdges() int64 { return int64(len(v.out)) }

// IDs returns the dense-index -> node-id vector, ascending. The slice is
// the view's own storage; callers must not modify it.
func (v *View) IDs() []int64 { return v.ids }

// ID returns the node id at dense index i.
func (v *View) ID(i int32) int64 { return v.ids[i] }

// Index returns the dense index of a node id. Heap-built views answer from
// the id->dense hash map; views assembled over external arrays (mapped
// graphs) have no map and binary-search the ascending id vector instead —
// Index is only consulted at algorithm entry points, never per edge, so the
// O(log V) lookup costs nothing measurable while keeping a mapped file
// usable with zero decoded state.
func (v *View) Index(id int64) (int32, bool) {
	if v.idx != nil {
		i, ok := v.idx[id]
		return i, ok
	}
	i, ok := slices.BinarySearch(v.ids, id)
	if !ok {
		return 0, false
	}
	return int32(i), true
}

// Out returns the sorted dense out-neighbor indices of dense index u. The
// slice aliases the view's arena; callers must not modify it.
func (v *View) Out(u int32) []int32 { return v.out[v.outOff[u]:v.outOff[u+1]] }

// In returns the sorted dense in-neighbor indices of dense index u (see Out
// for aliasing rules).
func (v *View) In(u int32) []int32 { return v.in[v.inOff[u]:v.inOff[u+1]] }

// OutDeg returns the out-degree of dense index u.
func (v *View) OutDeg(u int32) int { return int(v.outOff[u+1] - v.outOff[u]) }

// InDeg returns the in-degree of dense index u.
func (v *View) InDeg(u int32) int { return int(v.inOff[u+1] - v.inOff[u]) }

// Bytes estimates the in-memory size of the view, the quantity the view
// cache reports in its stats.
func (v *View) Bytes() int64 {
	return int64(cap(v.ids))*8 +
		int64(cap(v.outOff)+cap(v.inOff))*8 +
		int64(cap(v.arena))*4 +
		int64(len(v.idx))*16
}

// UView is the undirected counterpart of View: one offset vector and one
// arena-backed neighbor array. Self-loops appear once, as in Undirected.
type UView struct {
	ids   []int64
	idx   map[int64]int32
	off   []int64
	arena []int32
	// retain pins external array owners; see View.retain.
	retain any
}

// BuildUView snapshots an undirected graph into its CSR view (see BuildView
// for the construction strategy).
func BuildUView(g *Undirected) *UView {
	nslots := g.NumSlots()
	n := g.NumNodes()
	v := &UView{
		ids: make([]int64, 0, n),
		idx: make(map[int64]int32, n),
	}
	for s := 0; s < nslots; s++ {
		if id, ok := g.IDAtSlot(s); ok {
			v.ids = append(v.ids, id)
		}
	}
	par.SortInt64s(v.ids)

	denseSlot := make([]int32, n)
	slotDense := make([]int32, nslots)
	par.For(nslots, func(lo, hi int) {
		for s := lo; s < hi; s++ {
			id, ok := g.IDAtSlot(s)
			if !ok {
				continue
			}
			d, _ := slices.BinarySearch(v.ids, id)
			denseSlot[d] = int32(s)
			slotDense[s] = int32(d)
		}
	})

	v.off = make([]int64, n+1)
	par.ForEach(n, func(i int) {
		v.off[i+1] = int64(len(g.adj[denseSlot[i]]))
	})
	for i := 0; i < n; i++ {
		v.off[i+1] += v.off[i]
	}
	v.arena = make([]int32, v.off[n])

	par.Do(
		func() {
			for i, id := range v.ids {
				v.idx[id] = int32(i)
			}
		},
		func() {
			par.ForEach(n, func(i int) {
				at := v.off[i]
				for _, nbr := range g.adj[denseSlot[i]] {
					v.arena[at] = slotDense[g.idx[nbr]]
					at++
				}
			})
		},
	)
	return v
}

// NumNodes reports the number of nodes in the snapshot.
func (v *UView) NumNodes() int { return len(v.ids) }

// NumEdges reports the number of undirected edges in the snapshot
// (self-loops count once).
func (v *UView) NumEdges() int64 {
	var loops int64
	for u := int32(0); int(u) < len(v.ids); u++ {
		if _, found := slices.BinarySearch(v.Adj(u), u); found {
			loops++
		}
	}
	return (int64(len(v.arena)) + loops) / 2
}

// IDs returns the dense-index -> node-id vector, ascending (read-only).
func (v *UView) IDs() []int64 { return v.ids }

// ID returns the node id at dense index i.
func (v *UView) ID(i int32) int64 { return v.ids[i] }

// Index returns the dense index of a node id (see View.Index: mapped views
// binary-search the id vector instead of hashing).
func (v *UView) Index(id int64) (int32, bool) {
	if v.idx != nil {
		i, ok := v.idx[id]
		return i, ok
	}
	i, ok := slices.BinarySearch(v.ids, id)
	if !ok {
		return 0, false
	}
	return int32(i), true
}

// Adj returns the sorted dense neighbor indices of dense index u. The slice
// aliases the view's arena; callers must not modify it.
func (v *UView) Adj(u int32) []int32 { return v.arena[v.off[u]:v.off[u+1]] }

// Deg returns the degree of dense index u (self-loops count once).
func (v *UView) Deg(u int32) int { return int(v.off[u+1] - v.off[u]) }

// Bytes estimates the in-memory size of the view.
func (v *UView) Bytes() int64 {
	return int64(cap(v.ids))*8 +
		int64(cap(v.off))*8 +
		int64(cap(v.arena))*4 +
		int64(len(v.idx))*16
}
