package graph

import (
	"math/rand"
	"slices"
	"testing"
)

// randomDirected builds a directed graph with AddEdge (so slot order differs
// from id order) and a few node deletions (so the slot space has tombstones).
func randomDirected(t *testing.T, n, m int, seed int64) *Directed {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := NewDirected()
	for i := 0; i < m; i++ {
		g.AddEdge(int64(rng.Intn(n)), int64(rng.Intn(n)))
	}
	// Delete a handful of nodes to exercise tombstoned slots.
	for i := 0; i < n/10; i++ {
		g.DelNode(int64(rng.Intn(n)))
	}
	return g
}

func TestBuildViewMatchesDirected(t *testing.T) {
	g := randomDirected(t, 200, 800, 1)
	v := BuildView(g)
	if v.NumNodes() != g.NumNodes() {
		t.Fatalf("view has %d nodes, graph %d", v.NumNodes(), g.NumNodes())
	}
	if v.NumEdges() != g.NumEdges() {
		t.Fatalf("view has %d edges, graph %d", v.NumEdges(), g.NumEdges())
	}
	if !slices.IsSorted(v.IDs()) {
		t.Fatalf("view ids not ascending")
	}
	for i, id := range v.IDs() {
		di, ok := v.Index(id)
		if !ok || di != int32(i) {
			t.Fatalf("Index(%d) = %d,%v; want %d", id, di, ok, i)
		}
		wantOut := g.OutNeighbors(id)
		gotOut := v.Out(int32(i))
		if len(wantOut) != len(gotOut) {
			t.Fatalf("node %d: out degree %d vs %d", id, len(gotOut), len(wantOut))
		}
		if !slices.IsSorted(gotOut) {
			t.Fatalf("node %d: out vector not sorted", id)
		}
		for j, di := range gotOut {
			if v.ID(di) != wantOut[j] {
				t.Fatalf("node %d out[%d]: got id %d want %d", id, j, v.ID(di), wantOut[j])
			}
		}
		wantIn := g.InNeighbors(id)
		gotIn := v.In(int32(i))
		if len(wantIn) != len(gotIn) {
			t.Fatalf("node %d: in degree %d vs %d", id, len(gotIn), len(wantIn))
		}
		for j, di := range gotIn {
			if v.ID(di) != wantIn[j] {
				t.Fatalf("node %d in[%d]: got id %d want %d", id, j, v.ID(di), wantIn[j])
			}
		}
		if v.OutDeg(int32(i)) != len(wantOut) || v.InDeg(int32(i)) != len(wantIn) {
			t.Fatalf("node %d: degree accessors disagree with vectors", id)
		}
	}
}

func TestBuildViewEmptyAndLoops(t *testing.T) {
	v := BuildView(NewDirected())
	if v.NumNodes() != 0 || v.NumEdges() != 0 {
		t.Fatalf("empty graph view not empty")
	}
	g := NewDirected()
	g.AddEdge(5, 5)
	g.AddEdge(5, 2)
	v = BuildView(g)
	if v.NumEdges() != 2 {
		t.Fatalf("self-loop lost: %d edges", v.NumEdges())
	}
	i, _ := v.Index(5)
	if _, found := slices.BinarySearch(v.Out(i), i); !found {
		t.Fatalf("self-loop not in out vector")
	}
}

func TestBuildUViewMatchesUndirected(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := NewUndirected()
	for i := 0; i < 800; i++ {
		g.AddEdge(int64(rng.Intn(200)), int64(rng.Intn(200)))
	}
	for i := 0; i < 20; i++ {
		g.DelNode(int64(rng.Intn(200)))
	}
	v := BuildUView(g)
	if v.NumNodes() != g.NumNodes() {
		t.Fatalf("uview has %d nodes, graph %d", v.NumNodes(), g.NumNodes())
	}
	if v.NumEdges() != g.NumEdges() {
		t.Fatalf("uview has %d edges, graph %d", v.NumEdges(), g.NumEdges())
	}
	for i, id := range v.IDs() {
		want := g.Neighbors(id)
		got := v.Adj(int32(i))
		if len(want) != len(got) {
			t.Fatalf("node %d: degree %d vs %d", id, len(got), len(want))
		}
		if !slices.IsSorted(got) {
			t.Fatalf("node %d: adjacency not sorted", id)
		}
		for j, di := range got {
			if v.ID(di) != want[j] {
				t.Fatalf("node %d adj[%d]: got id %d want %d", id, j, v.ID(di), want[j])
			}
		}
	}
}

func BenchmarkBuildView(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := NewDirected()
	for i := 0; i < 200_000; i++ {
		g.AddEdge(int64(rng.Intn(50_000)), int64(rng.Intn(50_000)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildView(g)
	}
}
