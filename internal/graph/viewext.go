package graph

import (
	"fmt"
	"sync"

	"ringo/internal/par"
)

// This file is the boundary between CSR views and external storage
// (internal/extmem's mmap-backed RNGM images): constructors that assemble a
// View/UView directly over caller-owned arrays without copying or hashing,
// accessors that expose a view's backing arrays for zero-copy
// serialization, and the undirected projection that lets orientation-blind
// algorithms run over a mapped directed graph that has no in-heap Directed
// behind it.

// ViewParts returns the view's backing arrays: the ascending id vector,
// both offset vectors, and the out/in neighbor arrays. The slices are the
// view's own storage — callers must treat them as read-only. This is what
// a zero-copy serializer (extmem.SaveView) writes to disk section by
// section.
func (v *View) ViewParts() (ids []int64, outOff, inOff []int64, out, in []int32) {
	return v.ids, v.outOff, v.inOff, v.out, v.in
}

// UViewParts is ViewParts for the undirected view: ids, the offset vector,
// and the neighbor arena.
func (v *UView) UViewParts() (ids []int64, off []int64, arena []int32) {
	return v.ids, v.off, v.arena
}

// OutEdgesIn reports the number of out-edges of dense nodes [lo, hi) — the
// block-occupancy probe semi-external scheduling uses to skip edge blocks
// with nothing to stream (two offset reads, no arena access).
func (v *View) OutEdgesIn(lo, hi int32) int64 { return v.outOff[hi] - v.outOff[lo] }

// InEdgesIn is OutEdgesIn for the in-direction.
func (v *View) InEdgesIn(lo, hi int32) int64 { return v.inOff[hi] - v.inOff[lo] }

// ViewFromArrays assembles a directed CSR view directly over caller-owned
// arrays — the zero-decode path for mmap-backed graphs: the arrays may
// alias a file mapping, in which case retain must pin whatever owns the
// mapping so it cannot be unmapped while the view is reachable. No id->
// dense map is built; Index binary-searches ids instead.
//
// The arrays are fully validated before the view is returned (strictly
// ascending ids, monotone offset vectors that agree with the array
// lengths, every neighbor index in range, per-node neighbor vectors
// sorted), so a corrupt or malicious file yields a named error here, never
// an out-of-bounds panic in an algorithm later.
func ViewFromArrays(ids []int64, outOff, inOff []int64, out, in []int32, retain any) (*View, error) {
	n := len(ids)
	if err := checkIDs(ids); err != nil {
		return nil, err
	}
	if err := checkOffsets("out", outOff, n, len(out)); err != nil {
		return nil, err
	}
	if err := checkOffsets("in", inOff, n, len(in)); err != nil {
		return nil, err
	}
	if len(out) != len(in) {
		return nil, fmt.Errorf("graph: view arrays hold %d out-edges but %d in-edges", len(out), len(in))
	}
	if err := checkNeighbors("out", outOff, out, n); err != nil {
		return nil, err
	}
	if err := checkNeighbors("in", inOff, in, n); err != nil {
		return nil, err
	}
	return &View{ids: ids, outOff: outOff, inOff: inOff, out: out, in: in, retain: retain}, nil
}

// UViewFromArrays is ViewFromArrays for the undirected view: one offset
// vector and one neighbor arena, validated the same way.
func UViewFromArrays(ids []int64, off []int64, arena []int32, retain any) (*UView, error) {
	n := len(ids)
	if err := checkIDs(ids); err != nil {
		return nil, err
	}
	if err := checkOffsets("adjacency", off, n, len(arena)); err != nil {
		return nil, err
	}
	if err := checkNeighbors("adjacency", off, arena, n); err != nil {
		return nil, err
	}
	return &UView{ids: ids, off: off, arena: arena, retain: retain}, nil
}

func checkIDs(ids []int64) error {
	for i := 1; i < len(ids); i++ {
		if ids[i] <= ids[i-1] {
			return fmt.Errorf("graph: view id vector not strictly ascending at index %d (%d after %d)", i, ids[i], ids[i-1])
		}
	}
	return nil
}

func checkOffsets(name string, off []int64, n, arenaLen int) error {
	if len(off) != n+1 {
		return fmt.Errorf("graph: %s offset vector has %d entries, want %d for %d nodes", name, len(off), n+1, n)
	}
	if off[0] != 0 {
		return fmt.Errorf("graph: %s offset vector starts at %d, want 0", name, off[0])
	}
	for i := 1; i <= n; i++ {
		if off[i] < off[i-1] {
			return fmt.Errorf("graph: %s offset vector decreases at index %d (%d after %d)", name, i, off[i], off[i-1])
		}
	}
	if off[n] != int64(arenaLen) {
		return fmt.Errorf("graph: %s offsets claim %d edges, arena holds %d", name, off[n], arenaLen)
	}
	return nil
}

// checkNeighbors validates every neighbor index is in [0, n) and each
// node's vector is sorted ascending — the invariants algorithms index and
// binary-search by. The scan is O(E) over flat int32s, parallelized; it is
// the price of trusting a file's arenas without decoding them.
func checkNeighbors(name string, off []int64, arena []int32, n int) error {
	var mu sync.Mutex
	var bad error
	report := func(err error) {
		mu.Lock()
		if bad == nil {
			bad = err
		}
		mu.Unlock()
	}
	par.For(n, func(lo, hi int) {
		for u := lo; u < hi; u++ {
			prev := int32(-1)
			for _, w := range arena[off[u]:off[u+1]] {
				if w < 0 || int(w) >= n {
					report(fmt.Errorf("graph: %s vector of dense node %d names index %d, outside [0,%d)", name, u, w, n))
					return
				}
				if w < prev {
					report(fmt.Errorf("graph: %s vector of dense node %d is not sorted", name, u))
					return
				}
				prev = w
			}
		}
	})
	return bad
}

// ProjectUView builds the undirected projection of a directed view: each
// node's neighbor vector is the merged, deduplicated union of its out- and
// in-vectors (both already sorted). This is how orientation-blind
// algorithms (triangles, bridges, k-core) run over a mapped directed graph,
// which has no in-heap Directed to project through AsUndirected: the
// projection reads the mapped arenas once and materializes a heap UView
// that caches like any other.
func ProjectUView(v *View) *UView {
	n := v.NumNodes()
	u := &UView{
		ids: v.ids,
		off: make([]int64, n+1),
	}
	// Pass 1: merged degree per node (count only, no writes).
	par.ForEach(n, func(i int) {
		u.off[i+1] = int64(mergedLen(v.Out(int32(i)), v.In(int32(i))))
	})
	for i := 0; i < n; i++ {
		u.off[i+1] += u.off[i]
	}
	u.arena = make([]int32, u.off[n])
	// Pass 2: merge into disjoint arena ranges.
	par.ForEach(n, func(i int) {
		mergeInto(u.arena[u.off[i]:u.off[i+1]], v.Out(int32(i)), v.In(int32(i)))
	})
	// The projection shares the source view's ids (possibly mapped), so it
	// must pin whatever the source pins and answer Index by binary search.
	u.retain = v.retain
	return u
}

// mergedLen counts the union size of two sorted int32 slices.
func mergedLen(a, b []int32) int {
	n, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			i++
			j++
		}
		n++
	}
	return n + (len(a) - i) + (len(b) - j)
}

// mergeInto writes the sorted union of a and b into dst (sized by
// mergedLen).
func mergeInto(dst []int32, a, b []int32) {
	k, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			dst[k] = a[i]
			i++
		case a[i] > b[j]:
			dst[k] = b[j]
			j++
		default:
			dst[k] = a[i]
			i++
			j++
		}
		k++
	}
	k += copy(dst[k:], a[i:])
	copy(dst[k:], b[j:])
}
