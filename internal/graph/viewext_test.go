package graph

import (
	"slices"
	"testing"
)

func TestViewFromArraysRoundTrip(t *testing.T) {
	v := BuildView(randomDirected(t, 200, 1500, 1))
	ids, outOff, inOff, out, in := v.ViewParts()
	got, err := ViewFromArrays(ids, outOff, inOff, out, in, nil)
	if err != nil {
		t.Fatalf("ViewFromArrays rejected a valid view: %v", err)
	}
	for i := 0; i < v.NumNodes(); i++ {
		if !slices.Equal(v.Out(int32(i)), got.Out(int32(i))) || !slices.Equal(v.In(int32(i)), got.In(int32(i))) {
			t.Fatalf("adjacency of dense %d differs", i)
		}
	}
	// The reconstructed view has no hash map; Index must still resolve
	// every id (binary search) and miss absent ones.
	for _, id := range ids {
		wi, _ := v.Index(id)
		gi, ok := got.Index(id)
		if !ok || wi != gi {
			t.Fatalf("Index(%d) = %d,%v; want %d,true", id, gi, ok, wi)
		}
	}
	if _, ok := got.Index(-5); ok {
		t.Fatalf("Index hit on absent id")
	}
}

func TestViewFromArraysRejectsBadShapes(t *testing.T) {
	v := BuildView(randomDirected(t, 50, 300, 2))
	ids, outOff, inOff, out, in := v.ViewParts()

	badIDs := slices.Clone(ids)
	badIDs[3] = badIDs[2]
	if _, err := ViewFromArrays(badIDs, outOff, inOff, out, in, nil); err == nil {
		t.Fatalf("accepted non-ascending ids")
	}

	badOff := slices.Clone(outOff)
	badOff[0] = 1
	if _, err := ViewFromArrays(ids, badOff, inOff, out, in, nil); err == nil {
		t.Fatalf("accepted offset vector not starting at 0")
	}

	badOut := slices.Clone(out)
	badOut[0] = int32(len(ids)) // out of range
	if _, err := ViewFromArrays(ids, outOff, inOff, badOut, in, nil); err == nil {
		t.Fatalf("accepted out-of-range neighbor")
	}

	if _, err := ViewFromArrays(ids, outOff[:len(outOff)-1], inOff, out, in, nil); err == nil {
		t.Fatalf("accepted short offset vector")
	}
}

func TestProjectUView(t *testing.T) {
	g := randomDirected(t, 150, 900, 3)
	// A few isolated nodes and deletions so the projection sees empty
	// vectors and renumbered dense indices.
	for i := int64(150); i < 160; i++ {
		g.AddNode(i)
	}
	for i := int64(0); i < 30; i += 3 {
		g.DelNode(i)
	}
	v := BuildView(g)
	u := ProjectUView(v)

	if !slices.Equal(v.IDs(), u.IDs()) {
		t.Fatalf("projection changed the id space")
	}
	for i := 0; i < v.NumNodes(); i++ {
		want := map[int32]bool{}
		for _, w := range v.Out(int32(i)) {
			want[w] = true
		}
		for _, w := range v.In(int32(i)) {
			want[w] = true
		}
		adj := u.Adj(int32(i))
		if len(adj) != len(want) {
			t.Fatalf("dense %d: projected degree %d, want %d", i, len(adj), len(want))
		}
		if !slices.IsSorted(adj) {
			t.Fatalf("dense %d: projected adjacency not sorted", i)
		}
		for _, w := range adj {
			if !want[w] {
				t.Fatalf("dense %d: projected neighbor %d not in out/in union", i, w)
			}
		}
	}
}
