// Package obs is Ringo's dependency-free observability substrate: named,
// labeled metric families — atomic counters, gauges, and log₂-bucketed
// latency histograms with percentile extraction — behind a concurrency-safe
// Registry. It is the single source of truth every telemetry surface reads:
// the Prometheus text exposition on GET /metrics (prom.go), the JSON
// GET /stats endpoint, and the shell's stats verb all render the same
// registry, so they can never disagree.
//
// Design constraints, in order: recording must be cheap enough to leave on
// in the hottest paths (a Counter.Inc or Histogram.Observe is one or three
// uncontended atomic adds, well under 50ns — BenchmarkObsCounter and
// BenchmarkObsHistogram guard this), the package must not import anything
// beyond the standard library, and a Registry must be safe to hammer from
// every goroutine in the process.
package obs

import (
	"fmt"
	"math/bits"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name="value" dimension of a metric series. Series within a
// family are keyed by their full, order-independent label set.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. The zero value is ready to
// use; obtain registered instances from Registry.Counter.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down (in-flight requests, queue
// depth). The zero value is ready to use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of log₂ histogram buckets: bucket 0 holds
// zero-duration observations, bucket i (i ≥ 1) holds durations d with
// 2^(i-1) ≤ d < 2^i nanoseconds. 64 buckets cover every representable
// duration (bits.Len64 of the largest int64 is 63).
const histBuckets = 64

// Histogram records durations into log₂-spaced buckets. Observations are
// lock-free (three atomic adds); percentiles are extracted on read by
// walking the bucket counts with linear interpolation inside the landing
// bucket. The zero value is ready to use.
type Histogram struct {
	sum     atomic.Int64 // total observed nanoseconds
	buckets [histBuckets]atomic.Uint64
}

// bucketIndex maps a nanosecond duration to its log₂ bucket.
func bucketIndex(ns int64) int {
	if ns < 0 {
		ns = 0
	}
	return bits.Len64(uint64(ns))
}

// bucketUpperNS is the inclusive upper bound of bucket i in nanoseconds.
func bucketUpperNS(i int) uint64 {
	if i <= 0 {
		return 0
	}
	if i >= 64 {
		i = 64
	}
	return 1<<uint(i) - 1
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.sum.Add(ns)
	h.buckets[bucketIndex(ns)].Add(1)
}

// snapshot reads the bucket counts once. The reads are individually atomic
// but not collectively: concurrent observers may land between them, so the
// derived total is "a" consistent recent value, which is all percentile
// extraction and exposition need.
func (h *Histogram) snapshot() (counts [histBuckets]uint64, total uint64) {
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	return counts, total
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	_, total := h.snapshot()
	return total
}

// Sum returns the total observed duration.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Quantile returns the q-quantile (0 < q ≤ 1) of the observed durations,
// interpolated linearly within the landing log₂ bucket; 0 when empty. The
// log₂ bucketing bounds the relative error at 2x, which is exact enough to
// tell a 300µs p99 from a 30ms one.
func (h *Histogram) Quantile(q float64) time.Duration {
	counts, total := h.snapshot()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c > rank {
			lower := int64(0)
			if i > 0 {
				lower = int64(bucketUpperNS(i-1)) + 1
			}
			upper := int64(bucketUpperNS(i))
			frac := float64(rank-cum) / float64(c)
			return time.Duration(lower) + time.Duration(frac*float64(upper-lower))
		}
		cum += c
	}
	return time.Duration(bucketUpperNS(histBuckets - 1))
}

// HistStats is a histogram summary for human-facing surfaces (the stats
// verb, reports).
type HistStats struct {
	Count         uint64
	Sum           time.Duration
	P50, P90, P99 time.Duration
}

// Stats summarizes the histogram.
func (h *Histogram) Stats() HistStats {
	return HistStats{
		Count: h.Count(),
		Sum:   h.Sum(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// metricType discriminates the families in a registry.
type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled member of a family. Exactly one of the value
// fields is set; fn-backed series (CounterFunc/GaugeFunc) are evaluated at
// read time so existing sources of truth (an LRU's internal hit counter)
// register without being rewritten.
type series struct {
	labels []Label
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
}

// value evaluates the series' current scalar (not meaningful for
// histograms).
func (s *series) value() float64 {
	switch {
	case s.c != nil:
		return float64(s.c.Value())
	case s.g != nil:
		return float64(s.g.Value())
	case s.fn != nil:
		return s.fn()
	default:
		return 0
	}
}

// family is one named metric with a fixed type and help string, holding
// every labeled series registered under the name.
type family struct {
	name string
	help string
	typ  metricType

	mu     sync.RWMutex
	series map[string]*series
}

// Registry is a named collection of metric families, safe for concurrent
// registration and recording. Register-or-get is idempotent: asking for
// the same (name, labels) twice returns the same instance, so hot paths
// may look metrics up per call without keeping handles.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

var (
	validMetricName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	validLabelName  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// family returns (creating if needed) the family for name, panicking on a
// type conflict or malformed name — both are programmer errors no caller
// should handle at runtime.
func (r *Registry) family(name, help string, typ metricType) *family {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		if !validMetricName.MatchString(name) {
			panic(fmt.Sprintf("obs: invalid metric name %q", name))
		}
		r.mu.Lock()
		if f, ok = r.families[name]; !ok {
			f = &family{name: name, help: help, typ: typ, series: make(map[string]*series)}
			r.families[name] = f
		}
		r.mu.Unlock()
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q registered as %s, requested as %s", name, f.typ, typ))
	}
	return f
}

// seriesKey canonicalizes a label set: sorted by key, joined with
// unprintable separators so no legal label value can collide.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	sorted := make([]Label, len(labels))
	copy(sorted, labels)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	var b strings.Builder
	for _, l := range sorted {
		if !validLabelName.MatchString(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		b.WriteString(l.Key)
		b.WriteByte(0x1f)
		b.WriteString(l.Value)
		b.WriteByte(0x1e)
	}
	return b.String()
}

// getSeries returns (creating via mk if needed) the series for the label
// set.
func (f *family) getSeries(labels []Label, mk func() *series) *series {
	key := seriesKey(labels)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if ok {
		return s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok = f.series[key]; ok {
		return s
	}
	s = mk()
	s.labels = make([]Label, len(labels))
	copy(s.labels, labels)
	sort.Slice(s.labels, func(i, j int) bool { return s.labels[i].Key < s.labels[j].Key })
	f.series[key] = s
	return s
}

// Counter returns the registered counter for (name, labels), creating it
// on first use.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	f := r.family(name, help, counterType)
	return f.getSeries(labels, func() *series { return &series{c: &Counter{}} }).c
}

// Gauge returns the registered gauge for (name, labels), creating it on
// first use.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	f := r.family(name, help, gaugeType)
	return f.getSeries(labels, func() *series { return &series{g: &Gauge{}} }).g
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — for monotone sources that already count internally (cache
// hit totals). Re-registering the same (name, labels) keeps the first fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, counterType)
	f.getSeries(labels, func() *series { return &series{fn: fn} })
}

// GaugeFunc registers a gauge series whose value is read from fn at scrape
// time — for instantaneous sources (goroutine count, heap bytes, cache
// entries). Re-registering the same (name, labels) keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	f := r.family(name, help, gaugeType)
	f.getSeries(labels, func() *series { return &series{fn: fn} })
}

// Histogram returns the registered histogram for (name, labels), creating
// it on first use. Histogram families record durations and expose in
// seconds.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	f := r.family(name, help, histogramType)
	return f.getSeries(labels, func() *series { return &series{h: &Histogram{}} }).h
}

// SeriesValue is the read-side view of one series.
type SeriesValue struct {
	Labels []Label
	// Value is the current scalar for counters and gauges.
	Value float64
	// Hist summarizes histogram series; nil otherwise.
	Hist *HistStats
}

// Get returns the value of a label. Missing labels read as "".
func (sv SeriesValue) Get(key string) string {
	for _, l := range sv.Labels {
		if l.Key == key {
			return l.Value
		}
	}
	return ""
}

// Series returns every series registered under name, sorted by label set;
// nil if the family does not exist.
func (r *Registry) Series(name string) []SeriesValue {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok {
		return nil
	}
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SeriesValue, 0, len(keys))
	for _, k := range keys {
		s := f.series[k]
		sv := SeriesValue{Labels: s.labels}
		if s.h != nil {
			st := s.h.Stats()
			sv.Hist = &st
		} else {
			sv.Value = s.value()
		}
		out = append(out, sv)
	}
	f.mu.RUnlock()
	return out
}

// Value reads one scalar series (counter or gauge, including fn-backed
// ones), reporting whether it exists. This is what lets GET /stats render
// JSON from the same registry /metrics scrapes.
func (r *Registry) Value(name string, labels ...Label) (float64, bool) {
	r.mu.RLock()
	f, ok := r.families[name]
	r.mu.RUnlock()
	if !ok || f.typ == histogramType {
		return 0, false
	}
	key := seriesKey(labels)
	f.mu.RLock()
	s, ok := f.series[key]
	f.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return s.value(), true
}

// Names returns every registered family name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.families))
	for name := range r.families {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
