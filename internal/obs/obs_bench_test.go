package obs

import (
	"io"
	"testing"
	"time"
)

// The instrumentation budget: recording must stay well under 50ns/op so
// the per-verb and per-request metrics can be left on unconditionally in
// the hot paths. These run in the CI bench-smoke job; the ringo-bench
// -table obs report prints the same figures wall-clock style.

func BenchmarkObsCounter(b *testing.B) {
	reg := NewRegistry()
	c := reg.Counter("bench_total", "benchmark counter")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkObsCounterLookup(b *testing.B) {
	reg := NewRegistry()
	reg.Counter("bench_total", "benchmark counter", L("verb", "pagerank"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		reg.Counter("bench_total", "benchmark counter", L("verb", "pagerank")).Inc()
	}
}

func BenchmarkObsHistogram(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_seconds", "benchmark histogram")
	d := 137 * time.Microsecond
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(d)
	}
}

func BenchmarkObsHistogramParallel(b *testing.B) {
	reg := NewRegistry()
	h := reg.Histogram("bench_seconds", "benchmark histogram")
	d := 137 * time.Microsecond
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(d)
		}
	})
}

func BenchmarkObsWritePrometheus(b *testing.B) {
	reg := NewRegistry()
	for _, verb := range []string{"pagerank", "select", "join", "algo", "top", "show", "ls", "script"} {
		reg.Counter("verbs_total", "calls", L("verb", verb)).Add(100)
		h := reg.Histogram("verb_seconds", "latency", L("verb", verb))
		for i := 0; i < 64; i++ {
			h.Observe(time.Duration(i) * time.Millisecond)
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := reg.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}
