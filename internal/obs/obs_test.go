package obs

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrent hammers one registry from parallel goroutines —
// half of them looking the metrics up by name per operation, the way hot
// paths do — and asserts exact totals: atomics may not lose updates, and
// register-or-get must always converge on the same instances. Run under
// -race in CI.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 16
	const perG = 5000

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if g%2 == 0 {
					// Handle-free use: look up per operation.
					reg.Counter("hammer_total", "h").Inc()
					reg.Histogram("hammer_seconds", "h").Observe(time.Duration(i%1000) * time.Microsecond)
					reg.Gauge("hammer_gauge", "h").Add(1)
				} else {
					c := reg.Counter("hammer_total", "h")
					h := reg.Histogram("hammer_seconds", "h")
					ga := reg.Gauge("hammer_gauge", "h")
					c.Inc()
					h.Observe(time.Duration(i%1000) * time.Microsecond)
					ga.Add(1)
				}
			}
		}(g)
	}
	wg.Wait()

	const want = goroutines * perG
	if got := reg.Counter("hammer_total", "h").Value(); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if got := reg.Gauge("hammer_gauge", "h").Value(); got != want {
		t.Errorf("gauge = %d, want %d", got, want)
	}
	h := reg.Histogram("hammer_seconds", "h")
	if got := h.Count(); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
	// Bucket counts must be non-negative and sum to the total; the
	// cumulative sequence must be monotone (trivially true of partial sums
	// of non-negative counts, but this is the invariant /metrics exposes).
	counts, total := h.snapshot()
	if total != want {
		t.Errorf("bucket sum = %d, want %d", total, want)
	}
	var cum, prev uint64
	for i, c := range counts {
		cum += c
		if cum < prev {
			t.Errorf("cumulative bucket %d decreased: %d < %d", i, cum, prev)
		}
		prev = cum
	}
}

// TestHistogramQuantiles checks the percentile extraction lands inside the
// right log₂ bucket.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 90 fast observations at ~1ms, 10 slow at ~1s.
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(time.Second)
	}
	if p50 := h.Quantile(0.50); p50 < 512*time.Microsecond || p50 > 2*time.Millisecond {
		t.Errorf("p50 = %v, want ~1ms", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512*time.Millisecond || p99 > 2*time.Second {
		t.Errorf("p99 = %v, want ~1s", p99)
	}
	if h.Sum() != 90*time.Millisecond+10*time.Second {
		t.Errorf("sum = %v", h.Sum())
	}
	var empty Histogram
	if empty.Quantile(0.99) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}

func TestHistogramBucketBounds(t *testing.T) {
	cases := []struct {
		ns   int64
		want int
	}{{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11}, {-5, 0}}
	for _, c := range cases {
		if got := bucketIndex(c.ns); got != c.want {
			t.Errorf("bucketIndex(%d) = %d, want %d", c.ns, got, c.want)
		}
	}
	// Every value must be ≤ its bucket's inclusive upper bound.
	for _, ns := range []int64{0, 1, 7, 1000, 123456, 1 << 40} {
		i := bucketIndex(ns)
		if uint64(ns) > bucketUpperNS(i) {
			t.Errorf("value %d above bucket %d upper bound %d", ns, i, bucketUpperNS(i))
		}
	}
}

func TestCounterAndGaugeFuncs(t *testing.T) {
	reg := NewRegistry()
	n := 41.0
	reg.CounterFunc("fn_total", "h", func() float64 { n++; return n })
	if v, ok := reg.Value("fn_total"); !ok || v != 42 {
		t.Errorf("Value(fn_total) = %v, %v", v, ok)
	}
	reg.GaugeFunc("fn_gauge", "h", func() float64 { return 7 }, L("x", "y"))
	if v, ok := reg.Value("fn_gauge", L("x", "y")); !ok || v != 7 {
		t.Errorf("Value(fn_gauge{x=y}) = %v, %v", v, ok)
	}
	if _, ok := reg.Value("fn_gauge"); ok {
		t.Error("unlabeled series should not exist")
	}
	if _, ok := reg.Value("nope"); ok {
		t.Error("missing family should not resolve")
	}
}

func TestSeriesAndLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("verbs_total", "h", L("verb", "pagerank")).Add(3)
	reg.Counter("verbs_total", "h", L("verb", "ls")).Add(1)
	// Label order must not mint a new series.
	reg.Counter("multi_total", "h", L("a", "1"), L("b", "2")).Inc()
	reg.Counter("multi_total", "h", L("b", "2"), L("a", "1")).Inc()

	sv := reg.Series("verbs_total")
	if len(sv) != 2 {
		t.Fatalf("got %d series, want 2", len(sv))
	}
	if sv[0].Get("verb") != "ls" || sv[0].Value != 1 {
		t.Errorf("series[0] = %+v", sv[0])
	}
	if sv[1].Get("verb") != "pagerank" || sv[1].Value != 3 {
		t.Errorf("series[1] = %+v", sv[1])
	}
	if v, _ := reg.Value("multi_total", L("a", "1"), L("b", "2")); v != 2 {
		t.Errorf("label order created distinct series: %v", v)
	}
}

func TestTypeConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "h")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge should panic")
		}
	}()
	reg.Gauge("x_total", "h")
}

// TestWritePrometheus validates the exposition end to end with a strict
// line-level parse: every sample belongs to an announced family, # TYPE
// and # HELP appear exactly once per family, no series repeats, histogram
// buckets are cumulative and consistent with _count.
func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("req_total", "Completed requests.", L("route", "GET /x"), L("class", "2xx")).Add(5)
	reg.Counter("req_total", "Completed requests.", L("route", "GET /x"), L("class", "5xx")).Add(1)
	reg.Gauge("inflight", "In-flight requests.").Set(2)
	reg.GaugeFunc("heap_bytes", "Heap bytes.", func() float64 { return 123456 })
	h := reg.Histogram("latency_seconds", `Latency with "quotes" and \slash.`, L("verb", "pagerank"))
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	// An empty histogram series must still expose +Inf/sum/count.
	reg.Histogram("latency_seconds", "", L("verb", "never"))

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	typeOf := map[string]string{}
	helpSeen := map[string]int{}
	seen := map[string]bool{}
	bucketCum := map[string]uint64{} // series (sans le) -> last cumulative value
	var lineNo int
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		lineNo++
		if line == "" {
			t.Fatalf("line %d: blank line in exposition", lineNo)
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			helpSeen[name]++
			if helpSeen[name] > 1 {
				t.Errorf("duplicate # HELP for %s", name)
			}
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, typ, _ := strings.Cut(rest, " ")
			if _, dup := typeOf[name]; dup {
				t.Errorf("duplicate # TYPE for %s", name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("bad type %q for %s", typ, name)
			}
			typeOf[name] = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		}
		// Sample line: name{labels} value — label values may contain
		// spaces, so split after the closing brace when labels are present.
		var key, valStr string
		if i := strings.Index(line, "} "); strings.Contains(line, "{") && i >= 0 {
			key, valStr = line[:i+1], line[i+2:]
		} else if k, v, ok := strings.Cut(line, " "); ok {
			key, valStr = k, v
		} else {
			t.Fatalf("line %d: malformed sample %q", lineNo, line)
		}
		if seen[key] {
			t.Errorf("duplicate series %q", key)
		}
		seen[key] = true
		name := key
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Errorf("line %d: unbalanced labels in %q", lineNo, key)
			}
			name = name[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if _, ok := typeOf[name]; !ok {
			if _, ok := typeOf[base]; !ok {
				t.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, line)
			}
		}
		if strings.HasSuffix(name, "_bucket") {
			v, err := strconv.ParseUint(valStr, 10, 64)
			if err != nil {
				t.Fatalf("line %d: bucket value %q: %v", lineNo, valStr, err)
			}
			// Strip the le label (always last) to key the series.
			sansLE := key[:strings.LastIndex(key, ",le=")] + "}"
			if !strings.Contains(key, ",le=") {
				sansLE = name // unlabeled histogram
			}
			if v < bucketCum[sansLE] {
				t.Errorf("line %d: bucket cumulative decreased for %s: %d < %d", lineNo, sansLE, v, bucketCum[sansLE])
			}
			bucketCum[sansLE] = v
		} else if _, err := strconv.ParseFloat(valStr, 64); err != nil {
			t.Fatalf("line %d: value %q: %v", lineNo, valStr, err)
		}
	}

	for _, want := range []string{
		`req_total{class="2xx",route="GET /x"} 5`,
		`req_total{class="5xx",route="GET /x"} 1`,
		"inflight 2",
		"heap_bytes 123456",
		`latency_seconds_count{verb="pagerank"} 100`,
		`latency_seconds_bucket{verb="never",le="+Inf"} 0`,
		`latency_seconds_count{verb="never"} 0`,
		`"quotes"`, // quotes are legal in HELP text, unescaped
		`\\slash`,  // backslashes are escaped in HELP text
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
	if typeOf["latency_seconds"] != "histogram" {
		t.Errorf("latency_seconds type = %q", typeOf["latency_seconds"])
	}
}

// TestWritePrometheusDeterministic pins the ordering contract: two writes
// of a quiesced registry are byte-identical.
func TestWritePrometheusDeterministic(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 10; i++ {
		reg.Counter("c_total", "h", L("i", fmt.Sprint(i))).Inc()
	}
	var a, b bytes.Buffer
	if err := reg.WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("exposition is not deterministic")
	}
}
