package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), hand-rolled so the package stays dependency-free:
//
//	# HELP ringo_http_requests_total Completed HTTP requests.
//	# TYPE ringo_http_requests_total counter
//	ringo_http_requests_total{class="2xx",route="GET /stats"} 12
//
// Families are emitted in name order, series in canonical label order, so
// output is deterministic for a quiesced registry. Histogram families are
// recorded internally in nanoseconds and exposed in seconds — cumulative
// `_bucket{le="..."}` lines at the log₂ bucket bounds (trailing empty
// buckets elided), then `_sum` and `_count`.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	families := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		families = append(families, r.families[name])
	}
	r.mu.RUnlock()

	for _, f := range families {
		if err := f.writePrometheus(w); err != nil {
			return err
		}
	}
	return nil
}

func (f *family) writePrometheus(w io.Writer) error {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ordered := make([]*series, 0, len(keys))
	for _, k := range keys {
		ordered = append(ordered, f.series[k])
	}
	f.mu.RUnlock()

	if len(ordered) == 0 {
		return nil
	}
	if f.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
		return err
	}
	for _, s := range ordered {
		var err error
		if f.typ == histogramType {
			err = writeHistogram(w, f.name, s)
		} else {
			_, err = fmt.Fprintf(w, "%s%s %s\n", f.name, formatLabels(s.labels), formatValue(s.value()))
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits one histogram series: cumulative buckets in
// seconds, +Inf, sum, count. The bucket counts are read once; total is
// their sum so the emitted series is internally consistent even while
// observers race the scrape.
func writeHistogram(w io.Writer, name string, s *series) error {
	counts, total := s.h.snapshot()
	last := 0
	for i, c := range counts {
		if c != 0 {
			last = i
		}
	}
	var cum uint64
	for i := 0; i <= last; i++ {
		cum += counts[i]
		le := strconv.FormatFloat(float64(bucketUpperNS(i))/1e9, 'g', -1, 64)
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(append(s.labels, Label{Key: "le", Value: le})), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, formatLabels(append(s.labels, Label{Key: "le", Value: "+Inf"})), total); err != nil {
		return err
	}
	sumSec := float64(s.h.sum.Load()) / 1e9
	if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", name, formatLabels(s.labels), formatValue(sumSec)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, formatLabels(s.labels), total)
	return err
}

// formatLabels renders {k="v",...} (empty string for no labels). The
// caller passes labels already sorted except for a trailing "le", which
// Prometheus conventionally keeps last anyway.
func formatLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatValue renders a sample value: integers without an exponent or
// decimal point (the common case for counters), everything else in Go's
// shortest-round-trip form.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
