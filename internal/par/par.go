// Package par provides the parallelism substrate used throughout the Ringo
// reproduction: static range-partitioned parallel loops, parallel reduction,
// and parallel sorting. It plays the role OpenMP plays in the original C++
// implementation (Perez et al., SIGMOD 2015, §2.5): a handful of primitives
// that parallelize the critical loops of table and graph processing — the
// sort-first bulk graph construction, the text-ingest pipeline, the CSR
// view builders (graph.BuildView/BuildUView) and the parallel algorithm
// variants all run on these loops.
//
// The primitives mirror OpenMP's static schedule deliberately: work splits
// into at most Workers() contiguous ranges up front, workers touch
// disjoint index ranges (no locks, no work stealing), and every call
// blocks until the loop completes. Callers own all cross-range
// synchronization — typically by writing to disjoint slices sized in
// advance.
package par

import (
	"runtime"
	"sync"
)

// Workers reports the degree of parallelism used by this package, which is
// runtime.GOMAXPROCS(0). All loop primitives split work into at most this
// many contiguous ranges, mirroring OpenMP's static schedule.
func Workers() int {
	return runtime.GOMAXPROCS(0)
}

// Range is a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Split partitions [0, n) into at most parts contiguous ranges of nearly
// equal size. It never returns empty ranges; for n == 0 it returns nil.
func Split(n, parts int) []Range {
	if n <= 0 || parts <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	out := make([]Range, 0, parts)
	chunk := n / parts
	rem := n % parts
	lo := 0
	for i := 0; i < parts; i++ {
		hi := lo + chunk
		if i < rem {
			hi++
		}
		out = append(out, Range{lo, hi})
		lo = hi
	}
	return out
}

// For runs fn over [0, n) split into contiguous ranges, one goroutine per
// worker. fn must be safe to call concurrently on disjoint ranges. For
// blocks until all ranges complete.
func For(n int, fn func(lo, hi int)) {
	ranges := Split(n, Workers())
	switch len(ranges) {
	case 0:
		return
	case 1:
		fn(ranges[0].Lo, ranges[0].Hi)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for _, r := range ranges {
		go func(r Range) {
			defer wg.Done()
			fn(r.Lo, r.Hi)
		}(r)
	}
	wg.Wait()
}

// ForEach runs fn for every index in [0, n) using For's range partitioning.
// It is a convenience wrapper for per-element loops.
func ForEach(n int, fn func(i int)) {
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(i)
		}
	})
}

// Do runs all fns concurrently and waits for them to finish.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}

// Reduce maps contiguous ranges of [0, n) through mapRange in parallel and
// folds the per-range results with combine. combine must be associative;
// results are folded in range order, so it need not be commutative. For
// n == 0 the identity value is returned.
func Reduce[T any](n int, identity T, mapRange func(lo, hi int) T, combine func(a, b T) T) T {
	ranges := Split(n, Workers())
	switch len(ranges) {
	case 0:
		return identity
	case 1:
		return combine(identity, mapRange(ranges[0].Lo, ranges[0].Hi))
	}
	parts := make([]T, len(ranges))
	var wg sync.WaitGroup
	wg.Add(len(ranges))
	for i, r := range ranges {
		go func(i int, r Range) {
			defer wg.Done()
			parts[i] = mapRange(r.Lo, r.Hi)
		}(i, r)
	}
	wg.Wait()
	acc := identity
	for _, p := range parts {
		acc = combine(acc, p)
	}
	return acc
}

// SumInt is Reduce specialized to summing int64 contributions, the most
// common reduction in the benchmarks (e.g. counting selected rows or
// triangles).
func SumInt(n int, mapRange func(lo, hi int) int64) int64 {
	return Reduce(n, 0, mapRange, func(a, b int64) int64 { return a + b })
}
