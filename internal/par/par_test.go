package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSplitCoversExactly(t *testing.T) {
	cases := []struct{ n, parts int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 4}, {100, 7}, {7, 100}, {1, 1}, {3, 2},
	}
	for _, c := range cases {
		ranges := Split(c.n, c.parts)
		covered := 0
		prev := 0
		for _, r := range ranges {
			if r.Lo != prev {
				t.Fatalf("Split(%d,%d): range %v does not start at previous end %d", c.n, c.parts, r, prev)
			}
			if r.Hi <= r.Lo {
				t.Fatalf("Split(%d,%d): empty range %v", c.n, c.parts, r)
			}
			covered += r.Hi - r.Lo
			prev = r.Hi
		}
		if covered != c.n {
			t.Fatalf("Split(%d,%d): covered %d indices", c.n, c.parts, covered)
		}
		if c.n > 0 && len(ranges) > c.parts {
			t.Fatalf("Split(%d,%d): %d ranges exceeds parts", c.n, c.parts, len(ranges))
		}
	}
}

func TestSplitBalance(t *testing.T) {
	ranges := Split(103, 10)
	min, max := 1<<30, 0
	for _, r := range ranges {
		sz := r.Hi - r.Lo
		if sz < min {
			min = sz
		}
		if sz > max {
			max = sz
		}
	}
	if max-min > 1 {
		t.Fatalf("unbalanced split: min %d max %d", min, max)
	}
}

func TestForVisitsEachIndexOnce(t *testing.T) {
	const n = 10_000
	counts := make([]int32, n)
	For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&counts[i], 1)
		}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("index %d visited %d times", i, c)
		}
	}
}

func TestForZeroAndOne(t *testing.T) {
	ran := false
	For(0, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("For(0) invoked fn")
	}
	For(1, func(lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Fatalf("For(1) got range [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("For(1) did not invoke fn")
	}
}

func TestForEach(t *testing.T) {
	const n = 1000
	var sum atomic.Int64
	ForEach(n, func(i int) { sum.Add(int64(i)) })
	want := int64(n * (n - 1) / 2)
	if sum.Load() != want {
		t.Fatalf("ForEach sum = %d, want %d", sum.Load(), want)
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(func() { a.Store(1) }, func() { b.Store(2) }, func() { c.Store(3) })
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Fatal("Do did not run all functions")
	}
}

func TestReduceSum(t *testing.T) {
	const n = 12345
	got := SumInt(n, func(lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	})
	want := int64(n) * int64(n-1) / 2
	if got != want {
		t.Fatalf("SumInt = %d, want %d", got, want)
	}
}

func TestReduceIdentityOnEmpty(t *testing.T) {
	got := Reduce(0, 42, func(lo, hi int) int { return 0 }, func(a, b int) int { return a + b })
	if got != 42 {
		t.Fatalf("Reduce over empty range = %d, want identity 42", got)
	}
}

func TestReduceOrdered(t *testing.T) {
	// combine is associative but not commutative (string concat analogue via
	// ordered pair folding): verify range-order folding.
	type seq struct{ lo, hi int }
	got := Reduce(100, seq{0, 0}, func(lo, hi int) seq { return seq{lo, hi} },
		func(a, b seq) seq {
			if a.hi != b.lo && !(a.lo == 0 && a.hi == 0) {
				t.Fatalf("out of order combine: %v then %v", a, b)
			}
			return seq{a.lo, b.hi}
		})
	if got.lo != 0 || got.hi != 100 {
		t.Fatalf("Reduce folded to %v", got)
	}
}

func rngFill(a []int64, seed uint64) {
	x := seed | 1
	for i := range a {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		a[i] = int64(x % 1000) // many duplicates
	}
}

func TestSortInt64sSmallAndLarge(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 1000, parallelSortMin + 1234} {
		a := make([]int64, n)
		rngFill(a, uint64(n)+7)
		SortInt64s(a)
		for i := 1; i < n; i++ {
			if a[i-1] > a[i] {
				t.Fatalf("n=%d: unsorted at %d: %d > %d", n, i, a[i-1], a[i])
			}
		}
	}
}

func TestSortPairsLexicographic(t *testing.T) {
	for _, n := range []int{0, 1, 2, 37, 5000, parallelSortMin + 999} {
		keys := make([]int64, n)
		vals := make([]int64, n)
		rngFill(keys, uint64(n)+3)
		rngFill(vals, uint64(n)+11)
		// Pair up keys and values so we can verify the permutation.
		type pair struct{ k, v int64 }
		orig := make(map[pair]int)
		for i := 0; i < n; i++ {
			orig[pair{keys[i], vals[i]}]++
		}
		SortPairs(keys, vals)
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] || (keys[i-1] == keys[i] && vals[i-1] > vals[i]) {
				t.Fatalf("n=%d: pairs unsorted at %d: (%d,%d) > (%d,%d)",
					n, i, keys[i-1], vals[i-1], keys[i], vals[i])
			}
		}
		for i := 0; i < n; i++ {
			p := pair{keys[i], vals[i]}
			orig[p]--
			if orig[p] < 0 {
				t.Fatalf("n=%d: pair (%d,%d) appears more often after sort", n, p.k, p.v)
			}
		}
	}
}

func TestSortPairsPanicsOnLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on unequal lengths")
		}
	}()
	SortPairs(make([]int64, 3), make([]int64, 4))
}

func TestSortPairsQuick(t *testing.T) {
	f := func(ks, vs []int16) bool {
		n := len(ks)
		if len(vs) < n {
			n = len(vs)
		}
		keys := make([]int64, n)
		vals := make([]int64, n)
		for i := 0; i < n; i++ {
			keys[i] = int64(ks[i])
			vals[i] = int64(vs[i])
		}
		SortPairs(keys, vals)
		for i := 1; i < n; i++ {
			if keys[i-1] > keys[i] || (keys[i-1] == keys[i] && vals[i-1] > vals[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
