package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

// withWorkers forces a worker count so the genuinely parallel code paths
// (multi-range splits, pairwise merges) execute even on single-CPU hosts.
func withWorkers(t *testing.T, n int, fn func()) {
	t.Helper()
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func TestForMultiWorkerPath(t *testing.T) {
	withWorkers(t, 4, func() {
		if Workers() != 4 {
			t.Skip("GOMAXPROCS not adjustable")
		}
		const n = 10_000
		var sum atomic.Int64
		For(n, func(lo, hi int) {
			var local int64
			for i := lo; i < hi; i++ {
				local += int64(i)
			}
			sum.Add(local)
		})
		if want := int64(n) * (n - 1) / 2; sum.Load() != want {
			t.Fatalf("sum = %d, want %d", sum.Load(), want)
		}
	})
}

func TestReduceMultiWorkerPath(t *testing.T) {
	withWorkers(t, 4, func() {
		got := SumInt(100_000, func(lo, hi int) int64 {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i)
			}
			return s
		})
		if want := int64(100_000) * 99_999 / 2; got != want {
			t.Fatalf("SumInt = %d, want %d", got, want)
		}
	})
}

func TestSortInt64sParallelMergePath(t *testing.T) {
	withWorkers(t, 4, func() {
		for _, n := range []int{parallelSortMin + 1, 3*parallelSortMin + 17} {
			a := make([]int64, n)
			rngFill(a, uint64(n))
			SortInt64s(a)
			for i := 1; i < n; i++ {
				if a[i-1] > a[i] {
					t.Fatalf("n=%d: unsorted at %d", n, i)
				}
			}
		}
	})
}

func TestSortPairsParallelMergePath(t *testing.T) {
	withWorkers(t, 4, func() {
		// Odd worker count exercises the odd-run copy branch too.
		for _, workers := range []int{3, 4, 5} {
			prev := runtime.GOMAXPROCS(workers)
			n := 2*parallelSortMin + 311
			keys := make([]int64, n)
			vals := make([]int64, n)
			rngFill(keys, 7)
			rngFill(vals, 11)
			type pair struct{ k, v int64 }
			count := map[pair]int{}
			for i := 0; i < n; i++ {
				count[pair{keys[i], vals[i]}]++
			}
			SortPairs(keys, vals)
			for i := 1; i < n; i++ {
				if keys[i-1] > keys[i] || (keys[i-1] == keys[i] && vals[i-1] > vals[i]) {
					t.Fatalf("workers=%d: unsorted at %d", workers, i)
				}
			}
			for i := 0; i < n; i++ {
				p := pair{keys[i], vals[i]}
				count[p]--
				if count[p] < 0 {
					t.Fatalf("workers=%d: pair multiset changed", workers)
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	})
}

func TestDoSingleFunction(t *testing.T) {
	ran := false
	Do(func() { ran = true })
	if !ran {
		t.Fatal("Do(single) did not run")
	}
}
