package par

import (
	"slices"
	"sync"
)

// parallelSortMin is the slice length below which the parallel sorts fall
// back to a purely sequential sort; splitting tiny inputs costs more than it
// saves.
const parallelSortMin = 1 << 14

// SortInt64s sorts a in ascending order, in parallel for large inputs. It is
// the building block of the "sort-first" table-to-graph conversion (§2.4):
// chunks are sorted concurrently and then merged pairwise, which requires no
// thread-safe data structures and exhibits no contention between workers.
func SortInt64s(a []int64) {
	n := len(a)
	if n < parallelSortMin || Workers() == 1 {
		slices.Sort(a)
		return
	}
	ranges := Split(n, Workers())
	For(n, func(lo, hi int) {
		slices.Sort(a[lo:hi])
	})
	tmp := make([]int64, n)
	src, dst := a, tmp
	runs := ranges
	for len(runs) > 1 {
		merged := make([]Range, 0, (len(runs)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				r := runs[i]
				wg.Add(1)
				go func() {
					defer wg.Done()
					copy(dst[r.Lo:r.Hi], src[r.Lo:r.Hi])
				}()
				merged = append(merged, r)
				continue
			}
			a, b := runs[i], runs[i+1]
			wg.Add(1)
			go func() {
				defer wg.Done()
				mergeInt64(dst[a.Lo:b.Hi], src[a.Lo:a.Hi], src[b.Lo:b.Hi])
			}()
			merged = append(merged, Range{a.Lo, b.Hi})
		}
		wg.Wait()
		src, dst = dst, src
		runs = merged
	}
	if n > 0 && &src[0] != &a[0] {
		copy(a, src)
	}
}

func mergeInt64(dst, a, b []int64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// SortPairs sorts the parallel slices keys and vals lexicographically by
// (key, val), permuting both together. The table-to-graph conversion uses it
// to order (source, destination) edge pairs so that each node's adjacency
// vector comes out sorted. keys and vals must have equal length.
func SortPairs(keys, vals []int64) {
	if len(keys) != len(vals) {
		panic("par: SortPairs slices of unequal length")
	}
	n := len(keys)
	if n < parallelSortMin || Workers() == 1 {
		pairSort(keys, vals, 0, n)
		return
	}
	ranges := Split(n, Workers())
	For(n, func(lo, hi int) {
		pairSort(keys, vals, lo, hi)
	})
	tmpK := make([]int64, n)
	tmpV := make([]int64, n)
	srcK, srcV := keys, vals
	dstK, dstV := tmpK, tmpV
	runs := ranges
	for len(runs) > 1 {
		merged := make([]Range, 0, (len(runs)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i < len(runs); i += 2 {
			if i+1 == len(runs) {
				r := runs[i]
				wg.Add(1)
				go func() {
					defer wg.Done()
					copy(dstK[r.Lo:r.Hi], srcK[r.Lo:r.Hi])
					copy(dstV[r.Lo:r.Hi], srcV[r.Lo:r.Hi])
				}()
				merged = append(merged, r)
				continue
			}
			a, b := runs[i], runs[i+1]
			wg.Add(1)
			go func() {
				defer wg.Done()
				mergePairs(dstK[a.Lo:b.Hi], dstV[a.Lo:b.Hi],
					srcK[a.Lo:a.Hi], srcV[a.Lo:a.Hi],
					srcK[b.Lo:b.Hi], srcV[b.Lo:b.Hi])
			}()
			merged = append(merged, Range{a.Lo, b.Hi})
		}
		wg.Wait()
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
		runs = merged
	}
	if n > 0 && &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(vals, srcV)
	}
}

func mergePairs(dstK, dstV, aK, aV, bK, bV []int64) {
	i, j, k := 0, 0, 0
	for i < len(aK) && j < len(bK) {
		if aK[i] < bK[j] || (aK[i] == bK[j] && aV[i] <= bV[j]) {
			dstK[k], dstV[k] = aK[i], aV[i]
			i++
		} else {
			dstK[k], dstV[k] = bK[j], bV[j]
			j++
		}
		k++
	}
	for ; i < len(aK); i++ {
		dstK[k], dstV[k] = aK[i], aV[i]
		k++
	}
	for ; j < len(bK); j++ {
		dstK[k], dstV[k] = bK[j], bV[j]
		k++
	}
}

// pairSort is an in-place quicksort over (keys, vals) compared
// lexicographically, with insertion sort for small partitions and
// median-of-three pivot selection. Recursion always descends into the
// smaller partition, bounding stack depth at O(log n).
func pairSort(keys, vals []int64, lo, hi int) {
	for hi-lo > 24 {
		p := pairPartition(keys, vals, lo, hi)
		if p-lo < hi-p-1 {
			pairSort(keys, vals, lo, p)
			lo = p + 1
		} else {
			pairSort(keys, vals, p+1, hi)
			hi = p
		}
	}
	// Insertion sort for the remaining small range.
	for i := lo + 1; i < hi; i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= lo && (keys[j] > k || (keys[j] == k && vals[j] > v)) {
			keys[j+1], vals[j+1] = keys[j], vals[j]
			j--
		}
		keys[j+1], vals[j+1] = k, v
	}
}

func pairLess(keys, vals []int64, i, j int) bool {
	return keys[i] < keys[j] || (keys[i] == keys[j] && vals[i] < vals[j])
}

func pairSwap(keys, vals []int64, i, j int) {
	keys[i], keys[j] = keys[j], keys[i]
	vals[i], vals[j] = vals[j], vals[i]
}

func pairPartition(keys, vals []int64, lo, hi int) int {
	mid := lo + (hi-lo)/2
	last := hi - 1
	// Median of three: order lo, mid, last.
	if pairLess(keys, vals, mid, lo) {
		pairSwap(keys, vals, mid, lo)
	}
	if pairLess(keys, vals, last, lo) {
		pairSwap(keys, vals, last, lo)
	}
	if pairLess(keys, vals, last, mid) {
		pairSwap(keys, vals, last, mid)
	}
	// Pivot (median) to position hi-2.
	pairSwap(keys, vals, mid, last-0)
	pk, pv := keys[last], vals[last]
	i := lo
	for j := lo; j < last; j++ {
		if keys[j] < pk || (keys[j] == pk && vals[j] < pv) {
			pairSwap(keys, vals, i, j)
			i++
		}
	}
	pairSwap(keys, vals, i, last)
	return i
}
