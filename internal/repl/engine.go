// Package repl is the Ringo command evaluator: the interpreter for the
// shell's verb language (load, select, join, tograph, pagerank, ...),
// extracted out of the terminal front-end so the same engine can serve an
// interactive TTY, an HTTP session, or a script. Eval parses one command
// line, executes it against a core.Workspace, and returns a structured
// Result; front-ends decide how to present it (Render reproduces the
// classic shell text, the server marshals it as JSON).
//
// Expensive analytics (pagerank, algo) are cached at two levels, both keyed
// by the input object's workspace fingerprint. A result cache (SetCache)
// stores finished answers, so repeating the exact command over an unchanged
// graph is served without any computation. Beneath it, the workspace's CSR
// view cache stores the flat-array snapshot the algorithms run over, so a
// *different* analytics command over the same unchanged graph skips the
// O(V+E) dense conversion and goes straight to flat-array compute — the
// paper's build-once, query-many interactivity model. Any rebind, rename or
// touch of the graph invalidates both by moving its fingerprint.
package repl

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"ringo/internal/algo"
	"ringo/internal/core"
	"ringo/internal/extmem"
	"ringo/internal/gen"
	"ringo/internal/graph"
	"ringo/internal/obs"
	"ringo/internal/table"
)

// Result is the structured outcome of one evaluated command. Message holds
// the deterministic one-line summary; tabular payloads (ls, show, top) are
// carried in Columns/Rows; ElapsedNS and Cached describe how the result was
// obtained and are excluded from result equality across front-ends.
type Result struct {
	Cmd       string     `json:"cmd"`
	Bound     string     `json:"bound,omitempty"`
	Kind      string     `json:"kind,omitempty"`
	Message   string     `json:"message,omitempty"`
	Columns   []string   `json:"columns,omitempty"`
	Rows      [][]string `json:"rows,omitempty"`
	Truncated int        `json:"truncated,omitempty"`
	ElapsedNS int64      `json:"elapsed_ns,omitempty"`
	Cached    bool       `json:"cached,omitempty"`
}

// CachedResult is the cacheable payload of an expensive analytics command:
// the deterministic message, plus the score map for commands that bind one.
type CachedResult struct {
	Message string
	Scores  map[int64]float64
}

// Cache stores computed analytics results keyed by (input fingerprint,
// command). Implementations must be safe for concurrent use.
type Cache interface {
	Get(key string) (CachedResult, bool)
	Put(key string, v CachedResult)
}

// Engine evaluates the Ringo command language against a workspace.
// The zero value is not usable; construct with New. An Engine itself adds
// no locking beyond the workspace's: callers that need command-level
// atomicity (a server session) wrap Eval in their own lock, using ReadOnly
// to decide between shared and exclusive acquisition.
type Engine struct {
	ws    *core.Workspace
	cache Cache
	// metrics is the engine's own per-verb registry: call/error counters
	// and latency histograms recorded by every Eval, rendered by the
	// stats verb. Always present; see obs.go.
	metrics *obs.Registry
	// tel is the host's observability wiring (shared registry, slow-query
	// log); the zero value disables it.
	tel Telemetry
	// sourceDepth tracks source-verb nesting so self-sourcing scripts
	// fail at maxSourceDepth instead of recursing forever.
	sourceDepth int
}

// New returns an engine over the given workspace (a fresh one if nil).
func New(ws *core.Workspace) *Engine {
	if ws == nil {
		ws = core.NewWorkspace()
	}
	return &Engine{ws: ws, metrics: obs.NewRegistry()}
}

// SetCache installs a result cache (nil disables caching).
func (e *Engine) SetCache(c Cache) { e.cache = c }

// Workspace exposes the engine's backing workspace.
func (e *Engine) Workspace() *core.Workspace { return e.ws }

// verb describes one command of the shell language: its handler plus the
// properties front-ends key dispatch decisions off. The table is the single
// source of truth — Eval dispatches from it, ReadOnly/TouchesFiles/
// ReplacesWorkspace consult it, and the drift test in engine_docs_test.go
// checks docs/COMMANDS.md against it.
type verb struct {
	run func(e *Engine, r *Result, args []string) error
	// mutates marks state-changing commands; everything else (ls, show,
	// top, algo, save, snapshot, help) only reads workspace state.
	mutates bool
	// files marks commands that read or write host files. A network
	// front-end serving untrusted clients uses this to refuse host
	// filesystem access while the local shell keeps the verbs.
	files bool
	// replaces marks commands that may swap out the entire workspace
	// contents rather than touching individual bindings (restore, and
	// source — whose script may contain a restore step).
	replaces bool
}

// verbs is the command table. Handlers taking no positional arguments are
// adapted inline.
var verbs = map[string]verb{
	"help": {run: func(e *Engine, r *Result, _ []string) error {
		r.Message = HelpText
		return nil
	}},
	"ls":           {run: func(e *Engine, r *Result, _ []string) error { return e.cmdLs(r) }},
	"gen":          {run: (*Engine).cmdGen, mutates: true},
	"load":         {run: (*Engine).cmdLoad, mutates: true, files: true},
	"loadgraph":    {run: (*Engine).cmdLoadGraph, mutates: true, files: true},
	"select":       {run: (*Engine).cmdSelect, mutates: true},
	"filter":       {run: (*Engine).cmdFilter, mutates: true},
	"join":         {run: (*Engine).cmdJoin, mutates: true},
	"project":      {run: (*Engine).cmdProject, mutates: true},
	"groupcount":   {run: (*Engine).cmdGroupCount, mutates: true},
	"order":        {run: (*Engine).cmdOrder, mutates: true},
	"tograph":      {run: (*Engine).cmdToGraph, mutates: true},
	"totable":      {run: (*Engine).cmdToTable, mutates: true},
	"addedge":      {run: (*Engine).cmdAddEdge, mutates: true},
	"deledge":      {run: (*Engine).cmdDelEdge, mutates: true},
	"addnode":      {run: (*Engine).cmdAddNode, mutates: true},
	"pagerank":     {run: (*Engine).cmdPageRank, mutates: true},
	"scores2table": {run: (*Engine).cmdScoresToTable, mutates: true},
	"algo":         {run: (*Engine).cmdAlgo},
	"top":          {run: (*Engine).cmdTop},
	"show":         {run: (*Engine).cmdShow},
	"stats": {run: func(e *Engine, r *Result, _ []string) error {
		return e.cmdStats(r)
	}},
	"indexes": {run: func(e *Engine, r *Result, _ []string) error {
		return e.cmdIndexes(r)
	}},
	"save":       {run: (*Engine).cmdSave, files: true},
	"savemapped": {run: (*Engine).cmdSaveMapped, files: true},
	"snapshot":   {run: (*Engine).cmdSnapshot, files: true},
	"restore":    {run: (*Engine).cmdRestore, mutates: true, files: true, replaces: true},
	"rm":         {run: (*Engine).cmdRm, mutates: true},
	"mv":         {run: (*Engine).cmdMv, mutates: true},
}

// source is registered in an init func, not the literal above: its handler
// re-enters Eval (each script step is one command), which reads the verbs
// map, and the compiler rejects that as an initialization cycle in a map
// literal. Its properties are the union of its possible steps': scripts may
// mutate, read/write files, and may contain restore — hosts must treat the
// batch as workspace-replacing.
func init() {
	verbs["source"] = verb{run: (*Engine).cmdSource, mutates: true, files: true, replaces: true}
}

// Verbs returns the names of every command the engine evaluates, sorted.
func Verbs() []string {
	out := make([]string, 0, len(verbs))
	for name := range verbs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ReadOnly reports whether the command line only reads workspace state.
// Unknown or empty commands are treated as read-only — they fail without
// side effects.
func ReadOnly(line string) bool {
	f := strings.Fields(line)
	if len(f) == 0 {
		return true
	}
	return !verbs[f[0]].mutates
}

// TouchesFiles reports whether the command reads or writes host files
// (load, loadgraph, save, savemapped, snapshot, restore).
func TouchesFiles(line string) bool {
	f := strings.Fields(line)
	if len(f) == 0 {
		return false
	}
	return verbs[f[0]].files
}

// ReplacesWorkspace reports whether the command swaps out the entire
// workspace contents rather than touching individual bindings. Hosts that
// key caches per workspace object should purge everything for this session
// after such a command: the replaced objects' entries can never hit again
// (versions are bumped past them) and would otherwise linger as dead
// weight.
func ReplacesWorkspace(line string) bool {
	f := strings.Fields(line)
	if len(f) == 0 {
		return false
	}
	return verbs[f[0]].replaces
}

// HelpText documents the command language for interactive front-ends.
const HelpText = `Ringo interactive shell — verbs over named objects.

  gen rmat <name> <scale> <edges> [seed]   generate an R-MAT edge table
  gen posts <name> [questions]             generate a StackOverflow-like posts table
  load <name> <file> <col:type>...         load a TSV into a table
  loadgraph <name> <file>                  load a graph: text edge list, binary (RNGO/RNGU),
                                           or mapped CSR image (RNGM, served from mmap)
  select <out> <tbl> <col> <op> <value>    filter rows (op: == != < <= > >=)
  filter <out> <tbl> <predicate>           filter with an expression, e.g. Tag = Java and Score > 3
  join <out> <left> <right> <lcol> <rcol>  equi-join two tables
  project <out> <tbl> <col>...             keep the named columns
  groupcount <out> <tbl> <col>...          group rows and count per group
  order <tbl> asc|desc <col>...            sort a table in place
  tograph <out> <tbl> <srccol> <dstcol>    table -> directed graph (sort-first)
  totable <out> <graph>                    graph -> edge table
  addedge <graph> <src> <dst>              add one edge in place (cached views patch, not rebuild)
  deledge <graph> <src> <dst>              delete one edge in place
  addnode <graph> <id>                     add one isolated node in place
  pagerank <out> <graph>                   10-iteration parallel PageRank
  scores2table <out> <scores> <key> <val>  score map -> sorted table
  algo <graph> triangles|wcc|scc|3core|diam|motifs|bridges|cuts|toposort|clustering
                                           run an analysis and print the result
  top <scores> [k]                         print the k best-scored nodes
  rm <name>                                delete a workspace object
  mv <old> <new>                           rename a workspace object
  ls                                       list workspace objects
  stats                                    per-verb call counts and latency percentiles
  indexes                                  equality-index cache statistics
  show <tbl> [rows]                        print the first rows of a table
  save <obj> <file>                        write a table as TSV or a graph as binary
  savemapped <graph> <file>                write a graph as a mappable CSR image (RNGM)
  snapshot <file>                          save the whole workspace as a binary snapshot
  restore <file>                           replace the workspace with a snapshot's contents
  source <file>                            run a script file (one verb per line, # comments,
                                           @echo/@time/@continue directives)
  help                                     this text
  quit                                     exit`

// Eval parses and executes one command line, returning its structured
// result. The line must be a single non-empty command; front-ends strip
// blanks, comments and quit themselves.
func (e *Engine) Eval(line string) (*Result, error) {
	line = strings.TrimSpace(line)
	args := strings.Fields(line)
	if len(args) == 0 {
		return nil, fmt.Errorf("empty command")
	}
	cmd := args[0]
	args = args[1:]
	r := &Result{Cmd: line}
	v, ok := verbs[cmd]
	if !ok {
		return nil, fmt.Errorf("unknown command %q (try help)", cmd)
	}
	start := time.Now()
	err := v.run(e, r, args)
	e.observe(cmd, args, time.Since(start), err)
	if err != nil {
		return nil, err
	}
	return r, nil
}

// bind stores an object with the executing command as its provenance and
// records the binding on the result.
func (e *Engine) bind(r *Result, name string, o core.Object) {
	e.ws.SetWithProvenance(name, o, r.Cmd)
	r.Bound = name
	r.Kind = o.Kind()
}

func need(args []string, n int, usage string) error {
	if len(args) < n {
		return fmt.Errorf("usage: %s", usage)
	}
	return nil
}

func (e *Engine) cmdLs(r *Result) error {
	names := e.ws.Names()
	if len(names) == 0 {
		r.Message = "(workspace empty)"
		return nil
	}
	r.Columns = []string{"name", "summary", "provenance"}
	for _, n := range names {
		o, _ := e.ws.Get(n)
		r.Rows = append(r.Rows, []string{n, o.Summary(), e.ws.Provenance(n)})
	}
	return nil
}

func (e *Engine) cmdGen(r *Result, args []string) error {
	if err := need(args, 2, "gen rmat|posts <name> ..."); err != nil {
		return err
	}
	switch args[0] {
	case "rmat":
		if err := need(args, 4, "gen rmat <name> <scale> <edges> [seed]"); err != nil {
			return err
		}
		scale, err := strconv.Atoi(args[2])
		if err != nil {
			return fmt.Errorf("bad scale %q", args[2])
		}
		edges, err := strconv.ParseInt(args[3], 10, 64)
		if err != nil {
			return fmt.Errorf("bad edge count %q", args[3])
		}
		seed := int64(1)
		if len(args) > 4 {
			if seed, err = strconv.ParseInt(args[4], 10, 64); err != nil {
				return fmt.Errorf("bad seed %q", args[4])
			}
		}
		t := gen.RMATTable(scale, edges, seed)
		e.bind(r, args[1], core.Object{Table: t})
		r.Message = fmt.Sprintf("%s: %d rows", args[1], t.NumRows())
		return nil
	case "posts":
		cfg := gen.DefaultSOConfig()
		if len(args) > 2 {
			q, err := strconv.Atoi(args[2])
			if err != nil {
				return fmt.Errorf("bad question count %q", args[2])
			}
			cfg.Questions = q
		}
		t, err := gen.StackOverflowPosts(cfg)
		if err != nil {
			return err
		}
		e.bind(r, args[1], core.Object{Table: t})
		r.Message = fmt.Sprintf("%s: %d rows", args[1], t.NumRows())
		return nil
	default:
		return fmt.Errorf("unknown generator %q", args[0])
	}
}

// parseSchema parses col:type tokens (type: int, float, string).
func parseSchema(tokens []string) (table.Schema, error) {
	schema := make(table.Schema, 0, len(tokens))
	for _, tok := range tokens {
		name, typ, ok := strings.Cut(tok, ":")
		if !ok {
			return nil, fmt.Errorf("column %q: want name:type", tok)
		}
		var ct table.Type
		switch typ {
		case "int":
			ct = table.Int
		case "float":
			ct = table.Float
		case "string", "str":
			ct = table.String
		default:
			return nil, fmt.Errorf("column %q: unknown type %q", name, typ)
		}
		schema = append(schema, table.Column{Name: name, Type: ct})
	}
	return schema, nil
}

func (e *Engine) cmdLoad(r *Result, args []string) error {
	if err := need(args, 3, "load <name> <file> <col:type>..."); err != nil {
		return err
	}
	schema, err := parseSchema(args[2:])
	if err != nil {
		return err
	}
	t, err := table.LoadTSVFile(args[1], schema, false)
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: t})
	r.Message = fmt.Sprintf("%s: %d rows", args[0], t.NumRows())
	return nil
}

func (e *Engine) cmdLoadGraph(r *Result, args []string) error {
	if err := need(args, 2, "loadgraph <name> <file>"); err != nil {
		return err
	}
	// Magic-byte sniffing: RNGM images are mapped in place (no decode, no
	// heap copy — the beyond-RAM tier), files written by "save" load
	// through the fast binary path, anything else parses as a text edge
	// list on all cores (parallel chunk parse + sort-first bulk build).
	if isMappedFile(args[1]) {
		mg, err := extmem.Open(args[1])
		if err != nil {
			return err
		}
		e.bind(r, args[0], core.Object{Mapped: mg})
		via := "mmap"
		if !mg.Mapped() {
			via = "copied: no mmap on this platform"
		}
		r.Message = fmt.Sprintf("%s: %d nodes, %d edges (mapped %s, %s)",
			args[0], mg.NumNodes(), mg.NumEdges(), mg.Kind(), via)
		return nil
	}
	g, err := graph.LoadFileAuto(args[1])
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Graph: g})
	r.Message = fmt.Sprintf("%s: %d nodes, %d edges", args[0], g.NumNodes(), g.NumEdges())
	return nil
}

// isMappedFile peeks a file's leading magic bytes for the RNGM signature.
// Unreadable or short files report false and fall through to the regular
// loader, whose errors name the actual problem.
func isMappedFile(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var head [4]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return false
	}
	return string(head[:]) == "RNGM"
}

var opNames = map[string]table.CmpOp{
	"==": table.EQ, "=": table.EQ, "!=": table.NE,
	"<": table.LT, "<=": table.LE, ">": table.GT, ">=": table.GE,
}

// parseValue tries int, then float, then string.
func parseValue(tok string) any {
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return n
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return f
	}
	return tok
}

func (e *Engine) cmdSelect(r *Result, args []string) error {
	if err := need(args, 5, "select <out> <tbl> <col> <op> <value>"); err != nil {
		return err
	}
	t, err := e.ws.Table(args[1])
	if err != nil {
		return err
	}
	op, ok := opNames[args[3]]
	if !ok {
		return fmt.Errorf("unknown operator %q", args[3])
	}
	// The value may contain spaces if quoted crudely; join the rest.
	val := parseValue(strings.Join(args[4:], " "))
	out, err := e.selectRows(args[1], t, args[2], op, val)
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: out})
	r.Message = fmt.Sprintf("%s: %d rows", args[0], out.NumRows())
	return nil
}

// selectRows executes one comparison filter. Equality filters try the
// workspace's cached equality index first — on a warm cache the filter is
// a bitmap lookup plus a row gather, no column scan — and fall back
// silently to the vectorized scan when the column isn't indexable (float,
// high cardinality) or the lookup can't serve the operator. Both paths
// select identical rows, so the fallback is invisible to the caller.
func (e *Engine) selectRows(name string, t *table.Table, col string, op table.CmpOp, val any) (*table.Table, error) {
	if op == table.EQ || op == table.NE {
		if idx, err := e.ws.TableEqIndex(name, col); err == nil {
			if bm, ok := idx.Lookup(t, op, val); ok {
				return t.SelectBitmap(bm)
			}
		}
	}
	return t.Select(col, op, val)
}

// cmdFilter is expression select: filter <out> <tbl> <predicate...>, e.g.
// filter JQ P Tag = Java and Type = question
func (e *Engine) cmdFilter(r *Result, args []string) error {
	if err := need(args, 3, "filter <out> <tbl> <predicate>"); err != nil {
		return err
	}
	t, err := e.ws.Table(args[1])
	if err != nil {
		return err
	}
	out, err := t.SelectExpr(strings.Join(args[2:], " "))
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: out})
	r.Message = fmt.Sprintf("%s: %d rows", args[0], out.NumRows())
	return nil
}

func (e *Engine) cmdJoin(r *Result, args []string) error {
	if err := need(args, 5, "join <out> <left> <right> <lcol> <rcol>"); err != nil {
		return err
	}
	l, err := e.ws.Table(args[1])
	if err != nil {
		return err
	}
	rt, err := e.ws.Table(args[2])
	if err != nil {
		return err
	}
	out, err := l.Join(rt, args[3], args[4])
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: out})
	r.Message = fmt.Sprintf("%s: %d rows (%s)", args[0], out.NumRows(), strings.Join(out.ColNames(), ", "))
	return nil
}

func (e *Engine) cmdProject(r *Result, args []string) error {
	if err := need(args, 3, "project <out> <tbl> <col>..."); err != nil {
		return err
	}
	t, err := e.ws.Table(args[1])
	if err != nil {
		return err
	}
	out, err := t.Project(args[2:]...)
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: out})
	r.Message = fmt.Sprintf("%s: %d rows", args[0], out.NumRows())
	return nil
}

func (e *Engine) cmdGroupCount(r *Result, args []string) error {
	if err := need(args, 3, "groupcount <out> <tbl> <col>..."); err != nil {
		return err
	}
	t, err := e.ws.Table(args[1])
	if err != nil {
		return err
	}
	out, err := t.Aggregate(args[2:], table.Count, "", "count")
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: out})
	r.Message = fmt.Sprintf("%s: %d groups", args[0], out.NumRows())
	return nil
}

func (e *Engine) cmdOrder(r *Result, args []string) error {
	if err := need(args, 3, "order <tbl> asc|desc <col>..."); err != nil {
		return err
	}
	t, err := e.ws.Table(args[0])
	if err != nil {
		return err
	}
	desc := args[1] == "desc"
	if !desc && args[1] != "asc" {
		return fmt.Errorf("want asc or desc, got %q", args[1])
	}
	if err := t.OrderBy(desc, args[2:]...); err != nil {
		return err
	}
	// In-place mutation: bump the version so cached results over the old
	// row order can no longer be served.
	e.ws.Touch(args[0])
	r.Bound = args[0]
	r.Kind = "table"
	return nil
}

func (e *Engine) cmdToGraph(r *Result, args []string) error {
	if err := need(args, 4, "tograph <out> <tbl> <srccol> <dstcol>"); err != nil {
		return err
	}
	t, err := e.ws.Table(args[1])
	if err != nil {
		return err
	}
	g, err := core.ToGraph(t, args[2], args[3])
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Graph: g})
	r.Message = fmt.Sprintf("%s: %d nodes, %d edges", args[0], g.NumNodes(), g.NumEdges())
	return nil
}

func (e *Engine) cmdToTable(r *Result, args []string) error {
	if err := need(args, 2, "totable <out> <graph>"); err != nil {
		return err
	}
	g, err := e.ws.Graph(args[1])
	if err != nil {
		return err
	}
	t, err := core.ToTable(g, "src", "dst")
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: t})
	r.Message = fmt.Sprintf("%s: %d rows", args[0], t.NumRows())
	return nil
}

// cacheKey builds the result-cache key for an analytics computation over
// the named input object. The output binding name is deliberately excluded:
// "pagerank A G" and "pagerank B G" are the same computation.
func (e *Engine) cacheKey(verb, input string) (string, bool) {
	if e.cache == nil {
		return "", false
	}
	fp, ok := e.ws.Fingerprint(input)
	if !ok {
		return "", false
	}
	return verb + "|" + fp, true
}

func (e *Engine) cmdPageRank(r *Result, args []string) error {
	if err := need(args, 2, "pagerank <out> <graph>"); err != nil {
		return err
	}
	// No upfront type check: a result-cache hit can only exist for a
	// version at which the binding was a directed graph, and on a miss
	// DirectedView performs the identical validation.
	key, cacheable := e.cacheKey("pagerank", args[1])
	if cacheable {
		if v, ok := e.cache.Get(key); ok {
			e.bind(r, args[0], core.Object{Scores: v.Scores})
			r.Message = fmt.Sprintf("%s: %d nodes scored", args[0], len(v.Scores))
			r.Cached = true
			return nil
		}
	}
	start := time.Now()
	// The CSR view comes from the workspace's fingerprint-keyed cache: a
	// repeat query on an unchanged graph skips the O(V+E) conversion.
	v, err := e.ws.DirectedView(args[1])
	if err != nil {
		return err
	}
	pr := algo.PageRankView(v, algo.DefaultDamping, 10)
	r.ElapsedNS = time.Since(start).Nanoseconds()
	e.bind(r, args[0], core.Object{Scores: pr})
	r.Message = fmt.Sprintf("%s: %d nodes scored", args[0], len(pr))
	if cacheable {
		e.cache.Put(key, CachedResult{Scores: pr})
	}
	return nil
}

func (e *Engine) cmdScoresToTable(r *Result, args []string) error {
	if err := need(args, 4, "scores2table <out> <scores> <keycol> <valcol>"); err != nil {
		return err
	}
	sc, err := e.ws.Scores(args[1])
	if err != nil {
		return err
	}
	t, err := core.TableFromMap(sc, args[2], args[3])
	if err != nil {
		return err
	}
	e.bind(r, args[0], core.Object{Table: t})
	r.Message = fmt.Sprintf("%s: %d rows", args[0], t.NumRows())
	return nil
}

func (e *Engine) cmdAlgo(r *Result, args []string) error {
	if err := need(args, 2, "algo <graph> triangles|wcc|scc|3core|diam"); err != nil {
		return err
	}
	key, cacheable := e.cacheKey("algo "+args[1], args[0])
	if cacheable {
		if v, ok := e.cache.Get(key); ok {
			r.Message = v.Message
			r.Cached = true
			return nil
		}
	}
	// Every branch computes over the workspace's cached CSR views:
	// direction-blind algorithms fetch the undirected view (which also
	// subsumes the old AsUndirected projection cost), the rest the
	// directed one. Repeat analytics on an unchanged graph do no O(V+E)
	// conversion at all.
	start := time.Now()
	switch args[1] {
	case "triangles":
		uv, err := e.ws.UndirectedView(args[0])
		if err != nil {
			return err
		}
		n := algo.TrianglesView(uv)
		r.Message = fmt.Sprintf("%d triangles", n)
	case "wcc":
		v, err := e.ws.DirectedView(args[0])
		if err != nil {
			return err
		}
		c := algo.WCCView(v)
		r.Message = fmt.Sprintf("%d weak components, largest %d", c.Count, c.MaxSize)
	case "scc":
		v, err := e.ws.DirectedView(args[0])
		if err != nil {
			return err
		}
		c := algo.SCCView(v)
		r.Message = fmt.Sprintf("%d strong components, largest %d", c.Count, c.MaxSize)
	case "3core":
		uv, err := e.ws.UndirectedView(args[0])
		if err != nil {
			return err
		}
		nodes, edges := algo.KCoreStatsView(uv, 3)
		r.Message = fmt.Sprintf("3-core: %d nodes, %d edges", nodes, edges)
	case "diam":
		v, err := e.ws.DirectedView(args[0])
		if err != nil {
			return err
		}
		d := algo.ApproxDiameterView(v, 8, 1)
		r.Message = fmt.Sprintf("approximate diameter %d", d)
	case "motifs":
		v, err := e.ws.DirectedView(args[0])
		if err != nil {
			return err
		}
		mc := algo.CountMotifsView(v)
		r.Message = fmt.Sprintf("%d cyclic triangles, %d transitive triangles, %d wedges",
			mc.CyclicTriangles, mc.TransTriangles, mc.Wedges)
	case "bridges":
		uv, err := e.ws.UndirectedView(args[0])
		if err != nil {
			return err
		}
		br := algo.BridgesView(uv)
		r.Message = fmt.Sprintf("%d bridges", len(br))
	case "cuts":
		uv, err := e.ws.UndirectedView(args[0])
		if err != nil {
			return err
		}
		cuts := algo.ArticulationPointsView(uv)
		r.Message = fmt.Sprintf("%d articulation points", len(cuts))
	case "toposort":
		v, err := e.ws.DirectedView(args[0])
		if err != nil {
			return err
		}
		order, err := algo.TopoSortView(v)
		if err != nil {
			r.Message = fmt.Sprintf("not a DAG: %v", err)
			return nil
		}
		r.Message = fmt.Sprintf("topological order of %d nodes (first 10): %v", len(order), order[:min(10, len(order))])
	case "clustering":
		uv, err := e.ws.UndirectedView(args[0])
		if err != nil {
			return err
		}
		cc := algo.ClusteringCoefficientView(uv)
		r.Message = fmt.Sprintf("average clustering coefficient %.4f", cc)
	default:
		if _, err := e.ws.Graph(args[0]); err != nil {
			return err
		}
		return fmt.Errorf("unknown algorithm %q", args[1])
	}
	r.ElapsedNS = time.Since(start).Nanoseconds()
	if cacheable {
		e.cache.Put(key, CachedResult{Message: r.Message})
	}
	return nil
}

func (e *Engine) cmdTop(r *Result, args []string) error {
	if err := need(args, 1, "top <scores> [k]"); err != nil {
		return err
	}
	sc, err := e.ws.Scores(args[0])
	if err != nil {
		return err
	}
	k := 10
	if len(args) > 1 {
		if k, err = strconv.Atoi(args[1]); err != nil || k < 1 {
			return fmt.Errorf("bad k %q", args[1])
		}
	}
	r.Columns = []string{"rank", "node", "score"}
	for i, sco := range algo.TopK(sc, k) {
		r.Rows = append(r.Rows, []string{
			strconv.Itoa(i + 1),
			strconv.FormatInt(sco.ID, 10),
			strconv.FormatFloat(sco.Score, 'f', 6, 64),
		})
	}
	return nil
}

func (e *Engine) cmdShow(r *Result, args []string) error {
	if err := need(args, 1, "show <tbl> [rows]"); err != nil {
		return err
	}
	t, err := e.ws.Table(args[0])
	if err != nil {
		return err
	}
	n := 10
	if len(args) > 1 {
		if n, err = strconv.Atoi(args[1]); err != nil || n < 0 {
			return fmt.Errorf("bad row count %q", args[1])
		}
	}
	if n > t.NumRows() {
		n = t.NumRows()
	}
	r.Columns = t.ColNames()
	for row := 0; row < n; row++ {
		cells := make([]string, t.NumCols())
		for col := range cells {
			cells[col] = fmt.Sprint(t.Value(col, row))
		}
		r.Rows = append(r.Rows, cells)
	}
	r.Truncated = t.NumRows() - n
	return nil
}

func (e *Engine) cmdSave(r *Result, args []string) error {
	if err := need(args, 2, "save <obj> <file>"); err != nil {
		return err
	}
	o, ok := e.ws.Get(args[0])
	if !ok {
		return fmt.Errorf("no object named %q", args[0])
	}
	switch {
	case o.Table != nil:
		if err := o.Table.SaveTSVFile(args[1], true); err != nil {
			return err
		}
		r.Message = fmt.Sprintf("wrote %d rows to %s", o.Table.NumRows(), args[1])
	case o.Graph != nil:
		if err := graph.SaveBinaryFile(args[1], o.Graph); err != nil {
			return err
		}
		r.Message = fmt.Sprintf("wrote %d nodes, %d edges to %s (binary)", o.Graph.NumNodes(), o.Graph.NumEdges(), args[1])
	default:
		return fmt.Errorf("%q is a %s; save handles tables and directed graphs (use snapshot for everything else)", args[0], o.Kind())
	}
	return nil
}

// cmdSaveMapped writes a graph as an RNGM image, the mmap-ready CSR layout
// loadgraph serves in place. The CSR views come from the workspace cache,
// so saving a graph that was just analyzed reuses the views the analytics
// built.
func (e *Engine) cmdSaveMapped(r *Result, args []string) error {
	if err := need(args, 2, "savemapped <graph> <file>"); err != nil {
		return err
	}
	o, ok := e.ws.Get(args[0])
	if !ok {
		return fmt.Errorf("no object named %q", args[0])
	}
	switch {
	case o.Graph != nil:
		v, err := e.ws.DirectedView(args[0])
		if err != nil {
			return err
		}
		if err := extmem.SaveMapped(args[1], v); err != nil {
			return err
		}
	case o.UGraph != nil:
		uv, err := e.ws.UndirectedView(args[0])
		if err != nil {
			return err
		}
		if err := extmem.SaveMappedUndirected(args[1], uv); err != nil {
			return err
		}
	case o.Mapped != nil && o.Mapped.View() != nil:
		if err := extmem.SaveMapped(args[1], o.Mapped.View()); err != nil {
			return err
		}
	case o.Mapped != nil:
		if err := extmem.SaveMappedUndirected(args[1], o.Mapped.UView()); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%q is a %s; savemapped handles graphs", args[0], o.Kind())
	}
	r.Message = fmt.Sprintf("wrote %s as a mapped CSR image to %s", args[0], args[1])
	return nil
}

func (e *Engine) cmdSnapshot(r *Result, args []string) error {
	if err := need(args, 1, "snapshot <file>"); err != nil {
		return err
	}
	if err := e.ws.SnapshotFile(args[0]); err != nil {
		return err
	}
	r.Message = fmt.Sprintf("snapshot: wrote %d objects to %s", len(e.ws.Names()), args[0])
	return nil
}

func (e *Engine) cmdRestore(r *Result, args []string) error {
	if err := need(args, 1, "restore <file>"); err != nil {
		return err
	}
	if err := e.ws.RestoreFile(args[0]); err != nil {
		return err
	}
	r.Message = fmt.Sprintf("restored %d objects from %s", len(e.ws.Names()), args[0])
	return nil
}

func (e *Engine) cmdRm(r *Result, args []string) error {
	if err := need(args, 1, "rm <name>"); err != nil {
		return err
	}
	if !e.ws.Delete(args[0]) {
		return fmt.Errorf("no object named %q", args[0])
	}
	r.Message = fmt.Sprintf("deleted %s", args[0])
	return nil
}

func (e *Engine) cmdMv(r *Result, args []string) error {
	if err := need(args, 2, "mv <old> <new>"); err != nil {
		return err
	}
	if err := e.ws.Rename(args[0], args[1]); err != nil {
		return err
	}
	r.Bound = args[1]
	if o, ok := e.ws.Get(args[1]); ok {
		r.Kind = o.Kind()
	}
	r.Message = fmt.Sprintf("renamed %s to %s", args[0], args[1])
	return nil
}
