package repl

import (
	"os"
	"strings"
	"testing"
)

// frontendVerbs are documented commands the engine never sees: the
// terminal shell consumes them before Eval.
var frontendVerbs = map[string]bool{"quit": true}

// TestCommandsDocCoversEveryVerb is the drift gate for docs/COMMANDS.md:
// every verb the engine evaluates must have a "### <verb>" section, and
// every documented section must be a live verb (or a known front-end
// command). Adding a verb without documenting it — or documenting one that
// no longer exists — fails here.
func TestCommandsDocCoversEveryVerb(t *testing.T) {
	data, err := os.ReadFile("../../docs/COMMANDS.md")
	if err != nil {
		t.Fatalf("docs/COMMANDS.md missing: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "### "); ok {
			documented[strings.TrimSpace(name)] = true
		}
	}
	for _, v := range Verbs() {
		if !documented[v] {
			t.Errorf("verb %q is not documented in docs/COMMANDS.md (add a %q section)", v, "### "+v)
		}
	}
	known := map[string]bool{}
	for _, v := range Verbs() {
		known[v] = true
	}
	for name := range documented {
		if !known[name] && !frontendVerbs[name] {
			t.Errorf("docs/COMMANDS.md documents %q, which is not a verb the engine evaluates", name)
		}
	}
}

// TestHelpTextCoversEveryVerb keeps the interactive help synopsis honest
// the same way.
func TestHelpTextCoversEveryVerb(t *testing.T) {
	for _, v := range Verbs() {
		if !strings.Contains(HelpText, "\n  "+v+" ") && !strings.Contains(HelpText, "\n  "+v+"\n") {
			t.Errorf("verb %q missing from HelpText", v)
		}
	}
}

// TestVerbTableProperties pins the dispatch-table invariants the
// front-ends rely on.
func TestVerbTableProperties(t *testing.T) {
	if !ReadOnly("algo G wcc") || !ReadOnly("") || !ReadOnly("nonsense x") {
		t.Error("read-only classification wrong")
	}
	if ReadOnly("pagerank PR G") || ReadOnly("restore f") {
		t.Error("mutating verb classified read-only")
	}
	for _, cmd := range []string{"load t f c:int", "loadgraph g f", "save g f", "snapshot f", "restore f"} {
		if !TouchesFiles(cmd) {
			t.Errorf("%q should touch files", cmd)
		}
	}
	if TouchesFiles("algo G wcc") || TouchesFiles("") {
		t.Error("non-file verb classified as file-touching")
	}
	if !ReplacesWorkspace("restore f") || ReplacesWorkspace("rm x") || ReplacesWorkspace("") {
		t.Error("workspace-replace classification wrong")
	}
	// Every replaces verb must also be mutating and file-touching today;
	// a new exception should be a conscious choice.
	for name, v := range verbs {
		if v.replaces && !v.mutates {
			t.Errorf("verb %q replaces the workspace but is not marked mutating", name)
		}
		if v.run == nil {
			t.Errorf("verb %q has no handler", name)
		}
	}
}
