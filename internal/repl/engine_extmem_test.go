package repl

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// TestSaveMappedLoadGraphRoundTrip drives the mapped tier end to end
// through the verb language: generate, convert, save as RNGM, load it back
// as a mapped binding, and check analytics agree with the heap graph.
func TestSaveMappedLoadGraphRoundTrip(t *testing.T) {
	e := New(nil)
	mustEval := func(line string) *Result {
		t.Helper()
		r, err := e.Eval(line)
		if err != nil {
			t.Fatalf("%s: %v", line, err)
		}
		return r
	}

	mustEval("gen rmat t 8 2000 3")
	mustEval("tograph g t src dst")
	path := filepath.Join(t.TempDir(), "g.rngm")
	mustEval("savemapped g " + path)

	r := mustEval(fmt.Sprintf("loadgraph m %s", path))
	if r.Kind != "mgraph" {
		t.Fatalf("loadgraph bound kind %q, want mgraph", r.Kind)
	}
	if !strings.Contains(r.Message, "mapped directed") {
		t.Fatalf("loadgraph message %q does not describe the mapped load", r.Message)
	}

	// Analytics over the mapped binding must agree with the heap graph.
	heap := mustEval("algo g wcc")
	mapped := mustEval("algo m wcc")
	if heap.Message != mapped.Message {
		t.Fatalf("wcc over mapped graph %q differs from heap graph %q", mapped.Message, heap.Message)
	}
	prHeap := mustEval("pagerank ph g")
	prMapped := mustEval("pagerank pm m")
	if prHeap.Message[strings.Index(prHeap.Message, ":"):] != prMapped.Message[strings.Index(prMapped.Message, ":"):] {
		t.Fatalf("pagerank summaries diverge: %q vs %q", prHeap.Message, prMapped.Message)
	}

	// The read-only tier: graph-mutating verbs and snapshots reject it.
	if _, err := e.Eval("totable bad m"); err == nil {
		t.Fatalf("totable accepted a mapped graph as a mutable directed graph")
	}
	if _, err := e.Eval("snapshot " + filepath.Join(t.TempDir(), "ws.rngs")); err == nil || !strings.Contains(err.Error(), "mapped graph") {
		t.Fatalf("snapshot err = %v, want mapped-binding rejection", err)
	}

	// Re-exporting a mapped binding writes a byte-stable image.
	path2 := filepath.Join(t.TempDir(), "g2.rngm")
	mustEval("savemapped m " + path2)
	r2 := mustEval("loadgraph m2 " + path2)
	if r2.Kind != "mgraph" {
		t.Fatalf("re-exported image bound kind %q", r2.Kind)
	}
}

func TestSaveMappedRejectsNonGraphs(t *testing.T) {
	e := New(nil)
	if _, err := e.Eval("gen rmat t 6 100 1"); err != nil {
		t.Fatal(err)
	}
	_, err := e.Eval("savemapped t " + filepath.Join(t.TempDir(), "t.rngm"))
	if err == nil || !strings.Contains(err.Error(), "savemapped handles graphs") {
		t.Fatalf("err = %v, want kind rejection", err)
	}
}
