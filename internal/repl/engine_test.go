package repl

import (
	"strings"
	"sync"
	"testing"

	"ringo/internal/graph"
)

// saveEdgeListForTest writes g as a text edge list, for loadgraph
// format-sniffing tests.
func saveEdgeListForTest(path string, g *graph.Directed) error {
	return graph.SaveEdgeListFile(path, g)
}

// evalAll runs a script, failing the test on any error, and returns the
// last result.
func evalAll(t *testing.T, e *Engine, lines ...string) *Result {
	t.Helper()
	var last *Result
	for _, line := range lines {
		r, err := e.Eval(line)
		if err != nil {
			t.Fatalf("Eval(%q): %v", line, err)
		}
		last = r
	}
	return last
}

// TestEngineGoldenMessages locks down the deterministic summary for each
// binding verb.
func TestEngineGoldenMessages(t *testing.T) {
	e := New(nil)
	dir := t.TempDir()
	steps := []struct {
		cmd  string
		want string // exact message; "" means checked elsewhere
	}{
		{"gen rmat E 8 300 7", "E: 300 rows"},
		{"tograph G E src dst", ""}, // node count varies with the seed
		{"totable T G", ""},
		{"project P E src", "P: 300 rows"},
		{"groupcount C E src", ""},
		{"select S E src >= 0", "S: 300 rows"},
		{"filter F E src >= 0 and dst >= 0", "F: 300 rows"},
		{"pagerank PR G", ""},
		{"scores2table ST PR Node Score", ""},
		{"save E " + dir + "/e.tsv", "wrote 300 rows to " + dir + "/e.tsv"},
		{"mv P P2", "renamed P to P2"},
		{"rm P2", "deleted P2"},
	}
	for _, s := range steps {
		r, err := e.Eval(s.cmd)
		if err != nil {
			t.Fatalf("Eval(%q): %v", s.cmd, err)
		}
		if s.want != "" && r.Message != s.want {
			t.Errorf("Eval(%q) message = %q, want %q", s.cmd, r.Message, s.want)
		}
	}
	// Structured fields of binding commands.
	r := evalAll(t, e, "gen rmat E2 6 40 1")
	if r.Bound != "E2" || r.Kind != "table" {
		t.Fatalf("bound=%q kind=%q, want E2/table", r.Bound, r.Kind)
	}
	r = evalAll(t, e, "tograph G2 E2 src dst")
	if r.Bound != "G2" || r.Kind != "graph" {
		t.Fatalf("bound=%q kind=%q, want G2/graph", r.Bound, r.Kind)
	}
	if !strings.HasPrefix(r.Message, "G2: ") || !strings.HasSuffix(r.Message, " edges") {
		t.Fatalf("tograph message = %q", r.Message)
	}
	r = evalAll(t, e, "pagerank PR2 G2")
	if r.Bound != "PR2" || r.Kind != "scores" {
		t.Fatalf("bound=%q kind=%q, want PR2/scores", r.Bound, r.Kind)
	}
	if r.ElapsedNS <= 0 {
		t.Fatal("pagerank did not record elapsed time")
	}
}

func TestEngineJoinMessageListsColumns(t *testing.T) {
	e := New(nil)
	r := evalAll(t, e,
		"gen rmat A 6 40 1",
		"gen rmat B 6 40 2",
		"join J A B src src",
	)
	if !strings.Contains(r.Message, "(") || !strings.Contains(r.Message, "src") {
		t.Fatalf("join message missing column list: %q", r.Message)
	}
}

func TestEngineTabularResults(t *testing.T) {
	e := New(nil)
	evalAll(t, e, "gen rmat E 7 120 3", "tograph G E src dst", "pagerank PR G")

	r := evalAll(t, e, "top PR 5")
	if len(r.Columns) != 3 || len(r.Rows) != 5 {
		t.Fatalf("top: columns=%v rows=%d", r.Columns, len(r.Rows))
	}
	if r.Rows[0][0] != "1" {
		t.Fatalf("top rank column = %q, want 1", r.Rows[0][0])
	}

	r = evalAll(t, e, "show E 4")
	if len(r.Columns) != 2 || len(r.Rows) != 4 || r.Truncated != 116 {
		t.Fatalf("show: columns=%v rows=%d truncated=%d", r.Columns, len(r.Rows), r.Truncated)
	}

	r = evalAll(t, e, "ls")
	if len(r.Columns) != 3 || len(r.Rows) != 3 {
		t.Fatalf("ls: columns=%v rows=%d", r.Columns, len(r.Rows))
	}
	if r.Rows[0][0] != "E" || r.Rows[0][2] != "gen rmat E 7 120 3" {
		t.Fatalf("ls first row = %v", r.Rows[0])
	}

	// Empty workspace listing.
	r = evalAll(t, New(nil), "ls")
	if r.Message != "(workspace empty)" || len(r.Rows) != 0 {
		t.Fatalf("empty ls = %+v", r)
	}
}

func TestEngineAlgoVerbs(t *testing.T) {
	e := New(nil)
	evalAll(t, e, "gen rmat E 8 600 5", "tograph G E src dst")
	for alg, want := range map[string]string{
		"triangles":  "triangles",
		"wcc":        "weak components",
		"scc":        "strong components",
		"3core":      "3-core:",
		"diam":       "approximate diameter",
		"motifs":     "wedges",
		"bridges":    "bridges",
		"cuts":       "articulation points",
		"toposort":   "", // cyclic R-MAT graphs report not-a-DAG
		"clustering": "average clustering coefficient",
	} {
		r := evalAll(t, e, "algo G "+alg)
		if want != "" && !strings.Contains(r.Message, want) {
			t.Errorf("algo %s message = %q, want substring %q", alg, r.Message, want)
		}
	}
}

func TestEngineErrors(t *testing.T) {
	e := New(nil)
	evalAll(t, e, "gen rmat E 6 40 1", "tograph G E src dst", "pagerank PR G")
	for _, line := range []string{
		"",                        // empty command
		"bogus",                   // unknown verb
		"select X",                // usage
		"select X missing c == 1", // unknown object
		"select X G src == 1",     // wrong kind: graph, not table
		"pagerank X E",            // wrong kind: table, not graph
		"top E",                   // wrong kind: table, not scores
		"algo E wcc",              // wrong kind
		"algo G nosuch",           // unknown algorithm
		"gen rmat X bad 5",        // unparseable number
		"gen nope X",              // unknown generator
		"load X /nonexistent a:int",
		"load X /nonexistent a:nosuchtype",
		"loadgraph X /nonexistent",
		"order missing asc a",
		"order E sideways src",
		"show missing",
		"show E -1", // negative row count
		"top G 5",
		"top PR -1", // negative k would panic TopK's slice bound
		"top PR 0",
		"top PR x",
		"rm missing",
		"mv missing elsewhere",
		"mv missing missing", // self-rename of a nonexistent object

		"join X E missing src src",
	} {
		if _, err := e.Eval(line); err == nil {
			t.Errorf("Eval(%q) did not error", line)
		}
	}
	// Errors must not bind anything.
	if names := e.Workspace().Names(); len(names) != 3 {
		t.Fatalf("error cases changed workspace: %v", names)
	}
}

func TestReadOnlyClassification(t *testing.T) {
	for line, want := range map[string]bool{
		"ls":                true,
		"show T 5":          true,
		"top PR":            true,
		"algo G wcc":        true,
		"help":              true,
		"save T /tmp/x.tsv": true,
		"":                  true,
		"unknowncmd x":      true,
		"gen rmat E 6 40":   false,
		"load T f a:int":    false,
		"select X T c == 1": false,
		"order T asc c":     false,
		"pagerank PR G":     false,
		"rm X":              false,
		"mv A B":            false,
		"tograph G T s d":   false,
		"snapshot /tmp/w":   true,
		"restore /tmp/w":    false,
	} {
		if got := ReadOnly(line); got != want {
			t.Errorf("ReadOnly(%q) = %v, want %v", line, got, want)
		}
	}
}

func TestTouchesFilesClassification(t *testing.T) {
	for line, want := range map[string]bool{
		"load T f a:int":    true,
		"loadgraph G f":     true,
		"save T /tmp/x.tsv": true,
		"snapshot /tmp/w":   true,
		"restore /tmp/w":    true,
		"ls":                false,
		"gen rmat E 6 40":   false,
		"pagerank PR G":     false,
		"":                  false,
	} {
		if got := TouchesFiles(line); got != want {
			t.Errorf("TouchesFiles(%q) = %v, want %v", line, got, want)
		}
	}
}

// TestEngineSnapshotRestoreVerbs drives the full verb path: build a mixed
// workspace, snapshot it, wipe, restore, and query the restored objects.
func TestEngineSnapshotRestoreVerbs(t *testing.T) {
	e := New(nil)
	path := t.TempDir() + "/ws.rsnp"
	evalAll(t, e,
		"gen rmat E 7 120 3",
		"tograph G E src dst",
		"pagerank PR G",
	)
	r := evalAll(t, e, "snapshot "+path)
	if want := "snapshot: wrote 3 objects to " + path; r.Message != want {
		t.Fatalf("snapshot message = %q, want %q", r.Message, want)
	}
	prov := e.Workspace().Provenance("G")

	// Restore into a second engine and keep working there.
	e2 := New(nil)
	r = evalAll(t, e2, "restore "+path)
	if want := "restored 3 objects from " + path; r.Message != want {
		t.Fatalf("restore message = %q, want %q", r.Message, want)
	}
	if got := e2.Workspace().Provenance("G"); got != prov {
		t.Fatalf("provenance = %q, want %q", got, prov)
	}
	r = evalAll(t, e2, "top PR 3")
	if len(r.Rows) != 3 {
		t.Fatalf("top over restored scores returned %d rows", len(r.Rows))
	}
	r = evalAll(t, e2, "algo G wcc")
	if r.Message == "" {
		t.Fatal("algo over restored graph returned no message")
	}

	if _, err := e2.Eval("restore " + path + ".missing"); err == nil {
		t.Fatal("restore of missing file did not error")
	}
	if _, err := e2.Eval("snapshot"); err == nil {
		t.Fatal("snapshot without a path did not error")
	}
}

// TestEngineSaveGraphLoadGraphRoundTrip covers the save/load asymmetry
// fix: save writes graphs in the binary format and loadgraph sniffs it.
func TestEngineSaveGraphLoadGraphRoundTrip(t *testing.T) {
	e := New(nil)
	dir := t.TempDir()
	evalAll(t, e,
		"gen rmat E 7 120 3",
		"tograph G E src dst",
	)
	r := evalAll(t, e, "save G "+dir+"/g.rngo")
	if !strings.Contains(r.Message, "(binary)") {
		t.Fatalf("graph save message = %q", r.Message)
	}
	r = evalAll(t, e, "loadgraph G2 "+dir+"/g.rngo")
	if r.Kind != "graph" {
		t.Fatalf("loadgraph kind = %q", r.Kind)
	}
	g, err := e.Workspace().Graph("G")
	if err != nil {
		t.Fatal(err)
	}
	g2, err := e.Workspace().Graph("G2")
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("binary round trip dims (%d,%d) != (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}

	// Text edge lists still load through the same verb.
	evalAll(t, e, "totable T G")
	if err := func() error {
		gr, err := e.Workspace().Graph("G")
		if err != nil {
			return err
		}
		return saveEdgeListForTest(dir+"/g.txt", gr)
	}(); err != nil {
		t.Fatal(err)
	}
	r = evalAll(t, e, "loadgraph G3 "+dir+"/g.txt")
	g3, err := e.Workspace().Graph("G3")
	if err != nil {
		t.Fatal(err)
	}
	if g3.NumEdges() != g.NumEdges() {
		t.Fatalf("edge-list round trip edges %d != %d", g3.NumEdges(), g.NumEdges())
	}

	// Saving a scores object is still refused, with a pointer to snapshot.
	evalAll(t, e, "pagerank PR G")
	if _, err := e.Eval("save PR " + dir + "/pr"); err == nil {
		t.Fatal("save of scores object did not error")
	}
}

// countingCache is a trivial Cache for engine-level cache behavior tests.
type countingCache struct {
	mu   sync.Mutex
	m    map[string]CachedResult
	hits int
	puts int
}

func newCountingCache() *countingCache { return &countingCache{m: make(map[string]CachedResult)} }

func (c *countingCache) Get(key string) (CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.m[key]
	if ok {
		c.hits++
	}
	return v, ok
}

func (c *countingCache) Put(key string, v CachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = v
}

func TestEnginePageRankCaching(t *testing.T) {
	e := New(nil)
	cache := newCountingCache()
	e.SetCache(cache)
	evalAll(t, e, "gen rmat E 8 500 2", "tograph G E src dst")

	r1 := evalAll(t, e, "pagerank PR G")
	if r1.Cached {
		t.Fatal("first pagerank reported cached")
	}
	// Re-query under a different output name: same computation, served
	// from cache without recomputation.
	r2 := evalAll(t, e, "pagerank PR2 G")
	if !r2.Cached || cache.hits != 1 {
		t.Fatalf("second pagerank cached=%v hits=%d, want true/1", r2.Cached, cache.hits)
	}
	if r2.ElapsedNS != 0 {
		t.Fatal("cached pagerank reported compute time")
	}
	// The cached scores really bind: top works on PR2.
	if r := evalAll(t, e, "top PR2 3"); len(r.Rows) != 3 {
		t.Fatalf("top over cached scores: %d rows", len(r.Rows))
	}
	// Rebinding the graph invalidates via the fingerprint.
	evalAll(t, e, "tograph G E src dst")
	r3 := evalAll(t, e, "pagerank PR3 G")
	if r3.Cached {
		t.Fatal("pagerank after graph rebind served stale cache entry")
	}
}

func TestEngineAlgoCachingAndOrderInvalidation(t *testing.T) {
	e := New(nil)
	cache := newCountingCache()
	e.SetCache(cache)
	evalAll(t, e, "gen rmat E 8 400 9", "tograph G E src dst")

	r1 := evalAll(t, e, "algo G wcc")
	r2 := evalAll(t, e, "algo G wcc")
	if r1.Cached || !r2.Cached {
		t.Fatalf("algo caching: first=%v second=%v", r1.Cached, r2.Cached)
	}
	if r2.Message != r1.Message {
		t.Fatalf("cached message %q != computed %q", r2.Message, r1.Message)
	}
	// Different algorithm over the same graph is a different key.
	if r := evalAll(t, e, "algo G triangles"); r.Cached {
		t.Fatal("triangles hit the wcc cache entry")
	}

	// In-place order bumps the table version, so table-derived cache keys
	// can never serve stale results.
	fpBefore, _ := e.Workspace().Fingerprint("E")
	evalAll(t, e, "order E desc src")
	fpAfter, _ := e.Workspace().Fingerprint("E")
	if fpBefore == fpAfter {
		t.Fatal("order did not change the table fingerprint")
	}
}

func TestRenderClassicFormats(t *testing.T) {
	e := New(nil)
	evalAll(t, e, "gen rmat E 7 100 4", "tograph G E src dst", "pagerank PR G")

	var b strings.Builder
	r := evalAll(t, e, "top PR 2")
	r.Render(&b)
	if !strings.Contains(b.String(), ". node ") {
		t.Fatalf("top render: %q", b.String())
	}

	b.Reset()
	r = evalAll(t, e, "show E 2")
	r.Render(&b)
	if !strings.Contains(b.String(), "src\tdst") || !strings.Contains(b.String(), "more rows") {
		t.Fatalf("show render: %q", b.String())
	}

	b.Reset()
	r = evalAll(t, e, "ls")
	r.Render(&b)
	if !strings.Contains(b.String(), "from: gen rmat E 7 100 4") {
		t.Fatalf("ls render missing provenance: %q", b.String())
	}

	b.Reset()
	r = evalAll(t, e, "algo G wcc")
	r.Render(&b)
	if !strings.Contains(b.String(), "weak components, largest") || !strings.Contains(b.String(), " in ") {
		t.Fatalf("algo render missing timing: %q", b.String())
	}

	// order has no output.
	b.Reset()
	r = evalAll(t, e, "order E asc src")
	r.Render(&b)
	if b.String() != "" {
		t.Fatalf("order rendered %q, want empty", b.String())
	}
}
