package repl

import (
	"fmt"
	"strconv"
)

// The fine-grained graph mutation verbs (addedge, deledge, addnode) are
// the shell surface of the incremental tier: they update a bound graph in
// place through the workspace's delta log, so cached CSR views survive as
// patch bases and the next analytics query patches instead of rebuilding
// (see internal/core/incremental.go). Like every mutating verb they are
// serialized against queries by the host's session lock.

// parseNodeID parses one node-id argument.
func parseNodeID(tok string) (int64, error) {
	id, err := strconv.ParseInt(tok, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad node id %q", tok)
	}
	return id, nil
}

// bindMutated records the mutated graph binding on the result.
func (e *Engine) bindMutated(r *Result, name string) {
	r.Bound = name
	if o, ok := e.ws.Get(name); ok {
		r.Kind = o.Kind()
	}
}

func (e *Engine) cmdAddEdge(r *Result, args []string) error {
	if err := need(args, 3, "addedge <graph> <src> <dst>"); err != nil {
		return err
	}
	src, err := parseNodeID(args[1])
	if err != nil {
		return err
	}
	dst, err := parseNodeID(args[2])
	if err != nil {
		return err
	}
	ok, err := e.ws.AddGraphEdge(args[0], src, dst)
	if err != nil {
		return err
	}
	e.bindMutated(r, args[0])
	if !ok {
		r.Message = fmt.Sprintf("%s: edge %d -> %d already present", args[0], src, dst)
		return nil
	}
	r.Message = fmt.Sprintf("%s: added edge %d -> %d (%d pending deltas)",
		args[0], src, dst, len(e.ws.PendingDeltas(args[0])))
	return nil
}

func (e *Engine) cmdDelEdge(r *Result, args []string) error {
	if err := need(args, 3, "deledge <graph> <src> <dst>"); err != nil {
		return err
	}
	src, err := parseNodeID(args[1])
	if err != nil {
		return err
	}
	dst, err := parseNodeID(args[2])
	if err != nil {
		return err
	}
	ok, err := e.ws.DelGraphEdge(args[0], src, dst)
	if err != nil {
		return err
	}
	e.bindMutated(r, args[0])
	if !ok {
		r.Message = fmt.Sprintf("%s: no edge %d -> %d", args[0], src, dst)
		return nil
	}
	r.Message = fmt.Sprintf("%s: deleted edge %d -> %d (%d pending deltas)",
		args[0], src, dst, len(e.ws.PendingDeltas(args[0])))
	return nil
}

func (e *Engine) cmdAddNode(r *Result, args []string) error {
	if err := need(args, 2, "addnode <graph> <id>"); err != nil {
		return err
	}
	id, err := parseNodeID(args[1])
	if err != nil {
		return err
	}
	ok, err := e.ws.AddGraphNode(args[0], id)
	if err != nil {
		return err
	}
	e.bindMutated(r, args[0])
	if !ok {
		r.Message = fmt.Sprintf("%s: node %d already present", args[0], id)
		return nil
	}
	r.Message = fmt.Sprintf("%s: added node %d (%d pending deltas)",
		args[0], id, len(e.ws.PendingDeltas(args[0])))
	return nil
}
