package repl

import (
	"strings"
	"testing"
)

// TestMutationVerbs drives the addedge/deledge/addnode surface end to
// end: golden messages, no-op phrasing, delta-log visibility, and the
// view-patching effect on a later analytics query.
func TestMutationVerbs(t *testing.T) {
	e := New(nil)
	evalAll(t, e,
		"gen rmat E 6 120 7",
		"tograph G E src dst",
		"algo G wcc", // warms the directed view
	)
	steps := []struct {
		cmd  string
		want string
	}{
		{"addedge G 1000 1001", "G: added edge 1000 -> 1001 (1 pending deltas)"},
		{"addedge G 1000 1001", "G: edge 1000 -> 1001 already present"},
		{"deledge G 1000 1001", "G: deleted edge 1000 -> 1001 (2 pending deltas)"},
		{"deledge G 1000 1001", "G: no edge 1000 -> 1001"},
		{"addnode G 2000", "G: added node 2000 (3 pending deltas)"},
		{"addnode G 2000", "G: node 2000 already present"},
	}
	for _, s := range steps {
		r, err := e.Eval(s.cmd)
		if err != nil {
			t.Fatalf("Eval(%q): %v", s.cmd, err)
		}
		if r.Message != s.want {
			t.Errorf("Eval(%q) message = %q, want %q", s.cmd, r.Message, s.want)
		}
		if r.Bound != "G" || r.Kind != "graph" {
			t.Errorf("Eval(%q) bound %q kind %q, want G/graph", s.cmd, r.Bound, r.Kind)
		}
	}

	// The warmed view must have been patched, not rebuilt, on requery.
	p0, _ := e.Workspace().PatchStats()
	evalAll(t, e, "algo G wcc")
	if p1, _ := e.Workspace().PatchStats(); p1 != p0+1 {
		t.Fatalf("query after small mutations should patch: patches %d -> %d", p0, p1)
	}
}

// TestMutationVerbErrors pins the error surface.
func TestMutationVerbErrors(t *testing.T) {
	e := New(nil)
	evalAll(t, e, "gen rmat E 6 120 7")
	for _, cmd := range []string{
		"addedge",                        // usage
		"addedge G 1",                    // usage
		"addedge NOPE 1 2",               // unknown binding
		"addedge E 1 2",                  // not a graph
		"addedge G x 2",                  // bad id (checked before binding lookup)
		"deledge G 1 y",                  // bad id
		"addnode G zzz",                  // bad id
		"addnode G -9223372036854775808", // reserved sentinel id
	} {
		if _, err := e.Eval(cmd); err == nil {
			t.Errorf("Eval(%q): expected error", cmd)
		}
	}
	// All three verbs must be marked mutating so hosts serialize them.
	for _, v := range []string{"addedge G 1 2", "deledge G 1 2", "addnode G 1"} {
		if ReadOnly(v) {
			t.Errorf("ReadOnly(%q) = true, want false", v)
		}
	}
}

// TestMutationVerbUndirected checks the verbs work on undirected bindings
// (loaded from a binary RNGU file).
func TestMutationVerbUndirected(t *testing.T) {
	e := New(nil)
	if _, err := e.Eval("gen rmat E 6 120 7"); err != nil {
		t.Fatal(err)
	}
	// No verb binds a ugraph directly; set one through the workspace.
	evalAll(t, e, "tograph G E src dst")
	r, err := e.Eval("addedge G 5000 5000")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Message, "added edge 5000 -> 5000") {
		t.Fatalf("self-loop add message: %q", r.Message)
	}
}
