package repl

import (
	"log/slog"
	"strconv"
	"strings"
	"time"

	"ringo/internal/obs"
)

// Metric families the engine records, one series per verb (label
// verb=<name>). Every evaluation lands in the engine's own registry — the
// source the stats verb prints, giving per-session visibility — and, when
// telemetry is wired, in the shared registry a host exposes globally
// (GET /metrics on the server), so per-verb cost is visible at both
// scopes without double bookkeeping anywhere else.
const (
	// MetricVerbCalls counts evaluated commands by verb.
	MetricVerbCalls = "ringo_verb_calls_total"
	// MetricVerbErrors counts evaluations that returned an error, by verb.
	MetricVerbErrors = "ringo_verb_errors_total"
	// MetricVerbDuration is the per-verb evaluation latency histogram.
	MetricVerbDuration = "ringo_verb_duration_seconds"
)

const (
	helpVerbCalls    = "Commands evaluated, by verb."
	helpVerbErrors   = "Commands that returned an error, by verb."
	helpVerbDuration = "Command evaluation latency in seconds, by verb."
)

// Telemetry wires an engine into a host's observability layer. The zero
// value disables everything except the engine's always-on local registry.
type Telemetry struct {
	// Reg additionally receives every per-verb record — a server passes
	// its shared registry here so verb cost aggregates across sessions.
	Reg *obs.Registry
	// Log receives slow-query records (and nothing else from the engine).
	Log *slog.Logger
	// SlowQuery is the elapsed threshold at or above which an evaluated
	// verb or script step is logged through Log; 0 disables the slow log.
	SlowQuery time.Duration
	// Session labels slow-query records with the owning session id.
	Session string
}

// SetTelemetry installs the host's observability wiring. Call before the
// engine is shared between goroutines.
func (e *Engine) SetTelemetry(t Telemetry) { e.tel = t }

// Metrics exposes the engine's own per-verb registry, populated from the
// first Eval on. The stats verb renders it; hosts embedding the engine can
// scrape it directly.
func (e *Engine) Metrics() *obs.Registry { return e.metrics }

// observe records one completed evaluation into the local and (when
// wired) shared registries, and emits the slow-query record when the verb
// crossed the threshold. Only known verbs are recorded: series are keyed
// by verb name, and arbitrary input must not mint unbounded label values.
func (e *Engine) observe(verb string, args []string, elapsed time.Duration, err error) {
	label := obs.L("verb", verb)
	for _, reg := range [...]*obs.Registry{e.metrics, e.tel.Reg} {
		if reg == nil {
			continue
		}
		reg.Counter(MetricVerbCalls, helpVerbCalls, label).Inc()
		if err != nil {
			reg.Counter(MetricVerbErrors, helpVerbErrors, label).Inc()
		}
		reg.Histogram(MetricVerbDuration, helpVerbDuration, label).Observe(elapsed)
	}
	if e.tel.Log != nil && e.tel.SlowQuery > 0 && elapsed >= e.tel.SlowQuery {
		// Fingerprints of the arguments that name live workspace objects:
		// "G#17" pins exactly which state of which graph was slow, so a
		// recurring slow query can be correlated across mutations.
		var fps []string
		for _, a := range args {
			if fp, ok := e.ws.Fingerprint(a); ok {
				fps = append(fps, fp)
			}
		}
		attrs := []any{
			slog.String("verb", verb),
			slog.String("cmd", strings.TrimSpace(verb+" "+strings.Join(args, " "))),
			slog.Duration("elapsed", elapsed),
			slog.String("objects", strings.Join(fps, ",")),
		}
		if e.tel.Session != "" {
			attrs = append(attrs, slog.String("session", e.tel.Session))
		}
		if err != nil {
			attrs = append(attrs, slog.String("error", err.Error()))
		}
		e.tel.Log.Warn("slow query", attrs...)
	}
}

// cmdIndexes renders the workspace's equality-index cache statistics: how
// often select filters were served from a cached bitmap index versus built
// one, and what the resident indexes cost. Read-only.
func (e *Engine) cmdIndexes(r *Result) error {
	hits, misses, entries, bytes := e.ws.IndexCacheStats()
	r.Columns = []string{"hits", "misses", "entries", "bytes"}
	r.Rows = append(r.Rows, []string{
		strconv.FormatUint(hits, 10),
		strconv.FormatUint(misses, 10),
		strconv.Itoa(entries),
		strconv.FormatInt(bytes, 10),
	})
	return nil
}

// cmdStats renders the engine's per-verb telemetry: call and error counts
// plus latency percentiles extracted from the log₂ histograms. Read-only;
// an engine that has evaluated nothing reports that instead of an empty
// table.
func (e *Engine) cmdStats(r *Result) error {
	series := e.metrics.Series(MetricVerbDuration)
	if len(series) == 0 {
		r.Message = "(no commands recorded yet)"
		return nil
	}
	r.Columns = []string{"verb", "calls", "errors", "p50", "p90", "p99", "total"}
	for _, sv := range series {
		verb := sv.Get("verb")
		calls, _ := e.metrics.Value(MetricVerbCalls, obs.L("verb", verb))
		errs, _ := e.metrics.Value(MetricVerbErrors, obs.L("verb", verb))
		h := sv.Hist
		r.Rows = append(r.Rows, []string{
			verb,
			strconv.FormatUint(uint64(calls), 10),
			strconv.FormatUint(uint64(errs), 10),
			h.P50.Round(time.Microsecond).String(),
			h.P90.Round(time.Microsecond).String(),
			h.P99.Round(time.Microsecond).String(),
			h.Sum.Round(time.Microsecond).String(),
		})
	}
	return nil
}
