package repl

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"log/slog"

	"ringo/internal/obs"
)

// TestStatsVerb checks the stats verb reports per-verb counts and
// percentiles from the engine's own registry, including failed commands.
func TestStatsVerb(t *testing.T) {
	e := New(nil)
	r, err := e.Eval("stats")
	if err != nil {
		t.Fatal(err)
	}
	// The stats call itself is recorded after the verb runs, so a fresh
	// engine reports emptiness.
	if !strings.Contains(r.Message, "no commands recorded") {
		t.Errorf("fresh stats message = %q", r.Message)
	}

	mustEval(t, e, "gen rmat E 8 500 7")
	mustEval(t, e, "tograph G E src dst")
	mustEval(t, e, "pagerank PR G")
	mustEval(t, e, "pagerank PR2 G")
	if _, err := e.Eval("pagerank"); err == nil { // missing args -> error
		t.Fatal("want usage error")
	}

	r, err = e.Eval("stats")
	if err != nil {
		t.Fatal(err)
	}
	if want := []string{"verb", "calls", "errors", "p50", "p90", "p99", "total"}; strings.Join(r.Columns, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v", r.Columns)
	}
	rows := map[string][]string{}
	for _, row := range r.Rows {
		rows[row[0]] = row
	}
	pr, ok := rows["pagerank"]
	if !ok {
		t.Fatalf("no pagerank row in %v", r.Rows)
	}
	if pr[1] != "3" || pr[2] != "1" {
		t.Errorf("pagerank calls/errors = %s/%s, want 3/1", pr[1], pr[2])
	}
	if _, err := time.ParseDuration(pr[3]); err != nil {
		t.Errorf("p50 %q is not a duration: %v", pr[3], err)
	}
	// stats ran once before this evaluation; its own row must be present.
	if st, ok := rows["stats"]; !ok || st[1] != "1" {
		t.Errorf("stats row = %v", rows["stats"])
	}
}

// TestSharedRegistryReceivesVerbMetrics checks Telemetry.Reg aggregates
// the same series the local registry records.
func TestSharedRegistryReceivesVerbMetrics(t *testing.T) {
	shared := obs.NewRegistry()
	e := New(nil)
	e.SetTelemetry(Telemetry{Reg: shared})
	mustEval(t, e, "gen rmat E 8 500 7")
	mustEval(t, e, "ls")
	mustEval(t, e, "ls")

	if v, ok := shared.Value(MetricVerbCalls, obs.L("verb", "ls")); !ok || v != 2 {
		t.Errorf("shared ls calls = %v, %v", v, ok)
	}
	if h := shared.Histogram(MetricVerbDuration, helpVerbDuration, obs.L("verb", "gen")); h.Count() != 1 {
		t.Errorf("shared gen histogram count = %d", h.Count())
	}
	if v, ok := e.Metrics().Value(MetricVerbCalls, obs.L("verb", "ls")); !ok || v != 2 {
		t.Errorf("local ls calls = %v, %v", v, ok)
	}
}

// TestSlowQueryLog sets the threshold to one nanosecond so every verb is
// "slow", and asserts the structured record carries session, verb, object
// fingerprints and duration — the fields an operator needs to correlate a
// slow query with the exact object state it ran against.
func TestSlowQueryLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	e := New(nil)
	e.SetTelemetry(Telemetry{Log: logger, SlowQuery: time.Nanosecond, Session: "s1"})

	mustEval(t, e, "gen rmat E 8 500 7")
	mustEval(t, e, "tograph G E src dst")
	buf.Reset()
	mustEval(t, e, "pagerank PR G")

	line := strings.SplitN(buf.String(), "\n", 2)[0]
	var rec map[string]any
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("slow-query record is not JSON: %v (%q)", err, line)
	}
	if rec["msg"] != "slow query" || rec["verb"] != "pagerank" || rec["session"] != "s1" {
		t.Errorf("record = %v", rec)
	}
	if obj, _ := rec["objects"].(string); !strings.Contains(obj, "G#") {
		t.Errorf("objects = %v, want a G#<version> fingerprint", rec["objects"])
	}
	if _, ok := rec["elapsed"]; !ok {
		t.Errorf("record has no elapsed field: %v", rec)
	}

	// Below threshold: nothing is logged.
	e.SetTelemetry(Telemetry{Log: logger, SlowQuery: time.Hour, Session: "s1"})
	buf.Reset()
	mustEval(t, e, "ls")
	if buf.Len() != 0 {
		t.Errorf("fast verb logged: %s", buf.String())
	}

	// Failed commands over threshold are logged with the error.
	e.SetTelemetry(Telemetry{Log: logger, SlowQuery: time.Nanosecond})
	buf.Reset()
	if _, err := e.Eval("pagerank X NOPE"); err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(buf.String(), `"error"`) {
		t.Errorf("failed slow query not logged with error: %s", buf.String())
	}
}

func mustEval(t *testing.T, e *Engine, cmd string) *Result {
	t.Helper()
	r, err := e.Eval(cmd)
	if err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	return r
}
