package repl

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// verb returns the command verb of the evaluated line.
func (r *Result) verb() string {
	f := strings.Fields(r.Cmd)
	if len(f) == 0 {
		return ""
	}
	return f[0]
}

// Render writes the result in the classic terminal-shell format: summary
// lines get their timing suffix back, tabular payloads (ls, show, top) are
// laid out exactly as the original single-user shell printed them. This
// keeps the TTY front-end byte-compatible while the HTTP front-end ships
// the same Result as JSON.
func (r *Result) Render(w io.Writer) {
	switch r.verb() {
	case "ls":
		if len(r.Rows) == 0 {
			fmt.Fprintln(w, r.Message)
			return
		}
		for _, row := range r.Rows {
			if prov := row[2]; prov != "" {
				fmt.Fprintf(w, "  %-12s %s\n               from: %s\n", row[0], row[1], prov)
			} else {
				fmt.Fprintf(w, "  %-12s %s\n", row[0], row[1])
			}
		}
	case "top":
		for _, row := range r.Rows {
			fmt.Fprintf(w, "  %2s. node %-10s %s\n", row[0], row[1], row[2])
		}
	case "show":
		fmt.Fprintf(w, "  %s\n", strings.Join(r.Columns, "\t"))
		for _, row := range r.Rows {
			fmt.Fprintf(w, "  %s\n", strings.Join(row, "\t"))
		}
		if r.Truncated > 0 {
			fmt.Fprintf(w, "  ... %d more rows\n", r.Truncated)
		}
	case "stats", "indexes":
		if len(r.Rows) == 0 {
			fmt.Fprintln(w, r.Message)
			return
		}
		// Column-aligned: verb names and durations vary in width.
		widths := make([]int, len(r.Columns))
		for i, c := range r.Columns {
			widths[i] = len(c)
		}
		for _, row := range r.Rows {
			for i, cell := range row {
				if len(cell) > widths[i] {
					widths[i] = len(cell)
				}
			}
		}
		line := func(cells []string) {
			parts := make([]string, len(cells))
			for i, cell := range cells {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			}
			fmt.Fprintf(w, "  %s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
		}
		line(r.Columns)
		for _, row := range r.Rows {
			line(row)
		}
	case "source":
		for _, row := range r.Rows {
			fmt.Fprintf(w, "  %2s. %s\n", row[0], row[3])
		}
		if r.Message != "" {
			fmt.Fprintln(w, r.Message)
		}
	default:
		if r.Message == "" {
			return
		}
		line := r.Message
		if r.ElapsedNS > 0 {
			line += fmt.Sprintf(" in %v", time.Duration(r.ElapsedNS))
		}
		if r.Cached {
			line += " (cached)"
		}
		fmt.Fprintln(w, line)
	}
}

// RenderScript writes a batch run in the shape a live session would have
// produced: optionally the echoed command (@echo), the step's rendered
// result or error, and optionally its wall time (@time). Skipped steps are
// summarized, not listed — they never ran.
func RenderScript(w io.Writer, sr *ScriptResult) {
	for _, st := range sr.Steps {
		if sr.Echo {
			fmt.Fprintf(w, "ringo> %s\n", st.Cmd)
		}
		if st.Error != "" {
			fmt.Fprintf(w, "error: %s\n", st.Error)
		} else if st.Result != nil {
			st.Result.Render(w)
		}
		if sr.Time {
			fmt.Fprintf(w, "# step %d: %v\n", st.Index+1, time.Duration(st.ElapsedNS).Round(time.Microsecond))
		}
	}
	if sr.Skipped > 0 {
		fmt.Fprintf(w, "# %d step(s) skipped after failure\n", sr.Skipped)
	}
}
