package repl

// Script execution: the batch counterpart of Eval. An analysis session in
// Ringo is a chain of verbs, and paying one HTTP round trip and one session
// lock acquisition per verb is exactly the per-operation overhead the
// paper's interactive model argues against. A Script is that chain as a
// first-class artifact — parsed once, classified as a whole (read-only?
// touches files? replaces the workspace?), executed in one pass with
// per-step wall-clock timings, and shareable as a plain text file.
//
// # Script format
//
// One verb per line, in the exact syntax of the interactive shell
// (docs/COMMANDS.md). Blank lines and lines starting with '#' are skipped.
// A line reading "quit" or "exit" ends the script early, so a transcript
// saved from an interactive session runs unmodified. Lines starting with
// '@' are directives that configure the whole run:
//
//	@echo      front-ends print each command before its result
//	@time      front-ends print each step's wall-clock time
//	@continue  keep executing after a failed step (default: stop, and
//	           count the rest as skipped)
//
// Unknown directives are parse errors, so a typo fails loudly before any
// step runs.

import (
	"fmt"
	"os"
	"strings"
	"time"
)

// Step is one executable command of a parsed script: the verb line plus the
// 1-based source line it came from, so errors point back into the file.
type Step struct {
	Cmd    string `json:"cmd"`
	LineNo int    `json:"line"`
}

// Script is a parsed command batch plus its run-wide directive flags.
type Script struct {
	Steps []Step
	// Echo and Time are presentation hints for front-ends (the engine
	// records timings regardless); Continue selects run-all over
	// stop-on-error.
	Echo     bool
	Time     bool
	Continue bool
}

// ParseScript parses script text into executable steps. It validates only
// the line structure and directives; verb existence and arity surface when
// a step runs, exactly as they would typed into a shell.
func ParseScript(src string) (*Script, error) {
	s := &Script{}
	for i, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		lineNo := i + 1
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "@") {
			fields := strings.Fields(line)
			if len(fields) > 1 {
				return nil, fmt.Errorf("script line %d: directive %s takes no arguments", lineNo, fields[0])
			}
			switch fields[0] {
			case "@echo":
				s.Echo = true
			case "@time":
				s.Time = true
			case "@continue":
				s.Continue = true
			default:
				return nil, fmt.Errorf("script line %d: unknown directive %q (want @echo, @time or @continue)", lineNo, fields[0])
			}
			continue
		}
		// Front-end verbs end a script instead of erroring, so a saved
		// interactive transcript is directly sourceable.
		if line == "quit" || line == "exit" {
			break
		}
		s.Steps = append(s.Steps, Step{Cmd: line, LineNo: lineNo})
	}
	return s, nil
}

// ReadOnly reports whether every step of the script only reads workspace
// state — the whole batch can then run under a shared lock.
func (s *Script) ReadOnly() bool {
	for _, st := range s.Steps {
		if !ReadOnly(st.Cmd) {
			return false
		}
	}
	return true
}

// TouchesFiles returns the index of the first step that reads or writes
// host files, or -1. Hosts that refuse filesystem access reject the whole
// script up front, naming that step.
func (s *Script) TouchesFiles() int {
	for i, st := range s.Steps {
		if TouchesFiles(st.Cmd) {
			return i
		}
	}
	return -1
}

// ReplacesWorkspace reports whether any step swaps out the entire
// workspace contents (restore, or a nested source).
func (s *Script) ReplacesWorkspace() bool {
	for _, st := range s.Steps {
		if ReplacesWorkspace(st.Cmd) {
			return true
		}
	}
	return false
}

// StepResult is the outcome of one executed script step: either Result or
// Error is set. ElapsedNS is the step's wall-clock time, which includes
// lock-free engine dispatch but no queueing — the per-step cost a batched
// run amortizes is visible by comparing against per-query round trips.
type StepResult struct {
	// Index is the 0-based position among the script's executable steps;
	// LineNo is the 1-based line in the source text.
	Index     int     `json:"index"`
	LineNo    int     `json:"line"`
	Cmd       string  `json:"cmd"`
	Result    *Result `json:"result,omitempty"`
	Error     string  `json:"error,omitempty"`
	ElapsedNS int64   `json:"elapsed_ns"`
}

// ScriptResult aggregates a script run: every executed step in order, the
// ok/failed/skipped accounting, and the batch's total wall time.
type ScriptResult struct {
	Steps []StepResult `json:"steps"`
	OK    int          `json:"ok"`
	// Failed counts failed steps (at most 1 without @continue); Skipped
	// counts steps never executed after a stop-on-error failure.
	Failed    int   `json:"failed"`
	Skipped   int   `json:"skipped"`
	ElapsedNS int64 `json:"elapsed_ns"`
	// Echo and Time carry the script's presentation directives out to
	// front-ends rendering the result.
	Echo bool `json:"echo,omitempty"`
	Time bool `json:"time,omitempty"`
}

// Err returns nil if every executed step succeeded, or an error naming the
// first failed step (1-based, with its source line and command).
func (sr *ScriptResult) Err() error {
	for _, st := range sr.Steps {
		if st.Error != "" {
			return fmt.Errorf("step %d (line %d) %q: %s", st.Index+1, st.LineNo, st.Cmd, st.Error)
		}
	}
	return nil
}

// EvalScript executes a parsed script against the engine's workspace, one
// step at a time in order. Execution stops at the first failing step unless
// the script declared @continue; the failure itself is recorded per step
// (and summarized by ScriptResult.Err), never returned — the batch result
// always describes exactly what ran. The engine adds no locking, so a host
// wanting batch atomicity wraps the whole call in one lock acquisition,
// choosing shared vs exclusive via Script.ReadOnly — that single
// acquisition, against one per step, is the point of batching.
func (e *Engine) EvalScript(s *Script) *ScriptResult {
	sr := &ScriptResult{Echo: s.Echo, Time: s.Time}
	start := time.Now()
	for i, st := range s.Steps {
		stepStart := time.Now()
		res, err := e.Eval(st.Cmd)
		step := StepResult{
			Index:     i,
			LineNo:    st.LineNo,
			Cmd:       st.Cmd,
			ElapsedNS: time.Since(stepStart).Nanoseconds(),
		}
		if err != nil {
			step.Error = err.Error()
			sr.Failed++
		} else {
			step.Result = res
			sr.OK++
		}
		sr.Steps = append(sr.Steps, step)
		if err != nil && !s.Continue {
			sr.Skipped = len(s.Steps) - i - 1
			break
		}
	}
	sr.ElapsedNS = time.Since(start).Nanoseconds()
	return sr
}

// maxSourceDepth bounds source-within-source nesting so a script that
// sources itself fails instead of recursing forever.
const maxSourceDepth = 8

// cmdSource runs a script file through EvalScript and reports one row per
// executed step. Per-step wall times stay off the Result (they are not part
// of result identity across front-ends); batch front-ends that want them
// use EvalScript or the server's /script endpoint directly.
func (e *Engine) cmdSource(r *Result, args []string) error {
	if err := need(args, 1, "source <file>"); err != nil {
		return err
	}
	if e.sourceDepth >= maxSourceDepth {
		return fmt.Errorf("source nesting deeper than %d (does the script source itself?)", maxSourceDepth)
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	s, err := ParseScript(string(data))
	if err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	e.sourceDepth++
	// Decrement under defer: a panicking step unwinds past this frame (the
	// server recovers it and keeps the session alive), and the counter must
	// not stay elevated for the engine's lifetime.
	defer func() { e.sourceDepth-- }()
	sr := e.EvalScript(s)
	r.Columns = []string{"step", "line", "status", "result"}
	for _, st := range sr.Steps {
		status, msg := "ok", stepMessage(st.Result)
		if st.Error != "" {
			status, msg = "error", st.Error
		}
		r.Rows = append(r.Rows, []string{
			fmt.Sprintf("%d", st.Index+1),
			fmt.Sprintf("%d", st.LineNo),
			status,
			st.Cmd + " -> " + msg,
		})
	}
	// Stop-on-error scripts surface the failure as the command's error,
	// naming the step (ringo -script turns this into a non-zero exit). An
	// @continue script ran to completion by design, so its failures are
	// reported in the rows — the error rows — and the summary, not by
	// discarding the result.
	if err := sr.Err(); err != nil && !s.Continue {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	if sr.Failed > 0 {
		r.Message = fmt.Sprintf("%s: %d steps ok, %d failed", args[0], sr.OK, sr.Failed)
	} else {
		r.Message = fmt.Sprintf("%s: %d steps ok", args[0], sr.OK)
	}
	return nil
}

// stepMessage summarizes a step's Result for the source listing: the
// message when the verb produced one, otherwise the binding or row count.
func stepMessage(res *Result) string {
	switch {
	case res == nil:
		return ""
	case res.Message != "":
		return res.Message
	case len(res.Rows) > 0:
		return fmt.Sprintf("%d rows", len(res.Rows))
	case res.Bound != "":
		return fmt.Sprintf("bound %s (%s)", res.Bound, res.Kind)
	default:
		return "ok"
	}
}
