package repl

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseScript(t *testing.T) {
	src := `
# build a graph
@echo
@time

gen rmat E 8 100 1
tograph G E src dst   # not a comment: comments are whole lines

algo G wcc
quit
pagerank PR G
`
	s, err := ParseScript(src)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Echo || !s.Time || s.Continue {
		t.Errorf("directives: echo=%v time=%v continue=%v", s.Echo, s.Time, s.Continue)
	}
	// quit ends the script: pagerank after it must not be a step.
	want := []string{
		"gen rmat E 8 100 1",
		"tograph G E src dst   # not a comment: comments are whole lines",
		"algo G wcc",
	}
	if len(s.Steps) != len(want) {
		t.Fatalf("got %d steps, want %d: %+v", len(s.Steps), len(want), s.Steps)
	}
	for i, cmd := range want {
		if s.Steps[i].Cmd != cmd {
			t.Errorf("step %d: got %q, want %q", i, s.Steps[i].Cmd, cmd)
		}
	}
	// Line numbers point into the original text (1-based).
	if s.Steps[0].LineNo != 6 || s.Steps[2].LineNo != 9 {
		t.Errorf("line numbers: %+v", s.Steps)
	}
}

func TestParseScriptErrors(t *testing.T) {
	if _, err := ParseScript("ls\n@loop\n"); err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Errorf("unknown directive: got %v", err)
	}
	if _, err := ParseScript("@echo on\n"); err == nil || !strings.Contains(err.Error(), "no arguments") {
		t.Errorf("directive with argument: got %v", err)
	}
	// Empty scripts parse fine; they just have no steps.
	s, err := ParseScript("# nothing\n\n")
	if err != nil || len(s.Steps) != 0 {
		t.Errorf("empty script: %v, %+v", err, s)
	}
}

func TestScriptClassification(t *testing.T) {
	ro, _ := ParseScript("ls\nalgo G wcc\ntop PR")
	if !ro.ReadOnly() || ro.TouchesFiles() != -1 || ro.ReplacesWorkspace() {
		t.Error("read-only script misclassified")
	}
	mut, _ := ParseScript("ls\ngen rmat E 8 100 1")
	if mut.ReadOnly() {
		t.Error("mutating script classified read-only")
	}
	files, _ := ParseScript("gen rmat E 8 100 1\nsave E /tmp/x\nloadgraph G /tmp/y")
	if got := files.TouchesFiles(); got != 1 {
		t.Errorf("TouchesFiles: got step %d, want 1", got)
	}
	repl, _ := ParseScript("ls\nrestore /tmp/x")
	if !repl.ReplacesWorkspace() {
		t.Error("restore script not classified workspace-replacing")
	}
}

func TestEvalScript(t *testing.T) {
	e := New(nil)
	s, err := ParseScript("gen rmat E 8 100 1\ntograph G E src dst\nalgo G wcc\nls")
	if err != nil {
		t.Fatal(err)
	}
	sr := e.EvalScript(s)
	if sr.OK != 4 || sr.Failed != 0 || sr.Skipped != 0 {
		t.Fatalf("accounting: %+v", sr)
	}
	if err := sr.Err(); err != nil {
		t.Fatal(err)
	}
	for i, st := range sr.Steps {
		if st.Result == nil {
			t.Errorf("step %d: no result", i)
		}
		if st.ElapsedNS <= 0 {
			t.Errorf("step %d: no timing", i)
		}
	}
	if sr.ElapsedNS <= 0 {
		t.Error("no aggregate timing")
	}
	if _, err := e.Workspace().Graph("G"); err != nil {
		t.Errorf("script did not build G: %v", err)
	}
}

func TestEvalScriptStopsOnError(t *testing.T) {
	e := New(nil)
	s, _ := ParseScript("gen rmat E 8 100 1\nshow NOPE\nls\nls")
	sr := e.EvalScript(s)
	if sr.OK != 1 || sr.Failed != 1 || sr.Skipped != 2 {
		t.Fatalf("accounting: ok=%d failed=%d skipped=%d", sr.OK, sr.Failed, sr.Skipped)
	}
	err := sr.Err()
	if err == nil {
		t.Fatal("want error")
	}
	// The error names the 1-based step and its source line.
	if !strings.Contains(err.Error(), "step 2 (line 2)") {
		t.Errorf("error does not name the step: %v", err)
	}
}

func TestEvalScriptContinue(t *testing.T) {
	e := New(nil)
	s, _ := ParseScript("@continue\nshow NOPE\ngen rmat E 8 100 1\nshow ALSONOPE\nls")
	sr := e.EvalScript(s)
	if sr.OK != 2 || sr.Failed != 2 || sr.Skipped != 0 {
		t.Fatalf("accounting: ok=%d failed=%d skipped=%d", sr.OK, sr.Failed, sr.Skipped)
	}
	if err := sr.Err(); err == nil || !strings.Contains(err.Error(), "step 1") {
		t.Errorf("Err should still report the first failure: %v", err)
	}
}

func TestSourceVerb(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "analysis.rng")
	script := "# demo\ngen rmat E 8 100 1\ntograph G E src dst\nalgo G triangles\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(nil)
	r, err := e.Eval("source " + path)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows: %+v", r.Rows)
	}
	if r.Rows[0][2] != "ok" || !strings.Contains(r.Rows[0][3], "E: 100 rows") {
		t.Errorf("row 0: %+v", r.Rows[0])
	}
	if !strings.Contains(r.Message, "3 steps ok") {
		t.Errorf("message: %q", r.Message)
	}
	if _, err := e.Workspace().Graph("G"); err != nil {
		t.Errorf("source did not build G: %v", err)
	}

	// A failing step surfaces as an Eval error naming the step, after the
	// earlier steps have taken effect.
	bad := filepath.Join(dir, "bad.rng")
	if err := os.WriteFile(bad, []byte("gen rmat E2 8 100 1\nshow NOPE\nls\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Eval("source " + bad); err == nil || !strings.Contains(err.Error(), "step 2 (line 2)") {
		t.Errorf("source of failing script: %v", err)
	}
	if _, ok := e.Workspace().Get("E2"); !ok {
		t.Error("steps before the failure should have executed")
	}
}

// TestSourceVerbContinue: an @continue script ran to completion by
// design, so source reports its failures in the rows (status "error") and
// the summary instead of discarding the result with an error return.
func TestSourceVerbContinue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cont.rng")
	script := "@continue\nshow NOPE\ngen rmat E 8 100 1\nls\n"
	if err := os.WriteFile(path, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(nil)
	r, err := e.Eval("source " + path)
	if err != nil {
		t.Fatalf("@continue script must not error the command: %v", err)
	}
	if len(r.Rows) != 3 || r.Rows[0][2] != "error" || r.Rows[1][2] != "ok" {
		t.Fatalf("rows: %+v", r.Rows)
	}
	if !strings.Contains(r.Message, "2 steps ok, 1 failed") {
		t.Errorf("message: %q", r.Message)
	}
}

func TestSourceNestingBounded(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "self.rng")
	if err := os.WriteFile(path, []byte("source "+path+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	e := New(nil)
	_, err := e.Eval("source " + path)
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("self-sourcing script: %v", err)
	}
	if e.sourceDepth != 0 {
		t.Errorf("sourceDepth not restored: %d", e.sourceDepth)
	}
}

func TestRenderScript(t *testing.T) {
	e := New(nil)
	s, _ := ParseScript("@echo\n@time\ngen rmat E 8 100 1\nshow NOPE\nls")
	sr := e.EvalScript(s)
	var b strings.Builder
	RenderScript(&b, sr)
	out := b.String()
	for _, want := range []string{
		"ringo> gen rmat E 8 100 1",
		"E: 100 rows",
		"# step 1:",
		"error: ",
		"1 step(s) skipped after failure",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestSourceVerbProperties pins source's verb-table classification: a
// script may mutate, touch files and restore, so hosts must assume all
// three.
func TestSourceVerbProperties(t *testing.T) {
	if ReadOnly("source f.rng") {
		t.Error("source must not be read-only")
	}
	if !TouchesFiles("source f.rng") {
		t.Error("source must be file-gated")
	}
	if !ReplacesWorkspace("source f.rng") {
		t.Error("source must be treated as workspace-replacing")
	}
}
