package server

import (
	"fmt"
	"sort"

	"ringo/internal/obs"
	"sync"
	"time"

	"ringo/internal/repl"
)

// Job states: a job moves queued -> running -> done | failed.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// JobView is the externally visible snapshot of an async job. Exactly one
// of Result (single-command jobs) and ScriptResult (script jobs) is set
// once the job finishes; for script jobs Cmd is a synthesized
// "script (N steps)" label so job listings stay light.
type JobView struct {
	ID           string             `json:"id"`
	Session      string             `json:"session"`
	Cmd          string             `json:"cmd"`
	State        string             `json:"state"`
	Result       *repl.Result       `json:"result,omitempty"`
	ScriptResult *repl.ScriptResult `json:"script_result,omitempty"`
	Error        string             `json:"error,omitempty"`
	Created      time.Time          `json:"created"`
	Started      *time.Time         `json:"started,omitempty"`
	Finished     *time.Time         `json:"finished,omitempty"`
}

type job struct {
	mu      sync.Mutex
	id      string
	seq     int
	sess    *session
	session string
	cmd     string
	// script marks a batch job; the worker routes it through
	// evalScriptOn instead of evalOn and fills scriptResult.
	script       *repl.Script
	state        string
	result       *repl.Result
	scriptResult *repl.ScriptResult
	err          string
	created      time.Time
	started      time.Time
	finished     time.Time
}

func (j *job) snapshot() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID: j.id, Session: j.session, Cmd: j.cmd, State: j.state,
		Result: j.result, ScriptResult: j.scriptResult, Error: j.err, Created: j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// jobRunner owns the job registry and the worker pool that drains the
// queue. Workers execute jobs through Server.evalOn against the session
// instance captured at submit time, so a job takes the same per-session
// lock as a synchronous query: a long-running mutation serializes with
// other commands on its session but never blocks an HTTP connection or
// another session.
type jobRunner struct {
	srv     *Server
	queue   chan *job
	mu      sync.Mutex
	jobs    map[string]*job
	order   []string // job ids oldest-first, for retention pruning
	retain  int      // terminal-job retention cap (tests shrink it)
	nextID  int
	closed  bool
	drained sync.WaitGroup

	// Lifecycle metrics, registered on the server's obs registry. The
	// gauges track current queue/run occupancy; the counters are
	// cumulative over the server's lifetime, which is what fixes the
	// historical /stats undercount: the old counts() walked the retained
	// job registry, so once pruning kicked in, terminal jobs — notably
	// failed script jobs whose partial batches kept them worth retaining
	// — silently vanished from every aggregate.
	queued    *obs.Gauge
	running   *obs.Gauge
	done      *obs.Counter
	failed    *obs.Counter
	submitted *obs.Counter
}

// maxRetainedJobs bounds the job registry: once exceeded, the oldest
// terminal (done/failed) jobs are forgotten so a long-lived server does
// not accumulate job history without bound.
const maxRetainedJobs = 1024

func newJobRunner(srv *Server, workers int) *jobRunner {
	reg := srv.reg
	r := &jobRunner{
		srv:       srv,
		queue:     make(chan *job, jobQueueDepth),
		jobs:      make(map[string]*job),
		retain:    maxRetainedJobs,
		queued:    reg.Gauge(metricJobsQueued, "Jobs waiting for a worker."),
		running:   reg.Gauge(metricJobsRunning, "Jobs currently executing."),
		done:      reg.Counter(metricJobsDone, "Jobs completed successfully since startup."),
		failed:    reg.Counter(metricJobsFailed, "Jobs failed since startup (including partial script batches)."),
		submitted: reg.Counter(metricJobsSubmitted, "Jobs accepted since startup."),
	}
	r.drained.Add(workers)
	for i := 0; i < workers; i++ {
		go r.work()
	}
	return r
}

// submit enqueues a job: a single command when script is nil, a batch
// otherwise (cmd then carries the display label).
func (r *jobRunner) submit(sess *session, cmd string, script *repl.Script) (*job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, fmt.Errorf("server closed")
	}
	r.nextID++
	j := &job{
		id:      fmt.Sprintf("j%d", r.nextID),
		seq:     r.nextID,
		sess:    sess,
		session: sess.id,
		cmd:     cmd,
		script:  script,
		state:   JobQueued,
		created: time.Now(),
	}
	// The non-blocking send happens under r.mu: close() flips r.closed
	// under the same lock before closing the channel, so this send can
	// never race with the close and panic.
	select {
	case r.queue <- j:
	default:
		return nil, fmt.Errorf("job queue full (%d pending)", jobQueueDepth)
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.submitted.Inc()
	r.queued.Inc()
	if log := r.srv.logger; log != nil {
		log.Info("job queued", "id", j.id, "session", j.session, "cmd", j.cmd)
	}
	r.pruneLocked()
	return j, nil
}

// pruneLocked forgets the oldest terminal jobs beyond the retention cap.
// Queued and running jobs are never pruned. Pruning only affects the
// GET /jobs listing — the lifecycle counters are cumulative, so pruned
// jobs still count in every aggregate. Caller holds r.mu.
func (r *jobRunner) pruneLocked() {
	for len(r.jobs) > r.retain {
		pruned := false
		for i, id := range r.order {
			j := r.jobs[id]
			j.mu.Lock()
			terminal := j.state == JobDone || j.state == JobFailed
			j.mu.Unlock()
			if terminal {
				delete(r.jobs, id)
				r.order = append(r.order[:i], r.order[i+1:]...)
				pruned = true
				break
			}
		}
		if !pruned {
			return
		}
	}
}

func (r *jobRunner) get(id string) (*job, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	return j, ok
}

func (r *jobRunner) list(session string) []JobView {
	r.mu.Lock()
	jobs := make([]*job, 0, len(r.jobs))
	for _, j := range r.jobs {
		jobs = append(jobs, j)
	}
	r.mu.Unlock()
	sort.Slice(jobs, func(i, k int) bool { return jobs[i].seq < jobs[k].seq })
	views := make([]JobView, 0, len(jobs))
	for _, j := range jobs {
		v := j.snapshot()
		if session == "" || v.Session == session {
			views = append(views, v)
		}
	}
	return views
}

// counts reports job-state occupancy from the lifecycle metrics: queued
// and running are current, done and failed are cumulative since startup —
// so jobs pruned from the retention window (which GET /jobs no longer
// lists) still show up in the totals.
func (r *jobRunner) counts() map[string]int {
	return map[string]int{
		JobQueued:  int(r.queued.Value()),
		JobRunning: int(r.running.Value()),
		JobDone:    int(r.done.Value()),
		JobFailed:  int(r.failed.Value()),
	}
}

func (r *jobRunner) isClosed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.closed
}

func (r *jobRunner) work() {
	defer r.drained.Done()
	for j := range r.queue {
		// During shutdown the remaining queue is failed, not run: an
		// operator stopping the server must not wait out a backlog of
		// multi-minute analytics.
		if r.isClosed() {
			j.mu.Lock()
			if j.state == JobQueued {
				j.state = JobFailed
				j.err = "server closed before job ran"
				j.finished = time.Now()
				r.queued.Dec()
				r.failed.Inc()
			}
			j.mu.Unlock()
			continue
		}
		j.mu.Lock()
		if j.state != JobQueued {
			j.mu.Unlock()
			continue
		}
		j.state = JobRunning
		j.started = time.Now()
		r.queued.Dec()
		r.running.Inc()
		j.mu.Unlock()

		// Run against the session instance captured at submit time — if
		// the session was dropped (even if a same-named one now exists),
		// the job fails rather than touching the newcomer's workspace.
		var res *repl.Result
		var scriptRes *repl.ScriptResult
		var err error
		if cur, ok := r.srv.session(j.session); !ok || cur != j.sess {
			err = fmt.Errorf("session %q was dropped before the job ran", j.session)
		} else if j.script != nil {
			scriptRes, err = r.srv.evalScriptOn(j.sess, j.script)
			// A failed step fails the job, but the partial batch result
			// stays attached: the poller sees which steps ran and why
			// execution stopped.
			if err == nil {
				err = scriptRes.Err()
			}
		} else {
			res, err = r.srv.evalOn(j.sess, j.cmd)
		}

		j.mu.Lock()
		j.finished = time.Now()
		j.scriptResult = scriptRes
		r.running.Dec()
		if err != nil {
			j.state = JobFailed
			j.err = err.Error()
			r.failed.Inc()
		} else {
			j.state = JobDone
			j.result = res
		}
		state, errMsg := j.state, j.err
		elapsed := j.finished.Sub(j.started)
		j.mu.Unlock()
		if state == JobDone {
			r.done.Inc()
		}
		if log := r.srv.logger; log != nil {
			attrs := []any{"id", j.id, "session", j.session, "cmd", j.cmd, "state", state, "elapsed", elapsed}
			if errMsg != "" {
				attrs = append(attrs, "error", errMsg)
			}
			log.Info("job finished", attrs...)
		}
	}
}

// close stops accepting jobs, lets in-flight jobs finish, and fails the
// queued backlog without running it.
func (r *jobRunner) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	close(r.queue)
	r.drained.Wait()
}
