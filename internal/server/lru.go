package server

import (
	"container/list"
	"strings"
	"sync"

	"ringo/internal/repl"
)

// LRU is a bounded, concurrency-safe result cache with hit/miss counters.
// Keys are (object fingerprint, command) strings built by the repl engine,
// prefixed per session by sessionCache, so one cache budget is shared
// across every session on the server while entries never collide.
type LRU struct {
	mu     sync.Mutex
	max    int
	ll     *list.List
	items  map[string]*list.Element
	hits   uint64
	misses uint64
}

type lruEntry struct {
	key string
	val repl.CachedResult
}

// NewLRU returns a cache holding at most max entries (max < 1 is treated
// as 1).
func NewLRU(max int) *LRU {
	if max < 1 {
		max = 1
	}
	return &LRU{max: max, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the cached value for key, marking it most recently used.
func (c *LRU) Get(key string) (repl.CachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		return el.Value.(*lruEntry).val, true
	}
	c.misses++
	return repl.CachedResult{}, false
}

// Put inserts or refreshes key, evicting the least recently used entry when
// the cache is full.
func (c *LRU) Put(key string, v repl.CachedResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v})
	for c.ll.Len() > c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
	}
}

// DeletePrefix drops every entry whose key starts with prefix — used to
// purge a dropped session's entries so they stop consuming shared budget.
func (c *LRU) DeletePrefix(prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if strings.HasPrefix(key, prefix) {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// Stats returns cumulative hits, misses and the current entry count.
func (c *LRU) Stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.ll.Len()
}

// sessionCache namespaces a shared LRU per session instance so
// fingerprints from different workspaces cannot collide. Puts are dropped
// once the session is, so an in-flight evaluation racing DropSession's
// purge cannot park a dead entry in the shared budget.
type sessionCache struct {
	sess *session
	lru  *LRU
}

func (s sessionCache) Get(key string) (repl.CachedResult, bool) {
	return s.lru.Get(s.sess.cachePrefix + key)
}

func (s sessionCache) Put(key string, v repl.CachedResult) {
	if s.sess.dropped.Load() {
		return
	}
	s.lru.Put(s.sess.cachePrefix+key, v)
}
