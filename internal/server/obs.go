package server

import (
	"fmt"
	"net/http"
	"runtime"
	"time"

	"ringo/internal/algo"
	"ringo/internal/obs"
	"ringo/internal/table"
)

// Metric families the HTTP layer records. Per-verb engine metrics
// (ringo_verb_*) land in the same registry through each session engine's
// Telemetry wiring, and per-algorithm timings (ringo_algo_*) through the
// algo timer hook, so GET /metrics is the one place the whole stack
// reports.
const (
	metricHTTPRequests = "ringo_http_requests_total"
	metricHTTPInFlight = "ringo_http_in_flight_requests"
	metricHTTPDuration = "ringo_http_request_duration_seconds"
	metricAlgoDuration = "ringo_algo_duration_seconds"

	metricSessions = "ringo_sessions"
	metricUptime   = "ringo_uptime_seconds"

	metricJobsQueued    = "ringo_jobs_queued"
	metricJobsRunning   = "ringo_jobs_running"
	metricJobsDone      = "ringo_jobs_done_total"
	metricJobsFailed    = "ringo_jobs_failed_total"
	metricJobsSubmitted = "ringo_jobs_submitted_total"

	metricResultCacheHits    = "ringo_result_cache_hits_total"
	metricResultCacheMisses  = "ringo_result_cache_misses_total"
	metricResultCacheEntries = "ringo_result_cache_entries"
	metricViewCacheHits      = "ringo_view_cache_hits_total"
	metricViewCacheMisses    = "ringo_view_cache_misses_total"
	metricViewCacheEntries   = "ringo_view_cache_entries"
	metricViewCacheBytes     = "ringo_view_cache_bytes"
	metricViewPatches        = "ringo_view_patches_total"
	metricViewRebuilds       = "ringo_view_rebuilds_total"
	metricDeltaEdges         = "ringo_delta_edges"

	metricIndexCacheHits    = "ringo_index_cache_hits_total"
	metricIndexCacheMisses  = "ringo_index_cache_misses_total"
	metricIndexCacheEntries = "ringo_index_cache_entries"
	metricIndexCacheBytes   = "ringo_index_cache_bytes"
	metricTableFilterRows   = "ringo_table_filter_rows_total"

	metricMappedBytes      = "ringo_mapped_bytes"
	metricExtBlocksScanned = "ringo_extmem_blocks_scanned_total"
	metricExtBlocksSkipped = "ringo_extmem_blocks_skipped_total"

	metricGoroutines  = "ringo_goroutines"
	metricHeapAlloc   = "ringo_heap_alloc_bytes"
	metricGCPauseTot  = "ringo_gc_pause_seconds_total"
	metricGCCyclesTot = "ringo_gc_cycles_total"
)

// initObs registers the server's gauge/counter funcs over the sources
// that already count internally — the result-cache LRU, the per-session
// view caches, the session table, the Go runtime — so GET /stats,
// GET /metrics and the shell's stats verb all read the same figures, and
// wires the algo package's per-algorithm timers into the registry. Called
// once from New, before any request is served.
func (s *Server) initObs() {
	reg := s.reg
	s.inFlight = reg.Gauge(metricHTTPInFlight, "HTTP requests currently being served.")

	reg.GaugeFunc(metricSessions, "Live sessions.", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.sessions))
	})
	reg.GaugeFunc(metricUptime, "Seconds since the server was constructed.", func() float64 {
		return time.Since(s.started).Seconds()
	})

	// Result cache (CacheStats is nil-safe: zeros when caching is off).
	reg.CounterFunc(metricResultCacheHits, "Result cache hits.", func() float64 {
		h, _, _ := s.CacheStats()
		return float64(h)
	})
	reg.CounterFunc(metricResultCacheMisses, "Result cache misses.", func() float64 {
		_, m, _ := s.CacheStats()
		return float64(m)
	})
	reg.GaugeFunc(metricResultCacheEntries, "Result cache entries resident.", func() float64 {
		_, _, n := s.CacheStats()
		return float64(n)
	})

	// CSR view caches, aggregated across every live session.
	reg.CounterFunc(metricViewCacheHits, "CSR view cache hits across sessions.", func() float64 {
		h, _, _, _ := s.ViewCacheStats()
		return float64(h)
	})
	reg.CounterFunc(metricViewCacheMisses, "CSR view cache misses across sessions.", func() float64 {
		_, m, _, _ := s.ViewCacheStats()
		return float64(m)
	})
	reg.GaugeFunc(metricViewCacheEntries, "CSR views resident across sessions.", func() float64 {
		_, _, n, _ := s.ViewCacheStats()
		return float64(n)
	})
	reg.GaugeFunc(metricViewCacheBytes, "Estimated bytes held by resident CSR views.", func() float64 {
		_, _, _, b := s.ViewCacheStats()
		return float64(b)
	})

	// The incremental tier: on a view-cache miss over a mutated graph, the
	// workspace either patches the nearest resident base view forward or
	// rebuilds from scratch; the ratio of these two counters is the
	// delta-maintenance win, and the gauge is the delta-log volume stale
	// cached views can still patch forward across.
	reg.CounterFunc(metricViewPatches, "CSR view materializations served by patching a cached base.", func() float64 {
		p, _ := s.PatchStats()
		return float64(p)
	})
	reg.CounterFunc(metricViewRebuilds, "CSR view materializations served by a full rebuild.", func() float64 {
		_, r := s.PatchStats()
		return float64(r)
	})
	reg.GaugeFunc(metricDeltaEdges, "Graph mutation deltas retained in binding logs as patch material for stale cached views.", func() float64 {
		return float64(s.DeltaEdges())
	})

	// Equality-index caches, aggregated the same way, plus the process-wide
	// count of rows produced by table filters — the denominator that makes
	// the index hit rate meaningful.
	reg.CounterFunc(metricIndexCacheHits, "Equality-index cache hits across sessions.", func() float64 {
		h, _, _, _ := s.IndexCacheStats()
		return float64(h)
	})
	reg.CounterFunc(metricIndexCacheMisses, "Equality-index cache misses across sessions.", func() float64 {
		_, m, _, _ := s.IndexCacheStats()
		return float64(m)
	})
	reg.GaugeFunc(metricIndexCacheEntries, "Equality indexes resident across sessions.", func() float64 {
		_, _, n, _ := s.IndexCacheStats()
		return float64(n)
	})
	reg.GaugeFunc(metricIndexCacheBytes, "Estimated bytes held by resident equality indexes.", func() float64 {
		_, _, _, b := s.IndexCacheStats()
		return float64(b)
	})
	reg.CounterFunc(metricTableFilterRows, "Rows scanned by table filters, process-wide.", func() float64 {
		return float64(table.FilterRowsTotal())
	})

	// The beyond-RAM tier: bytes of mapped RNGM graph images across
	// sessions (served through the page cache, not the heap), and the
	// semi-external scheduler's block totals — skipped/scanned is the
	// selective-scheduling win the mapped algorithms claim.
	reg.GaugeFunc(metricMappedBytes, "File-backed bytes of mapped RNGM graphs across sessions.", func() float64 {
		return float64(s.MappedBytes())
	})
	reg.CounterFunc(metricExtBlocksScanned, "Vertex blocks scanned by semi-external algorithms.", func() float64 {
		scanned, _ := algo.ExtBlockStats()
		return float64(scanned)
	})
	reg.CounterFunc(metricExtBlocksSkipped, "Vertex blocks skipped by semi-external algorithms.", func() float64 {
		_, skipped := algo.ExtBlockStats()
		return float64(skipped)
	})

	// Runtime gauges: cheap enough to read per scrape, and the figures the
	// ROADMAP's replica health checks will watch first.
	reg.GaugeFunc(metricGoroutines, "Current goroutine count.", func() float64 {
		return float64(runtime.NumGoroutine())
	})
	reg.GaugeFunc(metricHeapAlloc, "Bytes of allocated heap objects.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.HeapAlloc)
	})
	reg.CounterFunc(metricGCPauseTot, "Cumulative GC stop-the-world pause seconds.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.PauseTotalNs) / 1e9
	})
	reg.CounterFunc(metricGCCyclesTot, "Completed GC cycles.", func() float64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return float64(ms.NumGC)
	})

	// Per-algorithm wall time from the hot View entry points. The hook is
	// process-global; constructing a server points it at this registry.
	algo.SetTimer(func(name string, elapsed time.Duration) {
		reg.Histogram(metricAlgoDuration, "Algorithm kernel wall time in seconds, by algorithm.",
			obs.L("algo", name)).Observe(elapsed)
	})
}

// statusRecorder captures the response status for the request metrics and
// log; Go's ResponseWriter offers no way to read it back.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// observeRequest records one completed request: per-route/status-class
// counters, the per-route latency histogram, and (when a logger is
// configured) one structured request record keyed by the request id the
// response carried in X-Request-ID.
func (s *Server) observeRequest(r *http.Request, sw *statusRecorder, reqID string, elapsed time.Duration) {
	// r.Pattern is the mux pattern the request matched ("POST
	// /sessions/{id}/query"), empty for 404s and auth rejections — both
	// fold into one bounded label instead of minting a series per bad URL.
	route := r.Pattern
	if route == "" {
		route = "unmatched"
	}
	class := fmt.Sprintf("%dxx", sw.status/100)
	s.reg.Counter(metricHTTPRequests, "Completed HTTP requests, by route and status class.",
		obs.L("route", route), obs.L("class", class)).Inc()
	s.reg.Histogram(metricHTTPDuration, "HTTP request latency in seconds, by route.",
		obs.L("route", route)).Observe(elapsed)
	if s.logger != nil {
		s.logger.Info("http request",
			"id", reqID,
			"method", r.Method,
			"path", r.URL.Path,
			"route", route,
			"status", sw.status,
			"elapsed", elapsed,
			"remote", r.RemoteAddr,
		)
	}
}

// handleMetrics serves the registry in Prometheus text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}
