package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"log/slog"

	"ringo/internal/repl"
)

// postCmd is a test helper: run one command in a session over HTTP.
func postCmd(t *testing.T, ts *httptest.Server, session, cmd string) {
	t.Helper()
	body := fmt.Sprintf(`{"cmd":%q}`, cmd)
	resp, err := ts.Client().Post(ts.URL+"/sessions/"+session+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("%s -> %d: %s", cmd, resp.StatusCode, b)
	}
}

// TestMetricsEndpoint drives real traffic through a server and asserts
// GET /metrics returns well-formed Prometheus text exposition carrying
// every family the acceptance criteria name: per-route HTTP histograms,
// per-verb repl histograms, cache hit/miss counters, job gauges, and
// runtime gauges.
func TestMetricsEndpoint(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := srv.CreateSession("m"); err != nil {
		t.Fatal(err)
	}
	postCmd(t, ts, "m", "gen rmat E 8 500 7")
	postCmd(t, ts, "m", "tograph G E src dst")
	postCmd(t, ts, "m", "pagerank PR G")
	postCmd(t, ts, "m", "pagerank PR G") // result-cache hit
	postCmd(t, ts, "m", "algo G wcc")    // exercises an algo kernel timer

	// One async job, completed, so the job counters move.
	resp, err := ts.Client().Post(ts.URL+"/sessions/m/jobs", "application/json", strings.NewReader(`{"cmd":"algo G triangles"}`))
	if err != nil {
		t.Fatal(err)
	}
	var job JobView
	if err := json.NewDecoder(resp.Body).Decode(&job); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitJob(t, ts, job.ID)

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	if id := resp.Header.Get("X-Request-ID"); id == "" {
		t.Error("no X-Request-ID header")
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	checkExposition(t, out)

	for _, want := range []string{
		`ringo_http_requests_total{class="2xx",route="POST /sessions/{id}/query"}`,
		`ringo_http_request_duration_seconds_count{route="POST /sessions/{id}/query"} 5`,
		"ringo_http_in_flight_requests 1", // the /metrics scrape itself
		`ringo_verb_duration_seconds_count{verb="pagerank"} 2`,
		`ringo_verb_calls_total{verb="tograph"} 1`,
		`ringo_algo_duration_seconds_count{algo="wcc"}`,
		`ringo_algo_duration_seconds_count{algo="triangles"}`,
		"ringo_result_cache_hits_total 1",
		"ringo_result_cache_misses_total",
		"ringo_view_cache_hits_total",
		"ringo_jobs_done_total 1",
		"ringo_jobs_failed_total 0",
		"ringo_jobs_queued 0",
		"ringo_jobs_submitted_total 1",
		"ringo_sessions 1",
		"ringo_goroutines",
		"ringo_heap_alloc_bytes",
		"ringo_gc_pause_seconds_total",
		"ringo_uptime_seconds",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestIncrementalMetrics drives the mutation verbs through a session and
// asserts the incremental tier's counters move and are exposed on both
// GET /metrics and GET /stats: a warm view mutated by a small batch is
// patched (not rebuilt) on requery, and the pending delta gauge tracks
// the unfolded mutation backlog.
func TestIncrementalMetrics(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := srv.CreateSession("inc"); err != nil {
		t.Fatal(err)
	}
	postCmd(t, ts, "inc", "gen rmat E 8 500 7")
	postCmd(t, ts, "inc", "tograph G E src dst")
	postCmd(t, ts, "inc", "algo G wcc") // builds + caches the directed view
	postCmd(t, ts, "inc", "addedge G 9001 9002")
	postCmd(t, ts, "inc", "deledge G 9001 9002")
	postCmd(t, ts, "inc", "addnode G 9003")
	postCmd(t, ts, "inc", "algo G wcc") // patches the warm view forward

	p, r := srv.PatchStats()
	if p != 1 {
		t.Fatalf("PatchStats patches = %d, want 1 (rebuilds %d)", p, r)
	}
	if d := srv.DeltaEdges(); d != 3 {
		t.Fatalf("DeltaEdges = %d, want 3", d)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"ringo_view_patches_total 1",
		"ringo_view_rebuilds_total",
		"ringo_delta_edges 3",
	} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Views struct {
			Patches    uint64 `json:"patches"`
			Rebuilds   uint64 `json:"rebuilds"`
			DeltaEdges int    `json:"delta_edges"`
		} `json:"views"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Views.Patches != 1 || stats.Views.DeltaEdges != 3 {
		t.Fatalf("/stats views = %+v, want patches 1 and delta_edges 3", stats.Views)
	}
}

// checkExposition is a strict structural parse of Prometheus text format:
// every sample belongs to a family announced by a preceding # TYPE, no
// series line repeats, and histogram buckets are cumulative.
func checkExposition(t *testing.T, out string) {
	t.Helper()
	typed := map[string]bool{}
	helped := map[string]int{}
	seen := map[string]bool{}
	for n, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		lineNo := n + 1
		switch {
		case line == "":
			t.Fatalf("line %d: blank line", lineNo)
		case strings.HasPrefix(line, "# HELP "):
			name, _, _ := strings.Cut(strings.TrimPrefix(line, "# HELP "), " ")
			helped[name]++
			if helped[name] > 1 {
				t.Errorf("line %d: duplicate # HELP %s", lineNo, name)
			}
		case strings.HasPrefix(line, "# TYPE "):
			name, typ, _ := strings.Cut(strings.TrimPrefix(line, "# TYPE "), " ")
			if typed[name] {
				t.Errorf("line %d: duplicate # TYPE %s", lineNo, name)
			}
			if typ != "counter" && typ != "gauge" && typ != "histogram" {
				t.Errorf("line %d: bad type %q", lineNo, typ)
			}
			typed[name] = true
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unexpected comment %q", lineNo, line)
		default:
			var key, val string
			if i := strings.Index(line, "} "); strings.Contains(line, "{") && i >= 0 {
				key, val = line[:i+1], line[i+2:]
			} else if k, v, ok := strings.Cut(line, " "); ok {
				key, val = k, v
			} else {
				t.Fatalf("line %d: malformed sample %q", lineNo, line)
			}
			if seen[key] {
				t.Errorf("line %d: duplicate series %q", lineNo, key)
			}
			seen[key] = true
			name := key
			if i := strings.IndexByte(name, '{'); i >= 0 {
				name = name[:i]
			}
			base := name
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				base = strings.TrimSuffix(base, suf)
			}
			if !typed[name] && !typed[base] {
				t.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, line)
			}
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Errorf("line %d: unparseable value %q", lineNo, val)
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("exposition had no samples")
	}
}

func waitJob(t *testing.T, ts *httptest.Server, id string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := ts.Client().Get(ts.URL + "/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var v JobView
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if v.State == JobDone || v.State == JobFailed {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
}

// TestStatsReadsFromRegistry checks GET /stats keeps the pre-registry
// JSON keys byte-compatible, adds the new runtime figures, and agrees
// with the registry it reads from.
func TestStatsReadsFromRegistry(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := srv.CreateSession("s"); err != nil {
		t.Fatal(err)
	}
	postCmd(t, ts, "s", "gen rmat E 8 500 7")
	postCmd(t, ts, "s", "tograph G E src dst")
	postCmd(t, ts, "s", "pagerank PR G")
	postCmd(t, ts, "s", "pagerank PR G")

	resp, err := ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Sessions int            `json:"sessions"`
		Jobs     map[string]int `json:"jobs"`
		Cache    struct {
			Hits, Misses uint64
			Entries      int
		} `json:"cache"`
		Views struct {
			Hits, Misses uint64
			Entries      int
			Bytes        int64
		} `json:"views"`
		Uptime     float64 `json:"uptime_seconds"`
		Goroutines int     `json:"goroutines"`
		HeapBytes  uint64  `json:"heap_bytes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Sessions != 1 {
		t.Errorf("sessions = %d", stats.Sessions)
	}
	if stats.Cache.Hits != 1 || stats.Cache.Entries == 0 {
		t.Errorf("cache = %+v", stats.Cache)
	}
	if stats.Views.Misses == 0 {
		t.Errorf("views = %+v", stats.Views)
	}
	for _, k := range []string{JobQueued, JobRunning, JobDone, JobFailed} {
		if _, ok := stats.Jobs[k]; !ok {
			t.Errorf("jobs missing key %q", k)
		}
	}
	if stats.Goroutines == 0 || stats.HeapBytes == 0 || stats.Uptime < 0 {
		t.Errorf("runtime figures = %d goroutines, %d heap, %f uptime", stats.Goroutines, stats.HeapBytes, stats.Uptime)
	}
	// Same source of truth as /metrics.
	if hits, _ := srv.Metrics().Value(metricResultCacheHits); uint64(hits) != stats.Cache.Hits {
		t.Errorf("registry hits %v != /stats hits %d", hits, stats.Cache.Hits)
	}
}

// TestJobCountsSurvivePruning is the regression test for the lifecycle
// bugfix: terminal jobs pruned from the retention window — like failed
// script jobs that kept their partial batches — must still count in
// GET /stats aggregates.
func TestJobCountsSurvivePruning(t *testing.T) {
	srv := New(Config{Workers: 1})
	defer srv.Close()
	srv.jobs.retain = 2 // force pruning after a couple of jobs

	if _, err := srv.CreateSession("p"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	postCmd(t, ts, "p", "gen rmat E 8 500 7")
	postCmd(t, ts, "p", "tograph G E src dst")

	sess, _ := srv.session("p")
	const n = 6
	var failed, done int
	for i := 0; i < n; i++ {
		var body string
		if i%2 == 0 {
			// A script whose second step fails: the job fails but keeps
			// its partial batch — exactly the shape that used to vanish.
			body = "algo G wcc\nalgo G nonsense"
			script, err := repl.ParseScript(body)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := srv.jobs.submit(sess, "script (2 steps)", script); err != nil {
				t.Fatal(err)
			}
			failed++
		} else {
			if _, err := srv.jobs.submit(sess, "algo G triangles", nil); err != nil {
				t.Fatal(err)
			}
			done++
		}
	}
	drain := func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			c := srv.jobs.counts()
			if c[JobQueued] == 0 && c[JobRunning] == 0 {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatal("job queue never drained")
	}
	drain()
	// Pruning happens at submit time, so one more job after the batch is
	// terminal forces the registry down to the retention cap.
	if _, err := srv.jobs.submit(sess, "algo G triangles", nil); err != nil {
		t.Fatal(err)
	}
	done++
	drain()

	c := srv.jobs.counts()
	if c[JobDone] != done || c[JobFailed] != failed {
		t.Errorf("counts = %v, want done=%d failed=%d", c, done, failed)
	}
	// The retention window really did prune.
	if got := len(srv.jobs.list("")); got > 2+1 { // +1: a running job is never pruned mid-flight
		t.Errorf("retained %d jobs, want <= 3", got)
	}
	// A pruned failed script job is still visible in the cumulative
	// failed counter even though GET /jobs no longer lists it.
	if int(srv.jobs.failed.Value()) != failed {
		t.Errorf("failed counter = %d, want %d", srv.jobs.failed.Value(), failed)
	}
}

// TestRequestLogging checks the slog request records carry the request id
// the response exposed, and that slow queries emit their own record.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	srv := New(Config{Logger: logger, SlowQuery: time.Nanosecond})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if _, err := srv.CreateSession("lg"); err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/sessions/lg/query", "application/json", strings.NewReader(`{"cmd":"gen rmat E 8 200 7"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	reqID := resp.Header.Get("X-Request-ID")
	if reqID == "" {
		t.Fatal("no request id")
	}

	logs := buf.String()
	var sawRequest, sawSlow bool
	for _, line := range strings.Split(strings.TrimSpace(logs), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line not JSON: %q", line)
		}
		switch rec["msg"] {
		case "http request":
			if rec["id"] == reqID && rec["route"] == "POST /sessions/{id}/query" && rec["status"] == float64(200) {
				sawRequest = true
			}
		case "slow query":
			if rec["verb"] == "gen" && rec["session"] == "lg" {
				sawSlow = true
			}
		}
	}
	if !sawRequest {
		t.Errorf("no request record with id %s:\n%s", reqID, logs)
	}
	if !sawSlow {
		t.Errorf("no slow-query record:\n%s", logs)
	}
}
