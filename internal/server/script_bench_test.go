package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ringo/internal/repl"
)

// BenchmarkScriptVsPerQuery measures the tentpole claim behind the /script
// endpoint: an N-step analysis batched into one request (one HTTP round
// trip, one session-lock acquisition, one JSON envelope) against the same
// N steps as individual /query calls. The steps themselves are cheap
// (result-cached algo queries), so the measured difference is the
// per-operation overhead batching amortizes.
func BenchmarkScriptVsPerQuery(b *testing.B) {
	for _, n := range []int{10, 50} {
		steps := make([]string, n)
		for i := range steps {
			// Alternate so the batch exercises more than one cache entry.
			if i%2 == 0 {
				steps[i] = "algo G wcc"
			} else {
				steps[i] = "top PR 5"
			}
		}

		b.Run(fmt.Sprintf("PerQuery/steps=%d", n), func(b *testing.B) {
			ts, client := benchSession(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, cmd := range steps {
					benchPost(b, client, ts.URL+"/sessions/bench/query", map[string]string{"cmd": cmd})
				}
			}
		})

		b.Run(fmt.Sprintf("Script/steps=%d", n), func(b *testing.B) {
			ts, client := benchSession(b)
			script := strings.Join(steps, "\n")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				benchPost(b, client, ts.URL+"/sessions/bench/script", map[string]string{"script": script})
			}
		})
	}
}

// benchSession builds a server with a small ranked graph in session
// "bench", so every benchmark iteration runs read-only cached analytics.
func benchSession(b *testing.B) (*httptest.Server, *http.Client) {
	b.Helper()
	srv := New(Config{})
	ts := httptest.NewServer(srv)
	b.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	if _, err := srv.CreateSession("bench"); err != nil {
		b.Fatal(err)
	}
	setup, err := repl.ParseScript("gen rmat E 10 2000 7\ntograph G E src dst\npagerank PR G")
	if err != nil {
		b.Fatal(err)
	}
	sr, err := srv.EvalScript("bench", setup)
	if err != nil || sr.Err() != nil {
		b.Fatalf("setup: %v / %v", err, sr.Err())
	}
	return ts, ts.Client()
}

func benchPost(b *testing.B, client *http.Client, url string, body map[string]string) {
	b.Helper()
	payload, _ := json.Marshal(body)
	resp, err := client.Post(url, "application/json", bytes.NewReader(payload))
	if err != nil {
		b.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("POST %s: status %d", url, resp.StatusCode)
	}
}
