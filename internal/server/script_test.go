package server

import (
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ringo/internal/repl"
)

// postScript posts a script batch and decodes the ScriptResult; callers
// check the status for error cases themselves via doJSON.
func postScript(t *testing.T, base, session, script string) *repl.ScriptResult {
	t.Helper()
	var res repl.ScriptResult
	code := doJSON(t, "POST", base+"/sessions/"+session+"/script", map[string]string{"script": script}, &res)
	if code != http.StatusOK {
		t.Fatalf("script on %s: status %d", session, code)
	}
	return &res
}

func TestScriptEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)

	res := postScript(t, ts.URL, "s", `
# a whole analysis in one round trip
gen rmat E 8 300 6
tograph G E src dst
pagerank PR G
top PR 3
algo G wcc
`)
	if res.OK != 5 || res.Failed != 0 || res.Skipped != 0 {
		t.Fatalf("accounting: %+v", res)
	}
	for i, st := range res.Steps {
		if st.Result == nil || st.Error != "" {
			t.Errorf("step %d: %+v", i, st)
		}
		if st.ElapsedNS <= 0 {
			t.Errorf("step %d has no timing", i)
		}
	}
	if res.ElapsedNS <= 0 {
		t.Error("no batch timing")
	}
	// The batch ran against the session workspace: a follow-up query sees
	// its bindings.
	if r := query(t, ts.URL, "s", "ls"); len(r.Rows) != 3 {
		t.Fatalf("workspace after script: %+v", r.Rows)
	}
}

func TestScriptEndpointSingleLockAcquisition(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)
	query(t, ts.URL, "s", "gen rmat E 8 300 6")
	query(t, ts.URL, "s", "tograph G E src dst")

	var acquisitions atomic.Int32
	var lastReadOnly atomic.Bool
	srv.testHookQueryBarrier = func(_ string, readOnly bool) {
		acquisitions.Add(1)
		lastReadOnly.Store(readOnly)
	}

	// A 10-step all-read-only batch: one acquisition, shared mode.
	postScript(t, ts.URL, "s", strings.Repeat("algo G wcc\n", 10))
	if got := acquisitions.Load(); got != 1 {
		t.Fatalf("read-only script took %d lock acquisitions, want 1", got)
	}
	if !lastReadOnly.Load() {
		t.Error("all-read-only script should take the shared lock")
	}

	// One mutating step anywhere makes the whole batch exclusive — still
	// a single acquisition.
	acquisitions.Store(0)
	postScript(t, ts.URL, "s", "algo G wcc\npagerank PR G\nalgo G scc")
	if got := acquisitions.Load(); got != 1 {
		t.Fatalf("mutating script took %d lock acquisitions, want 1", got)
	}
	if lastReadOnly.Load() {
		t.Error("script with a mutating step should take the exclusive lock")
	}
}

func TestScriptEndpointFailedStep(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)

	res := postScript(t, ts.URL, "s", "gen rmat E 8 100 1\nshow NOPE\nls\nls")
	if res.OK != 1 || res.Failed != 1 || res.Skipped != 2 {
		t.Fatalf("accounting: ok=%d failed=%d skipped=%d", res.OK, res.Failed, res.Skipped)
	}
	if res.Steps[1].Error == "" || res.Steps[1].Index != 1 || res.Steps[1].LineNo != 2 {
		t.Fatalf("failed step: %+v", res.Steps[1])
	}
	// @continue runs the whole batch despite failures.
	res = postScript(t, ts.URL, "s", "@continue\nshow NOPE\nls")
	if res.OK != 1 || res.Failed != 1 || res.Skipped != 0 {
		t.Fatalf("@continue accounting: %+v", res)
	}
}

func TestScriptEndpointFileIOGate(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)

	// The gate rejects the whole batch before anything runs, naming the
	// offending step, so no partial mutation happens.
	var errResp struct{ Error string }
	code := doJSON(t, "POST", ts.URL+"/sessions/s/script",
		map[string]string{"script": "gen rmat E 8 100 1\nloadgraph G /etc/passwd\nls"}, &errResp)
	if code != http.StatusForbidden {
		t.Fatalf("file-touching script: status %d (%+v)", code, errResp)
	}
	if !strings.Contains(errResp.Error, "step 2 (line 2)") || !strings.Contains(errResp.Error, "loadgraph") {
		t.Fatalf("gate error should name the step: %q", errResp.Error)
	}
	if r := query(t, ts.URL, "s", "ls"); len(r.Rows) != 0 {
		t.Fatalf("gated script must not run any step, workspace has %+v", r.Rows)
	}
	// source is file-gated too: it reads a host file.
	code = doJSON(t, "POST", ts.URL+"/sessions/s/script",
		map[string]string{"script": "source /tmp/x.rng"}, &errResp)
	if code != http.StatusForbidden {
		t.Fatalf("source script: status %d", code)
	}
	// A missing session stays a 404 even when the script would also have
	// tripped the file gate — the gate must not mask the session lookup.
	code = doJSON(t, "POST", ts.URL+"/sessions/ghost/script",
		map[string]string{"script": "loadgraph G /etc/passwd"}, &errResp)
	if code != http.StatusNotFound {
		t.Fatalf("file-touching script on missing session: status %d, want 404", code)
	}
}

func TestScriptEndpointBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)

	for name, body := range map[string]map[string]string{
		"empty":        {"script": ""},
		"only comment": {"script": "# nothing\n\n"},
		"bad directive": {
			"script": "@loop\nls",
		},
	} {
		if code := doJSON(t, "POST", ts.URL+"/sessions/s/script", body, nil); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	if code := doJSON(t, "POST", ts.URL+"/sessions/ghost/script", map[string]string{"script": "ls"}, nil); code != http.StatusNotFound {
		t.Errorf("missing session: status %d, want 404", code)
	}
}

func TestScriptJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)

	var accepted JobView
	code := doJSON(t, "POST", ts.URL+"/sessions/s/jobs",
		map[string]string{"script": "gen rmat E 8 200 3\ntograph G E src dst\npagerank PR G"}, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("submit script job: status %d", code)
	}
	if !strings.Contains(accepted.Cmd, "script (3 steps)") {
		t.Fatalf("job label: %q", accepted.Cmd)
	}
	view := pollJob(t, ts.URL, accepted.ID, JobDone)
	if view.ScriptResult == nil || view.ScriptResult.OK != 3 {
		t.Fatalf("script job result: %+v", view.ScriptResult)
	}
	if view.Result != nil {
		t.Error("script job should not carry a single-command result")
	}

	// A failing script fails the job but keeps the partial batch result.
	code = doJSON(t, "POST", ts.URL+"/sessions/s/jobs",
		map[string]string{"script": "ls\nshow NOPE\nls"}, &accepted)
	if code != http.StatusAccepted {
		t.Fatalf("submit failing script job: status %d", code)
	}
	view = pollJob(t, ts.URL, accepted.ID, JobFailed)
	if !strings.Contains(view.Error, "step 2") {
		t.Fatalf("job error should name the step: %q", view.Error)
	}
	if view.ScriptResult == nil || view.ScriptResult.OK != 1 || view.ScriptResult.Skipped != 1 {
		t.Fatalf("failed script job should keep the partial result: %+v", view.ScriptResult)
	}

	// cmd and script in one body is ambiguous.
	if code := doJSON(t, "POST", ts.URL+"/sessions/s/jobs",
		map[string]string{"cmd": "ls", "script": "ls"}, nil); code != http.StatusBadRequest {
		t.Fatalf("cmd+script body: status %d, want 400", code)
	}
}

// pollJob waits for a job to reach the wanted terminal state.
func pollJob(t *testing.T, base, id, want string) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var view JobView
		if code := doJSON(t, "GET", base+"/jobs/"+id, nil, &view); code != http.StatusOK {
			t.Fatalf("get job %s: status %d", id, code)
		}
		if view.State == JobDone || view.State == JobFailed {
			if view.State != want {
				t.Fatalf("job %s: state %q (%s), want %q", id, view.State, view.Error, want)
			}
			return view
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, view.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestScriptRestorePurgesCache mirrors the single-command restore rule: a
// script whose restore step executed must purge the session's result-cache
// entries.
func TestScriptRestorePurgesCache(t *testing.T) {
	dir := t.TempDir()
	srv, ts := newTestServer(t, Config{AllowFileIO: true})
	doJSON(t, "POST", ts.URL+"/sessions", map[string]string{"id": "s"}, nil)

	postScript(t, ts.URL, "s", `
gen rmat E 8 300 6
tograph G E src dst
pagerank PR G
snapshot `+dir+`/ws.snap
`)
	query(t, ts.URL, "s", "pagerank PR2 G") // cached
	if hits, _, size := func() (uint64, uint64, int) { h, m, s := srv.CacheStats(); return h, m, s }(); hits == 0 || size == 0 {
		t.Fatalf("expected cache activity, hits=%d size=%d", hits, size)
	}
	res := postScript(t, ts.URL, "s", "restore "+dir+"/ws.snap\nls")
	if res.Failed != 0 {
		t.Fatalf("restore script failed: %+v", res)
	}
	if _, _, size := srv.CacheStats(); size != 0 {
		t.Fatalf("restore step should purge the session cache, %d entries left", size)
	}
}
