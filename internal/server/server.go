// Package server exposes the Ringo analytics engine as a long-lived,
// multi-session HTTP service — the shared-memory counterpart of the
// terminal shell. Each session owns one workspace and is guarded by an
// RWMutex: read-only queries (show, top, algo, ls, ...) run concurrently
// under the shared lock, while mutating commands serialize. All sessions
// share one LRU result cache keyed by (session, object fingerprint,
// command), so repeated analytics over unchanged objects are answered
// without recomputation; beneath it, each session's workspace carries a
// fingerprint-keyed CSR view cache, so even *new* analytics over an
// unchanged graph skip the O(V+E) dense conversion (both cache layers
// report hits and misses on GET /stats). Long-running commands can be
// submitted as async jobs (POST /sessions/{id}/jobs) and polled
// (GET /jobs/{id}) so no HTTP connection is held open for minutes.
//
// Endpoints:
//
//	POST   /sessions                create a session ({"id": "name"} optional)
//	GET    /sessions                list sessions
//	GET    /sessions/{id}           one session's objects
//	DELETE /sessions/{id}           drop a session
//	POST   /sessions/{id}/query     {"cmd": "..."} -> repl.Result (synchronous)
//	POST   /sessions/{id}/script    {"script": "..."} -> per-step results, one lock acquisition
//	POST   /sessions/{id}/jobs      {"cmd": "..."} or {"script": "..."} -> 202 + job id (async)
//	POST   /sessions/{id}/snapshot  {"path": "..."} write the workspace to a file
//	POST   /sessions/{id}/restore   {"path": "..."} replace the workspace from a file
//	GET    /sessions/{id}/fingerprints  per-object fingerprints + workspace content digest
//	GET    /jobs/{id}               job status and result
//	GET    /jobs                    list jobs (?session=id filters)
//	GET    /stats                   sessions, jobs, cache hits/misses
//
// The /script endpoint is the batching lever the paper's interactive model
// implies: an N-step analysis runs under a single session-lock acquisition
// (shared if every step is read-only, exclusive otherwise) and one HTTP
// round trip, with per-step results and wall times in the response.
// docs/SERVER.md is the full API reference; a drift test keeps it in sync
// with the routes registered here.
//
// The snapshot and restore endpoints touch the host filesystem and are
// therefore gated on Config.AllowFileIO, like the load/save verbs. Restore
// purges the session's result-cache entries: the restored objects carry
// fresh fingerprints, and nothing computed against the pre-restore
// workspace may be served afterwards.
package server

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"ringo/internal/core"
	"ringo/internal/extmem"
	"ringo/internal/obs"
	"ringo/internal/repl"
)

// Config sizes a Server.
type Config struct {
	// CacheSize bounds the shared result cache (entries). 0 means
	// DefaultCacheSize; negative disables caching.
	CacheSize int
	// ViewCacheSize bounds each session's CSR view cache (entries). 0
	// means the workspace default; negative disables view caching, so
	// every analytics command rebuilds its flat view.
	ViewCacheSize int
	// Workers is the async job worker pool size (0 means DefaultWorkers).
	Workers int
	// MaxSessions caps concurrent sessions (0 means unlimited).
	MaxSessions int
	// AllowFileIO permits the file-touching verbs (load, loadgraph,
	// save) over HTTP. Off by default: unlike the local shell, the
	// server's clients must not get arbitrary read/write access to the
	// host filesystem.
	AllowFileIO bool
	// AuthToken, when non-empty, requires every request to carry
	// "Authorization: Bearer <token>". Without it the server trusts the
	// network — suitable only behind a private interface or proxy, since
	// any client can then query, mutate or drop any session.
	AuthToken string
	// Logger receives structured request, job and slow-query records
	// (slog). Nil disables logging; metrics are recorded regardless.
	Logger *slog.Logger
	// SlowQuery is the slow-query log threshold: any verb or script step
	// whose evaluation takes at least this long is logged through Logger
	// with its session, verb, object fingerprints and duration. 0
	// disables the slow log.
	SlowQuery time.Duration
	// Metrics is the registry GET /metrics exposes and every layer
	// records into; nil creates a fresh one (exposed via Metrics()).
	Metrics *obs.Registry
}

// Defaults for Config zero values.
const (
	DefaultCacheSize = 256
	DefaultWorkers   = 4
	jobQueueDepth    = 256
)

// session is one named workspace plus its command-level lock. The RWMutex
// gives each command atomicity over the workspace: read-only commands take
// the shared lock and overlap, mutators serialize.
type session struct {
	id          string
	mu          sync.RWMutex
	eng         *repl.Engine
	created     time.Time
	cachePrefix string
	// dropped stops in-flight evaluations from re-inserting cache
	// entries after DropSession purged the session's prefix.
	dropped atomic.Bool
}

// Server is the multi-session analytics service. It implements
// http.Handler; construct with New and Close when done.
type Server struct {
	mux   *http.ServeMux
	cache *LRU

	authToken string

	// reg is the unified metrics registry: the HTTP middleware, session
	// engines (per-verb), jobs, caches, algo timers and runtime gauges
	// all record here, and GET /metrics and GET /stats both render it.
	reg       *obs.Registry
	logger    *slog.Logger
	slowQuery time.Duration
	started   time.Time
	inFlight  *obs.Gauge
	reqSeq    atomic.Uint64

	mu         sync.RWMutex
	sessions   map[string]*session
	nextSess   int
	maxSess    int
	allowFiles bool
	viewCache  int
	// cacheEpoch makes each session instance's cache namespace unique:
	// dropping and recreating a session id must not inherit the old
	// instance's entries (a fresh workspace restarts its version clock,
	// so bare fingerprints would repeat).
	cacheEpoch uint64

	jobs *jobRunner

	// testHookQueryBarrier, when set, runs after a query acquires its
	// session lock and before evaluation — tests use it to prove that
	// read-only queries overlap.
	testHookQueryBarrier func(sessionID string, readOnly bool)
}

// New returns a ready-to-serve Server.
func New(cfg Config) *Server {
	s := &Server{
		mux:        http.NewServeMux(),
		sessions:   make(map[string]*session),
		maxSess:    cfg.MaxSessions,
		allowFiles: cfg.AllowFileIO,
		authToken:  cfg.AuthToken,
		viewCache:  cfg.ViewCacheSize,
		reg:        cfg.Metrics,
		logger:     cfg.Logger,
		slowQuery:  cfg.SlowQuery,
		started:    time.Now(),
	}
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	if cfg.CacheSize >= 0 {
		size := cfg.CacheSize
		if size == 0 {
			size = DefaultCacheSize
		}
		s.cache = NewLRU(size)
	}
	s.initObs()
	workers := cfg.Workers
	if workers <= 0 {
		workers = DefaultWorkers
	}
	s.jobs = newJobRunner(s, workers)

	for pattern, handler := range s.routeTable() {
		s.mux.HandleFunc(pattern, handler)
	}
	return s
}

// routeTable is the single source of truth for the HTTP API surface: New
// registers every entry on the mux, and the drift test in
// server_docs_test.go checks docs/SERVER.md documents exactly these
// patterns.
func (s *Server) routeTable() map[string]http.HandlerFunc {
	return map[string]http.HandlerFunc{
		"POST /sessions":                  s.handleCreateSession,
		"GET /sessions":                   s.handleListSessions,
		"GET /sessions/{id}":              s.handleGetSession,
		"DELETE /sessions/{id}":           s.handleDeleteSession,
		"POST /sessions/{id}/query":       s.handleQuery,
		"POST /sessions/{id}/script":      s.handleScript,
		"POST /sessions/{id}/jobs":        s.handleSubmitJob,
		"POST /sessions/{id}/snapshot":    s.handleSnapshot,
		"POST /sessions/{id}/restore":     s.handleRestore,
		"GET /sessions/{id}/fingerprints": s.handleFingerprints,
		"GET /jobs/{id}":                  s.handleGetJob,
		"GET /jobs":                       s.handleListJobs,
		"GET /stats":                      s.handleStats,
		"GET /metrics":                    s.handleMetrics,
	}
}

// ServeHTTP is the instrumented front door: it assigns a request id
// (returned in X-Request-ID), tracks the in-flight gauge, dispatches
// through the auth check and mux, then records per-route counters, the
// status class, the latency histogram and the request log record.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.inFlight.Inc()
	defer s.inFlight.Dec()
	reqID := fmt.Sprintf("r%d", s.reqSeq.Add(1))
	sw := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
	sw.Header().Set("X-Request-ID", reqID)
	s.dispatch(sw, r)
	s.observeRequest(r, sw, reqID, time.Since(start))
}

// dispatch checks the bearer token (when configured) and hands off to the
// API mux.
func (s *Server) dispatch(w http.ResponseWriter, r *http.Request) {
	if s.authToken != "" {
		got := r.Header.Get("Authorization")
		want := "Bearer " + s.authToken
		if subtle.ConstantTimeCompare([]byte(got), []byte(want)) != 1 {
			writeError(w, http.StatusUnauthorized, fmt.Errorf("missing or invalid bearer token"))
			return
		}
	}
	s.mux.ServeHTTP(w, r)
}

// Metrics exposes the server's unified registry — what GET /metrics
// serves — so embedding hosts (cmd/ringo-server's debug listener, tests)
// can read or extend it.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Close stops the job workers; queued jobs are marked failed.
func (s *Server) Close() { s.jobs.close() }

// CacheStats returns cumulative result-cache hits, misses and entry count
// (zeros when caching is disabled).
func (s *Server) CacheStats() (hits, misses uint64, size int) {
	if s.cache == nil {
		return 0, 0, 0
	}
	return s.cache.Stats()
}

// ViewCacheStats aggregates the per-session CSR view caches: cumulative
// hits and misses, current entries, and estimated resident bytes across
// every live session.
func (s *Server) ViewCacheStats() (hits, misses uint64, entries int, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sess := range s.sessions {
		h, m, e, b := sess.eng.Workspace().ViewCacheStats()
		hits += h
		misses += m
		entries += e
		bytes += b
	}
	return hits, misses, entries, bytes
}

// IndexCacheStats aggregates the per-session equality-index caches:
// cumulative hits and misses, current entries, and estimated resident
// bytes across every live session.
func (s *Server) IndexCacheStats() (hits, misses uint64, entries int, bytes int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sess := range s.sessions {
		h, m, e, b := sess.eng.Workspace().IndexCacheStats()
		hits += h
		misses += m
		entries += e
		bytes += b
	}
	return hits, misses, entries, bytes
}

// PatchStats aggregates the incremental tier's view-maintenance counters
// across every live session: how many CSR view materializations were
// served by patching a cached base forward versus running a full rebuild.
func (s *Server) PatchStats() (patches, rebuilds uint64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, sess := range s.sessions {
		p, r := sess.eng.Workspace().PatchStats()
		patches += p
		rebuilds += r
	}
	return patches, rebuilds
}

// DeltaEdges sums the pending mutation-log entries across every live
// session — graph mutations applied to live bindings but not yet folded
// into a materialized view.
func (s *Server) DeltaEdges() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := 0
	for _, sess := range s.sessions {
		total += sess.eng.Workspace().DeltaEdges()
	}
	return total
}

// MappedBytes sums the file-backed bytes of mapped (RNGM) graph bindings
// across every live session — graph data served through the OS page cache
// rather than the Go heap, so it is reported separately from both
// heap_bytes and the view-cache bytes on GET /stats.
func (s *Server) MappedBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, sess := range s.sessions {
		total += sess.eng.Workspace().MappedBytes()
	}
	return total
}

// Sentinel errors CreateSession wraps, so the HTTP layer can map each
// failure mode to the right status (400 invalid, 503 full, 409 duplicate).
var (
	ErrInvalidSessionID = errors.New("invalid session id")
	ErrSessionLimit     = errors.New("session limit reached")
)

// validSessionID matches client-supplied session names: URL-safe, one path
// segment, bounded. Anything else could not be addressed by the
// /sessions/{id}/... routes it is served under.
var validSessionID = regexp.MustCompile(`^[A-Za-z0-9_.-]{1,64}$`)

// CreateSession makes a new named session (a generated id when name is "").
func (s *Server) CreateSession(name string) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.maxSess > 0 && len(s.sessions) >= s.maxSess {
		return "", fmt.Errorf("%w (%d)", ErrSessionLimit, s.maxSess)
	}
	if name == "" {
		s.nextSess++
		name = fmt.Sprintf("s%d", s.nextSess)
		for s.sessions[name] != nil {
			s.nextSess++
			name = fmt.Sprintf("s%d", s.nextSess)
		}
	} else if !validSessionID.MatchString(name) {
		return "", fmt.Errorf("%w %q (want 1-64 chars of [A-Za-z0-9_.-])", ErrInvalidSessionID, name)
	} else if s.sessions[name] != nil {
		return "", fmt.Errorf("session %q already exists", name)
	}
	ws := core.NewWorkspace()
	if s.viewCache != 0 {
		ws.ConfigureViewCache(s.viewCache) // negative disables
	}
	sess := &session{id: name, eng: repl.New(ws), created: time.Now()}
	// Per-verb metrics aggregate into the server's registry; slow-query
	// records carry the session id. The engine keeps its own registry
	// too, which the read-only stats verb renders per session.
	sess.eng.SetTelemetry(repl.Telemetry{
		Reg:       s.reg,
		Log:       s.logger,
		SlowQuery: s.slowQuery,
		Session:   name,
	})
	if s.cache != nil {
		s.cacheEpoch++
		sess.cachePrefix = fmt.Sprintf("%s@%d|", name, s.cacheEpoch)
		sess.eng.SetCache(sessionCache{sess: sess, lru: s.cache})
	}
	s.sessions[name] = sess
	return name, nil
}

// DropSession removes a session, reporting whether it existed. Its result
// cache entries are purged so dead entries stop consuming shared budget.
func (s *Server) DropSession(id string) bool {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.sessions, id)
	s.mu.Unlock()
	sess.dropped.Store(true)
	if s.cache != nil && sess.cachePrefix != "" {
		s.cache.DeletePrefix(sess.cachePrefix)
	}
	return true
}

// SnapshotSession writes a session's workspace to path in the binary
// snapshot format, under the session's shared lock: queries overlap with a
// snapshot, mutating commands wait for it.
func (s *Server) SnapshotSession(id, path string) (objects int, err error) {
	sess, ok := s.session(id)
	if !ok {
		return 0, errNoSession(id)
	}
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	ws := sess.eng.Workspace()
	if err := ws.SnapshotFile(path); err != nil {
		return 0, err
	}
	return len(ws.Names()), nil
}

// RestoreSession replaces a session's workspace with the contents of the
// snapshot at path, holding the session lock exclusively, and purges the
// session's result-cache entries so nothing computed against pre-restore
// objects can be served.
func (s *Server) RestoreSession(id, path string) (objects int, err error) {
	sess, ok := s.session(id)
	if !ok {
		return 0, errNoSession(id)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	ws := sess.eng.Workspace()
	if err := ws.RestoreFile(path); err != nil {
		return 0, err
	}
	if s.cache != nil && sess.cachePrefix != "" {
		s.cache.DeletePrefix(sess.cachePrefix)
	}
	return len(ws.Names()), nil
}

// WarmStart creates the named session and primes it from the file at path
// — the server's warm-restart entry point, used by the -restore flag
// before the listener comes up. The file's magic picks the path: a
// workspace snapshot (RNGS) is decoded onto the heap as before, while a
// mapped CSR image (RNGM, written by savemapped) is validated and served
// from mmap in place, bound as the read-only graph "g". Either way the
// warm-start wall time is logged, so a restart's cost difference between
// the two tiers shows up in the operator's log (`ringo-bench -table
// extmem` quantifies it on synthetic data).
func (s *Server) WarmStart(id, path string) error {
	if _, err := s.CreateSession(id); err != nil {
		return err
	}
	start := time.Now()
	if isMappedImage(path) {
		mg, err := extmem.Open(path)
		if err != nil {
			s.DropSession(id)
			return err
		}
		sess, _ := s.session(id)
		sess.mu.Lock()
		sess.eng.Workspace().SetWithProvenance("g", core.Object{Mapped: mg}, "warm start: "+path)
		sess.mu.Unlock()
		if s.logger != nil {
			s.logger.Info("warm start",
				"session", id, "path", path, "mode", "map",
				"nodes", mg.NumNodes(), "edges", mg.NumEdges(),
				"mmap", mg.Mapped(), "elapsed", time.Since(start))
		}
		return nil
	}
	n, err := s.RestoreSession(id, path)
	if err != nil {
		s.DropSession(id)
		return err
	}
	if s.logger != nil {
		s.logger.Info("warm start",
			"session", id, "path", path, "mode", "decode",
			"objects", n, "elapsed", time.Since(start))
	}
	return nil
}

// isMappedImage reports whether the file at path starts with the RNGM
// magic, routing WarmStart to the map path without committing to a full
// open. Unreadable or short files return false and fall through to the
// snapshot decoder, whose error will name the real problem.
func isMappedImage(path string) bool {
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return false
	}
	return string(magic[:]) == "RNGM"
}

// ObjectFingerprint is one binding's identity in a SessionFingerprints
// report: the name#version fingerprint cache keys are built from.
type ObjectFingerprint struct {
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
}

// SessionFingerprints identifies the exact state of a session's workspace:
// every binding's name#version fingerprint plus the content digest of the
// canonical snapshot encoding. Two sessions report equal fingerprints and
// digest exactly when they hold byte-identical workspaces — the check the
// cluster coordinator runs against every replica after shipping a
// snapshot, so a replica that restored the wrong bytes can never enter the
// read rotation.
type SessionFingerprints struct {
	Session string              `json:"session"`
	Digest  string              `json:"digest"`
	Objects []ObjectFingerprint `json:"objects"`
}

// Fingerprints reports a session's per-object fingerprints and workspace
// content digest, under the session's shared lock so the cut is consistent
// with respect to mutating commands. Sessions holding mapped (RNGM)
// bindings have no snapshot encoding and therefore no digest; the error
// says so.
func (s *Server) Fingerprints(id string) (SessionFingerprints, error) {
	sess, ok := s.session(id)
	if !ok {
		return SessionFingerprints{}, errNoSession(id)
	}
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	ws := sess.eng.Workspace()
	digest, err := ws.Digest()
	if err != nil {
		return SessionFingerprints{}, err
	}
	fp := SessionFingerprints{Session: id, Digest: digest, Objects: []ObjectFingerprint{}}
	for _, name := range ws.Names() {
		f, _ := ws.Fingerprint(name)
		fp.Objects = append(fp.Objects, ObjectFingerprint{Name: name, Fingerprint: f})
	}
	return fp, nil
}

func (s *Server) handleFingerprints(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	fp, err := s.Fingerprints(id)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(errNoSession); ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, fp)
}

// SessionIDs lists current session ids, sorted.
func (s *Server) SessionIDs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ids := make([]string, 0, len(s.sessions))
	for id := range s.sessions {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

func (s *Server) session(id string) (*session, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sess, ok := s.sessions[id]
	return sess, ok
}

// Eval runs one command in a session under its command-level lock:
// read-only commands share the lock, mutators hold it exclusively.
func (s *Server) Eval(sessionID, cmd string) (*repl.Result, error) {
	sess, ok := s.session(sessionID)
	if !ok {
		return nil, errNoSession(sessionID)
	}
	return s.evalOn(sess, cmd)
}

// evalOn is the single evaluation path for synchronous queries and async
// jobs. It takes the session instance, not its id: a job queued against
// one instance must never run in a same-named session created later. It
// also converts engine panics into errors so one bad command from one
// client can never take down every analyst's in-memory session.
func (s *Server) evalOn(sess *session, cmd string) (res *repl.Result, err error) {
	if !s.allowFiles && repl.TouchesFiles(cmd) {
		return nil, fmt.Errorf("file access is disabled on this server (load, loadgraph, save, savemapped, snapshot, restore, source)")
	}
	readOnly := repl.ReadOnly(cmd)
	if readOnly {
		sess.mu.RLock()
		defer sess.mu.RUnlock()
	} else {
		sess.mu.Lock()
		defer sess.mu.Unlock()
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, errInternal{fmt.Errorf("internal error evaluating %q: %v", cmd, p)}
		}
	}()
	if s.testHookQueryBarrier != nil {
		s.testHookQueryBarrier(sess.id, readOnly)
	}
	res, err = sess.eng.Eval(cmd)
	// A workspace-replacing command through the verb path invalidates by
	// version bump alone; purge like the /restore endpoint does, so the
	// replaced objects' entries stop consuming shared cache budget as
	// permanently dead keys.
	if err == nil && s.cache != nil && sess.cachePrefix != "" && repl.ReplacesWorkspace(cmd) {
		s.cache.DeletePrefix(sess.cachePrefix)
	}
	return res, err
}

// EvalScript runs a parsed script in a session as one batch: the session
// lock is acquired once for the whole run — shared when every step is
// read-only per the verb table, exclusive otherwise — so an N-step script
// pays one lock round trip instead of N. Per-step results, errors and wall
// times come back in the ScriptResult; a failed step is not an error here
// (the batch ran), callers check ScriptResult.Err.
func (s *Server) EvalScript(sessionID string, script *repl.Script) (*repl.ScriptResult, error) {
	sess, ok := s.session(sessionID)
	if !ok {
		return nil, errNoSession(sessionID)
	}
	return s.evalScriptOn(sess, script)
}

// evalScriptOn is the script counterpart of evalOn, shared by the
// synchronous /script endpoint and async script jobs. The file-IO gate is
// enforced before anything runs, naming the offending step, so a gated
// script fails atomically instead of stopping halfway.
func (s *Server) evalScriptOn(sess *session, script *repl.Script) (res *repl.ScriptResult, err error) {
	if !s.allowFiles {
		if i := script.TouchesFiles(); i >= 0 {
			st := script.Steps[i]
			return nil, errForbidden{fmt.Errorf("file access is disabled on this server: step %d (line %d) %q needs it (load, loadgraph, save, savemapped, snapshot, restore, source)",
				i+1, st.LineNo, st.Cmd)}
		}
	}
	readOnly := script.ReadOnly()
	if readOnly {
		sess.mu.RLock()
		defer sess.mu.RUnlock()
	} else {
		sess.mu.Lock()
		defer sess.mu.Unlock()
	}
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, errInternal{fmt.Errorf("internal error evaluating script: %v", p)}
		}
	}()
	if s.testHookQueryBarrier != nil {
		s.testHookQueryBarrier(sess.id, readOnly)
	}
	res = sess.eng.EvalScript(script)
	// Purge the session's result-cache entries if a workspace-replacing
	// step actually executed successfully, mirroring evalOn's handling of
	// a single restore command.
	if s.cache != nil && sess.cachePrefix != "" {
		for _, st := range res.Steps {
			if st.Error == "" && repl.ReplacesWorkspace(st.Cmd) {
				s.cache.DeletePrefix(sess.cachePrefix)
				break
			}
		}
	}
	return res, nil
}

type errNoSession string

func (e errNoSession) Error() string { return fmt.Sprintf("no session %q", string(e)) }

// errInternal marks a server-side failure (an engine panic) so the HTTP
// layer reports 500, not 400.
type errInternal struct{ err error }

func (e errInternal) Error() string { return e.err.Error() }

// errForbidden marks a request refused by policy (the file-IO gate) so the
// HTTP layer reports 403, not 400.
type errForbidden struct{ err error }

func (e errForbidden) Error() string { return e.err.Error() }

// --- HTTP plumbing ---

type cmdRequest struct {
	Cmd string `json:"cmd"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func readCmd(w http.ResponseWriter, r *http.Request) (string, bool) {
	var req cmdRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return "", false
	}
	if strings.TrimSpace(req.Cmd) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty cmd"))
		return "", false
	}
	return req.Cmd, true
}

func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req struct {
		ID string `json:"id"`
	}
	// An empty body is fine (the server names the session); anything
	// else must parse.
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil && err != io.EOF {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	id, err := s.CreateSession(req.ID)
	if err != nil {
		status := http.StatusConflict
		switch {
		case errors.Is(err, ErrInvalidSessionID):
			status = http.StatusBadRequest
		case errors.Is(err, ErrSessionLimit):
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]string{"id": id})
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	type sessInfo struct {
		ID      string    `json:"id"`
		Objects int       `json:"objects"`
		Created time.Time `json:"created"`
	}
	out := []sessInfo{}
	for _, id := range s.SessionIDs() {
		if sess, ok := s.session(id); ok {
			out = append(out, sessInfo{
				ID:      id,
				Objects: len(sess.eng.Workspace().Names()),
				Created: sess.created,
			})
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"sessions": out})
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.session(id)
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(id))
		return
	}
	type objInfo struct {
		Name       string `json:"name"`
		Kind       string `json:"kind"`
		Summary    string `json:"summary"`
		Provenance string `json:"provenance,omitempty"`
	}
	sess.mu.RLock()
	defer sess.mu.RUnlock()
	ws := sess.eng.Workspace()
	objs := []objInfo{}
	for _, n := range ws.Names() {
		o, _ := ws.Get(n)
		objs = append(objs, objInfo{Name: n, Kind: o.Kind(), Summary: o.Summary(), Provenance: ws.Provenance(n)})
	}
	writeJSON(w, http.StatusOK, map[string]any{"id": id, "created": sess.created, "objects": objs})
}

func (s *Server) handleDeleteSession(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.DropSession(id) {
		writeError(w, http.StatusNotFound, errNoSession(id))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deleted": id})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	cmd, ok := readCmd(w, r)
	if !ok {
		return
	}
	res, err := s.Eval(id, cmd)
	if err != nil {
		status := http.StatusBadRequest
		switch err.(type) {
		case errNoSession:
			status = http.StatusNotFound
		case errInternal:
			status = http.StatusInternalServerError
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// parseScriptBody validates script text from a request body into
// executable steps — the one place the sync /script endpoint and async
// script jobs share their parse rules.
func parseScriptBody(text string) (*repl.Script, error) {
	if strings.TrimSpace(text) == "" {
		return nil, fmt.Errorf("empty script")
	}
	script, err := repl.ParseScript(text)
	if err != nil {
		return nil, err
	}
	if len(script.Steps) == 0 {
		return nil, fmt.Errorf("script has no executable steps")
	}
	return script, nil
}

// readScript decodes the {"script": "..."} body of the /script endpoint.
func readScript(w http.ResponseWriter, r *http.Request) (*repl.Script, bool) {
	var req struct {
		Script string `json:"script"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return nil, false
	}
	script, err := parseScriptBody(req.Script)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return script, true
}

func (s *Server) handleScript(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	script, ok := readScript(w, r)
	if !ok {
		return
	}
	res, err := s.EvalScript(id, script)
	if err != nil {
		status := http.StatusBadRequest
		switch err.(type) {
		case errNoSession:
			status = http.StatusNotFound
		case errInternal:
			status = http.StatusInternalServerError
		case errForbidden:
			status = http.StatusForbidden
		}
		writeError(w, status, err)
		return
	}
	// A failed step is still a 200: the batch executed, and the per-step
	// results say exactly which step failed and what ran before it.
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleSubmitJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sess, ok := s.session(id)
	if !ok {
		writeError(w, http.StatusNotFound, errNoSession(id))
		return
	}
	// A job body carries either one command or a whole script batch.
	var req struct {
		Cmd    string `json:"cmd"`
		Script string `json:"script"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	cmd := strings.TrimSpace(req.Cmd)
	var script *repl.Script
	switch {
	case cmd != "" && strings.TrimSpace(req.Script) != "":
		writeError(w, http.StatusBadRequest, fmt.Errorf("body must carry cmd or script, not both"))
		return
	case cmd != "":
	case strings.TrimSpace(req.Script) != "":
		var err error
		if script, err = parseScriptBody(req.Script); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		cmd = fmt.Sprintf("script (%d steps)", len(script.Steps))
	default:
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty cmd"))
		return
	}
	job, err := s.jobs.submit(sess, cmd, script)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, err)
		return
	}
	writeJSON(w, http.StatusAccepted, job.snapshot())
}

// readPath parses the {"path": "..."} body of the snapshot/restore
// endpoints, enforcing the file-IO gate first.
func (s *Server) readPath(w http.ResponseWriter, r *http.Request) (string, bool) {
	if !s.allowFiles {
		writeError(w, http.StatusForbidden, fmt.Errorf("file access is disabled on this server (start with -allow-file-io)"))
		return "", false
	}
	var req struct {
		Path string `json:"path"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return "", false
	}
	if strings.TrimSpace(req.Path) == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("empty path"))
		return "", false
	}
	return req.Path, true
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	path, ok := s.readPath(w, r)
	if !ok {
		return
	}
	n, err := s.SnapshotSession(id, path)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(errNoSession); ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "path": path, "objects": n})
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	path, ok := s.readPath(w, r)
	if !ok {
		return
	}
	n, err := s.RestoreSession(id, path)
	if err != nil {
		status := http.StatusBadRequest
		if _, ok := err.(errNoSession); ok {
			status = http.StatusNotFound
		}
		writeError(w, status, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"session": id, "path": path, "objects": n})
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	job, ok := s.jobs.get(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return
	}
	writeJSON(w, http.StatusOK, job.snapshot())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	session := r.URL.Query().Get("session")
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.jobs.list(session)})
}

// handleStats renders the operational summary as JSON. Every figure is
// read out of the obs registry — the same series GET /metrics exposes —
// so the two surfaces cannot drift apart. The pre-registry JSON keys are
// kept byte-compatible for existing clients; uptime_seconds, goroutines
// and heap_bytes are additive.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	val := func(name string) float64 {
		v, _ := s.reg.Value(name)
		return v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"sessions": int(val(metricSessions)),
		"jobs": map[string]int{
			JobQueued:  int(val(metricJobsQueued)),
			JobRunning: int(val(metricJobsRunning)),
			JobDone:    int(val(metricJobsDone)),
			JobFailed:  int(val(metricJobsFailed)),
		},
		"cache": map[string]any{
			"hits":    uint64(val(metricResultCacheHits)),
			"misses":  uint64(val(metricResultCacheMisses)),
			"entries": int(val(metricResultCacheEntries)),
		},
		"views": map[string]any{
			"hits":        uint64(val(metricViewCacheHits)),
			"misses":      uint64(val(metricViewCacheMisses)),
			"entries":     int(val(metricViewCacheEntries)),
			"bytes":       int64(val(metricViewCacheBytes)),
			"patches":     uint64(val(metricViewPatches)),
			"rebuilds":    uint64(val(metricViewRebuilds)),
			"delta_edges": int(val(metricDeltaEdges)),
		},
		"indexes": map[string]any{
			"hits":    uint64(val(metricIndexCacheHits)),
			"misses":  uint64(val(metricIndexCacheMisses)),
			"entries": int(val(metricIndexCacheEntries)),
			"bytes":   int64(val(metricIndexCacheBytes)),
		},
		"uptime_seconds": val(metricUptime),
		"goroutines":     int(val(metricGoroutines)),
		"heap_bytes":     uint64(val(metricHeapAlloc)),
		"mapped_bytes":   int64(val(metricMappedBytes)),
	})
}
