package server

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// docRouteHeading matches the "### METHOD /path" endpoint headings of
// docs/SERVER.md; the heading text must equal a registered mux pattern.
var docRouteHeading = regexp.MustCompile(`^### (GET|POST|PUT|DELETE|PATCH) (/\S*)$`)

// TestServerDocCoversEveryRoute is the drift gate for docs/SERVER.md:
// every route registered on the server's mux must have a matching
// "### METHOD /path" heading, and every documented endpoint must still be
// registered. Adding an endpoint without documenting it — or documenting
// one that no longer exists — fails here.
func TestServerDocCoversEveryRoute(t *testing.T) {
	data, err := os.ReadFile("../../docs/SERVER.md")
	if err != nil {
		t.Fatalf("docs/SERVER.md missing: %v", err)
	}
	documented := map[string]bool{}
	for _, line := range strings.Split(string(data), "\n") {
		if m := docRouteHeading.FindStringSubmatch(strings.TrimSpace(line)); m != nil {
			documented[m[1]+" "+m[2]] = true
		}
	}
	if len(documented) == 0 {
		t.Fatal("docs/SERVER.md documents no endpoints (want '### METHOD /path' headings)")
	}

	srv := New(Config{CacheSize: -1, Workers: 1})
	defer srv.Close()
	registered := srv.routeTable()

	for pattern := range registered {
		if !documented[pattern] {
			t.Errorf("route %q is not documented in docs/SERVER.md (add a %q heading)", pattern, "### "+pattern)
		}
	}
	for pattern := range documented {
		if _, ok := registered[pattern]; !ok {
			t.Errorf("docs/SERVER.md documents %q, which is not a registered route", pattern)
		}
	}
}
